(* Race detection with inferred synchronizations (paper §5.4).

   Runs the FastTrack detector twice over ApplicationInsights' unit
   tests: once with the manual annotation list (which knows locks and
   plain threads but not TaskFactory, thread pools, or custom gates) and
   once with the synchronizations SherLock inferred.  The manual run
   drowns in false alarms on task-published fields; the inferred run
   reports the true races.

   Run with: dune exec examples/race_detection.exe *)

open Sherlock_core
open Sherlock_corpus
open Sherlock_fasttrack

let () =
  let app = Registry.find "App-1" in
  let subject = App.subject app in
  Printf.printf "Inferring synchronizations for %s...\n%!" app.name;
  let result = Orchestrator.infer subject in
  let logs = Orchestrator.run_test_logs subject in
  let describe label model_of =
    Printf.printf "\n=== %s ===\n" label;
    List.iteri
      (fun i log ->
        let name = fst (List.nth app.tests i) in
        let report = Detector.run (model_of log) log in
        match Detector.first_race report with
        | None -> Printf.printf "  %-24s no race\n" name
        | Some r ->
          Printf.printf "  %-24s first race: %-45s [%s]\n" name r.field
            (if Ground_truth.is_racy_field app.truth r.field then "TRUE RACE"
             else "false alarm"))
      logs
  in
  describe "Manual_dr (annotation list)" Sync_model.manual;
  describe "SherLock_dr (inferred)" (fun _ -> Sync_model.inferred result.final)
