(* The decoupled log-file workflow of the paper's artifact: instrumented
   runs write execution traces to disk; the solver is a separate step that
   reads them back.  (The CLI exposes the same flow as
   `sherlock run --dump-trace DIR` + `sherlock solve-trace DIR/*.trace`.)

   Run with: dune exec examples/trace_files.exe *)

open Sherlock_sim
open Sherlock_trace
open Sherlock_core

let cls = "Example.Uploader"

let upload_round i () =
  let payload = Heap.cell ~cls ~field:"payload" 0 in
  let checksum = Heap.cell ~cls ~field:"checksum" 0 in
  let uploaded = Heap.cell ~cls ~field:"uploaded" 0 in
  Heap.write payload (100 + i);
  Heap.write checksum ((100 + i) * 31);
  let t =
    Tasklib.start_new ~delegate:(cls, "<Upload>b__0") (fun () ->
        Heap.write uploaded 1;
        let p = Heap.read payload in
        let c = Heap.read checksum in
        assert (c = p * 31);
        Runtime.cpu 40 200)
  in
  Tasklib.wait t;
  Heap.write uploaded 0

let () =
  let dir = Filename.temp_file "sherlock" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  (* Step 1: instrumented runs, one trace file each. *)
  let paths =
    List.init 3 (fun i ->
        let log =
          Runtime.run ~seed:(100 + i) ~instrument:(Runtime.tracing ())
            (upload_round i)
        in
        let path = Filename.concat dir (Printf.sprintf "run%d.trace" i) in
        Trace_io.save log path;
        Printf.printf "wrote %s (%d events)\n" path (Log.length log);
        path)
  in
  (* Step 2: a separate solving pass over the files. *)
  let obs = Observations.create () in
  List.iter
    (fun path ->
      let log = Trace_io.load path in
      Observations.add_log obs ~near:Config.default.near
        ~cap:Config.default.window_cap ~refine:true log)
    paths;
  let verdicts, stats = Encoder.solve Config.default obs in
  Printf.printf "\nsolved %d windows over %d variables:\n" stats.num_windows
    stats.num_vars;
  List.iter (fun v -> Format.printf "  %a@." Verdict.pp v) verdicts;
  List.iter Sys.remove paths;
  Sys.rmdir dir
