(* Quickstart: infer the synchronizations of a small two-thread program.

   The program publishes a configuration value, forks a worker thread that
   spins on a ready flag, and joins it.  SherLock is given no annotations:
   it watches three instrumented runs and reports which operations acquire
   and which release.

   Run with: dune exec examples/quickstart.exe *)

open Sherlock_sim
open Sherlock_core

let cls = "Quickstart.Pipeline"

let program () =
  let config = Heap.cell ~cls ~field:"config" 0 in
  let ready = Heap.cell ~cls ~field:"ready" false in
  let result = Heap.cell ~cls ~field:"result" 0 in
  Heap.write config 21;
  let worker =
    Threadlib.create ~delegate:(cls, "WorkerMain") (fun () ->
        (* Wait for the publisher, flag-style. *)
        Heap.spin_until ready (fun r -> r);
        let c = Heap.read config in
        Runtime.cpu 50 200;
        Heap.write result (c * 2))
  in
  Threadlib.start worker;
  Runtime.cpu 100 400;
  Heap.write ready true;
  Threadlib.join worker;
  assert (Heap.read result = 42)

let () =
  let subject =
    { Orchestrator.subject_name = "quickstart"; tests = [ ("double", program) ] }
  in
  let result = Orchestrator.infer subject in
  print_endline "Inferred synchronizations (3 rounds, no annotations):";
  List.iter (fun v -> Format.printf "  %a@." Verdict.pp v) result.final;
  Printf.printf "\nRounds run: %d; windows observed: %d\n"
    (List.length result.rounds)
    (List.length (Observations.windows result.observations))
