(* Custom synchronization: SherLock needs no knowledge of how a primitive
   is implemented — only the conflicting accesses around it.

   This example builds a tiny "mailbox" rendezvous out of raw waitqueues
   (no library primitive is involved) and shows SherLock inferring the
   deposit method's exit as a release and the collect method's entry as an
   acquire, the same way the paper infers Radical's MessageBroker
   (Table 8).

   Run with: dune exec examples/custom_sync.exe *)

open Sherlock_sim
open Sherlock_core
open Sherlock_trace

let cls = "Example.Mailbox"

type mailbox = {
  mutable full : bool;
  waiters : Runtime.Waitq.t;
  letter : int Heap.t;
  postmark : int Heap.t;
}

let make () =
  {
    full = false;
    waiters = Runtime.Waitq.create ();
    letter = Heap.cell ~cls ~field:"letter" 0;
    postmark = Heap.cell ~cls ~field:"postmark" 0;
  }

(* The implementation below is invisible to SherLock: the waitqueue ops
   produce no trace events.  Only the method frames and field accesses
   show up. *)
let deposit box value =
  Runtime.frame ~cls ~meth:"Deposit" (fun () ->
      Heap.write box.letter value;
      Heap.write box.postmark (value * 31);
      box.full <- true;
      ignore (Runtime.wake_all box.waiters))

let collect box =
  Runtime.frame ~cls ~meth:"Collect" (fun () ->
      while not box.full do
        Runtime.block box.waiters
      done;
      let v = Heap.read box.letter in
      let p = Heap.read box.postmark in
      assert (p = v * 31);
      v)

let exchange () =
  let box = make () in
  let sender =
    Threadlib.create ~delegate:(cls, "SenderMain") (fun () ->
        Runtime.cpu 80 350;
        deposit box 7)
  in
  Threadlib.start sender;
  let v = collect box in
  assert (v = 7);
  Threadlib.join sender

let () =
  let subject =
    { Orchestrator.subject_name = "mailbox"; tests = [ ("exchange", exchange) ] }
  in
  let result = Orchestrator.infer subject in
  print_endline "Inferred synchronizations for the hand-rolled mailbox:";
  List.iter (fun v -> Format.printf "  %a@." Verdict.pp v) result.final;
  let deposit_release = Verdict.mem (Opid.exit ~cls "Deposit") Verdict.Release result.final in
  let collect_acquire = Verdict.mem (Opid.enter ~cls "Collect") Verdict.Acquire result.final in
  Printf.printf "\nDeposit-End inferred as release: %b\n" deposit_release;
  Printf.printf "Collect-Begin inferred as acquire: %b\n" collect_acquire
