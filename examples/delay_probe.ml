(* Feedback-based delay injection (paper §3, Figure 2).

   A producer guards two fields with a lock; SherLock's round-1 guess has
   several release candidates.  In round 2 the Perturber injects a 100 ms
   virtual delay before each candidate; whether the delay stalls the other
   thread confirms or refutes the guess and shrinks the windows.  This
   example prints the per-round verdict counts and the final result, then
   contrasts them with a run where delays are disabled.

   Run with: dune exec examples/delay_probe.exe *)

open Sherlock_sim
open Sherlock_core

let cls = "Example.Ledger"

let program () =
  let balance = Heap.cell ~cls ~field:"balance" 100 in
  let history = Heap.cell ~cls ~field:"history" 0 in
  let lock = Monitor.create () in
  let teller () =
    for _ = 1 to 4 do
      Monitor.with_lock lock (fun () ->
          let b = Heap.read balance in
          Runtime.cpu 10 60;
          Heap.write balance (b - 5);
          Heap.write history 1);
      Runtime.cpu 30 120
    done
  in
  let auditor () =
    for _ = 1 to 4 do
      Monitor.with_lock lock (fun () ->
          Heap.write balance 100;
          Heap.write history 0);
      Runtime.cpu 50 180
    done
  in
  let t1 = Threadlib.create ~delegate:(cls, "TellerLoop") teller in
  let t2 = Threadlib.create ~delegate:(cls, "AuditorLoop") auditor in
  Threadlib.start t1;
  Threadlib.start t2;
  Threadlib.join t1;
  Threadlib.join t2

let describe label config =
  let subject =
    { Orchestrator.subject_name = "ledger"; tests = [ ("transfer", program) ] }
  in
  let result = Orchestrator.infer ~config subject in
  Printf.printf "=== %s ===\n" label;
  List.iter
    (fun (r : Orchestrator.round_result) ->
      Printf.printf "  round %d: %2d delayed ops -> %d verdicts (%d windows)\n" r.round
        r.delayed_ops
        (List.length r.verdicts)
        r.stats.num_windows)
    result.rounds;
  List.iter (fun v -> Format.printf "    %a@." Verdict.pp v) result.final

let () =
  describe "With delay injection (default)" Config.default;
  describe "Without delay injection" { Config.default with use_delays = false }
