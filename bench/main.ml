(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section 5) against the OCaml reproduction, plus a
   Bechamel microbenchmark suite for the moving parts.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- table2  # one artifact
     dune exec bench/main.exe -- --list  # artifact names

   Absolute counts are smaller than the paper's (the corpus is a
   scaled-down synthetic analogue); EXPERIMENTS.md records the
   paper-vs-measured comparison and the shape criteria. *)

open Sherlock_core
open Sherlock_corpus
module Table = Sherlock_util.Table
module Opid = Sherlock_trace.Opid
module Detector = Sherlock_fasttrack.Detector
module Sync_model = Sherlock_fasttrack.Sync_model
module Tsvd = Sherlock_tsvd.Tsvd

let apps = Registry.all ()

(* Inference results are shared by several tables; memoize per config. *)
let infer_cache : (Config.t * string, Orchestrator.result) Hashtbl.t =
  Hashtbl.create 32

let infer ?(config = Config.default) (app : App.t) =
  let key = (config, app.id) in
  match Hashtbl.find_opt infer_cache key with
  | Some r -> r
  | None ->
    let r = Orchestrator.infer ~config (App.subject app) in
    Hashtbl.add infer_cache key r;
    r

let classify ?config (app : App.t) = Report.classify app.truth (infer ?config app).final

module Sync_set = Set.Make (struct
  type t = Opid.t * Verdict.role

  let compare (o1, r1) (o2, r2) =
    match Opid.compare o1 o2 with 0 -> compare r1 r2 | c -> c
end)

(* Unique synchronization counts across applications (the paper's
   parenthesized sums): verdicts deduplicated by (operation, role). *)
let unique_counts ?config () =
  let correct = ref Sync_set.empty and total = ref Sync_set.empty in
  List.iter
    (fun app ->
      let r = classify ?config app in
      List.iter
        (fun ((v : Verdict.t), cls) ->
          total := Sync_set.add (v.op, v.role) !total;
          match cls with
          | Report.Correct _ -> correct := Sync_set.add (v.op, v.role) !correct
          | Report.Data_racy | Report.Instr_error | Report.Not_sync -> ())
        r.classified)
    apps;
  (Sync_set.cardinal !correct, Sync_set.cardinal !total)

(* ------------------------------------------------------------------ *)

let table1 () =
  let t =
    Table.create ~title:"Table 1: Applications in benchmarks"
      ~header:[ "ID"; "Name"; "LoC"; "#Stars"; "#Tests" ]
  in
  List.iter
    (fun (a : App.t) ->
      Table.add_row t
        [
          a.id; a.name;
          Printf.sprintf "%.1fK" (float a.loc /. 1000.0);
          string_of_int a.stars;
          string_of_int (List.length a.tests);
        ])
    apps;
  Table.print t

let table2 () =
  let t =
    Table.create ~title:"Table 2: SherLock inferred results after 3 rounds"
      ~header:[ "ID"; "Syncs"; "Data Racy"; "Instr. Errors"; "Not Sync" ]
  in
  let sums = Array.make 4 0 in
  List.iter
    (fun (a : App.t) ->
      let r = classify a in
      let row =
        [
          Report.num_correct r;
          Report.count r Report.Data_racy;
          Report.count r Report.Instr_error;
          Report.count r Report.Not_sync;
        ]
      in
      List.iteri (fun i v -> sums.(i) <- sums.(i) + v) row;
      Table.add_row t (a.id :: List.map string_of_int row))
    apps;
  Table.add_separator t;
  let unique, _ = unique_counts () in
  Table.add_row t
    [
      "Sum";
      Printf.sprintf "%d (%d)" sums.(0) unique;
      string_of_int sums.(1);
      string_of_int sums.(2);
      string_of_int sums.(3);
    ];
  Table.print t

let race_scores (a : App.t) model_of =
  let logs = Orchestrator.run_test_logs (App.subject a) in
  List.fold_left
    (fun (true_races, false_races) log ->
      let report = Detector.run (model_of log) log in
      match Detector.first_race report with
      | None -> (true_races, false_races)
      | Some r ->
        if Ground_truth.is_racy_field a.truth r.field then (true_races + 1, false_races)
        else (true_races, false_races + 1))
    (0, 0) logs

let table3 () =
  let t =
    Table.create
      ~title:
        "Table 3: SherLock vs manual annotation in race detection (first race per run)"
      ~header:
        [ "ID"; "True Manual_dr"; "True SherLock_dr"; "False Manual_dr";
          "False SherLock_dr" ]
  in
  let sums = Array.make 4 0 in
  List.iter
    (fun (a : App.t) ->
      let verdicts = (infer a).final in
      let mt, mf = race_scores a Sync_model.manual in
      let st, sf = race_scores a (fun _ -> Sync_model.inferred verdicts) in
      let row = [ mt; st; mf; sf ] in
      List.iteri (fun i v -> sums.(i) <- sums.(i) + v) row;
      Table.add_row t (a.id :: List.map string_of_int row))
    apps;
  Table.add_separator t;
  Table.add_row t ("Sum" :: Array.to_list (Array.map string_of_int sums));
  Table.print t

let table4 () =
  let causes =
    Ground_truth.[ Instr_error; Double_role; Dispose; Static_ctor; Other_cause ]
  in
  let idx = function
    | Ground_truth.Instr_error -> 0
    | Ground_truth.Double_role -> 1
    | Ground_truth.Dispose -> 2
    | Ground_truth.Static_ctor -> 3
    | Ground_truth.Other_cause -> 4
  in
  let false_sync = Array.make 5 0 in
  let missed_sync = Array.make 5 0 in
  let false_races = Array.make 5 0 in
  List.iter
    (fun (a : App.t) ->
      let r = classify a in
      List.iter
        (fun ((v : Verdict.t), cls) ->
          match cls with
          | Report.Correct _ | Report.Data_racy -> ()
          | Report.Instr_error | Report.Not_sync ->
            let c = Report.false_positive_cause a.truth v in
            false_sync.(idx c) <- false_sync.(idx c) + 1)
        r.classified;
      (* As in the paper (§5.5), uncategorized misses are only counted
         when they surface through a false data race; the categorized
         design cases (instrumentation, double role, dispose, statics)
         are counted directly. *)
      let other_missed_fields = Hashtbl.create 4 in
      List.iter
        (fun (e : Ground_truth.entry) ->
          if e.category <> Ground_truth.Other_cause then
            missed_sync.(idx e.category) <- missed_sync.(idx e.category) + 1)
        r.missed;
      (* SherLock_dr false races, attributed to the guard of the field. *)
      let verdicts = (infer a).final in
      let logs = Orchestrator.run_test_logs (App.subject a) in
      List.iter
        (fun log ->
          let report = Detector.run (Sync_model.inferred verdicts) log in
          List.iter
            (fun (race : Detector.race) ->
              if not (Ground_truth.is_racy_field a.truth race.field) then begin
                let c = Ground_truth.guard_cause a.truth race.field in
                false_races.(idx c) <- false_races.(idx c) + 1;
                if c = Ground_truth.Other_cause then
                  Hashtbl.replace other_missed_fields race.field ()
              end)
            report.races)
        logs;
      missed_sync.(idx Ground_truth.Other_cause) <-
        missed_sync.(idx Ground_truth.Other_cause)
        + Hashtbl.length other_missed_fields)
    apps;
  let t =
    Table.create ~title:"Table 4: Breakdown of false positives/negatives"
      ~header:[ ""; "#False Sync."; "#Missed Sync."; "#False Races" ]
  in
  List.iter
    (fun c ->
      let i = idx c in
      Table.add_row t
        [
          Ground_truth.cause_name c;
          string_of_int false_sync.(i);
          string_of_int missed_sync.(i);
          string_of_int false_races.(i);
        ])
    causes;
  Table.add_separator t;
  let sum a = Array.fold_left ( + ) 0 a in
  Table.add_row t
    [
      "Total"; string_of_int (sum false_sync); string_of_int (sum missed_sync);
      string_of_int (sum false_races);
    ];
  Table.print t

let table5 () =
  let variants =
    [
      ("SherLock", Config.default);
      ("w/o Mostly are Protected", { Config.default with use_protected = false });
      ("w/o Synchronizations are Rare", { Config.default with use_rare = false });
      ("w/o Acq-Time Varies", { Config.default with use_variation = false });
      ("w/o Mostly are Paired", { Config.default with use_paired = false });
      ("w/o Read-Acq & Write-Rel", { Config.default with use_role_property = false });
      ("w/o Single Role", { Config.default with use_single_role = false });
    ]
  in
  let t =
    Table.create ~title:"Table 5: Inference with or without certain hypothesis"
      ~header:[ ""; "#Correct"; "#Total"; "Precision" ]
  in
  List.iter
    (fun (name, config) ->
      let correct, total = unique_counts ~config () in
      let precision =
        if total = 0 then "n/a"
        else Printf.sprintf "%.0f%%" (100.0 *. float correct /. float total)
      in
      Table.add_row t [ name; string_of_int correct; string_of_int total; precision ])
    variants;
  Table.print t

let table6 () =
  let lambdas = [ 0.1; 0.2; 0.4; 0.6; 0.8; 1.0; 5.0; 10.0; 50.0; 100.0 ] in
  let t =
    Table.create ~title:"Table 6: Sensitivity of lambda (unique sums, 3 rounds)"
      ~header:("lambda" :: List.map (Printf.sprintf "%g") lambdas)
  in
  let counts =
    List.map (fun lambda -> unique_counts ~config:{ Config.default with lambda } ())
      lambdas
  in
  Table.add_row t ("#correct" :: List.map (fun (c, _) -> string_of_int c) counts);
  Table.add_row t ("#total" :: List.map (fun (_, n) -> string_of_int n) counts);
  Table.print t

let table7 () =
  let nears = [ (10_000, "0.01s"); (1_000_000, "1s"); (100_000_000, "100s") ] in
  let t =
    Table.create ~title:"Table 7: Sensitivity of Near (unique sums, 3 rounds)"
      ~header:("Near" :: List.map snd nears)
  in
  let counts =
    List.map (fun (near, _) -> unique_counts ~config:{ Config.default with near } ())
      nears
  in
  Table.add_row t ("#correct" :: List.map (fun (c, _) -> string_of_int c) counts);
  Table.add_row t ("#total" :: List.map (fun (_, n) -> string_of_int n) counts);
  Table.print t

let figure4 () =
  let settings =
    [
      ("SherLock", Config.default);
      ("no delay injection", { Config.default with use_delays = false });
      ("no accumulation", { Config.default with accumulate = false });
      ("no race removal", { Config.default with use_race_removal = false });
      ("no window refinement", { Config.default with use_refinement = false });
    ]
  in
  let max_rounds = 6 in
  let t =
    Table.create
      ~title:
        "Figure 4: correctly inferred unique synchronizations per round,\n\
         under different Perturber and feedback settings"
      ~header:
        ("setting" :: List.init max_rounds (fun i -> Printf.sprintf "run %d" (i + 1)))
  in
  List.iter
    (fun (name, base) ->
      let config = { base with Config.rounds = max_rounds } in
      (* One inference run delivers the verdicts of every prefix round. *)
      let sets = Array.make max_rounds Sync_set.empty in
      List.iter
        (fun (a : App.t) ->
          let result = infer ~config a in
          List.iter
            (fun (r : Orchestrator.round_result) ->
              let report = Report.classify a.truth r.verdicts in
              List.iter
                (fun ((v : Verdict.t), cls) ->
                  match cls with
                  | Report.Correct _ ->
                    sets.(r.round - 1) <- Sync_set.add (v.op, v.role) sets.(r.round - 1)
                  | Report.Data_racy | Report.Instr_error | Report.Not_sync -> ())
                report.classified)
            result.rounds)
        apps;
      Table.add_row t
        (name :: Array.to_list (Array.map (fun s -> string_of_int (Sync_set.cardinal s)) sets)))
    settings;
  Table.print t

let tables8_9 () =
  print_endline "Tables 8/9: inferred synchronizations per application\n";
  List.iter
    (fun (a : App.t) ->
      Report.print_sites Format.std_formatter ~app:a.name (infer a).final a.truth;
      print_newline ())
    apps

let tsvd_enhance () =
  let t =
    Table.create
      ~title:"Section 5.6: TSVD happens-before inference vs SherLock synchronizations"
      ~header:[ "ID"; "Conflicting pairs"; "TSVD HB pairs"; "SherLock-synced pairs" ]
  in
  let sums = Array.make 3 0 in
  List.iter
    (fun (a : App.t) ->
      if a.uses_unsafe_apis then begin
        let o = Tsvd.analyze (App.subject a) (infer a).final in
        let row =
          [
            List.length o.candidate_pairs; List.length o.tsvd_hb;
            List.length o.sherlock_hb;
          ]
        in
        List.iteri (fun i v -> sums.(i) <- sums.(i) + v) row;
        Table.add_row t (a.id :: List.map string_of_int row)
      end)
    apps;
  Table.add_separator t;
  Table.add_row t ("Sum" :: Array.to_list (Array.map string_of_int sums));
  Table.print t

let overhead () =
  (* Host wall-clock of the pipeline stages versus a bare run, over the
     full corpus (one round, same seeds). *)
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let run_all instrument =
    List.iter
      (fun (a : App.t) ->
        List.iteri
          (fun i (_, body) ->
            let seed =
              Orchestrator.test_seed ~base:Config.default.seed ~round:1 ~test_index:i
            in
            ignore (Sherlock_sim.Runtime.run ~seed ~instrument body))
          a.tests)
      apps
  in
  let bare = time (fun () -> run_all Sherlock_sim.Runtime.no_instrument) in
  let traced = time (fun () -> run_all (Sherlock_sim.Runtime.tracing ())) in
  let full =
    time (fun () ->
        List.iter
          (fun (a : App.t) ->
            ignore
              (Orchestrator.infer ~config:{ Config.default with rounds = 1 }
                 (App.subject a)))
          apps)
  in
  let three_rounds =
    time (fun () ->
        List.iter
          (fun (a : App.t) -> ignore (Orchestrator.infer (App.subject a)))
          apps)
  in
  let t =
    Table.create ~title:"Section 5.6: Overhead (host time over the full corpus)"
      ~header:[ "configuration"; "seconds"; "vs bare" ]
  in
  let pct x = Printf.sprintf "%+.0f%%" (100.0 *. ((x /. bare) -. 1.0)) in
  Table.add_row t [ "bare execution"; Printf.sprintf "%.3f" bare; "-" ];
  Table.add_row t [ "tracing"; Printf.sprintf "%.3f" traced; pct traced ];
  Table.add_row t
    [ "tracing + solving (1 round)"; Printf.sprintf "%.3f" full; pct full ];
  Table.add_row t
    [
      "3 rounds with delay injection"; Printf.sprintf "%.3f" three_rounds;
      pct (three_rounds /. 3.0) ^ " per round";
    ];
  Table.print t

(* Extension ablations: parameters the paper fixes without sweeping
   (window cap, verdict threshold, delay length) and the two documented
   follow-ups (soft Single-Role, probabilistic delay injection). *)
let ablation_extras () =
  let sweep title rows =
    let t = Table.create ~title ~header:[ "configuration"; "#Correct"; "#Total" ] in
    List.iter
      (fun (name, config) ->
        let correct, total = unique_counts ~config () in
        Table.add_row t [ name; string_of_int correct; string_of_int total ])
      rows;
    Table.print t
  in
  sweep "Extension: window cap per static location pair (paper fixes 15)"
    (List.map
       (fun cap ->
         (Printf.sprintf "cap = %d" cap, { Config.default with window_cap = cap }))
       [ 1; 5; 15; 50 ]);
  sweep "Extension: verdict probability threshold (paper reads variables 'assigned 1')"
    (List.map
       (fun threshold ->
         (Printf.sprintf "threshold = %.2f" threshold, { Config.default with threshold }))
       [ 0.5; 0.9; 0.99 ]);
  sweep "Extension: injected delay length (paper fixes 100 ms)"
    (List.map
       (fun delay_us ->
         (Printf.sprintf "delay = %d ms" (delay_us / 1000), { Config.default with delay_us }))
       [ 10_000; 100_000; 500_000 ]);
  sweep "Extension: Single-Role as a soft constraint (paper 5.5 future work)"
    [
      ("hard (default)", Config.default);
      ("soft", { Config.default with single_role_soft = true });
      ("off", { Config.default with use_single_role = false });
    ];
  sweep "Extension: probabilistic delay injection (paper footnote 1)"
    [
      ("p = 1.0 (default)", Config.default);
      ("p = 0.5", { Config.default with delay_probability = 0.5 });
      ("p = 0.2", { Config.default with delay_probability = 0.2 });
    ]

(* ------------------------------------------------------------------ *)

(* Stress workload for the perf target: several worker threads hammering
   a small set of lock-protected fields, plus unprotected flag traffic —
   enough conflicting-access pairs to expose any O(pairs x events)
   rescanning in window extraction.  Its trace (~17k events) is an order
   of magnitude larger than any corpus test's. *)
let stress ~workers ~iters () =
  let open Sherlock_sim in
  let cls = "Stress.Data" in
  let fields =
    Array.init 8 (fun i -> Heap.cell ~cls ~field:(Printf.sprintf "f%d" i) 0)
  in
  let flag = Heap.cell ~cls ~field:"flag" 0 in
  let lock = Monitor.create () in
  let threads =
    List.init workers (fun w ->
        Threadlib.create ~delegate:(cls, Printf.sprintf "Worker%d" w) (fun () ->
            for i = 1 to iters do
              let f = (i + w) mod Array.length fields in
              Monitor.with_lock lock (fun () ->
                  let v = Heap.read fields.(f) in
                  Heap.write fields.(f) (v + 1));
              if i mod 7 = 0 then Heap.write flag i else ignore (Heap.read flag)
            done))
  in
  List.iter Threadlib.start threads;
  List.iter Threadlib.join threads

(* BENCH_trace.json is one top-level JSON object with one section per
   line, so independent artifacts (perf, robustness) can each rewrite
   their own keys while preserving the others from earlier runs. *)
let bench_json = "BENCH_trace.json"

let read_bench_sections () =
  match open_in bench_json with
  | exception Sys_error _ -> []
  | ic ->
    Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
    let rec go acc =
      match input_line ic with
      | exception End_of_file -> List.rev acc
      | line ->
        let line = String.trim line in
        let line =
          if String.length line > 0 && line.[String.length line - 1] = ',' then
            String.sub line 0 (String.length line - 1)
          else line
        in
        if String.length line > 1 && line.[0] = '"' then
          match String.index_from_opt line 1 '"' with
          | Some q when q + 1 < String.length line && line.[q + 1] = ':' ->
            let key = String.sub line 1 (q - 1) in
            let value =
              String.trim (String.sub line (q + 2) (String.length line - q - 2))
            in
            go ((key, value) :: acc)
          | _ -> go acc
        else go acc
    in
    go []

let update_bench_sections updates =
  let keep =
    List.filter
      (fun (k, _) -> not (List.mem_assoc k updates))
      (read_bench_sections ())
  in
  let all = keep @ updates in
  let oc = open_out bench_json in
  output_string oc "{\n";
  List.iteri
    (fun i (k, v) ->
      Printf.fprintf oc "  %S: %s%s\n" k v
        (if i + 1 < List.length all then "," else ""))
    all;
  output_string oc "}\n";
  close_out oc;
  Printf.printf "wrote %s\n" bench_json

(* Pull one numeric field out of a single-line JSON section value, e.g.
   [json_number value "events_per_sec"].  The sections are written by
   this file in a fixed flat shape, so a scan for ["key": <number>] is
   enough — no general JSON parser in the bench harness. *)
let json_number value key =
  let pat = Printf.sprintf "%S:" key in
  let plen = String.length pat and vlen = String.length value in
  let is_num = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec find i =
    if i + plen > vlen then None
    else if String.sub value i plen = pat then begin
      let j = ref (i + plen) in
      while !j < vlen && value.[!j] = ' ' do
        incr j
      done;
      let k = ref !j in
      while !k < vlen && is_num value.[!k] do
        incr k
      done;
      if !k > !j then float_of_string_opt (String.sub value !j (!k - !j))
      else None
    end
    else find (i + 1)
  in
  find 0

(* [Windows.extract] throughput at the seed commit (pre-index full-scan
   implementation), measured on this machine class with the identical
   workloads and averaging reps.  The perf target reports speedups
   against these. *)
let seed_stress_events_per_sec = 65_539.0

let seed_largest_events_per_sec = 371_502.0

let perf () =
  let module Log = Sherlock_trace.Log in
  (* Baselines: the previous run's events/s from BENCH_trace.json when
     present, so a local regression shows up against the last recorded
     run and not only against the (much slower) seed commit; first runs
     fall back to the seed constants. *)
  let prior = read_bench_sections () in
  let baseline_of section seed =
    match List.assoc_opt section prior with
    | None -> seed
    | Some v -> Option.value (json_number v "events_per_sec") ~default:seed
  in
  let stress_baseline = baseline_of "stress" seed_stress_events_per_sec in
  let largest_baseline =
    baseline_of "largest_corpus_log" seed_largest_events_per_sec
  in
  let time_extract ~reps log =
    ignore (Sherlock_trace.Windows.extract log) (* warmup *);
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (Sherlock_trace.Windows.extract log)
    done;
    (Unix.gettimeofday () -. t0) /. float reps
  in
  let logs =
    List.concat_map
      (fun (a : App.t) ->
        List.map (fun l -> (a.id, l)) (Orchestrator.run_test_logs (App.subject a)))
      apps
  in
  let largest_id, largest =
    List.fold_left
      (fun (bi, bl) (i, l) ->
        if Log.length l > Log.length bl then (i, l) else (bi, bl))
      (List.hd logs) (List.tl logs)
  in
  let stress_log =
    Sherlock_sim.Runtime.run ~seed:7
      ~instrument:(Sherlock_sim.Runtime.tracing ())
      (stress ~workers:6 ~iters:400)
  in
  let largest_s = time_extract ~reps:50 largest in
  let stress_s = time_extract ~reps:10 stress_log in
  (* Telemetry overhead on the hot path: the same stress-log extraction
     with the metrics registry enabled and a span collector installed,
     best-of-trials on both sides.  The telemetry subsystem's budget is
     < 5% here; exceeding it fails the bench run. *)
  let telemetry_off_s, telemetry_on_s =
    let module Tm = Sherlock_telemetry.Metrics in
    let module Tspan = Sherlock_telemetry.Span in
    (* Interleaved off/on trials (best of each) so drift — GC, frequency
       scaling, a noisy neighbour — hits both sides equally. *)
    let off = ref infinity and on = ref infinity in
    for _ = 1 to 4 do
      Tm.set_enabled false;
      Tspan.set_collector None;
      off := Float.min !off (time_extract ~reps:10 stress_log);
      Tspan.set_collector (Some (Tspan.create_collector ()));
      Tm.set_enabled true;
      on := Float.min !on (time_extract ~reps:10 stress_log)
    done;
    Tm.set_enabled false;
    Tspan.set_collector None;
    Tm.reset Tm.default;
    (!off, !on)
  in
  let telemetry_overhead_pct =
    100.0 *. ((telemetry_on_s /. telemetry_off_s) -. 1.0)
  in
  let throughput n s = float n /. s in
  (* End-to-end Table 2 pipeline: fresh 3-round inference plus scoring for
     every app (no [infer_cache], so the number is order-independent). *)
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (a : App.t) ->
      let r = Orchestrator.infer (App.subject a) in
      ignore (Report.classify a.truth r.final))
    apps;
  let table2_s = Unix.gettimeofday () -. t0 in
  let time_infer parallelism =
    let config = { Config.default with parallelism } in
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun (a : App.t) -> ignore (Orchestrator.infer ~config (App.subject a)))
      apps;
    Unix.gettimeofday () -. t0
  in
  (* Two-plus domains are requested, but the orchestrator clamps to the
     host's core count (oversubscription is strictly slower under OCaml
     5's stop-the-world minor GC), so on a single-core container this
     measures the clamp's parity with the sequential path rather than a
     real speedup; [cores] is recorded alongside so the number can be
     read correctly.  Interleaved best-of-trials, like the telemetry
     comparison above, so drift hits both sides equally. *)
  let domains = max 2 (Domain.recommended_domain_count ()) in
  let cores = Domain.recommended_domain_count () in
  let sequential_s, parallel_s =
    let seq = ref infinity and par = ref infinity in
    for _ = 1 to 3 do
      seq := Float.min !seq (time_infer 1);
      par := Float.min !par (time_infer domains)
    done;
    (!seq, !par)
  in
  let stress_n = Log.length stress_log and largest_n = Log.length largest in
  let stress_tp = throughput stress_n stress_s in
  let largest_tp = throughput largest_n largest_s in
  let t =
    Table.create ~title:"Perf: extraction throughput and end-to-end wall-clock"
      ~header:[ "measure"; "value" ]
  in
  Table.add_row t
    [
      Printf.sprintf "extract %s (%d events)" largest_id largest_n;
      Printf.sprintf "%.0f events/sec (%.1fx seed, %.2fx prev)" largest_tp
        (largest_tp /. seed_largest_events_per_sec)
        (largest_tp /. largest_baseline);
    ];
  Table.add_row t
    [
      Printf.sprintf "extract stress (%d events)" stress_n;
      Printf.sprintf "%.0f events/sec (%.1fx seed, %.2fx prev)" stress_tp
        (stress_tp /. seed_stress_events_per_sec)
        (stress_tp /. stress_baseline);
    ];
  Table.add_row t
    [
      "telemetry overhead (stress extract)";
      Printf.sprintf "%.1f%% (off %.4fs, on %.4fs)" telemetry_overhead_pct
        telemetry_off_s telemetry_on_s;
    ];
  Table.add_row t [ "table2 end-to-end"; Printf.sprintf "%.3f s" table2_s ];
  Table.add_row t
    [ "corpus infer, sequential"; Printf.sprintf "%.3f s" sequential_s ];
  Table.add_row t
    [
      Printf.sprintf "corpus infer, %d domains" domains;
      Printf.sprintf "%.3f s" parallel_s;
    ];
  Table.print t;
  update_bench_sections
    [
      ( "stress",
        Printf.sprintf
          {|{"events": %d, "extract_s": %.6f, "events_per_sec": %.0f, "seed_events_per_sec": %.0f, "speedup_vs_seed": %.2f, "baseline_events_per_sec": %.0f, "speedup_vs_baseline": %.2f}|}
          stress_n stress_s stress_tp seed_stress_events_per_sec
          (stress_tp /. seed_stress_events_per_sec)
          stress_baseline
          (stress_tp /. stress_baseline) );
      ( "largest_corpus_log",
        Printf.sprintf
          {|{"id": "%s", "events": %d, "extract_s": %.6f, "events_per_sec": %.0f, "seed_events_per_sec": %.0f, "speedup_vs_seed": %.2f, "baseline_events_per_sec": %.0f, "speedup_vs_baseline": %.2f}|}
          largest_id largest_n largest_s largest_tp seed_largest_events_per_sec
          (largest_tp /. seed_largest_events_per_sec)
          largest_baseline
          (largest_tp /. largest_baseline) );
      ("table2_s", Printf.sprintf "%.3f" table2_s);
      ( "orchestrator",
        Printf.sprintf
          {|{"sequential_s": %.3f, "parallel_s": %.3f, "domains": %d, "cores": %d}|}
          sequential_s parallel_s domains cores );
      ( "telemetry",
        Printf.sprintf
          {|{"stress_extract_off_s": %.6f, "stress_extract_on_s": %.6f, "overhead_pct": %.2f, "budget_pct": 5.0}|}
          telemetry_off_s telemetry_on_s telemetry_overhead_pct );
    ];
  if telemetry_overhead_pct >= 5.0 then begin
    Printf.printf "FAIL: telemetry overhead %.1f%% exceeds the 5%% budget\n"
      telemetry_overhead_pct;
    exit 1
  end

(* LP engine gate: the full corpus inferred with cross-round warm starts
   on vs off — wall-clock, total simplex pivots, verdict identity, and
   the factorized-basis counters (refactorizations, eta-file high-water
   mark, cap rows the bounded-variable encoding kept out of the matrix).
   The warm run is the Table 2 pipeline (infer + classify), so its time
   is also gated against the previous recorded run.  Fails the run
   (exit 1) if warm starts stop at least halving the pivot count, if any
   verdict diverges, or if pivots/time regress past the slack against
   the last recorded baseline, so an LP-engine regression cannot land
   silently. *)
let lp_gate () =
  let show (r : Orchestrator.result) =
    String.concat ";"
      (List.map (fun v -> Format.asprintf "%a" Verdict.pp v) r.final)
  in
  let fold_lp init f results =
    List.fold_left
      (fun acc (r : Orchestrator.result) ->
        List.fold_left
          (fun acc (rr : Orchestrator.round_result) -> f acc rr.stats.lp)
          acc r.rounds)
      init results
  in
  let measure config =
    let t0 = Unix.gettimeofday () in
    let results =
      List.map
        (fun (a : App.t) ->
          let r = Orchestrator.infer ~config (App.subject a) in
          ignore (Report.classify a.truth r.final);
          r)
        apps
    in
    let s = Unix.gettimeofday () -. t0 in
    let pivots = fold_lp 0 (fun acc l -> acc + l.Encoder.lp_pivots) results in
    let refactors =
      fold_lp 0 (fun acc l -> acc + l.Encoder.lp_refactors) results
    in
    let eta_len = fold_lp 0 (fun acc l -> max acc l.Encoder.lp_eta_len) results in
    let bound_saved =
      fold_lp 0 (fun acc l -> acc + l.Encoder.lp_bound_rows_saved) results
    in
    (s, pivots, refactors, eta_len, bound_saved, List.map show results)
  in
  (* Baselines from the previous recorded run, with slack for timer
     noise; absent on a first run, in which case only the structural
     gates apply. *)
  let prior_lp = List.assoc_opt "lp" (read_bench_sections ()) in
  let prior_num key = Option.bind prior_lp (fun v -> json_number v key) in
  (* Sequential, so the timing compares solver work rather than domain
     scheduling. *)
  let config = { Config.default with parallelism = 1 } in
  let warm_s, warm_pivots, refactors, eta_len, bound_saved, warm_verdicts =
    measure config
  in
  let cold_s, cold_pivots, _, _, _, cold_verdicts =
    measure { config with use_warm_start = false }
  in
  let identical = warm_verdicts = cold_verdicts in
  let ratio = float cold_pivots /. float (max 1 warm_pivots) in
  let pivots_ok =
    match prior_num "warm_pivots" with
    | Some b when b > 0.0 -> float warm_pivots <= (b *. 1.15) +. 16.0
    | _ -> true
  in
  let time_ok =
    match prior_num "table2_s" with
    | Some b when b > 0.0 -> warm_s <= (b *. 1.5) +. 0.25
    | _ -> true
  in
  let t =
    Table.create ~title:"LP engine: warm starts vs cold solves (8-app corpus)"
      ~header:[ "measure"; "warm"; "cold" ]
  in
  Table.add_row t
    [
      "corpus infer+classify"; Printf.sprintf "%.3f s" warm_s;
      Printf.sprintf "%.3f s" cold_s;
    ];
  Table.add_row t
    [ "total pivots"; string_of_int warm_pivots; string_of_int cold_pivots ];
  Table.add_row t
    [
      "basis engine";
      Printf.sprintf "f%d e%d" refactors eta_len;
      Printf.sprintf "b%d rows saved" bound_saved;
    ];
  Table.add_row t
    [
      "verdicts"; (if identical then "identical" else "DIVERGED");
      Printf.sprintf "(pivot ratio %.2fx)" ratio;
    ];
  Table.print t;
  let pass = identical && warm_pivots * 2 <= cold_pivots && pivots_ok && time_ok in
  update_bench_sections
    [
      ( "lp",
        Printf.sprintf
          {|{"warm_s": %.3f, "table2_s": %.3f, "cold_s": %.3f, "warm_pivots": %d, "cold_pivots": %d, "pivot_ratio": %.2f, "refactors": %d, "eta_len": %d, "bound_rows_saved": %d, "verdicts_identical": %b, "pass": %b}|}
          warm_s warm_s cold_s warm_pivots cold_pivots ratio refactors eta_len
          bound_saved identical pass );
    ];
  if not pass then begin
    Printf.printf
      "FAIL: lp gate (verdicts %s, warm pivots %d vs cold %d, need <= half; vs \
       baseline: pivots %s, time %s)\n"
      (if identical then "identical" else "diverged")
      warm_pivots cold_pivots
      (if pivots_ok then "ok" else "REGRESSED")
      (if time_ok then "ok" else "REGRESSED");
    exit 1
  end

(* Binary-format gate (DESIGN.md "Binary trace format"): the stress log
   saved in both formats and loaded back, with the binary loader
   required to ingest at least 10x the text loader's events/s, and the
   corpus verdicts required to be identical whether each test log
   reaches the solver through a text or a binary round-trip on disk.
   Fails the run (exit 1) otherwise, so a format-layer regression
   cannot land silently. *)
let format_gate () =
  let module Log = Sherlock_trace.Log in
  let module Trace_io = Sherlock_trace.Trace_io in
  let stress_log =
    Sherlock_sim.Runtime.run ~seed:7
      ~instrument:(Sherlock_sim.Runtime.tracing ())
      (stress ~workers:6 ~iters:3000)
  in
  let events = Log.length stress_log in
  let text_file = Filename.temp_file "sherlock_bench" ".trace" in
  let bin_file = Filename.temp_file "sherlock_bench" ".btrace" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun f -> try Sys.remove f with Sys_error _ -> ())
        [ text_file; bin_file ])
  @@ fun () ->
  Trace_io.save ~format:Trace_io.Text stress_log text_file;
  Trace_io.save ~format:Trace_io.Binary stress_log bin_file;
  let text_bytes = (Unix.stat text_file).st_size in
  let bin_bytes = (Unix.stat bin_file).st_size in
  (* Bulk-ingest GC configuration: a 4 MiW minor heap keeps the decoded
     event records out of the promotion/write-barrier path that
     otherwise dominates both loaders equally and flattens the ratio.
     Applied identically to both formats and restored afterwards, so
     the other artifacts keep their default-GC comparability. *)
  let minor_heap_words = 4 * 1024 * 1024 in
  let saved_gc = Gc.get () in
  let text_s, bin_s =
    Fun.protect ~finally:(fun () -> Gc.set saved_gc) @@ fun () ->
    Gc.set { saved_gc with Gc.minor_heap_size = minor_heap_words };
    let time file =
      let t0 = Unix.gettimeofday () in
      ignore (Trace_io.load file);
      Unix.gettimeofday () -. t0
    in
    ignore (time text_file) (* warmup *);
    ignore (time bin_file);
    (* Interleaved best-of-trials, like the telemetry comparison in
       [perf], so drift hits both sides equally. *)
    let text = ref infinity and bin = ref infinity in
    for _ = 1 to 12 do
      text := Float.min !text (time text_file);
      bin := Float.min !bin (time bin_file)
    done;
    (!text, !bin)
  in
  let text_tp = float events /. text_s in
  let bin_tp = float events /. bin_s in
  let speedup = bin_tp /. text_tp in
  (* Verdict identity: every corpus test log pushed through an on-disk
     round-trip in each format before observation and solving. *)
  let solve_via format =
    List.map
      (fun (a : App.t) ->
        let obs = Observations.create () in
        List.iter
          (fun log ->
            let file = Filename.temp_file "sherlock_roundtrip" ".trace" in
            Fun.protect
              ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
            @@ fun () ->
            Trace_io.save ~format log file;
            Observations.add_log obs ~near:Config.default.near
              ~cap:Config.default.window_cap
              ~refine:Config.default.use_refinement (Trace_io.load file))
          (Orchestrator.run_test_logs (App.subject a));
        let verdicts, _stats = Encoder.solve Config.default obs in
        ( a.id,
          String.concat ";"
            (List.map (fun v -> Format.asprintf "%a" Verdict.pp v) verdicts) ))
      apps
  in
  let verdicts_identical = solve_via Trace_io.Text = solve_via Trace_io.Binary in
  let pass = verdicts_identical && speedup >= 10.0 in
  let t =
    Table.create ~title:"Trace format: binary vs text ingest (stress log)"
      ~header:[ "measure"; "text"; "binary" ]
  in
  Table.add_row t
    [
      Printf.sprintf "size (%d events)" events;
      Printf.sprintf "%d bytes" text_bytes; Printf.sprintf "%d bytes" bin_bytes;
    ];
  Table.add_row t
    [
      "load (best of 12)"; Printf.sprintf "%.4f s" text_s;
      Printf.sprintf "%.4f s" bin_s;
    ];
  Table.add_row t
    [
      "ingest"; Printf.sprintf "%.2fM events/sec" (text_tp /. 1e6);
      Printf.sprintf "%.2fM events/sec (%.1fx)" (bin_tp /. 1e6) speedup;
    ];
  Table.add_row t
    [
      "corpus verdicts via round-trip";
      (if verdicts_identical then "identical" else "DIVERGED"); "";
    ];
  Table.print t;
  update_bench_sections
    [
      ( "format",
        Printf.sprintf
          {|{"events": %d, "text_bytes": %d, "binary_bytes": %d, "text_load_s": %.6f, "binary_load_s": %.6f, "text_events_per_sec": %.0f, "binary_events_per_sec": %.0f, "speedup": %.2f, "minor_heap_words": %d, "verdicts_identical": %b, "pass": %b}|}
          events text_bytes bin_bytes text_s bin_s text_tp bin_tp speedup
          minor_heap_words verdicts_identical pass );
    ];
  if not pass then begin
    Printf.printf
      "FAIL: format gate (speedup %.2fx, need >= 10x; verdicts %s)\n" speedup
      (if verdicts_identical then "identical" else "diverged");
    exit 1
  end

(* Robustness gate: the whole corpus is inferred under a randomized
   fault plan (crashes, a hung thread, spurious wakeups) plus the step
   watchdog, and the run must demonstrate that no single failing test
   run can kill an inference:

   - every app completes all configured rounds with its failures
     reported in the round results;
   - at least one injected crash and at least one hang-class outcome
     (deadlock or watchdog stall) actually fired somewhere;
   - apps the plan never touched produce final verdicts identical to
     the no-fault baseline (the fault lookup consumes no scheduler
     randomness);
   - the watchdog converts a livelocked stress run into
     [Runtime.Stalled] rather than spinning forever. *)
let eval_fault_plan fault_plan =
  let config = { Config.default with fault_plan; retries = 1 } in
  let crashes = ref 0 and deadlocks = ref 0 and stalls = ref 0 in
  let unaffected = ref 0 and identical = ref 0 in
  let all_rounds = ref true and verdicts = ref 0 in
  List.iter
    (fun (a : App.t) ->
      let base = (infer a).final in
      let r = Orchestrator.infer ~config (App.subject a) in
      if List.length r.rounds <> config.rounds then all_rounds := false;
      verdicts := !verdicts + List.length r.final;
      let injected = ref 0 in
      List.iter
        (fun (rr : Orchestrator.round_result) ->
          injected := !injected + Orchestrator.injected_faults rr.run_reports;
          List.iter
            (fun (rep : Orchestrator.run_report) ->
              List.iter
                (function
                  | Orchestrator.Crashed _ -> incr crashes
                  | Orchestrator.Deadlocked _ -> incr deadlocks
                  | Orchestrator.Stalled _ -> incr stalls)
                rep.failures)
            rr.run_reports)
        r.rounds;
      (* "Unaffected" is strict: not one plan site fired in any round —
         not merely "no failure", since a fired wakeup perturbs the
         schedule without failing the run. *)
      if !injected = 0 then begin
        incr unaffected;
        if List.equal (fun v1 v2 -> Verdict.compare v1 v2 = 0) base r.final then
          incr identical
      end)
    apps;
  (!crashes, !deadlocks, !stalls, !unaffected, !identical, !all_rounds, !verdicts)

(* Tuning aid for the robustness gate's pinned plan seed (run it by name;
   excluded from the run-everything path): a useful plan needs every
   failure class to fire somewhere yet leave at least one app untouched
   for the baseline-identity check. *)
let robustness_scan () =
  for seed = 1 to 30 do
    let plan =
      Sherlock_sim.Fault.randomized ~seed ~crashes:1 ~hangs:1 ~wakeups:1
        ~max_tid:5 ~max_op:150 ()
    in
    let c, d, s, u, i, ar, v = eval_fault_plan plan in
    Printf.printf
      "seed %2d: crash %3d dead %3d stall %3d unaffected %d identical %d \
       rounds %b verdicts %2d  [%s]\n%!"
      seed c d s u i ar v
      (String.concat " " (Sherlock_sim.Fault.to_specs plan))
  done

let robustness () =
  (* Seed 29 (from robustness-scan): crashes and deadlocks both fire,
     one app stays untouched for the identity check. *)
  let fault_plan =
    Sherlock_sim.Fault.randomized ~seed:29 ~crashes:1 ~hangs:1 ~wakeups:1
      ~max_tid:5 ~max_op:150 ()
  in
  let crashes, deadlocks, stalls, unaffected, identical, all_rounds, verdicts =
    eval_fault_plan fault_plan
  in
  let crashes = ref crashes and deadlocks = ref deadlocks in
  let stalls = ref stalls and unaffected = ref unaffected in
  let identical = ref identical and all_rounds = ref all_rounds in
  let verdicts = ref verdicts in
  let stall_demo =
    match
      Sherlock_sim.Runtime.run ~seed:7
        ~instrument:(Sherlock_sim.Runtime.tracing ())
        ~max_steps:2_000
        (stress ~workers:6 ~iters:400)
    with
    | _ -> false
    | exception Sherlock_sim.Runtime.Stalled _ -> true
  in
  let t =
    Table.create
      ~title:"Robustness: corpus inference under a randomized fault plan"
      ~header:[ "measure"; "value" ]
  in
  Table.add_row t
    [ "fault plan"; Format.asprintf "%a" Sherlock_sim.Fault.pp fault_plan ];
  Table.add_row t
    [
      "injected failures (crash/deadlock/stall)";
      Printf.sprintf "%d / %d / %d" !crashes !deadlocks !stalls;
    ];
  Table.add_row t
    [
      "all rounds completed";
      Printf.sprintf "%b (%d apps, %d final verdicts)" !all_rounds
        (List.length apps) !verdicts;
    ];
  Table.add_row t
    [
      "unaffected apps identical to baseline";
      Printf.sprintf "%d / %d" !identical !unaffected;
    ];
  Table.add_row t
    [ "watchdog stalls livelocked stress run"; string_of_bool stall_demo ];
  Table.print t;
  let ok =
    !all_rounds && !crashes >= 1
    && !deadlocks + !stalls >= 1
    && !unaffected > 0
    && !identical = !unaffected
    && !verdicts > 0 && stall_demo
  in
  update_bench_sections
    [
      ( "robustness",
        Printf.sprintf
          {|{"fault_plan": "%s", "crashes": %d, "deadlocks": %d, "stalls": %d, "apps": %d, "unaffected": %d, "unaffected_identical": %d, "final_verdicts": %d, "watchdog_stall_demo": %b, "pass": %b}|}
          (String.concat " " (Sherlock_sim.Fault.to_specs fault_plan))
          !crashes !deadlocks !stalls (List.length apps) !unaffected !identical
          !verdicts stall_demo ok );
    ];
  if not ok then begin
    Printf.printf "FAIL: robustness gate violated\n";
    exit 1
  end

(* Provenance gate: capture must be free when off and harmless when on.
   The whole corpus is inferred with capture off and on (interleaved
   best-of-trials so clock drift hits both sides): the verdicts must be
   identical — capture only reads duals after the pivot sequence is done
   — every captured verdict must carry evidence windows, and the
   disabled-capture wall-clock must stay within 2% of the previous
   recorded run (self-seeding on the first run, like the perf
   baselines). *)
let provenance_gate () =
  let show (r : Orchestrator.result) =
    String.concat ";"
      (List.map (fun v -> Format.asprintf "%a" Verdict.pp v) r.final)
  in
  let config = { Config.default with parallelism = 1 } in
  let measure provenance =
    let config = { config with provenance } in
    let t0 = Unix.gettimeofday () in
    let results =
      List.map (fun (a : App.t) -> Orchestrator.infer ~config (App.subject a)) apps
    in
    (Unix.gettimeofday () -. t0, results)
  in
  let trials = 3 in
  let off_s = ref infinity and on_s = ref infinity in
  let off_results = ref [] and on_results = ref [] in
  for _ = 1 to trials do
    let s, r = measure false in
    if s < !off_s then begin
      off_s := s;
      off_results := r
    end;
    let s, r = measure true in
    if s < !on_s then begin
      on_s := s;
      on_results := r
    end
  done;
  let identical = List.map show !off_results = List.map show !on_results in
  let module P = Sherlock_provenance.Provenance in
  let verdicts_with_evidence, verdicts_total =
    List.fold_left
      (fun (withe, total) (r : Orchestrator.result) ->
        match r.provenance with
        | None -> (withe, total + List.length r.final)
        | Some prov ->
          ( withe
            + List.length
                (List.filter
                   (fun (v : P.verdict_evidence) -> v.P.v_windows <> [])
                   prov.P.p_verdicts),
            total + List.length prov.P.p_verdicts ))
      (0, 0) !on_results
  in
  let prior = read_bench_sections () in
  let baseline =
    match List.assoc_opt "provenance" prior with
    | None -> !off_s
    | Some v -> Option.value (json_number v "off_s") ~default:!off_s
  in
  let overhead_pct = (!off_s -. baseline) /. baseline *. 100.0 in
  let t =
    Table.create ~title:"Provenance capture: off vs on (8-app corpus)"
      ~header:[ "measure"; "off"; "on" ]
  in
  Table.add_row t
    [
      "corpus infer"; Printf.sprintf "%.3f s" !off_s;
      Printf.sprintf "%.3f s" !on_s;
    ];
  Table.add_row t
    [
      "verdicts"; (if identical then "identical" else "DIVERGED");
      Printf.sprintf "%d/%d with evidence" verdicts_with_evidence verdicts_total;
    ];
  Table.add_row t
    [
      "off overhead vs baseline"; Printf.sprintf "%.2f%%" overhead_pct;
      "(budget 2%)";
    ];
  Table.print t;
  let pass =
    identical && verdicts_with_evidence = verdicts_total && verdicts_total > 0
    && overhead_pct < 2.0
  in
  update_bench_sections
    [
      ( "provenance",
        Printf.sprintf
          {|{"off_s": %.3f, "on_s": %.3f, "baseline_off_s": %.3f, "overhead_pct": %.2f, "verdicts_identical": %b, "verdicts_total": %d, "verdicts_with_evidence": %d, "pass": %b}|}
          !off_s !on_s baseline overhead_pct identical verdicts_total
          verdicts_with_evidence pass );
    ];
  if not pass then begin
    Printf.printf
      "FAIL: provenance gate (verdicts %s, %d/%d with evidence, disabled \
       overhead %.2f%%, budget 2%%)\n"
      (if identical then "identical" else "diverged")
      verdicts_with_evidence verdicts_total overhead_pct;
    exit 1
  end

(* ------------------------------------------------------------------ *)

let bechamel_suite () =
  let open Bechamel in
  let open Toolkit in
  let app2 = Registry.find "App-2" in
  let subject = App.subject app2 in
  let flag_log = List.hd (Orchestrator.run_test_logs subject) in
  let obs = Observations.create () in
  Observations.add_log obs ~near:1_000_000 ~cap:15 ~refine:true flag_log;
  let first_test = snd (List.hd app2.tests) in
  let verdicts = (infer app2).final in
  let tests =
    [
      Test.make ~name:"simulator: one App-2 test run"
        (Staged.stage (fun () ->
             ignore
               (Sherlock_sim.Runtime.run ~seed:1
                  ~instrument:(Sherlock_sim.Runtime.tracing ()) first_test)));
      Test.make ~name:"windows: extraction"
        (Staged.stage (fun () -> ignore (Sherlock_trace.Windows.extract flag_log)));
      Test.make ~name:"solver: App-2 LP"
        (Staged.stage (fun () -> ignore (Encoder.solve Config.default obs)));
      Test.make ~name:"fasttrack: one trace"
        (Staged.stage (fun () ->
             ignore (Detector.run (Sync_model.inferred verdicts) flag_log)));
    ]
  in
  let grouped = Test.make_grouped ~name:"sherlock" ~fmt:"%s/%s" tests in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  print_endline "Microbenchmarks (Bechamel, monotonic clock):";
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] -> Printf.printf "  %-40s %12.1f ns/run\n" name ns
      | Some _ | None -> Printf.printf "  %-40s (no estimate)\n" name)
    (List.sort compare rows);
  print_newline ()

(* Parallel-extraction gate: a 1M-event synthetic stress log (built on
   the fly by [Sherlock_trace.Synth] — wired behind this bench flag
   precisely so nothing that size is ever checked in) must extract
   *identically* under sharded extraction — same windows, same races,
   same cap/considered counters — and, on a multicore host, at least
   1.8x faster with >= 2 domains than sequentially.  Single-core hosts
   skip the speedup requirement gracefully (recorded as "cores": 1 with
   "skipped": true), so the identity half still gates everywhere.  The
   span-cache hit rate of the sharded run is recorded alongside. *)
let extract_par () =
  let module Log = Sherlock_trace.Log in
  let module Windows = Sherlock_trace.Windows in
  let module Tm = Sherlock_telemetry.Metrics in
  let cores = Domain.recommended_domain_count () in
  let events = 1_000_000 in
  (* A [near] well under the log's span keeps windows bounded while
     still covering many cross-thread neighbours per address. *)
  let near = 20_000 in
  Printf.printf "generating %d-event synthetic log...\n%!" events;
  let log = Sherlock_trace.Synth.log ~seed:11 ~addrs:2048 ~threads:16 ~events () in
  let n = Log.length log in
  let pool = Sherlock_util.Pool.create () in
  Fun.protect ~finally:(fun () -> Sherlock_util.Pool.retire pool) @@ fun () ->
  let c_hit = Tm.counter "windows.span_cache.hit" in
  let c_miss = Tm.counter "windows.span_cache.miss" in
  (* Identity: sequential vs 4-way sharded.  The sharded run is forced
     even on one core — determinism must not depend on the host. *)
  let m_seq = Sherlock_trace.Metrics.create () in
  let ws, rs = Windows.extract ~near ~metrics:m_seq log in
  let hit0 = Tm.Counter.value c_hit and miss0 = Tm.Counter.value c_miss in
  let m_par = Sherlock_trace.Metrics.create () in
  let wp, rp = Windows.extract ~near ~metrics:m_par ~jobs:4 ~pool log in
  let hits = Tm.Counter.value c_hit - hit0 in
  let misses = Tm.Counter.value c_miss - miss0 in
  let cache_rate =
    if hits + misses = 0 then 0.0 else float hits /. float (hits + misses)
  in
  let side_eq a b = Opid.Map.bindings a = Opid.Map.bindings b in
  let window_eq (a : Windows.t) (b : Windows.t) =
    a.pair = b.pair && a.field = b.field && side_eq a.rel b.rel
    && side_eq a.acq b.acq && a.coord = b.coord
  in
  let race_eq (a : Windows.race) (b : Windows.race) =
    a.race_pair = b.race_pair && a.race_field = b.race_field
  in
  let counters (m : Sherlock_trace.Metrics.t) =
    (m.events, m.pairs_considered, m.pairs_capped, m.windows, m.races)
  in
  let identical =
    List.length ws = List.length wp
    && List.length rs = List.length rp
    && List.for_all2 window_eq ws wp
    && List.for_all2 race_eq rs rp
    && counters m_seq = counters m_par
  in
  (* Throughput at 1, 2, 4 domains, timed on every host so the recorded
     section is always complete (on a single core the oversubscribed
     rows document the domain + stop-the-world-GC overhead; only the
     speedup *requirement* is core-gated).  Interleaved best-of-trials
     so drift hits every job count equally. *)
  let job_list = [ 1; 2; 4 ] in
  let times = List.map (fun j -> (j, ref infinity)) job_list in
  for _ = 1 to 2 do
    List.iter
      (fun (j, best) ->
        let t0 = Unix.gettimeofday () in
        ignore (Windows.extract ~near ~jobs:j ~pool log);
        best := Float.min !best (Unix.gettimeofday () -. t0))
      times
  done;
  let time_of j = !(List.assoc j times) in
  let seq_s = time_of 1 in
  let best_par_s =
    List.fold_left
      (fun acc (j, best) -> if j > 1 then Float.min acc !best else acc)
      infinity times
  in
  let speedup = seq_s /. best_par_s in
  let skipped = cores < 2 in
  let t =
    Table.create ~title:"Parallel extraction: 1M-event synthetic log"
      ~header:[ "measure"; "value" ]
  in
  Table.add_row t [ "events"; string_of_int n ];
  Table.add_row t [ "cores"; string_of_int cores ];
  Table.add_row t
    [ "identical (windows/races/metrics)"; (if identical then "yes" else "NO") ];
  List.iter
    (fun (j, best) ->
      Table.add_row t
        [
          Printf.sprintf "extract, %d job%s" j (if j = 1 then "" else "s");
          Printf.sprintf "%.3f s (%.0f events/sec)" !best (float n /. !best);
        ])
    times;
  Table.add_row t
    [
      "speedup vs sequential";
      (if skipped then "skipped (single core)"
       else Printf.sprintf "%.2fx (>= 1.80x required)" speedup);
    ];
  Table.add_row t
    [
      "span-cache hit rate (sharded run)";
      Printf.sprintf "%.1f%% (%d hits, %d misses)" (100.0 *. cache_rate) hits
        misses;
    ];
  Table.print t;
  let jobs_json =
    String.concat ""
      (List.map
         (fun (j, best) ->
           Printf.sprintf {|, "jobs%d_events_per_sec": %.0f|} j
             (float n /. !best))
         times)
  in
  update_bench_sections
    [
      ( "extract_par",
        Printf.sprintf
          {|{"events": %d, "cores": %d, "identical": %b, "skipped": %b, "speedup": %.2f, "threshold": 1.8, "span_cache_hit_rate": %.3f%s}|}
          n cores identical skipped
          (if skipped then 0.0 else speedup)
          cache_rate jobs_json );
    ];
  if not identical then begin
    Printf.printf
      "FAIL: sharded extraction diverged from the sequential extractor\n";
    exit 1
  end;
  if (not skipped) && speedup < 1.8 then begin
    Printf.printf "FAIL: extraction speedup %.2fx below the 1.8x gate\n" speedup;
    exit 1
  end

(* ------------------------------------------------------------------ *)

(* Metrics-plane gate: the full corpus inferred with the live stats
   plane fully on — registry enabled, runtime gauges installed, a ring
   snapshotting on the 100 ms ticker with each snapshot atomically
   rewritten as OpenMetrics (exactly what `run --metrics-out` wires
   up).  Gated statistic: the plane's *direct* cost — seconds spent
   capturing snapshots and rewriting the file, self-accounted by the
   ring ([Snapshot.busy_seconds]) — as a fraction of run wall-clock,
   which must stay under 3%.  (An off-vs-on wall-clock A/B is recorded
   alongside for context but not gated: this container's CPU quota
   jitters either side by +/- 25%, far past a 3% budget, so the A/B
   median would flake where the deterministic accounting cannot.)
   The plane must also not perturb inference — verdicts with the plane
   on must equal the plane-off verdicts — and the exported file must
   parse.  Any failure exits 1 (the "stats" section of
   BENCH_trace.json). *)
let stats_gate () =
  let module Tm = Sherlock_telemetry.Metrics in
  let module Tsnap = Sherlock_telemetry.Snapshot in
  let module Om = Sherlock_telemetry.Openmetrics in
  let show (r : Orchestrator.result) =
    String.concat ";"
      (List.map (fun v -> Format.asprintf "%a" Verdict.pp v) r.final)
  in
  let run_corpus config =
    List.map
      (fun (a : App.t) -> show (Orchestrator.infer ~config (App.subject a)))
      apps
  in
  let out = Filename.temp_file "sherlock_stats_bench" ".om" in
  (* Warmup sweep (code paths, page cache), then timed off sweep. *)
  Tm.set_enabled false;
  ignore (run_corpus Config.default);
  let t0 = Unix.gettimeofday () in
  let off_verdicts = run_corpus Config.default in
  let off_s = Unix.gettimeofday () -. t0 in
  (* The on side: one ticker lifetime around the sweep, as in a real
     `run --metrics-out` process (the orchestrator owns the ticker
     there; here twelve separate infer calls share one). *)
  Tm.set_enabled true;
  Tsnap.install_runtime_gauges ();
  let ring =
    Tsnap.create
      ~on_snapshot:(fun p ->
        try Om.write_atomic out (Om.of_point p) with Sys_error _ -> ())
      ()
  in
  Tsnap.install ring;
  Tsnap.start_ticker ~interval_ms:100 ();
  let on_verdicts, on_s =
    Fun.protect
      ~finally:(fun () ->
        Tsnap.stop_ticker ();
        Tsnap.uninstall ();
        Tm.set_enabled false;
        Tm.reset Tm.default)
      (fun () ->
        let t0 = Unix.gettimeofday () in
        let v = run_corpus Config.default in
        (v, Unix.gettimeofday () -. t0))
  in
  let snapshots = Tsnap.length ring in
  let busy_s = Tsnap.busy_seconds ring in
  let direct_pct = 100.0 *. busy_s /. on_s in
  let ab_pct = 100.0 *. ((on_s /. off_s) -. 1.0) in
  let exported_ok =
    match Om.parse_file out with Ok _ -> true | Error _ -> false
  in
  (try Sys.remove out with Sys_error _ -> ());
  let identical = off_verdicts = on_verdicts in
  let t =
    Table.create ~title:"Stats plane: corpus inference with the plane on"
      ~header:[ "measure"; "value" ]
  in
  Table.add_row t [ "plane off sweep"; Printf.sprintf "%.3f s" off_s ];
  Table.add_row t
    [ "plane on sweep (100ms ticker + OpenMetrics rewrite)";
      Printf.sprintf "%.3f s (A/B %+.1f%%, noise-dominated)" on_s ab_pct ];
  Table.add_row t
    [ "snapshots taken"; Printf.sprintf "%d (%.2f ms each)" snapshots
        (if snapshots = 0 then 0.0 else 1000.0 *. busy_s /. float snapshots) ];
  Table.add_row t
    [ "direct plane cost (capture + rewrite)";
      Printf.sprintf "%.3f s = %.2f%% of wall-clock (budget 3%%)" busy_s
        direct_pct ];
  Table.add_row t [ "verdicts identical"; Printf.sprintf "%b" identical ];
  Table.add_row t [ "exported file parses"; Printf.sprintf "%b" exported_ok ];
  Table.print t;
  update_bench_sections
    [
      ( "stats",
        Printf.sprintf
          {|{"off_s": %.3f, "on_s": %.3f, "snapshots": %d, "busy_s": %.4f, "direct_overhead_pct": %.2f, "ab_overhead_pct": %.2f, "budget_pct": 3.0, "interval_ms": 100, "verdicts_identical": %b, "export_parses": %b}|}
          off_s on_s snapshots busy_s direct_pct ab_pct identical exported_ok
      );
    ];
  if not identical then begin
    Printf.printf "FAIL: metrics plane perturbed the corpus verdicts\n";
    exit 1
  end;
  if not exported_ok then begin
    Printf.printf "FAIL: exported OpenMetrics file did not parse\n";
    exit 1
  end;
  if direct_pct >= 3.0 then begin
    Printf.printf
      "FAIL: stats-plane direct cost %.2f%% exceeds the 3%% budget\n"
      direct_pct;
    exit 1
  end

let artifacts =
  [
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("table4", table4);
    ("table5", table5);
    ("table6", table6);
    ("table7", table7);
    ("figure4", figure4);
    ("tables8_9", tables8_9);
    ("tsvd", tsvd_enhance);
    ("ablation_extras", ablation_extras);
    ("overhead", overhead);
    ("perf", perf);
    ("lp", lp_gate);
    ("format", format_gate);
    ("provenance", provenance_gate);
    ("extract_par", extract_par);
    ("stats", stats_gate);
    ("robustness", robustness);
    ("robustness-scan", robustness_scan);
    ("microbench", bechamel_suite);
  ]

let () =
  match Array.to_list Sys.argv with
  | _ :: "--list" :: _ -> List.iter (fun (name, _) -> print_endline name) artifacts
  | _ :: ((_ :: _) as names) ->
    List.iter
      (fun name ->
        match List.assoc_opt name artifacts with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown artifact %S (try --list)\n" name;
          exit 2)
      names
  | _ ->
    List.iter
      (fun (name, f) ->
        Printf.printf "==== %s ====\n%!" name;
        let t0 = Unix.gettimeofday () in
        f ();
        Printf.printf "(%s regenerated in %.1fs)\n\n%!" name
          (Unix.gettimeofday () -. t0))
      (List.filter (fun (name, _) -> name <> "robustness-scan") artifacts)
