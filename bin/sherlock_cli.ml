(* The command-line front end, mirroring the paper artifact's
   Loop-delay-solve.ps1 workflow: pick an application, run its unit tests
   under instrumentation for a number of rounds, and print the inferred
   releasing/acquire sites.  Additional subcommands expose the race
   detectors and the TSVD comparison. *)

open Cmdliner
open Sherlock_core
open Sherlock_corpus
module Telemetry = Sherlock_telemetry

let find_app name =
  match Registry.find name with
  | app -> app
  | exception Not_found ->
    Printf.eprintf "unknown application %S; try `sherlock list`\n" name;
    exit 2

let app_arg =
  let doc = "Application to analyze (id like App-1 or name like RestSharp)." in
  Arg.(required & opt (some string) None & info [ "a"; "app" ] ~docv:"APP" ~doc)

let rounds_arg =
  let doc = "Number of instrumented rounds per test input." in
  Arg.(value & opt int Config.default.rounds & info [ "r"; "rounds" ] ~docv:"N" ~doc)

let lambda_arg =
  let doc = "Objective trade-off between Mostly-Protected and the other hypotheses." in
  Arg.(value & opt float Config.default.lambda & info [ "lambda" ] ~docv:"L" ~doc)

let near_arg =
  let doc = "Conflicting-access window in virtual microseconds." in
  Arg.(value & opt int Config.default.near & info [ "near" ] ~docv:"US" ~doc)

let seed_arg =
  let doc = "Base seed for the simulated schedules." in
  Arg.(value & opt int Config.default.seed & info [ "seed" ] ~docv:"SEED" ~doc)

let parallelism_arg =
  let doc =
    "Domains running each round's unit tests concurrently (1 = sequential). \
     Verdicts are identical either way."
  in
  Arg.(
    value
    & opt int Config.default.parallelism
    & info [ "j"; "parallelism" ] ~docv:"N" ~doc)

let extract_jobs_arg =
  let doc =
    "Domains sharding window extraction within each run's log (1 = \
     sequential). Extraction is deterministic, so results are identical \
     either way; only applied when the test-level parallelism is not \
     running (the two levels share one domain pool)."
  in
  Arg.(
    value
    & opt int Config.default.extract_jobs
    & info [ "extract-jobs" ] ~docv:"N" ~doc)

let fault_arg =
  let doc =
    "Inject a deterministic fault into every simulated run (repeatable). \
     Specs: $(b,crash:tid=T,op=N), $(b,hang:tid=T,op=N), \
     $(b,wakeup:tid=T,op=N), $(b,delay-factor:F)."
  in
  Arg.(value & opt_all string [] & info [ "fault" ] ~docv:"SPEC" ~doc)

let max_steps_arg =
  let doc =
    "Scheduler-step watchdog per simulated run (0 disables): past this many \
     scheduler picks the run aborts as stalled and is retried."
  in
  Arg.(value & opt int Config.default.max_steps & info [ "max-steps" ] ~docv:"N" ~doc)

let retries_arg =
  let doc = "Reseeded re-runs after a test run crashes, deadlocks or stalls." in
  Arg.(value & opt int Config.default.retries & info [ "retries" ] ~docv:"N" ~doc)

let config_term =
  let make rounds lambda near seed parallelism extract_jobs fault_specs
      max_steps retries =
    let fault_plan =
      match Sherlock_sim.Fault.of_specs fault_specs with
      | Ok plan -> plan
      | Error msg ->
        Printf.eprintf "bad --fault spec: %s\n" msg;
        exit 2
    in
    {
      Config.default with
      rounds;
      lambda;
      near;
      seed;
      parallelism;
      extract_jobs;
      fault_plan;
      max_steps;
      retries;
    }
  in
  Term.(
    const make $ rounds_arg $ lambda_arg $ near_arg $ seed_arg $ parallelism_arg
    $ extract_jobs_arg $ fault_arg $ max_steps_arg $ retries_arg)

let list_cmd =
  let run () =
    let table =
      Sherlock_util.Table.create ~title:"Benchmark applications (paper Table 1)"
        ~header:[ "ID"; "Name"; "LoC"; "#Stars"; "#Tests"; "Unsafe APIs" ]
    in
    List.iter
      (fun (app : App.t) ->
        Sherlock_util.Table.add_row table
          [
            app.id;
            app.name;
            string_of_int app.loc;
            string_of_int app.stars;
            string_of_int (List.length app.tests);
            (if app.uses_unsafe_apis then "yes" else "no");
          ])
      (Registry.all ());
    Sherlock_util.Table.print table
  in
  Cmd.v (Cmd.info "list" ~doc:"List the benchmark applications.") Term.(const run $ const ())

let infer_run config app_name =
  let app = find_app app_name in
  let result = Orchestrator.infer ~config (App.subject app) in
  (app, result)

let telemetry_out_arg =
  let doc =
    "Write wall-clock telemetry spans of the run (Chrome trace-event / \
     Perfetto JSON) to $(docv); also enables the metrics registry."
  in
  Arg.(value & opt (some string) None & info [ "telemetry-out" ] ~docv:"FILE" ~doc)

(* Wrap a command body in a span collector + enabled metrics registry when
   the user asked for telemetry; export the spans afterwards. *)
let with_telemetry out f =
  match out with
  | None -> f ()
  | Some path ->
    let collector = Telemetry.Span.create_collector () in
    Telemetry.Span.set_collector (Some collector);
    Telemetry.Metrics.set_enabled true;
    Fun.protect
      ~finally:(fun () ->
        Telemetry.Span.set_collector None;
        Telemetry.Metrics.set_enabled false)
      (fun () ->
        let r = f () in
        (* Spans plus the per-round counter samples: without the samples a
           counter appears in Perfetto as a single end-of-run value instead
           of a track progressing round by round. *)
        let events =
          Telemetry.Perfetto.of_spans collector
          @ Telemetry.Perfetto.of_samples
              ~epoch:(Telemetry.Span.epoch collector)
              (Telemetry.Metrics.samples ())
        in
        Telemetry.Perfetto.write path events;
        Printf.printf "wrote %d telemetry spans to %s\n"
          (Telemetry.Span.span_count collector)
          path;
        r)

(* ------------------------------------------------------------------ *)
(* The always-on metrics plane: --metrics-out installs a snapshot ring
   whose every snapshot atomically rewrites an OpenMetrics file, plus
   runtime gauges (GC, pool occupancy, shard progress) and a SIGUSR1
   on-demand dump; --log-out / SHERLOCK_LOG install the structured JSONL
   log sink.  Orthogonal to --telemetry-out (span traces). *)

let metrics_out_arg =
  let doc =
    "Continuously export the metrics registry (every counter, gauge, and \
     histogram) as OpenMetrics text to $(docv), atomically rewritten on \
     each snapshot and once more at exit.  Snapshots happen per inference \
     round, every $(b,--metrics-interval) milliseconds, and on \
     $(b,SIGUSR1).  Render the file with $(b,sherlock stats --from)."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let metrics_interval_arg =
  let doc =
    "Snapshot interval in milliseconds while inference runs (with \
     $(b,--metrics-out)); 0 keeps only per-round and SIGUSR1 snapshots."
  in
  Arg.(value & opt int 100 & info [ "metrics-interval" ] ~docv:"MS" ~doc)

let log_out_arg =
  let doc =
    "Write structured logs (supervised retries and drops, watchdog stalls, \
     LP degradations and aborts) as JSON lines to $(docv).  The \
     $(b,SHERLOCK_LOG) environment variable (a path, $(b,stderr), or \
     $(b,LEVEL:PATH)) does the same without the flag."
  in
  Arg.(value & opt (some string) None & info [ "log-out" ] ~docv:"FILE" ~doc)

let with_metrics_plane ~metrics_out ~log_out f =
  Telemetry.Log.init_from_env ();
  (match log_out with Some path -> Telemetry.Log.to_file path | None -> ());
  let close_log () = if log_out <> None then Telemetry.Log.close () in
  match metrics_out with
  | None -> Fun.protect ~finally:close_log f
  | Some path ->
    Telemetry.Metrics.set_enabled true;
    Telemetry.Snapshot.install_runtime_gauges ();
    let ring =
      Telemetry.Snapshot.create
        ~on_snapshot:(fun p ->
          (* A full disk or unwritable path must not kill the run the
             plane is observing. *)
          try Telemetry.Openmetrics.write_atomic path (Telemetry.Openmetrics.of_point p)
          with Sys_error _ -> ())
        ()
    in
    Telemetry.Snapshot.install ring;
    Telemetry.Snapshot.install_sigusr1 ();
    Fun.protect
      ~finally:(fun () ->
        (* Final snapshot so the exported file reflects the finished
           run, not the last tick. *)
        ignore (Telemetry.Snapshot.take ~label:"final" ring);
        Telemetry.Snapshot.uninstall ();
        Telemetry.Metrics.set_enabled false;
        close_log ())
      f

(* Fold the flat per-run trace metrics into the registry (as trace.*
   counters/histograms) so exports and the stats console cover the
   pipeline stages too. *)
let bridge_trace_metrics (result : Orchestrator.result) =
  Sherlock_trace.Metrics.to_registry Telemetry.Metrics.default
    (Observations.metrics result.Orchestrator.observations)

let trace_format_enum =
  Arg.enum
    [ ("text", Sherlock_trace.Trace_io.Text);
      ("binary", Sherlock_trace.Trace_io.Binary) ]

let provenance_out_arg =
  let doc =
    "Capture end-to-end verdict provenance (evidence windows, LP rows with \
     duals, confidence margins, per-round traces) and write it as a JSON \
     sidecar to $(docv).  Verdicts are identical with or without capture."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "provenance-out" ] ~docv:"FILE" ~doc)

let run_cmd =
  let run config app_name verbose dump_dir trace_format telemetry_out
      provenance_out metrics_out metrics_interval log_out =
    let config =
      if provenance_out <> None then { config with Config.provenance = true }
      else config
    in
    let config =
      if metrics_out <> None then
        { config with Config.metrics_interval_ms = metrics_interval }
      else config
    in
    let app, result =
      with_metrics_plane ~metrics_out ~log_out (fun () ->
          with_telemetry telemetry_out (fun () ->
              let r = infer_run config app_name in
              if metrics_out <> None then bridge_trace_metrics (snd r);
              r))
    in
    (match (provenance_out, result.Orchestrator.provenance) with
    | Some path, Some prov ->
      Sherlock_provenance.Provenance.save path prov;
      Printf.printf "wrote provenance for %d verdicts to %s\n"
        (List.length prov.Sherlock_provenance.Provenance.p_verdicts)
        path
    | Some path, None ->
      Printf.eprintf "provenance capture produced nothing; %s not written\n" path
    | None, _ -> ());
    (match dump_dir with
    | None -> ()
    | Some dir ->
      (* The artifact's log-file workflow: one trace file per test. *)
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let ext =
        match trace_format with
        | Sherlock_trace.Trace_io.Text -> "trace"
        | Sherlock_trace.Trace_io.Binary -> "btrace"
      in
      let logs = Orchestrator.run_test_logs ~config (App.subject app) in
      List.iteri
        (fun i log ->
          let name = fst (List.nth app.tests i) in
          let path =
            Filename.concat dir (Printf.sprintf "%s-%s.%s" app.id name ext)
          in
          Sherlock_trace.Trace_io.save ~format:trace_format log path;
          Printf.printf "wrote %s
" path)
        logs);
    if verbose then begin
      List.iter
        (fun (r : Orchestrator.round_result) ->
          Printf.printf
            "round %d: %d windows, %d variables, %d delayed ops, %d verdicts, \
             %d LP solves / %d pivots%s%s%s\n"
            r.round r.stats.num_windows r.stats.num_vars r.delayed_ops
            (List.length r.verdicts) r.stats.lp.lp_solves r.stats.lp.lp_pivots
            (if r.stats.lp.lp_pivots_saved > 0 then
               Printf.sprintf " (%d saved by warm start)"
                 r.stats.lp.lp_pivots_saved
             else "")
            (let failed = Orchestrator.failed_runs r.run_reports in
             if failed > 0 then Printf.sprintf ", %d failed runs" failed else "")
            (if r.stats.degraded then " [degraded LP]" else ""))
        result.rounds;
      Report.print_round_metrics Format.std_formatter result.rounds;
      Report.print_extraction_summary Format.std_formatter ();
      if telemetry_out <> None then
        Format.printf "%a@." Telemetry.Metrics.pp_summary Telemetry.Metrics.default
    end;
    Report.print_run_failures Format.std_formatter result.rounds;
    Report.print_sites Format.std_formatter ~app:app.name result.final app.truth;
    let report = Report.classify app.truth result.final in
    Printf.printf
      "\n%d inferred: %d correct, %d data-racy, %d instrumentation errors, %d not-sync; %d missed; precision %s\n"
      (Report.num_inferred report) (Report.num_correct report)
      (Report.count report Report.Data_racy)
      (Report.count report Report.Instr_error)
      (Report.count report Report.Not_sync)
      (List.length report.missed)
      (Report.precision_string report)
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print per-round statistics.")
  in
  let dump_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump-trace" ] ~docv:"DIR"
          ~doc:"Also write one serialized execution trace per test into $(docv).")
  in
  let trace_format =
    Arg.(
      value
      & opt trace_format_enum Sherlock_trace.Trace_io.Text
      & info [ "trace-format" ] ~docv:"FORMAT"
          ~doc:
            "On-disk format for $(b,--dump-trace) files: $(b,text) \
             (line-oriented, diffable) or $(b,binary) (framed, interned, \
             mmap-backed — an order of magnitude faster to load).  Readers \
             auto-detect either.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Infer synchronizations for one application (3 rounds by default).")
    Term.(
      const run $ config_term $ app_arg $ verbose $ dump_dir $ trace_format
      $ telemetry_out_arg $ provenance_out_arg $ metrics_out_arg
      $ metrics_interval_arg $ log_out_arg)

let race_cmd =
  let run config app_name model_name =
    let app, result = infer_run config app_name in
    let subject = App.subject app in
    let logs = Orchestrator.run_test_logs ~config subject in
    let model log =
      match model_name with
      | "manual" -> Sherlock_fasttrack.Sync_model.manual log
      | _ -> Sherlock_fasttrack.Sync_model.inferred result.final
    in
    List.iteri
      (fun i log ->
        let name = fst (List.nth app.tests i) in
        let report = Sherlock_fasttrack.Detector.run (model log) log in
        match Sherlock_fasttrack.Detector.first_race report with
        | None -> Printf.printf "%-32s no race\n" name
        | Some r ->
          Printf.printf "%-32s race on %s (%s)\n" name r.field
            (if Ground_truth.is_racy_field app.truth r.field then "true race"
             else "false alarm"))
      logs
  in
  let model =
    Arg.(
      value
      & opt (enum [ ("manual", "manual"); ("sherlock", "sherlock") ]) "sherlock"
      & info [ "m"; "model" ] ~docv:"MODEL"
          ~doc:"Synchronization model: $(b,manual) or $(b,sherlock).")
  in
  Cmd.v
    (Cmd.info "race" ~doc:"Run the FastTrack race detector over an application's tests.")
    Term.(const run $ config_term $ app_arg $ model)

let tsvd_cmd =
  let run config app_name =
    let app, result = infer_run config app_name in
    if not app.uses_unsafe_apis then
      Printf.printf "%s does not call thread-unsafe collection APIs concurrently.\n"
        app.name
    else begin
      let o = Sherlock_tsvd.Tsvd.analyze ~config (App.subject app) result.final in
      Printf.printf "conflicting unsafe-API pairs: %d\n"
        (List.length o.candidate_pairs);
      Printf.printf "TSVD-inferred happens-before pairs: %d\n" (List.length o.tsvd_hb);
      Printf.printf "SherLock-synchronized pairs: %d\n" (List.length o.sherlock_hb)
    end
  in
  Cmd.v
    (Cmd.info "tsvd" ~doc:"Compare TSVD happens-before inference with SherLock's.")
    Term.(const run $ config_term $ app_arg)

let timeline_cmd =
  let run config app_name out max_flows =
    let app = find_app app_name in
    let subject = App.subject app in
    (* Infer first, so the timeline shows the runs the *final* delay plan
       produces — the schedule the last round's verdicts perturb. *)
    let result = Orchestrator.infer ~config subject in
    let plan =
      if config.Config.use_delays then
        Perturber.of_verdicts ~delay_us:config.delay_us result.final
      else Perturber.empty
    in
    let timelines =
      List.filter_map Fun.id
      @@ List.mapi
        (fun i (name, body) ->
          let hooks, finish = Sherlock_sim.Schedule.recorder () in
          let seed =
            Orchestrator.test_seed ~base:config.seed ~round:(config.rounds + 1)
              ~test_index:i
          in
          match
            Sherlock_sim.Runtime.run ~seed ~hooks
              ~instrument:
                (Sherlock_sim.Runtime.tracing
                   ~delay_before:(Perturber.delay_before plan) ())
              ~fault:config.fault_plan ~max_steps:config.max_steps body
          with
          | log ->
            Some
              {
                Timeline.test_name = name;
                log;
                schedule = finish ~duration:log.Sherlock_trace.Log.duration;
              }
          | exception
              (( Sherlock_sim.Fault.Injected_crash _
               | Sherlock_sim.Runtime.Deadlock _
               | Sherlock_sim.Runtime.Stalled _ ) as e) ->
            (* A failing run loses its timeline but not the export. *)
            Printf.eprintf "timeline: skipping %s: %s\n" name (Printexc.to_string e);
            None)
        subject.tests
    in
    let events =
      Timeline.export ~near:config.near ~max_flows ~app:app.name ~plan timelines
    in
    Telemetry.Perfetto.write out events;
    Printf.printf
      "wrote %s: %d trace events over %d tests (%d delayed ops in plan)\n" out
      (List.length events) (List.length timelines) (Perturber.size plan)
  in
  let app_pos =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"APP" ~doc:"Application id (App-1) or name.")
  in
  let out =
    Arg.(
      value
      & opt string "sherlock-timeline.json"
      & info [ "telemetry-out"; "o" ] ~docv:"FILE"
          ~doc:"Output file (Chrome trace-event / Perfetto JSON).")
  in
  let max_flows =
    Arg.(
      value & opt int 64
      & info [ "max-flows" ] ~docv:"N"
          ~doc:"Cap on conflicting-access flow arrows per test.")
  in
  Cmd.v
    (Cmd.info "timeline"
       ~doc:
         "Export a virtual-time Perfetto timeline of an application's \
          instrumented runs: per-thread method frames, scheduler \
          running/blocked intervals, delay-injection markers, and flow \
          arrows between conflicting accesses.")
    Term.(const run $ config_term $ app_pos $ out $ max_flows)

let solve_trace_cmd =
  let run config paths =
    (* The decoupled artifact workflow: solve from dumped trace files. *)
    let obs = Observations.create () in
    List.iter
      (fun path ->
        let log =
          try Sherlock_trace.Trace_io.load path
          with Failure msg | Sys_error msg ->
            Printf.eprintf "cannot read trace %s: %s\n" path msg;
            exit 2
        in
        Observations.add_log obs ~near:config.Config.near ~cap:config.window_cap
          ~refine:config.use_refinement log)
      paths;
    let verdicts, stats = Encoder.solve config obs in
    Printf.printf "%d traces, %d windows, %d variables
" (List.length paths)
      stats.num_windows stats.num_vars;
    print_endline "Releasing sites:";
    List.iter
      (fun (v : Verdict.t) ->
        Printf.printf "  %s
" (Sherlock_trace.Opid.to_string v.op))
      (Verdict.releases verdicts);
    print_endline "Acquire sites:";
    List.iter
      (fun (v : Verdict.t) ->
        Printf.printf "  %s
" (Sherlock_trace.Opid.to_string v.op))
      (Verdict.acquires verdicts)
  in
  let paths =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"TRACE" ~doc:"Trace files.")
  in
  Cmd.v
    (Cmd.info "solve-trace"
       ~doc:
         "Solve from serialized trace files (written by run --dump-trace or \
          convert; text and binary formats are auto-detected per file).")
    Term.(const run $ config_term $ paths)

let convert_cmd =
  let run in_path out_path to_format =
    let module Trace_io = Sherlock_trace.Trace_io in
    let log =
      try Trace_io.load in_path
      with Failure msg | Sys_error msg ->
        Printf.eprintf "cannot read trace %s: %s\n" in_path msg;
        exit 2
    in
    let from_format = Trace_io.format_of_file in_path in
    Trace_io.save ~format:to_format log out_path;
    let size path = (Unix.stat path).Unix.st_size in
    Printf.printf "%s (%s, %d events, %d bytes) -> %s (%s, %d bytes)\n" in_path
      (Trace_io.format_name from_format)
      (Sherlock_trace.Log.length log)
      (size in_path) out_path
      (Trace_io.format_name to_format)
      (size out_path)
  in
  let in_pos =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"IN" ~doc:"Input trace file (either format, auto-detected).")
  in
  let out_pos =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"OUT" ~doc:"Output path.")
  in
  let to_format =
    Arg.(
      value
      & opt trace_format_enum Sherlock_trace.Trace_io.Binary
      & info [ "to" ] ~docv:"FORMAT"
          ~doc:"Output format: $(b,binary) (default) or $(b,text).")
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:
         "Convert a trace file between the text and binary formats.  The \
          input format is auto-detected from its magic bytes; every command \
          that reads traces accepts either format.")
    Term.(const run $ in_pos $ out_pos $ to_format)

let explain_cmd =
  let module Prov = Sherlock_provenance.Provenance in
  let run config app_name op_query all from_file json_out flows_out =
    let prov =
      match from_file with
      | Some path -> (
        match Prov.load path with
        | Ok prov -> prov
        | Error msg ->
          Printf.eprintf "cannot read provenance %s: %s\n" path msg;
          exit 2)
      | None -> (
        match app_name with
        | None ->
          Printf.eprintf
            "explain needs an application (-a APP) or a sidecar (--from FILE)\n";
          exit 2
        | Some app_name ->
          let config = { config with Config.provenance = true } in
          let _app, result = infer_run config app_name in
          (match result.Orchestrator.provenance with
          | Some prov -> prov
          | None ->
            Printf.eprintf "inference produced no provenance\n";
            exit 1))
    in
    (match json_out with
    | Some path ->
      Prov.save path prov;
      Printf.printf "wrote provenance JSON to %s\n" path
    | None -> ());
    (match flows_out with
    | Some path ->
      let events = Timeline.evidence_flows prov in
      Telemetry.Perfetto.write path events;
      Printf.printf "wrote %d evidence-flow events to %s\n" (List.length events)
        path
    | None -> ());
    match (op_query, all) with
    | Some q, _ -> (
      match Prov.find prov q with
      | [] ->
        Printf.eprintf "no verdict matches %S (of %d verdicts)\n" q
          (List.length prov.Prov.p_verdicts);
        exit 1
      | matches ->
        List.iter (Format.printf "%a@." Prov.pp_verdict) matches)
    | None, _ ->
      (* With no operation argument the whole tree is the useful default,
         so --all is implied. *)
      Format.printf "%a@." Prov.pp prov
  in
  let app_opt =
    let doc = "Application to analyze (omit when reading --from a sidecar)." in
    Arg.(value & opt (some string) None & info [ "a"; "app" ] ~docv:"APP" ~doc)
  in
  let op_query =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"OP"
          ~doc:
            "Operation to explain (substring of the static op name, e.g. \
             $(b,write:Queue.head)).  Omitted: explain every verdict.")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"Explain every verdict (the default when $(i,OP) is omitted).")
  in
  let from_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "from" ] ~docv:"FILE"
          ~doc:
            "Read provenance from a sidecar written by $(b,run \
             --provenance-out) instead of re-running inference.")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json-out" ] ~docv:"FILE"
          ~doc:"Also write the provenance JSON sidecar to $(docv).")
  in
  let flows_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "flows" ] ~docv:"FILE"
          ~doc:
            "Also write Perfetto flow-arrow annotations linking each \
             verdict's evidence windows into the virtual-time timeline \
             (load together with the $(b,timeline) export).")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Explain inferred verdicts: render the evidence tree (windows -> \
          LP constraints with duals -> rounds) behind each \
          acquire/release verdict, from a fresh provenance-capturing run \
          or a saved sidecar.")
    Term.(
      const run $ config_term $ app_opt $ op_query $ all $ from_file $ json_out
      $ flows_out)

(* ------------------------------------------------------------------ *)
(* sherlock stats: a console summary of a metrics snapshot, shared
   between the live path (run inference, snapshot the registry) and the
   file path (parse an OpenMetrics export written by --metrics-out). *)

(* Reconstruct a snapshot point from a parsed exposition.  The raw
   registry name round-trips through the HELP text the exporter writes
   ("SherLock metric <raw>"); histogram buckets de-cumulate from the
   le-labelled series. *)
let point_of_families (families : Telemetry.Openmetrics.family list) =
  let open Telemetry.Openmetrics in
  let raw_name (f : family) =
    let prefix = "SherLock metric " in
    match f.f_help with
    | Some h when String.length h > String.length prefix
                  && String.sub h 0 (String.length prefix) = prefix ->
      String.sub h (String.length prefix) (String.length h - String.length prefix)
    | _ -> f.f_name
  in
  let ends_with suffix s =
    let ls = String.length s and lx = String.length suffix in
    ls >= lx && String.sub s (ls - lx) lx = suffix
  in
  let ts = ref 0.0 and seq = ref 0 in
  let counters = ref [] and gauges = ref [] and hists = ref [] in
  List.iter
    (fun (f : family) ->
      match f.f_name with
      | "sherlock_snapshot_timestamp_seconds" ->
        (match f.f_samples with s :: _ -> ts := s.s_value | [] -> ())
      | "sherlock_snapshot_seq" ->
        (match f.f_samples with
        | s :: _ -> seq := int_of_float s.s_value
        | [] -> ())
      | _ -> (
        let raw = raw_name f in
        match f.f_type with
        | MCounter -> (
          match f.f_samples with
          | s :: _ -> counters := (raw, int_of_float s.s_value) :: !counters
          | [] -> ())
        | MGauge -> (
          match f.f_samples with
          | s :: _ -> gauges := (raw, int_of_float s.s_value) :: !gauges
          | [] -> ())
        | MHistogram ->
          let buckets = Array.make 63 0 in
          let sum = ref 0.0 and count = ref 0 in
          let cums = ref [] in
          List.iter
            (fun s ->
              if ends_with "_bucket" s.s_series then begin
                match List.assoc_opt "le" s.s_labels with
                | None | Some "+Inf" -> ()
                | Some le -> (
                  match float_of_string_opt le with
                  | None -> ()
                  | Some le ->
                    let idx =
                      if le <= 1.0 then 0
                      else int_of_float (Float.round (Float.log2 le))
                    in
                    if idx >= 0 && idx < Array.length buckets then
                      cums := (idx, int_of_float s.s_value) :: !cums)
              end
              else if ends_with "_sum" s.s_series then sum := s.s_value
              else if ends_with "_count" s.s_series then
                count := int_of_float s.s_value)
            f.f_samples;
          let cums = List.sort compare !cums in
          let prev = ref 0 in
          List.iter
            (fun (i, cum) ->
              buckets.(i) <- cum - !prev;
              prev := cum)
            cums;
          hists :=
            ( raw,
              {
                Telemetry.Snapshot.h_count = !count;
                h_sum = !sum;
                (* The exposition carries no exact min/max; the renderer
                   treats these as unknown. *)
                h_min = infinity;
                h_max = neg_infinity;
                h_buckets = buckets;
              } )
            :: !hists
        | MUnknown -> ()))
    families;
  let sorted l = List.sort (fun (a, _) (b, _) -> compare a b) l in
  {
    Telemetry.Snapshot.p_seq = !seq;
    p_ts = !ts;
    p_label = "file";
    p_counters = sorted !counters;
    p_gauges = sorted !gauges;
    p_hists = sorted !hists;
  }

let hist_percentile (h : Telemetry.Snapshot.hist_summary) q =
  if h.h_count = 0 then nan
  else begin
    let target = q *. float_of_int h.h_count in
    let cum = ref 0 and res = ref nan in
    (try
       Array.iteri
         (fun i n ->
           cum := !cum + n;
           if !res <> !res && float_of_int !cum >= target then begin
             res := (if i = 0 then 1.0 else Float.pow 2.0 (float_of_int i));
             raise Exit
           end)
         h.h_buckets
     with Exit -> ());
    !res
  end

let utilization_bar ~width frac =
  let frac = Float.max 0.0 (Float.min 1.0 frac) in
  let full = int_of_float (Float.round (frac *. float_of_int width)) in
  String.concat ""
    [ "["; String.make full '#'; String.make (width - full) '-'; "]" ]

(* One-line sparkline over the populated bucket range. *)
let hist_spark (h : Telemetry.Snapshot.hist_summary) =
  let first = ref (-1) and last = ref (-1) in
  Array.iteri
    (fun i n ->
      if n > 0 then begin
        if !first < 0 then first := i;
        last := i
      end)
    h.h_buckets;
  if !first < 0 then ""
  else begin
    let blocks = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                    "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                    "\xe2\x96\x87"; "\xe2\x96\x88" |] in
    let peak =
      Array.fold_left max 1 (Array.sub h.h_buckets !first (!last - !first + 1))
    in
    let b = Buffer.create 32 in
    for i = !first to !last do
      let n = h.h_buckets.(i) in
      if n = 0 then Buffer.add_char b ' '
      else
        Buffer.add_string b blocks.(min 7 (n * 8 / peak))
    done;
    Buffer.contents b
  end

let render_stats ppf (p : Telemetry.Snapshot.point) =
  let c name = Option.value ~default:0 (List.assoc_opt name p.p_counters) in
  let g name = Option.value ~default:0 (List.assoc_opt name p.p_gauges) in
  let h name = List.assoc_opt name p.p_hists in
  let hist_sum name = match h name with Some s -> s.h_sum | None -> 0.0 in
  let pr fmt = Format.fprintf ppf fmt in
  let tm = Unix.localtime p.p_ts in
  pr "sherlock stats — snapshot #%d (%s) at %04d-%02d-%02d %02d:%02d:%02d@.@."
    p.p_seq
    (if p.p_label = "" then "unlabelled" else p.p_label)
    (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
    tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec;
  (* Pipeline stages: the trace.* bridge counters plus stage wall-clocks
     (observed as histograms, one observation per inference). *)
  let events = c "trace.events" in
  if events > 0 then begin
    let run_s = hist_sum "trace.run_s" in
    let extract_s = hist_sum "trace.extract_s" in
    let solve_s = hist_sum "trace.solve_s" in
    pr "  pipeline@.";
    pr "    trace events   %d%s@." events
      (if run_s > 0.0 then
         Printf.sprintf "  (%.0f events/s of simulated run)"
           (float_of_int events /. run_s)
       else "");
    pr "    windows        %d%s@." (c "trace.windows")
      (if extract_s > 0.0 then
         Printf.sprintf "  (%.0f windows/s of extraction)"
           (float_of_int (c "trace.windows") /. extract_s)
       else "");
    if c "trace.races" > 0 then pr "    races          %d@." (c "trace.races");
    pr "    run / extract / solve   %.3fs / %.3fs / %.3fs@.@." run_s extract_s
      solve_s
  end;
  (* Cache effectiveness and extraction sharding. *)
  let hits = c "windows.span_cache.hit" in
  let misses = c "windows.span_cache.miss" in
  if hits + misses > 0 || c "windows.shards" > 0 then begin
    pr "  extraction@.";
    if hits + misses > 0 then begin
      let rate = float_of_int hits /. float_of_int (hits + misses) in
      pr "    span cache     %5.1f%% hit  %s  (%d of %d lookups)@."
        (100.0 *. rate)
        (utilization_bar ~width:10 rate)
        hits (hits + misses)
    end;
    if c "windows.shards" > 0 then
      pr "    shards         %d total (current extraction: %d of %d chunks done)@."
        (c "windows.shards")
        (g "windows.chunks.done") (g "windows.chunks.total");
    pr "@."
  end;
  (* Worker-pool occupancy (live-run snapshots; zero after exit). *)
  let live = g "pool.domains.live" in
  if live > 0 then begin
    let busy = g "pool.domains.busy" in
    pr "  pool@.";
    pr "    domains        %d busy / %d live (host recommends %d)  %s@.@." busy
      live
      (g "domains.recommended")
      (utilization_bar ~width:10 (float_of_int busy /. float_of_int live))
  end;
  (* LP health. *)
  if c "lp.solves" > 0 then begin
    pr "  lp@.";
    pr "    solves         %d (%d warm%s), aborted %d@." (c "lp.solves")
      (c "lp.warm_start.hits")
      (if c "lp.warm_start.pivots_saved" > 0 then
         Printf.sprintf ", saving %d pivots" (c "lp.warm_start.pivots_saved")
       else "")
      (c "lp.aborted");
    (match h "lp.pivots" with
    | Some ph when ph.h_count > 0 ->
      pr "    pivots         %d total, per solve p50<=%.0f p95<=%.0f@."
        (c "lp.pivots.total") (hist_percentile ph 0.5) (hist_percentile ph 0.95)
    | _ -> ());
    pr "    factorization  %d refactors, eta file now %d@.@." (c "lp.refactors")
      (g "lp.eta_len")
  end;
  (* Supervision / fault handling. *)
  if c "orch.run.failed" + c "sim.fault.injected" > 0 then begin
    pr "  supervision@.";
    pr "    failed runs    %d (retried %d), degraded rounds %d, injected faults %d@.@."
      (c "orch.run.failed") (c "orch.run.retried") (c "orch.run.degraded")
      (c "sim.fault.injected")
  end;
  (* GC levels (from the runtime gauges; absent in files written without
     the plane). *)
  if g "gc.heap_words" > 0 then begin
    pr "  gc@.";
    pr "    heap           %.1f MW (top %.1f MW), collections %d minor / %d major@.@."
      (float_of_int (g "gc.heap_words") /. 1e6)
      (float_of_int (g "gc.top_heap_words") /. 1e6)
      (g "gc.minor_collections") (g "gc.major_collections")
  end;
  (* Top histograms by observation count. *)
  let top =
    List.filter (fun (_, (s : Telemetry.Snapshot.hist_summary)) -> s.h_count > 0)
      p.p_hists
    |> List.sort (fun (_, (a : Telemetry.Snapshot.hist_summary)) (_, b) ->
           compare b.h_count a.h_count)
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  let top = take 5 top in
  if top <> [] then begin
    pr "  top histograms@.";
    List.iter
      (fun (name, (s : Telemetry.Snapshot.hist_summary)) ->
        pr "    %-28s n=%-8d mean %-10.1f %s%s@." name s.h_count
          (s.h_sum /. float_of_int s.h_count)
          (if s.h_max > neg_infinity then Printf.sprintf "max %-8.0f " s.h_max
           else "")
          (hist_spark s))
      top
  end

let stats_cmd =
  let run config app_name from_file =
    match from_file with
    | Some path -> (
      match Telemetry.Openmetrics.parse_file path with
      | Error msg ->
        Printf.eprintf "cannot parse OpenMetrics file %s: %s\n" path msg;
        exit 2
      | Ok families ->
        render_stats Format.std_formatter (point_of_families families))
    | None -> (
      match app_name with
      | None ->
        Printf.eprintf
          "stats needs an application (-a APP) or a metrics file (--from FILE)\n";
        exit 2
      | Some app_name ->
        (* Live mode: run inference with the full plane on, then render
           the end-of-run snapshot. *)
        Telemetry.Metrics.set_enabled true;
        Telemetry.Snapshot.install_runtime_gauges ();
        let _app, result = infer_run config app_name in
        bridge_trace_metrics result;
        let ring = Telemetry.Snapshot.create ~capacity:1 () in
        render_stats Format.std_formatter
          (Telemetry.Snapshot.take ~label:"live" ring))
  in
  let app_opt =
    let doc = "Application to analyze live (omit when reading --from a file)." in
    Arg.(value & opt (some string) None & info [ "a"; "app" ] ~docv:"APP" ~doc)
  in
  let from_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "from" ] ~docv:"FILE"
          ~doc:
            "Render a saved OpenMetrics exposition (written by $(b,run \
             --metrics-out), possibly mid-run) instead of running \
             inference.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Render a console summary of SherLock's metrics — per-stage \
          throughput, cache hit rates, pool utilization, LP health, and \
          the busiest histograms — from a live inference run or a saved \
          $(b,--metrics-out) file.")
    Term.(const run $ config_term $ app_opt $ from_file)

let main =
  let doc = "unsupervised synchronization-operation inference (ASPLOS'21 reproduction)" in
  Cmd.group
    (Cmd.info "sherlock" ~version:"1.0.0" ~doc)
    [
      list_cmd;
      run_cmd;
      race_cmd;
      tsvd_cmd;
      solve_trace_cmd;
      convert_cmd;
      timeline_cmd;
      explain_cmd;
      stats_cmd;
    ]

let () = exit (Cmd.eval main)
