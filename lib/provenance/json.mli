(** Minimal JSON tree, printer, and parser.

    Just enough for the provenance sidecar: no dependency beyond the
    standard library, compact one-line output, and a recursive-descent
    parser whose errors carry a byte offset.  Numbers are [float]s;
    integers survive a round trip exactly up to 2^53, and every finite
    float is printed with enough digits to parse back to the same bits.
    Non-finite numbers have no JSON spelling — encode them as {!Null}
    before writing. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (no whitespace) rendering.  Raises [Invalid_argument] on a
    non-finite {!Num}. *)

val of_string : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed).  The error
    string is ["byte N: reason"]. *)

val member : string -> t -> t
(** Field of an {!Obj}, or {!Null} when absent / not an object. *)

val to_list : t -> t list
(** Elements of an {!Arr}, or [[]] otherwise. *)
