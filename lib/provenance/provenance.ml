type coord = {
  c_time1 : int;
  c_tid1 : int;
  c_time2 : int;
  c_tid2 : int;
}

type window_evidence = {
  w_id : int;
  w_first : string;
  w_second : string;
  w_field : string;
  w_side : string;
  w_count : int;
  w_weight : int;
  w_round : int;
  w_coords : coord list;
}

type constraint_evidence = {
  c_tag : string;
  c_rel : string;
  c_rhs : float;
  c_activity : float;
  c_coeff : float;
  c_dual : float;
  c_binding : bool;
}

type verdict_evidence = {
  v_op : string;
  v_role : string;
  v_probability : float;
  v_margin : float;
  v_reduced_cost : float;
  v_first_round : int;
  v_stable_round : int;
  v_windows : window_evidence list;
  v_constraints : constraint_evidence list;
}

type round_trace = {
  r_round : int;
  r_windows_after : int;
  r_objective : float;
  r_degraded : bool;
  r_verdicts : (string * string) list;
  r_delays : (string * int) list;
}

type t = {
  p_app : string;
  p_seed : int;
  p_rounds : round_trace list;
  p_verdicts : verdict_evidence list;
}

(* Polymorphic compare orders nan equal to itself, which is exactly the
   semantic equality the round-trip property needs. *)
let equal a b = compare a b = 0

(* --- encoding --- *)

let num f = if Float.is_finite f then Json.Num f else Json.Null

let int i = Json.Num (float_of_int i)

let coord_to_json c =
  Json.Obj
    [
      ("t1", int c.c_time1);
      ("tid1", int c.c_tid1);
      ("t2", int c.c_time2);
      ("tid2", int c.c_tid2);
    ]

let window_to_json w =
  Json.Obj
    [
      ("id", int w.w_id);
      ("first", Json.Str w.w_first);
      ("second", Json.Str w.w_second);
      ("field", Json.Str w.w_field);
      ("side", Json.Str w.w_side);
      ("count", int w.w_count);
      ("weight", int w.w_weight);
      ("round", int w.w_round);
      ("coords", Json.Arr (List.map coord_to_json w.w_coords));
    ]

let constraint_to_json c =
  Json.Obj
    [
      ("tag", Json.Str c.c_tag);
      ("rel", Json.Str c.c_rel);
      ("rhs", num c.c_rhs);
      ("activity", num c.c_activity);
      ("coeff", num c.c_coeff);
      ("dual", num c.c_dual);
      ("binding", Json.Bool c.c_binding);
    ]

let verdict_to_json v =
  Json.Obj
    [
      ("op", Json.Str v.v_op);
      ("role", Json.Str v.v_role);
      ("probability", num v.v_probability);
      ("margin", num v.v_margin);
      ("reduced_cost", num v.v_reduced_cost);
      ("first_round", int v.v_first_round);
      ("stable_round", int v.v_stable_round);
      ("windows", Json.Arr (List.map window_to_json v.v_windows));
      ("constraints", Json.Arr (List.map constraint_to_json v.v_constraints));
    ]

let round_to_json r =
  Json.Obj
    [
      ("round", int r.r_round);
      ("windows_after", int r.r_windows_after);
      ("objective", num r.r_objective);
      ("degraded", Json.Bool r.r_degraded);
      ( "verdicts",
        Json.Arr
          (List.map
             (fun (op, role) ->
               Json.Obj [ ("op", Json.Str op); ("role", Json.Str role) ])
             r.r_verdicts) );
      ( "delays",
        Json.Arr
          (List.map
             (fun (op, us) -> Json.Obj [ ("op", Json.Str op); ("us", int us) ])
             r.r_delays) );
    ]

let to_json t =
  Json.Obj
    [
      ("format", Json.Str "sherlock-provenance");
      ("version", int 1);
      ("app", Json.Str t.p_app);
      ("seed", int t.p_seed);
      ("rounds", Json.Arr (List.map round_to_json t.p_rounds));
      ("verdicts", Json.Arr (List.map verdict_to_json t.p_verdicts));
    ]

(* --- decoding --- *)

exception Bad of string

let get_str ctx = function
  | Json.Str s -> s
  | _ -> raise (Bad (ctx ^ ": expected string"))

let get_int ctx = function
  | Json.Num f when Float.is_integer f -> int_of_float f
  | _ -> raise (Bad (ctx ^ ": expected integer"))

let get_float ctx = function
  | Json.Num f -> f
  | Json.Null -> nan
  | _ -> raise (Bad (ctx ^ ": expected number"))

let get_bool ctx = function
  | Json.Bool b -> b
  | _ -> raise (Bad (ctx ^ ": expected bool"))

let coord_of_json j =
  {
    c_time1 = get_int "coord.t1" (Json.member "t1" j);
    c_tid1 = get_int "coord.tid1" (Json.member "tid1" j);
    c_time2 = get_int "coord.t2" (Json.member "t2" j);
    c_tid2 = get_int "coord.tid2" (Json.member "tid2" j);
  }

let window_of_json j =
  {
    w_id = get_int "window.id" (Json.member "id" j);
    w_first = get_str "window.first" (Json.member "first" j);
    w_second = get_str "window.second" (Json.member "second" j);
    w_field = get_str "window.field" (Json.member "field" j);
    w_side = get_str "window.side" (Json.member "side" j);
    w_count = get_int "window.count" (Json.member "count" j);
    w_weight = get_int "window.weight" (Json.member "weight" j);
    w_round = get_int "window.round" (Json.member "round" j);
    w_coords = List.map coord_of_json (Json.to_list (Json.member "coords" j));
  }

let constraint_of_json j =
  {
    c_tag = get_str "constraint.tag" (Json.member "tag" j);
    c_rel = get_str "constraint.rel" (Json.member "rel" j);
    c_rhs = get_float "constraint.rhs" (Json.member "rhs" j);
    c_activity = get_float "constraint.activity" (Json.member "activity" j);
    c_coeff = get_float "constraint.coeff" (Json.member "coeff" j);
    c_dual = get_float "constraint.dual" (Json.member "dual" j);
    c_binding = get_bool "constraint.binding" (Json.member "binding" j);
  }

let verdict_of_json j =
  {
    v_op = get_str "verdict.op" (Json.member "op" j);
    v_role = get_str "verdict.role" (Json.member "role" j);
    v_probability =
      get_float "verdict.probability" (Json.member "probability" j);
    v_margin = get_float "verdict.margin" (Json.member "margin" j);
    v_reduced_cost =
      get_float "verdict.reduced_cost" (Json.member "reduced_cost" j);
    v_first_round = get_int "verdict.first_round" (Json.member "first_round" j);
    v_stable_round =
      get_int "verdict.stable_round" (Json.member "stable_round" j);
    v_windows = List.map window_of_json (Json.to_list (Json.member "windows" j));
    v_constraints =
      List.map constraint_of_json (Json.to_list (Json.member "constraints" j));
  }

let round_of_json j =
  {
    r_round = get_int "round.round" (Json.member "round" j);
    r_windows_after =
      get_int "round.windows_after" (Json.member "windows_after" j);
    r_objective = get_float "round.objective" (Json.member "objective" j);
    r_degraded = get_bool "round.degraded" (Json.member "degraded" j);
    r_verdicts =
      List.map
        (fun v ->
          ( get_str "round.verdict.op" (Json.member "op" v),
            get_str "round.verdict.role" (Json.member "role" v) ))
        (Json.to_list (Json.member "verdicts" j));
    r_delays =
      List.map
        (fun d ->
          ( get_str "round.delay.op" (Json.member "op" d),
            get_int "round.delay.us" (Json.member "us" d) ))
        (Json.to_list (Json.member "delays" j));
  }

let of_json j =
  match
    (match get_str "format" (Json.member "format" j) with
    | "sherlock-provenance" -> ()
    | other -> raise (Bad (Printf.sprintf "unknown format %S" other)));
    {
      p_app = get_str "app" (Json.member "app" j);
      p_seed = get_int "seed" (Json.member "seed" j);
      p_rounds = List.map round_of_json (Json.to_list (Json.member "rounds" j));
      p_verdicts =
        List.map verdict_of_json (Json.to_list (Json.member "verdicts" j));
    }
  with
  | t -> Ok t
  | exception Bad msg -> Error msg

let to_string t = Json.to_string (to_json t)

let of_string s =
  match Json.of_string s with
  | Error e -> Error e
  | Ok j -> of_json j

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string t);
      output_char oc '\n')

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> of_string s
  | exception Sys_error e -> Error e

(* --- queries and rendering --- *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  nl = 0
  ||
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let find t query =
  let exact, partial =
    List.partition (fun v -> v.v_op = query) t.p_verdicts
  in
  exact @ List.filter (fun v -> contains ~needle:query v.v_op) partial

let pp_coord ppf c =
  Format.fprintf ppf "t=%d/tid=%d -> t=%d/tid=%d" c.c_time1 c.c_tid1 c.c_time2
    c.c_tid2

let pp_window ppf (w : window_evidence) =
  Format.fprintf ppf "[w%d] %s -> %s  field %s  side=%s x%d  weight=%d  round %d"
    w.w_id w.w_first w.w_second w.w_field w.w_side w.w_count w.w_weight
    w.w_round;
  match w.w_coords with
  | [] -> ()
  | c :: rest ->
    Format.fprintf ppf "@,|      at %a" pp_coord c;
    if rest <> [] then Format.fprintf ppf " (+%d more)" (List.length rest)

let pp_constraint ppf (c : constraint_evidence) =
  Format.fprintf ppf "%s  %s %s  activity=%g  coeff=%g  dual=%g%s"
    (if c.c_tag = "" then "(untagged)" else c.c_tag)
    c.c_rel
    (Format.asprintf "%g" c.c_rhs)
    c.c_activity c.c_coeff c.c_dual
    (if c.c_binding then "  binding" else "")

let pp_verdict ppf (v : verdict_evidence) =
  Format.fprintf ppf "@[<v>%s verdict: %s  p=%.3f  margin=%.4g  rc=%.4g@,"
    v.v_role v.v_op v.v_probability v.v_margin v.v_reduced_cost;
  Format.fprintf ppf "|- windows (%d)@," (List.length v.v_windows);
  List.iter (fun w -> Format.fprintf ppf "|  @[<v>%a@]@," pp_window w) v.v_windows;
  Format.fprintf ppf "|- constraints (%d)@," (List.length v.v_constraints);
  List.iter
    (fun c -> Format.fprintf ppf "|  %a@," pp_constraint c)
    v.v_constraints;
  Format.fprintf ppf "`- rounds: first seen %d, stable from %d@]"
    v.v_first_round v.v_stable_round

let pp ppf t =
  Format.fprintf ppf "@[<v>provenance for %s (seed %d): %d verdicts, %d rounds@,"
    t.p_app t.p_seed
    (List.length t.p_verdicts)
    (List.length t.p_rounds);
  List.iter
    (fun (r : round_trace) ->
      Format.fprintf ppf "round %d: %d windows, %d verdicts, %d delays%s@,"
        r.r_round r.r_windows_after
        (List.length r.r_verdicts)
        (List.length r.r_delays)
        (if r.r_degraded then " (degraded)"
         else Format.asprintf ", objective %.6g" r.r_objective))
    t.p_rounds;
  List.iter (fun v -> Format.fprintf ppf "@,%a@," pp_verdict v) t.p_verdicts;
  Format.fprintf ppf "@]"
