(** Verdict provenance: the evidence behind every inferred verdict.

    SherLock's answer is a set of acquire/release verdicts; this module
    is the record of {e why} — which merged windows (with their trace
    coordinates) mention the op, which LP rows touch its variable and
    how tight they are at the optimum (activities, dual values, reduced
    costs), what the delay plan of each round injected, and at which
    round the verdict stabilized.  The dual value of a verdict
    variable's upper-bound row doubles as a confidence margin: at a
    minimum a binding [p <= 1] cap has a non-positive dual, and its
    negation is the objective cost of forcing the probability any lower
    — 0 means the verdict is at a degenerate optimum and could move
    freely; large means the encoding pushes hard against the cap.

    Everything here is plain data with string operation names, so the
    library depends only on the standard library and both the CLI and
    external tooling can consume the JSON sidecar without linking the
    pipeline. *)

type coord = {
  c_time1 : int;  (** virtual time of the first conflicting access *)
  c_tid1 : int;
  c_time2 : int;
  c_tid2 : int;
}
(** Trace coordinates of one dynamic window, stable across the text and
    binary trace formats (both preserve times and thread ids exactly). *)

type window_evidence = {
  w_id : int;  (** stable merged-window id (arrival order) *)
  w_first : string;  (** first conflicting access (static op name) *)
  w_second : string;
  w_field : string;  (** conflicting field *)
  w_side : string;  (** which side mentions the op: "rel" or "acq" *)
  w_count : int;  (** dynamic occurrences of the op in this window *)
  w_weight : int;  (** identical dynamic windows merged into this one *)
  w_round : int;  (** round whose runs first observed the window (1-based) *)
  w_coords : coord list;  (** sampled trace coordinates (capped) *)
}

type constraint_evidence = {
  c_tag : string;  (** source tag of the LP row *)
  c_rel : string;  (** "<=" | ">=" | "=" *)
  c_rhs : float;
  c_activity : float;  (** left-hand side at the optimum *)
  c_coeff : float;  (** coefficient of the verdict's variable in the row *)
  c_dual : float;  (** simplex multiplier of the row at the optimum *)
  c_binding : bool;  (** activity meets rhs (within tolerance) *)
}

type verdict_evidence = {
  v_op : string;  (** static operation name *)
  v_role : string;  (** "acquire" | "release" *)
  v_probability : float;
  v_margin : float;
      (** confidence margin: negated dual of the [p <= 1] cap *)
  v_reduced_cost : float;  (** reduced cost of the verdict variable *)
  v_first_round : int;  (** first round the verdict appeared (1-based) *)
  v_stable_round : int;
      (** round from which the verdict held through the final round *)
  v_windows : window_evidence list;
  v_constraints : constraint_evidence list;
}

type round_trace = {
  r_round : int;  (** 1-based *)
  r_windows_after : int;  (** merged-window count after this round's runs *)
  r_objective : float;  (** LP objective (nan when the solve degraded) *)
  r_degraded : bool;
  r_verdicts : (string * string) list;  (** (op, role) after this round *)
  r_delays : (string * int) list;
      (** delay plan injected during this round's runs: op -> microseconds *)
}

type t = {
  p_app : string;
  p_seed : int;
  p_rounds : round_trace list;
  p_verdicts : verdict_evidence list;
}

val equal : t -> t -> bool
(** Structural equality, treating [nan] as equal to itself (so a decoded
    degraded round compares equal to the one that was encoded). *)

(** {1 JSON codec} *)

val to_json : t -> Json.t

val of_json : Json.t -> (t, string) result

val to_string : t -> string

val of_string : string -> (t, string) result

val save : string -> t -> unit
(** Write the JSON sidecar (single line, trailing newline). *)

val load : string -> (t, string) result

(** {1 Queries and rendering} *)

val find : t -> string -> verdict_evidence list
(** Verdicts whose operation name contains the query as a substring
    (exact matches first). *)

val pp_verdict : Format.formatter -> verdict_evidence -> unit
(** Render one verdict's evidence tree:
    windows -> constraints (with duals) -> rounds. *)

val pp : Format.formatter -> t -> unit
(** Header plus every verdict's evidence tree. *)
