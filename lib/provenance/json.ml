type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* Shortest decimal rendering that parses back to the same float; %.17g
   always does, %.12g usually does and is easier on the eyes. *)
let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else begin
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f
  end

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f ->
      if not (Float.is_finite f) then
        invalid_arg "Json.to_string: non-finite number";
      Buffer.add_string buf (float_str f)
    | Str s -> escape buf s
    | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          go x)
        xs;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          go x)
        fields;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else begin
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' ->
          (if !pos >= n then fail "unterminated escape"
           else begin
             let e = s.[!pos] in
             advance ();
             match e with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'n' -> Buffer.add_char buf '\n'
             | 'r' -> Buffer.add_char buf '\r'
             | 't' -> Buffer.add_char buf '\t'
             | 'u' ->
               if !pos + 4 > n then fail "truncated \\u escape";
               let hex = String.sub s !pos 4 in
               pos := !pos + 4;
               let code =
                 try int_of_string ("0x" ^ hex)
                 with _ -> fail "bad \\u escape"
               in
               (* UTF-8 encode the code point (surrogates kept as-is
                  bytes-wise is wrong; the writer never emits them for
                  the code points provenance uses, which are ASCII). *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char buf
                   (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
             | _ -> fail "bad escape"
           end);
          go ()
        | c -> Buffer.add_char buf c; go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number";
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> Num f
    | None -> fail (Printf.sprintf "bad number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        elements ();
        Arr (List.rev !items)
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (p, msg) ->
    Error (Printf.sprintf "byte %d: %s" p msg)

let member k = function
  | Obj fields -> (
    match List.assoc_opt k fields with Some v -> v | None -> Null)
  | _ -> Null

let to_list = function
  | Arr xs -> xs
  | _ -> []
