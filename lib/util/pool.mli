(** Reusable worker-domain pool: spawn once, park between batches.

    Domains are spawned lazily by the first {!run} and parked on a
    condition variable between batches, so a caller issuing many batches
    pays the ~100µs-1ms spawn cost once per worker, not once per batch.
    The submitting domain participates in every batch, so a pool of
    [k-1] workers serves [k] domains.

    Pools are meant to be scoped, not global: an idle parked domain
    still takes part in every stop-the-world minor collection (measured
    ~2x slowdown of unrelated sequential work on a single-core host), so
    create the pool where parallel work starts and {!retire} it as soon
    as the last batch completes.

    Batch thunks must not raise and must not call {!run} on the same
    pool (a nested batch deadlocks waiting for workers parked inside the
    outer one); {!parallel_map} wraps both rules for the common
    map-an-array case. *)

type t

val create : unit -> t
(** An empty pool: no domains until the first {!run} asks for some. *)

val run : t -> workers:int -> (unit -> unit) -> unit
(** [run p ~workers f] publishes [f] as a batch to [workers] pool
    domains (spawning any that are missing), runs [f] on the calling
    domain too, and returns once every participant has finished.  [f]
    is called [workers + 1] times total and must coordinate internally
    (e.g. an atomic work counter).  [f] must not raise and must not call
    [run] on [p]. *)

val retire : t -> unit
(** Stop and join every worker.  Idempotent; the pool is dead
    afterwards (a later {!run} would spawn fresh workers against a
    stopped flag and hang — don't reuse a retired pool). *)

val parallel_map : pool:t -> domains:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** Order-preserving map over the array with up to [domains] domains
    (pool workers plus the caller) pulling indices from a shared atomic
    counter.  [f] calls must be mutually independent.  If some [f]
    raises, the shared counter is drained so every not-yet-started item
    is cancelled (at most one in-flight item per domain still
    completes), and the first exception is re-raised on the calling
    domain with its backtrace once the batch has drained. *)

val live_domains : unit -> int
(** Worker domains currently spawned across every live pool in the
    process (a telemetry gauge source). *)

val busy_domains : unit -> int
(** Participants — pool workers plus submitting callers — currently
    inside a batch thunk, process-wide (a telemetry gauge source). *)
