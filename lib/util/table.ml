type row =
  | Cells of string list
  | Separator

type t = {
  title : string;
  header : string list;
  mutable rows : row list; (* reversed *)
}

let create ~title ~header = { title; header; rows = [] }

let add_row t cells = t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad_to n cells =
  let len = List.length cells in
  if len >= n then cells else cells @ List.init (n - len) (fun _ -> "")

let render t =
  let ncols = List.length t.header in
  let rows = List.rev t.rows in
  let all_cells =
    t.header
    :: List.filter_map (function Cells c -> Some (pad_to ncols c) | Separator -> None) rows
  in
  let widths = Array.make ncols 0 in
  let record cells =
    List.iteri (fun i c -> if i < ncols then widths.(i) <- max widths.(i) (String.length c)) cells
  in
  List.iter record all_cells;
  let buf = Buffer.create 256 in
  let render_cells cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf c;
        if i < ncols - 1 then Buffer.add_string buf (String.make (widths.(i) - String.length c) ' '))
      (pad_to ncols cells);
    Buffer.add_char buf '\n'
  in
  let total_width = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
  let rule = String.make (max total_width (String.length t.title)) '-' in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  render_cells t.header;
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (function
      | Cells cells -> render_cells cells
      | Separator ->
        Buffer.add_string buf rule;
        Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()
