(** ASCII table rendering for the benchmark harness.

    Every table and figure of the paper is regenerated as text by
    [bench/main.exe]; this module renders aligned tables in the style of
    the paper so that the output can be compared against it at a glance. *)

type t

val create : title:string -> header:string list -> t
(** A table with a caption and column headers. *)

val add_row : t -> string list -> unit
(** Append a row.  Rows shorter than the header are padded with blanks. *)

val add_separator : t -> unit
(** Append a horizontal rule (used before summary rows). *)

val render : t -> string
(** Render with box-drawing-free ASCII alignment. *)

val print : t -> unit
(** [render] to stdout followed by a blank line. *)
