(* Reusable worker-domain pool, scoped to one computation.  Domain.spawn
   costs ~100µs-1ms each (fresh minor heap, runtime registration), and
   paying it per batch per worker is enough to erase the parallel speedup
   on short workloads.  A pool spawns its workers lazily on the first
   batch and parks them on a condition variable between batches, so a
   multi-batch computation pays the spawn cost once rather than once per
   batch.

   The pool is deliberately NOT a process-global singleton.  An idle
   domain is far from free: every minor collection is a stop-the-world
   across all live domains, and measurement on a single-core host showed
   one parked worker slowing unrelated sequential inference by ~2x.
   Scoping the pool to one computation — and joining the workers in
   [retire] as soon as the last batch completes — confines that tax to
   the caller that asked for parallelism.

   A batch hands every worker the same thunk (which internally pulls
   indices from an atomic counter) and the submitting domain participates
   too, so a pool of k-1 workers serves k domains.  Batches never
   overlap: [run] returns only after all workers that picked up the batch
   have finished.  Batch thunks must not raise — [parallel_map] parks
   exceptions in its own failure slot — and must not themselves call
   [run] on the same pool (a nested batch would deadlock waiting for
   workers parked inside the outer one). *)

(* Process-wide occupancy, summed over every live pool: how many worker
   domains exist and how many participants (workers plus submitting
   callers) are inside a batch thunk right now.  Kept here — rather than
   per pool — because the consumer is the telemetry plane's gauges,
   which read "the process" and cannot enumerate scoped pools.  Plain
   atomics: writers touch them once per spawn/retire/batch, never per
   work item. *)
let live = Atomic.make 0

let busy = Atomic.make 0

let live_domains () = Atomic.get live

let busy_domains () = Atomic.get busy

type t = {
  mutex : Mutex.t;
  start : Condition.t; (* a new batch is published, or [stop] was set *)
  finished : Condition.t; (* the current batch fully drained *)
  mutable batch : unit -> unit;
  mutable generation : int; (* bumped once per published batch *)
  mutable remaining : int; (* workers yet to pick up the current batch *)
  mutable running : int; (* workers inside the current batch thunk *)
  mutable handles : unit Domain.t list;
  mutable stop : bool;
}

let create () =
  {
    mutex = Mutex.create ();
    start = Condition.create ();
    finished = Condition.create ();
    batch = ignore;
    generation = 0;
    remaining = 0;
    running = 0;
    handles = [];
    stop = false;
  }

let worker p () =
  let seen = ref 0 in
  Mutex.lock p.mutex;
  let rec loop () =
    if p.stop then Mutex.unlock p.mutex
    else if p.generation > !seen && p.remaining > 0 then begin
      seen := p.generation;
      p.remaining <- p.remaining - 1;
      p.running <- p.running + 1;
      let f = p.batch in
      Mutex.unlock p.mutex;
      ignore (Atomic.fetch_and_add busy 1);
      f ();
      ignore (Atomic.fetch_and_add busy (-1));
      Mutex.lock p.mutex;
      p.running <- p.running - 1;
      if p.remaining = 0 && p.running = 0 then Condition.broadcast p.finished;
      loop ()
    end
    else begin
      Condition.wait p.start p.mutex;
      loop ()
    end
  in
  loop ()

(* With [p.mutex] held: grow the pool to at least [want] workers. *)
let ensure p want =
  for _ = List.length p.handles + 1 to want do
    p.handles <- Domain.spawn (worker p) :: p.handles;
    ignore (Atomic.fetch_and_add live 1)
  done

let run p ~workers f =
  Mutex.lock p.mutex;
  ensure p workers;
  p.batch <- f;
  p.generation <- p.generation + 1;
  p.remaining <- workers;
  Condition.broadcast p.start;
  Mutex.unlock p.mutex;
  ignore (Atomic.fetch_and_add busy 1);
  f ();
  ignore (Atomic.fetch_and_add busy (-1));
  Mutex.lock p.mutex;
  while p.remaining > 0 || p.running > 0 do
    Condition.wait p.finished p.mutex
  done;
  p.batch <- ignore;
  Mutex.unlock p.mutex

let retire p =
  Mutex.lock p.mutex;
  p.stop <- true;
  Condition.broadcast p.start;
  let hs = p.handles in
  p.handles <- [];
  Mutex.unlock p.mutex;
  List.iter
    (fun h ->
      Domain.join h;
      ignore (Atomic.fetch_and_add live (-1)))
    hs

(* Order-preserving map over [arr] with up to [domains] domains (pool
   workers plus the caller) pulling indices from a shared counter.  Each
   [f] call must be independent of the others, so the only cross-domain
   traffic is the [Atomic] work counter, the failure slot, and the
   results array, each slot written by exactly one worker before the
   batch completes.  Workers never raise: the first exception is parked
   in [failure] and the work counter is drained — pushed past [n] — so
   every outstanding item is cancelled at once instead of each worker
   discovering the failure one fetched item at a time; at most the
   items already in flight (one per domain) still complete.  Draining
   also keeps the happy path free of a per-item failure load.  The
   exception is re-raised on the calling domain once the batch has
   drained. *)
let parallel_map ~pool ~domains f arr =
  let n = Array.length arr in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let failure = Atomic.make None in
  let work () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (match f i arr.(i) with
        | r -> results.(i) <- Some r
        | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          ignore (Atomic.compare_and_set failure None (Some (e, bt)));
          (* Cancel outstanding items.  [Atomic.set] may race with a
             concurrent [fetch_and_add], but the counter only ever needs
             to be [>= n] from here on, and any index handed out before
             the store lands was a legitimately in-flight item. *)
          Atomic.set next n);
        loop ()
      end
    in
    loop ()
  in
  run pool ~workers:(min domains n - 1) work;
  match Atomic.get failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> Array.map (function Some r -> r | None -> assert false) results
