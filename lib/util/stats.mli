(** Small statistics helpers used by the inference engine.

    The Acquisition-Time-Mostly-Varies hypothesis (paper §2) ranks methods
    by the coefficient of variation of their durations and by the
    percentile of that coefficient among all methods; these are the
    primitives it needs. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)

val coefficient_of_variation : float list -> float
(** [stddev xs /. mean xs]; 0 when the mean is 0 or the list is short.
    This is the paper's CV(duration(m)) in Equation (5). *)

val percentile_rank : float list -> float -> float
(** [percentile_rank xs x] is the fraction of elements of [xs] that are
    strictly below [x], in [\[0, 1\]].  0 on the empty list.  This is the
    paper's [percentile] in Equation (5): a method whose duration CV beats
    most others gets a rank near 1 and hence a near-zero acquire penalty. *)

val median : float list -> float
(** Median; 0 on the empty list. *)

val sum : float list -> float
(** Sum; 0 on the empty list. *)
