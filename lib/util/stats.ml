let sum = List.fold_left ( +. ) 0.0

let mean = function
  | [] -> 0.0
  | xs -> sum xs /. float_of_int (List.length xs)

let stddev = function
  | [] | [ _ ] -> 0.0
  | xs ->
    let m = mean xs in
    let sq_dev x = (x -. m) *. (x -. m) in
    sqrt (mean (List.map sq_dev xs))

let coefficient_of_variation xs =
  let m = mean xs in
  if m = 0.0 then 0.0 else stddev xs /. m

let percentile_rank xs x =
  match xs with
  | [] -> 0.0
  | _ ->
    let below = List.length (List.filter (fun y -> y < x) xs) in
    float_of_int below /. float_of_int (List.length xs)

let median = function
  | [] -> 0.0
  | xs ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0
