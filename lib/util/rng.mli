(** Deterministic pseudo-random number generation.

    SherLock's evaluation depends on reproducible schedules: the simulator,
    the perturber, and the benchmark harness all draw randomness from an
    explicit generator state rather than a global one, so a (seed, round)
    pair always replays the same execution.  The implementation is
    splitmix64, which is small, fast, and has no global state. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a fresh generator from [seed].  Generators built
    from equal seeds produce equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator that continues the same stream. *)

val split : t -> t
(** [split t] derives a statistically independent generator from [t],
    advancing [t].  Used to give every simulated thread its own stream so
    that adding a thread does not perturb the draws of the others. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in [\[lo, hi\]] inclusive.  Requires
    [lo <= hi]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a list -> 'a
(** Uniform choice from a non-empty list.  Raises [Invalid_argument] on
    the empty list. *)
