module Int_map = Map.Make (Int)

type t = { coeffs : float Int_map.t; const : float }

let zero = { coeffs = Int_map.empty; const = 0.0 }

let const c = { coeffs = Int_map.empty; const = c }

let var ?(coeff = 1.0) v =
  if coeff = 0.0 then zero else { coeffs = Int_map.singleton v coeff; const = 0.0 }

let merge_coeff a b =
  match (a, b) with
  | Some x, Some y ->
    let s = x +. y in
    if s = 0.0 then None else Some s
  | (Some _ as x), None | None, (Some _ as x) -> x
  | None, None -> None

let add a b =
  {
    coeffs = Int_map.merge (fun _ x y -> merge_coeff x y) a.coeffs b.coeffs;
    const = a.const +. b.const;
  }

let scale k e =
  if k = 0.0 then zero
  else { coeffs = Int_map.map (fun c -> k *. c) e.coeffs; const = k *. e.const }

let neg e = scale (-1.0) e

let sub a b = add a (neg b)

let sum es = List.fold_left add zero es

let constant e = e.const

let terms e = Int_map.bindings e.coeffs

let coeff e v = match Int_map.find_opt v e.coeffs with Some c -> c | None -> 0.0

let eval assign e =
  Int_map.fold (fun v c acc -> acc +. (c *. assign v)) e.coeffs e.const

let pp ~names ppf e =
  let first = ref true in
  let sep () =
    if !first then first := false else Format.fprintf ppf " + "
  in
  Int_map.iter
    (fun v c ->
      sep ();
      Format.fprintf ppf "%g*%s" c (names v))
    e.coeffs;
  if e.const <> 0.0 || !first then begin
    sep ();
    Format.fprintf ppf "%g" e.const
  end
