(** Linear expressions over integer-indexed variables.

    This is the expression language of the LP layer: an affine combination
    [c0 + sum_i (c_i * x_i)].  Variables are plain integers issued by
    {!Problem}; coefficients of equal variables merge on addition and
    zero-coefficient terms are dropped, so expressions are canonical. *)

type t

val zero : t

val const : float -> t
(** Constant expression. *)

val var : ?coeff:float -> int -> t
(** [var v] is [1.0 * x_v]; [var ~coeff v] scales it. *)

val add : t -> t -> t
val sub : t -> t -> t

val neg : t -> t

val scale : float -> t -> t

val sum : t list -> t

val constant : t -> float
(** The affine constant [c0]. *)

val terms : t -> (int * float) list
(** Variable terms in increasing variable order, zero coefficients
    omitted. *)

val coeff : t -> int -> float
(** Coefficient of a variable, 0 if absent. *)

val eval : (int -> float) -> t -> float
(** Evaluate under an assignment. *)

val pp : names:(int -> string) -> Format.formatter -> t -> unit
(** Human-readable form, e.g. [0.2*x + 1.0*y - 3]. *)
