(** LP presolve for one-shot solves.

    Applies a few safe reductions before handing the program to the
    simplex: variables forced to a bound by their singleton rows are
    fixed and substituted out, empty rows are dropped after a
    consistency check, duplicate rows keep only the tightest right-hand
    side, and duplicate hinge rows (identical bodies with private
    penalty columns) are merged with their objective weights summed.
    [r_restore] rebuilds a full assignment from the reduced one, so the
    returned solution still satisfies every original constraint. *)

type stats = {
  removed_rows : int;  (** rows dropped (empty, duplicate, or merged) *)
  fixed_vars : int;  (** variables fixed to a forced bound *)
  merged_hinges : int;  (** of the removed rows, hinge merges *)
}

type result = {
  r_constrs : Simplex.constr list;
  r_objective : (int * float) list;
  r_offset : float;  (** objective contribution of the fixed variables *)
  r_stats : stats;
  r_infeasible : bool;  (** a reduction proved the program infeasible *)
  r_restore : (int -> float) -> int -> float;
      (** [r_restore reduced v]: value of original variable [v] given a
          lookup into the reduced problem's solution *)
  r_row_map : int array;
      (** original constraint index -> row index in [r_constrs].  Rows
          dropped as duplicates (plain or hinge) map to their surviving
          representative, so their duals can be read off it; rows removed
          outright (empty after substitution, singleton bounds absorbed
          into a variable fix) map to [-1]. *)
  r_var_map : int array;
      (** original variable -> the variable carrying its reduced cost in
          the reduced problem: itself normally, the kept penalty twin
          after a hinge merge, [-1] when fixed and substituted out. *)
}

val run :
  num_vars:int ->
  objective:(int * float) list ->
  ?ub:float array ->
  Simplex.constr list ->
  result
(** [~ub], when given, seeds each variable's upper bound (the caps the
    sparse engine enforces as column bounds rather than rows), so
    singleton [>=] rows meeting the cap — rounding pins — still fix the
    variable.  The caller keeps passing the same [ub] array to the
    solver; reductions never loosen a bound. *)
