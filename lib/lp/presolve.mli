(** LP presolve for one-shot solves.

    Applies a few safe reductions before handing the program to the
    simplex: variables forced to a bound by their singleton rows are
    fixed and substituted out, empty rows are dropped after a
    consistency check, duplicate rows keep only the tightest right-hand
    side, and duplicate hinge rows (identical bodies with private
    penalty columns) are merged with their objective weights summed.
    [r_restore] rebuilds a full assignment from the reduced one, so the
    returned solution still satisfies every original constraint. *)

type stats = {
  removed_rows : int;  (** rows dropped (empty, duplicate, or merged) *)
  fixed_vars : int;  (** variables fixed to a forced bound *)
  merged_hinges : int;  (** of the removed rows, hinge merges *)
}

type result = {
  r_constrs : Simplex.constr list;
  r_objective : (int * float) list;
  r_offset : float;  (** objective contribution of the fixed variables *)
  r_stats : stats;
  r_infeasible : bool;  (** a reduction proved the program infeasible *)
  r_restore : (int -> float) -> int -> float;
      (** [r_restore reduced v]: value of original variable [v] given a
          lookup into the reduced problem's solution *)
}

val run :
  num_vars:int ->
  objective:(int * float) list ->
  Simplex.constr list ->
  result
