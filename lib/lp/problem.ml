type var = int

type status =
  | Solved of float
  | Infeasible
  | Unbounded

type t = {
  mutable names : string list; (* reversed *)
  mutable count : int;
  mutable constrs : Simplex.constr list; (* reversed *)
  mutable nconstrs : int;
  mutable objective : Linexpr.t;
}

let create () =
  { names = []; count = 0; constrs = []; nconstrs = 0; objective = Linexpr.zero }

let push_constr t c =
  t.constrs <- c :: t.constrs;
  t.nconstrs <- t.nconstrs + 1

let add_constr t expr relation rhs =
  push_constr t
    {
      Simplex.row = Linexpr.terms expr;
      relation;
      rhs = rhs -. Linexpr.constant expr;
    }

let add_var t ?ub name =
  let v = t.count in
  t.count <- v + 1;
  t.names <- name :: t.names;
  (match ub with
  | Some u -> add_constr t (Linexpr.var v) Simplex.Le u
  | None -> ());
  v

let name t v =
  let arr = Array.of_list (List.rev t.names) in
  if v >= 0 && v < Array.length arr then arr.(v) else Printf.sprintf "_v%d" v

let num_vars t = t.count

let add_le t e rhs = add_constr t e Simplex.Le rhs

let add_ge t e rhs = add_constr t e Simplex.Ge rhs

let add_eq t e rhs = add_constr t e Simplex.Eq rhs

let add_objective t e = t.objective <- Linexpr.add t.objective e

let hinge t ~weight nm e =
  let h = add_var t nm in
  (* h >= e, i.e. e - h <= 0; h >= 0 is implicit. *)
  add_le t (Linexpr.sub e (Linexpr.var h)) 0.0;
  add_objective t (Linexpr.var ~coeff:weight h);
  h

let abs t ~weight nm e =
  let a = add_var t nm in
  add_le t (Linexpr.sub e (Linexpr.var a)) 0.0;
  add_le t (Linexpr.sub (Linexpr.neg e) (Linexpr.var a)) 0.0;
  add_objective t (Linexpr.var ~coeff:weight a);
  a

let fault : status option ref = ref None

let set_fault s = fault := s

let solve t =
  match !fault with
  | Some s -> (s, fun _ -> 0.0)
  | None ->
  let objective = Linexpr.terms t.objective in
  match
    Simplex.solve ~num_vars:t.count ~objective (List.rev t.constrs)
  with
  | Simplex.Optimal { objective = obj; solution } ->
    let obj = obj +. Linexpr.constant t.objective in
    (Solved obj, fun v -> if v >= 0 && v < Array.length solution then solution.(v) else 0.0)
  | Simplex.Infeasible -> (Infeasible, fun _ -> 0.0)
  | Simplex.Unbounded -> (Unbounded, fun _ -> 0.0)

let pp_stats ppf t =
  Format.fprintf ppf "lp: %d vars, %d constraints" t.count t.nconstrs
