type var = int

type row_id = int

type status =
  | Solved of float
  | Infeasible
  | Unbounded
  | Aborted

type engine =
  | Dense
  | Sparse

type solve_info = {
  engine : engine;
  pivots : int;
  warm : bool;
  pivots_saved : int;
  presolve_removed_rows : int;
  presolve_fixed_vars : int;
  cold_restarts : int;
  refactors : int;
  eta_len : int;
  bound_rows_saved : int;
}

let no_info engine =
  {
    engine;
    pivots = 0;
    warm = false;
    pivots_saved = 0;
    presolve_removed_rows = 0;
    presolve_fixed_vars = 0;
    cold_restarts = 0;
    refactors = 0;
    eta_len = 0;
    bound_rows_saved = 0;
  }

type crow = {
  c_row : (int * float) list;
  c_rel : Simplex.relation;
  mutable c_rhs : float;
  c_tag : string;
  c_bound : var;
      (* >= 0: virtual upper-bound row of that variable.  Kept in the
         row list so ids, row_info and provenance stay stable and the
         Dense oracle still sees a real constraint, but sparse engines
         get a column bound instead of a row. *)
}

type row_info = {
  ri_tag : string;
  ri_terms : (var * float) list;
  ri_rel : Simplex.relation;
  ri_rhs : float;
}

type duals = {
  d_rows : float array;
  d_vars : float array;
}

(* Incremental-solve state: a live {!Simplex.t} plus watermarks tracking
   which of the problem's variables and rows have been pushed into it.
   Sync is lazy — [solve_incremental] pushes whatever accumulated since
   the previous call and reoptimizes from the existing basis. *)
type istate = {
  sx : Simplex.t;
  mutable vars_pushed : int;
  mutable rows_pushed : int;
  mutable col_of_var : int array;
  mutable row_ids : int array;
}

type t = {
  mutable names : string list; (* reversed *)
  mutable count : int;
  mutable rows : crow array; (* growable; [0, nconstrs) live *)
  mutable nconstrs : int;
  mutable ub_rows : int array; (* growable; per var, its ub row or -1 *)
  mutable ubs : float array; (* growable; per var, its cap or infinity *)
  mutable objective : Linexpr.t;
  mutable engine : engine;
  mutable use_presolve : bool;
  mutable istate : istate option;
  mutable info : solve_info;
  mutable capture_duals : bool;
  mutable duals : duals option;
}

let create () =
  {
    names = [];
    count = 0;
    rows =
      Array.make 16
        { c_row = []; c_rel = Simplex.Le; c_rhs = 0.0; c_tag = ""; c_bound = -1 };
    nconstrs = 0;
    ub_rows = Array.make 16 (-1);
    ubs = Array.make 16 infinity;
    objective = Linexpr.zero;
    engine = Sparse;
    use_presolve = true;
    istate = None;
    info = no_info Sparse;
    capture_duals = false;
    duals = None;
  }

let set_engine t e = t.engine <- e

let engine t = t.engine

let set_presolve t b = t.use_presolve <- b

let grow_int a n =
  if Array.length a >= n then a
  else begin
    let b = Array.make (max n (2 * Array.length a)) (-1) in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let push_constr t c =
  if t.nconstrs >= Array.length t.rows then begin
    let rows = Array.make (2 * Array.length t.rows) c in
    Array.blit t.rows 0 rows 0 t.nconstrs;
    t.rows <- rows
  end;
  t.rows.(t.nconstrs) <- c;
  t.nconstrs <- t.nconstrs + 1;
  t.nconstrs - 1

let add_constr ?(tag = "") ?(bound = -1) t expr relation rhs =
  push_constr t
    {
      c_row = Linexpr.terms expr;
      c_rel = relation;
      c_rhs = rhs -. Linexpr.constant expr;
      c_tag = tag;
      c_bound = bound;
    }

let grow_float a n =
  if Array.length a >= n then a
  else begin
    let b = Array.make (max n (2 * Array.length a)) infinity in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let add_var t ?ub name =
  let v = t.count in
  t.count <- v + 1;
  t.names <- name :: t.names;
  t.ub_rows <- grow_int t.ub_rows (v + 1);
  t.ub_rows.(v) <- -1;
  t.ubs <- grow_float t.ubs (v + 1);
  t.ubs.(v) <- infinity;
  (match ub with
  | Some u ->
    t.ubs.(v) <- u;
    t.ub_rows.(v) <-
      add_constr ~tag:("ub:" ^ name) ~bound:v t (Linexpr.var v) Simplex.Le u
  | None -> ());
  v

let ub_row t v =
  if v >= 0 && v < t.count && t.ub_rows.(v) >= 0 then Some t.ub_rows.(v)
  else None

let name t v =
  let arr = Array.of_list (List.rev t.names) in
  if v >= 0 && v < Array.length arr then arr.(v) else Printf.sprintf "_v%d" v

let num_vars t = t.count

let num_rows t = t.nconstrs

let row_info t i =
  let r = t.rows.(i) in
  { ri_tag = r.c_tag; ri_terms = r.c_row; ri_rel = r.c_rel; ri_rhs = r.c_rhs }

let row_activity t i assign =
  List.fold_left (fun s (v, k) -> s +. (k *. assign v)) 0.0 t.rows.(i).c_row

let add_le ?tag t e rhs = ignore (add_constr ?tag t e Simplex.Le rhs)

let add_ge ?tag t e rhs = ignore (add_constr ?tag t e Simplex.Ge rhs)

let add_eq ?tag t e rhs = ignore (add_constr ?tag t e Simplex.Eq rhs)

let add_ge_row ?tag t e rhs = add_constr ?tag t e Simplex.Ge rhs

let set_row_rhs t id rhs =
  t.rows.(id).c_rhs <- rhs;
  match t.istate with
  | Some s when id < s.rows_pushed && s.row_ids.(id) >= 0 ->
    Simplex.set_rhs s.sx s.row_ids.(id) rhs
  | _ -> ()

let add_objective t e = t.objective <- Linexpr.add t.objective e

let set_objective t e = t.objective <- e

let hinge t ~weight nm e =
  let h = add_var t nm in
  (* h >= e, i.e. e - h <= 0; h >= 0 is implicit. *)
  add_le ~tag:nm t (Linexpr.sub e (Linexpr.var h)) 0.0;
  add_objective t (Linexpr.var ~coeff:weight h);
  h

let hinge_var t nm e =
  (* The constraint shape of {!hinge} without the objective term — for
     callers (the incremental encoder) that rebuild the objective each
     round with recomputed weights. *)
  let h = add_var t nm in
  add_le ~tag:nm t (Linexpr.sub e (Linexpr.var h)) 0.0;
  h

let abs t ~weight nm e =
  let a = add_var t nm in
  add_le ~tag:nm t (Linexpr.sub e (Linexpr.var a)) 0.0;
  add_le ~tag:nm t (Linexpr.sub (Linexpr.neg e) (Linexpr.var a)) 0.0;
  add_objective t (Linexpr.var ~coeff:weight a);
  a

let abs_var t nm e =
  let a = add_var t nm in
  add_le ~tag:nm t (Linexpr.sub e (Linexpr.var a)) 0.0;
  add_le ~tag:nm t (Linexpr.sub (Linexpr.neg e) (Linexpr.var a)) 0.0;
  a

let fault : status option ref = ref None

let set_fault s = fault := s

let last_info t = t.info

let set_capture_duals t b = t.capture_duals <- b

let last_duals t = t.duals

let record_info info =
  let module Tm = Sherlock_telemetry.Metrics in
  if Tm.enabled () then begin
    Tm.Counter.incr (Tm.counter "lp.solves");
    Tm.Histogram.observe_int (Tm.histogram "lp.pivots") info.pivots;
    (* Monotone total alongside the per-solve histogram, so the snapshot
       plane can derive pivots/second between any two points. *)
    if info.pivots > 0 then
      Tm.Counter.incr ~by:info.pivots (Tm.counter "lp.pivots.total");
    if info.presolve_removed_rows > 0 then
      Tm.Counter.incr
        ~by:info.presolve_removed_rows
        (Tm.counter "lp.presolve.removed_rows");
    if info.presolve_fixed_vars > 0 then
      Tm.Counter.incr ~by:info.presolve_fixed_vars
        (Tm.counter "lp.presolve.fixed_vars");
    if info.refactors > 0 then
      Tm.Counter.incr ~by:info.refactors (Tm.counter "lp.refactors");
    if info.warm then begin
      Tm.Counter.incr (Tm.counter "lp.warm_start.hits");
      if info.pivots_saved > 0 then
        Tm.Counter.incr ~by:info.pivots_saved
          (Tm.counter "lp.warm_start.pivots_saved")
    end
  end

let record_abort () =
  let module Tm = Sherlock_telemetry.Metrics in
  if Tm.enabled () then Tm.Counter.incr (Tm.counter "lp.aborted")


let constr_list t =
  let acc = ref [] in
  for i = t.nconstrs - 1 downto 0 do
    let r = t.rows.(i) in
    acc := { Simplex.row = r.c_row; relation = r.c_rel; rhs = r.c_rhs } :: !acc
  done;
  !acc

let finish t info outcome =
  t.info <- info;
  record_info info;
  match outcome with
  | Simplex.Optimal { objective = obj; solution } ->
    let obj = obj +. Linexpr.constant t.objective in
    ( Solved obj,
      fun v ->
        if v >= 0 && v < Array.length solution then solution.(v) else 0.0 )
  | Simplex.Infeasible -> (Infeasible, fun _ -> 0.0)
  | Simplex.Unbounded -> (Unbounded, fun _ -> 0.0)

(* Sparse engines never see the virtual bound rows: split them out,
   remembering where each surviving constraint landed ([spos], -1 for
   bound rows) and how many rows the bounds saved. *)
let sparse_parts t =
  let n = t.nconstrs in
  let spos = Array.make (max 1 n) (-1) in
  let next = ref 0 in
  for i = 0 to n - 1 do
    if t.rows.(i).c_bound < 0 then begin
      spos.(i) <- !next;
      incr next
    end
  done;
  let acc = ref [] in
  for i = n - 1 downto 0 do
    let r = t.rows.(i) in
    if r.c_bound < 0 then
      acc := { Simplex.row = r.c_row; relation = r.c_rel; rhs = r.c_rhs } :: !acc
  done;
  (!acc, spos, n - !next)

let ub_array t = Array.sub t.ubs 0 (max 1 t.count)

(* Duals of a sparse solve, read off the live solver state and mapped
   back to problem coordinates.  [row_map]/[var_map] translate original
   row/variable indices to solver ids (-1: removed).  A virtual bound
   row has no simplex row; its dual is synthesized from the bounded
   column exactly as the explicit cap row would have carried it — the
   variable's reduced cost when it sits at its upper bound (the cap
   binding, rc <= 0), 0 otherwise — and the variable's own reduced cost
   is reported 0 in that case, matching the basic variable of the
   explicit-row formulation. *)
let capture_sparse t sx ~row_map ~var_map =
  let rd = Simplex.row_duals sx in
  let rc = Simplex.reduced_costs sx in
  let ncols = Simplex.num_cols sx in
  let at_upper v =
    let c = var_map v in
    c >= 0 && c < ncols && Simplex.is_at_upper sx c
  in
  let rc_of v =
    let c = var_map v in
    if c >= 0 && c < Array.length rc then rc.(c) else 0.0
  in
  let d_rows =
    Array.init t.nconstrs (fun i ->
        let b = t.rows.(i).c_bound in
        if b >= 0 then if at_upper b then rc_of b else 0.0
        else begin
          let m = row_map i in
          if m >= 0 && m < Array.length rd then rd.(m) else 0.0
        end)
  in
  let d_vars =
    Array.init t.count (fun v -> if at_upper v then 0.0 else rc_of v)
  in
  t.duals <- Some { d_rows; d_vars }

let aborted t info =
  t.info <- info;
  record_info info;
  record_abort ();
  (let module L = Sherlock_telemetry.Log in
   L.warn "lp.aborted"
     [
       ("pivots", L.Int info.pivots);
       ("refactors", L.Int info.refactors);
       ("vars", L.Int t.count);
       ("constraints", L.Int t.nconstrs);
     ]);
  (Aborted, fun _ -> 0.0)

let stat_info base (st : Simplex.stats) =
  {
    base with
    pivots = st.pivots;
    warm = st.warm;
    pivots_saved = st.reused_basis;
    cold_restarts = st.cold_restarts;
    refactors = st.refactors;
    eta_len = st.eta_len;
  }

let solve t =
  t.duals <- None;
  match !fault with
  | Some s -> (s, fun _ -> 0.0)
  | None -> (
    let objective = Linexpr.terms t.objective in
    match t.engine with
    | Dense ->
      let constrs = constr_list t in
      let outcome, pivots =
        Dense.solve_counted ~num_vars:t.count ~objective constrs
      in
      finish t { (no_info Dense) with pivots } outcome
    | Sparse -> (
      let constrs, spos, saved = sparse_parts t in
      let ub = ub_array t in
      let base = { (no_info Sparse) with bound_rows_saved = saved } in
      if not t.use_presolve then begin
        match Simplex.solve_tableau ~ub ~num_vars:t.count ~objective constrs with
        | exception Simplex.Iteration_limit -> aborted t base
        | outcome, st, sx ->
          if t.capture_duals then
            (match outcome with
            | Simplex.Optimal _ ->
              capture_sparse t sx
                ~row_map:(fun i -> spos.(i))
                ~var_map:(fun v -> v)
            | _ -> ());
          finish t (stat_info base st) outcome
      end
      else begin
        let r = Presolve.run ~num_vars:t.count ~objective ~ub constrs in
        let base =
          {
            base with
            presolve_removed_rows = r.Presolve.r_stats.removed_rows;
            presolve_fixed_vars = r.Presolve.r_stats.fixed_vars;
          }
        in
        if r.Presolve.r_infeasible then finish t base Simplex.Infeasible
        else begin
          match
            Simplex.solve_tableau ~ub ~num_vars:t.count
              ~objective:r.Presolve.r_objective r.Presolve.r_constrs
          with
          | exception Simplex.Iteration_limit -> aborted t base
          | outcome, st, sx -> (
            if t.capture_duals then
              (match outcome with
              | Simplex.Optimal _ ->
                capture_sparse t sx
                  ~row_map:(fun i ->
                    if spos.(i) < 0 then -1
                    else r.Presolve.r_row_map.(spos.(i)))
                  ~var_map:(fun v -> r.Presolve.r_var_map.(v))
              | _ -> ());
            let base = stat_info base st in
            match outcome with
            | Simplex.Optimal { objective = obj; solution } ->
              let restore =
                r.Presolve.r_restore (fun v ->
                    if v >= 0 && v < Array.length solution then solution.(v)
                    else 0.0)
              in
              let full = Array.init t.count restore in
              finish t base
                (Simplex.Optimal
                   { objective = obj +. r.Presolve.r_offset; solution = full })
            | o -> finish t base o)
        end
      end))

let solve_incremental t =
  t.duals <- None;
  match !fault with
  | Some s -> (s, fun _ -> 0.0)
  | None ->
    let s =
      match t.istate with
      | Some s -> s
      | None ->
        let s =
          {
            sx = Simplex.create ();
            vars_pushed = 0;
            rows_pushed = 0;
            col_of_var = Array.make 64 (-1);
            row_ids = Array.make 64 (-1);
          }
        in
        t.istate <- Some s;
        s
    in
    (* Push whatever accumulated since the previous solve.  Virtual
       bound rows are skipped — their variable's column carries the cap
       directly. *)
    s.col_of_var <- grow_int s.col_of_var t.count;
    for v = s.vars_pushed to t.count - 1 do
      s.col_of_var.(v) <- Simplex.add_col ~ub:t.ubs.(v) s.sx
    done;
    s.vars_pushed <- t.count;
    s.row_ids <- grow_int s.row_ids t.nconstrs;
    let saved = ref 0 in
    for i = s.rows_pushed to t.nconstrs - 1 do
      let r = t.rows.(i) in
      if r.c_bound >= 0 then s.row_ids.(i) <- -1
      else begin
        let entries = List.map (fun (v, k) -> (s.col_of_var.(v), k)) r.c_row in
        s.row_ids.(i) <- Simplex.add_row s.sx entries r.c_rel r.c_rhs
      end
    done;
    s.rows_pushed <- t.nconstrs;
    for i = 0 to t.nconstrs - 1 do
      if s.row_ids.(i) < 0 then incr saved
    done;
    Simplex.set_objective s.sx
      (List.map (fun (v, k) -> (s.col_of_var.(v), k)) (Linexpr.terms t.objective));
    match Simplex.reoptimize s.sx with
    | exception Simplex.Iteration_limit ->
      (* The solver invalidated itself; the warm state stays usable for
         later rounds (the next reoptimize starts cold). *)
      aborted t { (no_info Sparse) with bound_rows_saved = !saved }
    | result ->
    let st = Simplex.last_stats s.sx in
    let info =
      stat_info { (no_info Sparse) with bound_rows_saved = !saved } st
    in
    t.info <- info;
    record_info info;
    (match result with
    | `Optimal obj ->
      if t.capture_duals then
        (* Exact multipliers of the live state: [row_ids]/[col_of_var]
           translate problem row/var indices to solver ids.  Reading
           them never perturbs the basis, so verdicts are bitwise
           identical with capture on or off. *)
        capture_sparse t s.sx
          ~row_map:(fun i -> s.row_ids.(i))
          ~var_map:(fun v -> s.col_of_var.(v));
      let obj = obj +. Linexpr.constant t.objective in
      (* Snapshot: the solver state stays live inside [t] (later rhs
         edits move its basic solution), but the assignment handed out
         must keep describing THIS solve. *)
      let snap =
        Array.init t.count (fun v -> Simplex.value s.sx s.col_of_var.(v))
      in
      ( Solved obj,
        fun v -> if v >= 0 && v < Array.length snap then snap.(v) else 0.0 )
    | `Infeasible -> (Infeasible, fun _ -> 0.0)
    | `Unbounded -> (Unbounded, fun _ -> 0.0))

let pp_stats ppf t =
  Format.fprintf ppf "lp: %d vars, %d constraints" t.count t.nconstrs
