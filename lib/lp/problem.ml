type var = int

type row_id = int

type status =
  | Solved of float
  | Infeasible
  | Unbounded

type engine =
  | Dense
  | Sparse

type solve_info = {
  engine : engine;
  pivots : int;
  warm : bool;
  pivots_saved : int;
  presolve_removed_rows : int;
  presolve_fixed_vars : int;
  cold_restarts : int;
}

let no_info engine =
  {
    engine;
    pivots = 0;
    warm = false;
    pivots_saved = 0;
    presolve_removed_rows = 0;
    presolve_fixed_vars = 0;
    cold_restarts = 0;
  }

type crow = {
  c_row : (int * float) list;
  c_rel : Simplex.relation;
  mutable c_rhs : float;
  c_tag : string;
}

type row_info = {
  ri_tag : string;
  ri_terms : (var * float) list;
  ri_rel : Simplex.relation;
  ri_rhs : float;
}

type duals = {
  d_rows : float array;
  d_vars : float array;
}

(* Incremental-solve state: a live {!Simplex.t} plus watermarks tracking
   which of the problem's variables and rows have been pushed into it.
   Sync is lazy — [solve_incremental] pushes whatever accumulated since
   the previous call and reoptimizes from the existing basis. *)
type istate = {
  sx : Simplex.t;
  mutable vars_pushed : int;
  mutable rows_pushed : int;
  mutable col_of_var : int array;
  mutable row_ids : int array;
}

type t = {
  mutable names : string list; (* reversed *)
  mutable count : int;
  mutable rows : crow array; (* growable; [0, nconstrs) live *)
  mutable nconstrs : int;
  mutable ub_rows : int array; (* growable; per var, its ub row or -1 *)
  mutable objective : Linexpr.t;
  mutable engine : engine;
  mutable use_presolve : bool;
  mutable istate : istate option;
  mutable info : solve_info;
  mutable capture_duals : bool;
  mutable duals : duals option;
}

let create () =
  {
    names = [];
    count = 0;
    rows =
      Array.make 16 { c_row = []; c_rel = Simplex.Le; c_rhs = 0.0; c_tag = "" };
    nconstrs = 0;
    ub_rows = Array.make 16 (-1);
    objective = Linexpr.zero;
    engine = Sparse;
    use_presolve = true;
    istate = None;
    info = no_info Sparse;
    capture_duals = false;
    duals = None;
  }

let set_engine t e = t.engine <- e

let engine t = t.engine

let set_presolve t b = t.use_presolve <- b

let grow_int a n =
  if Array.length a >= n then a
  else begin
    let b = Array.make (max n (2 * Array.length a)) (-1) in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let push_constr t c =
  if t.nconstrs >= Array.length t.rows then begin
    let rows = Array.make (2 * Array.length t.rows) c in
    Array.blit t.rows 0 rows 0 t.nconstrs;
    t.rows <- rows
  end;
  t.rows.(t.nconstrs) <- c;
  t.nconstrs <- t.nconstrs + 1;
  t.nconstrs - 1

let add_constr ?(tag = "") t expr relation rhs =
  push_constr t
    {
      c_row = Linexpr.terms expr;
      c_rel = relation;
      c_rhs = rhs -. Linexpr.constant expr;
      c_tag = tag;
    }

let add_var t ?ub name =
  let v = t.count in
  t.count <- v + 1;
  t.names <- name :: t.names;
  t.ub_rows <- grow_int t.ub_rows (v + 1);
  t.ub_rows.(v) <- -1;
  (match ub with
  | Some u ->
    t.ub_rows.(v) <-
      add_constr ~tag:("ub:" ^ name) t (Linexpr.var v) Simplex.Le u
  | None -> ());
  v

let ub_row t v =
  if v >= 0 && v < t.count && t.ub_rows.(v) >= 0 then Some t.ub_rows.(v)
  else None

let name t v =
  let arr = Array.of_list (List.rev t.names) in
  if v >= 0 && v < Array.length arr then arr.(v) else Printf.sprintf "_v%d" v

let num_vars t = t.count

let num_rows t = t.nconstrs

let row_info t i =
  let r = t.rows.(i) in
  { ri_tag = r.c_tag; ri_terms = r.c_row; ri_rel = r.c_rel; ri_rhs = r.c_rhs }

let row_activity t i assign =
  List.fold_left (fun s (v, k) -> s +. (k *. assign v)) 0.0 t.rows.(i).c_row

let add_le ?tag t e rhs = ignore (add_constr ?tag t e Simplex.Le rhs)

let add_ge ?tag t e rhs = ignore (add_constr ?tag t e Simplex.Ge rhs)

let add_eq ?tag t e rhs = ignore (add_constr ?tag t e Simplex.Eq rhs)

let add_ge_row ?tag t e rhs = add_constr ?tag t e Simplex.Ge rhs

let set_row_rhs t id rhs =
  t.rows.(id).c_rhs <- rhs;
  match t.istate with
  | Some s when id < s.rows_pushed -> Simplex.set_rhs s.sx s.row_ids.(id) rhs
  | _ -> ()

let add_objective t e = t.objective <- Linexpr.add t.objective e

let set_objective t e = t.objective <- e

let hinge t ~weight nm e =
  let h = add_var t nm in
  (* h >= e, i.e. e - h <= 0; h >= 0 is implicit. *)
  add_le ~tag:nm t (Linexpr.sub e (Linexpr.var h)) 0.0;
  add_objective t (Linexpr.var ~coeff:weight h);
  h

let hinge_var t nm e =
  (* The constraint shape of {!hinge} without the objective term — for
     callers (the incremental encoder) that rebuild the objective each
     round with recomputed weights. *)
  let h = add_var t nm in
  add_le ~tag:nm t (Linexpr.sub e (Linexpr.var h)) 0.0;
  h

let abs t ~weight nm e =
  let a = add_var t nm in
  add_le ~tag:nm t (Linexpr.sub e (Linexpr.var a)) 0.0;
  add_le ~tag:nm t (Linexpr.sub (Linexpr.neg e) (Linexpr.var a)) 0.0;
  add_objective t (Linexpr.var ~coeff:weight a);
  a

let abs_var t nm e =
  let a = add_var t nm in
  add_le ~tag:nm t (Linexpr.sub e (Linexpr.var a)) 0.0;
  add_le ~tag:nm t (Linexpr.sub (Linexpr.neg e) (Linexpr.var a)) 0.0;
  a

let fault : status option ref = ref None

let set_fault s = fault := s

let last_info t = t.info

let set_capture_duals t b = t.capture_duals <- b

let last_duals t = t.duals

let record_info info =
  let module Tm = Sherlock_telemetry.Metrics in
  if Tm.enabled () then begin
    Tm.Counter.incr (Tm.counter "lp.solves");
    Tm.Histogram.observe_int (Tm.histogram "lp.pivots") info.pivots;
    if info.presolve_removed_rows > 0 then
      Tm.Counter.incr
        ~by:info.presolve_removed_rows
        (Tm.counter "lp.presolve.removed_rows");
    if info.presolve_fixed_vars > 0 then
      Tm.Counter.incr ~by:info.presolve_fixed_vars
        (Tm.counter "lp.presolve.fixed_vars");
    if info.warm then begin
      Tm.Counter.incr (Tm.counter "lp.warm_start.hits");
      if info.pivots_saved > 0 then
        Tm.Counter.incr ~by:info.pivots_saved
          (Tm.counter "lp.warm_start.pivots_saved")
    end
  end

let constr_list t =
  let acc = ref [] in
  for i = t.nconstrs - 1 downto 0 do
    let r = t.rows.(i) in
    acc := { Simplex.row = r.c_row; relation = r.c_rel; rhs = r.c_rhs } :: !acc
  done;
  !acc

let finish t info outcome =
  t.info <- info;
  record_info info;
  match outcome with
  | Simplex.Optimal { objective = obj; solution } ->
    let obj = obj +. Linexpr.constant t.objective in
    ( Solved obj,
      fun v ->
        if v >= 0 && v < Array.length solution then solution.(v) else 0.0 )
  | Simplex.Infeasible -> (Infeasible, fun _ -> 0.0)
  | Simplex.Unbounded -> (Unbounded, fun _ -> 0.0)

(* Duals of the one-shot sparse solve, read off the returned solver
   state.  [solve_tableau] pushes rows in list order, so without presolve
   simplex row [i] is constraint [i]; with presolve the two Presolve maps
   route each original row/variable to whatever carries its multiplier in
   the reduced program (or to 0 when it was removed outright). *)
let capture_oneshot t sx ~row_map ~var_map =
  let rd = Simplex.row_duals sx in
  let rc = Simplex.reduced_costs sx in
  let d_rows =
    Array.init t.nconstrs (fun i ->
        let m = row_map i in
        if m >= 0 && m < Array.length rd then rd.(m) else 0.0)
  in
  let d_vars =
    Array.init t.count (fun v ->
        let m = var_map v in
        if m >= 0 && m < Array.length rc then rc.(m) else 0.0)
  in
  t.duals <- Some { d_rows; d_vars }

let solve t =
  t.duals <- None;
  match !fault with
  | Some s -> (s, fun _ -> 0.0)
  | None -> (
    let objective = Linexpr.terms t.objective in
    let constrs = constr_list t in
    match t.engine with
    | Dense ->
      let outcome, pivots =
        Dense.solve_counted ~num_vars:t.count ~objective constrs
      in
      finish t { (no_info Dense) with pivots } outcome
    | Sparse ->
      if not t.use_presolve then begin
        let outcome, st, sx =
          Simplex.solve_tableau ~num_vars:t.count ~objective constrs
        in
        if t.capture_duals then
          (match outcome with
          | Simplex.Optimal _ ->
            capture_oneshot t sx ~row_map:(fun i -> i) ~var_map:(fun v -> v)
          | _ -> ());
        finish t { (no_info Sparse) with pivots = st.Simplex.pivots } outcome
      end
      else begin
        let r = Presolve.run ~num_vars:t.count ~objective constrs in
        let base_info =
          {
            (no_info Sparse) with
            presolve_removed_rows = r.Presolve.r_stats.removed_rows;
            presolve_fixed_vars = r.Presolve.r_stats.fixed_vars;
          }
        in
        if r.Presolve.r_infeasible then
          finish t base_info Simplex.Infeasible
        else begin
          let outcome, st, sx =
            Simplex.solve_tableau ~num_vars:t.count
              ~objective:r.Presolve.r_objective r.Presolve.r_constrs
          in
          if t.capture_duals then
            (match outcome with
            | Simplex.Optimal _ ->
              capture_oneshot t sx
                ~row_map:(fun i -> r.Presolve.r_row_map.(i))
                ~var_map:(fun v -> r.Presolve.r_var_map.(v))
            | _ -> ());
          let base_info = { base_info with pivots = st.Simplex.pivots } in
          match outcome with
          | Simplex.Optimal { objective = obj; solution } ->
            let restore =
              r.Presolve.r_restore (fun v ->
                  if v >= 0 && v < Array.length solution then solution.(v)
                  else 0.0)
            in
            let full = Array.init t.count restore in
            finish t base_info
              (Simplex.Optimal
                 {
                   objective = obj +. r.Presolve.r_offset;
                   solution = full;
                 })
          | o -> finish t base_info o
        end
      end)

let solve_incremental t =
  t.duals <- None;
  match !fault with
  | Some s -> (s, fun _ -> 0.0)
  | None ->
    let s =
      match t.istate with
      | Some s -> s
      | None ->
        let s =
          {
            sx = Simplex.create ();
            vars_pushed = 0;
            rows_pushed = 0;
            col_of_var = Array.make 64 (-1);
            row_ids = Array.make 64 (-1);
          }
        in
        t.istate <- Some s;
        s
    in
    (* Push whatever accumulated since the previous solve. *)
    s.col_of_var <- grow_int s.col_of_var t.count;
    for v = s.vars_pushed to t.count - 1 do
      s.col_of_var.(v) <- Simplex.add_col s.sx
    done;
    s.vars_pushed <- t.count;
    s.row_ids <- grow_int s.row_ids t.nconstrs;
    for i = s.rows_pushed to t.nconstrs - 1 do
      let r = t.rows.(i) in
      let entries = List.map (fun (v, k) -> (s.col_of_var.(v), k)) r.c_row in
      s.row_ids.(i) <- Simplex.add_row s.sx entries r.c_rel r.c_rhs
    done;
    s.rows_pushed <- t.nconstrs;
    Simplex.set_objective s.sx
      (List.map (fun (v, k) -> (s.col_of_var.(v), k)) (Linexpr.terms t.objective));
    let result = Simplex.reoptimize s.sx in
    let st = Simplex.last_stats s.sx in
    let info =
      {
        (no_info Sparse) with
        pivots = st.Simplex.pivots;
        warm = st.Simplex.warm;
        pivots_saved = st.Simplex.reused_basis;
        cold_restarts = st.Simplex.cold_restarts;
      }
    in
    t.info <- info;
    record_info info;
    (match result with
    | `Optimal obj ->
      if t.capture_duals then begin
        (* Exact multipliers of the live state: [row_ids]/[col_of_var]
           translate problem row/var indices to solver ids.  Reading
           them never perturbs the basis, so verdicts are bitwise
           identical with capture on or off. *)
        let rd = Simplex.row_duals s.sx in
        let rc = Simplex.reduced_costs s.sx in
        t.duals <-
          Some
            {
              d_rows = Array.init t.nconstrs (fun i -> rd.(s.row_ids.(i)));
              d_vars = Array.init t.count (fun v -> rc.(s.col_of_var.(v)));
            }
      end;
      let obj = obj +. Linexpr.constant t.objective in
      (* Snapshot: the solver state stays live inside [t] (later rhs
         edits move its basic solution), but the assignment handed out
         must keep describing THIS solve. *)
      let snap =
        Array.init t.count (fun v -> Simplex.value s.sx s.col_of_var.(v))
      in
      ( Solved obj,
        fun v -> if v >= 0 && v < Array.length snap then snap.(v) else 0.0 )
    | `Infeasible -> (Infeasible, fun _ -> 0.0)
    | `Unbounded -> (Unbounded, fun _ -> 0.0))

let pp_stats ppf t =
  Format.fprintf ppf "lp: %d vars, %d constraints" t.count t.nconstrs
