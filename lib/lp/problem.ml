type var = int

type row_id = int

type status =
  | Solved of float
  | Infeasible
  | Unbounded

type engine =
  | Dense
  | Sparse

type solve_info = {
  engine : engine;
  pivots : int;
  warm : bool;
  pivots_saved : int;
  presolve_removed_rows : int;
  presolve_fixed_vars : int;
  cold_restarts : int;
}

let no_info engine =
  {
    engine;
    pivots = 0;
    warm = false;
    pivots_saved = 0;
    presolve_removed_rows = 0;
    presolve_fixed_vars = 0;
    cold_restarts = 0;
  }

type crow = {
  c_row : (int * float) list;
  c_rel : Simplex.relation;
  mutable c_rhs : float;
}

(* Incremental-solve state: a live {!Simplex.t} plus watermarks tracking
   which of the problem's variables and rows have been pushed into it.
   Sync is lazy — [solve_incremental] pushes whatever accumulated since
   the previous call and reoptimizes from the existing basis. *)
type istate = {
  sx : Simplex.t;
  mutable vars_pushed : int;
  mutable rows_pushed : int;
  mutable col_of_var : int array;
  mutable row_ids : int array;
}

type t = {
  mutable names : string list; (* reversed *)
  mutable count : int;
  mutable rows : crow array; (* growable; [0, nconstrs) live *)
  mutable nconstrs : int;
  mutable objective : Linexpr.t;
  mutable engine : engine;
  mutable use_presolve : bool;
  mutable istate : istate option;
  mutable info : solve_info;
}

let create () =
  {
    names = [];
    count = 0;
    rows = Array.make 16 { c_row = []; c_rel = Simplex.Le; c_rhs = 0.0 };
    nconstrs = 0;
    objective = Linexpr.zero;
    engine = Sparse;
    use_presolve = true;
    istate = None;
    info = no_info Sparse;
  }

let set_engine t e = t.engine <- e

let engine t = t.engine

let set_presolve t b = t.use_presolve <- b

let push_constr t c =
  if t.nconstrs >= Array.length t.rows then begin
    let rows = Array.make (2 * Array.length t.rows) c in
    Array.blit t.rows 0 rows 0 t.nconstrs;
    t.rows <- rows
  end;
  t.rows.(t.nconstrs) <- c;
  t.nconstrs <- t.nconstrs + 1;
  t.nconstrs - 1

let add_constr t expr relation rhs =
  push_constr t
    {
      c_row = Linexpr.terms expr;
      c_rel = relation;
      c_rhs = rhs -. Linexpr.constant expr;
    }

let add_var t ?ub name =
  let v = t.count in
  t.count <- v + 1;
  t.names <- name :: t.names;
  (match ub with
  | Some u -> ignore (add_constr t (Linexpr.var v) Simplex.Le u)
  | None -> ());
  v

let name t v =
  let arr = Array.of_list (List.rev t.names) in
  if v >= 0 && v < Array.length arr then arr.(v) else Printf.sprintf "_v%d" v

let num_vars t = t.count

let add_le t e rhs = ignore (add_constr t e Simplex.Le rhs)

let add_ge t e rhs = ignore (add_constr t e Simplex.Ge rhs)

let add_eq t e rhs = ignore (add_constr t e Simplex.Eq rhs)

let add_ge_row t e rhs = add_constr t e Simplex.Ge rhs

let set_row_rhs t id rhs =
  t.rows.(id).c_rhs <- rhs;
  match t.istate with
  | Some s when id < s.rows_pushed -> Simplex.set_rhs s.sx s.row_ids.(id) rhs
  | _ -> ()

let add_objective t e = t.objective <- Linexpr.add t.objective e

let set_objective t e = t.objective <- e

let hinge t ~weight nm e =
  let h = add_var t nm in
  (* h >= e, i.e. e - h <= 0; h >= 0 is implicit. *)
  add_le t (Linexpr.sub e (Linexpr.var h)) 0.0;
  add_objective t (Linexpr.var ~coeff:weight h);
  h

let hinge_var t nm e =
  (* The constraint shape of {!hinge} without the objective term — for
     callers (the incremental encoder) that rebuild the objective each
     round with recomputed weights. *)
  let h = add_var t nm in
  add_le t (Linexpr.sub e (Linexpr.var h)) 0.0;
  h

let abs t ~weight nm e =
  let a = add_var t nm in
  add_le t (Linexpr.sub e (Linexpr.var a)) 0.0;
  add_le t (Linexpr.sub (Linexpr.neg e) (Linexpr.var a)) 0.0;
  add_objective t (Linexpr.var ~coeff:weight a);
  a

let abs_var t nm e =
  let a = add_var t nm in
  add_le t (Linexpr.sub e (Linexpr.var a)) 0.0;
  add_le t (Linexpr.sub (Linexpr.neg e) (Linexpr.var a)) 0.0;
  a

let fault : status option ref = ref None

let set_fault s = fault := s

let last_info t = t.info

let record_info info =
  let module Tm = Sherlock_telemetry.Metrics in
  if Tm.enabled () then begin
    Tm.Counter.incr (Tm.counter "lp.solves");
    Tm.Histogram.observe_int (Tm.histogram "lp.pivots") info.pivots;
    if info.presolve_removed_rows > 0 then
      Tm.Counter.incr
        ~by:info.presolve_removed_rows
        (Tm.counter "lp.presolve.removed_rows");
    if info.presolve_fixed_vars > 0 then
      Tm.Counter.incr ~by:info.presolve_fixed_vars
        (Tm.counter "lp.presolve.fixed_vars");
    if info.warm then begin
      Tm.Counter.incr (Tm.counter "lp.warm_start.hits");
      if info.pivots_saved > 0 then
        Tm.Counter.incr ~by:info.pivots_saved
          (Tm.counter "lp.warm_start.pivots_saved")
    end
  end

let constr_list t =
  let acc = ref [] in
  for i = t.nconstrs - 1 downto 0 do
    let r = t.rows.(i) in
    acc := { Simplex.row = r.c_row; relation = r.c_rel; rhs = r.c_rhs } :: !acc
  done;
  !acc

let finish t info outcome =
  t.info <- info;
  record_info info;
  match outcome with
  | Simplex.Optimal { objective = obj; solution } ->
    let obj = obj +. Linexpr.constant t.objective in
    ( Solved obj,
      fun v ->
        if v >= 0 && v < Array.length solution then solution.(v) else 0.0 )
  | Simplex.Infeasible -> (Infeasible, fun _ -> 0.0)
  | Simplex.Unbounded -> (Unbounded, fun _ -> 0.0)

let solve t =
  match !fault with
  | Some s -> (s, fun _ -> 0.0)
  | None -> (
    let objective = Linexpr.terms t.objective in
    let constrs = constr_list t in
    match t.engine with
    | Dense ->
      let outcome, pivots =
        Dense.solve_counted ~num_vars:t.count ~objective constrs
      in
      finish t { (no_info Dense) with pivots } outcome
    | Sparse ->
      if not t.use_presolve then begin
        let outcome, st =
          Simplex.solve_counted ~num_vars:t.count ~objective constrs
        in
        finish t { (no_info Sparse) with pivots = st.Simplex.pivots } outcome
      end
      else begin
        let r = Presolve.run ~num_vars:t.count ~objective constrs in
        let base_info =
          {
            (no_info Sparse) with
            presolve_removed_rows = r.Presolve.r_stats.removed_rows;
            presolve_fixed_vars = r.Presolve.r_stats.fixed_vars;
          }
        in
        if r.Presolve.r_infeasible then
          finish t base_info Simplex.Infeasible
        else begin
          let outcome, st =
            Simplex.solve_counted ~num_vars:t.count
              ~objective:r.Presolve.r_objective r.Presolve.r_constrs
          in
          let base_info = { base_info with pivots = st.Simplex.pivots } in
          match outcome with
          | Simplex.Optimal { objective = obj; solution } ->
            let restore =
              r.Presolve.r_restore (fun v ->
                  if v >= 0 && v < Array.length solution then solution.(v)
                  else 0.0)
            in
            let full = Array.init t.count restore in
            finish t base_info
              (Simplex.Optimal
                 {
                   objective = obj +. r.Presolve.r_offset;
                   solution = full;
                 })
          | o -> finish t base_info o
        end
      end)

let grow_int a n =
  if Array.length a >= n then a
  else begin
    let b = Array.make (max n (2 * Array.length a)) (-1) in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let solve_incremental t =
  match !fault with
  | Some s -> (s, fun _ -> 0.0)
  | None ->
    let s =
      match t.istate with
      | Some s -> s
      | None ->
        let s =
          {
            sx = Simplex.create ();
            vars_pushed = 0;
            rows_pushed = 0;
            col_of_var = Array.make 64 (-1);
            row_ids = Array.make 64 (-1);
          }
        in
        t.istate <- Some s;
        s
    in
    (* Push whatever accumulated since the previous solve. *)
    s.col_of_var <- grow_int s.col_of_var t.count;
    for v = s.vars_pushed to t.count - 1 do
      s.col_of_var.(v) <- Simplex.add_col s.sx
    done;
    s.vars_pushed <- t.count;
    s.row_ids <- grow_int s.row_ids t.nconstrs;
    for i = s.rows_pushed to t.nconstrs - 1 do
      let r = t.rows.(i) in
      let entries = List.map (fun (v, k) -> (s.col_of_var.(v), k)) r.c_row in
      s.row_ids.(i) <- Simplex.add_row s.sx entries r.c_rel r.c_rhs
    done;
    s.rows_pushed <- t.nconstrs;
    Simplex.set_objective s.sx
      (List.map (fun (v, k) -> (s.col_of_var.(v), k)) (Linexpr.terms t.objective));
    let result = Simplex.reoptimize s.sx in
    let st = Simplex.last_stats s.sx in
    let info =
      {
        (no_info Sparse) with
        pivots = st.Simplex.pivots;
        warm = st.Simplex.warm;
        pivots_saved = st.Simplex.reused_basis;
        cold_restarts = st.Simplex.cold_restarts;
      }
    in
    t.info <- info;
    record_info info;
    (match result with
    | `Optimal obj ->
      let obj = obj +. Linexpr.constant t.objective in
      (* Snapshot: the solver state stays live inside [t] (later rhs
         edits move its basic solution), but the assignment handed out
         must keep describing THIS solve. *)
      let snap =
        Array.init t.count (fun v -> Simplex.value s.sx s.col_of_var.(v))
      in
      ( Solved obj,
        fun v -> if v >= 0 && v < Array.length snap then snap.(v) else 0.0 )
    | `Infeasible -> (Infeasible, fun _ -> 0.0)
    | `Unbounded -> (Unbounded, fun _ -> 0.0))

let pp_stats ppf t =
  Format.fprintf ppf "lp: %d vars, %d constraints" t.count t.nconstrs
