(** Growable sparse constraint matrix.

    CSR-style rows plus per-column occurrence lists, both kept in sync on
    append.  This is the storage behind the revised simplex in {!Simplex}:
    pricing walks column occurrence lists ([col_dot]) against the dense
    working quantities, ratio tests walk them against the basis inverse,
    and presolve walks rows.  Rows and columns are append-only, matching
    the incremental LP lifecycle (the encoding only ever gains variables
    and constraints across rounds). *)

type t

val create : unit -> t

val nrows : t -> int

val ncols : t -> int

val nnz : t -> int
(** Stored entries (exact zeros are dropped on row insertion). *)

val add_col : t -> int
(** Append an empty column, returning its index. *)

val add_row : t -> (int * float) list -> int
(** Append a row given as [(col, coeff)] pairs (any order; duplicate
    columns merge, near-zero coefficients drop).  Returns the row index.
    All referenced columns must already exist. *)

val iter_row : t -> int -> (int -> float -> unit) -> unit
(** [iter_row t i f] calls [f col coeff] over row [i] in column order. *)

val iter_col : t -> int -> (int -> float -> unit) -> unit
(** [iter_col t c f] calls [f row coeff] over column [c] in row order. *)

val row_nnz : t -> int -> int

val col_nnz : t -> int -> int

val col_dot : t -> int -> float array -> float
(** [col_dot t c v] is [A_c . v] over the rows — the pricing primitive. *)
