(** Sparse revised simplex.

    Solves [minimize c.x  subject to  A x (<=|>=|=) b,  x >= 0] in
    floating point.  The constraint matrix lives in {!Sparse} (CSR rows
    plus per-column occurrence lists); only the working basis is dense
    (B^-1 and the basic values).  Pricing uses Dantzig's rule with a
    permanent switch to Bland's anti-cycling rule after a long
    degenerate streak.

    Beyond the one-shot {!solve} (the drop-in replacement for the seed
    dense tableau in {!Dense}), the module exposes an incremental state:
    columns and rows append over time, appended rows border-extend the
    basis inverse instead of refactorizing, right-hand sides may be
    edited in place, and {!reoptimize} restarts from the previous
    optimal basis — primal if it is still feasible, dual-simplex repair
    against the last proven-optimal cost vector if not, and a cold
    two-phase rebuild as the fallback of last resort.  This is what
    cross-round warm starts in the encoder ride on. *)

type relation =
  | Le
  | Ge
  | Eq

type constr = {
  row : (int * float) list;  (** sparse row: (variable, coefficient) *)
  relation : relation;
  rhs : float;
}

type outcome =
  | Optimal of { objective : float; solution : float array }
  | Unbounded
  | Infeasible

val solve :
  num_vars:int -> objective:(int * float) list -> constr list -> outcome
(** [solve ~num_vars ~objective constrs] minimizes over variables
    [0 .. num_vars - 1], all implicitly bounded below by 0.  The returned
    [solution] has length [num_vars]. *)

type stats = {
  pivots : int;  (** pivots performed by the last {!reoptimize} *)
  warm : bool;  (** the last solve started from a previous basis *)
  reused_basis : int;
      (** structural columns inherited in the starting basis — the work
          a cold start would have had to redo *)
  cold_restarts : int;  (** cold rebuilds the last solve fell back to *)
}

val solve_counted :
  num_vars:int ->
  objective:(int * float) list ->
  constr list ->
  outcome * stats
(** {!solve} plus the solve statistics. *)

(** {1 Incremental state} *)

type t

val create : unit -> t

val add_col : t -> int
(** Append a structural column (a decision variable), returning its id. *)

val add_row : t -> (int * float) list -> relation -> float -> int
(** Append a constraint over existing columns, returning its row id.  A
    slack/surplus column is added internally for inequalities.  If a
    basis exists it is border-extended; feasibility is repaired at the
    next {!reoptimize}. *)

val set_rhs : t -> int -> float -> unit
(** Change a row's right-hand side in place (e.g. relaxing a rounding
    pin).  Basic values are updated through the basis inverse. *)

val set_objective : t -> (int * float) list -> unit
(** Replace the whole objective with the given [(column, cost)] terms. *)

val reoptimize : t -> [ `Optimal of float | `Unbounded | `Infeasible ]
(** Solve the current program, reusing the previous basis when one
    exists.  A restricted warm path that reaches a dead end falls back
    to a cold rebuild — it is never reported as [`Infeasible]. *)

val value : t -> int -> float
(** Value of a column at the last optimum (0 when nonbasic). *)

val row_duals : t -> float array
(** Simplex multipliers y = c_B B^-1 of the last optimum, indexed by row
    id.  For a binding [<=] row at a minimum the dual is [<= 0]; its
    negation is the rate at which the objective would rise per unit of
    rhs tightening.  All zeros when the state holds no proven optimum
    (after [`Unbounded]/[`Infeasible] or before the first solve). *)

val reduced_costs : t -> float array
(** Reduced costs d_j = c_j - y . A_j of the last optimum, indexed by
    column id; 0 for basic columns.  All zeros when the state holds no
    proven optimum. *)

val last_stats : t -> stats

val num_rows : t -> int

val num_cols : t -> int

val solve_tableau :
  num_vars:int ->
  objective:(int * float) list ->
  constr list ->
  outcome * stats * t
(** {!solve_counted}, additionally returning the solver state the
    optimum was computed on, so callers can read {!row_duals} and
    {!reduced_costs} off it.  Row [i] of the state is [List.nth constrs i]
    (rows are pushed in list order). *)
