(** Two-phase dense primal simplex.

    Solves [minimize c.x  subject to  A x (<=|>=|=) b,  x >= 0] exactly in
    floating point, using Bland's anti-cycling rule.  This is the solver
    behind {!Problem}; SherLock's Equation (8) instances are small (a few
    hundred rows), so a dense tableau is the simplest adequate choice —
    the paper's artifact similarly delegates to a generic LP package. *)

type relation =
  | Le
  | Ge
  | Eq

type constr = {
  row : (int * float) list;  (** sparse row: (variable, coefficient) *)
  relation : relation;
  rhs : float;
}

type outcome =
  | Optimal of { objective : float; solution : float array }
  | Unbounded
  | Infeasible

val solve : num_vars:int -> objective:(int * float) list -> constr list -> outcome
(** [solve ~num_vars ~objective constrs] minimizes over variables
    [0 .. num_vars - 1], all implicitly bounded below by 0.  The returned
    [solution] has length [num_vars]. *)
