(** Sparse revised simplex over an LU-factorized basis.

    Solves [minimize c.x  subject to  A x (<=|>=|=) b,  0 <= x <= u]
    in floating point (upper bounds optional, per column).  The
    constraint matrix lives in {!Sparse} (CSR rows plus per-column
    occurrence lists); the basis is held factorized in {!Lu} —
    Markowitz-ordered LU plus a product-form eta file updated per
    pivot and rebuilt past a length/fill threshold — and every former
    dense-inverse walk is an FTRAN or BTRAN against it.  Upper bounds
    are handled directly in pricing and the ratio test (a nonbasic
    column sits at 0 or at its bound), so caps cost no rows.  Pricing
    uses Dantzig's rule with a permanent switch to Bland's anti-cycling
    rule after a long degenerate streak.

    Beyond the one-shot {!solve} (the drop-in replacement for the seed
    dense tableau in {!Dense}), the module exposes an incremental state:
    columns and rows append over time (an appended row's slack or
    artificial joins the basis and the factorization is rebuilt lazily),
    right-hand sides may be edited in place, and {!reoptimize} restarts
    from the previous optimal basis — primal if it is still feasible, a
    bounded-variable dual simplex under the last proven-optimal cost
    vector if not, and a cold two-phase rebuild as the fallback of last
    resort.  This is what cross-round warm starts in the encoder ride
    on. *)

type relation =
  | Le
  | Ge
  | Eq

type constr = {
  row : (int * float) list;  (** sparse row: (variable, coefficient) *)
  relation : relation;
  rhs : float;
}

type outcome =
  | Optimal of { objective : float; solution : float array }
  | Unbounded
  | Infeasible

exception Iteration_limit
(** Raised by solves (and {!reoptimize}) when a pivot sequence exceeds
    the limit — see {!set_pivot_limit}.  The state invalidates itself
    first, so the next solve starts cold.  Callers ({!Problem.solve})
    map it to a non-[Solved] status rather than letting it escape. *)

val solve :
  ?ub:float array ->
  num_vars:int ->
  objective:(int * float) list ->
  constr list ->
  outcome
(** [solve ~num_vars ~objective constrs] minimizes over variables
    [0 .. num_vars - 1], all implicitly bounded below by 0.  [ub.(v)],
    when given and finite, is an upper bound on variable [v] enforced
    without a constraint row.  The returned [solution] has length
    [num_vars]. *)

type stats = {
  pivots : int;  (** pivots performed by the last {!reoptimize} *)
  warm : bool;  (** the last solve started from a previous basis *)
  reused_basis : int;
      (** structural columns inherited in the starting basis — the work
          a cold start would have had to redo *)
  cold_restarts : int;  (** cold rebuilds the last solve fell back to *)
  refactors : int;  (** basis refactorizations during the last solve *)
  eta_len : int;
      (** longest product-form eta file reached before a rebuild *)
}

val solve_counted :
  ?ub:float array ->
  num_vars:int ->
  objective:(int * float) list ->
  constr list ->
  outcome * stats
(** {!solve} plus the solve statistics. *)

(** {1 Incremental state} *)

type t

val create : unit -> t

val add_col : ?ub:float -> t -> int
(** Append a structural column (a decision variable), returning its id.
    [ub] (default [infinity]) is its upper bound, enforced in the ratio
    test rather than by a row. *)

val add_row : t -> (int * float) list -> relation -> float -> int
(** Append a constraint over existing columns, returning its row id.  A
    slack/surplus column is added internally for inequalities.  If a
    basis exists, the new row's slack (or a fresh artificial for [Eq])
    joins it and the factorization is rebuilt lazily at the next
    {!reoptimize}, where feasibility is also repaired. *)

val set_rhs : t -> int -> float -> unit
(** Change a row's right-hand side in place (e.g. relaxing a rounding
    pin).  Basic values are recomputed by FTRAN at the next solve. *)

val set_objective : t -> (int * float) list -> unit
(** Replace the whole objective with the given [(column, cost)] terms. *)

val reoptimize : t -> [ `Optimal of float | `Unbounded | `Infeasible ]
(** Solve the current program, reusing the previous basis when one
    exists.  A restricted warm path that reaches a dead end falls back
    to a cold rebuild — it is never reported as [`Infeasible].  Raises
    {!Iteration_limit} when even the cold path exceeds the pivot cap. *)

val value : t -> int -> float
(** Value of a column at the last optimum (0 when nonbasic at its lower
    bound, its upper bound when nonbasic there). *)

val is_at_upper : t -> int -> bool
(** Whether a column sits nonbasic at its upper bound at the last
    optimum — the bounded-variable analogue of "the cap row is tight". *)

val row_duals : t -> float array
(** Simplex multipliers y = c_B B^-1 of the last optimum, indexed by row
    id.  For a binding [<=] row at a minimum the dual is [<= 0]; its
    negation is the rate at which the objective would rise per unit of
    rhs tightening.  All zeros when the state holds no proven optimum
    (after [`Unbounded]/[`Infeasible] or before the first solve). *)

val reduced_costs : t -> float array
(** Reduced costs d_j = c_j - y . A_j of the last optimum, indexed by
    column id; 0 for basic columns.  A column at its upper bound has
    d_j <= 0, and [-d_j] is the rate the objective would rise per unit
    of bound tightening — the former cap-row dual.  All zeros when the
    state holds no proven optimum. *)

val dual_feasible : t -> bool
(** Whether the current basis is dual-feasible under the cost vector it
    was last proven optimal for: every eligible nonbasic column at its
    lower bound has reduced cost >= -1e-6, every one at its upper bound
    <= 1e-6.  Vacuously true without a proven optimum.  Test hook for
    the warm-repair certificate. *)

val last_stats : t -> stats

val num_rows : t -> int

val num_cols : t -> int

val solve_tableau :
  ?ub:float array ->
  num_vars:int ->
  objective:(int * float) list ->
  constr list ->
  outcome * stats * t
(** {!solve_counted}, additionally returning the solver state the
    optimum was computed on, so callers can read {!row_duals} and
    {!reduced_costs} off it.  Row [i] of the state is [List.nth constrs i]
    (rows are pushed in list order). *)

(** {1 Engine knobs (test hooks)}

    Global configuration, read by every solve; set them only from
    sequential test code and restore the defaults afterwards. *)

val default_pivot_limit : int

val set_pivot_limit : int -> unit
(** Cap on pivots per simplex run before {!Iteration_limit} (default
    {!default_pivot_limit}).  Clamped to at least 1. *)

val default_refactor_interval : int

val set_refactor_interval : int -> unit
(** Eta-file length that triggers a basis refactorization (default
    {!default_refactor_interval}).  Clamped to at least 1. *)
