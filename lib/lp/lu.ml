(* LU factorization of the simplex basis, plus the product-form eta
   file.  See the .mli for the contract; the notes here are about the
   representation.

   The factorization is stored in elimination-step space.  Step [k]
   eliminated basis position [cpos.(k)] using pivot row [prow.(k)]:

   - [l_rows.(k)] / [l_vals.(k)] hold the multipliers of step [k]
     (unit diagonal implicit): applying step [k] to a work vector [x]
     does [x.(i) <- x.(i) -. x.(prow.(k)) *. l_vals.(k).(j)] for each
     stored row [i = l_rows.(k).(j)].  Rows stored here were unpivoted
     at step [k], so their own steps are all [> k].
   - [u_steps.(k)] / [u_vals.(k)] hold the strictly-upper part of the
     eliminated column, indexed by the *step* of the row they landed
     on (all [< k]); [diag.(k)] is the pivot value.

   Eta terms are stored in basis-position space: replacing position
   [r] by a column with pivot direction [w] makes the new basis
   [B' = B E] where [E] is the identity with column [r] set to [w].
   FTRAN applies [E^-1] left-to-right after the triangular solves;
   BTRAN applies them right-to-left before. *)

type eta = {
  e_r : int; (* basis position replaced *)
  e_rows : int array; (* positions i <> e_r with w_i significant *)
  e_vals : float array;
  e_piv : float; (* w_r *)
}

type t = {
  m : int;
  prow : int array; (* step -> pivot row *)
  step_of_row : int array; (* row -> step *)
  cpos : int array; (* step -> basis position eliminated *)
  l_rows : int array array;
  l_vals : float array array;
  u_steps : int array array;
  u_vals : float array array;
  diag : float array;
  nnz : int;
  mutable etas : eta array; (* growable; first [n_etas] live *)
  mutable n_etas : int;
  mutable etas_nnz : int;
}

let size t = t.m
let eta_count t = t.n_etas
let eta_nnz t = t.etas_nnz
let factor_nnz t = t.nnz

let drop_tol = 1e-12
let singular_tol = 1e-10
let threshold = 0.1 (* partial-pivoting relative threshold *)

let factorize ~m ~col =
  if m = 0 then
    Some
      {
        m = 0;
        prow = [||];
        step_of_row = [||];
        cpos = [||];
        l_rows = [||];
        l_vals = [||];
        u_steps = [||];
        u_vals = [||];
        diag = [||];
        nnz = 0;
        etas = [||];
        n_etas = 0;
        etas_nnz = 0;
      }
  else begin
    (* Gather the columns once so we can order them sparsest-first and
       count row occupancy for the Markowitz tie-break. *)
    let cols = Array.make m ([||], [||]) in
    let row_count = Array.make m 0 in
    let acc = Array.make m 0.0 in
    let touched = Array.make m false in
    let order_buf = Array.make m 0 in
    for j = 0 to m - 1 do
      let n = ref 0 in
      col j (fun r v ->
          if not touched.(r) then begin
            touched.(r) <- true;
            order_buf.(!n) <- r;
            incr n
          end;
          acc.(r) <- acc.(r) +. v);
      let rows = Array.make !n 0 and vals = Array.make !n 0.0 in
      let k = ref 0 in
      for i = 0 to !n - 1 do
        let r = order_buf.(i) in
        if abs_float acc.(r) > drop_tol then begin
          rows.(!k) <- r;
          vals.(!k) <- acc.(r);
          incr k;
          row_count.(r) <- row_count.(r) + 1
        end;
        acc.(r) <- 0.0;
        touched.(r) <- false
      done;
      cols.(j) <- (Array.sub rows 0 !k, Array.sub vals 0 !k)
    done;
    let order = Array.init m (fun j -> j) in
    Array.sort
      (fun a b ->
        let la = Array.length (fst cols.(a))
        and lb = Array.length (fst cols.(b)) in
        if la <> lb then compare la lb else compare a b)
      order;
    let prow = Array.make m (-1) in
    let step_of_row = Array.make m (-1) in
    let cpos = Array.make m (-1) in
    let l_rows = Array.make m [||] in
    let l_vals = Array.make m [||] in
    let u_steps = Array.make m [||] in
    let u_vals = Array.make m [||] in
    let diag = Array.make m 0.0 in
    let nnz = ref 0 in
    let x = Array.make m 0.0 in
    let live = Array.make m 0 in
    let singular = ref false in
    let k = ref 0 in
    while (not !singular) && !k < m do
      let j = order.(!k) in
      let rows, vals = cols.(j) in
      let nlive = ref 0 in
      let note r =
        if not touched.(r) then begin
          touched.(r) <- true;
          live.(!nlive) <- r;
          incr nlive
        end
      in
      Array.iteri
        (fun i r ->
          note r;
          x.(r) <- x.(r) +. vals.(i))
        rows;
      (* Left-looking: apply every previous elimination step in order
         (this solves L z = a_j). *)
      for s = 0 to !k - 1 do
        let pr = prow.(s) in
        let xs = x.(pr) in
        if abs_float xs > drop_tol then begin
          let lr = l_rows.(s) and lv = l_vals.(s) in
          for i = 0 to Array.length lr - 1 do
            let r = lr.(i) in
            note r;
            x.(r) <- x.(r) -. (xs *. lv.(i))
          done
        end
      done;
      (* Split into the U part (already-pivoted rows) and pivot
         candidates; choose the pivot by threshold + occupancy. *)
      let nu = ref 0 and nl = ref 0 in
      let amax = ref 0.0 in
      for i = 0 to !nlive - 1 do
        let r = live.(i) in
        let v = x.(r) in
        if abs_float v > drop_tol then
          if step_of_row.(r) >= 0 then incr nu
          else begin
            incr nl;
            if abs_float v > !amax then amax := abs_float v
          end
      done;
      if !amax < singular_tol then singular := true
      else begin
        let pivot = ref (-1) in
        let best_occ = ref max_int in
        for i = 0 to !nlive - 1 do
          let r = live.(i) in
          if step_of_row.(r) < 0 then begin
            let v = abs_float x.(r) in
            if v > drop_tol && v >= threshold *. !amax then
              if
                row_count.(r) < !best_occ
                || (row_count.(r) = !best_occ && r < !pivot)
              then begin
                best_occ := row_count.(r);
                pivot := r
              end
          end
        done;
        let piv = !pivot in
        let d = x.(piv) in
        let us = Array.make !nu 0 and uv = Array.make !nu 0.0 in
        let lr = Array.make (!nl - 1) 0 and lv = Array.make (!nl - 1) 0.0 in
        let iu = ref 0 and il = ref 0 in
        for i = 0 to !nlive - 1 do
          let r = live.(i) in
          let v = x.(r) in
          if abs_float v > drop_tol then
            if step_of_row.(r) >= 0 then begin
              us.(!iu) <- step_of_row.(r);
              uv.(!iu) <- v;
              incr iu
            end
            else if r <> piv then begin
              lr.(!il) <- r;
              lv.(!il) <- v /. d;
              incr il
            end;
          x.(r) <- 0.0;
          touched.(r) <- false
        done;
        prow.(!k) <- piv;
        step_of_row.(piv) <- !k;
        cpos.(!k) <- j;
        diag.(!k) <- d;
        l_rows.(!k) <- Array.sub lr 0 !il;
        l_vals.(!k) <- Array.sub lv 0 !il;
        u_steps.(!k) <- Array.sub us 0 !iu;
        u_vals.(!k) <- Array.sub uv 0 !iu;
        nnz := !nnz + !iu + !il + 1;
        incr k
      end
    done;
    if !singular then None
    else
      Some
        {
          m;
          prow;
          step_of_row;
          cpos;
          l_rows;
          l_vals;
          u_steps;
          u_vals;
          diag;
          nnz = !nnz;
          etas = [||];
          n_etas = 0;
          etas_nnz = 0;
        }
  end

let update t ~r ~w =
  let n = ref 0 in
  for i = 0 to t.m - 1 do
    if i <> r && abs_float w.(i) > drop_tol then incr n
  done;
  let rows = Array.make !n 0 and vals = Array.make !n 0.0 in
  let k = ref 0 in
  for i = 0 to t.m - 1 do
    if i <> r && abs_float w.(i) > drop_tol then begin
      rows.(!k) <- i;
      vals.(!k) <- w.(i);
      incr k
    end
  done;
  let e = { e_r = r; e_rows = rows; e_vals = vals; e_piv = w.(r) } in
  if t.n_etas >= Array.length t.etas then begin
    let cap = max 8 (2 * Array.length t.etas) in
    let etas = Array.make cap e in
    Array.blit t.etas 0 etas 0 t.n_etas;
    t.etas <- etas
  end;
  t.etas.(t.n_etas) <- e;
  t.n_etas <- t.n_etas + 1;
  t.etas_nnz <- t.etas_nnz + !n + 1

let ftran t b =
  let m = t.m in
  let y = Array.copy b in
  (* L solve, in step order. *)
  for k = 0 to m - 1 do
    let v = y.(t.prow.(k)) in
    if v <> 0.0 then begin
      let lr = t.l_rows.(k) and lv = t.l_vals.(k) in
      for i = 0 to Array.length lr - 1 do
        y.(lr.(i)) <- y.(lr.(i)) -. (v *. lv.(i))
      done
    end
  done;
  (* U back-substitution; w is indexed by step. *)
  let w = Array.make m 0.0 in
  for k = m - 1 downto 0 do
    let wk = y.(t.prow.(k)) /. t.diag.(k) in
    w.(k) <- wk;
    if wk <> 0.0 then begin
      let us = t.u_steps.(k) and uv = t.u_vals.(k) in
      for i = 0 to Array.length us - 1 do
        let pr = t.prow.(us.(i)) in
        y.(pr) <- y.(pr) -. (wk *. uv.(i))
      done
    end
  done;
  (* Back to basis-position space, then replay the eta file. *)
  let x = Array.make m 0.0 in
  for k = 0 to m - 1 do
    x.(t.cpos.(k)) <- w.(k)
  done;
  for e = 0 to t.n_etas - 1 do
    let { e_r; e_rows; e_vals; e_piv } = t.etas.(e) in
    let xr = x.(e_r) /. e_piv in
    x.(e_r) <- xr;
    if xr <> 0.0 then
      for i = 0 to Array.length e_rows - 1 do
        x.(e_rows.(i)) <- x.(e_rows.(i)) -. (e_vals.(i) *. xr)
      done
  done;
  x

let btran t c =
  let m = t.m in
  let d = Array.copy c in
  (* Eta file, newest first: only component e_r changes. *)
  for e = t.n_etas - 1 downto 0 do
    let { e_r; e_rows; e_vals; e_piv } = t.etas.(e) in
    let s = ref 0.0 in
    for i = 0 to Array.length e_rows - 1 do
      s := !s +. (d.(e_rows.(i)) *. e_vals.(i))
    done;
    d.(e_r) <- (d.(e_r) -. !s) /. e_piv
  done;
  (* U^T forward solve, indexed by step. *)
  let v = Array.make m 0.0 in
  for k = 0 to m - 1 do
    let s = ref 0.0 in
    let us = t.u_steps.(k) and uv = t.u_vals.(k) in
    for i = 0 to Array.length us - 1 do
      s := !s +. (v.(us.(i)) *. uv.(i))
    done;
    v.(k) <- (d.(t.cpos.(k)) -. !s) /. t.diag.(k)
  done;
  (* L^T backward solve; rows in l column k all have step > k. *)
  for k = m - 1 downto 0 do
    let s = ref 0.0 in
    let lr = t.l_rows.(k) and lv = t.l_vals.(k) in
    for i = 0 to Array.length lr - 1 do
      s := !s +. (lv.(i) *. v.(t.step_of_row.(lr.(i))))
    done;
    v.(k) <- v.(k) -. !s
  done;
  let y = Array.make m 0.0 in
  for k = 0 to m - 1 do
    y.(t.prow.(k)) <- v.(k)
  done;
  y
