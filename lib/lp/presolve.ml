(* LP presolve: a few safe reductions applied before a one-shot solve.

   - variables forced to a bound by singleton rows (e.g. a rounding pin
     [x >= 1] against the probability cap [x <= 1]) are fixed and
     substituted out;
   - empty rows are dropped after a consistency check;
   - duplicate rows keep only the tightest right-hand side;
   - duplicate hinge rows — rows identical except for their private
     penalty column — are merged, summing the penalty weights in the
     objective, which is how window multiplicities that escaped the
     encoder-level dedup collapse.

   Every reduction records how to restore the removed variables, so the
   reported solution still satisfies the original constraint list. *)

type stats = {
  removed_rows : int;
  fixed_vars : int;
  merged_hinges : int;
}

type result = {
  r_constrs : Simplex.constr list;
  r_objective : (int * float) list;
  r_offset : float; (* objective contribution of the fixed variables *)
  r_stats : stats;
  r_infeasible : bool;
  r_restore : (int -> float) -> int -> float;
      (* reduced-solution lookup -> original variable -> value *)
  r_row_map : int array;
      (* original constraint index -> index in r_constrs; duplicates map
         to the surviving representative, other removed rows to -1 *)
  r_var_map : int array;
      (* original variable -> variable carrying its reduced cost in the
         reduced problem (itself, or the kept penalty twin); -1 when the
         variable was fixed and substituted out *)
}

let tol = 1e-9

type row = {
  mutable live : bool;
  mutable terms : (int * float) list; (* sorted by variable *)
  rel : Simplex.relation;
  mutable b : float;
}

let run ~num_vars ~objective ?ub constrs =
  let rows =
    Array.of_list
      (List.map
         (fun (c : Simplex.constr) ->
           { live = true; terms = c.row; rel = c.relation; b = c.rhs })
         constrs)
  in
  let cost = Array.make (max 1 num_vars) 0.0 in
  List.iter (fun (v, k) -> cost.(v) <- cost.(v) +. k) objective;
  let fixed = Array.make (max 1 num_vars) None in
  let copy_of = Array.make (max 1 num_vars) (-1) in
  let lo = Array.make (max 1 num_vars) 0.0 in
  (* Variable caps seed [hi], so a rounding pin [x >= cap] still fixes
     the variable even though caps are column bounds, not rows. *)
  let hi =
    Array.init (max 1 num_vars) (fun v ->
        match ub with Some u when v < Array.length u -> u.(v) | _ -> infinity)
  in
  let removed = ref 0 in
  let nfixed = ref 0 in
  let merged = ref 0 in
  let infeasible = ref false in
  (* Fixpoint: substitute fixed variables, drop empty rows, tighten
     single-variable bounds, fix variables whose bounds meet. *)
  let changed = ref true in
  let passes = ref 0 in
  while !changed && (not !infeasible) && !passes < 16 do
    changed := false;
    incr passes;
    Array.iter
      (fun r ->
        if r.live then begin
          let subst =
            List.exists (fun (v, _) -> fixed.(v) <> None) r.terms
          in
          if subst then begin
            let gone = ref 0.0 in
            r.terms <-
              List.filter
                (fun (v, k) ->
                  match fixed.(v) with
                  | Some value ->
                    gone := !gone +. (k *. value);
                    false
                  | None -> true)
                r.terms;
            r.b <- r.b -. !gone;
            changed := true
          end;
          match r.terms with
          | [] ->
            r.live <- false;
            incr removed;
            changed := true;
            let viol =
              match r.rel with
              | Simplex.Le -> r.b < -.tol
              | Simplex.Ge -> r.b > tol
              | Simplex.Eq -> abs_float r.b > tol
            in
            if viol then infeasible := true
          | [ (v, a) ] when abs_float a > tol ->
            let x = r.b /. a in
            (match (r.rel, a > 0.0) with
            | Simplex.Le, true | Simplex.Ge, false ->
              if x < hi.(v) then begin
                hi.(v) <- x;
                changed := true
              end
            | Simplex.Ge, true | Simplex.Le, false ->
              if x > lo.(v) then begin
                lo.(v) <- x;
                changed := true
              end
            | Simplex.Eq, _ ->
              if x > lo.(v) then lo.(v) <- x;
              if x < hi.(v) then hi.(v) <- x;
              changed := true);
            if hi.(v) < -.tol || lo.(v) > hi.(v) +. tol then infeasible := true
            else if fixed.(v) = None && hi.(v) -. lo.(v) <= tol then begin
              fixed.(v) <- Some (max 0.0 ((lo.(v) +. hi.(v)) /. 2.0));
              incr nfixed;
              changed := true
            end
          | _ -> ()
        end)
      rows
  done;
  (* Representative of a row dropped as a duplicate (original index of
     the kept row), for mapping duals back to every original row. *)
  let rep = Array.make (max 1 (Array.length rows)) (-1) in
  if not !infeasible then begin
    (* Occurrence counts over the surviving rows, to spot penalty
       columns: a positive-cost variable used by exactly one row, with a
       negative coefficient, in a Le row — the hinge shape. *)
    let occur = Array.make (max 1 num_vars) 0 in
    Array.iter
      (fun r ->
        if r.live then
          List.iter (fun (v, _) -> occur.(v) <- occur.(v) + 1) r.terms)
      rows;
    let penalty_of r =
      if r.rel <> Simplex.Le then None
      else
        List.find_opt
          (fun (v, k) -> occur.(v) = 1 && k < 0.0 && cost.(v) > 0.0)
          r.terms
    in
    let tbl = Hashtbl.create 64 in
    Array.iteri
      (fun i r ->
        if r.live then begin
          match penalty_of r with
          | Some (h, hk) ->
            let key =
              `Hinge (List.filter (fun (v, _) -> v <> h) r.terms, hk, r.b)
            in
            (match Hashtbl.find_opt tbl key with
            | None -> Hashtbl.add tbl key (i, r, h)
            | Some (i0, _, h0) ->
              (* Same body, same penalty shape: fold this row's weight
                 onto the kept penalty variable and drop the row. *)
              cost.(h0) <- cost.(h0) +. cost.(h);
              cost.(h) <- 0.0;
              copy_of.(h) <- h0;
              r.live <- false;
              rep.(i) <- i0;
              incr removed;
              incr merged)
          | None ->
            let key = `Plain (r.terms, r.rel) in
            (match Hashtbl.find_opt tbl key with
            | None -> Hashtbl.add tbl key (i, r, -1)
            | Some (i0, r0, _) ->
              (* Duplicate body: keep the tighter right-hand side. *)
              let drop =
                match r.rel with
                | Simplex.Le ->
                  r0.b <- min r0.b r.b;
                  true
                | Simplex.Ge ->
                  r0.b <- max r0.b r.b;
                  true
                | Simplex.Eq ->
                  if abs_float (r0.b -. r.b) > tol then infeasible := true;
                  true
              in
              if drop then begin
                r.live <- false;
                rep.(i) <- i0;
                incr removed
              end)
        end)
      rows
  end;
  let offset = ref 0.0 in
  let seen = Hashtbl.create 64 in
  let r_objective =
    List.filter_map
      (fun (v, _) ->
        if Hashtbl.mem seen v then None
        else begin
          Hashtbl.add seen v ();
          match fixed.(v) with
          | Some value ->
            offset := !offset +. (cost.(v) *. value);
            None
          | None -> if cost.(v) = 0.0 then None else Some (v, cost.(v))
        end)
      objective
  in
  let r_constrs =
    Array.to_list rows
    |> List.filter_map (fun r ->
           if r.live then
             Some { Simplex.row = r.terms; relation = r.rel; rhs = r.b }
           else None)
  in
  let r_restore base v =
    match fixed.(v) with
    | Some value -> value
    | None -> if copy_of.(v) >= 0 then base copy_of.(v) else base v
  in
  let r_row_map =
    let surv = Array.make (max 1 (Array.length rows)) (-1) in
    let next = ref 0 in
    Array.iteri
      (fun i r ->
        if r.live then begin
          surv.(i) <- !next;
          incr next
        end)
      rows;
    Array.init (Array.length rows) (fun i ->
        if rows.(i).live then surv.(i)
        else if rep.(i) >= 0 then surv.(rep.(i))
        else -1)
  in
  let r_var_map =
    Array.init (max 1 num_vars) (fun v ->
        if fixed.(v) <> None then -1
        else if copy_of.(v) >= 0 then copy_of.(v)
        else v)
  in
  {
    r_constrs;
    r_objective;
    r_offset = !offset;
    r_stats =
      { removed_rows = !removed; fixed_vars = !nfixed; merged_hinges = !merged };
    r_infeasible = !infeasible;
    r_restore;
    r_row_map;
    r_var_map;
  }
