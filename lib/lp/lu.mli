(** LU-factorized simplex basis with product-form updates.

    Factors the m x m basis matrix [B] (given column by column) as
    [P B Q = L U] with a Markowitz-style ordering: columns are
    eliminated sparsest-first, and within a column the pivot row is
    chosen by threshold partial pivoting (any row whose magnitude is
    within a factor of the column maximum is acceptable) preferring the
    row with the fewest occurrences across the basis, which is what
    keeps fill-in low on the hinge-shaped bases the encoder produces.

    After a simplex pivot the factorization is not rebuilt: an {e eta}
    matrix is appended (product form of the inverse), so
    [B_k = B_0 E_1 ... E_k] and both solves replay the eta file around
    the triangular solves.  The eta file grows by one sparse column per
    pivot; the caller refactorizes periodically ({!eta_count} /
    {!eta_nnz} feed its threshold) to keep solves O(nnz).

    Solves are the two classic simplex kernels:
    - {!ftran} — solve [B x = b] (entering-column direction, basic
      values);
    - {!btran} — solve [B^T y = c] (simplex multipliers, tableau rows).

    Vectors indexed "by row" live in constraint-row space; vectors
    indexed "by position" live in basis-position space (position [k]
    holds the column [basis.(k)] of the simplex). *)

type t

val factorize : m:int -> col:(int -> (int -> float -> unit) -> unit) -> t option
(** [factorize ~m ~col] factors the basis whose column at position [k]
    is enumerated by [col k f] ([f row coeff], rows in any order,
    duplicates summed).  Returns [None] when the basis is numerically
    singular (no acceptable pivot in some column). *)

val size : t -> int
(** The dimension [m] the factorization was built for. *)

val ftran : t -> float array -> float array
(** [ftran t b] solves [B x = b].  [b] is indexed by row (length [m],
    not modified); the result is indexed by basis position. *)

val btran : t -> float array -> float array
(** [btran t c] solves [B^T y = c].  [c] is indexed by basis position
    (length [m], not modified); the result is indexed by row. *)

val update : t -> r:int -> w:float array -> unit
(** [update t ~r ~w] records the pivot that replaced the column at
    basis position [r], where [w = ftran t (entering column)] is the
    pivot direction.  Appends one eta term; O(nnz w).  The caller must
    have rejected pivots with [abs_float w.(r)] below its pivot
    tolerance. *)

val eta_count : t -> int
(** Number of eta terms accumulated since factorization. *)

val eta_nnz : t -> int
(** Total stored entries across the eta file. *)

val factor_nnz : t -> int
(** Entries in the L and U factors (fill-in included). *)
