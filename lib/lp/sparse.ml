(* Growable sparse matrix: CSR-style row storage plus per-column
   occurrence lists, both maintained on append.  Rows and columns are
   immutable once added; the structure only grows, which is exactly the
   lifecycle of the incremental LP (variables and constraints accumulate
   across rounds, coefficients never change). *)

type t = {
  mutable nrows : int;
  mutable ncols : int;
  (* CSR rows: [row_ptr.(i) .. row_ptr.(i+1))] indexes into row_col/row_val. *)
  mutable row_ptr : int array;
  mutable row_col : int array;
  mutable row_val : float array;
  mutable nnz : int;
  (* Per-column occurrence lists: rows (and coefficients) touching the
     column, in row order. *)
  mutable col_row : int array array;
  mutable col_val : float array array;
  mutable col_len : int array;
}

let create () =
  {
    nrows = 0;
    ncols = 0;
    row_ptr = Array.make 8 0;
    row_col = Array.make 16 0;
    row_val = Array.make 16 0.0;
    nnz = 0;
    col_row = Array.make 8 [||];
    col_val = Array.make 8 [||];
    col_len = Array.make 8 0;
  }

let nrows t = t.nrows

let ncols t = t.ncols

let nnz t = t.nnz

let grow_int a n fill =
  if Array.length a >= n then a
  else begin
    let b = Array.make (max n (2 * Array.length a)) fill in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let grow_float a n =
  if Array.length a >= n then a
  else begin
    let b = Array.make (max n (2 * Array.length a)) 0.0 in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let grow_arr a n empty =
  if Array.length a >= n then a
  else begin
    let b = Array.make (max n (2 * Array.length a)) empty in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let add_col t =
  let c = t.ncols in
  t.ncols <- c + 1;
  t.col_row <- grow_arr t.col_row (c + 1) [||];
  t.col_val <- grow_arr t.col_val (c + 1) [||];
  t.col_len <- grow_int t.col_len (c + 1) 0;
  t.col_row.(c) <- [||];
  t.col_val.(c) <- [||];
  t.col_len.(c) <- 0;
  c

let col_push t c row v =
  let len = t.col_len.(c) in
  if len >= Array.length t.col_row.(c) then begin
    t.col_row.(c) <- grow_int t.col_row.(c) (max 4 (2 * len)) 0;
    t.col_val.(c) <- grow_float t.col_val.(c) (max 4 (2 * len))
  end;
  t.col_row.(c).(len) <- row;
  t.col_val.(c).(len) <- v;
  t.col_len.(c) <- len + 1

(* Entries with equal column indices are merged and ~0 coefficients
   dropped, so both views stay canonical. *)
let add_row t entries =
  let entries =
    List.sort (fun (a, _) (b, _) -> compare a b) entries
    |> List.fold_left
         (fun acc (c, v) ->
           match acc with
           | (c', v') :: rest when c' = c -> (c', v' +. v) :: rest
           | _ -> (c, v) :: acc)
         []
    |> List.filter (fun (_, v) -> abs_float v > 1e-12)
    |> List.rev
  in
  let i = t.nrows in
  t.nrows <- i + 1;
  t.row_ptr <- grow_int t.row_ptr (i + 2) 0;
  let n = List.length entries in
  t.row_col <- grow_int t.row_col (t.nnz + n) 0;
  t.row_val <- grow_float t.row_val (t.nnz + n);
  List.iter
    (fun (c, v) ->
      if c < 0 || c >= t.ncols then invalid_arg "Sparse.add_row: unknown column";
      t.row_col.(t.nnz) <- c;
      t.row_val.(t.nnz) <- v;
      t.nnz <- t.nnz + 1;
      col_push t c i v)
    entries;
  t.row_ptr.(i + 1) <- t.nnz;
  i

let iter_row t i f =
  for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
    f t.row_col.(k) t.row_val.(k)
  done

let iter_col t c f =
  let rows = t.col_row.(c) and vals = t.col_val.(c) in
  for k = 0 to t.col_len.(c) - 1 do
    f rows.(k) vals.(k)
  done

let row_nnz t i = t.row_ptr.(i + 1) - t.row_ptr.(i)

let col_nnz t c = t.col_len.(c)

(* A_j . v — the pricing primitive: a reduced cost is c_j minus this. *)
let col_dot t c v =
  let rows = t.col_row.(c) and vals = t.col_val.(c) in
  let acc = ref 0.0 in
  for k = 0 to t.col_len.(c) - 1 do
    acc := !acc +. (vals.(k) *. v.(rows.(k)))
  done;
  !acc
