(** Linear-program builder.

    A thin modelling layer over {!Simplex}: named variables with bounds, a
    minimization objective accumulated term by term, and the two non-linear
    shapes the SherLock encoding needs, both with their standard exact LP
    reductions:

    - {!hinge} — [max(0, e)], for the Mostly-Protected terms (Equation 2);
    - {!abs} — [|e|], for the Mostly-Paired terms (Equations 6 and 7).

    All variables are bounded below by 0, matching their reading as
    probabilities or penalties.

    Two solve paths share the builder.  {!solve} is one-shot: the program
    is presolved ({!Presolve}) and handed to the selected engine — the
    sparse revised simplex by default, the seed dense tableau ({!Dense})
    for reference runs.  {!solve_incremental} keeps a live {!Simplex.t}
    inside the problem: each call pushes only the variables, constraints,
    right-hand-side edits, and objective accumulated since the previous
    call and reoptimizes from the previous basis — the engine of the
    encoder's cross-round warm starts. *)

type t

type var = int

type row_id = int

type status =
  | Solved of float  (** optimal objective value *)
  | Infeasible
  | Unbounded
  | Aborted
      (** the solver hit its pivot cap ({!Simplex.Iteration_limit}) and
          gave up; treated by callers like any other non-[Solved]
          status (the encoder degrades to its previous verdicts) *)

(** Which simplex implementation {!solve} uses. *)
type engine =
  | Dense  (** seed two-phase dense tableau ({!Dense}) *)
  | Sparse  (** revised simplex over {!Sparse} (the default) *)

(** Statistics from the most recent solve of a problem. *)
type solve_info = {
  engine : engine;
  pivots : int;
  warm : bool;  (** started from a previous basis (incremental path) *)
  pivots_saved : int;
      (** structural basis columns inherited at a warm start *)
  presolve_removed_rows : int;
  presolve_fixed_vars : int;
  cold_restarts : int;  (** warm attempts that fell back to a cold build *)
  refactors : int;  (** basis refactorizations during the solve *)
  eta_len : int;  (** longest eta file reached before a rebuild *)
  bound_rows_saved : int;
      (** cap rows the bounded-variable encoding kept out of the sparse
          matrix (0 on the Dense path, which still gets real rows) *)
}

val create : unit -> t

val set_engine : t -> engine -> unit

val engine : t -> engine

val set_presolve : t -> bool -> unit
(** Toggle the {!Presolve} pass on the one-shot path (on by default). *)

val add_var : t -> ?ub:float -> string -> var
(** [add_var t name] declares a variable in [\[0, inf)]; [~ub] caps it
    (probability variables use [~ub:1.0]).  Names are for diagnostics and
    need not be unique.  The cap, when present, is recorded as a {e
    virtual} row tagged ["ub:" ^ name]: it keeps a stable {!row_id}
    (retrievable via {!ub_row}, visible to {!row_info} and provenance,
    and a real constraint on the [Dense] oracle), but sparse engines
    enforce it as a column bound in the ratio test — no matrix row — and
    its dual is synthesized from the bounded column's reduced cost. *)

val name : t -> var -> string

val num_vars : t -> int

val num_rows : t -> int

(** A constraint as stored, for provenance reporting. *)
type row_info = {
  ri_tag : string;  (** source tag given at creation ("" when untagged) *)
  ri_terms : (var * float) list;
  ri_rel : Simplex.relation;
  ri_rhs : float;
}

val row_info : t -> row_id -> row_info

val row_activity : t -> row_id -> (var -> float) -> float
(** Left-hand-side value of a row under an assignment. *)

val ub_row : t -> var -> row_id option
(** The row id of the variable's upper-bound cap, if it was declared with
    [~ub].  Its dual at a minimum is [<= 0] when binding; the negation is
    the confidence margin provenance reports per verdict. *)

val add_le : ?tag:string -> t -> Linexpr.t -> float -> unit
(** Constraint [e <= rhs] (any constant inside [e] is folded into [rhs]).
    [~tag] names the row's source for provenance ("" by default). *)

val add_ge : ?tag:string -> t -> Linexpr.t -> float -> unit

val add_eq : ?tag:string -> t -> Linexpr.t -> float -> unit

val add_ge_row : ?tag:string -> t -> Linexpr.t -> float -> row_id
(** {!add_ge} returning the constraint's id, for later {!set_row_rhs}
    (how rounding pins are later relaxed). *)

val set_row_rhs : t -> row_id -> float -> unit
(** Replace a constraint's right-hand side (the stored one — any constant
    folded out of the expression at creation stays folded). *)

val add_objective : t -> Linexpr.t -> unit
(** Accumulate a term into the minimization objective. *)

val set_objective : t -> Linexpr.t -> unit
(** Replace the whole objective (incremental encoders rebuild it each
    round with recomputed weights). *)

val hinge : t -> weight:float -> string -> Linexpr.t -> var
(** [hinge t ~weight name e] adds a fresh variable [h >= max(0, e)] and the
    objective term [weight * h]; at the optimum [h = max(0, e)] because [h]
    is minimized.  Returns [h]. *)

val hinge_var : t -> string -> Linexpr.t -> var
(** {!hinge} without the objective term, for callers that set the whole
    objective via {!set_objective}. *)

val abs : t -> weight:float -> string -> Linexpr.t -> var
(** [abs t ~weight name e] adds a fresh [a >= |e|] with objective term
    [weight * a]; at the optimum [a = |e|].  Returns [a]. *)

val abs_var : t -> string -> Linexpr.t -> var
(** {!abs} without the objective term. *)

val solve : t -> status * (var -> float)
(** Solve the accumulated program one-shot (presolve + selected engine).
    The assignment function returns 0 for every variable when the program
    is not [Solved]. *)

val solve_incremental : t -> status * (var -> float)
(** Solve keeping live solver state inside [t]: subsequent calls push
    only the delta since the previous call and warm-start from its basis.
    Semantically equivalent to {!solve} (same optimal value; possibly a
    different optimal vertex when ties exist). *)

val last_info : t -> solve_info
(** Statistics of the most recent {!solve} / {!solve_incremental}. *)

(** Simplex multipliers of the last optimum, in problem coordinates. *)
type duals = {
  d_rows : float array;
      (** per constraint (by {!row_id}): its dual value.  For a binding
          [<=] row at a minimum the dual is [<= 0].  0 for rows presolve
          removed outright. *)
  d_vars : float array;
      (** per variable: its reduced cost (0 when basic, or when presolve
          substituted the variable out). *)
}

val set_capture_duals : t -> bool -> unit
(** When on, {!solve} and {!solve_incremental} snapshot the dual values
    and reduced costs of each optimal solve for {!last_duals}.  Off by
    default; when off neither path allocates anything extra.  Capture
    never changes the pivot sequence, so assignments and objectives are
    bitwise identical either way.  The [Dense] engine and fault-injected
    solves never capture. *)

val last_duals : t -> duals option
(** Duals of the most recent solve; [None] when capture was off, the
    solve was not optimal, or the path does not support capture. *)

val set_fault : status option -> unit
(** Fault-injection seam: while [Some s] is installed, {!solve} and
    {!solve_incremental} skip the simplex entirely and report [s] with
    the all-zero assignment.  Used by tests and the bench robustness
    gate to exercise the pipeline's graceful-degradation path (an
    organically infeasible program cannot arise from the SherLock
    encoding, whose constraints are all satisfiable at zero).
    [set_fault None] restores normal solving.  Global, not domain-local:
    install only around single-domain runs. *)

val pp_stats : Format.formatter -> t -> unit
(** One-line size summary (variables / constraints), for logs. *)
