(** Linear-program builder.

    A thin modelling layer over {!Simplex}: named variables with bounds, a
    minimization objective accumulated term by term, and the two non-linear
    shapes the SherLock encoding needs, both with their standard exact LP
    reductions:

    - {!hinge} — [max(0, e)], for the Mostly-Protected terms (Equation 2);
    - {!abs} — [|e|], for the Mostly-Paired terms (Equations 6 and 7).

    All variables are bounded below by 0, matching their reading as
    probabilities or penalties.

    Two solve paths share the builder.  {!solve} is one-shot: the program
    is presolved ({!Presolve}) and handed to the selected engine — the
    sparse revised simplex by default, the seed dense tableau ({!Dense})
    for reference runs.  {!solve_incremental} keeps a live {!Simplex.t}
    inside the problem: each call pushes only the variables, constraints,
    right-hand-side edits, and objective accumulated since the previous
    call and reoptimizes from the previous basis — the engine of the
    encoder's cross-round warm starts. *)

type t

type var = int

type row_id = int

type status =
  | Solved of float  (** optimal objective value *)
  | Infeasible
  | Unbounded

(** Which simplex implementation {!solve} uses. *)
type engine =
  | Dense  (** seed two-phase dense tableau ({!Dense}) *)
  | Sparse  (** revised simplex over {!Sparse} (the default) *)

(** Statistics from the most recent solve of a problem. *)
type solve_info = {
  engine : engine;
  pivots : int;
  warm : bool;  (** started from a previous basis (incremental path) *)
  pivots_saved : int;
      (** structural basis columns inherited at a warm start *)
  presolve_removed_rows : int;
  presolve_fixed_vars : int;
  cold_restarts : int;  (** warm attempts that fell back to a cold build *)
}

val create : unit -> t

val set_engine : t -> engine -> unit

val engine : t -> engine

val set_presolve : t -> bool -> unit
(** Toggle the {!Presolve} pass on the one-shot path (on by default). *)

val add_var : t -> ?ub:float -> string -> var
(** [add_var t name] declares a variable in [\[0, inf)]; [~ub] caps it
    (probability variables use [~ub:1.0]).  Names are for diagnostics and
    need not be unique. *)

val name : t -> var -> string

val num_vars : t -> int

val add_le : t -> Linexpr.t -> float -> unit
(** Constraint [e <= rhs] (any constant inside [e] is folded into [rhs]). *)

val add_ge : t -> Linexpr.t -> float -> unit

val add_eq : t -> Linexpr.t -> float -> unit

val add_ge_row : t -> Linexpr.t -> float -> row_id
(** {!add_ge} returning the constraint's id, for later {!set_row_rhs}
    (how rounding pins are later relaxed). *)

val set_row_rhs : t -> row_id -> float -> unit
(** Replace a constraint's right-hand side (the stored one — any constant
    folded out of the expression at creation stays folded). *)

val add_objective : t -> Linexpr.t -> unit
(** Accumulate a term into the minimization objective. *)

val set_objective : t -> Linexpr.t -> unit
(** Replace the whole objective (incremental encoders rebuild it each
    round with recomputed weights). *)

val hinge : t -> weight:float -> string -> Linexpr.t -> var
(** [hinge t ~weight name e] adds a fresh variable [h >= max(0, e)] and the
    objective term [weight * h]; at the optimum [h = max(0, e)] because [h]
    is minimized.  Returns [h]. *)

val hinge_var : t -> string -> Linexpr.t -> var
(** {!hinge} without the objective term, for callers that set the whole
    objective via {!set_objective}. *)

val abs : t -> weight:float -> string -> Linexpr.t -> var
(** [abs t ~weight name e] adds a fresh [a >= |e|] with objective term
    [weight * a]; at the optimum [a = |e|].  Returns [a]. *)

val abs_var : t -> string -> Linexpr.t -> var
(** {!abs} without the objective term. *)

val solve : t -> status * (var -> float)
(** Solve the accumulated program one-shot (presolve + selected engine).
    The assignment function returns 0 for every variable when the program
    is not [Solved]. *)

val solve_incremental : t -> status * (var -> float)
(** Solve keeping live solver state inside [t]: subsequent calls push
    only the delta since the previous call and warm-start from its basis.
    Semantically equivalent to {!solve} (same optimal value; possibly a
    different optimal vertex when ties exist). *)

val last_info : t -> solve_info
(** Statistics of the most recent {!solve} / {!solve_incremental}. *)

val set_fault : status option -> unit
(** Fault-injection seam: while [Some s] is installed, {!solve} and
    {!solve_incremental} skip the simplex entirely and report [s] with
    the all-zero assignment.  Used by tests and the bench robustness
    gate to exercise the pipeline's graceful-degradation path (an
    organically infeasible program cannot arise from the SherLock
    encoding, whose constraints are all satisfiable at zero).
    [set_fault None] restores normal solving.  Global, not domain-local:
    install only around single-domain runs. *)

val pp_stats : Format.formatter -> t -> unit
(** One-line size summary (variables / constraints), for logs. *)
