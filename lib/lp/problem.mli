(** Linear-program builder.

    A thin modelling layer over {!Simplex}: named variables with bounds, a
    minimization objective accumulated term by term, and the two non-linear
    shapes the SherLock encoding needs, both with their standard exact LP
    reductions:

    - {!hinge} — [max(0, e)], for the Mostly-Protected terms (Equation 2);
    - {!abs} — [|e|], for the Mostly-Paired terms (Equations 6 and 7).

    All variables are bounded below by 0, matching their reading as
    probabilities or penalties. *)

type t

type var = int

type status =
  | Solved of float  (** optimal objective value *)
  | Infeasible
  | Unbounded

val create : unit -> t

val add_var : t -> ?ub:float -> string -> var
(** [add_var t name] declares a variable in [\[0, inf)]; [~ub] caps it
    (probability variables use [~ub:1.0]).  Names are for diagnostics and
    need not be unique. *)

val name : t -> var -> string

val num_vars : t -> int

val add_le : t -> Linexpr.t -> float -> unit
(** Constraint [e <= rhs] (any constant inside [e] is folded into [rhs]). *)

val add_ge : t -> Linexpr.t -> float -> unit

val add_eq : t -> Linexpr.t -> float -> unit

val add_objective : t -> Linexpr.t -> unit
(** Accumulate a term into the minimization objective. *)

val hinge : t -> weight:float -> string -> Linexpr.t -> var
(** [hinge t ~weight name e] adds a fresh variable [h >= max(0, e)] and the
    objective term [weight * h]; at the optimum [h = max(0, e)] because [h]
    is minimized.  Returns [h]. *)

val abs : t -> weight:float -> string -> Linexpr.t -> var
(** [abs t ~weight name e] adds a fresh [a >= |e|] with objective term
    [weight * a]; at the optimum [a = |e|].  Returns [a]. *)

val solve : t -> status * (var -> float)
(** Solve the accumulated program.  The assignment function returns 0 for
    every variable when the program is not [Solved]. *)

val set_fault : status option -> unit
(** Fault-injection seam: while [Some s] is installed, {!solve} skips the
    simplex entirely and reports [s] with the all-zero assignment.  Used
    by tests and the bench robustness gate to exercise the pipeline's
    graceful-degradation path (an organically infeasible program cannot
    arise from the SherLock encoding, whose constraints are all
    satisfiable at zero).  [set_fault None] restores normal solving.
    Global, not domain-local: install only around single-domain runs. *)

val pp_stats : Format.formatter -> t -> unit
(** One-line size summary (variables / constraints), for logs. *)
