(* The seed dense two-phase tableau simplex, kept verbatim as the
   reference engine: the sparse revised-simplex path in {!Simplex} is
   qcheck-tested for outcome equivalence against this implementation, and
   [Problem.set_engine p Dense] routes a whole inference through it. *)

open Simplex

let eps = 1e-9

(* Tableau layout: columns [0, num_vars) are structural, then one slack or
   surplus column per inequality, then one artificial column per Ge/Eq row,
   and finally the right-hand side.  [basis.(i)] is the column currently
   basic in row [i].  The tableau is kept canonical: basic columns are unit
   vectors, so reduced costs can be recomputed from any cost vector. *)
type tableau = {
  t : float array array;      (* m rows, ncols + 1 entries; last is rhs *)
  basis : int array;
  ncols : int;
  first_artificial : int;     (* columns >= this are artificial *)
  mutable pivots : int;       (* pivot operations performed, for telemetry *)
}

let build num_vars constrs =
  let m = List.length constrs in
  (* Normalize to rhs >= 0. *)
  let normalized =
    List.map
      (fun c ->
        if c.rhs < 0.0 then
          {
            row = List.map (fun (v, k) -> (v, -.k)) c.row;
            relation = (match c.relation with Le -> Ge | Ge -> Le | Eq -> Eq);
            rhs = -.c.rhs;
          }
        else c)
      constrs
  in
  let num_slack =
    List.length (List.filter (fun c -> c.relation <> Eq) normalized)
  in
  let num_artificial =
    List.length (List.filter (fun c -> c.relation <> Le) normalized)
  in
  let ncols = num_vars + num_slack + num_artificial in
  let t = Array.make_matrix m (ncols + 1) 0.0 in
  let basis = Array.make m 0 in
  let next_slack = ref num_vars in
  let next_art = ref (num_vars + num_slack) in
  List.iteri
    (fun i c ->
      List.iter (fun (v, k) -> t.(i).(v) <- t.(i).(v) +. k) c.row;
      t.(i).(ncols) <- c.rhs;
      (match c.relation with
      | Le ->
        t.(i).(!next_slack) <- 1.0;
        basis.(i) <- !next_slack;
        incr next_slack
      | Ge ->
        t.(i).(!next_slack) <- -1.0;
        incr next_slack;
        t.(i).(!next_art) <- 1.0;
        basis.(i) <- !next_art;
        incr next_art
      | Eq ->
        t.(i).(!next_art) <- 1.0;
        basis.(i) <- !next_art;
        incr next_art))
    normalized;
  { t; basis; ncols; first_artificial = num_vars + num_slack; pivots = 0 }

let pivot tab ~row ~col =
  tab.pivots <- tab.pivots + 1;
  let t = tab.t in
  let m = Array.length t in
  let width = tab.ncols + 1 in
  let pr = t.(row) in
  let inv = 1.0 /. pr.(col) in
  for j = 0 to width - 1 do
    pr.(j) <- pr.(j) *. inv
  done;
  pr.(col) <- 1.0;
  for i = 0 to m - 1 do
    if i <> row then begin
      let factor = t.(i).(col) in
      if factor <> 0.0 then begin
        let ri = t.(i) in
        for j = 0 to width - 1 do
          ri.(j) <- ri.(j) -. (factor *. pr.(j))
        done;
        ri.(col) <- 0.0
      end
    end
  done;
  tab.basis.(row) <- col

(* Reduced-cost row for the current basis under cost vector [cost]
   (length ncols).  Returns (d, obj) with d_j = c_j - c_B B^-1 A_j. *)
let reduced_costs tab cost =
  let m = Array.length tab.t in
  let d = Array.make tab.ncols 0.0 in
  Array.blit cost 0 d 0 tab.ncols;
  let obj = ref 0.0 in
  for i = 0 to m - 1 do
    let cb = cost.(tab.basis.(i)) in
    if cb <> 0.0 then begin
      obj := !obj +. (cb *. tab.t.(i).(tab.ncols));
      for j = 0 to tab.ncols - 1 do
        d.(j) <- d.(j) -. (cb *. tab.t.(i).(j))
      done
    end
  done;
  (d, !obj)

(* Minimize [cost] over the current tableau.  [allow] filters entering
   columns (used to forbid artificials in phase 2).  Bland's rule: the
   entering column is the smallest-index eligible one and ties in the
   ratio test break toward the smallest basis index, which precludes
   cycling.  Returns [None] if unbounded. *)
let optimize tab cost ~allow =
  let m = Array.length tab.t in
  let d, obj0 = reduced_costs tab cost in
  let obj = ref obj0 in
  let rec loop () =
    let entering = ref (-1) in
    (try
       for j = 0 to tab.ncols - 1 do
         if allow j && d.(j) < -.eps then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then Some !obj
    else begin
      let col = !entering in
      let best_row = ref (-1) in
      let best_ratio = ref infinity in
      for i = 0 to m - 1 do
        let a = tab.t.(i).(col) in
        if a > eps then begin
          let ratio = tab.t.(i).(tab.ncols) /. a in
          if
            ratio < !best_ratio -. eps
            || (ratio < !best_ratio +. eps
               && !best_row >= 0
               && tab.basis.(i) < tab.basis.(!best_row))
          then begin
            best_row := i;
            best_ratio := ratio
          end
        end
      done;
      if !best_row < 0 then None
      else begin
        let row = !best_row in
        pivot tab ~row ~col;
        (* Update the reduced-cost row by the same elimination. *)
        let dcol = d.(col) in
        if dcol <> 0.0 then begin
          let pr = tab.t.(row) in
          for j = 0 to tab.ncols - 1 do
            d.(j) <- d.(j) -. (dcol *. pr.(j))
          done;
          d.(col) <- 0.0;
          obj := !obj +. (dcol *. pr.(tab.ncols))
        end;
        loop ()
      end
    end
  in
  loop ()

(* After phase 1, pivot basic artificials out on any usable non-artificial
   column; rows that cannot be pivoted are redundant and remain inert
   (their every non-artificial entry is zero, so later pivots leave them
   untouched). *)
let expel_artificials tab =
  let m = Array.length tab.t in
  for i = 0 to m - 1 do
    if tab.basis.(i) >= tab.first_artificial then begin
      let found = ref (-1) in
      (try
         for j = 0 to tab.first_artificial - 1 do
           if abs_float tab.t.(i).(j) > eps then begin
             found := j;
             raise Exit
           end
         done
       with Exit -> ());
      if !found >= 0 then pivot tab ~row:i ~col:!found
    end
  done

let phase2 tab num_vars objective =
  let cost2 = Array.make tab.ncols 0.0 in
  List.iter (fun (v, k) -> cost2.(v) <- cost2.(v) +. k) objective;
  match optimize tab cost2 ~allow:(fun j -> j < tab.first_artificial) with
  | None -> Unbounded
  | Some objective ->
    let solution = Array.make num_vars 0.0 in
    Array.iteri
      (fun i b -> if b < num_vars then solution.(b) <- tab.t.(i).(tab.ncols))
      tab.basis;
    Optimal { objective; solution }

let solve_counted ~num_vars ~objective constrs =
  let tab = build num_vars constrs in
  let outcome =
    if tab.first_artificial = tab.ncols then phase2 tab num_vars objective
    else begin
      let cost1 = Array.make tab.ncols 0.0 in
      for j = tab.first_artificial to tab.ncols - 1 do
        cost1.(j) <- 1.0
      done;
      match optimize tab cost1 ~allow:(fun _ -> true) with
      | None -> assert false (* phase-1 objective is bounded below by 0 *)
      | Some v when v > 1e-6 -> Infeasible
      | Some _ ->
        expel_artificials tab;
        phase2 tab num_vars objective
    end
  in
  (outcome, tab.pivots)

let solve ~num_vars ~objective constrs =
  fst (solve_counted ~num_vars ~objective constrs)
