type relation =
  | Le
  | Ge
  | Eq

type constr = {
  row : (int * float) list;
  relation : relation;
  rhs : float;
}

type outcome =
  | Optimal of { objective : float; solution : float array }
  | Unbounded
  | Infeasible

type stats = {
  pivots : int;
  warm : bool;
  reused_basis : int;
  cold_restarts : int;
}

let eps = 1e-9

let feas_tol = 1e-7

(* Revised simplex over the sparse matrix in {!Sparse}.  Only the working
   basis is dense: [binv] holds B^-1 (m x m) and [xb] the basic values;
   pricing and ratio tests walk sparse column occurrence lists against
   them.  The state is incremental: columns and rows append, appended
   rows border-extend the factorization (their slack or a fresh
   artificial becomes basic, B^-1 grows by one bordered row, no
   refactorization), right-hand sides may change in place, and the next
   [reoptimize] starts from the previous basis — primal if still
   feasible, dual repair against the last optimal cost vector if not,
   and a cold two-phase rebuild as the fallback of last resort. *)

type kind =
  | Structural
  | Slack
  | Artificial

type mstats = {
  mutable m_pivots : int;
  mutable m_warm : bool;
  mutable m_reused : int;
  mutable m_colds : int;
}

type t = {
  mat : Sparse.t;
  (* per column *)
  mutable kind : kind array;
  mutable cost : float array;
  mutable dead : bool array; (* retired artificials: never eligible to enter *)
  mutable in_basis : int array; (* basic in this row, or -1 *)
  mutable art_entry : (int * float) array; (* row of the artificial, or (-1,_) *)
  (* per row *)
  mutable rel : relation array;
  mutable rhs : float array;
  mutable slack_of : int array; (* slack/surplus column, or -1 for Eq *)
  (* factorization *)
  mutable have_basis : bool;
  mutable basis : int array; (* per row: the basic column *)
  mutable binv : float array array;
  mutable xb : float array;
  (* dual-repair certificate: the cost vector (and column count) the
     current basis was last proven optimal for.  Reduced costs under it
     stay non-negative across row appends (their basic columns are
     cost-free) and rhs edits, which is exactly dual feasibility. *)
  mutable have_opt : bool;
  mutable opt_cost : float array;
  stats : mstats;
}

let create () =
  {
    mat = Sparse.create ();
    kind = Array.make 8 Structural;
    cost = Array.make 8 0.0;
    dead = Array.make 8 false;
    in_basis = Array.make 8 (-1);
    art_entry = Array.make 8 (-1, 0.0);
    rel = Array.make 8 Le;
    rhs = Array.make 8 0.0;
    slack_of = Array.make 8 (-1);
    have_basis = false;
    basis = [||];
    binv = [||];
    xb = [||];
    have_opt = false;
    opt_cost = [||];
    stats = { m_pivots = 0; m_warm = false; m_reused = 0; m_colds = 0 };
  }

let grow (type a) (a : a array) n (fill : a) : a array =
  if Array.length a >= n then a
  else begin
    let b = Array.make (max n (2 * Array.length a)) fill in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let register_col t k =
  let c = Sparse.add_col t.mat in
  t.kind <- grow t.kind (c + 1) Structural;
  t.cost <- grow t.cost (c + 1) 0.0;
  t.dead <- grow t.dead (c + 1) false;
  t.in_basis <- grow t.in_basis (c + 1) (-1);
  t.art_entry <- grow t.art_entry (c + 1) (-1, 0.0);
  t.kind.(c) <- k;
  t.cost.(c) <- 0.0;
  t.dead.(c) <- false;
  t.in_basis.(c) <- -1;
  t.art_entry.(c) <- (-1, 0.0);
  c

let add_col t = register_col t Structural

(* Artificial columns live outside the CSR rows (a row's stored entries
   are its real coefficients); their single entry is kept aside and every
   column-view access goes through these two helpers. *)
let new_artificial t ~row ~coeff =
  let c = register_col t Artificial in
  t.art_entry.(c) <- (row, coeff);
  c

let iter_col_entries t j f =
  match t.kind.(j) with
  | Artificial ->
    let r, a = t.art_entry.(j) in
    if r >= 0 then f r a
  | Structural | Slack -> Sparse.iter_col t.mat j f

let col_dot t j v =
  match t.kind.(j) with
  | Artificial ->
    let r, a = t.art_entry.(j) in
    if r >= 0 then a *. v.(r) else 0.0
  | Structural | Slack -> Sparse.col_dot t.mat j v

let num_rows t = Sparse.nrows t.mat

let num_cols t = Sparse.ncols t.mat

(* Border extension: append row [i] to the factorization with [bcol]
   (coefficient [sigma] in row [i], zero cost) as its basic column.
   With B' = [[B, 0], [r_B, sigma]] the inverse is
   [[B^-1, 0], [-r_B B^-1 / sigma, 1/sigma]], and the new basic value is
   (b_i - r_B . x_B) / sigma — no refactorization, O(m^2). *)
let extend_basis t i ~bcol ~sigma =
  let m = Array.length t.basis in
  let u = Array.make (m + 1) 0.0 in
  let v = ref t.rhs.(i) in
  Sparse.iter_row t.mat i (fun c a ->
      let ib = t.in_basis.(c) in
      if ib >= 0 then begin
        v := !v -. (a *. t.xb.(ib));
        let bi = t.binv.(ib) in
        for k = 0 to m - 1 do
          u.(k) <- u.(k) +. (a *. bi.(k))
        done
      end);
  let nb = Array.make (m + 1) [||] in
  for r = 0 to m - 1 do
    let row = Array.make (m + 1) 0.0 in
    Array.blit t.binv.(r) 0 row 0 m;
    nb.(r) <- row
  done;
  let last = Array.make (m + 1) 0.0 in
  for k = 0 to m - 1 do
    last.(k) <- -.u.(k) /. sigma
  done;
  last.(m) <- 1.0 /. sigma;
  nb.(m) <- last;
  t.binv <- nb;
  let xb = Array.make (m + 1) 0.0 in
  Array.blit t.xb 0 xb 0 m;
  xb.(m) <- !v /. sigma;
  t.xb <- xb;
  let basis = Array.make (m + 1) 0 in
  Array.blit t.basis 0 basis 0 m;
  basis.(m) <- bcol;
  t.basis <- basis;
  t.in_basis.(bcol) <- m

let add_row t entries relation rhs_v =
  let slack =
    match relation with
    | Le -> Some (register_col t Slack, 1.0)
    | Ge -> Some (register_col t Slack, -1.0)
    | Eq -> None
  in
  let full =
    match slack with Some (c, s) -> (c, s) :: entries | None -> entries
  in
  let i = Sparse.add_row t.mat full in
  t.rel <- grow t.rel (i + 1) Le;
  t.rhs <- grow t.rhs (i + 1) 0.0;
  t.slack_of <- grow t.slack_of (i + 1) (-1);
  t.rel.(i) <- relation;
  t.rhs.(i) <- rhs_v;
  t.slack_of.(i) <- (match slack with Some (c, _) -> c | None -> -1);
  if t.have_basis then begin
    match slack with
    | Some (c, sigma) -> extend_basis t i ~bcol:c ~sigma
    | None ->
      let c = new_artificial t ~row:i ~coeff:1.0 in
      extend_basis t i ~bcol:c ~sigma:1.0
  end;
  i

let set_rhs t i v =
  let delta = v -. t.rhs.(i) in
  t.rhs.(i) <- v;
  if t.have_basis && delta <> 0.0 then begin
    (* x_B += B^-1 (delta e_i), one column of the inverse. *)
    let m = Array.length t.basis in
    for k = 0 to m - 1 do
      t.xb.(k) <- t.xb.(k) +. (t.binv.(k).(i) *. delta)
    done
  end

let set_objective t terms =
  Array.fill t.cost 0 (Array.length t.cost) 0.0;
  List.iter (fun (c, k) -> t.cost.(c) <- t.cost.(c) +. k) terms

let value t c =
  let i = t.in_basis.(c) in
  if i >= 0 then t.xb.(i) else 0.0

let basic_objective t cost =
  let obj = ref 0.0 in
  for i = 0 to Array.length t.basis - 1 do
    obj := !obj +. (cost.(t.basis.(i)) *. t.xb.(i))
  done;
  !obj

let dual_y t cost =
  let m = Array.length t.basis in
  let y = Array.make m 0.0 in
  for i = 0 to m - 1 do
    let cb = cost.(t.basis.(i)) in
    if cb <> 0.0 then begin
      let bi = t.binv.(i) in
      for k = 0 to m - 1 do
        y.(k) <- y.(k) +. (cb *. bi.(k))
      done
    end
  done;
  y

let compute_direction t j =
  let m = Array.length t.basis in
  let w = Array.make m 0.0 in
  iter_col_entries t j (fun r a ->
      for i = 0 to m - 1 do
        w.(i) <- w.(i) +. (t.binv.(i).(r) *. a)
      done);
  w

let do_pivot t ~row ~col ~w =
  let m = Array.length t.basis in
  let piv = w.(row) in
  let br = t.binv.(row) in
  let inv = 1.0 /. piv in
  for k = 0 to m - 1 do
    br.(k) <- br.(k) *. inv
  done;
  t.xb.(row) <- t.xb.(row) *. inv;
  for i = 0 to m - 1 do
    if i <> row then begin
      let f = w.(i) in
      if abs_float f > 1e-12 then begin
        let bi = t.binv.(i) in
        for k = 0 to m - 1 do
          bi.(k) <- bi.(k) -. (f *. br.(k))
        done;
        t.xb.(i) <- t.xb.(i) -. (f *. t.xb.(row))
      end
    end
  done;
  t.in_basis.(t.basis.(row)) <- -1;
  t.basis.(row) <- col;
  t.in_basis.(col) <- row;
  t.stats.m_pivots <- t.stats.m_pivots + 1

exception Iteration_limit

(* Primal simplex on the current factorization, minimizing [cost].
   Dantzig pricing (most negative reduced cost) with a permanent switch
   to Bland's rule after a long degenerate streak, which restores the
   termination guarantee.  Returns [None] when unbounded. *)
let primal t ~cost ~phase1 =
  let ncols = num_cols t in
  let bland = ref false in
  let degen = ref 0 in
  let iters = ref 0 in
  let m () = Array.length t.basis in
  let allowed j =
    (not t.dead.(j))
    && t.in_basis.(j) < 0
    && (phase1 || t.kind.(j) <> Artificial)
  in
  let rec loop () =
    incr iters;
    if !iters > 500_000 then raise Iteration_limit;
    let y = dual_y t cost in
    let best_j = ref (-1) in
    let best_d = ref (-.eps) in
    (try
       for j = 0 to ncols - 1 do
         if allowed j then begin
           let d = cost.(j) -. col_dot t j y in
           if d < !best_d then begin
             best_j := j;
             best_d := d;
             if !bland then raise Exit
           end
         end
       done
     with Exit -> ());
    if !best_j < 0 then Some (basic_objective t cost)
    else begin
      let j = !best_j in
      let w = compute_direction t j in
      let best_row = ref (-1) in
      let best_ratio = ref infinity in
      for i = 0 to m () - 1 do
        if w.(i) > eps then begin
          let ratio = t.xb.(i) /. w.(i) in
          if
            ratio < !best_ratio -. eps
            || (ratio < !best_ratio +. eps
               && !best_row >= 0
               && t.basis.(i) < t.basis.(!best_row))
          then begin
            best_row := i;
            best_ratio := ratio
          end
        end
      done;
      if !best_row < 0 then None
      else begin
        if !best_ratio <= feas_tol then begin
          incr degen;
          if !degen > 100 + (2 * m ()) then bland := true
        end
        else degen := 0;
        do_pivot t ~row:!best_row ~col:j ~w;
        loop ()
      end
    end
  in
  loop ()

(* Dual simplex under the last proven-optimal cost vector: drives the
   basic values back to feasibility while reduced costs stay >= 0.
   Columns added after that optimum are excluded from entering (their
   reduced costs under the old prices are unknown), as are artificials.
   Returns false — caller cold-restarts — when the restricted step has no
   eligible pivot; a restricted dead end says nothing about the full
   problem, so it must never be reported as infeasibility. *)
let dual_repair t =
  let nold = Array.length t.opt_cost in
  let cost_of j = if j < nold then t.opt_cost.(j) else 0.0 in
  let full_cost = Array.init (num_cols t) cost_of in
  let m = Array.length t.basis in
  let cap = 200 + (8 * m) in
  let iters = ref 0 in
  let rec loop () =
    incr iters;
    if !iters > cap then false
    else begin
      let r = ref (-1) in
      let worst = ref (-.feas_tol) in
      for i = 0 to m - 1 do
        if t.xb.(i) < !worst then begin
          r := i;
          worst := t.xb.(i)
        end
      done;
      if !r < 0 then true
      else begin
        let r = !r in
        let y = dual_y t full_cost in
        let br = t.binv.(r) in
        let best_j = ref (-1) in
        let best_ratio = ref infinity in
        for j = 0 to nold - 1 do
          if (not t.dead.(j)) && t.in_basis.(j) < 0 && t.kind.(j) <> Artificial
          then begin
            let alpha = ref 0.0 in
            iter_col_entries t j (fun row a -> alpha := !alpha +. (br.(row) *. a));
            if !alpha < -.eps then begin
              let d = max 0.0 (cost_of j -. col_dot t j y) in
              let ratio = d /. -. !alpha in
              if ratio < !best_ratio -. 1e-12 then begin
                best_j := j;
                best_ratio := ratio
              end
            end
          end
        done;
        if !best_j < 0 then false
        else begin
          let w = compute_direction t !best_j in
          do_pivot t ~row:r ~col:!best_j ~w;
          loop ()
        end
      end
    end
  in
  loop ()

let primal_feasible t =
  let ok = ref true in
  Array.iteri
    (fun i b ->
      if t.xb.(i) < -.feas_tol then ok := false
      else if t.kind.(b) = Artificial && abs_float t.xb.(i) > feas_tol then
        ok := false)
    t.basis;
  !ok

(* Verify the claimed optimum against the original rows; catches drift
   accumulated by long incremental pivot sequences. *)
let residuals_ok t =
  let ok = ref true in
  for i = 0 to num_rows t - 1 do
    if !ok then begin
      let s = ref 0.0 in
      Sparse.iter_row t.mat i (fun c a ->
          if t.kind.(c) = Structural then s := !s +. (a *. value t c));
      let slack = 1e-6 *. (1.0 +. abs_float t.rhs.(i)) in
      (match t.rel.(i) with
      | Le -> if !s > t.rhs.(i) +. slack then ok := false
      | Ge -> if !s < t.rhs.(i) -. slack then ok := false
      | Eq -> if abs_float (!s -. t.rhs.(i)) > slack then ok := false)
    end
  done;
  !ok

(* Pivot basic artificials out after phase 1 where a live column with a
   nonzero tableau entry exists; rows with none are redundant and the
   artificial stays basic at zero, retired so it can never re-enter. *)
let expel_artificials t =
  let ncols = num_cols t in
  for i = 0 to Array.length t.basis - 1 do
    if t.kind.(t.basis.(i)) = Artificial then begin
      let br = t.binv.(i) in
      let found = ref (-1) in
      (try
         for j = 0 to ncols - 1 do
           if (not t.dead.(j)) && t.in_basis.(j) < 0 && t.kind.(j) <> Artificial
           then begin
             let alpha = ref 0.0 in
             iter_col_entries t j (fun r a -> alpha := !alpha +. (br.(r) *. a));
             if abs_float !alpha > 1e-7 then begin
               found := j;
               raise Exit
             end
           end
         done
       with Exit -> ());
      if !found >= 0 then begin
        let w = compute_direction t !found in
        do_pivot t ~row:i ~col:!found ~w
      end
    end
  done

(* Cold start: rebuild the basis from slacks where the sign works, fresh
   artificials elsewhere, then the classic two phases. *)
let cold_solve t =
  (* Retire every artificial from previous starts. *)
  for c = 0 to num_cols t - 1 do
    if t.kind.(c) = Artificial then t.dead.(c) <- true;
    t.in_basis.(c) <- -1
  done;
  let m = num_rows t in
  t.basis <- Array.make m 0;
  t.binv <- Array.init m (fun _ -> Array.make m 0.0);
  t.xb <- Array.make m 0.0;
  let nart = ref 0 in
  for i = 0 to m - 1 do
    let b = t.rhs.(i) in
    let bcol, sigma =
      match t.rel.(i) with
      | Le when b >= 0.0 -> (t.slack_of.(i), 1.0)
      | Ge when b <= 0.0 -> (t.slack_of.(i), -1.0)
      | Le | Ge | Eq ->
        incr nart;
        let coeff = if b >= 0.0 then 1.0 else -1.0 in
        (new_artificial t ~row:i ~coeff, coeff)
    in
    t.basis.(i) <- bcol;
    t.in_basis.(bcol) <- i;
    t.binv.(i).(i) <- 1.0 /. sigma;
    t.xb.(i) <- b /. sigma
  done;
  t.have_basis <- true;
  let phase1_ok =
    if !nart = 0 then true
    else begin
      let cost1 = Array.make (num_cols t) 0.0 in
      for c = 0 to num_cols t - 1 do
        if t.kind.(c) = Artificial && not t.dead.(c) then cost1.(c) <- 1.0
      done;
      match primal t ~cost:cost1 ~phase1:true with
      | None -> assert false (* phase-1 objective is bounded below by 0 *)
      | Some v when v > 1e-6 -> false
      | Some _ ->
        expel_artificials t;
        for c = 0 to num_cols t - 1 do
          if t.kind.(c) = Artificial then t.dead.(c) <- true
        done;
        true
    end
  in
  if not phase1_ok then `Infeasible
  else
    match primal t ~cost:t.cost ~phase1:false with
    | None -> `Unbounded
    | Some obj -> `Optimal obj

let count_reused t =
  Array.fold_left
    (fun acc b -> if t.kind.(b) = Structural then acc + 1 else acc)
    0 t.basis

let reoptimize t =
  let s = t.stats in
  s.m_pivots <- 0;
  s.m_warm <- false;
  s.m_reused <- 0;
  s.m_colds <- 0;
  let go_cold () =
    s.m_colds <- s.m_colds + 1;
    s.m_warm <- false;
    s.m_reused <- 0;
    cold_solve t
  in
  let result =
    if not t.have_basis then begin
      match cold_solve t with
      | exception Iteration_limit -> raise Iteration_limit
      | r -> r
    end
    else begin
      let warm_result =
        if primal_feasible t then begin
          s.m_warm <- true;
          s.m_reused <- count_reused t;
          match primal t ~cost:t.cost ~phase1:false with
          | None -> Some `Unbounded
          | Some obj -> Some (`Optimal obj)
          | exception Iteration_limit -> None
        end
        else if t.have_opt then begin
          s.m_warm <- true;
          s.m_reused <- count_reused t;
          match dual_repair t with
          | exception Iteration_limit -> None
          | false -> None
          | true ->
            if not (primal_feasible t) then None
            else begin
              match primal t ~cost:t.cost ~phase1:false with
              | None -> Some `Unbounded
              | Some obj -> Some (`Optimal obj)
              | exception Iteration_limit -> None
            end
        end
        else None
      in
      match warm_result with
      | Some (`Optimal obj) when residuals_ok t -> `Optimal obj
      | Some (`Optimal _) -> go_cold ()
      | Some `Unbounded -> `Unbounded
      | None -> go_cold ()
    end
  in
  (match result with
  | `Optimal _ ->
    t.have_opt <- true;
    t.opt_cost <- Array.sub t.cost 0 (num_cols t)
  | `Unbounded | `Infeasible ->
    t.have_opt <- false;
    t.have_basis <- false);
  result

let last_stats t =
  {
    pivots = t.stats.m_pivots;
    warm = t.stats.m_warm;
    reused_basis = t.stats.m_reused;
    cold_restarts = t.stats.m_colds;
  }

let row_duals t =
  if t.have_basis && t.have_opt then dual_y t t.cost
  else Array.make (num_rows t) 0.0

let reduced_costs t =
  if not (t.have_basis && t.have_opt) then Array.make (num_cols t) 0.0
  else begin
    let y = dual_y t t.cost in
    Array.init (num_cols t) (fun j ->
        if t.in_basis.(j) >= 0 then 0.0 else t.cost.(j) -. col_dot t j y)
  end

let solve_tableau ~num_vars ~objective constrs =
  let t = create () in
  for _ = 1 to num_vars do
    ignore (add_col t)
  done;
  List.iter (fun c -> ignore (add_row t c.row c.relation c.rhs)) constrs;
  set_objective t objective;
  let outcome =
    match reoptimize t with
    | `Optimal objective ->
      Optimal { objective; solution = Array.init num_vars (value t) }
    | `Unbounded -> Unbounded
    | `Infeasible -> Infeasible
  in
  (outcome, last_stats t, t)

let solve_counted ~num_vars ~objective constrs =
  let outcome, stats, _ = solve_tableau ~num_vars ~objective constrs in
  (outcome, stats)

let solve ~num_vars ~objective constrs =
  fst (solve_counted ~num_vars ~objective constrs)
