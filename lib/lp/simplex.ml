type relation =
  | Le
  | Ge
  | Eq

type constr = {
  row : (int * float) list;
  relation : relation;
  rhs : float;
}

type outcome =
  | Optimal of { objective : float; solution : float array }
  | Unbounded
  | Infeasible

type stats = {
  pivots : int;
  warm : bool;
  reused_basis : int;
  cold_restarts : int;
  refactors : int;
  eta_len : int;
}

let eps = 1e-9

let feas_tol = 1e-7

let dual_tol = 1e-7

(* Revised simplex over the sparse matrix in {!Sparse} with an
   LU-factorized basis ({!Lu}): the basis inverse is never formed;
   FTRAN/BTRAN against the factors (plus the product-form eta file)
   replace every former [binv] walk.  Pivots append an eta term and the
   factorization is rebuilt when the eta file passes a length/fill
   threshold.  Variables carry optional upper bounds handled directly in
   pricing and the ratio test — a nonbasic column sits at 0 or at its
   bound ([at_upper]) and rows are never spent on caps.  The state is
   incremental: columns and rows append (appended rows just grow the
   basis with their slack or a fresh artificial and invalidate the
   factorization — no O(m^2) border extension), right-hand sides may
   change in place, and the next [reoptimize] starts from the previous
   basis — primal if still feasible, a bounded-variable dual simplex
   under the last optimal cost vector if not, and a cold two-phase
   rebuild as the fallback of last resort. *)

type kind =
  | Structural
  | Slack
  | Artificial

type mstats = {
  mutable m_pivots : int;
  mutable m_warm : bool;
  mutable m_reused : int;
  mutable m_colds : int;
  mutable m_refactors : int;
  mutable m_eta_max : int;
}

type t = {
  mat : Sparse.t;
  (* per column *)
  mutable kind : kind array;
  mutable cost : float array;
  mutable ub : float array; (* upper bound, [infinity] when none *)
  mutable at_upper : bool array; (* nonbasic at its upper bound *)
  mutable dead : bool array; (* retired artificials: never eligible to enter *)
  mutable in_basis : int array; (* basic in this row, or -1 *)
  mutable art_entry : (int * float) array; (* row of the artificial, or (-1,_) *)
  (* per row *)
  mutable rel : relation array;
  mutable rhs : float array;
  mutable slack_of : int array; (* slack/surplus column, or -1 for Eq *)
  (* factorization *)
  mutable have_basis : bool;
  mutable basis : int array; (* per row: the basic column *)
  mutable factor : Lu.t option; (* [None]: needs (re)factorization *)
  mutable xb : float array;
  mutable xb_valid : bool;
  (* dual certificate: the cost vector (and column count) the current
     basis was last proven optimal for.  Reduced costs under it keep
     their signs across row appends (the appended basic columns are
     cost-free) and rhs edits, which is exactly dual feasibility — the
     dual simplex restores primal feasibility under that certificate. *)
  mutable have_opt : bool;
  mutable opt_cost : float array;
  mutable opt_ncols : int;
  stats : mstats;
}

(* Both knobs are set only from (sequential) tests; solver domains treat
   them as read-only configuration. *)
let default_pivot_limit = 500_000

let pivot_limit = ref default_pivot_limit

let set_pivot_limit n = pivot_limit := max 1 n

let default_refactor_interval = 64

(* Live eta-file length, visible to the snapshot ticker mid-solve: how
   far the current factorization has drifted since the last refactor.
   One atomic store per pivot — noise next to the FTRAN/BTRAN work. *)
let g_eta_len = Sherlock_telemetry.Metrics.gauge "lp.eta_len"

let refactor_interval = ref default_refactor_interval

let set_refactor_interval n = refactor_interval := max 1 n

let create () =
  {
    mat = Sparse.create ();
    kind = Array.make 8 Structural;
    cost = Array.make 8 0.0;
    ub = Array.make 8 infinity;
    at_upper = Array.make 8 false;
    dead = Array.make 8 false;
    in_basis = Array.make 8 (-1);
    art_entry = Array.make 8 (-1, 0.0);
    rel = Array.make 8 Le;
    rhs = Array.make 8 0.0;
    slack_of = Array.make 8 (-1);
    have_basis = false;
    basis = [||];
    factor = None;
    xb = [||];
    xb_valid = false;
    have_opt = false;
    opt_cost = [||];
    opt_ncols = 0;
    stats =
      {
        m_pivots = 0;
        m_warm = false;
        m_reused = 0;
        m_colds = 0;
        m_refactors = 0;
        m_eta_max = 0;
      };
  }

let grow (type a) (a : a array) n (fill : a) : a array =
  if Array.length a >= n then a
  else begin
    let b = Array.make (max n (2 * Array.length a)) fill in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let register_col t k =
  let c = Sparse.add_col t.mat in
  t.kind <- grow t.kind (c + 1) Structural;
  t.cost <- grow t.cost (c + 1) 0.0;
  t.ub <- grow t.ub (c + 1) infinity;
  t.at_upper <- grow t.at_upper (c + 1) false;
  t.dead <- grow t.dead (c + 1) false;
  t.in_basis <- grow t.in_basis (c + 1) (-1);
  t.art_entry <- grow t.art_entry (c + 1) (-1, 0.0);
  t.kind.(c) <- k;
  t.cost.(c) <- 0.0;
  t.ub.(c) <- infinity;
  t.at_upper.(c) <- false;
  t.dead.(c) <- false;
  t.in_basis.(c) <- -1;
  t.art_entry.(c) <- (-1, 0.0);
  c

let add_col ?(ub = infinity) t =
  let c = register_col t Structural in
  t.ub.(c) <- ub;
  c

(* Artificial columns live outside the CSR rows (a row's stored entries
   are its real coefficients); their single entry is kept aside and every
   column-view access goes through these two helpers. *)
let new_artificial t ~row ~coeff =
  let c = register_col t Artificial in
  t.art_entry.(c) <- (row, coeff);
  c

let iter_col_entries t j f =
  match t.kind.(j) with
  | Artificial ->
    let r, a = t.art_entry.(j) in
    if r >= 0 then f r a
  | Structural | Slack -> Sparse.iter_col t.mat j f

let col_dot t j v =
  match t.kind.(j) with
  | Artificial ->
    let r, a = t.art_entry.(j) in
    if r >= 0 then a *. v.(r) else 0.0
  | Structural | Slack -> Sparse.col_dot t.mat j v

let num_rows t = Sparse.nrows t.mat

let num_cols t = Sparse.ncols t.mat

(* An artificial's only feasible value is 0, so outside phase 1 it is a
   bounded column with ub 0: the ratio test then refuses to let a basic
   artificial grow (a degenerate pivot expels it instead), and the dual
   simplex treats a nonzero one — e.g. the residual of a freshly
   appended Eq row — as a bound violation to repair.  During phase 1 the
   bound must be off: artificials legitimately start at |b|. *)
let col_ub t ~phase1 j =
  if t.kind.(j) = Artificial then if phase1 then infinity else 0.0
  else t.ub.(j)

exception Iteration_limit

(* Internal: the factorization (or a pivot on it) went numerically bad.
   Warm paths fall back to a cold rebuild; a cold rebuild that still
   trips it gives up as {!Iteration_limit}. *)
exception Numerical_trouble

let get_factor t =
  match t.factor with
  | Some lu -> lu
  | None -> invalid_arg "Simplex: no factorization"

let refactor_now t =
  let m = num_rows t in
  match Lu.factorize ~m ~col:(fun k f -> iter_col_entries t t.basis.(k) f) with
  | None -> raise Numerical_trouble
  | Some lu ->
    t.factor <- Some lu;
    t.stats.m_refactors <- t.stats.m_refactors + 1;
    t.xb_valid <- false

(* Effective rhs: columns nonbasic at their bound contribute u_j A_j. *)
let compute_beff t =
  let m = num_rows t in
  let b = Array.sub t.rhs 0 m in
  for j = 0 to num_cols t - 1 do
    if t.at_upper.(j) then begin
      let u = t.ub.(j) in
      iter_col_entries t j (fun r a -> b.(r) <- b.(r) -. (u *. a))
    end
  done;
  b

let ensure_ready t =
  (match t.factor with
  | Some lu when Lu.size lu = num_rows t -> ()
  | Some _ | None -> refactor_now t);
  if not t.xb_valid then begin
    t.xb <- Lu.ftran (get_factor t) (compute_beff t);
    t.xb_valid <- true
  end

let maybe_refactor t =
  let lu = get_factor t in
  if
    Lu.eta_count lu >= !refactor_interval
    || Lu.eta_nnz lu > (2 * Lu.factor_nnz lu) + num_rows t
  then begin
    refactor_now t;
    ensure_ready t
  end

let add_row t entries relation rhs_v =
  let slack =
    match relation with
    | Le -> Some (register_col t Slack, 1.0)
    | Ge -> Some (register_col t Slack, -1.0)
    | Eq -> None
  in
  let full =
    match slack with Some (c, s) -> (c, s) :: entries | None -> entries
  in
  let i = Sparse.add_row t.mat full in
  t.rel <- grow t.rel (i + 1) Le;
  t.rhs <- grow t.rhs (i + 1) 0.0;
  t.slack_of <- grow t.slack_of (i + 1) (-1);
  t.rel.(i) <- relation;
  t.rhs.(i) <- rhs_v;
  t.slack_of.(i) <- (match slack with Some (c, _) -> c | None -> -1);
  if t.have_basis then begin
    (* The appended row's slack (or a fresh artificial for Eq) joins the
       basis; the factorization is simply invalidated and rebuilt lazily
       at the next solve — no O(m^2) border extension. *)
    let bcol =
      match slack with
      | Some (c, _) -> c
      | None -> new_artificial t ~row:i ~coeff:1.0
    in
    let m = Array.length t.basis in
    let basis = Array.make (m + 1) 0 in
    Array.blit t.basis 0 basis 0 m;
    basis.(m) <- bcol;
    t.basis <- basis;
    t.in_basis.(bcol) <- m;
    t.factor <- None;
    t.xb_valid <- false
  end;
  i

let set_rhs t i v =
  if v <> t.rhs.(i) then begin
    t.rhs.(i) <- v;
    t.xb_valid <- false
  end

let set_objective t terms =
  Array.fill t.cost 0 (Array.length t.cost) 0.0;
  List.iter (fun (c, k) -> t.cost.(c) <- t.cost.(c) +. k) terms

let value t c =
  let i = t.in_basis.(c) in
  if i >= 0 then t.xb.(i) else if t.at_upper.(c) then t.ub.(c) else 0.0

let is_at_upper t c = t.at_upper.(c)

let basic_objective t cost =
  let obj = ref 0.0 in
  for i = 0 to Array.length t.basis - 1 do
    obj := !obj +. (cost.(t.basis.(i)) *. t.xb.(i))
  done;
  for j = 0 to num_cols t - 1 do
    if t.at_upper.(j) then obj := !obj +. (cost.(j) *. t.ub.(j))
  done;
  !obj

let dual_y t cost =
  let m = Array.length t.basis in
  let cb = Array.make m 0.0 in
  for i = 0 to m - 1 do
    cb.(i) <- cost.(t.basis.(i))
  done;
  Lu.btran (get_factor t) cb

let compute_direction t j =
  let m = num_rows t in
  let a = Array.make m 0.0 in
  iter_col_entries t j (fun r v -> a.(r) <- a.(r) +. v);
  Lu.ftran (get_factor t) a

(* Row [r] of B^-1 as a row-space vector: rho = B^-T e_r, so that
   rho . A_j is entry [r] of the pivot direction for column [j]. *)
let btran_unit t r =
  let m = Array.length t.basis in
  let e = Array.make m 0.0 in
  e.(r) <- 1.0;
  Lu.btran (get_factor t) e

(* Basis change at position [row]: entering column [col] at value
   [enter_value], the other basic values having moved by
   [-. s *. delta *. w]; the leaving column lands at 0 or, when
   [leave_upper], at its bound. *)
let do_pivot t ~row ~col ~w ~s ~delta ~enter_value ~leave_upper =
  let m = Array.length t.basis in
  for i = 0 to m - 1 do
    if i <> row then t.xb.(i) <- t.xb.(i) -. (s *. delta *. w.(i))
  done;
  let leaving = t.basis.(row) in
  t.in_basis.(leaving) <- -1;
  t.at_upper.(leaving) <- leave_upper && t.kind.(leaving) <> Artificial;
  t.basis.(row) <- col;
  t.in_basis.(col) <- row;
  t.at_upper.(col) <- false;
  t.xb.(row) <- enter_value;
  let lu = get_factor t in
  Lu.update lu ~r:row ~w;
  t.stats.m_pivots <- t.stats.m_pivots + 1;
  t.stats.m_eta_max <- max t.stats.m_eta_max (Lu.eta_count lu);
  Sherlock_telemetry.Metrics.Gauge.set g_eta_len (Lu.eta_count lu);
  maybe_refactor t

(* Primal simplex on the current factorization, minimizing [cost], with
   bounded variables: a nonbasic column may enter rising from 0 (reduced
   cost < 0) or falling from its bound (reduced cost > 0), and the ratio
   test admits three events — a basic value hitting 0, a basic value
   hitting its own bound (it leaves at the bound), or the entering
   column traversing its whole range (a bound flip, no basis change).
   Dantzig pricing with a permanent switch to Bland's rule after a long
   degenerate streak, which restores the termination guarantee.  Returns
   [None] when unbounded. *)
let primal t ~cost ~phase1 =
  let ncols = num_cols t in
  let bland = ref false in
  let degen = ref 0 in
  let iters = ref 0 in
  let m () = Array.length t.basis in
  let allowed j =
    (not t.dead.(j))
    && t.in_basis.(j) < 0
    && (phase1 || t.kind.(j) <> Artificial)
  in
  let rec loop () =
    incr iters;
    if !iters > !pivot_limit then raise Iteration_limit;
    let y = dual_y t cost in
    let best_j = ref (-1) in
    let best_score = ref eps in
    (try
       for j = 0 to ncols - 1 do
         if allowed j then begin
           let d = cost.(j) -. col_dot t j y in
           let score = if t.at_upper.(j) then d else -.d in
           if score > !best_score then begin
             best_j := j;
             best_score := score;
             if !bland then raise Exit
           end
         end
       done
     with Exit -> ());
    if !best_j < 0 then Some (basic_objective t cost)
    else begin
      let j = !best_j in
      let from_upper = t.at_upper.(j) in
      let s = if from_upper then -1.0 else 1.0 in
      let w = compute_direction t j in
      let best_row = ref (-1) in
      let best_ratio = ref infinity in
      let leave_upper = ref false in
      let uq = col_ub t ~phase1 j in
      if uq < infinity then best_ratio := uq (* bound flip, no basis change *);
      let better ratio i =
        ratio < !best_ratio -. eps
        || ratio < !best_ratio +. eps
           && !best_row >= 0
           && t.basis.(i) < t.basis.(!best_row)
      in
      for i = 0 to m () - 1 do
        let swi = s *. w.(i) in
        if swi > eps then begin
          (* basic value falling toward 0 *)
          let ratio = t.xb.(i) /. swi in
          if better ratio i then begin
            best_row := i;
            best_ratio := ratio;
            leave_upper := false
          end
        end
        else if swi < -.eps then begin
          (* basic value rising toward its own bound *)
          let ubi = col_ub t ~phase1 t.basis.(i) in
          if ubi < infinity then begin
            let ratio = (ubi -. t.xb.(i)) /. -.swi in
            if better ratio i then begin
              best_row := i;
              best_ratio := ratio;
              leave_upper := true
            end
          end
        end
      done;
      if !best_ratio = infinity then None
      else begin
        let delta = max 0.0 !best_ratio in
        if delta <= feas_tol then begin
          incr degen;
          if !degen > 100 + (2 * m ()) then bland := true
        end
        else degen := 0;
        if !best_row < 0 then begin
          (* bound flip: x_j jumps between 0 and u_j *)
          for i = 0 to m () - 1 do
            t.xb.(i) <- t.xb.(i) -. (s *. delta *. w.(i))
          done;
          t.at_upper.(j) <- not from_upper;
          t.stats.m_pivots <- t.stats.m_pivots + 1
        end
        else
          do_pivot t ~row:!best_row ~col:j ~w ~s ~delta
            ~enter_value:(if from_upper then uq -. delta else delta)
            ~leave_upper:!leave_upper;
        loop ()
      end
    end
  in
  loop ()

(* Bounded-variable dual simplex under the last proven-optimal cost
   vector: picks the basic variable most outside its bounds as leaving,
   then the entering column by the dual ratio test, so reduced costs
   keep their certificate signs while primal feasibility is restored.
   Columns added after that optimum are excluded from entering (their
   reduced costs under the old prices are unknown), as are artificials.
   A certificate violation beyond tolerance — a nonbasic column whose
   reduced cost already has the wrong sign — aborts to a cold start
   instead of entering that column at ratio 0 (the old [max 0.0] clamp
   did exactly that and forced silent cold restarts downstream).
   Returns false — caller cold-restarts — when the restricted step has no
   eligible pivot; a restricted dead end says nothing about the full
   problem, so it must never be reported as infeasibility. *)
let dual_simplex t =
  let nold = min t.opt_ncols (num_cols t) in
  let cost_of j = if j < Array.length t.opt_cost then t.opt_cost.(j) else 0.0 in
  let full_cost = Array.init (num_cols t) cost_of in
  let m = Array.length t.basis in
  let cap = 200 + (8 * m) in
  let iters = ref 0 in
  let rec loop () =
    incr iters;
    if !iters > cap then false
    else begin
      let r = ref (-1) in
      let worst = ref feas_tol in
      let target = ref 0.0 in
      let above = ref false in
      for i = 0 to m - 1 do
        let ubi = col_ub t ~phase1:false t.basis.(i) in
        if -.t.xb.(i) > !worst then begin
          r := i;
          worst := -.t.xb.(i);
          target := 0.0;
          above := false
        end;
        if t.xb.(i) -. ubi > !worst then begin
          r := i;
          worst := t.xb.(i) -. ubi;
          target := ubi;
          above := true
        end
      done;
      if !r < 0 then true
      else begin
        let r = !r in
        let target = !target and above = !above in
        let rho = btran_unit t r in
        let y = dual_y t full_cost in
        let best_j = ref (-1) in
        let best_ratio = ref infinity in
        let best_alpha = ref 0.0 in
        let certified = ref true in
        for j = 0 to nold - 1 do
          if
            !certified
            && (not t.dead.(j))
            && t.in_basis.(j) < 0
            && t.kind.(j) <> Artificial
          then begin
            let d = cost_of j -. col_dot t j y in
            let upper = t.at_upper.(j) in
            if (not upper) && d < -.dual_tol then certified := false
            else if upper && d > dual_tol then certified := false
            else begin
              let alpha = col_dot t j rho in
              let eligible =
                if above then if upper then alpha < -.eps else alpha > eps
                else if upper then alpha > eps
                else alpha < -.eps
              in
              if eligible then begin
                (* snap within-tolerance noise, never a real violation *)
                let d = if upper then min 0.0 d else max 0.0 d in
                let ratio = abs_float d /. abs_float alpha in
                if
                  ratio < !best_ratio -. 1e-12
                  || ratio < !best_ratio +. 1e-12
                     && abs_float alpha > abs_float !best_alpha
                then begin
                  best_j := j;
                  best_ratio := ratio;
                  best_alpha := alpha
                end
              end
            end
          end
        done;
        if (not !certified) || !best_j < 0 then false
        else begin
          let q = !best_j in
          let w = compute_direction t q in
          let wr = w.(r) in
          if abs_float wr < eps then false
          else begin
            let delta = (t.xb.(r) -. target) /. wr in
            let from_upper = t.at_upper.(q) in
            do_pivot t ~row:r ~col:q ~w ~s:1.0 ~delta
              ~enter_value:((if from_upper then t.ub.(q) else 0.0) +. delta)
              ~leave_upper:above;
            loop ()
          end
        end
      end
    end
  in
  loop ()

let primal_feasible t =
  let ok = ref true in
  Array.iteri
    (fun i b ->
      let ubi = col_ub t ~phase1:false b in
      if t.xb.(i) < -.feas_tol || t.xb.(i) > ubi +. feas_tol then ok := false)
    t.basis;
  !ok

(* Verify the claimed optimum against the original rows and bounds;
   catches drift accumulated by long incremental pivot sequences. *)
let residuals_ok t =
  let ok = ref true in
  for i = 0 to num_rows t - 1 do
    if !ok then begin
      let s = ref 0.0 in
      Sparse.iter_row t.mat i (fun c a ->
          if t.kind.(c) = Structural then s := !s +. (a *. value t c));
      let slack = 1e-6 *. (1.0 +. abs_float t.rhs.(i)) in
      match t.rel.(i) with
      | Le -> if !s > t.rhs.(i) +. slack then ok := false
      | Ge -> if !s < t.rhs.(i) -. slack then ok := false
      | Eq -> if abs_float (!s -. t.rhs.(i)) > slack then ok := false
    end
  done;
  if !ok then
    for j = 0 to num_cols t - 1 do
      if t.kind.(j) = Structural then begin
        let v = value t j in
        if v < -.feas_tol || v > t.ub.(j) +. feas_tol then ok := false
      end
    done;
  !ok

(* Pivot basic artificials out after phase 1 where a live column with a
   nonzero tableau entry exists (a degenerate swap, the entering column
   staying at its current activity); rows with none are redundant and
   the artificial stays basic at zero, retired so it can never
   re-enter. *)
let expel_artificials t =
  let ncols = num_cols t in
  for i = 0 to Array.length t.basis - 1 do
    if t.kind.(t.basis.(i)) = Artificial then begin
      let rho = btran_unit t i in
      let found = ref (-1) in
      (try
         for j = 0 to ncols - 1 do
           if (not t.dead.(j)) && t.in_basis.(j) < 0 && t.kind.(j) <> Artificial
           then
             if abs_float (col_dot t j rho) > 1e-7 then begin
               found := j;
               raise Exit
             end
         done
       with Exit -> ());
      if !found >= 0 then begin
        let j = !found in
        let w = compute_direction t j in
        if abs_float w.(i) > 1e-7 then begin
          let from_upper = t.at_upper.(j) in
          let s = if from_upper then -1.0 else 1.0 in
          do_pivot t ~row:i ~col:j ~w ~s ~delta:0.0
            ~enter_value:(if from_upper then t.ub.(j) else 0.0)
            ~leave_upper:false
        end
      end
    end
  done

(* Cold start: rebuild the basis from slacks where the sign works, fresh
   artificials elsewhere, then the classic two phases.  All bounded
   columns start at their lower bound. *)
let cold_solve t =
  for c = 0 to num_cols t - 1 do
    if t.kind.(c) = Artificial then t.dead.(c) <- true;
    t.in_basis.(c) <- -1;
    t.at_upper.(c) <- false
  done;
  let m = num_rows t in
  t.basis <- Array.make m 0;
  let nart = ref 0 in
  for i = 0 to m - 1 do
    let b = t.rhs.(i) in
    let bcol =
      match t.rel.(i) with
      | Le when b >= 0.0 -> t.slack_of.(i)
      | Ge when b <= 0.0 -> t.slack_of.(i)
      | Le | Ge | Eq ->
        incr nart;
        let coeff = if b >= 0.0 then 1.0 else -1.0 in
        new_artificial t ~row:i ~coeff
    in
    t.basis.(i) <- bcol;
    t.in_basis.(bcol) <- i
  done;
  t.factor <- None;
  t.xb_valid <- false;
  t.have_basis <- true;
  ensure_ready t;
  let phase1_ok =
    if !nart = 0 then true
    else begin
      let cost1 = Array.make (num_cols t) 0.0 in
      for c = 0 to num_cols t - 1 do
        if t.kind.(c) = Artificial && not t.dead.(c) then cost1.(c) <- 1.0
      done;
      match primal t ~cost:cost1 ~phase1:true with
      | None -> assert false (* phase-1 objective is bounded below by 0 *)
      | Some v when v > 1e-6 -> false
      | Some _ ->
        expel_artificials t;
        for c = 0 to num_cols t - 1 do
          if t.kind.(c) = Artificial then t.dead.(c) <- true
        done;
        true
    end
  in
  if not phase1_ok then `Infeasible
  else
    match primal t ~cost:t.cost ~phase1:false with
    | None -> `Unbounded
    | Some obj -> `Optimal obj

let count_reused t =
  Array.fold_left
    (fun acc b -> if t.kind.(b) = Structural then acc + 1 else acc)
    0 t.basis

let reoptimize t =
  let s = t.stats in
  s.m_pivots <- 0;
  s.m_warm <- false;
  s.m_reused <- 0;
  s.m_colds <- 0;
  s.m_refactors <- 0;
  s.m_eta_max <- 0;
  let go_cold () =
    s.m_colds <- s.m_colds + 1;
    s.m_warm <- false;
    s.m_reused <- 0;
    cold_solve t
  in
  let result =
    try
      if not t.have_basis then cold_solve t
      else begin
        let warm_result =
          match
            ensure_ready t;
            if primal_feasible t then begin
              s.m_warm <- true;
              s.m_reused <- count_reused t;
              match primal t ~cost:t.cost ~phase1:false with
              | None -> Some `Unbounded
              | Some obj -> Some (`Optimal obj)
            end
            else if t.have_opt then begin
              s.m_warm <- true;
              s.m_reused <- count_reused t;
              if dual_simplex t && primal_feasible t then begin
                match primal t ~cost:t.cost ~phase1:false with
                | None -> Some `Unbounded
                | Some obj -> Some (`Optimal obj)
              end
              else None
            end
            else None
          with
          | r -> r
          | exception Numerical_trouble -> None
          | exception Iteration_limit -> None
        in
        match warm_result with
        | Some (`Optimal obj) when residuals_ok t -> `Optimal obj
        | Some (`Optimal _) -> go_cold ()
        | Some `Unbounded -> `Unbounded
        | None -> go_cold ()
      end
    with Iteration_limit | Numerical_trouble ->
      (* the cold path gave up: leave nothing half-built behind, the
         next solve must start from scratch *)
      t.have_basis <- false;
      t.have_opt <- false;
      t.factor <- None;
      raise Iteration_limit
  in
  (match result with
  | `Optimal _ ->
    t.have_opt <- true;
    t.opt_cost <- Array.sub t.cost 0 (num_cols t);
    t.opt_ncols <- num_cols t
  | `Unbounded | `Infeasible ->
    t.have_opt <- false;
    t.have_basis <- false;
    t.factor <- None);
  result

let last_stats t =
  {
    pivots = t.stats.m_pivots;
    warm = t.stats.m_warm;
    reused_basis = t.stats.m_reused;
    cold_restarts = t.stats.m_colds;
    refactors = t.stats.m_refactors;
    eta_len = t.stats.m_eta_max;
  }

let row_duals t =
  if t.have_basis && t.have_opt then begin
    ensure_ready t;
    dual_y t t.cost
  end
  else Array.make (num_rows t) 0.0

let reduced_costs t =
  if not (t.have_basis && t.have_opt) then Array.make (num_cols t) 0.0
  else begin
    ensure_ready t;
    let y = dual_y t t.cost in
    Array.init (num_cols t) (fun j ->
        if t.in_basis.(j) >= 0 then 0.0 else t.cost.(j) -. col_dot t j y)
  end

let dual_feasible t =
  if not (t.have_basis && t.have_opt) then true
  else begin
    ensure_ready t;
    let cost_of j =
      if j < Array.length t.opt_cost then t.opt_cost.(j) else 0.0
    in
    let full_cost = Array.init (num_cols t) cost_of in
    let y = dual_y t full_cost in
    let ok = ref true in
    for j = 0 to min t.opt_ncols (num_cols t) - 1 do
      if (not t.dead.(j)) && t.in_basis.(j) < 0 && t.kind.(j) <> Artificial
      then begin
        let d = cost_of j -. col_dot t j y in
        if t.at_upper.(j) then begin
          if d > 1e-6 then ok := false
        end
        else if d < -1e-6 then ok := false
      end
    done;
    !ok
  end

let solve_tableau ?ub ~num_vars ~objective constrs =
  let t = create () in
  for v = 0 to num_vars - 1 do
    let u =
      match ub with Some a when v < Array.length a -> a.(v) | _ -> infinity
    in
    ignore (add_col ~ub:u t)
  done;
  List.iter (fun c -> ignore (add_row t c.row c.relation c.rhs)) constrs;
  set_objective t objective;
  let outcome =
    match reoptimize t with
    | `Optimal objective ->
      Optimal { objective; solution = Array.init num_vars (value t) }
    | `Unbounded -> Unbounded
    | `Infeasible -> Infeasible
  in
  (outcome, last_stats t, t)

let solve_counted ?ub ~num_vars ~objective constrs =
  let outcome, stats, _ = solve_tableau ?ub ~num_vars ~objective constrs in
  (outcome, stats)

let solve ?ub ~num_vars ~objective constrs =
  fst (solve_counted ?ub ~num_vars ~objective constrs)
