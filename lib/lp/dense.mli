(** Two-phase dense primal simplex — the seed reference engine.

    Solves [minimize c.x  subject to  A x (<=|>=|=) b,  x >= 0] exactly in
    floating point with a dense [m x (n+1)] tableau and Bland's
    anti-cycling rule.  Kept as the oracle the sparse revised simplex in
    {!Simplex} is equivalence-tested against, and selectable per problem
    via [Problem.set_engine]. *)

val solve :
  num_vars:int ->
  objective:(int * float) list ->
  Simplex.constr list ->
  Simplex.outcome
(** Same contract as {!Simplex.solve}. *)

val solve_counted :
  num_vars:int ->
  objective:(int * float) list ->
  Simplex.constr list ->
  Simplex.outcome * int
(** [solve] plus the number of pivot operations performed. *)
