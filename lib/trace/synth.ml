(* Deterministic synthetic stress logs for extraction benchmarks.

   The generator targets the workload shape window extraction is
   sensitive to, at a scale (1M+ events) no corpus app reaches:
   - many addresses x many threads, with a hot subset of addresses
     absorbing most accesses — so some locations cap out while the long
     tail stays under the cap;
   - cross-thread read/write mixes on each address, so most neighbouring
     access pairs conflict and fall within [near] of each other;
   - a coarse clock plus contended same-address bursts, so distinct
     candidate pairs share span endpoints (the span-cache workload);
   - method Begin/End frames per thread (some left open) exercising the
     open-frame acquire rule, and occasional injected delays exercising
     the refinement path.

   Everything derives from one splitmix64 stream, so the same parameters
   always produce the same log — bench runs are reproducible and the
   parallel-vs-sequential identity checks compare meaningful output. *)

let log ?(seed = 1) ~addrs ~threads ~events () =
  if addrs <= 0 || threads <= 0 || events < 0 then
    invalid_arg "Synth.log: addrs, threads must be positive";
  let rng = Sherlock_util.Rng.create seed in
  let rint = Sherlock_util.Rng.int rng in
  (* Static ops are interned once: a read/write pair per field (16 fields
     per class) and a few methods per thread's class.  The last 1/8 of
     the addresses *alias* the first fields — array-element style: one
     static op accessed at several addresses — so the global per-pair cap
     budget genuinely spans addresses (and, under sharded extraction,
     chunk boundaries) without dominating the workload. *)
  let nfields = max 1 (addrs - (addrs / 8)) in
  let fld a = a mod nfields in
  let read_ops =
    Array.init nfields (fun f ->
        Opid.read ~cls:(Printf.sprintf "C%d" (f / 16)) (Printf.sprintf "f%d" (f mod 16)))
  in
  let write_ops =
    Array.init nfields (fun f ->
        Opid.write ~cls:(Printf.sprintf "C%d" (f / 16)) (Printf.sprintf "f%d" (f mod 16)))
  in
  let frame_ops =
    Array.init 32 (fun m ->
        Opid.enter ~cls:(Printf.sprintf "C%d" (m / 4)) (Printf.sprintf "m%d" (m mod 4)))
  in
  let hot = max 1 (addrs / 16) in
  let builder = Log.Builder.create () in
  let time = ref 0 in
  let last_addr = ref 0 in
  let stacks = Array.make threads [] in
  for _ = 1 to events do
    (* Coarse clock: ~3/4 of steps reuse the previous timestamp, so
       events arrive in bursts sharing span endpoints — the repeated
       (tid, lo, hi) queries the span cache exists to absorb. *)
    (if rint 4 = 0 then time := !time + 1 + rint 8);
    let tid = rint threads in
    let r = rint 100 in
    if r < 3 && List.length stacks.(tid) < 4 then begin
      let op = frame_ops.(rint (Array.length frame_ops)) in
      stacks.(tid) <- op :: stacks.(tid);
      Log.Builder.add builder
        (Event.make ~time:!time ~tid ~op ~target:(1 + tid) ())
    end
    else
      match (r < 6, stacks.(tid)) with
      | true, op :: rest ->
        stacks.(tid) <- rest;
        Log.Builder.add builder
          (Event.make ~time:!time ~tid ~op:(Opid.counterpart op) ~target:(1 + tid) ())
      | _ ->
        (* Contended bursts: half the accesses revisit the previous
           address, so several threads touch one location inside a single
           clock tick.  Each such same-timestamp group makes every pair
           sharing its first access recompute one acquire span — the
           repeated (tid, lo, hi) query the span cache absorbs. *)
        let addr =
          if rint 100 < 50 then !last_addr
          else if rint 100 < 80 then rint hot
          else rint addrs
        in
        last_addr := addr;
        let f = fld addr in
        let op = if rint 100 < 40 then write_ops.(f) else read_ops.(f) in
        let delayed_by = if rint 2_000 = 0 then 50 + rint 200 else 0 in
        Log.Builder.add builder
          (Event.make ~time:!time ~tid ~op ~target:(1000 + addr) ~delayed_by ())
  done;
  (* Frames still open stay open: frame_spans treats them as blocked
     forever, which is exactly the acquire-candidate case to stress. *)
  Log.Builder.finish builder ~duration:(!time + 1) ~threads
    ~volatile_addrs:(Hashtbl.create 1)
