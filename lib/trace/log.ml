type t = {
  events : Event.t array;
  duration : int;
  threads : int;
  volatile_addrs : (int, unit) Hashtbl.t;
}

let create ~events ~duration ~threads ~volatile_addrs =
  let arr = Array.of_list events in
  (* The simulator emits events as threads execute, which is not globally
     time-sorted (thread-local clocks drift); analyses want time order. *)
  let stable = Array.mapi (fun i e -> (i, e)) arr in
  Array.sort
    (fun (i, (a : Event.t)) (j, b) ->
      match Int.compare a.time b.time with 0 -> Int.compare i j | c -> c)
    stable;
  { events = Array.map snd stable; duration; threads; volatile_addrs }

let empty =
  { events = [||]; duration = 0; threads = 0; volatile_addrs = Hashtbl.create 1 }

let length t = Array.length t.events

let iter f t = Array.iter f t.events

let events_of_thread t tid =
  Array.to_list t.events |> List.filter (fun (e : Event.t) -> e.tid = tid)

let between t ~lo ~hi =
  Array.to_list t.events
  |> List.filter (fun (e : Event.t) -> e.time >= lo && e.time <= hi)

let thread_active_in t ~tid ~lo ~hi =
  Array.exists (fun (e : Event.t) -> e.tid = tid && e.time >= lo && e.time <= hi) t.events

let pp ppf t =
  Format.fprintf ppf "log: %d events, %dus, %d threads@." (Array.length t.events)
    t.duration t.threads;
  Array.iter (fun e -> Format.fprintf ppf "%a@." Event.pp e) t.events
