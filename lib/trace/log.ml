type t = {
  events : Event.t array;
  duration : int;
  threads : int;
  volatile_addrs : (int, unit) Hashtbl.t;
  index : Index.t;
}

(* The simulator emits events as threads execute, which is not globally
   time-sorted (thread-local clocks drift); analyses want time order.
   [arr] is taken by ownership and sorted in place. *)
let of_unsorted_array arr ~duration ~threads ~volatile_addrs =
  let stable = Array.mapi (fun i e -> (i, e)) arr in
  Array.sort
    (fun (i, (a : Event.t)) (j, b) ->
      match Int.compare a.time b.time with 0 -> Int.compare i j | c -> c)
    stable;
  let events = Array.map snd stable in
  { events; duration; threads; volatile_addrs; index = Index.build events }

let create ~events ~duration ~threads ~volatile_addrs =
  of_unsorted_array (Array.of_list events) ~duration ~threads ~volatile_addrs

(* Deserializers hand back the event array in the order it was written —
   the binary format stores the time-sorted array verbatim — so the sort
   is redundant there.  The claim is verified in one linear pass; if a
   hand-edited or corrupt file breaks it, we fall back to sorting rather
   than hand the analyses an out-of-order log.  [arr] is taken by
   ownership either way. *)
let of_sorted_array arr ~duration ~threads ~volatile_addrs =
  let sorted = ref true in
  for i = 1 to Array.length arr - 1 do
    if (Array.unsafe_get arr (i - 1)).Event.time > (Array.unsafe_get arr i).Event.time
    then sorted := false
  done;
  if not !sorted then of_unsorted_array arr ~duration ~threads ~volatile_addrs
  else { events = arr; duration; threads; volatile_addrs; index = Index.build arr }

(* A fresh value every call: the volatile-address table is mutable, so a
   shared [empty] would leak one caller's mutations into another's log. *)
let empty () =
  {
    events = [||];
    duration = 0;
    threads = 0;
    volatile_addrs = Hashtbl.create 1;
    index = Index.build [||];
  }

module Builder = struct
  type t = {
    mutable buf : Event.t array;
    mutable len : int;
  }

  let dummy = Event.make ~time:0 ~tid:0 ~op:(Opid.read ~cls:"" "") ()

  let create () = { buf = Array.make 256 dummy; len = 0 }

  let length b = b.len

  let add b e =
    if b.len = Array.length b.buf then begin
      let bigger = Array.make (2 * b.len) dummy in
      Array.blit b.buf 0 bigger 0 b.len;
      b.buf <- bigger
    end;
    b.buf.(b.len) <- e;
    b.len <- b.len + 1

  let finish b ~duration ~threads ~volatile_addrs =
    of_unsorted_array (Array.sub b.buf 0 b.len) ~duration ~threads
      ~volatile_addrs
end

let length t = Array.length t.events

let iter f t = Array.iter f t.events

let index t = t.index

let events_of_thread t tid =
  let pt = Index.thread t.index tid in
  List.map (fun i -> t.events.(i)) (Array.to_list pt.positions)

(* First position with [time >= lo] in the global (time-sorted) array. *)
let first_at_or_after t lo =
  let n = Array.length t.events in
  let rec go a b =
    if a >= b then a
    else
      let mid = (a + b) / 2 in
      if t.events.(mid).time < lo then go (mid + 1) b else go a mid
  in
  go 0 n

let between t ~lo ~hi =
  let n = Array.length t.events in
  let rec collect k =
    if k < n && t.events.(k).time <= hi then t.events.(k) :: collect (k + 1)
    else []
  in
  collect (first_at_or_after t lo)

let thread_active_in t ~tid ~lo ~hi =
  let pt = Index.thread t.index tid in
  let i = Index.lower_bound pt.times lo in
  i < Array.length pt.times && pt.times.(i) <= hi

let fold_thread_in t ~tid ~lo ~hi ~init ~f =
  Index.fold_thread_in t.index t.events ~tid ~lo ~hi ~init ~f

let progress_count t ~tid ~lo ~hi = Index.progress_count t.index ~tid ~lo ~hi

let first_delayed_in t ~tid ~lo ~hi =
  Index.first_delayed_in t.index t.events ~tid ~lo ~hi

let has_delayed_in t ~tid ~lo ~hi = Index.has_delayed_in t.index ~tid ~lo ~hi

let distinct_addrs t = Index.distinct_addrs t.index

let accesses_of_addr t addr = Index.accesses_of_addr t.index addr

let iter_addr_accesses t f = Index.iter_addr_accesses t.index f

let addrs_in_order t = Index.addrs_in_order t.index

let pp ppf t =
  Format.fprintf ppf "log: %d events, %dus, %d threads@." (Array.length t.events)
    t.duration t.threads;
  Array.iter (fun e -> Format.fprintf ppf "%a@." Event.pp e) t.events
