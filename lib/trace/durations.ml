type t = { samples : (string, float list ref) Hashtbl.t }

let create () = { samples = Hashtbl.create 64 }

let add t key d =
  match Hashtbl.find_opt t.samples key with
  | Some r -> r := d :: !r
  | None -> Hashtbl.add t.samples key (ref [ d ])

let samples_of_log log =
  (* Per-thread stacks of open frames; an End pops the nearest matching
     Begin, skipping mismatches defensively (a filtered-out frame can leave
     an unmatched Begin behind).  Frames containing an injected Perturber
     delay are excluded: the artificial 100 ms would swamp the method's
     natural duration variation.  The delay test is a binary search over
     the log's delayed-event index. *)
  let contains_delay tid t0 t1 =
    t1 > t0 && Log.has_delayed_in log ~tid ~lo:(t0 + 1) ~hi:t1
  in
  let stacks : (int, (string * int) list ref) Hashtbl.t = Hashtbl.create 16 in
  let stack tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.add stacks tid s;
      s
  in
  let out = ref [] in
  Log.iter
    (fun (e : Event.t) ->
      match e.op.kind with
      | Opid.Begin ->
        let s = stack e.tid in
        s := (Opid.method_key e.op, e.time) :: !s
      | Opid.End ->
        let key = Opid.method_key e.op in
        let s = stack e.tid in
        let rec pop acc = function
          | [] -> None
          | (k, t0) :: rest when k = key -> Some (t0, List.rev_append acc rest)
          | frame :: rest -> pop (frame :: acc) rest
        in
        (match pop [] !s with
        | Some (t0, rest) ->
          s := rest;
          if not (contains_delay e.tid t0 e.time) then
            out := (key, float_of_int (e.time - t0)) :: !out
        | None -> ())
      | Opid.Read | Opid.Write -> ())
    log;
  List.rev !out

let add_samples t pairs = List.iter (fun (key, d) -> add t key d) pairs

let record_log t log = add_samples t (samples_of_log log)

let samples t key =
  match Hashtbl.find_opt t.samples key with Some r -> !r | None -> []

let cv t key = Sherlock_util.Stats.coefficient_of_variation (samples t key)

let methods t = Hashtbl.fold (fun k _ acc -> k :: acc) t.samples []

let cv_percentile t key =
  let all = List.map (fun k -> cv t k) (methods t) in
  Sherlock_util.Stats.percentile_rank all (cv t key)
