type t = { samples : (string, float list ref) Hashtbl.t }

let create () = { samples = Hashtbl.create 64 }

let add t key d =
  match Hashtbl.find_opt t.samples key with
  | Some r -> r := d :: !r
  | None -> Hashtbl.add t.samples key (ref [ d ])

let record_log t log =
  (* Per-thread stacks of open frames; an End pops the nearest matching
     Begin, skipping mismatches defensively (a filtered-out frame can leave
     an unmatched Begin behind).  Frames containing an injected Perturber
     delay are excluded: the artificial 100 ms would swamp the method's
     natural duration variation. *)
  let delayed : (int, int list ref) Hashtbl.t = Hashtbl.create 16 in
  Log.iter
    (fun (e : Event.t) ->
      if e.delayed_by > 0 then
        match Hashtbl.find_opt delayed e.tid with
        | Some r -> r := e.time :: !r
        | None -> Hashtbl.add delayed e.tid (ref [ e.time ]))
    log;
  let contains_delay tid t0 t1 =
    match Hashtbl.find_opt delayed tid with
    | None -> false
    | Some r -> List.exists (fun t -> t > t0 && t <= t1) !r
  in
  let stacks : (int, (string * int) list ref) Hashtbl.t = Hashtbl.create 16 in
  let stack tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.add stacks tid s;
      s
  in
  Log.iter
    (fun (e : Event.t) ->
      match e.op.kind with
      | Opid.Begin ->
        let s = stack e.tid in
        s := (Opid.method_key e.op, e.time) :: !s
      | Opid.End ->
        let key = Opid.method_key e.op in
        let s = stack e.tid in
        let rec pop acc = function
          | [] -> None
          | (k, t0) :: rest when k = key -> Some (t0, List.rev_append acc rest)
          | frame :: rest -> pop (frame :: acc) rest
        in
        (match pop [] !s with
        | Some (t0, rest) ->
          s := rest;
          if not (contains_delay e.tid t0 e.time) then
            add t key (float_of_int (e.time - t0))
        | None -> ())
      | Opid.Read | Opid.Write -> ())
    log

let samples t key =
  match Hashtbl.find_opt t.samples key with Some r -> !r | None -> []

let cv t key = Sherlock_util.Stats.coefficient_of_variation (samples t key)

let methods t = Hashtbl.fold (fun k _ acc -> k :: acc) t.samples []

let cv_percentile t key =
  let all = List.map (fun k -> cv t k) (methods t) in
  Sherlock_util.Stats.percentile_rank all (cv t key)
