(** The binary trace format: framed, columnar, zero-copy.

    A file is [magic "SHLKTRC\x01"], a fixed header, an interned
    operation table (each distinct {!Opid.t} appears once; events refer
    to it by index), five fixed-width event columns
    (time/target/tid/op/delayed_by, stored in the log's time order), and
    a footer with duration, thread count, and the sorted volatile
    addresses.  All sections are 8-aligned and little-endian, so
    {!load} can map the file ([Unix.map_file]) and read the columns
    through naturally-aligned Bigarray views — no line parsing, no
    intermediate lists, no sort on ingest.

    Encoding is canonical: the same log always produces the same bytes.

    Most callers want {!Trace_io}, which sniffs the magic bytes and
    dispatches between this format and the text format. *)

val magic : string
(** The 8-byte frame marker (version byte last). *)

val save : Log.t -> string -> unit
(** Write [log] to [path], streaming through one reused buffer. *)

val to_string : Log.t -> string
(** The file image as a string. *)

val load : string -> Log.t
(** Map the file at [path] and rebuild the log over its columns.
    Raises [Failure "path: byte N: Trace_bin: ..."] on a malformed or
    truncated file, where [N] is the offset of the bad frame. *)

val of_string : ?path:string -> string -> Log.t
(** Decode an in-memory image; same errors as {!load}, with [path]
    (default ["<string>"]) in the message. *)
