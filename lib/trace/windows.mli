(** Acquire/release-window extraction (paper §4.1 and Figure 2).

    For every pair of *conflicting accesses* — two operations on the same
    address from different threads, at least one a write, at most [near]
    apart in virtual time — the operations executed in between form the
    release window (those from the first access's thread) and the acquire
    window (those from the second's).  The conflicting endpoints
    themselves are included in their windows, which is what lets a flag
    write/read pair be inferred as its own release/acquire.  A blocking
    acquire is *invoked* before the release it waits for, so the acquire
    window additionally contains the [Begin] of every method frame of the
    second thread that was already open when the window starts.

    The extraction also performs the two feedback duties of §3/§4.3:
    - window refinement from injected delays (Figure 2 b/c): if a delay
      before a release candidate [r] failed to stall the other thread, the
      release window shrinks to the ops before the delay; if it stalled
      it, the acquire window shrinks to the ops after [r];
    - observed-data-race detection: a window whose release side contains
      only reads (or is empty), or whose acquire side contains only writes
      (or is empty), cannot be protected and is reported as a race. *)

type side = int Opid.Map.t
(** Candidate operations on one side of a window, with their number of
    dynamic occurrences inside this window. *)

type coord = {
  first_time : int;   (** virtual time of the first conflicting access *)
  first_tid : int;
  second_time : int;  (** virtual time of the second conflicting access *)
  second_tid : int;
}
(** Trace coordinates of the conflicting-access pair that opened the
    window.  Times and thread ids are preserved exactly by both the text
    and the binary trace formats, so a coordinate identifies the same
    window no matter which on-disk representation the run came from —
    the stable identity provenance records. *)

type t = {
  pair : Opid.t * Opid.t;  (** static ids of the conflicting accesses, first-then-second *)
  field : string;          (** field key of the conflicting variable *)
  rel : side;
  acq : side;
  coord : coord;           (** where in the trace this window was observed *)
}

type race = {
  race_pair : Opid.t * Opid.t;
  race_field : string;
}

val default_near : int
(** 1 second of virtual time (1_000_000 us), the paper's default. *)

val default_cap : int
(** 15 windows per static location pair, the paper's bound. *)

val extract :
  ?near:int -> ?cap:int -> ?refine:bool -> ?metrics:Metrics.t ->
  ?jobs:int -> ?pool:Sherlock_util.Pool.t -> Log.t ->
  t list * race list
(** [extract log] returns the windows and the observed races of one run.
    [refine] (default true) applies delay-based window refinement.
    [metrics], when given, is bumped in place with the events/pairs/
    windows/races counters and the extraction wall-clock.

    All span, progress, and delay queries resolve by binary search over
    the log's construction-time indices ({!Log.fold_thread_in},
    {!Log.progress_count}, {!Log.first_delayed_in},
    {!Log.iter_addr_accesses}), making extraction
    O(events log events + pairs x window size) instead of the naive
    O(pairs x events) full rescans.

    [jobs] (default 1) shards the per-address candidate scan across that
    many domains: contiguous chunks of the canonical address order are
    analyzed in parallel with chunk-local cap counters, and a
    deterministic merge replays the chunk outputs in canonical order
    against the real global per-pair caps — windows, races, cap
    decisions, and all {!Metrics.t} counters are identical to [jobs = 1]
    (only the wall-clock field differs).  [jobs] is taken literally (not
    clamped to cores): callers decide how many domains the host can
    absorb.  [pool], when given, supplies the worker domains; it must
    not be running another batch (see {!Sherlock_util.Pool} — in
    particular, do not pass a pool from inside one of its own batch
    thunks).  Without [pool] a private pool is spawned and retired
    around the call. *)
