(** Deterministic synthetic stress logs for extraction benchmarks.

    Parameterized generator of large many-address x many-thread traces
    with conflicting cross-thread access pairs inside the default [near]
    window, hot/cold address skew (so per-pair caps actually trigger),
    shared timestamps (span-cache hits), method frames (some left open),
    and occasional injected delays (refinement path).  Same parameters
    and seed always yield the same log; nothing is written to disk —
    bench targets build their million-event inputs on the fly. *)

val log : ?seed:int -> addrs:int -> threads:int -> events:int -> unit -> Log.t
(** [log ~addrs ~threads ~events ()] generates an indexed log of
    [events] events over [addrs] traced addresses and [threads] threads
    (plus Begin/End frame events drawn from the same budget).  [seed]
    defaults to 1.  Raises [Invalid_argument] on non-positive [addrs] or
    [threads]. *)
