(** Query indices over a log's time-sorted event array, built once at
    construction time (see {!Log}).

    Three structures back all span/progress/delay queries of the
    analyses:
    - a per-thread index: each thread's event offsets and times in
      ascending order, with a prefix count of its non-[Read] ("progress")
      events — binary search turns "events of thread [t] in [lo, hi]" and
      "did [t] progress inside [lo, hi]" into O(log n) lookups;
    - a per-address access index: the [Read]/[Write] events of each
      traced address in time order, in address first-seen order;
    - a per-thread delayed-event index: offsets of events carrying an
      injected delay, so "first delayed event in a window" is a binary
      search instead of a scan. *)

type per_thread = {
  positions : int array;  (** offsets into the event array, ascending *)
  times : int array;      (** times.(i) = time of positions.(i), non-decreasing *)
  progress : int array;
      (** prefix counts: progress.(i) = number of non-[Read] events among
          the thread's first [i] events; length = #events + 1 *)
  delayed_positions : int array;  (** offsets of events with [delayed_by > 0] *)
  delayed_times : int array;
}

type t

val build : Event.t array -> t
(** [build events] indexes a time-sorted event array.  Dispatches to a
    dense array-counter build when tids and access targets are small
    non-negative ints (the simulator's id allocator guarantees this), and
    to a generic hashtable build otherwise. *)

val build_dense : Event.t array -> max_tid:int -> max_addr:int -> t
(** The dense build directly, for callers that already scanned the
    array: every [tid] must lie in [0, max_tid] and every access target
    in [0, max_addr] — violations are undefined behaviour (the build
    indexes plain arrays with those bounds, unchecked).  Use {!build}
    unless the bounds are certain. *)

(** Incremental dense build for deserializers: call {!Dense_builder.note}
    once per event from inside the decode loop (in event order), then
    {!Dense_builder.finish} on the decoded array.  This folds the
    counting pass of {!build} into the decode loop, leaving only the
    fill pass — one full scan of the record array less.  [finish]
    returns [None] when the events fall outside the dense-id regime
    (caller falls back to {!build}). *)
module Dense_builder : sig
  type index := t

  type t

  val create : events:int -> t
  (** [events] is the total event count (known from the frame header);
      it bounds the dense-id range exactly as {!build}'s dispatch does. *)

  val note : t -> tid:int -> target:int -> delayed:bool -> is_access:bool -> unit
  (** Must be called once per event, in array order, with that event's
      fields. *)

  val finish : t -> Event.t array -> index option
  (** [events] must be the array whose elements were [note]d, in the
      same order. *)
end

val lower_bound : int array -> int -> int
(** First index whose value is [>= v] (array length if none). *)

val upper_bound : int array -> int -> int
(** First index whose value is [> v]. *)

val thread : t -> int -> per_thread
(** The per-thread index of [tid]; an empty index for unknown threads. *)

val thread_event_count : t -> int -> int

val fold_thread_in :
  t -> Event.t array -> tid:int -> lo:int -> hi:int -> init:'a ->
  f:('a -> Event.t -> 'a) -> 'a
(** Fold over the events of [tid] with [lo <= time <= hi], in time order
    (ties in emission order).  [events] must be the array the index was
    built from. *)

val progress_count : t -> tid:int -> lo:int -> hi:int -> int
(** Number of non-[Read] events of [tid] with [lo <= time <= hi] — the
    "did the thread make progress" primitive of window refinement.
    Strict bounds are expressed by the caller as [lo+1] / [hi-1]. *)

val first_delayed_in :
  t -> Event.t array -> tid:int -> lo:int -> hi:int -> Event.t option
(** First-in-time delayed event of [tid] with [lo <= time <= hi]. *)

val has_delayed_in : t -> tid:int -> lo:int -> hi:int -> bool

val distinct_addrs : t -> int
(** Number of distinct traced addresses. *)

val accesses_of_addr : t -> int -> Event.t array
(** Access events on one address in time order ([[||]] if never touched). *)

val iter_addr_accesses : t -> (int -> Event.t array -> unit) -> unit
(** Iterate per-address access arrays in address first-seen order —
    deterministic across rebuilds of the same log. *)

val addrs_in_order : t -> int array
(** The canonical address order {!iter_addr_accesses} walks (address
    first-seen order).  Owned by the index: callers must not mutate. *)
