(** Method-duration accounting for the Acquisition-Time-Mostly-Varies
    hypothesis (paper §2, Equation 5).

    Durations are recovered from the trace by pairing each method-exit
    event with the nearest unmatched entry of the same method on the same
    thread; the duration includes any time the method spent blocked, which
    is exactly why contended acquires show high variation. *)

type t

val create : unit -> t

val record_log : t -> Log.t -> unit
(** Fold one run's trace into the accumulated per-method samples.
    Observations accumulate across runs (paper §4.3).  Equivalent to
    [add_samples t (samples_of_log log)]. *)

val samples_of_log : Log.t -> (string * float) list
(** The per-method duration samples of one trace, in completion order.
    Pure with respect to the accumulator, so sample recovery can run on a
    worker domain while the merge into [t] stays sequential. *)

val add_samples : t -> (string * float) list -> unit

val samples : t -> string -> float list
(** Duration samples (microseconds) for a method key
    (see {!Opid.method_key}). *)

val cv : t -> string -> float
(** Coefficient of variation of the method's durations; 0 if unseen. *)

val cv_percentile : t -> string -> float
(** Percentile rank of this method's CV among all methods seen, in
    [\[0,1\]] — the paper's [percentile(CV(duration(m)))]. *)

val methods : t -> string list
(** All method keys with at least one complete sample. *)
