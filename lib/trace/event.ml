type t = {
  time : int;
  tid : int;
  op : Opid.t;
  target : int;
  delayed_by : int;
}

let make ~time ~tid ~op ?(target = 0) ?(delayed_by = 0) () =
  { time; tid; op; target; delayed_by }

let pp ppf e =
  Format.fprintf ppf "@[%8dus t%-3d %a target=%d%s@]" e.time e.tid Opid.pp e.op e.target
    (if e.delayed_by > 0 then Printf.sprintf " (delayed %dus)" e.delayed_by else "")
