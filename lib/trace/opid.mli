(** Static operation identities.

    SherLock identifies every synchronization candidate by the
    fully-qualified *static* name of the operation — [Class::member]
    plus whether the operation is a field read, a field write, a method
    entry, or a method exit (paper §4.2: all dynamic instances of an
    operation share one inference variable).  This module is that
    identity. *)

type kind =
  | Read   (** read of a heap field *)
  | Write  (** write to a heap field *)
  | Begin  (** method entry (application method) or call-site entry (API) *)
  | End    (** method exit or call-site return *)

type t = {
  cls : string;     (** fully-qualified class name, C#-style *)
  member : string;  (** field or method name *)
  kind : kind;
}

val check_name : string -> unit
(** Raises [Invalid_argument] if the name contains whitespace or control
    characters — names like that would corrupt the space-delimited trace
    format.  Applied by every constructor below; exposed so serializers
    can re-check names of records built by hand (the type is concrete). *)

val read : cls:string -> string -> t
val write : cls:string -> string -> t
val enter : cls:string -> string -> t
val exit : cls:string -> string -> t
(** All four constructors raise [Invalid_argument] if [cls] or the member
    name contains whitespace or a control character (see {!check_name}). *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val is_access : t -> bool
(** [Read] or [Write]. *)

val is_frame : t -> bool
(** [Begin] or [End]. *)

val is_system : t -> bool
(** Heuristic used for the Single-Role constraint: operations of
    [System.*] and [Microsoft.*] classes are library APIs. *)

val method_key : t -> string
(** ["Class::member"], ignoring the kind — the identity under which
    method durations are aggregated. *)

val field_key : t -> string
(** Same rendering, used as the identity of a field. *)

val counterpart : t -> t
(** The paired op: read<->write for fields, begin<->end for methods. *)

val kind_name : kind -> string

val to_string : t -> string
(** E.g. ["System.Threading.Monitor::Enter-Begin"] or
    ["Write-k8s.ByteBuffer::endOfFile"], following the paper's Tables 8/9
    conventions. *)

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
