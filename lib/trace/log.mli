(** An execution trace: the ordered event stream of one simulated run plus
    the metadata the analyses need (volatile-field registry for the
    manually-annotated race detector, wall-clock span, thread count). *)

type t = {
  events : Event.t array;     (** sorted by [time], ties broken by emission order *)
  duration : int;             (** virtual end time of the run, microseconds *)
  threads : int;              (** number of threads that ran *)
  volatile_addrs : (int, unit) Hashtbl.t;
      (** addresses of fields declared volatile in the program under test.
          SherLock never reads this; only the Manual_dr annotation-based
          race detector does (paper §5.4). *)
}

val create : events:Event.t list -> duration:int -> threads:int ->
  volatile_addrs:(int, unit) Hashtbl.t -> t
(** Sorts the events by timestamp (stably). *)

val empty : t

val length : t -> int

val iter : (Event.t -> unit) -> t -> unit

val events_of_thread : t -> int -> Event.t list
(** Events of one thread in time order. *)

val between : t -> lo:int -> hi:int -> Event.t list
(** Events with [lo <= time <= hi], in time order. *)

val thread_active_in : t -> tid:int -> lo:int -> hi:int -> bool
(** Whether thread [tid] completed any operation in the window —
    the delay-propagation test of paper §3 (Figure 2 b/c). *)

val pp : Format.formatter -> t -> unit
(** Full dump, for debugging. *)
