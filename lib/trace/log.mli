(** An execution trace: the ordered event stream of one simulated run plus
    the metadata the analyses need (volatile-field registry for the
    manually-annotated race detector, wall-clock span, thread count).

    The store is indexed at construction time (see {!Index}): per-thread
    offsets with progress prefix counts, per-address access arrays, and
    per-thread delayed-event offsets.  All span/progress/delay queries the
    analyses issue resolve by binary search over these indices instead of
    rescanning the event array. *)

type t = {
  events : Event.t array;     (** sorted by [time], ties broken by emission order *)
  duration : int;             (** virtual end time of the run, microseconds *)
  threads : int;              (** number of threads that ran *)
  volatile_addrs : (int, unit) Hashtbl.t;
      (** addresses of fields declared volatile in the program under test.
          SherLock never reads this; only the Manual_dr annotation-based
          race detector does (paper §5.4). *)
  index : Index.t;            (** query indices, built by [create]/[Builder.finish] *)
}

val create : events:Event.t list -> duration:int -> threads:int ->
  volatile_addrs:(int, unit) Hashtbl.t -> t
(** Sorts the events by timestamp (stably) and builds the indices. *)

val of_sorted_array : Event.t array -> duration:int -> threads:int ->
  volatile_addrs:(int, unit) Hashtbl.t -> t
(** Like {!create} for an array that is already time-sorted — the
    deserializers' path: the binary trace format stores the sorted event
    array verbatim, so only the indices need building.  Sortedness is
    verified in one pass (with a fallback sort if it does not hold), and
    the array is taken by ownership. *)

val empty : unit -> t
(** A fresh empty log.  This is a function: the embedded volatile-address
    table is mutable, so a single shared value would let one caller's
    mutation leak into every other "empty" log. *)

(** Incremental construction for the simulator's emit path: events are
    appended into a growable buffer as threads execute, and [finish]
    sorts once and builds the indexed store — no intermediate list. *)
module Builder : sig
  type log := t

  type t

  val create : unit -> t

  val add : t -> Event.t -> unit

  val length : t -> int

  val finish : t -> duration:int -> threads:int ->
    volatile_addrs:(int, unit) Hashtbl.t -> log
end

val length : t -> int

val iter : (Event.t -> unit) -> t -> unit

val index : t -> Index.t

val events_of_thread : t -> int -> Event.t list
(** Events of one thread in time order. *)

val between : t -> lo:int -> hi:int -> Event.t list
(** Events with [lo <= time <= hi], in time order. *)

val thread_active_in : t -> tid:int -> lo:int -> hi:int -> bool
(** Whether thread [tid] completed any operation in the window —
    the delay-propagation test of paper §3 (Figure 2 b/c). *)

val fold_thread_in :
  t -> tid:int -> lo:int -> hi:int -> init:'a -> f:('a -> Event.t -> 'a) -> 'a
(** Fold over the events of [tid] with [lo <= time <= hi] in time order. *)

val progress_count : t -> tid:int -> lo:int -> hi:int -> int
(** Number of non-[Read] events of [tid] with [lo <= time <= hi]; reads
    are excluded because a spin-waiting thread still reads (paper §3). *)

val first_delayed_in : t -> tid:int -> lo:int -> hi:int -> Event.t option
(** First-in-time event of [tid] carrying an injected delay with
    [lo <= time <= hi]. *)

val has_delayed_in : t -> tid:int -> lo:int -> hi:int -> bool

val distinct_addrs : t -> int
(** Number of distinct traced addresses (size hint for per-address state,
    e.g. the race detector's variable table). *)

val accesses_of_addr : t -> int -> Event.t array
(** The access events on one address, in time order. *)

val iter_addr_accesses : t -> (int -> Event.t array -> unit) -> unit
(** Iterate per-address access arrays in address first-seen order. *)

val addrs_in_order : t -> int array
(** The canonical address order {!iter_addr_accesses} walks — the unit
    of sharding for parallel window extraction.  Owned by the index:
    callers must not mutate. *)

val pp : Format.formatter -> t -> unit
(** Full dump, for debugging. *)
