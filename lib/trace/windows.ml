module Tm = Sherlock_telemetry.Metrics
module Tspan = Sherlock_telemetry.Span

type side = int Opid.Map.t

type coord = {
  first_time : int;
  first_tid : int;
  second_time : int;
  second_tid : int;
}

type t = {
  pair : Opid.t * Opid.t;
  field : string;
  rel : side;
  acq : side;
  coord : coord;
}

type race = {
  race_pair : Opid.t * Opid.t;
  race_field : string;
}

let default_near = 1_000_000

let default_cap = 15

let add_occurrence side op =
  Opid.Map.update op (function None -> Some 1 | Some n -> Some (n + 1)) side

(* Candidate ops of thread [tid] with lo <= time <= hi, resolved over the
   per-thread index. *)
let side_of_span log ~tid ~lo ~hi =
  Log.fold_thread_in log ~tid ~lo ~hi ~init:Opid.Map.empty
    ~f:(fun acc (e : Event.t) -> add_occurrence acc e.op)

let all_kinds_are side kind =
  Opid.Map.for_all (fun (op : Opid.t) _ -> op.kind = kind) side

(* Method-frame spans per thread: arrays of (begin_op, t_begin, t_end)
   sorted by [t_end], with [t_end = max_int] for frames still open at the
   end of the log (e.g. a thread blocked forever inside an acquire).
   Sorting by the end time lets [add_open_frames] binary-search away every
   frame that closed before the window starts. *)
let frame_spans (log : Log.t) =
  let stacks : (int, (Opid.t * int) list ref) Hashtbl.t = Hashtbl.create 16 in
  let spans : (int, (Opid.t * int * int) list ref) Hashtbl.t = Hashtbl.create 16 in
  let slot tbl tid =
    match Hashtbl.find_opt tbl tid with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.add tbl tid s;
      s
  in
  Log.iter
    (fun (e : Event.t) ->
      match e.op.kind with
      | Opid.Begin -> (slot stacks e.tid) := (e.op, e.time) :: !(slot stacks e.tid)
      | Opid.End ->
        let key = Opid.method_key e.op in
        let s = slot stacks e.tid in
        let rec pop acc = function
          | [] -> None
          | ((op : Opid.t), t0) :: rest when Opid.method_key op = key ->
            Some ((op, t0), List.rev_append acc rest)
          | frame :: rest -> pop (frame :: acc) rest
        in
        (match pop [] !s with
        | Some ((op, t0), rest) ->
          s := rest;
          (slot spans e.tid) := (op, t0, e.time) :: !(slot spans e.tid)
        | None -> ())
      | Opid.Read | Opid.Write -> ())
    log;
  Hashtbl.iter
    (fun tid s ->
      List.iter
        (fun (op, t0) -> (slot spans tid) := (op, t0, max_int) :: !(slot spans tid))
        !s)
    stacks;
  let sorted = Hashtbl.create 16 in
  Hashtbl.iter
    (fun tid s ->
      let arr = Array.of_list !s in
      Array.sort (fun (_, _, a) (_, _, b) -> Int.compare a b) arr;
      let ends = Array.map (fun (_, _, t1) -> t1) arr in
      Hashtbl.add sorted tid (arr, ends))
    spans;
  sorted

(* Any progress event of [tid] strictly inside (lo, hi)? *)
let progressed log ~tid ~lo ~hi =
  hi - 1 >= lo + 1 && Log.progress_count log ~tid ~lo:(lo + 1) ~hi:(hi - 1) > 0

(* A blocking acquire (Monitor.Enter, Task.Wait, ...) is *invoked* before
   the release it waits for, so its Begin event precedes the window.  The
   invocation is still in progress during the window and is a legitimate
   acquire candidate — but only if the thread has made no progress since
   the invocation (it is plausibly blocked inside it): a frame that kept
   executing cannot be waiting for a release that has not happened yet. *)
let add_open_frames log spans side ~tid ~lo =
  match Hashtbl.find_opt spans tid with
  | None -> side
  | Some (arr, ends) ->
    let acc = ref side in
    for i = Index.lower_bound ends lo to Array.length arr - 1 do
      let op, t0, _ = arr.(i) in
      if t0 < lo && not (progressed log ~tid ~lo:t0 ~hi:lo) then
        acc := add_occurrence !acc op
    done;
    !acc

(* First delayed event of [tid] inside [lo, hi], if any: a binary search
   over the delayed-event index — early exit, where the seed folded over
   the whole event array even after a match. *)
let first_delay log ~tid ~lo ~hi = Log.first_delayed_in log ~tid ~lo ~hi

let extract ?(near = default_near) ?(cap = default_cap) ?(refine = true)
    ?metrics (log : Log.t) =
 Tspan.with_span ~name:"windows.extract" @@ fun () ->
  let t_start = Unix.gettimeofday () in
  (* Telemetry histograms are resolved once per extraction and only when
     telemetry is on, so the per-pair hot path pays a single branch. *)
  let tm_on = Tm.enabled () in
  let h_window_dur = if tm_on then Some (Tm.histogram "windows.duration_us") else None in
  let h_pairs_per_loc =
    if tm_on then Some (Tm.histogram "windows.pairs_per_location") else None
  in
  let spans = frame_spans log in
  let windows = ref [] in
  let races = ref [] in
  let nwindows = ref 0 and nraces = ref 0 in
  let considered = ref 0 and capped = ref 0 in
  let pair_counts : (Opid.t * Opid.t, int ref) Hashtbl.t = Hashtbl.create 64 in
  let consider (a : Event.t) (b : Event.t) =
    begin
      incr considered;
      let acq_side ~lo ~hi =
        add_open_frames log spans
          (side_of_span log ~tid:b.tid ~lo ~hi)
          ~tid:b.tid ~lo
      in
      let rel = ref (side_of_span log ~tid:a.tid ~lo:a.time ~hi:b.time) in
      let acq = ref (acq_side ~lo:a.time ~hi:b.time) in
      if refine then begin
        match first_delay log ~tid:a.tid ~lo:a.time ~hi:b.time with
        | Some r ->
          let delay_start = r.time - r.delayed_by in
          (* A spin-waiting thread is logically blocked yet still emits
             read events, so only non-read activity counts as progress. *)
          let made_progress =
            r.time - 1 >= delay_start
            && Log.progress_count log ~tid:b.tid ~lo:delay_start ~hi:(r.time - 1)
               > 0
          in
          let stalled = not made_progress in
          if stalled then
            (* Delay propagated: the acquire happened while waiting on [r],
               so it must lie between r and b (Figure 2 c). *)
            acq := acq_side ~lo:r.time ~hi:b.time
          else
            (* Delay did not propagate: this *instance* of r is not the
               release coordinating a and b (Figure 2 b).  Other dynamic
               instances of the same operation inside the window (e.g.
               later lock releases in a loop) remain candidates, so only
               one occurrence is discounted. *)
            rel :=
              Opid.Map.update r.op
                (function
                  | None | Some 1 -> None
                  | Some n -> Some (n - 1))
                !rel
        | None -> ()
      end;
      let rel = !rel and acq = !acq in
      let field = Opid.field_key a.op in
      let rel_impossible = Opid.Map.is_empty rel || all_kinds_are rel Opid.Read in
      let acq_impossible = Opid.Map.is_empty acq || all_kinds_are acq Opid.Write in
      if rel_impossible || acq_impossible then begin
        incr nraces;
        races := { race_pair = (a.op, b.op); race_field = field } :: !races
      end
      else begin
        incr nwindows;
        let coord =
          {
            first_time = a.time;
            first_tid = a.tid;
            second_time = b.time;
            second_tid = b.tid;
          }
        in
        windows := { pair = (a.op, b.op); field; rel; acq; coord } :: !windows
      end;
      match h_window_dur with
      | Some h -> Tm.Histogram.observe_int h (b.time - a.time)
      | None -> ()
    end
  in
  (* Pair enumeration.  An address sees only a handful of static ops (the
     field's read/write and property variants), so the per-static-pair cap
     counters are pulled out of the hashtable into a tiny matrix once per
     address: the O(k^2) candidate scan then tests an int ref instead of
     hashing, and bails out of the whole address as soon as every
     conflicting static pair there has reached the cap.  Enumeration order
     and cap decisions are identical to testing each candidate directly. *)
  Log.iter_addr_accesses log (fun _addr accesses ->
      let n = Array.length accesses in
      if n > 1 then begin
        let considered_before = !considered in
        let ops = ref [] in
        let nops = ref 0 in
        let opidx =
          Array.map
            (fun (e : Event.t) ->
              match
                List.find_opt (fun (o, _) -> Opid.equal o e.op) !ops
              with
              | Some (_, i) -> i
              | None ->
                let i = !nops in
                ops := (e.op, i) :: !ops;
                incr nops;
                i)
            accesses
        in
        let k = !nops in
        let by_idx = Array.make k (accesses.(0) : Event.t).op in
        List.iter (fun (o, i) -> by_idx.(i) <- o) !ops;
        let counts =
          Array.init k (fun ia ->
              Array.init k (fun ib ->
                  let key = (by_idx.(ia), by_idx.(ib)) in
                  match Hashtbl.find_opt pair_counts key with
                  | Some r -> r
                  | None ->
                    let r = ref 0 in
                    Hashtbl.add pair_counts key r;
                    r))
        in
        let conflicting =
          Array.init k (fun ia ->
              Array.init k (fun ib ->
                  by_idx.(ia).kind = Opid.Write || by_idx.(ib).kind = Opid.Write))
        in
        (* Conflicting static pairs at this address not yet at the cap. *)
        let live = ref 0 in
        for ia = 0 to k - 1 do
          for ib = 0 to k - 1 do
            if conflicting.(ia).(ib) && !(counts.(ia).(ib)) < cap then incr live
          done
        done;
        (try
           if !live = 0 then raise Exit;
           for i = 0 to n - 1 do
             let a = accesses.(i) in
             let ia = opidx.(i) in
             let j = ref (i + 1) in
             while !j < n && (accesses.(!j) : Event.t).time - a.time <= near do
               let b = accesses.(!j) in
               let ib = opidx.(!j) in
               if a.tid <> b.tid && conflicting.(ia).(ib) then begin
                 let c = counts.(ia).(ib) in
                 if !c < cap then begin
                   incr c;
                   if !c = cap then begin
                     incr capped;
                     decr live
                   end;
                   consider a b;
                   if !live = 0 then raise Exit
                 end
               end;
               incr j
             done
           done
         with Exit -> ());
        match h_pairs_per_loc with
        | Some h -> Tm.Histogram.observe_int h (!considered - considered_before)
        | None -> ()
      end);
  (match metrics with
  | None -> ()
  | Some (m : Metrics.t) ->
    m.events <- m.events + Log.length log;
    m.pairs_considered <- m.pairs_considered + !considered;
    m.pairs_capped <- m.pairs_capped + !capped;
    m.windows <- m.windows + !nwindows;
    m.races <- m.races + !nraces;
    m.extract_s <- m.extract_s +. (Unix.gettimeofday () -. t_start));
  Tspan.add_attr "events" (Tspan.Int (Log.length log));
  Tspan.add_attr "windows" (Tspan.Int !nwindows);
  Tspan.add_attr "races" (Tspan.Int !nraces);
  Tspan.add_attr "pairs" (Tspan.Int !considered);
  (List.rev !windows, List.rev !races)
