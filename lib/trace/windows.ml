module Tm = Sherlock_telemetry.Metrics
module Tspan = Sherlock_telemetry.Span

type side = int Opid.Map.t

type coord = {
  first_time : int;
  first_tid : int;
  second_time : int;
  second_tid : int;
}

type t = {
  pair : Opid.t * Opid.t;
  field : string;
  rel : side;
  acq : side;
  coord : coord;
}

type race = {
  race_pair : Opid.t * Opid.t;
  race_field : string;
}

let default_near = 1_000_000

let default_cap = 15

let add_occurrence side op =
  Opid.Map.update op (function None -> Some 1 | Some n -> Some (n + 1)) side

(* Candidate ops of thread [tid] with lo <= time <= hi, resolved over the
   per-thread index. *)
let side_of_span log ~tid ~lo ~hi =
  Log.fold_thread_in log ~tid ~lo ~hi ~init:Opid.Map.empty
    ~f:(fun acc (e : Event.t) -> add_occurrence acc e.op)

let all_kinds_are side kind =
  Opid.Map.for_all (fun (op : Opid.t) _ -> op.kind = kind) side

(* Method-frame spans per thread: arrays of (begin_op, t_begin, t_end)
   sorted by [t_end], with [t_end = max_int] for frames still open at the
   end of the log (e.g. a thread blocked forever inside an acquire).
   Sorting by the end time lets [add_open_frames] binary-search away every
   frame that closed before the window starts. *)
let frame_spans (log : Log.t) =
  let stacks : (int, (Opid.t * int) list ref) Hashtbl.t = Hashtbl.create 16 in
  let spans : (int, (Opid.t * int * int) list ref) Hashtbl.t = Hashtbl.create 16 in
  let slot tbl tid =
    match Hashtbl.find_opt tbl tid with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.add tbl tid s;
      s
  in
  Log.iter
    (fun (e : Event.t) ->
      match e.op.kind with
      | Opid.Begin -> (slot stacks e.tid) := (e.op, e.time) :: !(slot stacks e.tid)
      | Opid.End ->
        let key = Opid.method_key e.op in
        let s = slot stacks e.tid in
        let rec pop acc = function
          | [] -> None
          | ((op : Opid.t), t0) :: rest when Opid.method_key op = key ->
            Some ((op, t0), List.rev_append acc rest)
          | frame :: rest -> pop (frame :: acc) rest
        in
        (match pop [] !s with
        | Some ((op, t0), rest) ->
          s := rest;
          (slot spans e.tid) := (op, t0, e.time) :: !(slot spans e.tid)
        | None -> ())
      | Opid.Read | Opid.Write -> ())
    log;
  Hashtbl.iter
    (fun tid s ->
      List.iter
        (fun (op, t0) -> (slot spans tid) := (op, t0, max_int) :: !(slot spans tid))
        !s)
    stacks;
  let sorted = Hashtbl.create 16 in
  Hashtbl.iter
    (fun tid s ->
      let arr = Array.of_list !s in
      Array.sort (fun (_, _, a) (_, _, b) -> Int.compare a b) arr;
      let ends = Array.map (fun (_, _, t1) -> t1) arr in
      Hashtbl.add sorted tid (arr, ends))
    spans;
  sorted

(* Any progress event of [tid] strictly inside (lo, hi)? *)
let progressed log ~tid ~lo ~hi =
  hi - 1 >= lo + 1 && Log.progress_count log ~tid ~lo:(lo + 1) ~hi:(hi - 1) > 0

(* A blocking acquire (Monitor.Enter, Task.Wait, ...) is *invoked* before
   the release it waits for, so its Begin event precedes the window.  The
   invocation is still in progress during the window and is a legitimate
   acquire candidate — but only if the thread has made no progress since
   the invocation (it is plausibly blocked inside it): a frame that kept
   executing cannot be waiting for a release that has not happened yet. *)
let add_open_frames log spans side ~tid ~lo =
  match Hashtbl.find_opt spans tid with
  | None -> side
  | Some (arr, ends) ->
    let acc = ref side in
    for i = Index.lower_bound ends lo to Array.length arr - 1 do
      let op, t0, _ = arr.(i) in
      if t0 < lo && not (progressed log ~tid ~lo:t0 ~hi:lo) then
        acc := add_occurrence !acc op
    done;
    !acc

(* First delayed event of [tid] inside [lo, hi], if any: a binary search
   over the delayed-event index — early exit, where the seed folded over
   the whole event array even after a match. *)
let first_delay log ~tid ~lo ~hi = Log.first_delayed_in log ~tid ~lo ~hi

let c_shards = Tm.counter "windows.shards"

(* Shard progress, readable mid-extraction by the snapshot ticker: how
   many chunks the current parallel extraction has, and how many have
   completed.  Gauges, not counters — they reset per extraction. *)
let g_chunks_total = Tm.gauge "windows.chunks.total"

let g_chunks_done = Tm.gauge "windows.chunks.done"

let c_cache_hit = Tm.counter "windows.span_cache.hit"

let c_cache_miss = Tm.counter "windows.span_cache.miss"

(* Memoized [side_of_span].  Candidate pairs share span endpoints
   whenever several accesses to one address carry the same timestamp
   (contended bursts under a coarse clock): every pair [(a_i, b)] with
   [a_i.time] equal recomputes the same acquire span [(b.tid, t, b.time)],
   and the refine path recomputes the same [(b.tid, r.time, b.time)] span
   across pairs hitting one delay — so hot logs rebuild the same
   [(tid, lo, hi)] span many times per extraction.  The function is pure
   and the resulting maps are immutable, so a cache is observationally
   invisible.  One cache per domain: sequential extraction keeps a single
   cache, each shard worker owns its own (no cross-domain sharing, no
   locks). *)
type span_cache = {
  tbl : (int * int * int, side) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let cache_create () = { tbl = Hashtbl.create 256; hits = 0; misses = 0 }

let cached_side log cache ~tid ~lo ~hi =
  let key = (tid, lo, hi) in
  match Hashtbl.find_opt cache.tbl key with
  | Some s ->
    cache.hits <- cache.hits + 1;
    s
  | None ->
    cache.misses <- cache.misses + 1;
    let s = side_of_span log ~tid ~lo ~hi in
    Hashtbl.add cache.tbl key s;
    s

(* One accepted conflicting-access candidate, fully analyzed.  In
   sequential mode candidates are dispatched as they are produced; in
   parallel mode shards produce them speculatively and the deterministic
   merge decides which survive the global caps ([c_key] is the static
   pair the cap counters are keyed on). *)
type outcome = Window of t | Race_out of race

type candidate = { c_key : Opid.t * Opid.t; c_dur : int; c_out : outcome }

(* Analyze one candidate pair: compute both sides, refine from injected
   delays, and classify as window or observed race.  Pure in the log (the
   span cache only memoizes), so it runs identically on any domain. *)
let consider_one log spans cache ~refine (a : Event.t) (b : Event.t) =
  let acq_side ~lo ~hi =
    add_open_frames log spans (cached_side log cache ~tid:b.tid ~lo ~hi) ~tid:b.tid ~lo
  in
  let rel = ref (cached_side log cache ~tid:a.tid ~lo:a.time ~hi:b.time) in
  let acq = ref (acq_side ~lo:a.time ~hi:b.time) in
  if refine then begin
    match first_delay log ~tid:a.tid ~lo:a.time ~hi:b.time with
    | Some r ->
      let delay_start = r.time - r.delayed_by in
      (* A spin-waiting thread is logically blocked yet still emits
         read events, so only non-read activity counts as progress. *)
      let made_progress =
        r.time - 1 >= delay_start
        && Log.progress_count log ~tid:b.tid ~lo:delay_start ~hi:(r.time - 1) > 0
      in
      let stalled = not made_progress in
      if stalled then
        (* Delay propagated: the acquire happened while waiting on [r],
           so it must lie between r and b (Figure 2 c). *)
        acq := acq_side ~lo:r.time ~hi:b.time
      else
        (* Delay did not propagate: this *instance* of r is not the
           release coordinating a and b (Figure 2 b).  Other dynamic
           instances of the same operation inside the window (e.g.
           later lock releases in a loop) remain candidates, so only
           one occurrence is discounted. *)
        rel :=
          Opid.Map.update r.op
            (function None | Some 1 -> None | Some n -> Some (n - 1))
            !rel
    | None -> ()
  end;
  let rel = !rel and acq = !acq in
  let field = Opid.field_key a.op in
  let rel_impossible = Opid.Map.is_empty rel || all_kinds_are rel Opid.Read in
  let acq_impossible = Opid.Map.is_empty acq || all_kinds_are acq Opid.Write in
  let out =
    if rel_impossible || acq_impossible then
      Race_out { race_pair = (a.op, b.op); race_field = field }
    else
      Window
        {
          pair = (a.op, b.op);
          field;
          rel;
          acq;
          coord =
            {
              first_time = a.time;
              first_tid = a.tid;
              second_time = b.time;
              second_tid = b.tid;
            };
        }
  in
  { c_key = (a.op, b.op); c_dur = b.time - a.time; c_out = out }

(* Pair enumeration over one address.  An address sees only a handful of
   static ops (the field's read/write and property variants), so the
   per-static-pair cap counters are pulled out of [pair_counts] into a
   tiny matrix once per address: the O(k^2) candidate scan then tests an
   int ref instead of hashing, and bails out of the whole address as soon
   as every conflicting static pair there has reached the cap.
   Enumeration order and cap decisions are identical to testing each
   candidate directly.  [emit a b] fires for each accepted candidate;
   [on_capped] fires when a pair's count reaches the cap. *)
let scan_address ~near ~cap ~pair_counts ~on_capped ~emit
    (accesses : Event.t array) =
  let n = Array.length accesses in
  let optbl : (Opid.t, int) Hashtbl.t = Hashtbl.create 8 in
  let ops_rev = ref [] in
  let nops = ref 0 in
  let opidx =
    Array.map
      (fun (e : Event.t) ->
        match Hashtbl.find_opt optbl e.op with
        | Some i -> i
        | None ->
          let i = !nops in
          Hashtbl.add optbl e.op i;
          ops_rev := e.op :: !ops_rev;
          incr nops;
          i)
      accesses
  in
  let k = !nops in
  let by_idx = Array.make k (accesses.(0) : Event.t).op in
  List.iteri (fun j o -> by_idx.(k - 1 - j) <- o) !ops_rev;
  let counts =
    Array.init k (fun ia ->
        Array.init k (fun ib ->
            let key = (by_idx.(ia), by_idx.(ib)) in
            match Hashtbl.find_opt pair_counts key with
            | Some r -> r
            | None ->
              let r = ref 0 in
              Hashtbl.add pair_counts key r;
              r))
  in
  let conflicting =
    Array.init k (fun ia ->
        Array.init k (fun ib ->
            by_idx.(ia).kind = Opid.Write || by_idx.(ib).kind = Opid.Write))
  in
  (* Conflicting static pairs at this address not yet at the cap. *)
  let live = ref 0 in
  for ia = 0 to k - 1 do
    for ib = 0 to k - 1 do
      if conflicting.(ia).(ib) && !(counts.(ia).(ib)) < cap then incr live
    done
  done;
  try
    if !live = 0 then raise Exit;
    for i = 0 to n - 1 do
      let a = accesses.(i) in
      let ia = opidx.(i) in
      let j = ref (i + 1) in
      while !j < n && (accesses.(!j) : Event.t).time - a.time <= near do
        let b = accesses.(!j) in
        let ib = opidx.(!j) in
        if a.tid <> b.tid && conflicting.(ia).(ib) then begin
          let c = counts.(ia).(ib) in
          if !c < cap then begin
            incr c;
            if !c = cap then begin
              on_capped ();
              decr live
            end;
            emit a b;
            if !live = 0 then raise Exit
          end
        end;
        incr j
      done
    done
  with Exit -> ()

let extract ?(near = default_near) ?(cap = default_cap) ?(refine = true)
    ?metrics ?(jobs = 1) ?pool (log : Log.t) =
 Tspan.with_span ~name:"windows.extract" @@ fun () ->
  let t_start = Unix.gettimeofday () in
  (* Telemetry histograms are resolved once per extraction and only when
     telemetry is on, so the per-pair hot path pays a single branch.
     They are observed exclusively on the calling domain (sequentially or
     during the merge), never inside shards. *)
  let tm_on = Tm.enabled () in
  let h_window_dur = if tm_on then Some (Tm.histogram "windows.duration_us") else None in
  let h_pairs_per_loc =
    if tm_on then Some (Tm.histogram "windows.pairs_per_location") else None
  in
  let spans = frame_spans log in
  let windows = ref [] in
  let races = ref [] in
  let nwindows = ref 0 and nraces = ref 0 in
  let considered = ref 0 and capped = ref 0 in
  (* Accept one candidate: bump the counters, record the window or race,
     observe the duration histogram.  Both the sequential path and the
     parallel merge funnel through here, on the calling domain, in
     canonical candidate order — which is what makes the two paths
     bitwise identical. *)
  let dispatch c =
    incr considered;
    (match c.c_out with
    | Race_out r ->
      incr nraces;
      races := r :: !races
    | Window w ->
      incr nwindows;
      windows := w :: !windows);
    match h_window_dur with
    | Some h -> Tm.Histogram.observe_int h c.c_dur
    | None -> ()
  in
  let observe_pairs_per_loc accepted =
    match h_pairs_per_loc with
    | Some h -> Tm.Histogram.observe_int h accepted
    | None -> ()
  in
  let addrs = Log.addrs_in_order log in
  let naddrs = Array.length addrs in
  if jobs <= 1 || naddrs < 2 then begin
    (* Sequential path: global cap counters applied during the scan,
       candidates dispatched as they are produced. *)
    let pair_counts : (Opid.t * Opid.t, int ref) Hashtbl.t = Hashtbl.create 64 in
    let cache = cache_create () in
    Log.iter_addr_accesses log (fun _addr accesses ->
        if Array.length accesses > 1 then begin
          let before = !considered in
          scan_address ~near ~cap ~pair_counts
            ~on_capped:(fun () -> incr capped)
            ~emit:(fun a b -> dispatch (consider_one log spans cache ~refine a b))
            accesses;
          observe_pairs_per_loc (!considered - before)
        end);
    Tm.Counter.incr ~by:cache.hits c_cache_hit;
    Tm.Counter.incr ~by:cache.misses c_cache_miss
  end
  else begin
    (* Parallel path: shard the canonical address order into contiguous
       chunks, analyze chunks on worker domains, and merge sequentially.

       The per-static-pair caps are global across addresses, so shards
       cannot apply them.  Instead each chunk scans with *fresh local*
       cap counters — emitting at most [cap] candidates per static pair
       per chunk, each fully analyzed — and the merge replays chunk
       outputs in chunk-index order against the real global counters.
       A chunk's emissions for a pair are a prefix of that pair's
       canonical candidate stream within the chunk, and the globally
       accepted candidates for a pair are its first [cap] in canonical
       order, which lie inside the per-chunk prefixes; so replaying the
       prefixes in order accepts exactly the sequential candidate set,
       in the sequential order.  Local counters are per *chunk*, not per
       worker: a worker that processes a canonically-late chunk first
       must not burn cap budget that canonically-earlier candidates
       (from a chunk another worker owns) are entitled to.

       [frame_spans] is computed once above and shared read-only; each
       worker owns a private span cache. *)
    let nchunks = min naddrs (jobs * 4) in
    let chunk_lo i = i * naddrs / nchunks in
    (* Per chunk, per scanned address (in chunk order): the emitted
       candidates in scan order.  Every address with >1 accesses appears,
       even with no emissions, so the merge can observe the
       pairs-per-location histogram exactly as the sequential path does.
       Each slot is written by exactly one worker before the pool batch
       completes; [Pool.run]'s join publishes the writes to the caller. *)
    let chunk_out : candidate list list array = Array.make nchunks [] in
    Tm.Gauge.set g_chunks_total nchunks;
    Tm.Gauge.set g_chunks_done 0;
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let total_hits = Atomic.make 0 and total_misses = Atomic.make 0 in
    let process_chunk cache ci =
      let local_counts : (Opid.t * Opid.t, int ref) Hashtbl.t =
        Hashtbl.create 64
      in
      let out = ref [] in
      for ai = chunk_lo ci to chunk_lo (ci + 1) - 1 do
        let accesses = Log.accesses_of_addr log addrs.(ai) in
        if Array.length accesses > 1 then begin
          let cands = ref [] in
          scan_address ~near ~cap ~pair_counts:local_counts ~on_capped:ignore
            ~emit:(fun a b ->
              cands := consider_one log spans cache ~refine a b :: !cands)
            accesses;
          out := List.rev !cands :: !out
        end
      done;
      chunk_out.(ci) <- List.rev !out
    in
    let work () =
      let cache = cache_create () in
      let rec loop () =
        let ci = Atomic.fetch_and_add next 1 in
        if ci < nchunks && Option.is_none (Atomic.get failure) then begin
          (match process_chunk cache ci with
          | () -> Tm.Gauge.add g_chunks_done 1
          | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set failure None (Some (e, bt))));
          loop ()
        end
      in
      loop ();
      ignore (Atomic.fetch_and_add total_hits cache.hits);
      ignore (Atomic.fetch_and_add total_misses cache.misses)
    in
    let workers = min jobs nchunks - 1 in
    (match pool with
    | Some p -> Sherlock_util.Pool.run p ~workers work
    | None ->
      let p = Sherlock_util.Pool.create () in
      Fun.protect
        ~finally:(fun () -> Sherlock_util.Pool.retire p)
        (fun () -> Sherlock_util.Pool.run p ~workers work));
    (match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    (* Deterministic merge: replay every chunk's candidates in canonical
       order against the real global cap counters. *)
    let pair_counts : (Opid.t * Opid.t, int ref) Hashtbl.t = Hashtbl.create 64 in
    Array.iter
      (fun addr_results ->
        List.iter
          (fun cands ->
            let before = !considered in
            List.iter
              (fun c ->
                let r =
                  match Hashtbl.find_opt pair_counts c.c_key with
                  | Some r -> r
                  | None ->
                    let r = ref 0 in
                    Hashtbl.add pair_counts c.c_key r;
                    r
                in
                if !r < cap then begin
                  incr r;
                  if !r = cap then incr capped;
                  dispatch c
                end)
              cands;
            observe_pairs_per_loc (!considered - before))
          addr_results)
      chunk_out;
    Tm.Counter.incr ~by:nchunks c_shards;
    Tm.Counter.incr ~by:(Atomic.get total_hits) c_cache_hit;
    Tm.Counter.incr ~by:(Atomic.get total_misses) c_cache_miss
  end;
  (match metrics with
  | None -> ()
  | Some (m : Metrics.t) ->
    m.events <- m.events + Log.length log;
    m.pairs_considered <- m.pairs_considered + !considered;
    m.pairs_capped <- m.pairs_capped + !capped;
    m.windows <- m.windows + !nwindows;
    m.races <- m.races + !nraces;
    m.extract_s <- m.extract_s +. (Unix.gettimeofday () -. t_start));
  Tspan.add_attr "events" (Tspan.Int (Log.length log));
  Tspan.add_attr "windows" (Tspan.Int !nwindows);
  Tspan.add_attr "races" (Tspan.Int !nraces);
  Tspan.add_attr "pairs" (Tspan.Int !considered);
  (List.rev !windows, List.rev !races)
