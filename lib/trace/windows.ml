type side = int Opid.Map.t

type t = {
  pair : Opid.t * Opid.t;
  field : string;
  rel : side;
  acq : side;
}

type race = {
  race_pair : Opid.t * Opid.t;
  race_field : string;
}

let default_near = 1_000_000

let default_cap = 15

let add_occurrence side op =
  Opid.Map.update op (function None -> Some 1 | Some n -> Some (n + 1)) side

(* Candidate ops of thread [tid] with lo <= time <= hi. *)
let side_of_span events ~tid ~lo ~hi =
  Array.fold_left
    (fun acc (e : Event.t) ->
      if e.tid = tid && e.time >= lo && e.time <= hi then add_occurrence acc e.op
      else acc)
    Opid.Map.empty events

let all_kinds_are side kind =
  Opid.Map.for_all (fun (op : Opid.t) _ -> op.kind = kind) side

(* Method-frame spans per thread: (tid, begin_op, t_begin, t_end), with
   [t_end = max_int] for frames still open at the end of the log (e.g. a
   thread blocked forever inside an acquire). *)
let frame_spans events =
  let stacks : (int, (Opid.t * int) list ref) Hashtbl.t = Hashtbl.create 16 in
  let spans = ref [] in
  let stack tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.add stacks tid s;
      s
  in
  Array.iter
    (fun (e : Event.t) ->
      match e.op.kind with
      | Opid.Begin -> (stack e.tid) := (e.op, e.time) :: !(stack e.tid)
      | Opid.End ->
        let key = Opid.method_key e.op in
        let s = stack e.tid in
        let rec pop acc = function
          | [] -> None
          | ((op : Opid.t), t0) :: rest when Opid.method_key op = key ->
            Some ((op, t0), List.rev_append acc rest)
          | frame :: rest -> pop (frame :: acc) rest
        in
        (match pop [] !s with
        | Some ((op, t0), rest) ->
          s := rest;
          spans := (e.tid, op, t0, e.time) :: !spans
        | None -> ())
      | Opid.Read | Opid.Write -> ())
    events;
  Hashtbl.iter
    (fun tid s -> List.iter (fun (op, t0) -> spans := (tid, op, t0, max_int) :: !spans) !s)
    stacks;
  !spans

(* Sorted times of each thread's "progress" events (writes and frame
   boundaries — reads excluded, since a spin-waiting thread still reads). *)
let progress_times events =
  let per_tid : (int, int list ref) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun (e : Event.t) ->
      if e.op.kind <> Opid.Read then
        match Hashtbl.find_opt per_tid e.tid with
        | Some r -> r := e.time :: !r
        | None -> Hashtbl.add per_tid e.tid (ref [ e.time ]))
    events;
  let sorted = Hashtbl.create 16 in
  Hashtbl.iter
    (fun tid r ->
      let arr = Array.of_list (List.rev !r) in
      Array.sort compare arr;
      Hashtbl.add sorted tid arr)
    per_tid;
  sorted

(* Any progress event of [tid] strictly inside (lo, hi)? *)
let progressed progress ~tid ~lo ~hi =
  match Hashtbl.find_opt progress tid with
  | None -> false
  | Some times ->
    let n = Array.length times in
    (* First index with times.(i) > lo. *)
    let rec search a b = if a >= b then a else
      let mid = (a + b) / 2 in
      if times.(mid) <= lo then search (mid + 1) b else search a mid
    in
    let i = search 0 n in
    i < n && times.(i) < hi

(* A blocking acquire (Monitor.Enter, Task.Wait, ...) is *invoked* before
   the release it waits for, so its Begin event precedes the window.  The
   invocation is still in progress during the window and is a legitimate
   acquire candidate — but only if the thread has made no progress since
   the invocation (it is plausibly blocked inside it): a frame that kept
   executing cannot be waiting for a release that has not happened yet. *)
let add_open_frames spans progress side ~tid ~lo =
  List.fold_left
    (fun acc (t, op, t0, t1) ->
      if t = tid && t0 < lo && t1 >= lo && not (progressed progress ~tid ~lo:t0 ~hi:lo)
      then add_occurrence acc op
      else acc)
    side spans

(* First delayed event of [tid] inside [lo, hi], if any. *)
let first_delay events ~tid ~lo ~hi =
  Array.fold_left
    (fun acc (e : Event.t) ->
      match acc with
      | Some _ -> acc
      | None ->
        if e.tid = tid && e.delayed_by > 0 && e.time >= lo && e.time <= hi then Some e
        else None)
    None events

let extract ?(near = default_near) ?(cap = default_cap) ?(refine = true) (log : Log.t) =
  let events = log.events in
  let spans = frame_spans events in
  let progress = progress_times events in
  (* Access events grouped by address, in time order (events are sorted). *)
  let by_addr : (int, Event.t list ref) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun (e : Event.t) ->
      if Opid.is_access e.op then
        match Hashtbl.find_opt by_addr e.target with
        | Some r -> r := e :: !r
        | None -> Hashtbl.add by_addr e.target (ref [ e ]))
    events;
  let windows = ref [] in
  let races = ref [] in
  let pair_counts : (Opid.t * Opid.t, int) Hashtbl.t = Hashtbl.create 64 in
  let consider (a : Event.t) (b : Event.t) =
    let key = (a.op, b.op) in
    let seen = Option.value ~default:0 (Hashtbl.find_opt pair_counts key) in
    if seen < cap then begin
      Hashtbl.replace pair_counts key (seen + 1);
      let acq_side ~lo ~hi =
        add_open_frames spans progress
          (side_of_span events ~tid:b.tid ~lo ~hi)
          ~tid:b.tid ~lo
      in
      let rel = ref (side_of_span events ~tid:a.tid ~lo:a.time ~hi:b.time) in
      let acq = ref (acq_side ~lo:a.time ~hi:b.time) in
      if refine then begin
        match first_delay events ~tid:a.tid ~lo:a.time ~hi:b.time with
        | Some r ->
          let delay_start = r.time - r.delayed_by in
          (* A spin-waiting thread is logically blocked yet still emits
             read events, so only non-read activity counts as progress. *)
          let made_progress =
            Array.exists
              (fun (e : Event.t) ->
                e.tid = b.tid
                && e.time >= delay_start
                && e.time < r.time
                && e.op.kind <> Opid.Read)
              events
          in
          let stalled = not made_progress in
          if stalled then
            (* Delay propagated: the acquire happened while waiting on [r],
               so it must lie between r and b (Figure 2 c). *)
            acq := acq_side ~lo:r.time ~hi:b.time
          else
            (* Delay did not propagate: this *instance* of r is not the
               release coordinating a and b (Figure 2 b).  Other dynamic
               instances of the same operation inside the window (e.g.
               later lock releases in a loop) remain candidates, so only
               one occurrence is discounted. *)
            rel :=
              Opid.Map.update r.op
                (function
                  | None | Some 1 -> None
                  | Some n -> Some (n - 1))
                !rel
        | None -> ()
      end;
      let rel = !rel and acq = !acq in
      let field = Opid.field_key a.op in
      let rel_impossible = Opid.Map.is_empty rel || all_kinds_are rel Opid.Read in
      let acq_impossible = Opid.Map.is_empty acq || all_kinds_are acq Opid.Write in
      if rel_impossible || acq_impossible then
        races := { race_pair = (a.op, b.op); race_field = field } :: !races
      else windows := { pair = (a.op, b.op); field; rel; acq } :: !windows
    end
  in
  Hashtbl.iter
    (fun _addr accesses ->
      let accesses = Array.of_list (List.rev !accesses) in
      let n = Array.length accesses in
      for i = 0 to n - 1 do
        let a = accesses.(i) in
        let j = ref (i + 1) in
        while !j < n && (accesses.(!j) : Event.t).time - a.time <= near do
          let b = accesses.(!j) in
          if a.tid <> b.tid && (a.op.kind = Opid.Write || b.op.kind = Opid.Write) then
            consider a b;
          incr j
        done
      done)
    by_addr;
  (List.rev !windows, List.rev !races)
