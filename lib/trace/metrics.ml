type t = {
  mutable events : int;
  mutable pairs_considered : int;
  mutable pairs_capped : int;
  mutable windows : int;
  mutable races : int;
  mutable run_s : float;
  mutable extract_s : float;
  mutable solve_s : float;
}

let create () =
  {
    events = 0;
    pairs_considered = 0;
    pairs_capped = 0;
    windows = 0;
    races = 0;
    run_s = 0.0;
    extract_s = 0.0;
    solve_s = 0.0;
  }

let copy t = { t with events = t.events }

let merge ~into t =
  into.events <- into.events + t.events;
  into.pairs_considered <- into.pairs_considered + t.pairs_considered;
  into.pairs_capped <- into.pairs_capped + t.pairs_capped;
  into.windows <- into.windows + t.windows;
  into.races <- into.races + t.races;
  into.run_s <- into.run_s +. t.run_s;
  into.extract_s <- into.extract_s +. t.extract_s;
  into.solve_s <- into.solve_s +. t.solve_s

let to_registry ?(prefix = "trace.") registry t =
  let module Tm = Sherlock_telemetry.Metrics in
  let count name v = Tm.Counter.incr ~by:v (Tm.counter ~registry (prefix ^ name)) in
  count "events" t.events;
  count "pairs_considered" t.pairs_considered;
  count "pairs_capped" t.pairs_capped;
  count "windows" t.windows;
  count "races" t.races;
  let seconds name v = Tm.Histogram.observe (Tm.histogram ~registry (prefix ^ name)) v in
  seconds "run_s" t.run_s;
  seconds "extract_s" t.extract_s;
  seconds "solve_s" t.solve_s

let pp ppf t =
  Format.fprintf ppf
    "%d events, %d pairs (%d capped), %d windows, %d races, run %.3fs, extract %.3fs, solve %.3fs"
    t.events t.pairs_considered t.pairs_capped t.windows t.races t.run_s
    t.extract_s t.solve_s
