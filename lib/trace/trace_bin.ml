(* The binary trace format: a framed, columnar encoding designed so a
   reader never parses event records at all — it maps the file and lays
   Bigarray views over the columns.

   Layout (every integer little-endian; [u64]/[i64] 8 bytes, [i32] 4,
   [u16] 2):

   {v
   0    magic "SHLKTRC\x01"            (8 bytes; last byte = version)
   8    u64 num_events
   16   u64 num_ops                    (interned operation table entries)
   24   u64 events_offset              (8-aligned)
   32   u64 footer_offset              (8-aligned)
   40   op table: per entry
          u8 kind ('r' 'w' 'b' 'e'), u16 cls_len, u16 member_len,
          cls bytes, member bytes
        zero padding up to events_offset
   events_offset
        time    column: num_events x i64
        target  column: num_events x i64
        tid     column: num_events x i32
        op      column: num_events x i32 (index into the op table)
        delayed column: num_events x i32
        zero padding up to footer_offset
   footer_offset
        u64 duration, u64 threads, u64 num_volatile,
        num_volatile x i64 addrs (ascending)  -- exact end of file
   v}

   Events are stored in the log's (time, emission) order, so the reader
   skips the sort; operation names are interned, so every dynamic
   instance of an op shares one [Opid.t] in memory.  The 64-bit columns
   come first and every section is 8-aligned, keeping each mapped view
   naturally aligned for its element type. *)

let magic = "SHLKTRC\x01"

let align8 n = (n + 7) land lnot 7

let event_bytes = 28 (* 2 x i64 + 3 x i32 per event *)

let header_bytes = 40

let footer_fixed_bytes = 24

let kind_char = function
  | Opid.Read -> 'r'
  | Opid.Write -> 'w'
  | Opid.Begin -> 'b'
  | Opid.End -> 'e'

(* ------------------------------------------------------------------ *)
(* Writer *)

(* One table entry per distinct [Opid.t], numbered in first-appearance
   order; events store the 32-bit index. *)
let intern (log : Log.t) =
  let tbl : (Opid.t, int) Hashtbl.t = Hashtbl.create 64 in
  let rev = ref [] in
  let count = ref 0 in
  Array.iter
    (fun (e : Event.t) ->
      if not (Hashtbl.mem tbl e.op) then begin
        Hashtbl.add tbl e.op !count;
        rev := e.op :: !rev;
        incr count
      end)
    log.events;
  (tbl, Array.of_list (List.rev !rev))

let op_entry_bytes (o : Opid.t) = 5 + String.length o.cls + String.length o.member

let add_i64 buf v = Buffer.add_int64_le buf (Int64.of_int v)

let add_i32 buf v =
  if v < Int32.to_int Int32.min_int || v > Int32.to_int Int32.max_int then
    invalid_arg
      (Printf.sprintf "Trace_bin: value %d exceeds the 32-bit column range" v);
  Buffer.add_int32_le buf (Int32.of_int v)

let add_pad buf n =
  for _ = 1 to n do
    Buffer.add_char buf '\x00'
  done

(* Serialization streams every section through [buf]; [flush] drains it
   to the sink whenever a chunk accumulates (and is a no-op when the
   caller wants the whole image in memory).  Extends the direct-buffer
   approach of the text writer: no per-field formatting round-trips, and
   a file of any size is written through one 64 KiB buffer. *)
let chunk_bytes = 1 lsl 16

let write_with (log : Log.t) ~buf ~flush =
  let tbl, ops = intern log in
  let n = Array.length log.events in
  let op_table_bytes = Array.fold_left (fun a o -> a + op_entry_bytes o) 0 ops in
  let events_offset = align8 (header_bytes + op_table_bytes) in
  let footer_offset = events_offset + align8 (event_bytes * n) in
  let maybe_flush () = if Buffer.length buf >= chunk_bytes then flush buf in
  Buffer.add_string buf magic;
  add_i64 buf n;
  add_i64 buf (Array.length ops);
  add_i64 buf events_offset;
  add_i64 buf footer_offset;
  Array.iter
    (fun (o : Opid.t) ->
      Opid.check_name o.cls;
      Opid.check_name o.member;
      if String.length o.cls > 0xffff || String.length o.member > 0xffff then
        invalid_arg "Trace_bin: operation name longer than 65535 bytes";
      Buffer.add_char buf (kind_char o.kind);
      Buffer.add_uint16_le buf (String.length o.cls);
      Buffer.add_uint16_le buf (String.length o.member);
      Buffer.add_string buf o.cls;
      Buffer.add_string buf o.member;
      maybe_flush ())
    ops;
  add_pad buf (events_offset - (header_bytes + op_table_bytes));
  let column add =
    Array.iter
      (fun (e : Event.t) ->
        add e;
        maybe_flush ())
      log.events
  in
  column (fun (e : Event.t) -> add_i64 buf e.time);
  column (fun (e : Event.t) -> add_i64 buf e.target);
  column (fun (e : Event.t) -> add_i32 buf e.tid);
  column (fun (e : Event.t) -> add_i32 buf (Hashtbl.find tbl e.op));
  column (fun (e : Event.t) -> add_i32 buf e.delayed_by);
  add_pad buf (footer_offset - (events_offset + (event_bytes * n)));
  add_i64 buf log.duration;
  add_i64 buf log.threads;
  add_i64 buf (Hashtbl.length log.volatile_addrs);
  (* Ascending order makes the encoding canonical: the same log always
     produces the same bytes, whatever the hashtable's iteration order. *)
  let addrs = Hashtbl.fold (fun a () acc -> a :: acc) log.volatile_addrs [] in
  List.iter (fun a -> add_i64 buf a) (List.sort compare addrs)

let save log path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create chunk_bytes in
      let flush b =
        Buffer.output_buffer oc b;
        Buffer.clear b
      in
      write_with log ~buf ~flush;
      flush buf)

let to_string (log : Log.t) =
  let buf = Buffer.create (4096 + (event_bytes * Array.length log.events)) in
  write_with log ~buf ~flush:(fun _ -> ());
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Reader *)

(* Decode errors carry the byte offset of the bad frame, the binary
   analogue of the text parser's file:line convention. *)
let err ~path ~off fmt =
  Printf.ksprintf
    (fun m -> failwith (Printf.sprintf "%s: byte %d: Trace_bin: %s" path off m))
    fmt

(* [head] is the first [min size 40] bytes of the image. *)
let parse_header ~path ~size head =
  if String.length head < 8 || String.sub head 0 8 <> magic then
    err ~path ~off:0 "bad magic";
  if String.length head < header_bytes then err ~path ~off:8 "truncated header";
  let geti off =
    let v = String.get_int64_le head off in
    if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
      err ~path ~off "header field out of range";
    Int64.to_int v
  in
  let n = geti 8 in
  let num_ops = geti 16 in
  let events_offset = geti 24 in
  let footer_offset = geti 32 in
  if n > size / event_bytes then
    err ~path ~off:8 "event count %d impossible for a %d-byte file" n size;
  if num_ops > size / 5 then
    err ~path ~off:16 "op table size %d impossible for a %d-byte file" num_ops size;
  if events_offset < header_bytes || events_offset land 7 <> 0
     || events_offset > size
  then err ~path ~off:24 "op table overruns the file (events offset %d, size %d)" events_offset size;
  if footer_offset <> events_offset + align8 (event_bytes * n)
     || footer_offset + footer_fixed_bytes > size
  then
    err ~path ~off:32 "event columns overrun the file (footer offset %d, size %d)"
      footer_offset size;
  (n, num_ops, events_offset, footer_offset)

(* [s] is exactly the op-table region; [base] its offset in the file. *)
let parse_op_table ~path ~base ~num_ops s =
  let len = String.length s in
  let dummy = Opid.read ~cls:"" "" in
  let ops = Array.make (max 1 num_ops) dummy in
  let pos = ref 0 in
  for k = 0 to num_ops - 1 do
    let off = base + !pos in
    if !pos + 5 > len then err ~path ~off "truncated op table entry %d" k;
    let make =
      match s.[!pos] with
      | 'r' -> Opid.read
      | 'w' -> Opid.write
      | 'b' -> Opid.enter
      | 'e' -> Opid.exit
      | c -> err ~path ~off "bad op kind %C" c
    in
    let cls_len = String.get_uint16_le s (!pos + 1) in
    let member_len = String.get_uint16_le s (!pos + 3) in
    if !pos + 5 + cls_len + member_len > len then
      err ~path ~off "truncated op table entry %d" k;
    let cls = String.sub s (!pos + 5) cls_len in
    let member = String.sub s (!pos + 5 + cls_len) member_len in
    pos := !pos + 5 + cls_len + member_len;
    ops.(k) <-
      (match make ~cls member with
      | op -> op
      | exception Invalid_argument m -> err ~path ~off "%s" m)
  done;
  (* Only alignment padding may remain after the last entry. *)
  if len - !pos >= 8 then err ~path ~off:(base + !pos) "op table size mismatch";
  ops

let parse_footer_fixed ~path ~footer_offset ~size s =
  let geti off =
    let v = String.get_int64_le s off in
    if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
      err ~path ~off:(footer_offset + off) "footer field out of range";
    Int64.to_int v
  in
  let duration = geti 0 in
  let threads = geti 8 in
  let num_volatile = geti 16 in
  if footer_offset + footer_fixed_bytes + (8 * num_volatile) <> size then
    err ~path ~off:(footer_offset + 16)
      "volatile table does not end the file (%d entries, %d bytes left)"
      num_volatile
      (size - footer_offset - footer_fixed_bytes);
  (duration, threads, num_volatile)

let bad_op_index ~path ~events_offset ~num_ops ~n i k =
  err ~path
    ~off:(events_offset + (20 * n) + (4 * i))
    "op index %d out of range (table has %d entries)" k num_ops

(* Decode-loop bookkeeping, accumulated per event while the records are
   materialized so [finish] can skip whole re-scan passes over the
   (multi-MB, cache-cold) record array: sortedness lets it bypass the
   sort/verify of [Log.of_sorted_array], and the [Index.Dense_builder]
   counts let the index build run its fill pass only. *)
type stats = {
  mutable prev_time : int;
  mutable sorted : bool;
  builder : Index.Dense_builder.t;
}

let fresh_stats ~events =
  { prev_time = min_int; sorted = true; builder = Index.Dense_builder.create ~events }

let note st ~time ~tid ~target ~delayed ~is_access =
  if time < st.prev_time then st.sorted <- false;
  st.prev_time <- time;
  Index.Dense_builder.note st.builder ~tid ~target ~delayed ~is_access

let finish st events ~duration ~threads ~volatile_addrs =
  match
    if st.sorted then Index.Dense_builder.finish st.builder events else None
  with
  | Some index -> { Log.events; duration; threads; volatile_addrs; index }
  | None -> Log.of_sorted_array events ~duration ~threads ~volatile_addrs

(* The mmap-backed load: columns become Bigarray views over the mapped
   pages — no intermediate strings, no record parsing — and the event
   array is filled straight from those views.  The op column is the only
   one that needs validation (indices bound a table lookup); everything
   else is copied verbatim into the [Event.t] fields. *)
let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let size = in_channel_length ic in
      let head = really_input_string ic (min size header_bytes) in
      let n, num_ops, events_offset, footer_offset =
        parse_header ~path ~size head
      in
      let table = really_input_string ic (events_offset - header_bytes) in
      let ops = parse_op_table ~path ~base:header_bytes ~num_ops table in
      let fd = Unix.descr_of_in_channel ic in
      let map kind count pos =
        Bigarray.array1_of_genarray
          (Unix.map_file fd ~pos:(Int64.of_int pos) kind Bigarray.c_layout false
             [| count |])
      in
      let st = fresh_stats ~events:n in
      let events =
        if n = 0 then [||]
        else begin
          let times = map Bigarray.int64 n events_offset in
          let targets = map Bigarray.int64 n (events_offset + (8 * n)) in
          let tids = map Bigarray.int32 n (events_offset + (16 * n)) in
          let opix = map Bigarray.int32 n (events_offset + (20 * n)) in
          let delays = map Bigarray.int32 n (events_offset + (24 * n)) in
          let is_acc = Array.map Opid.is_access ops in
          let dummy = Event.make ~time:0 ~tid:0 ~op:ops.(0) () in
          let events = Array.make n dummy in
          for i = 0 to n - 1 do
            let k = Int32.to_int (Bigarray.Array1.unsafe_get opix i) in
            if k < 0 || k >= num_ops then
              bad_op_index ~path ~events_offset ~num_ops ~n i k;
            let time = Int64.to_int (Bigarray.Array1.unsafe_get times i) in
            let tid = Int32.to_int (Bigarray.Array1.unsafe_get tids i) in
            let target = Int64.to_int (Bigarray.Array1.unsafe_get targets i) in
            let delayed_by = Int32.to_int (Bigarray.Array1.unsafe_get delays i) in
            note st ~time ~tid ~target ~delayed:(delayed_by > 0)
              ~is_access:(Array.unsafe_get is_acc k);
            Array.unsafe_set events i
              { Event.time; tid; op = Array.unsafe_get ops k; target; delayed_by }
          done;
          events
        end
      in
      seek_in ic footer_offset;
      let duration, threads, num_volatile =
        parse_footer_fixed ~path ~footer_offset ~size
          (really_input_string ic footer_fixed_bytes)
      in
      let volatile_addrs = Hashtbl.create (max 8 num_volatile) in
      if num_volatile > 0 then begin
        let addrs = map Bigarray.int64 num_volatile (footer_offset + footer_fixed_bytes) in
        for i = 0 to num_volatile - 1 do
          Hashtbl.replace volatile_addrs (Int64.to_int addrs.{i}) ()
        done
      end;
      finish st events ~duration ~threads ~volatile_addrs)

(* In-memory decode of the same image, for tests and string round-trips;
   shares the header/op-table/footer parsing with [load]. *)
let of_string ?(path = "<string>") s =
  let size = String.length s in
  let head = String.sub s 0 (min size header_bytes) in
  let n, num_ops, events_offset, footer_offset = parse_header ~path ~size head in
  let table = String.sub s header_bytes (events_offset - header_bytes) in
  let ops = parse_op_table ~path ~base:header_bytes ~num_ops table in
  let st = fresh_stats ~events:n in
  let events =
    if n = 0 then [||]
    else begin
      let i64 base i = Int64.to_int (String.get_int64_le s (base + (8 * i))) in
      let i32 base i = Int32.to_int (String.get_int32_le s (base + (4 * i))) in
      let is_acc = Array.map Opid.is_access ops in
      let dummy = Event.make ~time:0 ~tid:0 ~op:ops.(0) () in
      let events = Array.make n dummy in
      for i = 0 to n - 1 do
        let k = i32 (events_offset + (20 * n)) i in
        if k < 0 || k >= num_ops then
          bad_op_index ~path ~events_offset ~num_ops ~n i k;
        let time = i64 events_offset i in
        let tid = i32 (events_offset + (16 * n)) i in
        let target = i64 (events_offset + (8 * n)) i in
        let delayed_by = i32 (events_offset + (24 * n)) i in
        note st ~time ~tid ~target ~delayed:(delayed_by > 0)
          ~is_access:(Array.unsafe_get is_acc k);
        Array.unsafe_set events i
          { Event.time; tid; op = Array.unsafe_get ops k; target; delayed_by }
      done;
      events
    end
  in
  let duration, threads, num_volatile =
    parse_footer_fixed ~path ~footer_offset ~size
      (String.sub s footer_offset footer_fixed_bytes)
  in
  let volatile_addrs = Hashtbl.create (max 8 num_volatile) in
  for i = 0 to num_volatile - 1 do
    let a =
      Int64.to_int
        (String.get_int64_le s (footer_offset + footer_fixed_bytes + (8 * i)))
    in
    Hashtbl.replace volatile_addrs a ()
  done;
  finish st events ~duration ~threads ~volatile_addrs
