(** Lightweight pipeline counters and wall-clock accounting, threaded from
    window extraction through the solver into reports and the CLI.

    A single mutable record is accumulated in place: extraction bumps the
    event/pair/window/race counters and [extract_s]; the orchestrator adds
    the simulated runs' host time to [run_s]; the encoder adds LP time to
    [solve_s]. *)

type t = {
  mutable events : int;            (** events traced across the merged runs *)
  mutable pairs_considered : int;  (** conflicting-access pairs examined *)
  mutable pairs_capped : int;
      (** static location pairs that hit the per-pair window cap *)
  mutable windows : int;           (** windows emitted *)
  mutable races : int;             (** observed data races emitted *)
  mutable run_s : float;           (** host seconds executing simulated tests *)
  mutable extract_s : float;       (** host seconds in window extraction *)
  mutable solve_s : float;         (** host seconds in the LP solver *)
}

val create : unit -> t
(** All counters zero. *)

val copy : t -> t
(** An independent snapshot. *)

val merge : into:t -> t -> unit
(** Add every counter of the second argument into [into]. *)

val to_registry :
  ?prefix:string -> Sherlock_telemetry.Metrics.registry -> t -> unit
(** Bridge into the telemetry metrics registry: the integer fields are
    added to counters named [prefix ^ field] (default prefix ["trace."]),
    the wall-clock fields observed into same-named histograms.  This
    record stays the pipeline's in-band accumulator; the registry is the
    generalized, exportable view. *)

val pp : Format.formatter -> t -> unit
