(* Query indices over one log's time-sorted event array, built once at
   construction.  Positions always refer to offsets into that array, so
   every per-thread / per-address view inherits the global (time, emission)
   order without storing events twice. *)

type per_thread = {
  positions : int array;
  times : int array;
  progress : int array;
  delayed_positions : int array;
  delayed_times : int array;
}

type t = {
  threads : (int, per_thread) Hashtbl.t;
  addrs_in_order : int array;
  accesses : (int, Event.t array) Hashtbl.t;
}

(* First index with [a.(i) >= v] ([Array.length a] if none). *)
let lower_bound (a : int array) v =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) < v then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length a)

(* First index with [a.(i) > v]. *)
let upper_bound (a : int array) v =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) <= v then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length a)

let empty_thread =
  {
    positions = [||];
    times = [||];
    progress = [| 0 |];
    delayed_positions = [||];
    delayed_times = [||];
  }

let build (events : Event.t array) =
  let n = Array.length events in
  (* Counting pass: sizes per thread / address, address first-seen order. *)
  let tcount : (int, int ref) Hashtbl.t = Hashtbl.create 16 in
  let dcount : (int, int ref) Hashtbl.t = Hashtbl.create 16 in
  let acount : (int, int ref) Hashtbl.t = Hashtbl.create 64 in
  let addr_order = ref [] in
  let bump tbl key =
    match Hashtbl.find_opt tbl key with
    | Some r ->
      incr r;
      false
    | None ->
      Hashtbl.add tbl key (ref 1);
      true
  in
  for i = 0 to n - 1 do
    let e = events.(i) in
    ignore (bump tcount e.tid);
    if e.delayed_by > 0 then ignore (bump dcount e.tid);
    if Opid.is_access e.op then
      if bump acount e.target then addr_order := e.target :: !addr_order
  done;
  let threads = Hashtbl.create (Hashtbl.length tcount) in
  Hashtbl.iter
    (fun tid c ->
      let nd =
        match Hashtbl.find_opt dcount tid with Some r -> !r | None -> 0
      in
      Hashtbl.add threads tid
        {
          positions = Array.make !c 0;
          times = Array.make !c 0;
          progress = Array.make (!c + 1) 0;
          delayed_positions = Array.make nd 0;
          delayed_times = Array.make nd 0;
        })
    tcount;
  let accesses = Hashtbl.create (Hashtbl.length acount) in
  let dummy = Event.make ~time:0 ~tid:0 ~op:(Opid.read ~cls:"" "") () in
  Hashtbl.iter
    (fun addr c -> Hashtbl.add accesses addr (Array.make !c dummy))
    acount;
  (* Filling pass, with per-key cursors. *)
  let tcur : (int, int ref) Hashtbl.t = Hashtbl.create 16 in
  let dcur : (int, int ref) Hashtbl.t = Hashtbl.create 16 in
  let acur : (int, int ref) Hashtbl.t = Hashtbl.create 64 in
  let cursor tbl key =
    match Hashtbl.find_opt tbl key with
    | Some r -> r
    | None ->
      let r = ref 0 in
      Hashtbl.add tbl key r;
      r
  in
  for i = 0 to n - 1 do
    let e = events.(i) in
    let pt = Hashtbl.find threads e.tid in
    let c = cursor tcur e.tid in
    pt.positions.(!c) <- i;
    pt.times.(!c) <- e.time;
    pt.progress.(!c + 1) <-
      (pt.progress.(!c) + if e.op.kind = Opid.Read then 0 else 1);
    incr c;
    if e.delayed_by > 0 then begin
      let c = cursor dcur e.tid in
      pt.delayed_positions.(!c) <- i;
      pt.delayed_times.(!c) <- e.time;
      incr c
    end;
    if Opid.is_access e.op then begin
      let arr = Hashtbl.find accesses e.target in
      let c = cursor acur e.target in
      arr.(!c) <- e;
      incr c
    end
  done;
  {
    threads;
    addrs_in_order = Array.of_list (List.rev !addr_order);
    accesses;
  }

let thread t tid =
  match Hashtbl.find_opt t.threads tid with
  | Some pt -> pt
  | None -> empty_thread

(* Events of [tid] with [lo <= time <= hi], folded in time order. *)
let fold_thread_in t (events : Event.t array) ~tid ~lo ~hi ~init ~f =
  let pt = thread t tid in
  let i = lower_bound pt.times lo in
  let j = upper_bound pt.times hi in
  let acc = ref init in
  for k = i to j - 1 do
    acc := f !acc events.(pt.positions.(k))
  done;
  !acc

(* Number of non-Read ("progress") events of [tid] with [lo <= time <= hi]. *)
let progress_count t ~tid ~lo ~hi =
  let pt = thread t tid in
  let i = lower_bound pt.times lo in
  let j = upper_bound pt.times hi in
  if j <= i then 0 else pt.progress.(j) - pt.progress.(i)

(* First (in time, ties by emission order) delayed event of [tid] with
   [lo <= time <= hi]. *)
let first_delayed_in t (events : Event.t array) ~tid ~lo ~hi =
  let pt = thread t tid in
  let i = lower_bound pt.delayed_times lo in
  if i < Array.length pt.delayed_times && pt.delayed_times.(i) <= hi then
    Some events.(pt.delayed_positions.(i))
  else None

let has_delayed_in t ~tid ~lo ~hi =
  let pt = thread t tid in
  let i = lower_bound pt.delayed_times lo in
  i < Array.length pt.delayed_times && pt.delayed_times.(i) <= hi

let thread_event_count t tid = Array.length (thread t tid).positions

let distinct_addrs t = Array.length t.addrs_in_order

let accesses_of_addr t addr =
  match Hashtbl.find_opt t.accesses addr with Some a -> a | None -> [||]

let iter_addr_accesses t f =
  Array.iter (fun addr -> f addr (Hashtbl.find t.accesses addr)) t.addrs_in_order
