(* Query indices over one log's time-sorted event array, built once at
   construction.  Positions always refer to offsets into that array, so
   every per-thread / per-address view inherits the global (time, emission)
   order without storing events twice. *)

type per_thread = {
  positions : int array;
  times : int array;
  progress : int array;
  delayed_positions : int array;
  delayed_times : int array;
}

type t = {
  threads : (int, per_thread) Hashtbl.t;
  addrs_in_order : int array;
  accesses : (int, Event.t array) Hashtbl.t;
}

(* First index with [a.(i) >= v] ([Array.length a] if none). *)
let lower_bound (a : int array) v =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) < v then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length a)

(* First index with [a.(i) > v]. *)
let upper_bound (a : int array) v =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) <= v then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length a)

let empty_thread =
  {
    positions = [||];
    times = [||];
    progress = [| 0 |];
    delayed_positions = [||];
    delayed_times = [||];
  }

(* Generic build over hashtable counters/cursors: works for arbitrary tid
   and address values, at ~4 hashtable probes per event. *)
let build_sparse (events : Event.t array) =
  let n = Array.length events in
  (* Counting pass: sizes per thread / address, address first-seen order. *)
  let tcount : (int, int ref) Hashtbl.t = Hashtbl.create 16 in
  let dcount : (int, int ref) Hashtbl.t = Hashtbl.create 16 in
  let acount : (int, int ref) Hashtbl.t = Hashtbl.create 64 in
  let addr_order = ref [] in
  let bump tbl key =
    match Hashtbl.find_opt tbl key with
    | Some r ->
      incr r;
      false
    | None ->
      Hashtbl.add tbl key (ref 1);
      true
  in
  for i = 0 to n - 1 do
    let e = events.(i) in
    ignore (bump tcount e.tid);
    if e.delayed_by > 0 then ignore (bump dcount e.tid);
    if Opid.is_access e.op then
      if bump acount e.target then addr_order := e.target :: !addr_order
  done;
  let threads = Hashtbl.create (Hashtbl.length tcount) in
  Hashtbl.iter
    (fun tid c ->
      let nd =
        match Hashtbl.find_opt dcount tid with Some r -> !r | None -> 0
      in
      Hashtbl.add threads tid
        {
          positions = Array.make !c 0;
          times = Array.make !c 0;
          progress = Array.make (!c + 1) 0;
          delayed_positions = Array.make nd 0;
          delayed_times = Array.make nd 0;
        })
    tcount;
  let accesses = Hashtbl.create (Hashtbl.length acount) in
  let dummy = Event.make ~time:0 ~tid:0 ~op:(Opid.read ~cls:"" "") () in
  Hashtbl.iter
    (fun addr c -> Hashtbl.add accesses addr (Array.make !c dummy))
    acount;
  (* Filling pass, with per-key cursors. *)
  let tcur : (int, int ref) Hashtbl.t = Hashtbl.create 16 in
  let dcur : (int, int ref) Hashtbl.t = Hashtbl.create 16 in
  let acur : (int, int ref) Hashtbl.t = Hashtbl.create 64 in
  let cursor tbl key =
    match Hashtbl.find_opt tbl key with
    | Some r -> r
    | None ->
      let r = ref 0 in
      Hashtbl.add tbl key r;
      r
  in
  for i = 0 to n - 1 do
    let e = events.(i) in
    let pt = Hashtbl.find threads e.tid in
    let c = cursor tcur e.tid in
    pt.positions.(!c) <- i;
    pt.times.(!c) <- e.time;
    pt.progress.(!c + 1) <-
      (pt.progress.(!c) + match e.op.kind with Opid.Read -> 0 | _ -> 1);
    incr c;
    if e.delayed_by > 0 then begin
      let c = cursor dcur e.tid in
      pt.delayed_positions.(!c) <- i;
      pt.delayed_times.(!c) <- e.time;
      incr c
    end;
    if Opid.is_access e.op then begin
      let arr = Hashtbl.find accesses e.target in
      let c = cursor acur e.target in
      arr.(!c) <- e;
      incr c
    end
  done;
  {
    threads;
    addrs_in_order = Array.of_list (List.rev !addr_order);
    accesses;
  }

(* The dense builds below use plain-array counters and cursors, for logs
   whose tids and addresses are dense small ints.  The hashtable probes
   of [build_sparse] dominate index construction (~200 ns/event measured
   on the stress log), which caps binary-trace ingest; here the
   per-event work is a handful of array reads and writes.  The resulting
   structure (and therefore every query) is identical — the hashtables
   are still populated, but once per thread/address instead of per
   event. *)

(* Allocation + fill from precomputed per-key counts: the shared second
   half of the dense builds.  [tcount]/[dcount] must bound every tid in
   [events] (lengths >= nt), [acount] every access target (length >= na),
   and the counts must be exact — the per-thread / per-address arrays are
   sized from them, so the cursor-driven writes below are in bounds by
   construction and use unsafe accesses (this loop runs per event on the
   ingest path). *)
let fill_dense (events : Event.t array) ~nt ~na ~tcount ~dcount ~acount
    ~addr_order_rev ~distinct =
  let n = Array.length events in
  let threads = Hashtbl.create 16 in
  (* [empty_thread] pads the inactive slots and is never written: active
     tids get fresh records below. *)
  let pts = Array.make nt empty_thread in
  for tid = 0 to nt - 1 do
    if tcount.(tid) > 0 then begin
      let pt =
        {
          positions = Array.make tcount.(tid) 0;
          times = Array.make tcount.(tid) 0;
          progress = Array.make (tcount.(tid) + 1) 0;
          delayed_positions = Array.make dcount.(tid) 0;
          delayed_times = Array.make dcount.(tid) 0;
        }
      in
      pts.(tid) <- pt;
      Hashtbl.add threads tid pt
    end
  done;
  let accesses = Hashtbl.create (max 16 distinct) in
  let dummy = Event.make ~time:0 ~tid:0 ~op:(Opid.read ~cls:"" "") () in
  let arrs = Array.make na [||] in
  for addr = 0 to na - 1 do
    if acount.(addr) > 0 then begin
      let a = Array.make acount.(addr) dummy in
      arrs.(addr) <- a;
      Hashtbl.add accesses addr a
    end
  done;
  let tcur = Array.make nt 0 and dcur = Array.make nt 0 in
  let acur = Array.make na 0 in
  for i = 0 to n - 1 do
    let e = Array.unsafe_get events i in
    let pt = Array.unsafe_get pts e.tid in
    let c = Array.unsafe_get tcur e.tid in
    Array.unsafe_set pt.positions c i;
    Array.unsafe_set pt.times c e.time;
    Array.unsafe_set pt.progress (c + 1)
      (Array.unsafe_get pt.progress c + match e.op.kind with Opid.Read -> 0 | _ -> 1);
    Array.unsafe_set tcur e.tid (c + 1);
    if e.delayed_by > 0 then begin
      let c = Array.unsafe_get dcur e.tid in
      Array.unsafe_set pt.delayed_positions c i;
      Array.unsafe_set pt.delayed_times c e.time;
      Array.unsafe_set dcur e.tid (c + 1)
    end;
    if (match e.op.kind with Opid.Read | Opid.Write -> true | _ -> false)
    then begin
      let a = Array.unsafe_get arrs e.target in
      let c = Array.unsafe_get acur e.target in
      Array.unsafe_set a c e;
      Array.unsafe_set acur e.target (c + 1)
    end
  done;
  {
    threads;
    addrs_in_order = Array.of_list (List.rev addr_order_rev);
    accesses;
  }

let build_dense (events : Event.t array) ~max_tid ~max_addr =
  let n = Array.length events in
  let nt = max_tid + 1 and na = max_addr + 1 in
  let tcount = Array.make nt 0 in
  let dcount = Array.make nt 0 in
  let acount = Array.make na 0 in
  let addr_order = ref [] in
  let distinct = ref 0 in
  (* The caller has verified every tid is in [0, max_tid] and every
     access target in [0, max_addr] (see the dispatching [build]), so
     the counter indexing is in bounds by construction. *)
  for i = 0 to n - 1 do
    let e = Array.unsafe_get events i in
    Array.unsafe_set tcount e.tid (Array.unsafe_get tcount e.tid + 1);
    if e.delayed_by > 0 then
      Array.unsafe_set dcount e.tid (Array.unsafe_get dcount e.tid + 1);
    if (match e.op.kind with Opid.Read | Opid.Write -> true | _ -> false)
    then begin
      if Array.unsafe_get acount e.target = 0 then begin
        addr_order := e.target :: !addr_order;
        incr distinct
      end;
      Array.unsafe_set acount e.target (Array.unsafe_get acount e.target + 1)
    end
  done;
  fill_dense events ~nt ~na ~tcount ~dcount ~acount
    ~addr_order_rev:!addr_order ~distinct:!distinct

(* Incremental front half of the dense build, for deserializers: they
   call [note] once per event from inside their decode loop, so the
   counting pass above happens for free while the event records are
   being materialized, and [finish] only runs the fill.  One full scan
   of the (cache-cold, multi-MB) record array less than [build]. *)
module Dense_builder = struct
  type t = {
    limit : int;
    mutable tcount : int array;
    mutable dcount : int array;
    mutable acount : int array;
    mutable addr_order_rev : int list;
    mutable distinct : int;
    mutable max_tid : int;
    mutable max_addr : int;
    mutable dense : bool;
  }

  let create ~events:n =
    {
      limit = (4 * n) + 1024;
      tcount = Array.make 64 0;
      dcount = Array.make 64 0;
      acount = Array.make 1024 0;
      addr_order_rev = [];
      distinct = 0;
      max_tid = -1;
      max_addr = -1;
      dense = true;
    }

  let grow a need =
    let len = ref (2 * Array.length a) in
    while !len <= need do
      len := 2 * !len
    done;
    let b = Array.make !len 0 in
    Array.blit a 0 b 0 (Array.length a);
    b

  let note b ~tid ~target ~delayed ~is_access =
    if tid < 0 || tid > b.limit then b.dense <- false
    else begin
      if tid >= Array.length b.tcount then begin
        b.tcount <- grow b.tcount tid;
        b.dcount <- grow b.dcount tid
      end;
      Array.unsafe_set b.tcount tid (Array.unsafe_get b.tcount tid + 1);
      if delayed then
        Array.unsafe_set b.dcount tid (Array.unsafe_get b.dcount tid + 1);
      if tid > b.max_tid then b.max_tid <- tid
    end;
    if is_access then
      if target < 0 || target > b.limit then b.dense <- false
      else begin
        if target >= Array.length b.acount then b.acount <- grow b.acount target;
        let c = Array.unsafe_get b.acount target in
        if c = 0 then begin
          b.addr_order_rev <- target :: b.addr_order_rev;
          b.distinct <- b.distinct + 1
        end;
        Array.unsafe_set b.acount target (c + 1);
        if target > b.max_addr then b.max_addr <- target
      end

  let finish b events =
    if not b.dense then None
    else
      Some
        (fill_dense events ~nt:(b.max_tid + 1) ~na:(b.max_addr + 1)
           ~tcount:b.tcount ~dcount:b.dcount ~acount:b.acount
           ~addr_order_rev:b.addr_order_rev ~distinct:b.distinct)
end

(* The simulator allocates tids and heap addresses from one sequential
   counter, so real logs always take the dense path; the sparse path
   covers synthetic or foreign logs with arbitrary ids. *)
let build (events : Event.t array) =
  let n = Array.length events in
  let limit = (4 * n) + 1024 in
  let max_tid = ref (-1) and max_addr = ref (-1) in
  let dense = ref true in
  for i = 0 to n - 1 do
    let e = Array.unsafe_get events i in
    if e.tid < 0 || e.tid > limit then dense := false
    else if e.tid > !max_tid then max_tid := e.tid;
    if Opid.is_access e.op then
      if e.target < 0 || e.target > limit then dense := false
      else if e.target > !max_addr then max_addr := e.target
  done;
  if !dense then build_dense events ~max_tid:!max_tid ~max_addr:!max_addr
  else build_sparse events

let thread t tid =
  match Hashtbl.find_opt t.threads tid with
  | Some pt -> pt
  | None -> empty_thread

(* Events of [tid] with [lo <= time <= hi], folded in time order. *)
let fold_thread_in t (events : Event.t array) ~tid ~lo ~hi ~init ~f =
  let pt = thread t tid in
  let i = lower_bound pt.times lo in
  let j = upper_bound pt.times hi in
  let acc = ref init in
  for k = i to j - 1 do
    acc := f !acc events.(pt.positions.(k))
  done;
  !acc

(* Number of non-Read ("progress") events of [tid] with [lo <= time <= hi]. *)
let progress_count t ~tid ~lo ~hi =
  let pt = thread t tid in
  let i = lower_bound pt.times lo in
  let j = upper_bound pt.times hi in
  if j <= i then 0 else pt.progress.(j) - pt.progress.(i)

(* First (in time, ties by emission order) delayed event of [tid] with
   [lo <= time <= hi]. *)
let first_delayed_in t (events : Event.t array) ~tid ~lo ~hi =
  let pt = thread t tid in
  let i = lower_bound pt.delayed_times lo in
  if i < Array.length pt.delayed_times && pt.delayed_times.(i) <= hi then
    Some events.(pt.delayed_positions.(i))
  else None

let has_delayed_in t ~tid ~lo ~hi =
  let pt = thread t tid in
  let i = lower_bound pt.delayed_times lo in
  i < Array.length pt.delayed_times && pt.delayed_times.(i) <= hi

let thread_event_count t tid = Array.length (thread t tid).positions

let distinct_addrs t = Array.length t.addrs_in_order

let accesses_of_addr t addr =
  match Hashtbl.find_opt t.accesses addr with Some a -> a | None -> [||]

let iter_addr_accesses t f =
  Array.iter (fun addr -> f addr (Hashtbl.find t.accesses addr)) t.addrs_in_order

let addrs_in_order t = t.addrs_in_order
