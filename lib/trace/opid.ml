type kind =
  | Read
  | Write
  | Begin
  | End

type t = {
  cls : string;
  member : string;
  kind : kind;
}

(* Operation names flow into both trace formats — space-delimited text
   lines and length-prefixed binary table entries — and into every report.
   Whitespace or control characters would corrupt the text framing, so
   they are rejected here, at the only point with a useful stack, instead
   of surfacing as a serialization error long after the name was minted. *)
let check_name s =
  String.iter
    (fun c ->
      if c <= ' ' || c = '\x7f' then
        invalid_arg
          (Printf.sprintf "Opid: invalid character %C in operation name %S" c s))
    s

let make cls member kind =
  check_name cls;
  check_name member;
  { cls; member; kind }

let read ~cls member = make cls member Read
let write ~cls member = make cls member Write
let enter ~cls member = make cls member Begin
let exit ~cls member = make cls member End

let kind_rank = function Read -> 0 | Write -> 1 | Begin -> 2 | End -> 3

let compare a b =
  match String.compare a.cls b.cls with
  | 0 -> (
    match String.compare a.member b.member with
    | 0 -> Int.compare (kind_rank a.kind) (kind_rank b.kind)
    | c -> c)
  | c -> c

let equal a b = compare a b = 0

let hash t = Hashtbl.hash (t.cls, t.member, kind_rank t.kind)

let is_access t = match t.kind with Read | Write -> true | Begin | End -> false

let is_frame t = not (is_access t)

let has_prefix p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* Framework namespaces, mirroring the instrumentation whitelist of the
   paper's artifact.  Deliberately narrower than "System.*": applications
   like System.Linq.Dynamic live under System yet are application code. *)
let system_prefixes =
  [
    "System.Threading";
    "System.Collections";
    "System.IO";
    "System.Net";
    "System.Runtime";
    "Microsoft.";
  ]

let is_system t = List.exists (fun p -> has_prefix p t.cls) system_prefixes

let method_key t = t.cls ^ "::" ^ t.member

let field_key = method_key

let counterpart t =
  let kind =
    match t.kind with Read -> Write | Write -> Read | Begin -> End | End -> Begin
  in
  { t with kind }

let kind_name = function
  | Read -> "Read"
  | Write -> "Write"
  | Begin -> "Begin"
  | End -> "End"

let to_string t =
  match t.kind with
  | Read -> "Read-" ^ method_key t
  | Write -> "Write-" ^ method_key t
  | Begin -> method_key t ^ "-Begin"
  | End -> method_key t ^ "-End"

let pp ppf t = Format.pp_print_string ppf (to_string t)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
