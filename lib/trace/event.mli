(** One trace record, matching the paper's log-entry content (§4.1):
    timestamp, thread id, operation type, and the field address or parent
    object id.  We additionally record the virtual delay that the
    Perturber injected immediately before the operation, which is what the
    delay-propagation check consumes. *)

type t = {
  time : int;       (** virtual timestamp in microseconds, at op completion *)
  tid : int;        (** simulated thread id *)
  op : Opid.t;
  target : int;     (** field address for accesses, parent object id for
                        frames; 0 when the method has no parent object *)
  delayed_by : int; (** virtual delay injected right before this op; 0 = none *)
}

val make : time:int -> tid:int -> op:Opid.t -> ?target:int -> ?delayed_by:int -> unit -> t

val pp : Format.formatter -> t -> unit
