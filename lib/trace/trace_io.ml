(* Format-dispatching front for trace files: sniffs the leading magic
   bytes and routes to the text codec below or to [Trace_bin].  The text
   format remains the import/debug path (and the default for [save]);
   the binary format is the fast path for large logs. *)

type format = Text | Binary

let magic = "sherlock-trace 1"

let kind_char = function
  | Opid.Read -> 'r'
  | Opid.Write -> 'w'
  | Opid.Begin -> 'b'
  | Opid.End -> 'e'

let kind_of_char = function
  | 'r' -> Opid.Read
  | 'w' -> Opid.Write
  | 'b' -> Opid.Begin
  | 'e' -> Opid.End
  | c -> failwith (Printf.sprintf "Trace_io: bad kind %C" c)

(* Serialization appends fields straight into the buffer (no per-field
   [Printf.sprintf] round-trips): a large trace is dominated by its event
   lines, and format interpretation plus the intermediate strings showed
   up in profiles. *)
let add_int buf n =
  Buffer.add_string buf (string_of_int n)

let to_buffer (log : Log.t) =
  let buf = Buffer.create (256 + (Array.length log.events * 48)) in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  Buffer.add_string buf "duration ";
  add_int buf log.duration;
  Buffer.add_char buf '\n';
  Buffer.add_string buf "threads ";
  add_int buf log.threads;
  Buffer.add_char buf '\n';
  Hashtbl.iter
    (fun addr () ->
      Buffer.add_string buf "volatile ";
      add_int buf addr;
      Buffer.add_char buf '\n')
    log.volatile_addrs;
  Array.iter
    (fun (e : Event.t) ->
      (* Re-checked here even though the constructors validate: [Opid.t]
         is a concrete record, so hand-built values can bypass them, and
         a name with a space would shear the event line into extra
         fields. *)
      Opid.check_name e.op.cls;
      Opid.check_name e.op.member;
      Buffer.add_string buf "e ";
      add_int buf e.time;
      Buffer.add_char buf ' ';
      add_int buf e.tid;
      Buffer.add_char buf ' ';
      Buffer.add_char buf (kind_char e.op.kind);
      Buffer.add_char buf ' ';
      add_int buf e.target;
      Buffer.add_char buf ' ';
      add_int buf e.delayed_by;
      Buffer.add_char buf ' ';
      Buffer.add_string buf e.op.cls;
      Buffer.add_char buf ' ';
      Buffer.add_string buf e.op.member;
      Buffer.add_char buf '\n')
    log.events;
  buf

let of_string_text ?(path = "<string>") s =
  let lines = String.split_on_char '\n' s in
  (* Parse errors carry file:line (1-based, counting the magic line) so a
     truncated or garbled trace file points straight at the bad spot. *)
  let malformed lineno line =
    failwith (Printf.sprintf "%s:%d: Trace_io: malformed line: %s" path lineno line)
  in
  match lines with
  | first :: rest when first = magic ->
    let duration = ref 0 in
    let threads = ref 0 in
    let volatile_addrs = Hashtbl.create 8 in
    let events = ref [] in
    let parse_line lineno line =
      match String.split_on_char ' ' line with
        | [ "" ] | [] -> ()
        | [ "duration"; d ] -> duration := int_of_string d
        | [ "threads"; n ] -> threads := int_of_string n
        | [ "volatile"; a ] -> Hashtbl.replace volatile_addrs (int_of_string a) ()
        | [ "e"; time; tid; kind; target; delayed_by; cls; member ] ->
          let op = { Opid.cls; member; kind = kind_of_char kind.[0] } in
          events :=
            Event.make ~time:(int_of_string time) ~tid:(int_of_string tid) ~op
              ~target:(int_of_string target)
              ~delayed_by:(int_of_string delayed_by)
              ()
            :: !events
      | _ -> malformed lineno line
    in
    List.iteri
      (fun i line ->
        let lineno = i + 2 in
        try parse_line lineno line
        with Failure msg
          when msg = "int_of_string"
               || (String.length msg >= 14 && String.sub msg 0 14 = "Trace_io: bad ") ->
          malformed lineno line)
      rest;
    Log.create ~events:(List.rev !events) ~duration:!duration ~threads:!threads
      ~volatile_addrs
  | _ -> failwith (Printf.sprintf "%s:1: Trace_io: bad magic" path)

(* ------------------------------------------------------------------ *)
(* Dispatch *)

let sniff s =
  let bl = String.length Trace_bin.magic in
  if String.length s >= bl && String.sub s 0 bl = Trace_bin.magic then Binary
  else Text

let format_of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = min (in_channel_length ic) (String.length Trace_bin.magic) in
      sniff (really_input_string ic n))

let format_name = function Text -> "text" | Binary -> "binary"

let to_string ?(format = Text) log =
  match format with
  | Text -> Buffer.contents (to_buffer log)
  | Binary -> Trace_bin.to_string log

let of_string ?path s =
  match sniff s with
  | Binary -> Trace_bin.of_string ?path s
  | Text -> of_string_text ?path s

let save ?(format = Text) log path =
  match format with
  | Binary -> Trace_bin.save log path
  | Text ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> Buffer.output_buffer oc (to_buffer log))

let load path =
  match format_of_file path with
  | Binary -> Trace_bin.load path
  | Text ->
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> of_string_text ~path (really_input_string ic (in_channel_length ic)))
