(** Trace serialization — the artifact's log-file workflow.

    The paper's pipeline writes execution logs to disk during the
    instrumented runs and solves from those files afterwards; this module
    provides the same decoupling, in two on-disk formats behind one
    front:

    - {b Text} (default for {!save}) — the line-oriented debug/import
      format:
      {v
      sherlock-trace 1
      duration <us>
      threads <n>
      volatile <addr>            (zero or more)
      e <time> <tid> <kind> <target> <delayed_by> <cls> <member>
      v}
      where [kind] is one of [r w b e].  Class and member names must not
      contain whitespace (C# qualified names never do).
    - {b Binary} — the framed, interned, mmap-backed format of
      {!Trace_bin}, for large logs.

    Readers ({!load}, {!of_string}) never need a format argument: they
    sniff the leading magic bytes and dispatch. *)

type format = Text | Binary

val format_of_file : string -> format
(** Sniff the magic bytes of the file at [path].  Files that are neither
    format report [Text] (and then fail in the text parser with a
    positioned message).  Raises [Sys_error] if unreadable. *)

val format_name : format -> string
(** ["text"] or ["binary"]. *)

val save : ?format:format -> Log.t -> string -> unit
(** Write the log to a file ([format] defaults to [Text]).  Raises
    [Sys_error] on IO failure and [Invalid_argument] if an operation
    name contains whitespace or control characters. *)

val load : string -> Log.t
(** Read a log back, auto-detecting the format.  Raises [Failure] on
    malformed input; the message starts with ["file:line:"] (text) or
    ["file: byte N:"] (binary) pointing at the offending input. *)

val to_string : ?format:format -> Log.t -> string

val of_string : ?path:string -> string -> Log.t
(** Auto-detecting decode; [path] (default ["<string>"]) is only used to
    label parse errors. *)
