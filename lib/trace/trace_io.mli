(** Trace serialization — the artifact's log-file workflow.

    The paper's pipeline writes execution logs to disk during the
    instrumented runs and solves from those files afterwards; this module
    provides the same decoupling.  The format is a line-oriented text
    file:

    {v
    sherlock-trace 1
    duration <us>
    threads <n>
    volatile <addr>            (zero or more)
    e <time> <tid> <kind> <target> <delayed_by> <cls> <member>
    v}

    where [kind] is one of [r w b e].  Class and member names must not
    contain whitespace (C# qualified names never do). *)

val save : Log.t -> string -> unit
(** Write the log to a file.  Raises [Sys_error] on IO failure and
    [Invalid_argument] if an operation name contains whitespace. *)

val load : string -> Log.t
(** Read a log back.  Raises [Failure] on malformed input; the message
    starts with ["file:line:"] pointing at the offending line. *)

val to_string : Log.t -> string

val of_string : ?path:string -> string -> Log.t
(** [path] (default ["<string>"]) is only used to label parse errors. *)
