open Sherlock_trace
open Sherlock_core
open Sherlock_sim

type pair = {
  first : Opid.t;
  second : Opid.t;
}

type outcome = {
  candidate_pairs : pair list;
  tsvd_hb : pair list;
  sherlock_hb : pair list;
}

let unsafe_cls = "System.Collections.Generic.List"

let unsafe_classes =
  [ unsafe_cls; "System.Collections.Generic.Dictionary" ]

let is_unsafe_call (e : Event.t) =
  List.mem e.op.cls unsafe_classes && Opid.is_access e.op

let dedup pairs =
  List.sort_uniq
    (fun a b ->
      match Opid.compare a.first b.first with
      | 0 -> Opid.compare a.second b.second
      | c -> c)
    pairs

(* Conflicting unsafe-call pairs with their dynamic witnesses.  The
   per-address access index already partitions calls by target, so only
   same-address calls within the [near] horizon are ever paired (the seed
   scanned all O(n^2) unsafe-call pairs of the whole log).  Callers dedup,
   so the per-address emission order is immaterial. *)
let conflicting_events ?(near = 1_000_000) (log : Log.t) =
  let found = ref [] in
  Log.iter_addr_accesses log (fun _addr accesses ->
      let calls =
        Array.of_seq (Seq.filter is_unsafe_call (Array.to_seq accesses))
      in
      let n = Array.length calls in
      for i = 0 to n - 1 do
        let a = calls.(i) in
        let j = ref (i + 1) in
        while !j < n && (calls.(!j) : Event.t).time - a.time <= near do
          let b = calls.(!j) in
          if a.tid <> b.tid && (a.op.kind = Opid.Write || b.op.kind = Opid.Write)
          then found := (a, b) :: !found;
          incr j
        done
      done);
  List.rev !found

let conflicting_pairs ?near log =
  dedup
    (List.map (fun ((a : Event.t), (b : Event.t)) -> { first = a.op; second = b.op })
       (conflicting_events ?near log))

(* TSVD's probe: rerun with a delay before every instance of [victim] and
   report whether some conflicting pair on it saw the other thread stall
   for the delay. *)
let probe_delay (config : Config.t) (subject : Orchestrator.subject) victim =
  let delay_before op = if Opid.equal op victim then config.delay_us else 0 in
  let stalled_pairs = ref [] in
  List.iteri
    (fun test_index (_name, body) ->
      let seed =
        Orchestrator.test_seed ~base:config.seed ~round:97 ~test_index
      in
      let log =
        Runtime.run ~seed ~instrument:(Runtime.tracing ~delay_before ()) body
      in
      List.iter
        (fun ((a : Event.t), (b : Event.t)) ->
          (* TSVD can attribute a stall only when the second call fires
             shortly after the delayed first one completes; a distant pair
             yields no signal even if it is synchronized. *)
          if
            Opid.equal a.op victim && a.delayed_by > 0
            && b.time - a.time <= a.delayed_by + 200_000
          then begin
            (* Non-read activity of the victim's counterpart thread during
               the injected delay, via the per-thread progress index. *)
            let made_progress =
              Log.progress_count log ~tid:b.tid ~lo:(a.time - a.delayed_by)
                ~hi:(a.time - 1)
              > 0
            in
            if not made_progress then
              stalled_pairs := { first = a.op; second = b.op } :: !stalled_pairs
          end)
        (conflicting_events ~near:config.near log))
    subject.tests;
  dedup !stalled_pairs

let analyze ?(config = Config.default) (subject : Orchestrator.subject) verdicts =
  let logs = Orchestrator.run_test_logs ~config subject in
  let candidates = dedup (List.concat_map (conflicting_pairs ~near:config.near) logs) in
  let victims =
    List.sort_uniq Opid.compare (List.map (fun p -> p.first) candidates)
  in
  let tsvd_hb =
    dedup (List.concat_map (probe_delay config subject) victims)
    |> List.filter (fun p -> List.mem p candidates)
  in
  (* SherLock side: a candidate pair counts as synchronized when the
     detector under the inferred model finds no race on the unsafe
     collection ops involved. *)
  let model = Sherlock_fasttrack.Sync_model.inferred verdicts in
  let racy_fields = Hashtbl.create 8 in
  List.iter
    (fun log ->
      let report = Sherlock_fasttrack.Detector.run model log in
      List.iter
        (fun (r : Sherlock_fasttrack.Detector.race) ->
          Hashtbl.replace racy_fields r.field ())
        report.races)
    logs;
  let sherlock_hb =
    List.filter
      (fun p ->
        (not (Hashtbl.mem racy_fields (Opid.field_key p.first)))
        && not (Hashtbl.mem racy_fields (Opid.field_key p.second)))
      candidates
  in
  { candidate_pairs = candidates; tsvd_hb; sherlock_hb }
