(** A simplified TSVD (Li et al., SOSP'19) happens-before inference
    baseline, for the paper's §5.6 "Enhancing TSVD inference" experiment.

    TSVD targets *thread-unsafe API calls* (here, the corpus's
    [Unsafe_list] operations).  It finds conflicting call pairs — same
    collection, different threads, at least one mutator, close in time —
    and then injects a delay before the first call of a pair; if the
    other thread stalls for the duration (the delay "propagates"), the
    pair is inferred to be synchronized.

    The comparison point is how many of the same conflicting pairs
    SherLock's inferred synchronizations prove ordered: we run the
    FastTrack detector under the inferred model and call a pair
    synchronized when its collection shows no race. *)

open Sherlock_trace
open Sherlock_core

type pair = {
  first : Opid.t;
  second : Opid.t;
}

type outcome = {
  candidate_pairs : pair list;   (** distinct conflicting static pairs *)
  tsvd_hb : pair list;           (** pairs TSVD's delay probing orders *)
  sherlock_hb : pair list;       (** pairs ordered under inferred syncs *)
}

val unsafe_cls : string
(** ["System.Collections.Generic.List"]. *)

val unsafe_classes : string list
(** The instrumented thread-unsafe collection classes (paper §4.1's
    optional API list). *)

val conflicting_pairs : ?near:int -> Log.t -> pair list
(** Distinct conflicting unsafe-API static pairs in one trace. *)

val analyze : ?config:Config.t -> Orchestrator.subject -> Verdict.t list -> outcome
(** Run the full comparison on one application's test suite. *)
