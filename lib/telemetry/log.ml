(* Structured logging: levelled events with key/value context, rendered
   as one JSON object per line (JSONL).  The pipeline's fault-handling
   paths — supervised retries, LP degradation, the scheduler watchdog —
   emit through here so operational events are grep-able and
   machine-parseable instead of ad-hoc [eprintf] lines.

   Emission is a no-op (one atomic load) until a sink is installed, so
   instrumented code logs unconditionally; the CLI installs a sink only
   when the user asks ([--log-out] or [SHERLOCK_LOG]).  All sink state
   sits behind one mutex: events from worker domains interleave as whole
   lines, never as interleaved bytes. *)

type level = Debug | Info | Warn | Error

let level_priority = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type value = Int of int | Float of float | Bool of bool | Str of string

type sink =
  | Null
  | Chan of { oc : out_channel; close : bool }
  | Writer of (string -> unit)

type state = {
  mutex : Mutex.t;
  mutable sink : sink;
  mutable min_level : level;
  mutable t0 : float;  (* installation time; elapsed_s is relative to it *)
}

let state =
  { mutex = Mutex.create (); sink = Null; min_level = Debug; t0 = 0.0 }

(* The fast path ([emit] with no sink) must not take the mutex, so the
   "a sink is installed" bit is mirrored into an atomic. *)
let active = Atomic.make false

let enabled level =
  Atomic.get active && level_priority level >= level_priority state.min_level

let set_level l =
  Mutex.lock state.mutex;
  state.min_level <- l;
  Mutex.unlock state.mutex

(* With the mutex held. *)
let close_current_sink () =
  match state.sink with
  | Chan { oc; close } ->
    flush oc;
    if close then close_out_noerr oc
  | Null | Writer _ -> ()

let install sink =
  Mutex.lock state.mutex;
  close_current_sink ();
  state.sink <- sink;
  state.t0 <- Unix.gettimeofday ();
  Atomic.set active (sink <> Null);
  Mutex.unlock state.mutex

let set_writer = function
  | None -> install Null
  | Some w -> install (Writer w)

let to_file path = install (Chan { oc = open_out path; close = true })

let to_stderr () = install (Chan { oc = stderr; close = false })

let close () = install Null

let init_from_env () =
  match Sys.getenv_opt "SHERLOCK_LOG" with
  | None | Some "" -> ()
  | Some "stderr" -> to_stderr ()
  | Some spec -> (
    (* "PATH" or "LEVEL:PATH" (e.g. "warn:/tmp/sherlock.jsonl"). *)
    match String.index_opt spec ':' with
    | Some i
      when Option.is_some (level_of_string (String.sub spec 0 i))
           && i + 1 < String.length spec ->
      let level = Option.get (level_of_string (String.sub spec 0 i)) in
      let path = String.sub spec (i + 1) (String.length spec - i - 1) in
      if path = "stderr" then to_stderr () else to_file path;
      set_level level
    | _ -> to_file spec)

let buf_add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let buf_add_value b = function
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
    (* JSON has no nan/infinity literal; null keeps the line parseable. *)
    if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.6g" f)
    else Buffer.add_string b "null"
  | Bool bo -> Buffer.add_string b (if bo then "true" else "false")
  | Str s -> buf_add_json_string b s

let render level event fields ~ts ~elapsed ~domain =
  let b = Buffer.create 160 in
  Buffer.add_string b (Printf.sprintf {|{"ts":%.6f,"elapsed_s":%.6f,|} ts elapsed);
  Buffer.add_string b {|"level":|};
  buf_add_json_string b (level_name level);
  Buffer.add_string b {|,"event":|};
  buf_add_json_string b event;
  Buffer.add_string b (Printf.sprintf {|,"domain":%d|} domain);
  List.iter
    (fun (k, v) ->
      Buffer.add_char b ',';
      buf_add_json_string b k;
      Buffer.add_char b ':';
      buf_add_value b v)
    fields;
  Buffer.add_char b '}';
  Buffer.contents b

let emit level event fields =
  if enabled level then begin
    let ts = Unix.gettimeofday () in
    let domain = (Domain.self () :> int) in
    Mutex.lock state.mutex;
    (* Re-check under the mutex: the sink may have been closed between
       the fast-path test and here. *)
    (match state.sink with
    | Null -> ()
    | sink ->
      let line =
        render level event fields ~ts ~elapsed:(ts -. state.t0) ~domain
      in
      (match sink with
      | Null -> ()
      | Chan { oc; _ } ->
        output_string oc line;
        output_char oc '\n';
        (* Flushed per event so an external `tail -f` sees fault events
           as they happen; every emitting path is cold. *)
        flush oc
      | Writer w -> w line));
    Mutex.unlock state.mutex
  end

let debug event fields = emit Debug event fields

let info event fields = emit Info event fields

let warn event fields = emit Warn event fields

let error event fields = emit Error event fields
