(** OpenMetrics / Prometheus text exposition of metrics snapshots, and
    the parser that reads expositions back for [sherlock stats] and the
    smoke checks.

    Registry names are mangled to legal metric names
    ([[a-z_:][a-z0-9_:]*]): prefixed ["sherlock_"], lowercased, illegal
    characters mapped to ['_'].  Counters get the ["_total"] suffix;
    histograms expose cumulative [_bucket{le="..."}] series (power-of-two
    upper bounds matching {!Metrics.Histogram}'s buckets) plus [_sum] and
    [_count].  The raw registry name is kept in each family's HELP
    text. *)

type mtype = MCounter | MGauge | MHistogram | MUnknown

val mtype_name : mtype -> string

val mangle : string -> string
(** [mangle "windows.span_cache.hit"] is
    ["sherlock_windows_span_cache_hit"]. *)

val valid_name : string -> bool
(** Matches the OpenMetrics metric-name grammar [[a-z_:][a-z0-9_:]*]
    (lowercase-only, as this exporter emits). *)

val of_point : Snapshot.point -> string
(** Full exposition of one snapshot: [# HELP]/[# TYPE] per family, every
    counter / gauge / histogram, two self-description gauges
    ([sherlock_snapshot_timestamp_seconds], [sherlock_snapshot_seq]),
    terminated by [# EOF]. *)

val to_string : ?registry:Metrics.registry -> unit -> string
(** Capture an ephemeral snapshot of [registry] (default
    {!Metrics.default}) and render it with {!of_point}. *)

val write_atomic : string -> string -> unit
(** [write_atomic path contents] writes to [path ^ ".tmp"] then renames
    over [path], so a concurrent reader never observes a partial
    exposition. *)

(** {1 Parsing} *)

type sample = {
  s_series : string;  (** full series name, e.g. ["sherlock_x_bucket"] *)
  s_labels : (string * string) list;
  s_value : float;
}

type family = {
  f_name : string;
  f_type : mtype;
  f_help : string option;
  mutable f_samples : sample list;  (** file order *)
}

val parse : string -> (family list, string) result
(** Parse an exposition (families in declaration order).  Validates
    series names against {!valid_name}, label syntax, sample values, and
    the [# EOF] terminator; errors carry the 1-based line number.
    Samples with a conventional suffix ([_total], [_bucket], [_sum],
    [_count]) attach to their declared base family. *)

val parse_file : string -> (family list, string) result
