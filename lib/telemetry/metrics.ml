let enabled_flag = Atomic.make false

let set_enabled b = Atomic.set enabled_flag b

let enabled () = Atomic.get enabled_flag

module Counter = struct
  type t = { name : string; v : int Atomic.t }

  let make name = { name; v = Atomic.make 0 }

  let name t = t.name

  let incr ?(by = 1) t = ignore (Atomic.fetch_and_add t.v by)

  let value t = Atomic.get t.v
end

module Histogram = struct
  (* Bucket [i] counts observations in (2^(i-1), 2^i]; bucket 0 counts
     everything <= 1 (including non-positive values). *)
  let num_buckets = 63

  type t = {
    name : string;
    mutex : Mutex.t;
    mutable count : int;
    mutable sum : float;
    mutable min_v : float;
    mutable max_v : float;
    buckets : int array;
  }

  let make name =
    {
      name;
      mutex = Mutex.create ();
      count = 0;
      sum = 0.0;
      min_v = infinity;
      max_v = neg_infinity;
      buckets = Array.make num_buckets 0;
    }

  let name t = t.name

  let bucket_of v =
    if v <= 1.0 then 0
    else
      let i = int_of_float (ceil (Float.log2 v)) in
      if i < 0 then 0 else if i >= num_buckets then num_buckets - 1 else i

  let observe t v =
    Mutex.lock t.mutex;
    t.count <- t.count + 1;
    t.sum <- t.sum +. v;
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v;
    let b = bucket_of v in
    t.buckets.(b) <- t.buckets.(b) + 1;
    Mutex.unlock t.mutex

  let observe_int t v = observe t (float_of_int v)

  let count t = t.count

  let sum t = t.sum

  let mean t = if t.count = 0 then nan else t.sum /. float_of_int t.count

  let min_value t = t.min_v

  let max_value t = t.max_v

  type export = {
    e_count : int;
    e_sum : float;
    e_min : float;
    e_max : float;
    e_buckets : int array;
  }

  (* A coherent copy of the whole histogram, taken under its mutex: the
     snapshot/OpenMetrics paths must not observe a count that excludes
     an observation already folded into a bucket (or vice versa). *)
  let export t =
    Mutex.lock t.mutex;
    let e =
      {
        e_count = t.count;
        e_sum = t.sum;
        e_min = t.min_v;
        e_max = t.max_v;
        e_buckets = Array.copy t.buckets;
      }
    in
    Mutex.unlock t.mutex;
    e

  let percentile t p =
    if t.count = 0 then nan
    else begin
      let rank = p *. float_of_int t.count in
      let seen = ref 0 in
      let result = ref t.max_v in
      (try
         for i = 0 to num_buckets - 1 do
           seen := !seen + t.buckets.(i);
           if float_of_int !seen >= rank then begin
             (* Upper bound of the bucket, clamped into the observed range. *)
             let upper = if i = 0 then 1.0 else Float.pow 2.0 (float_of_int i) in
             result := Float.min t.max_v (Float.max t.min_v upper);
             raise Exit
           end
         done
       with Exit -> ());
      !result
    end
end

module Gauge = struct
  (* A gauge is a point-in-time level, not an accumulation: pool
     occupancy, eta-file length, heap words.  Two sources: a [Cell] the
     instrumented code sets/adds to, and a [Fn] callback evaluated at
     read time (GC statistics, pool introspection) so the producer never
     has to push updates. *)
  type source = Cell of int Atomic.t | Fn of (unit -> int)

  type t = { name : string; source : source }

  let make name = { name; source = Cell (Atomic.make 0) }

  let make_fn name f = { name; source = Fn f }

  let name t = t.name

  let set t v = match t.source with Cell c -> Atomic.set c v | Fn _ -> ()

  let add t d =
    match t.source with
    | Cell c -> ignore (Atomic.fetch_and_add c d)
    | Fn _ -> ()

  let value t =
    match t.source with
    | Cell c -> Atomic.get c
    | Fn f -> ( try f () with _ -> 0)
end

type sample = {
  sample_s : float;
  sample_label : string;
  sample_counters : (string * int) list;
}

type registry = {
  mutex : Mutex.t;
  counters : (string, Counter.t) Hashtbl.t;
  histograms : (string, Histogram.t) Hashtbl.t;
  gauges : (string, Gauge.t) Hashtbl.t;
  mutable samples : sample list; (* reversed *)
}

let create () =
  {
    mutex = Mutex.create ();
    counters = Hashtbl.create 32;
    histograms = Hashtbl.create 32;
    gauges = Hashtbl.create 32;
    samples = [];
  }

let default = create ()

let get_or_create reg tbl make name =
  Mutex.lock reg.mutex;
  let v =
    match Hashtbl.find_opt tbl name with
    | Some v -> v
    | None ->
      let v = make name in
      Hashtbl.add tbl name v;
      v
  in
  Mutex.unlock reg.mutex;
  v

let counter ?(registry = default) name =
  get_or_create registry registry.counters Counter.make name

let histogram ?(registry = default) name =
  get_or_create registry registry.histograms Histogram.make name

let gauge ?(registry = default) name =
  get_or_create registry registry.gauges Gauge.make name

(* Unlike [gauge], a callback registration always installs the given
   closure: re-installing (after a [reset], or with a closure over a
   fresher resource) must not silently keep reading the stale one. *)
let gauge_fn ?(registry = default) name f =
  Mutex.lock registry.mutex;
  let g = Gauge.make_fn name f in
  Hashtbl.replace registry.gauges name g;
  Mutex.unlock registry.mutex;
  g

let sorted_values tbl name_of =
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []
  |> List.sort (fun a b -> String.compare (name_of a) (name_of b))

let counters reg = sorted_values reg.counters Counter.name

let histograms reg = sorted_values reg.histograms Histogram.name

let gauges reg = sorted_values reg.gauges Gauge.name

let sample ?(registry = default) ~label () =
  let now = Unix.gettimeofday () in
  Mutex.lock registry.mutex;
  let sample_counters =
    Hashtbl.fold
      (fun name c acc -> (name, Counter.value c) :: acc)
      registry.counters []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  registry.samples <-
    { sample_s = now; sample_label = label; sample_counters }
    :: registry.samples;
  Mutex.unlock registry.mutex

let samples ?(registry = default) () = List.rev registry.samples

let reset reg =
  Mutex.lock reg.mutex;
  Hashtbl.reset reg.counters;
  Hashtbl.reset reg.histograms;
  Hashtbl.reset reg.gauges;
  reg.samples <- [];
  Mutex.unlock reg.mutex

let pp_summary ppf reg =
  Format.fprintf ppf "@[<v>telemetry counters:@,";
  List.iter
    (fun c -> Format.fprintf ppf "  %-42s %d@," (Counter.name c) (Counter.value c))
    (counters reg);
  (match gauges reg with
  | [] -> ()
  | gs ->
    Format.fprintf ppf "telemetry gauges:@,";
    List.iter
      (fun g -> Format.fprintf ppf "  %-42s %d@," (Gauge.name g) (Gauge.value g))
      gs);
  Format.fprintf ppf "telemetry histograms:@,";
  List.iter
    (fun h ->
      Format.fprintf ppf
        "  %-42s n=%d mean=%.1f min=%.1f max=%.1f p50<=%.0f p95<=%.0f \
         p99<=%.0f@,"
        (Histogram.name h) (Histogram.count h) (Histogram.mean h)
        (Histogram.min_value h) (Histogram.max_value h)
        (Histogram.percentile h 0.5)
        (Histogram.percentile h 0.95)
        (Histogram.percentile h 0.99))
    (histograms reg);
  Format.fprintf ppf "@]"
