(** Rolling snapshots of the metrics registry — the live-telemetry
    plane.

    A {!ring} retains the last N {!point}s (full captures of every
    counter, gauge, and histogram summary), with {!counter_delta} and
    {!rates} deriving change between any two points.  One ring can be
    {!install}ed process-wide; the orchestrator snapshots it per round,
    a {!start_ticker} systhread snapshots it on a fixed interval, and a
    SIGUSR1 handler ({!install_sigusr1}) requests an on-demand dump
    without stopping the run.  Each snapshot optionally invokes the
    ring's [on_snapshot] callback — the seam the CLI uses to atomically
    rewrite an OpenMetrics file for external scrapers. *)

type hist_summary = {
  h_count : int;
  h_sum : float;
  h_min : float;  (** [infinity] when empty *)
  h_max : float;  (** [neg_infinity] when empty *)
  h_buckets : int array;  (** power-of-two buckets, see {!Metrics.Histogram} *)
}

type point = {
  p_seq : int;  (** 0-based index of this snapshot since ring creation *)
  p_ts : float;  (** [Unix.gettimeofday] at capture *)
  p_label : string;  (** e.g. ["tick"], ["round 2"], ["sigusr1"] *)
  p_counters : (string * int) list;  (** name-sorted *)
  p_gauges : (string * int) list;  (** name-sorted; callbacks evaluated *)
  p_hists : (string * hist_summary) list;  (** name-sorted *)
}

type ring

val create :
  ?capacity:int ->
  ?registry:Metrics.registry ->
  ?on_snapshot:(point -> unit) ->
  unit ->
  ring
(** [capacity] (default 64) bounds retained points — older snapshots
    are evicted FIFO.  [on_snapshot] runs on the snapshotting thread
    after each {!take}, outside the ring's lock. *)

val capacity : ring -> int

val length : ring -> int

val take : ?label:string -> ring -> point
(** Capture every registry primitive now, append (evicting the oldest
    past capacity), run [on_snapshot], and return the point.  Safe from
    any domain or thread. *)

val points : ring -> point list
(** Retained points, oldest first. *)

val busy_seconds : ring -> float
(** Cumulative wall-clock seconds spent inside {!take} on this ring —
    registry capture plus the [on_snapshot] callback.  The plane's
    direct cost: the bench stats gate divides it by run wall-clock. *)

val latest : ring -> point option

val counter_delta : older:point -> newer:point -> (string * int) list
(** Per-counter [newer - older] over the union of names (a counter born
    between the two deltas from 0; one that vanished — registry reset —
    surfaces as a negative delta).  Counters are monotone, so deltas
    are non-negative whenever [older] was taken before [newer]. *)

val rates : older:point -> newer:point -> (string * float) list
(** {!counter_delta} divided by the wall-clock seconds between the two
    points; all zero if the interval is not positive. *)

(** {1 The installed plane} *)

val install : ring -> unit
(** Make [ring] the process-wide snapshot target (ticker, SIGUSR1,
    per-round orchestrator samples). *)

val uninstall : unit -> unit

val installed : unit -> ring option

val take_installed : ?label:string -> unit -> point option
(** {!take} on the installed ring; [None] when no plane is installed. *)

val take_installed_if_due : ?min_age_s:float -> ?label:string -> unit -> point option
(** {!take_installed}, throttled: snapshots only when the installed
    ring's newest point is at least [min_age_s] (default 0.1) old, so
    event-driven sample sites (one per orchestrator round) cost
    wall-clock-bounded work even when rounds are sub-millisecond.
    [None] when no plane is installed or nothing was due. *)

(** {1 Ticker and signal dumps} *)

val start_ticker : ?interval_ms:int -> unit -> unit
(** Start (or restart) the single process-wide ticker systhread: every
    [interval_ms] (default 100) it snapshots the installed ring, and it
    services {!request_dump} requests within ~50 ms.  [interval_ms = 0]
    disables periodic snapshots but keeps servicing dump requests.  A
    systhread, not a domain: it shares the main domain, so it adds no
    stop-the-world GC participant. *)

val stop_ticker : unit -> unit
(** Stop and join the ticker; idempotent. *)

val request_dump : unit -> unit
(** Ask the ticker to snapshot the installed ring as [label "sigusr1"].
    Only flips an atomic, hence safe from a signal handler. *)

val install_sigusr1 : unit -> unit
(** Route SIGUSR1 to {!request_dump} (no-op where the signal does not
    exist). *)

(** {1 Runtime gauges} *)

val install_runtime_gauges : ?registry:Metrics.registry -> unit -> unit
(** Register callback gauges for GC statistics ([gc.minor_collections],
    [gc.major_collections], [gc.compactions], [gc.heap_words],
    [gc.top_heap_words], [gc.minor_words]), worker-pool occupancy
    ([pool.domains.live], [pool.domains.busy]), and
    [domains.recommended].  Idempotent; call again after
    {!Metrics.reset}. *)
