(** Structured logging: levelled events with key/value context, one
    JSON object per line (JSONL).

    The pipeline's fault-handling paths — supervised retries and drops,
    LP degradation and aborts, the scheduler watchdog — emit through
    here, so operational events are grep-able ([jq 'select(.event ==
    "orch.run.retry")'] and the like) instead of ad-hoc [eprintf]
    lines.  Instrumented code calls {!warn}/{!info} unconditionally:
    emission is a no-op costing one atomic load until a sink is
    installed ([--log-out], [SHERLOCK_LOG], or {!set_writer} in tests).

    Each line carries ["ts"] (wall-clock seconds since the epoch),
    ["elapsed_s"] (seconds since the sink was installed — monotone
    within a run and immune to the absolute clock's magnitude),
    ["level"], ["event"], ["domain"] (the emitting domain's id), then
    the event's own fields in order.  Lines are written whole under one
    mutex, so multi-domain emission never interleaves bytes. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string

val level_of_string : string -> level option

type value = Int of int | Float of float | Bool of bool | Str of string

val set_level : level -> unit
(** Minimum level that reaches the sink; default [Debug]. *)

val enabled : level -> bool
(** A sink is installed and [level] passes the threshold — for guarding
    expensive field computation. *)

val to_file : string -> unit
(** Install a JSONL file sink (truncates), replacing any current sink. *)

val to_stderr : unit -> unit

val set_writer : (string -> unit) option -> unit
(** Install a raw line consumer (tests), or [None] to remove the sink. *)

val close : unit -> unit
(** Flush and close the current sink; emission becomes a no-op again. *)

val init_from_env : unit -> unit
(** Honor [SHERLOCK_LOG]: a path, ["stderr"], or ["LEVEL:PATH"] (e.g.
    ["warn:run.jsonl"]).  Unset or empty: no sink. *)

val emit : level -> string -> (string * value) list -> unit
(** [emit level event fields] writes one line; [Float nan] renders as
    [null] so lines stay valid JSON. *)

val debug : string -> (string * value) list -> unit

val info : string -> (string * value) list -> unit

val warn : string -> (string * value) list -> unit

val error : string -> (string * value) list -> unit
