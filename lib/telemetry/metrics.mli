(** Named counters and histograms — the registry generalizing the flat
    {!Sherlock_trace.Metrics} record (which stays as a thin bridge; see
    [Sherlock_trace.Metrics.to_registry]).

    Primitives are unconditional and safe from any domain: counters are
    atomic, histograms take a per-histogram mutex.  Hot paths (window
    extraction, the simplex, the simulator's scheduler) additionally gate
    their observations on {!enabled}, a process-wide flag an entry point
    flips on when the user asks for telemetry, so the instrumented code
    costs one atomic load when telemetry is off. *)

val set_enabled : bool -> unit

val enabled : unit -> bool

module Counter : sig
  type t

  val name : t -> string

  val incr : ?by:int -> t -> unit

  val value : t -> int
end

module Histogram : sig
  type t
  (** Power-of-two buckets plus exact count/sum/min/max: enough for means
      and coarse percentiles without retaining samples. *)

  val name : t -> string

  val observe : t -> float -> unit

  val observe_int : t -> int -> unit

  val count : t -> int

  val sum : t -> float

  val mean : t -> float
  (** [nan] when empty. *)

  val min_value : t -> float

  val max_value : t -> float

  val percentile : t -> float -> float
  (** [percentile h p] with [p] in [0, 1]: the upper bound of the bucket
      holding the p-quantile (an over-approximation within 2x); [nan]
      when empty. *)

  type export = {
    e_count : int;
    e_sum : float;
    e_min : float;  (** [infinity] when empty *)
    e_max : float;  (** [neg_infinity] when empty *)
    e_buckets : int array;
        (** bucket [i] counts observations in [(2^(i-1), 2^i]]; bucket 0
            everything [<= 1] *)
  }

  val export : t -> export
  (** A coherent copy taken under the histogram's mutex — what the
      snapshot ring and the OpenMetrics exporter read. *)
end

module Gauge : sig
  (** A point-in-time level (pool occupancy, heap words, eta-file
      length), as opposed to a {!Counter}'s monotone accumulation.
      Cell gauges ({!val-gauge}) are set by the instrumented code;
      callback gauges ({!gauge_fn}) are evaluated at read time, so
      sources like [Gc.quick_stat] need no pushing. *)

  type t

  val name : t -> string

  val set : t -> int -> unit
  (** No-op on a callback gauge. *)

  val add : t -> int -> unit

  val value : t -> int
  (** Cell value, or the callback's result (0 if it raises). *)
end

type registry

val create : unit -> registry
(** A fresh, empty registry (tests and isolated measurements). *)

val default : registry
(** The process-wide registry all pipeline instrumentation records into. *)

val counter : ?registry:registry -> string -> Counter.t
(** Get or create; the same name always yields the same counter. *)

val histogram : ?registry:registry -> string -> Histogram.t

val gauge : ?registry:registry -> string -> Gauge.t
(** Get or create a cell gauge; the same name always yields the same
    gauge. *)

val gauge_fn : ?registry:registry -> string -> (unit -> int) -> Gauge.t
(** Install (or replace) a callback gauge evaluated at read time.
    Unlike {!val-gauge}, a repeated call rebinds the name to the new
    closure, so re-installation after {!reset} — or over a fresher
    resource — never keeps reading a stale callback. *)

val counters : registry -> Counter.t list
(** Sorted by name. *)

val histograms : registry -> Histogram.t list

val gauges : registry -> Gauge.t list

type sample = {
  sample_s : float;  (** [Unix.gettimeofday] at the snapshot *)
  sample_label : string;  (** e.g. ["round 2"] *)
  sample_counters : (string * int) list;  (** all counters, name-sorted *)
}
(** A timestamped snapshot of every counter value — what lets the
    Perfetto export render counter tracks that progress over the run
    instead of a single end-of-run value. *)

val sample : ?registry:registry -> label:string -> unit -> unit
(** Snapshot all counters now.  The orchestrator calls this once per
    inference round when telemetry is enabled. *)

val samples : ?registry:registry -> unit -> sample list
(** All snapshots in chronological order. *)

val reset : registry -> unit
(** Drop every counter, gauge, histogram, and sample (bench reruns). *)

val pp_summary : Format.formatter -> registry -> unit
(** Text summary: one line per counter, one per histogram with
    count/mean/min/max/p50/p95/p99. *)
