(** Named counters and histograms — the registry generalizing the flat
    {!Sherlock_trace.Metrics} record (which stays as a thin bridge; see
    [Sherlock_trace.Metrics.to_registry]).

    Primitives are unconditional and safe from any domain: counters are
    atomic, histograms take a per-histogram mutex.  Hot paths (window
    extraction, the simplex, the simulator's scheduler) additionally gate
    their observations on {!enabled}, a process-wide flag an entry point
    flips on when the user asks for telemetry, so the instrumented code
    costs one atomic load when telemetry is off. *)

val set_enabled : bool -> unit

val enabled : unit -> bool

module Counter : sig
  type t

  val name : t -> string

  val incr : ?by:int -> t -> unit

  val value : t -> int
end

module Histogram : sig
  type t
  (** Power-of-two buckets plus exact count/sum/min/max: enough for means
      and coarse percentiles without retaining samples. *)

  val name : t -> string

  val observe : t -> float -> unit

  val observe_int : t -> int -> unit

  val count : t -> int

  val sum : t -> float

  val mean : t -> float
  (** [nan] when empty. *)

  val min_value : t -> float

  val max_value : t -> float

  val percentile : t -> float -> float
  (** [percentile h p] with [p] in [0, 1]: the upper bound of the bucket
      holding the p-quantile (an over-approximation within 2x); [nan]
      when empty. *)
end

type registry

val create : unit -> registry
(** A fresh, empty registry (tests and isolated measurements). *)

val default : registry
(** The process-wide registry all pipeline instrumentation records into. *)

val counter : ?registry:registry -> string -> Counter.t
(** Get or create; the same name always yields the same counter. *)

val histogram : ?registry:registry -> string -> Histogram.t

val counters : registry -> Counter.t list
(** Sorted by name. *)

val histograms : registry -> Histogram.t list

type sample = {
  sample_s : float;  (** [Unix.gettimeofday] at the snapshot *)
  sample_label : string;  (** e.g. ["round 2"] *)
  sample_counters : (string * int) list;  (** all counters, name-sorted *)
}
(** A timestamped snapshot of every counter value — what lets the
    Perfetto export render counter tracks that progress over the run
    instead of a single end-of-run value. *)

val sample : ?registry:registry -> label:string -> unit -> unit
(** Snapshot all counters now.  The orchestrator calls this once per
    inference round when telemetry is enabled. *)

val samples : ?registry:registry -> unit -> sample list
(** All snapshots in chronological order. *)

val reset : registry -> unit
(** Drop every counter, histogram, and sample (bench reruns). *)

val pp_summary : Format.formatter -> registry -> unit
(** Text summary: one line per counter, one per histogram with
    count/mean/min/max/p50/p95/p99. *)
