(* The snapshot ring: rolling point-in-time captures of the full metrics
   registry (counters, gauges, histogram summaries), retained in a
   bounded circular buffer with rate/delta derivation between any two
   points.  This is the live-telemetry seam: a periodic ticker (a
   systhread on the main domain, so it adds no stop-the-world GC
   participant) takes a snapshot every interval, an optional callback
   per snapshot lets the CLI rewrite an OpenMetrics file for external
   scrapers, and a SIGUSR1 request dumps on demand without stopping the
   run. *)

module Tm = Metrics

type hist_summary = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_buckets : int array;
}

type point = {
  p_seq : int;
  p_ts : float;
  p_label : string;
  p_counters : (string * int) list;
  p_gauges : (string * int) list;
  p_hists : (string * hist_summary) list;
}

type ring = {
  registry : Tm.registry;
  capacity : int;
  on_snapshot : (point -> unit) option;
  mutex : Mutex.t;
  slots : point option array;
  mutable len : int;
  mutable head : int;  (* next write slot *)
  mutable seq : int;  (* total snapshots ever taken *)
  mutable busy_s : float;
      (* cumulative seconds spent inside [take] — capture plus the
         [on_snapshot] callback — the plane's direct cost, which the
         bench stats gate divides by wall-clock *)
}

let create ?(capacity = 64) ?(registry = Tm.default) ?on_snapshot () =
  if capacity < 1 then invalid_arg "Snapshot.create: capacity must be >= 1";
  {
    registry;
    capacity;
    on_snapshot;
    mutex = Mutex.create ();
    slots = Array.make capacity None;
    len = 0;
    head = 0;
    seq = 0;
    busy_s = 0.0;
  }

let capacity r = r.capacity

let length r =
  Mutex.lock r.mutex;
  let n = r.len in
  Mutex.unlock r.mutex;
  n

let capture ~seq ~label registry =
  let name_sorted xs = List.sort (fun (a, _) (b, _) -> String.compare a b) xs in
  let p_counters =
    name_sorted
      (List.map
         (fun c -> (Tm.Counter.name c, Tm.Counter.value c))
         (Tm.counters registry))
  in
  let p_gauges =
    name_sorted
      (List.map (fun g -> (Tm.Gauge.name g, Tm.Gauge.value g)) (Tm.gauges registry))
  in
  let p_hists =
    name_sorted
      (List.map
         (fun h ->
           let e = Tm.Histogram.export h in
           ( Tm.Histogram.name h,
             {
               h_count = e.Tm.Histogram.e_count;
               h_sum = e.Tm.Histogram.e_sum;
               h_min = e.Tm.Histogram.e_min;
               h_max = e.Tm.Histogram.e_max;
               h_buckets = e.Tm.Histogram.e_buckets;
             } ))
         (Tm.histograms registry))
  in
  { p_seq = seq; p_ts = Unix.gettimeofday (); p_label = label; p_counters;
    p_gauges; p_hists }

let take ?(label = "") r =
  let t0 = Unix.gettimeofday () in
  (* Reading the registry happens outside the ring mutex: registry
     primitives have their own synchronization, and a slow histogram
     export must not block a concurrent [points] call. *)
  Mutex.lock r.mutex;
  let seq = r.seq in
  r.seq <- seq + 1;
  Mutex.unlock r.mutex;
  let p = capture ~seq ~label r.registry in
  Mutex.lock r.mutex;
  r.slots.(r.head) <- Some p;
  r.head <- (r.head + 1) mod r.capacity;
  if r.len < r.capacity then r.len <- r.len + 1;
  Mutex.unlock r.mutex;
  (match r.on_snapshot with None -> () | Some f -> f p);
  Mutex.lock r.mutex;
  r.busy_s <- r.busy_s +. (Unix.gettimeofday () -. t0);
  Mutex.unlock r.mutex;
  p

let busy_seconds r =
  Mutex.lock r.mutex;
  let s = r.busy_s in
  Mutex.unlock r.mutex;
  s

let points r =
  Mutex.lock r.mutex;
  let acc = ref [] in
  (* Newest is at [head - 1]; walk back [len] slots. *)
  for k = 0 to r.len - 1 do
    let i = (r.head - 1 - k + (2 * r.capacity)) mod r.capacity in
    match r.slots.(i) with Some p -> acc := p :: !acc | None -> ()
  done;
  Mutex.unlock r.mutex;
  !acc

let latest r =
  Mutex.lock r.mutex;
  let p =
    if r.len = 0 then None
    else r.slots.((r.head - 1 + r.capacity) mod r.capacity)
  in
  Mutex.unlock r.mutex;
  p

(* Per-counter difference newer - older, over the union of names: a
   counter born between the two snapshots delta-s from zero.  Counters
   are monotone, so deltas are non-negative whenever [older] precedes
   [newer]. *)
let counter_delta ~older ~newer =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (n, v) -> Hashtbl.replace tbl n v) older.p_counters;
  let seen = Hashtbl.create 64 in
  let deltas =
    List.map
      (fun (n, v) ->
        Hashtbl.replace seen n ();
        (n, v - Option.value (Hashtbl.find_opt tbl n) ~default:0))
      newer.p_counters
  in
  (* A counter present only in [older] (registry reset in between):
     surface it as a negative delta rather than silently dropping it. *)
  let gone =
    List.filter_map
      (fun (n, v) ->
        if Hashtbl.mem seen n then None else Some (n, -v))
      older.p_counters
  in
  deltas @ gone

let rates ~older ~newer =
  let dt = newer.p_ts -. older.p_ts in
  List.map
    (fun (n, d) -> (n, if dt > 0.0 then float_of_int d /. dt else 0.0))
    (counter_delta ~older ~newer)

(* ------------------------------------------------------------------ *)
(* The installed plane: one process-wide ring the orchestrator / ticker
   / SIGUSR1 paths snapshot into, mirroring [Span.set_collector]. *)

let current : ring option Atomic.t = Atomic.make None

let install r = Atomic.set current (Some r)

let uninstall () = Atomic.set current None

let installed () = Atomic.get current

let take_installed ?label () =
  match Atomic.get current with
  | None -> None
  | Some r -> Some (take ?label r)

(* Event-driven snapshot sites (the orchestrator's per-round sample)
   throttle on wall-clock age: a sub-millisecond round must not produce
   a point — and an exporter rewrite — per round, or the plane's cost
   scales with round rate instead of with time.  Racing callers can at
   worst take one extra point. *)
let take_installed_if_due ?(min_age_s = 0.1) ?label () =
  match Atomic.get current with
  | None -> None
  | Some r ->
    let due =
      match latest r with
      | None -> true
      | Some p -> Unix.gettimeofday () -. p.p_ts >= min_age_s
    in
    if due then Some (take ?label r) else None

(* ------------------------------------------------------------------ *)
(* Ticker: a single systhread (not a domain — an idle parked domain
   joins every stop-the-world minor collection, measured ~2x slowdown
   of sequential work on one core; a sleeping systhread on the main
   domain costs nothing) that snapshots the installed ring every
   interval and services SIGUSR1 dump requests.  Interval 0 disables
   periodic snapshots but keeps servicing dump requests. *)

type ticker = {
  thread : Thread.t;
  stop_flag : bool Atomic.t;
  (* Self-pipe: stop wakes the nap instantly.  Both ends stay open
     until after the join — closing the read side from the ticker
     thread would race the stopper's wake-up write into a SIGPIPE. *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
}

let ticker_mutex = Mutex.create ()

let ticker_state : ticker option ref = ref None

let dump_requested = Atomic.make false

(* Async-signal-safe by construction: the SIGUSR1 handler only flips
   this atomic; the ticker thread performs the actual dump, so the
   handler can never deadlock against a registry mutex the interrupted
   code holds. *)
let request_dump () = Atomic.set dump_requested true

let service_dump () =
  if Atomic.get dump_requested then begin
    Atomic.set dump_requested false;
    ignore (take_installed ~label:"sigusr1" ())
  end

(* Napping is a [select] on the stop pipe rather than [Thread.delay]:
   [stop_ticker] writes one byte and the nap returns immediately, so
   stopping never waits out the remainder of a sleep.  That keeps the
   orchestrator's per-inference start/stop cost at the price of a join,
   not up to 50 ms of latency per call. *)
let nap_interruptible wake_r seconds =
  match Unix.select [ wake_r ] [] [] seconds with
  | [], _, _ -> ()
  | _ -> ignore (Unix.read wake_r (Bytes.create 16) 0 16)
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

let ticker_loop stop_flag wake_r interval_ms () =
  let interval_s = float_of_int interval_ms /. 1000.0 in
  let nap =
    if interval_ms > 0 then Float.min interval_s 0.05 else 0.05
  in
  let last = ref (Unix.gettimeofday ()) in
  while not (Atomic.get stop_flag) do
    nap_interruptible wake_r nap;
    service_dump ();
    if (not (Atomic.get stop_flag)) && interval_ms > 0 then begin
      let now = Unix.gettimeofday () in
      if now -. !last >= interval_s then begin
        last := now;
        ignore (take_installed ~label:"tick" ())
      end
    end
  done

let stop_ticker () =
  Mutex.lock ticker_mutex;
  let t = !ticker_state in
  ticker_state := None;
  Mutex.unlock ticker_mutex;
  match t with
  | None -> ()
  | Some { thread; stop_flag; wake_r; wake_w } ->
    Atomic.set stop_flag true;
    (try ignore (Unix.write wake_w (Bytes.make 1 '!') 0 1)
     with Unix.Unix_error _ -> ());
    Thread.join thread;
    (try Unix.close wake_w with Unix.Unix_error _ -> ());
    (try Unix.close wake_r with Unix.Unix_error _ -> ())

let start_ticker ?(interval_ms = 100) () =
  stop_ticker ();
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  let stop_flag = Atomic.make false in
  let thread = Thread.create (ticker_loop stop_flag wake_r interval_ms) () in
  Mutex.lock ticker_mutex;
  ticker_state := Some { thread; stop_flag; wake_r; wake_w };
  Mutex.unlock ticker_mutex

let install_sigusr1 () =
  (* Windows has no SIGUSR1; degrade to "no signal dumps" silently. *)
  match Sys.signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> request_dump ())) with
  | _ -> ()
  | exception (Invalid_argument _ | Sys_error _) -> ()

(* ------------------------------------------------------------------ *)
(* Runtime gauges: process-level levels sampled at read time.  GC
   figures come from [Gc.quick_stat] (no major-heap walk); pool
   occupancy from [Sherlock_util.Pool]'s process-wide atomics.
   Installed as callbacks so producers push nothing; re-installation
   (e.g. after a registry reset) simply rebinds. *)
let install_runtime_gauges ?registry () =
  let g name f = ignore (Tm.gauge_fn ?registry name f) in
  g "gc.minor_collections" (fun () -> (Gc.quick_stat ()).Gc.minor_collections);
  g "gc.major_collections" (fun () -> (Gc.quick_stat ()).Gc.major_collections);
  g "gc.compactions" (fun () -> (Gc.quick_stat ()).Gc.compactions);
  g "gc.heap_words" (fun () -> (Gc.quick_stat ()).Gc.heap_words);
  g "gc.top_heap_words" (fun () -> (Gc.quick_stat ()).Gc.top_heap_words);
  g "gc.minor_words" (fun () -> int_of_float (Gc.minor_words ()));
  g "pool.domains.live" Sherlock_util.Pool.live_domains;
  g "pool.domains.busy" Sherlock_util.Pool.busy_domains;
  g "domains.recommended" Domain.recommended_domain_count
