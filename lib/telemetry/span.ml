type value =
  | Int of int
  | Float of float
  | Bool of bool
  | Str of string

type closed = {
  id : int;
  parent : int option;
  name : string;
  track : int;
  start_s : float;
  end_s : float;
  attrs : (string * value) list;
}

type collector = {
  epoch : float;
  mutex : Mutex.t;
  mutable spans : closed list;  (* reverse close order *)
  next_id : int Atomic.t;
}

type open_span = {
  oid : int;
  oparent : int option;
  oname : string;
  otrack : int;
  ostart : float;
  mutable oattrs : (string * value) list;  (* reverse attachment order *)
}

let create_collector () =
  {
    epoch = Unix.gettimeofday ();
    mutex = Mutex.create ();
    spans = [];
    next_id = Atomic.make 0;
  }

let epoch c = c.epoch

let closed_spans c =
  Mutex.lock c.mutex;
  let spans = c.spans in
  Mutex.unlock c.mutex;
  List.rev spans

let span_count c =
  Mutex.lock c.mutex;
  let n = List.length c.spans in
  Mutex.unlock c.mutex;
  n

(* The installed collector is read on every [with_span], possibly from
   several domains; an [Atomic.t] keeps the load well defined. *)
let installed : collector option Atomic.t = Atomic.make None

let set_collector c = Atomic.set installed c

let current_collector () = Atomic.get installed

(* Per-domain stack of open spans: nesting never crosses domains, so each
   worker gets an independent, well-nested track. *)
let stack_key : open_span list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let open_depth () = List.length !(Domain.DLS.get stack_key)

let add_attr k v =
  match Atomic.get installed with
  | None -> ()
  | Some _ -> (
    match !(Domain.DLS.get stack_key) with
    | [] -> ()
    | sp :: _ -> sp.oattrs <- (k, v) :: sp.oattrs)

let close c stack sp =
  (stack := match !stack with _ :: tl -> tl | [] -> []);
  let span =
    {
      id = sp.oid;
      parent = sp.oparent;
      name = sp.oname;
      track = sp.otrack;
      start_s = sp.ostart;
      end_s = Unix.gettimeofday ();
      attrs = List.rev sp.oattrs;
    }
  in
  Mutex.lock c.mutex;
  c.spans <- span :: c.spans;
  Mutex.unlock c.mutex

let with_span ?(attrs = []) ~name f =
  match Atomic.get installed with
  | None -> f ()
  | Some c ->
    let stack = Domain.DLS.get stack_key in
    let parent = match !stack with [] -> None | p :: _ -> Some p.oid in
    let sp =
      {
        oid = Atomic.fetch_and_add c.next_id 1;
        oparent = parent;
        oname = name;
        otrack = (Domain.self () :> int);
        ostart = Unix.gettimeofday ();
        oattrs = List.rev attrs;
      }
    in
    stack := sp :: !stack;
    (match f () with
    | v ->
      close c stack sp;
      v
    | exception e ->
      close c stack sp;
      raise e)
