(** Chrome trace-event JSON, the format Perfetto and [chrome://tracing]
    load natively.

    Two producers feed it: {!of_spans} turns a span collector's wall-clock
    tree into one [X] (complete) event per span, one track per domain; the
    virtual-time exporter ([Sherlock_core.Timeline]) builds events
    directly — per-thread tracks of method frames, running/blocked
    intervals, delay-injection markers, and flow arrows between
    conflicting accesses.

    Timestamps and durations are integer microseconds (the trace-event
    unit), which for virtual-time exports coincide with the simulator's
    own clock. *)

type arg = Span.value =
  | Int of int
  | Float of float
  | Bool of bool
  | Str of string

type ph =
  | Complete of int    (** an [X] slice with its duration *)
  | Instant            (** an [i] thread-scoped marker *)
  | Counter            (** a [C] counter-track point; value in [args] *)
  | Flow_start of int  (** an [s] event opening flow [id] *)
  | Flow_end of int    (** an [f] (binding-point [e]) event closing flow [id] *)
  | Metadata           (** an [M] event; [name] is the metadata kind *)

type event = {
  name : string;
  cat : string;
  ph : ph;
  ts : int;   (** microseconds *)
  pid : int;
  tid : int;
  args : (string * arg) list;
}

val complete :
  ?cat:string -> ?args:(string * arg) list ->
  name:string -> ts:int -> dur:int -> pid:int -> tid:int -> unit -> event

val instant :
  ?cat:string -> ?args:(string * arg) list ->
  name:string -> ts:int -> pid:int -> tid:int -> unit -> event

val counter :
  ?cat:string -> name:string -> ts:int -> pid:int -> value:int -> unit -> event
(** One point on the counter track [name] — a [C] event whose [args]
    carry [{"value": v}]. *)

val flow_start :
  ?cat:string -> ?name:string -> id:int -> ts:int -> pid:int -> tid:int -> unit -> event

val flow_end :
  ?cat:string -> ?name:string -> id:int -> ts:int -> pid:int -> tid:int -> unit -> event

val process_name : pid:int -> string -> event

val thread_name : pid:int -> tid:int -> string -> event

val thread_sort_index : pid:int -> tid:int -> int -> event

val prepare : event list -> event list
(** Normalized emission order: metadata events first, then everything
    else stably sorted by timestamp, with negative [Complete] durations
    clamped to 0.  [to_string]/[write] apply this; it is exposed so the
    ordering and clamping are testable. *)

val to_string : event list -> string
(** The full JSON document, [{"traceEvents": [...]}]. *)

val write : string -> event list -> unit
(** Write the JSON document to a file. *)

val of_spans : Span.collector -> event list
(** Wall-clock export of every closed span (plus process/track naming
    metadata): timestamps are microseconds since the collector's epoch,
    one [tid] per domain. *)

val of_samples : epoch:float -> Metrics.sample list -> event list
(** Counter tracks from {!Metrics.sample} snapshots: one [C] point per
    counter per sample (so Perfetto renders each counter progressing
    round by round rather than as a single end-of-run value), plus one
    instant marker per sample carrying its label.  [epoch] should be the
    span collector's so the tracks align with {!of_spans}. *)
