type arg = Span.value =
  | Int of int
  | Float of float
  | Bool of bool
  | Str of string

type ph =
  | Complete of int
  | Instant
  | Counter
  | Flow_start of int
  | Flow_end of int
  | Metadata

type event = {
  name : string;
  cat : string;
  ph : ph;
  ts : int;
  pid : int;
  tid : int;
  args : (string * arg) list;
}

let complete ?(cat = "") ?(args = []) ~name ~ts ~dur ~pid ~tid () =
  { name; cat; ph = Complete dur; ts; pid; tid; args }

let instant ?(cat = "") ?(args = []) ~name ~ts ~pid ~tid () =
  { name; cat; ph = Instant; ts; pid; tid; args }

let counter ?(cat = "counter") ~name ~ts ~pid ~value () =
  { name; cat; ph = Counter; ts; pid; tid = 0; args = [ ("value", Int value) ] }

let flow_start ?(cat = "flow") ?(name = "flow") ~id ~ts ~pid ~tid () =
  { name; cat; ph = Flow_start id; ts; pid; tid; args = [] }

let flow_end ?(cat = "flow") ?(name = "flow") ~id ~ts ~pid ~tid () =
  { name; cat; ph = Flow_end id; ts; pid; tid; args = [] }

let process_name ~pid name =
  {
    name = "process_name";
    cat = "__metadata";
    ph = Metadata;
    ts = 0;
    pid;
    tid = 0;
    args = [ ("name", Str name) ];
  }

let thread_name ~pid ~tid name =
  {
    name = "thread_name";
    cat = "__metadata";
    ph = Metadata;
    ts = 0;
    pid;
    tid;
    args = [ ("name", Str name) ];
  }

let thread_sort_index ~pid ~tid index =
  {
    name = "thread_sort_index";
    cat = "__metadata";
    ph = Metadata;
    ts = 0;
    pid;
    tid;
    args = [ ("sort_index", Int index) ];
  }

let prepare events =
  let clamp e =
    match e.ph with
    | Complete d when d < 0 -> { e with ph = Complete 0 }
    | Complete _ | Instant | Counter | Flow_start _ | Flow_end _ | Metadata -> e
  in
  let meta, rest = List.partition (fun e -> e.ph = Metadata) events in
  meta @ List.stable_sort (fun a b -> Int.compare a.ts b.ts) (List.map clamp rest)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_str buf s =
  Buffer.add_char buf '"';
  escape buf s;
  Buffer.add_char buf '"'

let add_arg buf = function
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%g" f)
    else add_str buf (string_of_float f)
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Str s -> add_str buf s

let add_event buf e =
  let field name add_value =
    add_str buf name;
    Buffer.add_char buf ':';
    add_value ()
  in
  Buffer.add_char buf '{';
  field "name" (fun () -> add_str buf e.name);
  Buffer.add_char buf ',';
  if e.cat <> "" then begin
    field "cat" (fun () -> add_str buf e.cat);
    Buffer.add_char buf ','
  end;
  let ph, extra =
    match e.ph with
    | Complete dur -> ("X", [ ("dur", `I dur) ])
    | Instant -> ("i", [ ("s", `S "t") ])
    | Counter -> ("C", [])
    | Flow_start id -> ("s", [ ("id", `I id) ])
    | Flow_end id -> ("f", [ ("id", `I id); ("bp", `S "e") ])
    | Metadata -> ("M", [])
  in
  field "ph" (fun () -> add_str buf ph);
  Buffer.add_char buf ',';
  List.iter
    (fun (k, v) ->
      field k (fun () ->
          match v with
          | `I i -> Buffer.add_string buf (string_of_int i)
          | `S s -> add_str buf s);
      Buffer.add_char buf ',')
    extra;
  field "ts" (fun () -> Buffer.add_string buf (string_of_int e.ts));
  Buffer.add_char buf ',';
  field "pid" (fun () -> Buffer.add_string buf (string_of_int e.pid));
  Buffer.add_char buf ',';
  field "tid" (fun () -> Buffer.add_string buf (string_of_int e.tid));
  if e.args <> [] then begin
    Buffer.add_char buf ',';
    field "args" (fun () ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            add_str buf k;
            Buffer.add_char buf ':';
            add_arg buf v)
          e.args;
        Buffer.add_char buf '}')
  end;
  Buffer.add_char buf '}'

let to_string events =
  let events = prepare events in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",\n";
      add_event buf e)
    events;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

let write path events =
  let oc = open_out path in
  output_string oc (to_string events);
  close_out oc

let of_spans collector =
  let epoch = Span.epoch collector in
  let us t = int_of_float ((t -. epoch) *. 1e6) in
  let spans = Span.closed_spans collector in
  let tracks = Hashtbl.create 8 in
  let events =
    List.map
      (fun (s : Span.closed) ->
        Hashtbl.replace tracks s.track ();
        let args =
          ("span_id", Int s.id)
          :: (match s.parent with Some p -> [ ("parent", Int p) ] | None -> [])
          @ s.attrs
        in
        complete ~cat:"span" ~args ~name:s.name ~ts:(us s.start_s)
          ~dur:(us s.end_s - us s.start_s) ~pid:0 ~tid:s.track ())
      spans
  in
  let meta =
    process_name ~pid:0 "sherlock (wall clock)"
    :: Hashtbl.fold
         (fun track () acc ->
           thread_name ~pid:0 ~tid:track (Printf.sprintf "domain %d" track) :: acc)
         tracks []
  in
  meta @ events

let of_samples ~epoch samples =
  let us t = int_of_float ((t -. epoch) *. 1e6) in
  List.concat_map
    (fun (s : Metrics.sample) ->
      let ts = max 0 (us s.Metrics.sample_s) in
      instant ~cat:"sample" ~name:s.Metrics.sample_label ~ts ~pid:0 ~tid:0 ()
      :: List.map
           (fun (name, v) -> counter ~name ~ts ~pid:0 ~value:v ())
           s.Metrics.sample_counters)
    samples
