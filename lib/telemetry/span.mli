(** Hierarchical wall-clock spans over the inference pipeline.

    A span is opened with {!with_span}, covers the host wall-clock time of
    its body, and closes even when the body raises — the tree of closed
    spans is therefore always well nested.  Spans record into a
    {!collector} installed with {!set_collector}; with no collector
    installed, {!with_span} is a tail call into the body (a single atomic
    load of overhead), so instrumented code paths cost nothing in normal
    runs.

    Nesting is tracked per domain (domain-local open-span stacks), so the
    orchestrator's worker domains each get their own well-nested track:
    the Perfetto export renders one timeline row per domain. *)

type value =
  | Int of int
  | Float of float
  | Bool of bool
  | Str of string

type closed = {
  id : int;             (** unique within the collector *)
  parent : int option;  (** innermost enclosing span on the same domain *)
  name : string;
  track : int;          (** domain id the span ran on *)
  start_s : float;      (** absolute host time, [Unix.gettimeofday] *)
  end_s : float;
  attrs : (string * value) list;  (** in attachment order *)
}

type collector

val create_collector : unit -> collector

val epoch : collector -> float
(** Host time the collector was created; exports use it as time zero. *)

val closed_spans : collector -> closed list
(** Every span closed so far, in close order. *)

val span_count : collector -> int

val set_collector : collector option -> unit
(** Install (or remove) the process-wide collector.  Not meant to change
    while worker domains are running. *)

val current_collector : unit -> collector option

val with_span : ?attrs:(string * value) list -> name:string -> (unit -> 'a) -> 'a
(** Run the body inside a span.  The span closes when the body returns
    {e or raises}; the exception is re-raised after the close. *)

val add_attr : string -> value -> unit
(** Attach an attribute to the innermost open span of the calling domain;
    a no-op when no span is open or no collector is installed. *)

val open_depth : unit -> int
(** Number of open spans on the calling domain (0 outside any span). *)
