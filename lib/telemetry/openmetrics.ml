(* OpenMetrics / Prometheus text exposition of a metrics snapshot, plus
   the parser the `sherlock stats` console and the smoke checks read it
   back with.

   Mangling: registry names are dotted ("windows.span_cache.hit");
   OpenMetrics metric names must match [a-z_:][a-z0-9_:]* (we emit
   lowercase only).  Every name is prefixed "sherlock_" (guaranteeing a
   legal first character), uppercase is folded, and every other illegal
   character maps to '_'.  Counters additionally get the conventional
   "_total" suffix; histograms expose "_bucket"/"_sum"/"_count" series
   with cumulative power-of-two "le" labels.  The original registry
   name is preserved verbatim in the HELP text, so mangling never loses
   the mapping back. *)

type mtype = MCounter | MGauge | MHistogram | MUnknown

let mtype_name = function
  | MCounter -> "counter"
  | MGauge -> "gauge"
  | MHistogram -> "histogram"
  | MUnknown -> "untyped"

let mangle name =
  let b = Buffer.create (String.length name + 9) in
  Buffer.add_string b "sherlock_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | '0' .. '9' | '_' | ':' -> Buffer.add_char b c
      | 'A' .. 'Z' -> Buffer.add_char b (Char.lowercase_ascii c)
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let valid_name s =
  let ok_first = function 'a' .. 'z' | '_' | ':' -> true | _ -> false in
  let ok_rest = function
    | 'a' .. 'z' | '0' .. '9' | '_' | ':' -> true
    | _ -> false
  in
  String.length s > 0
  && ok_first s.[0]
  && (let all = ref true in
      String.iteri (fun i c -> if i > 0 && not (ok_rest c) then all := false) s;
      !all)

(* HELP text escaping per the exposition format: backslash and newline. *)
let escape_help s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_str f =
  if Float.is_nan f then "NaN"
  else if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let of_point (p : Snapshot.point) =
  let b = Buffer.create 4096 in
  let header name typ raw =
    Printf.bprintf b "# HELP %s SherLock metric %s\n" name (escape_help raw);
    Printf.bprintf b "# TYPE %s %s\n" name (mtype_name typ)
  in
  (* Snapshot self-description: when the file was produced and which
     snapshot it is, so a scraper can detect staleness. *)
  header "sherlock_snapshot_timestamp_seconds" MGauge "snapshot wall-clock time";
  Printf.bprintf b "sherlock_snapshot_timestamp_seconds %s\n" (float_str p.p_ts);
  header "sherlock_snapshot_seq" MGauge "snapshots taken since plane start";
  Printf.bprintf b "sherlock_snapshot_seq %d\n" p.p_seq;
  List.iter
    (fun (raw, v) ->
      let base = mangle raw in
      (* Conventional counter suffix — but never doubled for registry
         names that already end in ".total". *)
      let name =
        if String.length base >= 6
           && String.sub base (String.length base - 6) 6 = "_total"
        then base
        else base ^ "_total"
      in
      header name MCounter raw;
      Printf.bprintf b "%s %d\n" name v)
    p.p_counters;
  List.iter
    (fun (raw, v) ->
      let name = mangle raw in
      header name MGauge raw;
      Printf.bprintf b "%s %d\n" name v)
    p.p_gauges;
  List.iter
    (fun (raw, (h : Snapshot.hist_summary)) ->
      let name = mangle raw in
      header name MHistogram raw;
      (* Cumulative buckets up to the highest populated one; bucket i's
         upper bound is 2^i (bucket 0 covers everything <= 1).  The
         final +Inf bucket always equals the count. *)
      let last = ref (-1) in
      Array.iteri (fun i n -> if n > 0 then last := i) h.h_buckets;
      let cum = ref 0 in
      for i = 0 to !last do
        cum := !cum + h.h_buckets.(i);
        let le =
          if i = 0 then 1.0 else Float.pow 2.0 (float_of_int i)
        in
        Printf.bprintf b "%s_bucket{le=\"%s\"} %d\n" name (float_str le) !cum
      done;
      Printf.bprintf b "%s_bucket{le=\"+Inf\"} %d\n" name h.h_count;
      Printf.bprintf b "%s_sum %s\n" name (float_str h.h_sum);
      Printf.bprintf b "%s_count %d\n" name h.h_count)
    p.p_hists;
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

let to_string ?registry () =
  let registry =
    match registry with Some r -> r | None -> Metrics.default
  in
  let ring = Snapshot.create ~capacity:1 ~registry () in
  of_point (Snapshot.take ~label:"export" ring)

(* Atomic rewrite: scrape-friendly — an external reader tailing the
   path never observes a half-written exposition.  The temp file sits in
   the same directory so the rename cannot cross filesystems. *)
let write_atomic path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (match output_string oc contents with
  | () -> close_out oc
  | exception e ->
    close_out_noerr oc;
    raise e);
  Sys.rename tmp path

(* ------------------------------------------------------------------ *)
(* Parser.  Covers the subset this exporter emits (which is also what
   the smoke gate validates): HELP/TYPE/EOF comment lines and samples
   with an optional single-level label set.  Errors carry the 1-based
   line number. *)

type sample = {
  s_series : string;  (* full series name, e.g. "sherlock_x_bucket" *)
  s_labels : (string * string) list;
  s_value : float;
}

type family = {
  f_name : string;
  f_type : mtype;
  f_help : string option;
  mutable f_samples : sample list;  (* file order *)
}

let parse text =
  let families : (string, family) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let get_family name =
    match Hashtbl.find_opt families name with
    | Some f -> f
    | None ->
      let f = { f_name = name; f_type = MUnknown; f_help = None; f_samples = [] } in
      Hashtbl.add families name f;
      order := name :: !order;
      f
  in
  let set_family name typ help =
    let f = get_family name in
    let f =
      match (typ, help) with
      | Some t, _ -> { f with f_type = t }
      | None, Some h -> { f with f_help = Some h }
      | None, None -> f
    in
    Hashtbl.replace families name f;
    f
  in
  (* A series name belongs to family [n] if it is [n] or [n] plus a
     conventional suffix; checked against declared families so
     "# TYPE x histogram" adopts "x_bucket". *)
  let family_of_series series =
    let strip suffix =
      if String.length series > String.length suffix
         && String.sub series
              (String.length series - String.length suffix)
              (String.length suffix)
            = suffix
      then
        Some (String.sub series 0 (String.length series - String.length suffix))
      else None
    in
    let candidates =
      series
      :: List.filter_map strip [ "_total"; "_bucket"; "_sum"; "_count"; "_created" ]
    in
    match List.find_opt (Hashtbl.mem families) candidates with
    | Some n -> n
    | None -> series
  in
  let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let parse_labels lineno s =
    (* s is the text between '{' and '}'. *)
    let parts = if s = "" then [] else String.split_on_char ',' s in
    let parse_one part =
      match String.index_opt part '=' with
      | None -> Error (Printf.sprintf "line %d: malformed label %S" lineno part)
      | Some i ->
        let k = String.sub part 0 i in
        let v = String.sub part (i + 1) (String.length part - i - 1) in
        if String.length v >= 2 && v.[0] = '"' && v.[String.length v - 1] = '"'
        then Ok (k, String.sub v 1 (String.length v - 2))
        else Error (Printf.sprintf "line %d: unquoted label value %S" lineno v)
    in
    List.fold_left
      (fun acc part ->
        match (acc, parse_one part) with
        | Error e, _ -> Error e
        | _, Error e -> Error e
        | Ok l, Ok kv -> Ok (kv :: l))
      (Ok []) parts
    |> Result.map List.rev
  in
  let lines = String.split_on_char '\n' text in
  let rec go lineno saw_eof = function
    | [] ->
      if saw_eof then
        Ok (List.rev_map (fun n -> Hashtbl.find families n) !order)
      else Error "missing # EOF terminator"
    | line :: rest ->
      let line = String.trim line in
      if line = "" then go (lineno + 1) saw_eof rest
      else if saw_eof then err lineno "content after # EOF"
      else if line = "# EOF" then go (lineno + 1) true rest
      else if String.length line > 0 && line.[0] = '#' then begin
        match String.split_on_char ' ' line with
        | "#" :: "TYPE" :: name :: [ typ ] ->
          if not (valid_name name) then
            err lineno (Printf.sprintf "invalid metric name %S" name)
          else
            let typ =
              match typ with
              | "counter" -> Some MCounter
              | "gauge" -> Some MGauge
              | "histogram" -> Some MHistogram
              | "untyped" | "unknown" | "summary" | "info" | "stateset" -> Some MUnknown
              | _ -> None
            in
            (match typ with
            | None -> err lineno "unknown TYPE"
            | Some t ->
              ignore (set_family name (Some t) None);
              go (lineno + 1) saw_eof rest)
        | "#" :: "HELP" :: name :: help_words ->
          if not (valid_name name) then
            err lineno (Printf.sprintf "invalid metric name %S" name)
          else begin
            ignore (set_family name None (Some (String.concat " " help_words)));
            go (lineno + 1) saw_eof rest
          end
        | _ -> err lineno (Printf.sprintf "malformed comment line %S" line)
      end
      else begin
        (* Sample: series[{labels}] value *)
        match String.index_opt line ' ' with
        | None -> err lineno (Printf.sprintf "malformed sample line %S" line)
        | Some sp ->
          let series_part = String.sub line 0 sp in
          let value_part =
            String.trim (String.sub line (sp + 1) (String.length line - sp - 1))
          in
          let series, labels_res =
            match String.index_opt series_part '{' with
            | None -> (series_part, Ok [])
            | Some lb ->
              if series_part.[String.length series_part - 1] <> '}' then
                (series_part, err lineno "unterminated label set")
              else
                ( String.sub series_part 0 lb,
                  parse_labels lineno
                    (String.sub series_part (lb + 1)
                       (String.length series_part - lb - 2)) )
          in
          if not (valid_name series) then
            err lineno (Printf.sprintf "invalid series name %S" series)
          else begin
            match labels_res with
            | Error e -> Error e
            | Ok s_labels -> (
              let value =
                match value_part with
                | "+Inf" -> Some infinity
                | "-Inf" -> Some neg_infinity
                | "NaN" -> Some nan
                | v -> float_of_string_opt v
              in
              match value with
              | None -> err lineno (Printf.sprintf "bad value %S" value_part)
              | Some s_value ->
                let fam = get_family (family_of_series series) in
                fam.f_samples <-
                  fam.f_samples @ [ { s_series = series; s_labels; s_value } ];
                go (lineno + 1) saw_eof rest)
          end
      end
  in
  go 1 false lines

let parse_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    parse s
