let event_cls = "System.Threading.EventWaitHandle"

let wait_cls = "System.Threading.WaitHandle"

type t = {
  id : int;
  auto : bool;
  mutable signaled : bool;
  queue : Runtime.Waitq.t;
}

let make auto signaled =
  { id = Runtime.fresh_id (); auto; signaled; queue = Runtime.Waitq.create () }

let create_manual ?(signaled = false) () = make false signaled

let create_auto ?(signaled = false) () = make true signaled

let id t = t.id

let set t =
  Runtime.frame ~cls:event_cls ~meth:"Set" ~obj:t.id (fun () ->
      t.signaled <- true;
      if t.auto then ignore (Runtime.wake_one t.queue) else ignore (Runtime.wake_all t.queue))

let reset t =
  Runtime.frame ~cls:event_cls ~meth:"Reset" ~obj:t.id (fun () -> t.signaled <- false)

(* Consume a signal: true if the handle was signaled (auto handles reset). *)
let try_consume t =
  if t.signaled then begin
    if t.auto then t.signaled <- false;
    true
  end
  else false

let wait_one t =
  Runtime.frame ~cls:wait_cls ~meth:"WaitOne" ~obj:t.id (fun () ->
      while not (try_consume t) do
        Runtime.block t.queue
      done)

let wait_all handles =
  Runtime.frame ~cls:wait_cls ~meth:"WaitAll" ~obj:0 (fun () ->
      (* Wait for each in turn; manual handles stay signaled so order is
         immaterial, and auto handles are consumed exactly once. *)
      List.iter
        (fun t ->
          while not (try_consume t) do
            Runtime.block t.queue
          done)
        handles)
