(** C#-style tasks: [Task], [TaskFactory.StartNew], [Task.Run], and
    [ContinueWith].

    Every task runs its *delegate* on a fresh thread, and the delegate
    body executes inside an application method frame named by the caller
    ([~delegate:(cls, meth)]) with the task's object id — so the trace
    shows, e.g., [Task::Start-End] (release) in the parent and
    [App.Worker::<Run>b0-Begin] (acquire) in the child, exactly the
    pattern SherLock infers in the paper's Tables 8/9. *)

type t

val create : ?delegate:string * string -> (unit -> unit) -> t
(** A cold task; nothing runs until {!start}. *)

val start : t -> unit
(** Traced [System.Threading.Tasks.Task::Start]; forks the delegate. *)

val wait : t -> unit
(** Traced [System.Threading.Tasks.Task::Wait]; blocks until the delegate
    completed. *)

val run : ?delegate:string * string -> (unit -> unit) -> t
(** Traced [System.Threading.Tasks.Task::Run]: create + start. *)

val continue_with : t -> ?delegate:string * string -> (unit -> unit) -> t
(** Traced [System.Threading.Tasks.Task::ContinueWith]: schedules the
    second delegate to start after the first task completes (Figure 3.D). *)

val start_new : ?delegate:string * string -> (unit -> unit) -> t
(** Traced [System.Threading.Tasks.TaskFactory::StartNew] — one of the
    "numerous ways of creating tasks" that the paper's manual annotation
    baseline fails to cover (§5.4). *)

val is_completed : t -> bool

val id : t -> int

val cls : string
(** ["System.Threading.Tasks.Task"]. *)

val factory_cls : string
(** ["System.Threading.Tasks.TaskFactory"]. *)
