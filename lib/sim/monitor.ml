let cls = "System.Threading.Monitor"

exception Not_owner of {
  lock : int;
  owner : int option;
  caller : int;
}

let () =
  Printexc.register_printer (function
    | Not_owner { lock; owner; caller } ->
      let owner =
        match owner with
        | None -> "unlocked"
        | Some o -> Printf.sprintf "owned by tid %d" o
      in
      Some
        (Printf.sprintf "Monitor.Not_owner(lock=%d, %s, caller=tid %d)" lock
           owner caller)
    | _ -> None)

type t = {
  id : int;
  mutable owner : int option;
  mutable depth : int;
  queue : Runtime.Waitq.t;
}

let create () =
  { id = Runtime.fresh_id (); owner = None; depth = 0; queue = Runtime.Waitq.create () }

let enter t =
  Runtime.frame ~cls ~meth:"Enter" ~obj:t.id (fun () ->
      let me = Runtime.self () in
      let rec loop () =
        match t.owner with
        | None ->
          t.owner <- Some me;
          t.depth <- 1
        | Some o when o = me -> t.depth <- t.depth + 1
        | Some _ ->
          Runtime.block t.queue;
          loop ()
      in
      loop ())

let exit t =
  Runtime.frame ~cls ~meth:"Exit" ~obj:t.id (fun () ->
      let me = Runtime.self () in
      (match t.owner with
      | Some o when o = me -> ()
      | owner -> raise (Not_owner { lock = t.id; owner; caller = me }));
      t.depth <- t.depth - 1;
      if t.depth = 0 then begin
        t.owner <- None;
        ignore (Runtime.wake_one t.queue)
      end)

let with_lock t f =
  enter t;
  match f () with
  | v ->
    exit t;
    v
  | exception e ->
    exit t;
    raise e
