type interval = {
  tid : int;
  start : int;
  stop : int;
}

type t = {
  threads : (int * string) list;
  lifetimes : (int * int * int) list;
  blocked : interval list;
}

let empty = { threads = []; lifetimes = []; blocked = [] }

let recorder () =
  let names : (int, string) Hashtbl.t = Hashtbl.create 8 in
  let spawned : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let finished : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let block_start : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let blocked = ref [] in
  Hashtbl.add names 0 "main";
  Hashtbl.add spawned 0 0;
  let hooks =
    {
      Runtime.no_hooks with
      on_spawn =
        (fun ~parent:_ ~tid ~name ~time ->
          Hashtbl.replace names tid name;
          Hashtbl.replace spawned tid time);
      on_block = (fun ~tid ~time -> Hashtbl.replace block_start tid time);
      on_wake =
        (fun ~waker:_ ~tid ~time ->
          match Hashtbl.find_opt block_start tid with
          | None -> ()
          | Some start ->
            Hashtbl.remove block_start tid;
            blocked := { tid; start; stop = time } :: !blocked);
      on_finish = (fun ~tid ~time -> Hashtbl.replace finished tid time);
    }
  in
  let finish ~duration =
    let still_blocked =
      Hashtbl.fold
        (fun tid start acc -> { tid; start; stop = duration } :: acc)
        block_start []
    in
    let threads =
      Hashtbl.fold (fun tid name acc -> (tid, name) :: acc) names []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    in
    let lifetimes =
      List.map
        (fun (tid, _) ->
          let spawn = Option.value ~default:0 (Hashtbl.find_opt spawned tid) in
          let fin =
            Option.value ~default:duration (Hashtbl.find_opt finished tid)
          in
          (tid, spawn, fin))
        threads
    in
    {
      threads;
      lifetimes;
      blocked =
        List.sort
          (fun a b -> Int.compare a.start b.start)
          (still_blocked @ !blocked);
    }
  in
  (hooks, finish)

let blocked_of_thread t tid = List.filter (fun i -> i.tid = tid) t.blocked
