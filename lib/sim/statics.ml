type state =
  | Uninitialized
  | Running of int (* initializing thread *)
  | Done

type t = {
  cls : string;
  ctor : unit -> unit;
  mutable state : state;
  queue : Runtime.Waitq.t;
}

let declare ~cls ctor =
  { cls; ctor; state = Uninitialized; queue = Runtime.Waitq.create () }

let initialized t = t.state = Done

let rec ensure t =
  match t.state with
  | Done -> ()
  | Running tid when tid = Runtime.self () -> () (* reentrant, as in C# *)
  | Running _ ->
    Runtime.block t.queue;
    ensure t
  | Uninitialized ->
    t.state <- Running (Runtime.self ());
    Runtime.frame ~cls:t.cls ~meth:".cctor" (fun () -> t.ctor ());
    t.state <- Done;
    ignore (Runtime.wake_all t.queue)
