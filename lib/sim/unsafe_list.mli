(** A deliberately thread-unsafe collection
    ([System.Collections.Generic.List]).

    Its operations are traced as read/write *accesses* on the collection's
    address — the paper's optional thread-unsafe-API list (§4.1): two
    concurrent calls with at least one mutator form a conflicting pair
    exactly like raw field accesses, and they are also the call pairs the
    TSVD baseline targets. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> 'a -> unit
(** Traced as a write access [Write-System.Collections.Generic.List::Add]. *)

val contains : 'a t -> 'a -> bool
(** Traced as a read access. *)

val count : 'a t -> int
(** Traced as a read access. *)

val to_list : 'a t -> 'a list
(** Untraced, for assertions. *)

val id : 'a t -> int

val cls : string
(** ["System.Collections.Generic.List"]. *)
