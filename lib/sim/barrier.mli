(** A C#-style [System.Threading.Barrier].

    [signal_and_wait] releases the current phase's work (arrival
    publishes) and acquires everyone else's (departure observes) — an
    API that inherently has both roles, like the paper's
    UpgradeToWriteLock discussion.  The manually-annotated race-detection
    baseline supports barriers (paper §5.4). *)

type t

val create : int -> t
(** Number of participants per phase; must be positive. *)

val signal_and_wait : t -> unit
(** Traced [System.Threading.Barrier::SignalAndWait]; blocks until all
    participants of the current phase arrived, then releases them all and
    starts the next phase. *)

val phase : t -> int
(** Completed phases so far. *)

val id : t -> int

val cls : string
(** ["System.Threading.Barrier"]. *)
