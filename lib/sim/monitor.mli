(** A C#-style monitor (reentrant mutual-exclusion lock).

    Call sites are traced as [System.Threading.Monitor::Enter/Exit] with
    the lock's object id, which is what lets SherLock infer
    [Enter]-begin as an acquire and [Exit]-end as a release with no
    knowledge of the implementation. *)

type t

exception Not_owner of {
  lock : int;  (** the lock's object id *)
  owner : int option;  (** current owner tid, or [None] if unlocked *)
  caller : int;  (** tid of the offending caller *)
}
(** Raised by {!exit} on lock misuse; carries enough context to make the
    report actionable in fault-injected runs. *)

val create : unit -> t
(** Must be called inside a running simulation. *)

val enter : t -> unit
(** Blocks until the lock is free; reentrant. *)

val exit : t -> unit
(** Releases one level of ownership and wakes a waiter.  Raises
    {!Not_owner} if the caller does not own the lock. *)

val with_lock : t -> (unit -> 'a) -> 'a
(** [enter]/[exit] bracket, exception-safe. *)

val cls : string
(** ["System.Threading.Monitor"]. *)
