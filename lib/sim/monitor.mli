(** A C#-style monitor (reentrant mutual-exclusion lock).

    Call sites are traced as [System.Threading.Monitor::Enter/Exit] with
    the lock's object id, which is what lets SherLock infer
    [Enter]-begin as an acquire and [Exit]-end as a release with no
    knowledge of the implementation. *)

type t

val create : unit -> t
(** Must be called inside a running simulation. *)

val enter : t -> unit
(** Blocks until the lock is free; reentrant. *)

val exit : t -> unit
(** Releases one level of ownership and wakes a waiter.  Raises [Failure]
    if the caller does not own the lock. *)

val with_lock : t -> (unit -> 'a) -> 'a
(** [enter]/[exit] bracket, exception-safe. *)

val cls : string
(** ["System.Threading.Monitor"]. *)
