(** Traced heap cells.

    Every cell belongs to a named class field ([cls::field]); its dynamic
    address is fresh per allocation, while the static {!Sherlock_trace.Opid.t}
    identifies the field — the same split the paper uses (variables are
    identified by fully-qualified type; all dynamic instances share one
    inference variable).

    [read]/[write] emit trace events and are scheduling points; [peek] and
    [poke] are the untraced back-door used by the internals of
    synchronization primitives, which the paper's instrumentation likewise
    does not see. *)

type 'a t

val cell : cls:string -> field:string -> ?volatile:bool -> 'a -> 'a t
(** Allocate inside a running simulation.  [volatile] marks the address in
    the log for the manually-annotated race detector only. *)

val read : 'a t -> 'a

val write : 'a t -> 'a -> unit

val peek : 'a t -> 'a

val poke : 'a t -> 'a -> unit

val addr : 'a t -> int

val cls : 'a t -> string

val field : 'a t -> string

val spin_until : 'a t -> ('a -> bool) -> unit
(** Spin-wait with randomized backoff, emitting a traced read per
    iteration — the shape of the while-loop flag synchronization of the
    paper's Figure 3.B. *)

val getter : 'a t -> 'a
(** C# property accessor tracing (paper §4.1 traces "getter and setter
    methods of public properties"): a read access under the member name
    [get_<field>]. *)

val setter : 'a t -> 'a -> unit
(** The matching property setter: a write access under [set_<field>]. *)
