open Sherlock_trace
module Rng = Sherlock_util.Rng

exception Deadlock of string

exception Stalled of {
  steps : int;
  runnable : string;
}

let () =
  Printexc.register_printer (function
    | Stalled { steps; runnable } ->
      Some
        (Printf.sprintf "Runtime.Stalled(%d scheduler steps; alive: %s)" steps
           runnable)
    | _ -> None)

type instrument = {
  trace : bool;
  delay_before : Opid.t -> int;
}

let no_instrument = { trace = false; delay_before = (fun _ -> 0) }

let tracing ?(delay_before = fun _ -> 0) () = { trace = true; delay_before }

type hooks = {
  on_spawn : parent:int -> tid:int -> name:string -> time:int -> unit;
  on_block : tid:int -> time:int -> unit;
  on_wake : waker:int -> tid:int -> time:int -> unit;
  on_pick : tid:int -> time:int -> runnable:int -> unit;
  on_finish : tid:int -> time:int -> unit;
  on_fault : tid:int -> op:int -> action:Fault.action -> time:int -> unit;
}

let no_hooks =
  {
    on_spawn = (fun ~parent:_ ~tid:_ ~name:_ ~time:_ -> ());
    on_block = (fun ~tid:_ ~time:_ -> ());
    on_wake = (fun ~waker:_ ~tid:_ ~time:_ -> ());
    on_pick = (fun ~tid:_ ~time:_ ~runnable:_ -> ());
    on_finish = (fun ~tid:_ ~time:_ -> ());
    on_fault = (fun ~tid:_ ~op:_ ~action:_ ~time:_ -> ());
  }

(* When telemetry is on, scheduling decisions additionally bump the
   process-wide counters; the counters are resolved once per [run]. *)
let counting_hooks base =
  let module Tm = Sherlock_telemetry.Metrics in
  let picks = Tm.counter "sim.sched.picks"
  and blocks = Tm.counter "sim.sched.blocks"
  and wakes = Tm.counter "sim.sched.wakes"
  and spawns = Tm.counter "sim.sched.spawns"
  and faults = Tm.counter "sim.fault.injected" in
  {
    on_spawn =
      (fun ~parent ~tid ~name ~time ->
        Tm.Counter.incr spawns;
        base.on_spawn ~parent ~tid ~name ~time);
    on_block =
      (fun ~tid ~time ->
        Tm.Counter.incr blocks;
        base.on_block ~tid ~time);
    on_wake =
      (fun ~waker ~tid ~time ->
        Tm.Counter.incr wakes;
        base.on_wake ~waker ~tid ~time);
    on_pick =
      (fun ~tid ~time ~runnable ->
        Tm.Counter.incr picks;
        base.on_pick ~tid ~time ~runnable);
    on_finish = base.on_finish;
    on_fault =
      (fun ~tid ~op ~action ~time ->
        Tm.Counter.incr faults;
        base.on_fault ~tid ~op ~action ~time);
  }

type thread = {
  tid : int;
  name : string;
  daemon : bool;
  mutable clock : int;
  mutable alive : bool;
  mutable blocked : bool;
  mutable ops : int;  (** traced operations performed, the fault-site index *)
}

module Waitq = struct
  type t = { mutable entries : (thread * (unit -> unit)) list (* FIFO, append at tail *) }

  let create () = { entries = [] }

  let waiters t = List.length t.entries
end

type world = {
  rng : Rng.t;
  instrument : instrument;
  hooks : hooks;
  noise : int;
  fault : Fault.plan;
  fault_sites : bool;  (* [Fault.has_sites fault], hoisted off the hot path *)
  max_steps : int;  (* scheduler picks before [Stalled]; 0 = unlimited *)
  mutable steps : int;
  mutable threads : thread list;
  mutable ready : (thread * (unit -> unit)) list;
  mutable waitqs : Waitq.t list;  (* every queue ever blocked on, for spurious wakeups *)
  events : Log.Builder.t;
  mutable live_nondaemon : int;
  volatile_addrs : (int, unit) Hashtbl.t;
  mutable next_id : int;
  mutable next_tid : int;
  slots : (string, Obj.t) Hashtbl.t;
  mutable max_clock : int;
}

type _ Effect.t +=
  | Traced : Opid.t * int -> unit Effect.t
  | Spawn : bool * string * (unit -> unit) -> int Effect.t
  | Self : int Effect.t
  | Now : int Effect.t
  | Sleep : int -> unit Effect.t
  | Block : Waitq.t -> unit Effect.t
  | Wake : Waitq.t * bool -> int Effect.t
  | Rand : int -> int Effect.t
  | Fresh : int Effect.t
  | Volatile : int -> unit Effect.t
  | Slot_find : string * (unit -> Obj.t) -> Obj.t Effect.t

let outside_run name =
  failwith (name ^ ": must be called from inside Runtime.run")

(* Thread-side API: each of these just performs an effect; the scheduler's
   handler interprets it. *)
let traced op ~target =
  try Effect.perform (Traced (op, target)) with Effect.Unhandled _ -> outside_run "traced"

let spawn ?(daemon = false) ~name body =
  try Effect.perform (Spawn (daemon, name, body)) with Effect.Unhandled _ -> outside_run "spawn"

let self () = try Effect.perform Self with Effect.Unhandled _ -> outside_run "self"

let now () = try Effect.perform Now with Effect.Unhandled _ -> outside_run "now"

let sleep n = try Effect.perform (Sleep n) with Effect.Unhandled _ -> outside_run "sleep"

let yield () = sleep 1

let rand_int n = try Effect.perform (Rand n) with Effect.Unhandled _ -> outside_run "rand_int"

let cpu lo hi =
  if hi < lo then invalid_arg "Runtime.cpu: hi < lo";
  sleep (lo + rand_int (hi - lo + 1))

let fresh_id () = try Effect.perform Fresh with Effect.Unhandled _ -> outside_run "fresh_id"

let register_volatile addr =
  try Effect.perform (Volatile addr) with Effect.Unhandled _ -> outside_run "register_volatile"

let block q = try Effect.perform (Block q) with Effect.Unhandled _ -> outside_run "block"

let wake_one q =
  try Effect.perform (Wake (q, false)) with Effect.Unhandled _ -> outside_run "wake_one"

let wake_all q =
  try Effect.perform (Wake (q, true)) with Effect.Unhandled _ -> outside_run "wake_all"

let frame ~cls ~meth ?(obj = 0) f =
  traced (Opid.enter ~cls meth) ~target:obj;
  let finish () = traced (Opid.exit ~cls meth) ~target:obj in
  match f () with
  | v ->
    finish ();
    v
  | exception e ->
    finish ();
    raise e

module Slot = struct
  type 'a t = string

  let create name = "slot:" ^ name

  (* The default closure runs handler-side and therefore must not perform
     effects; primitives needing effectful initialization store a flag in
     the slot value and finish initialization from thread context. *)
  let find (key : 'a t) ~default =
    let boxed =
      try Effect.perform (Slot_find (key, fun () -> Obj.repr (default ())))
      with Effect.Unhandled _ -> outside_run "Slot.find"
    in
    (Obj.obj boxed : 'a)
end

let bump_clock w t dt =
  t.clock <- t.clock + dt;
  if t.clock > w.max_clock then w.max_clock <- t.clock

let push_ready w t resume = w.ready <- (t, resume) :: w.ready

(* Pick the ready thread with the smallest clock; random tie-break keeps
   equal-clock orderings varied across seeds. *)
let pick w =
  match w.ready with
  | [] -> None
  | ready ->
    let min_clock = List.fold_left (fun acc (t, _) -> min acc t.clock) max_int ready in
    let mins = List.filter (fun (t, _) -> t.clock = min_clock) ready in
    let t, resume =
      match mins with
      | [ one ] -> one
      | _ -> List.nth mins (Rng.int w.rng (List.length mins))
    in
    w.ready <- List.filter (fun (t', _) -> t'.tid <> t.tid) ready;
    w.hooks.on_pick ~tid:t.tid ~time:t.clock ~runnable:(List.length ready);
    Some (t, resume)

let op_cost w =
  let base = 1 + Rng.int w.rng 3 in
  if w.noise > 0 && Rng.int w.rng w.noise = 0 then base + Rng.int w.rng 150 else base

(* A spurious-wakeup fault: resume every thread blocked on any wait queue
   as if it had been signalled by [t].  The primitives all re-check their
   condition in a loop, so a correct workload makes no extra progress —
   but its schedule, and any latent wakeup-assuming bug, is exercised.
   Queues are visited in registration order, so the effect is
   deterministic. *)
let spurious_wake_all w t =
  List.iter
    (fun (q : Waitq.t) ->
      let entries = q.entries in
      q.entries <- [];
      List.iter
        (fun ((wt : thread), resume) ->
          if wt.clock < t.clock + 1 then wt.clock <- t.clock + 1;
          w.hooks.on_wake ~waker:t.tid ~tid:wt.tid ~time:wt.clock;
          push_ready w wt resume)
        entries)
    (List.rev w.waitqs)

let rec exec_thread : world -> thread -> (unit -> unit) -> unit =
 fun w t body ->
  let open Effect.Deep in
  let finish () =
    t.alive <- false;
    if not t.daemon then w.live_nondaemon <- w.live_nondaemon - 1;
    w.hooks.on_finish ~tid:t.tid ~time:t.clock
  in
  match_with body ()
    {
      retc = (fun () -> finish ());
      exnc =
        (fun e ->
          finish ();
          raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Traced (op, target) ->
            Some
              (fun (k : (a, unit) continuation) ->
                t.ops <- t.ops + 1;
                let fault =
                  if w.fault_sites then Fault.find w.fault ~tid:t.tid ~op:t.ops
                  else None
                in
                match fault with
                | Some Fault.Crash ->
                  (* The thread raises at its next pick, unwinding through
                     the workload's own handlers like any exception. *)
                  w.hooks.on_fault ~tid:t.tid ~op:t.ops ~action:Fault.Crash
                    ~time:t.clock;
                  let exn = Fault.Injected_crash { tid = t.tid; op = t.ops } in
                  push_ready w t (fun () -> discontinue k exn)
                | Some Fault.Hang ->
                  (* Blocked forever: never pushed ready, never woken (not
                     even spuriously — the continuation is dropped). *)
                  w.hooks.on_fault ~tid:t.tid ~op:t.ops ~action:Fault.Hang
                    ~time:t.clock;
                  t.blocked <- true;
                  w.hooks.on_block ~tid:t.tid ~time:t.clock
                | (Some (Fault.Spurious_wakeup | Fault.Delay_inflation) | None)
                  as f ->
                  (match f with
                  | Some Fault.Spurious_wakeup ->
                    w.hooks.on_fault ~tid:t.tid ~op:t.ops
                      ~action:Fault.Spurious_wakeup ~time:t.clock;
                    spurious_wake_all w t
                  | _ -> ());
                  let delay = w.instrument.delay_before op in
                  let factor = Fault.delay_factor w.fault in
                  let delay =
                    if delay > 0 && factor > 1 then begin
                      w.hooks.on_fault ~tid:t.tid ~op:t.ops
                        ~action:Fault.Delay_inflation ~time:t.clock;
                      delay * factor
                    end
                    else delay
                  in
                  if delay > 0 then bump_clock w t delay;
                  bump_clock w t (op_cost w);
                  if w.instrument.trace then
                    Log.Builder.add w.events
                      (Event.make ~time:t.clock ~tid:t.tid ~op ~target
                         ~delayed_by:delay ());
                  push_ready w t (fun () -> continue k ()))
          | Sleep n ->
            Some
              (fun (k : (a, unit) continuation) ->
                bump_clock w t (max 1 n);
                push_ready w t (fun () -> continue k ()))
          | Block q ->
            Some
              (fun (k : (a, unit) continuation) ->
                t.blocked <- true;
                w.hooks.on_block ~tid:t.tid ~time:t.clock;
                if not (List.memq q w.waitqs) then w.waitqs <- q :: w.waitqs;
                q.entries <-
                  q.entries
                  @ [
                      ( t,
                        fun () ->
                          t.blocked <- false;
                          continue k () );
                    ])
          | Wake (q, all) ->
            Some
              (fun (k : (a, unit) continuation) ->
                let wake (wt, resume) =
                  if wt.clock < t.clock + 1 then wt.clock <- t.clock + 1;
                  w.hooks.on_wake ~waker:t.tid ~tid:wt.tid ~time:wt.clock;
                  push_ready w wt resume
                in
                let n =
                  match q.entries with
                  | [] -> 0
                  | first :: rest when not all ->
                    q.entries <- rest;
                    wake first;
                    1
                  | entries ->
                    q.entries <- [];
                    List.iter wake entries;
                    List.length entries
                in
                bump_clock w t 1;
                push_ready w t (fun () -> continue k n))
          | Spawn (daemon, name, child_body) ->
            Some
              (fun (k : (a, unit) continuation) ->
                let child =
                  {
                    tid = w.next_tid;
                    name;
                    daemon;
                    clock = t.clock + 1;
                    alive = true;
                    blocked = false;
                    ops = 0;
                  }
                in
                w.next_tid <- w.next_tid + 1;
                w.threads <- child :: w.threads;
                if not daemon then w.live_nondaemon <- w.live_nondaemon + 1;
                w.hooks.on_spawn ~parent:t.tid ~tid:child.tid ~name
                  ~time:child.clock;
                push_ready w child (fun () -> exec_thread w child child_body);
                bump_clock w t 1;
                push_ready w t (fun () -> continue k child.tid))
          | Self -> Some (fun (k : (a, unit) continuation) -> continue k t.tid)
          | Now -> Some (fun (k : (a, unit) continuation) -> continue k t.clock)
          | Rand n -> Some (fun (k : (a, unit) continuation) -> continue k (Rng.int w.rng n))
          | Fresh ->
            Some
              (fun (k : (a, unit) continuation) ->
                w.next_id <- w.next_id + 1;
                continue k w.next_id)
          | Volatile addr ->
            Some
              (fun (k : (a, unit) continuation) ->
                Hashtbl.replace w.volatile_addrs addr ();
                continue k ())
          | Slot_find (key, init) ->
            Some
              (fun (k : (a, unit) continuation) ->
                let v =
                  match Hashtbl.find_opt w.slots key with
                  | Some v -> v
                  | None ->
                    let v = init () in
                    Hashtbl.add w.slots key v;
                    v
                in
                continue k v)
          | _ -> None);
    }

let run ?(seed = 0) ?(instrument = no_instrument) ?(noise = 40)
    ?(hooks = no_hooks) ?(fault = Fault.empty) ?(max_steps = 0) body =
  let hooks =
    if Sherlock_telemetry.Metrics.enabled () then counting_hooks hooks else hooks
  in
  let w =
    {
      rng = Rng.create seed;
      instrument;
      hooks;
      noise;
      fault;
      fault_sites = Fault.has_sites fault;
      max_steps;
      steps = 0;
      threads = [];
      ready = [];
      waitqs = [];
      events = Log.Builder.create ();
      live_nondaemon = 1;
      volatile_addrs = Hashtbl.create 16;
      next_id = 0;
      next_tid = 1;
      slots = Hashtbl.create 16;
      max_clock = 0;
    }
  in
  let main =
    {
      tid = 0;
      name = "main";
      daemon = false;
      clock = 0;
      alive = true;
      blocked = false;
      ops = 0;
    }
  in
  w.threads <- [ main ];
  push_ready w main (fun () -> exec_thread w main body);
  let rec loop () =
    if w.live_nondaemon > 0 then
      match pick w with
      | Some (_, resume) ->
        w.steps <- w.steps + 1;
        if w.max_steps > 0 && w.steps > w.max_steps then begin
          (* Livelock watchdog: the run is making scheduler transitions
             but no non-daemon thread is finishing — convert it into a
             structured outcome like [Deadlock]. *)
          let alive = List.filter (fun t -> t.alive) w.threads in
          let names = String.concat ", " (List.map (fun t -> t.name) alive) in
          raise (Stalled { steps = w.steps; runnable = names })
        end;
        resume ();
        loop ()
      | None ->
        let stuck =
          List.filter (fun t -> t.alive && t.blocked && not t.daemon) w.threads
        in
        let names = String.concat ", " (List.map (fun t -> t.name) stuck) in
        raise (Deadlock names)
  in
  loop ();
  Log.Builder.finish w.events ~duration:w.max_clock ~threads:w.next_tid
    ~volatile_addrs:w.volatile_addrs
