(** A C#-style [ReaderWriterLock].

    Besides the four plain acquire/release methods it offers
    [upgrade_to_writer_lock], which the paper singles out (§5.5) as a
    violation of SherLock's Single-Role assumption: within one API call it
    *releases* the caller's reader lock and then *acquires* the writer
    lock, so no single acquire-or-release label fits it. *)

type t

val create : unit -> t

val acquire_reader : t -> unit
val release_reader : t -> unit
val acquire_writer : t -> unit
val release_writer : t -> unit

val upgrade_to_writer_lock : t -> unit
(** Caller must hold a reader lock; atomically gives it up and blocks
    until the writer lock is granted. *)

val downgrade_from_writer_lock : t -> unit
(** Caller must hold the writer lock; converts it into a reader lock and
    wakes blocked readers. *)

val cls : string
(** ["System.Threading.ReaderWriterLock"]. *)
