(** Virtual-time schedule capture.

    A {!recorder} plugs into {!Runtime.run}'s scheduling hooks and folds
    the block/wake/spawn/finish decisions into per-thread lifetimes and
    blocked intervals — the data the telemetry timeline exporter renders
    as running/blocked tracks next to each thread's method frames.  The
    trace log alone cannot recover this: blocked threads emit no events,
    so a gap in a thread's event stream is ambiguous between "blocked"
    and "scheduled late"; the hooks disambiguate. *)

type interval = {
  tid : int;
  start : int;  (** virtual us the thread suspended *)
  stop : int;   (** virtual us it was woken (or the run's end) *)
}

type t = {
  threads : (int * string) list;       (** tid, name — ascending tid *)
  lifetimes : (int * int * int) list;  (** tid, spawn time, finish time *)
  blocked : interval list;             (** in wake order *)
}

val empty : t
(** No threads, no intervals (placeholder for logs loaded from disk,
    which carry no schedule). *)

val recorder : unit -> Runtime.hooks * (duration:int -> t)
(** A fresh recorder: pass the hooks to {!Runtime.run}, then call the
    closure with the finished log's duration to obtain the schedule
    (open blocked intervals and unfinished threads are closed at
    [duration]; the main thread is always present). *)

val blocked_of_thread : t -> int -> interval list
(** The blocked intervals of one thread, in time order. *)
