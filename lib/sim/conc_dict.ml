let cls = "System.Collections.Concurrent.ConcurrentDictionary"

type ('k, 'v) t = {
  id : int;
  table : ('k, 'v) Hashtbl.t;
  mutable locked : bool;
  queue : Runtime.Waitq.t;
}

let create () =
  {
    id = Runtime.fresh_id ();
    table = Hashtbl.create 16;
    locked = false;
    queue = Runtime.Waitq.create ();
  }

let id t = t.id

(* Internal, untraced lock: the paper's instrumentation does not see the
   dictionary's innards either — only the GetOrAdd call sites. *)
let lock t =
  while t.locked do
    Runtime.block t.queue
  done;
  t.locked <- true

let unlock t =
  t.locked <- false;
  ignore (Runtime.wake_one t.queue)

let get_or_add t key ~delegate f =
  Runtime.frame ~cls ~meth:"GetOrAdd" ~obj:t.id (fun () ->
      lock t;
      let v =
        match Hashtbl.find_opt t.table key with
        | Some v -> v
        | None ->
          let dcls, dmeth = delegate in
          let v = Runtime.frame ~cls:dcls ~meth:dmeth ~obj:t.id f in
          Hashtbl.replace t.table key v;
          v
      in
      unlock t;
      v)

let find_opt t key = Hashtbl.find_opt t.table key
