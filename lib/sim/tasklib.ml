let cls = "System.Threading.Tasks.Task"

let factory_cls = "System.Threading.Tasks.TaskFactory"

type t = {
  id : int;
  body : unit -> unit;
  delegate : (string * string) option;
  mutable completed : bool;
  mutable continuations : t list;
  done_queue : Runtime.Waitq.t;
}

let create ?delegate body =
  {
    id = Runtime.fresh_id ();
    body;
    delegate;
    completed = false;
    continuations = [];
    done_queue = Runtime.Waitq.create ();
  }

let id t = t.id

let is_completed t = t.completed

let run_delegate t =
  match t.delegate with
  | Some (cls, meth) -> Runtime.frame ~cls ~meth ~obj:t.id t.body
  | None -> t.body ()

let rec fork t =
  ignore
    (Runtime.spawn ~name:(Printf.sprintf "task-%d" t.id) (fun () ->
         run_delegate t;
         t.completed <- true;
         ignore (Runtime.wake_all t.done_queue);
         (* Completed continuations start now, on their own threads. *)
         let conts = t.continuations in
         t.continuations <- [];
         List.iter fork conts))

let start t = Runtime.frame ~cls ~meth:"Start" ~obj:t.id (fun () -> fork t)

let wait t =
  Runtime.frame ~cls ~meth:"Wait" ~obj:t.id (fun () ->
      while not t.completed do
        Runtime.block t.done_queue
      done)

let run ?delegate body =
  let t = create ?delegate body in
  Runtime.frame ~cls ~meth:"Run" ~obj:t.id (fun () -> fork t);
  t

let continue_with t ?delegate body =
  let next = create ?delegate body in
  Runtime.frame ~cls ~meth:"ContinueWith" ~obj:next.id (fun () ->
      if t.completed then fork next else t.continuations <- next :: t.continuations);
  next

let start_new ?delegate body =
  let t = create ?delegate body in
  Runtime.frame ~cls:factory_cls ~meth:"StartNew" ~obj:t.id (fun () -> fork t);
  t
