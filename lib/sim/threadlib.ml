let cls = "System.Threading.Thread"

type t = {
  id : int;
  body : unit -> unit;
  delegate : (string * string) option;
  mutable completed : bool;
  done_queue : Runtime.Waitq.t;
}

let create ?delegate body =
  {
    id = Runtime.fresh_id ();
    body;
    delegate;
    completed = false;
    done_queue = Runtime.Waitq.create ();
  }

let id t = t.id

let start t =
  Runtime.frame ~cls ~meth:"Start" ~obj:t.id (fun () ->
      ignore
        (Runtime.spawn ~name:(Printf.sprintf "thread-%d" t.id) (fun () ->
             (match t.delegate with
             | Some (cls, meth) -> Runtime.frame ~cls ~meth ~obj:t.id t.body
             | None -> t.body ());
             t.completed <- true;
             ignore (Runtime.wake_all t.done_queue))))

let join t =
  Runtime.frame ~cls ~meth:"Join" ~obj:t.id (fun () ->
      while not t.completed do
        Runtime.block t.done_queue
      done)
