let cls = "System.Threading.SemaphoreSlim"

type t = {
  id : int;
  mutable count : int;
  queue : Runtime.Waitq.t;
}

let create n =
  if n < 0 then invalid_arg "Semaphore.create: negative count";
  { id = Runtime.fresh_id (); count = n; queue = Runtime.Waitq.create () }

let id t = t.id

let count t = t.count

let wait t =
  Runtime.frame ~cls ~meth:"Wait" ~obj:t.id (fun () ->
      while t.count = 0 do
        Runtime.block t.queue
      done;
      t.count <- t.count - 1)

let release t =
  Runtime.frame ~cls ~meth:"Release" ~obj:t.id (fun () ->
      t.count <- t.count + 1;
      ignore (Runtime.wake_one t.queue))
