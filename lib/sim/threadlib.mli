(** C#-style dedicated threads ([System.Threading.Thread]).

    [start] is the fork release and the delegate's [Begin] the matching
    acquire; [join] is the join acquire with the delegate's [End] as
    release — the classic fork-join pair FastTrack-style detectors track. *)

type t

val create : ?delegate:string * string -> (unit -> unit) -> t

val start : t -> unit
(** Traced [System.Threading.Thread::Start]. *)

val join : t -> unit
(** Traced [System.Threading.Thread::Join]; blocks until the delegate
    finished. *)

val id : t -> int

val cls : string
(** ["System.Threading.Thread"]. *)
