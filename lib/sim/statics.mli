(** C# static-constructor semantics.

    The language guarantees that a class's static constructor completes
    before any other access to the class; the end of the [.cctor] is thus
    a release and the first access after it an acquire — a
    language-enforced happens-before edge with no explicit primitive
    (paper §5.3.3), inferred by SherLock without knowing the semantics. *)

type t

val declare : cls:string -> (unit -> unit) -> t
(** Declare a class with a static constructor body, once per run (the
    returned handle is bound to the current run). *)

val ensure : t -> unit
(** Run before any static member access: triggers the [.cctor] (traced as
    [cls::.cctor]) on the first call and blocks concurrent callers until
    it finishes.  Reentrant from the initializing thread. *)

val initialized : t -> bool
