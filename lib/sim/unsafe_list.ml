open Sherlock_trace

let cls = "System.Collections.Generic.List"

type 'a t = {
  id : int;
  mutable items : 'a list;
}

let create () = { id = Runtime.fresh_id (); items = [] }

let id t = t.id

let add t x =
  Runtime.traced (Opid.write ~cls "Add") ~target:t.id;
  t.items <- x :: t.items

let contains t x =
  Runtime.traced (Opid.read ~cls "Contains") ~target:t.id;
  List.mem x t.items

let count t =
  Runtime.traced (Opid.read ~cls "Count") ~target:t.id;
  List.length t.items

let to_list t = List.rev t.items
