module Rng = Sherlock_util.Rng

type action =
  | Crash
  | Hang
  | Spurious_wakeup
  | Delay_inflation

type site = {
  tid : int;
  op : int;
  action : action;
}

type plan = {
  plan_sites : site list;
  plan_delay_factor : int;
}

exception Injected_crash of {
  tid : int;
  op : int;
}

let () =
  Printexc.register_printer (function
    | Injected_crash { tid; op } ->
      Some (Printf.sprintf "Fault.Injected_crash(tid=%d, op=%d)" tid op)
    | _ -> None)

let empty = { plan_sites = []; plan_delay_factor = 1 }

let is_empty p = p.plan_sites = [] && p.plan_delay_factor = 1

let make ?(delay_factor = 1) sites =
  if delay_factor < 1 then invalid_arg "Fault.make: delay_factor must be >= 1";
  List.iter
    (fun s ->
      if s.tid < 0 then invalid_arg "Fault.make: tid must be >= 0";
      if s.op < 1 then invalid_arg "Fault.make: op must be >= 1";
      if s.action = Delay_inflation then
        invalid_arg "Fault.make: delay inflation is plan-wide, not a site")
    sites;
  { plan_sites = sites; plan_delay_factor = delay_factor }

let sites p = p.plan_sites

let has_sites p = p.plan_sites <> []

let delay_factor p = p.plan_delay_factor

let find p ~tid ~op =
  List.find_opt (fun s -> s.tid = tid && s.op = op) p.plan_sites
  |> Option.map (fun s -> s.action)

let action_name = function
  | Crash -> "crash"
  | Hang -> "hang"
  | Spurious_wakeup -> "wakeup"
  | Delay_inflation -> "delay-inflation"

(* --- Spec syntax: "crash:tid=2,op=40", "delay-factor:8" --- *)

let parse_site kind args =
  let action =
    match kind with
    | "crash" -> Some Crash
    | "hang" -> Some Hang
    | "wakeup" -> Some Spurious_wakeup
    | _ -> None
  in
  match action with
  | None -> Error (Printf.sprintf "unknown fault kind %S" kind)
  | Some action -> (
    let bindings = String.split_on_char ',' args in
    let lookup key =
      List.find_map
        (fun b ->
          match String.split_on_char '=' b with
          | [ k; v ] when k = key -> int_of_string_opt v
          | _ -> None)
        bindings
    in
    match (lookup "tid", lookup "op") with
    | Some tid, Some op when tid >= 0 && op >= 1 -> Ok { tid; op; action }
    | _ ->
      Error
        (Printf.sprintf "%s needs tid=<n>,op=<n> (n >= 0, op >= 1), got %S" kind
           args))

let of_specs specs =
  let rec go sites factor = function
    | [] -> Ok (make ~delay_factor:factor (List.rev sites))
    | spec :: rest -> (
      match String.index_opt spec ':' with
      | None -> Error (Printf.sprintf "malformed fault spec %S" spec)
      | Some i -> (
        let kind = String.sub spec 0 i in
        let args = String.sub spec (i + 1) (String.length spec - i - 1) in
        match kind with
        | "delay-factor" -> (
          match int_of_string_opt args with
          | Some f when f >= 1 -> go sites f rest
          | _ -> Error (Printf.sprintf "delay-factor needs a positive integer, got %S" args))
        | _ -> (
          match parse_site kind args with
          | Ok site -> go (site :: sites) factor rest
          | Error _ as e -> e)))
  in
  go [] 1 specs

let to_specs p =
  let site_specs =
    List.map
      (fun s -> Printf.sprintf "%s:tid=%d,op=%d" (action_name s.action) s.tid s.op)
      p.plan_sites
  in
  if p.plan_delay_factor > 1 then
    site_specs @ [ Printf.sprintf "delay-factor:%d" p.plan_delay_factor ]
  else site_specs

let pp ppf p =
  if is_empty p then Format.pp_print_string ppf "(no faults)"
  else Format.pp_print_string ppf (String.concat " " (to_specs p))

let randomized ~seed ?(crashes = 1) ?(hangs = 1) ?(wakeups = 1)
    ?(delay_factor = 1) ~max_tid ~max_op () =
  if max_tid < 1 then invalid_arg "Fault.randomized: max_tid must be >= 1";
  if max_op < 1 then invalid_arg "Fault.randomized: max_op must be >= 1";
  let rng = Rng.create (seed lxor 0x0fa17) in
  let site action =
    { tid = Rng.range rng 1 max_tid; op = Rng.range rng 1 max_op; action }
  in
  let repeat n action = List.init (max 0 n) (fun _ -> site action) in
  make ~delay_factor
    (repeat crashes Crash @ repeat hangs Hang @ repeat wakeups Spurious_wakeup)
