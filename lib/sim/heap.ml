open Sherlock_trace

type 'a t = {
  addr : int;
  cls : string;
  field : string;
  mutable value : 'a;
}

let cell ~cls ~field ?(volatile = false) init =
  let addr = Runtime.fresh_id () in
  if volatile then Runtime.register_volatile addr;
  { addr; cls; field; value = init }

let read c =
  Runtime.traced (Opid.read ~cls:c.cls c.field) ~target:c.addr;
  c.value

(* The event (and any injected delay) precedes the store, so delaying a
   release write really does delay its visibility to other threads. *)
let write c v =
  Runtime.traced (Opid.write ~cls:c.cls c.field) ~target:c.addr;
  c.value <- v

let peek c = c.value

let poke c v = c.value <- v

let addr c = c.addr

let cls c = c.cls

let field c = c.field

let getter c =
  Runtime.traced (Opid.read ~cls:c.cls ("get_" ^ c.field)) ~target:c.addr;
  c.value

let setter c v =
  Runtime.traced (Opid.write ~cls:c.cls ("set_" ^ c.field)) ~target:c.addr;
  c.value <- v

let spin_until c pred =
  while not (pred (read c)) do
    Runtime.sleep (200 + Runtime.rand_int 400)
  done
