let gc_latency = (20_000, 120_000)

type entry = {
  cls : string;
  obj : int;
  finalize : unit -> unit;
  mutable collectable : bool;
  mutable finalized : bool;
}

type gc = {
  mutable entries : entry list;
  mutable running : bool;
}

let slot : gc Runtime.Slot.t = Runtime.Slot.create "gc"

let get_gc () = Runtime.Slot.find slot ~default:(fun () -> { entries = []; running = false })

let sweep gc =
  List.iter
    (fun e ->
      if e.collectable && not e.finalized then begin
        e.finalized <- true;
        Runtime.frame ~cls:e.cls ~meth:"Finalize" ~obj:e.obj e.finalize
      end)
    gc.entries

let gc_loop gc () =
  let lo, hi = gc_latency in
  while true do
    Runtime.sleep (lo + Runtime.rand_int (hi - lo + 1));
    sweep gc
  done

let ensure_collector gc =
  if not gc.running then begin
    gc.running <- true;
    ignore (Runtime.spawn ~daemon:true ~name:"gc" (gc_loop gc))
  end

let register ~cls ~obj finalize =
  let gc = get_gc () in
  ensure_collector gc;
  gc.entries <- { cls; obj; finalize; collectable = false; finalized = false } :: gc.entries

let collect obj =
  let gc = get_gc () in
  List.iter (fun e -> if e.obj = obj then e.collectable <- true) gc.entries
