(** A counting semaphore ([System.Threading.SemaphoreSlim]). *)

type t

val create : int -> t
(** Initial count; must be non-negative. *)

val wait : t -> unit
(** Traced [System.Threading.SemaphoreSlim::Wait]; blocks while the count
    is zero. *)

val release : t -> unit
(** Traced [System.Threading.SemaphoreSlim::Release]. *)

val count : t -> int

val id : t -> int

val cls : string
(** ["System.Threading.SemaphoreSlim"]. *)
