(** A TPL-Dataflow-style buffer block with blocking [Post]/[Receive] —
    the asynchronous producer/consumer pair of the paper's Figure 3.A
    ([_block.Post(e)] releases; [Receive] acquires). *)

type 'a t

val create : unit -> 'a t

val post : 'a t -> 'a -> unit
(** Traced [System.Threading.Tasks.Dataflow.DataflowBlock::Post]. *)

val receive : 'a t -> 'a
(** Traced [System.Threading.Tasks.Dataflow.DataflowBlock::Receive];
    blocks until an item is available. *)

val try_receive : 'a t -> 'a option
(** Non-blocking variant (still traced as [Receive]). *)

val length : 'a t -> int

val id : 'a t -> int

val cls : string
(** ["System.Threading.Tasks.Dataflow.DataflowBlock"]. *)
