(** The process-wide thread pool ([System.Threading.ThreadPool]).

    A small set of daemon worker threads drains a FIFO work queue.
    [queue_user_work_item] is fire-and-forget, as in C#: programs that
    need completion signalling pair it with a {!Waithandle} — and a
    manual race-detection annotation list that forgets the pool's
    fork edge produces exactly the false races of the paper's Table 3. *)

val queue_user_work_item : ?delegate:string * string -> (unit -> unit) -> unit
(** Traced [System.Threading.ThreadPool::QueueUserWorkItem].  The delegate
    frame carries a fresh work-item object id. *)

val workers : int
(** Pool size (3). *)

val cls : string
(** ["System.Threading.ThreadPool"]. *)
