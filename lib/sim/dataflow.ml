let cls = "System.Threading.Tasks.Dataflow.DataflowBlock"

type 'a t = {
  id : int;
  items : 'a Queue.t;
  queue : Runtime.Waitq.t;
}

let create () =
  { id = Runtime.fresh_id (); items = Queue.create (); queue = Runtime.Waitq.create () }

let id t = t.id

let length t = Queue.length t.items

let post t x =
  Runtime.frame ~cls ~meth:"Post" ~obj:t.id (fun () ->
      Queue.push x t.items;
      ignore (Runtime.wake_one t.queue))

let receive t =
  Runtime.frame ~cls ~meth:"Receive" ~obj:t.id (fun () ->
      let rec take () =
        match Queue.take_opt t.items with
        | Some x -> x
        | None ->
          Runtime.block t.queue;
          take ()
      in
      take ())

let try_receive t =
  Runtime.frame ~cls ~meth:"Receive" ~obj:t.id (fun () -> Queue.take_opt t.items)
