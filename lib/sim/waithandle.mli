(** C#-style event wait handles: [ManualResetEvent], [AutoResetEvent],
    and the n-to-1 [WaitHandle::WaitAll] the paper highlights as an
    inferred n-to-n synchronization (Table 8). *)

type t

val create_manual : ?signaled:bool -> unit -> t
(** Manual-reset: once set, stays signaled until {!reset}. *)

val create_auto : ?signaled:bool -> unit -> t
(** Auto-reset: releases a single waiter per {!set}. *)

val set : t -> unit
(** Traced [System.Threading.EventWaitHandle::Set]. *)

val reset : t -> unit
(** Traced [System.Threading.EventWaitHandle::Reset]. *)

val wait_one : t -> unit
(** Traced [System.Threading.WaitHandle::WaitOne]; blocks until
    signaled. *)

val wait_all : t list -> unit
(** Traced [System.Threading.WaitHandle::WaitAll]; blocks until every
    handle is signaled (consuming a signal from each auto handle). *)

val id : t -> int

val event_cls : string
(** ["System.Threading.EventWaitHandle"]. *)

val wait_cls : string
(** ["System.Threading.WaitHandle"]. *)
