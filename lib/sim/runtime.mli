(** Deterministic cooperative concurrency runtime with virtual time.

    This is the reproduction's substitute for the .NET runtime plus
    Mono.Cecil instrumentation: simulated programs are plain OCaml
    functions that perform effects for every heap access, method frame,
    spawn, sleep, and blocking operation.  A trampolined effect-handler
    scheduler interleaves threads by smallest virtual clock (with seeded
    random jitter, so different seeds explore different interleavings),
    records a {!Sherlock_trace.Log.t}, and injects Perturber delays before
    selected operations.

    Time is measured in virtual microseconds.  Every traced operation is a
    scheduling point; blocked threads make no progress until another
    thread wakes them, at which point their clock jumps to the waker's —
    exactly the behaviour the Acquisition-Time-Varies hypothesis and the
    delay-propagation check rely on.

    All functions below except {!run} must be called from inside a running
    simulation (i.e. from the program passed to [run] or a thread it
    spawned); calling them outside raises [Failure]. *)

open Sherlock_trace

exception Deadlock of string
(** Raised by {!run} when no thread can make progress but a non-daemon
    thread is still blocked.  The payload names the stuck threads. *)

exception Stalled of {
  steps : int;  (** scheduler picks consumed when the watchdog fired *)
  runnable : string;  (** names of the threads still alive *)
}
(** Raised by {!run} when the step-limit watchdog trips: the scheduler is
    still making transitions ([steps] picks so far) but no non-daemon
    thread is finishing — livelock, converted into a structured outcome
    the way {!Deadlock} handles true deadlock. *)

type instrument = {
  trace : bool;  (** record events; off for overhead baselines *)
  delay_before : Opid.t -> int;
      (** virtual delay (us) to inject immediately before each dynamic
          instance of the operation; return 0 for none.  This is the
          Perturber's hook (paper §4.3: 100 ms before every instance of
          every currently-inferred release). *)
}

val no_instrument : instrument
(** No tracing, no delays. *)

val tracing : ?delay_before:(Opid.t -> int) -> unit -> instrument
(** Tracing on, with an optional delay policy. *)

(** Observation hooks on the scheduler's decisions, the raw material for
    schedule timelines ({!Schedule} turns them into per-thread
    running/blocked intervals).  All times are the affected thread's
    virtual clock at the decision.  When telemetry is enabled
    ([Sherlock_telemetry.Metrics.enabled]), {!run} additionally counts
    picks/blocks/wakes/spawns into the default metrics registry. *)
type hooks = {
  on_spawn : parent:int -> tid:int -> name:string -> time:int -> unit;
  on_block : tid:int -> time:int -> unit;
      (** the thread suspended on a wait queue *)
  on_wake : waker:int -> tid:int -> time:int -> unit;
      (** [tid] resumed by [waker]; [time] is its post-jump clock *)
  on_pick : tid:int -> time:int -> runnable:int -> unit;
      (** the scheduler elected [tid]; [runnable] other threads were ready *)
  on_finish : tid:int -> time:int -> unit;
  on_fault : tid:int -> op:int -> action:Fault.action -> time:int -> unit;
      (** a {!Fault} plan site fired on [tid] at its [op]th traced
          operation (also fired once per inflated delay when the plan's
          delay factor exceeds 1) *)
}

val no_hooks : hooks

val run :
  ?seed:int -> ?instrument:instrument -> ?noise:int -> ?hooks:hooks ->
  ?fault:Fault.plan -> ?max_steps:int ->
  (unit -> unit) -> Log.t
(** [run body] executes [body] as the main thread and schedules all
    spawned threads to completion.  [seed] fixes the interleaving;
    [noise] scales the random scheduling jitter (default 40: roughly one
    op in 40 gets an extra 0..150 us gap).

    [fault] (default {!Fault.empty}) is consulted at every traced
    operation; the lookup consumes no scheduler randomness, so a run
    whose plan never fires is bitwise identical to the same run without
    a plan.  A firing crash site aborts the run with
    {!Fault.Injected_crash}; a hang site blocks its thread forever.

    [max_steps] (default 0 = unlimited) bounds scheduler picks; past the
    bound the run aborts with {!Stalled}. *)

(** {1 Thread operations} *)

val spawn : ?daemon:bool -> name:string -> (unit -> unit) -> int
(** Create a thread; returns its tid.  Daemon threads do not keep the
    simulation alive (used by the thread pool and the GC). *)

val self : unit -> int

val now : unit -> int
(** Current thread's virtual clock. *)

val sleep : int -> unit
(** Advance this thread's clock by [n] us (models both blocking sleeps
    and CPU work — the scheduler cannot tell the difference). *)

val yield : unit -> unit
(** A minimal-cost scheduling point. *)

val cpu : int -> int -> unit
(** [cpu lo hi] burns a uniform random amount of virtual time in
    [\[lo, hi\]] — models variable-length computation. *)

val rand_int : int -> int
(** Deterministic per-run randomness (for workload shaping). *)

val fresh_id : unit -> int
(** Allocate a fresh address / object id, unique within the run and
    never 0. *)

(** {1 Tracing} *)

val traced : Opid.t -> target:int -> unit
(** Emit one event for the current thread (subject to the delay policy);
    this is the primitive beneath {!Heap} and {!frame}. *)

val frame : cls:string -> meth:string -> ?obj:int -> (unit -> 'a) -> 'a
(** Run a method body between a traced [Begin] and [End] (the [End] is
    emitted even on exceptions).  [obj] is the parent object id. *)

val register_volatile : int -> unit
(** Mark an address volatile in the run's log metadata (consumed only by
    the manually-annotated race detector, never by SherLock). *)

(** {1 Blocking} *)

module Waitq : sig
  type t
  (** A queue of suspended threads, the building block of every
      synchronization primitive. *)

  val create : unit -> t

  val waiters : t -> int
end

val block : Waitq.t -> unit
(** Suspend the current thread on the queue. *)

val wake_one : Waitq.t -> int
(** Resume the longest-waiting thread; returns how many were woken (0 or
    1).  The resumed thread's clock advances to the waker's. *)

val wake_all : Waitq.t -> int

(** {1 Per-run state} *)

module Slot : sig
  type 'a t
  (** A typed, per-run storage cell: primitives use slots for world-scoped
      singletons (the thread pool, the GC) so that state never leaks
      between runs. *)

  val create : string -> 'a t
  (** Names must be globally unique per stored type. *)

  val find : 'a t -> default:(unit -> 'a) -> 'a
  (** The slot's value in the current run, initializing it on first use. *)
end
