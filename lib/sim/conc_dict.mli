(** A concurrent dictionary with [GetOrAdd] delegate semantics
    (paper Figure 3.C): the value-factory delegate runs atomically with
    respect to other [GetOrAdd] calls on the same dictionary, so the end
    of one delegate happens before the start of the next — a
    happens-before edge SherLock infers with no knowledge of the
    dictionary's internals. *)

type ('k, 'v) t

val create : unit -> ('k, 'v) t

val get_or_add : ('k, 'v) t -> 'k -> delegate:string * string -> (unit -> 'v) -> 'v
(** Traced [System.Collections.Concurrent.ConcurrentDictionary::GetOrAdd];
    the delegate frame ([delegate] names it) runs only when the key was
    absent, holding the dictionary's internal (untraced) lock. *)

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** Untraced helper for assertions in tests. *)

val id : ('k, 'v) t -> int

val cls : string
(** ["System.Collections.Concurrent.ConcurrentDictionary"]. *)
