open Sherlock_trace

let cls = "System.Collections.Generic.Dictionary"

type ('k, 'v) t = {
  id : int;
  table : ('k, 'v) Hashtbl.t;
}

let create () = { id = Runtime.fresh_id (); table = Hashtbl.create 16 }

let id t = t.id

let add t k v =
  Runtime.traced (Opid.write ~cls "Add") ~target:t.id;
  Hashtbl.replace t.table k v

let try_get_value t k =
  Runtime.traced (Opid.read ~cls "TryGetValue") ~target:t.id;
  Hashtbl.find_opt t.table k

let count t =
  Runtime.traced (Opid.read ~cls "Count") ~target:t.id;
  Hashtbl.length t.table
