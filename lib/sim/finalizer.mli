(** Simulated garbage-collector finalization.

    C# guarantees a finalizer only runs once its object is unreachable, so
    the instruction removing the last reference happens before
    [Finalize-Begin] — one of the non-traditional synchronizations
    SherLock infers (paper §5.3.3) and also a known source of inference
    misses (§5.5: the GC runs "at a much later time", beyond the reach of
    delay injection).  The simulated collector reproduces that lag: a
    daemon thread scans for collectable objects every few virtual
    milliseconds. *)

val register : cls:string -> obj:int -> (unit -> unit) -> unit
(** Give object [obj] a finalizer, traced as [cls::Finalize]. *)

val collect : int -> unit
(** Mark the object unreachable; the program should have traced the
    last-reference-removing write just before.  The collector will run the
    finalizer at some later virtual time. *)

val gc_latency : int * int
(** Bounds (us) on the collector's scan period. *)
