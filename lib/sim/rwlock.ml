let cls = "System.Threading.ReaderWriterLock"

type t = {
  id : int;
  mutable readers : int;
  mutable writer : int option;
  queue : Runtime.Waitq.t;
}

let create () =
  { id = Runtime.fresh_id (); readers = 0; writer = None; queue = Runtime.Waitq.create () }

let rec wait_for t cond =
  if not (cond ()) then begin
    Runtime.block t.queue;
    wait_for t cond
  end

let acquire_reader t =
  Runtime.frame ~cls ~meth:"AcquireReaderLock" ~obj:t.id (fun () ->
      wait_for t (fun () -> t.writer = None);
      t.readers <- t.readers + 1)

let release_reader t =
  Runtime.frame ~cls ~meth:"ReleaseReaderLock" ~obj:t.id (fun () ->
      t.readers <- t.readers - 1;
      if t.readers = 0 then ignore (Runtime.wake_all t.queue))

let acquire_writer t =
  Runtime.frame ~cls ~meth:"AcquireWriterLock" ~obj:t.id (fun () ->
      let me = Runtime.self () in
      wait_for t (fun () -> t.writer = None && t.readers = 0);
      t.writer <- Some me)

let release_writer t =
  Runtime.frame ~cls ~meth:"ReleaseWriterLock" ~obj:t.id (fun () ->
      t.writer <- None;
      ignore (Runtime.wake_all t.queue))

let upgrade_to_writer_lock t =
  Runtime.frame ~cls ~meth:"UpgradeToWriterLock" ~obj:t.id (fun () ->
      let me = Runtime.self () in
      (* Release the reader half first — this is the API's release role. *)
      t.readers <- t.readers - 1;
      if t.readers = 0 then ignore (Runtime.wake_all t.queue);
      (* ... then acquire the writer half — its acquire role. *)
      wait_for t (fun () -> t.writer = None && t.readers = 0);
      t.writer <- Some me)

let downgrade_from_writer_lock t =
  Runtime.frame ~cls ~meth:"DowngradeFromWriterLock" ~obj:t.id (fun () ->
      t.writer <- None;
      t.readers <- t.readers + 1;
      ignore (Runtime.wake_all t.queue))
