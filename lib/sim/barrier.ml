let cls = "System.Threading.Barrier"

type t = {
  id : int;
  participants : int;
  mutable arrived : int;
  mutable phase : int;
  queue : Runtime.Waitq.t;
}

let create participants =
  if participants <= 0 then invalid_arg "Barrier.create: participants must be positive";
  {
    id = Runtime.fresh_id ();
    participants;
    arrived = 0;
    phase = 0;
    queue = Runtime.Waitq.create ();
  }

let id t = t.id

let phase t = t.phase

let signal_and_wait t =
  Runtime.frame ~cls ~meth:"SignalAndWait" ~obj:t.id (fun () ->
      let my_phase = t.phase in
      t.arrived <- t.arrived + 1;
      if t.arrived = t.participants then begin
        t.arrived <- 0;
        t.phase <- t.phase + 1;
        ignore (Runtime.wake_all t.queue)
      end
      else
        while t.phase = my_phase do
          Runtime.block t.queue
        done)
