(** A thread-unsafe dictionary ([System.Collections.Generic.Dictionary]) —
    a second member of the paper's 14-class thread-unsafe API list
    (§4.1).  Operations are traced as read/write accesses on the
    dictionary's address, exactly like {!Unsafe_list}. *)

type ('k, 'v) t

val create : unit -> ('k, 'v) t

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Traced as a write access
    [Write-System.Collections.Generic.Dictionary::Add]. *)

val try_get_value : ('k, 'v) t -> 'k -> 'v option
(** Traced as a read access. *)

val count : ('k, 'v) t -> int
(** Traced as a read access. *)

val id : ('k, 'v) t -> int

val cls : string
(** ["System.Collections.Generic.Dictionary"]. *)
