(** Deterministic fault injection for the simulator.

    A fault plan is pure data consulted by {!Runtime.run} alongside the
    instrument hook: it names scheduling points — a (thread id, per-thread
    traced-operation index) pair — at which the runtime injects a failure
    mode instead of (or on top of) the normal transition.  Because the
    plan is looked up without consuming scheduler randomness, a run whose
    plan never fires is bitwise identical to the same run with no plan at
    all, and the same (seed, plan) pair always replays the same faulty
    execution — the property the orchestrator's robustness gate and the
    determinism tests rely on.

    Supported failure modes:

    - {e crash}: the target thread raises {!Injected_crash} at its Nth
      traced operation — the simulated analogue of an unhandled exception
      in a workload body, which aborts the run;
    - {e hang}: the target thread blocks forever at its Nth traced
      operation — depending on the workload this surfaces as
      [Runtime.Deadlock] (someone joins it) or [Runtime.Stalled] (someone
      spins on it past the step watchdog);
    - {e spurious wakeup}: at the site, every thread blocked on any wait
      queue is woken as if signalled — exercising the re-check loops of
      the synchronization primitives;
    - {e delay inflation}: a plan-wide multiplier on every
      perturber-injected delay, modelling a delay budget blowing up. *)

type action =
  | Crash
  | Hang
  | Spurious_wakeup
  | Delay_inflation
      (** only reported through hooks; never attached to a site *)

type site = {
  tid : int;  (** target thread (0 is the main thread) *)
  op : int;  (** 1-based index into the thread's traced operations *)
  action : action;
}

type plan
(** Pure, immutable data (no closures): safe to embed in [Config.t],
    compare structurally, and hash. *)

exception Injected_crash of {
  tid : int;
  op : int;
}
(** Raised out of {!Runtime.run} when a crash site fires. *)

val empty : plan

val is_empty : plan -> bool

val make : ?delay_factor:int -> site list -> plan
(** [make sites] builds a plan.  [delay_factor] (default 1) multiplies
    every instrument-injected delay.  Raises [Invalid_argument] on a
    non-positive factor, a site with [op < 1] or [tid < 0], or a site
    whose action is [Delay_inflation] (which is plan-wide, not
    site-keyed). *)

val sites : plan -> site list

val has_sites : plan -> bool

val delay_factor : plan -> int

val find : plan -> tid:int -> op:int -> action option
(** The action to inject when thread [tid] reaches its [op]th traced
    operation, if any.  At most one site per (tid, op) fires: the first
    in plan order. *)

val action_name : action -> string
(** ["crash"], ["hang"], ["wakeup"], ["delay-inflation"]. *)

val of_specs : string list -> (plan, string) result
(** Parse CLI fault specs, one per string:
    ["crash:tid=2,op=40"], ["hang:tid=1,op=10"], ["wakeup:tid=0,op=5"],
    ["delay-factor:8"].  Later [delay-factor] specs override earlier
    ones. *)

val to_specs : plan -> string list
(** Render back to the spec syntax accepted by {!of_specs}. *)

val pp : Format.formatter -> plan -> unit

val randomized :
  seed:int ->
  ?crashes:int ->
  ?hangs:int ->
  ?wakeups:int ->
  ?delay_factor:int ->
  max_tid:int ->
  max_op:int ->
  unit ->
  plan
(** A deterministic pseudo-random plan (used by the bench robustness
    gate): [crashes]/[hangs]/[wakeups] sites (default 1 each) with
    thread ids in [\[1, max_tid\]] and operation indices in
    [\[1, max_op\]]. *)
