let cls = "System.Threading.ThreadPool"

let workers = 3

type item = {
  id : int;
  body : unit -> unit;
  delegate : (string * string) option;
}

type pool = {
  queue : item Queue.t;
  wakeup : Runtime.Waitq.t;
  mutable started : bool;
}

let slot : pool Runtime.Slot.t = Runtime.Slot.create "threadpool"

let get_pool () =
  Runtime.Slot.find slot ~default:(fun () ->
      { queue = Queue.create (); wakeup = Runtime.Waitq.create (); started = false })

let worker_loop pool () =
  while true do
    match Queue.take_opt pool.queue with
    | Some item -> (
      match item.delegate with
      | Some (cls, meth) -> Runtime.frame ~cls ~meth ~obj:item.id item.body
      | None -> item.body ())
    | None -> Runtime.block pool.wakeup
  done

let ensure_workers pool =
  (* No effect between the check and the set, so this is atomic under the
     cooperative scheduler. *)
  if not pool.started then begin
    pool.started <- true;
    for i = 1 to workers do
      ignore
        (Runtime.spawn ~daemon:true
           ~name:(Printf.sprintf "pool-worker-%d" i)
           (worker_loop pool))
    done
  end

let queue_user_work_item ?delegate body =
  let pool = get_pool () in
  let item = { id = Runtime.fresh_id (); body; delegate } in
  Runtime.frame ~cls ~meth:"QueueUserWorkItem" ~obj:item.id (fun () ->
      ensure_workers pool;
      Queue.push item pool.queue;
      ignore (Runtime.wake_one pool.wakeup))
