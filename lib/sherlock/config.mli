(** SherLock configuration.

    Every knob evaluated in the paper is here: the objective trade-off
    [lambda] (Table 6), the conflict window [near] (Table 7), the
    hypothesis/property toggles (Table 5), and the perturber/feedback
    toggles (Figure 4). *)

type t = {
  lambda : float;       (** weight of all non-Mostly-Protected terms; 0.2 *)
  near : int;           (** conflicting-access window, us; 1 s *)
  window_cap : int;     (** max windows per static location pair; 15 *)
  delay_us : int;       (** injected delay; 100 ms *)
  rounds : int;         (** runs per test input; 3 *)
  parallelism : int;
      (** domains running a round's independent unit tests concurrently;
          [1] forces the sequential path.  The simulator is deterministic
          per (round, test) seed, so verdicts are identical either way. *)
  extract_jobs : int;
      (** domains sharding window extraction *within* one run's log
          (see {!Sherlock_trace.Windows.extract}); [1] (the default)
          keeps extraction sequential.  Extraction is deterministic for
          any value, so verdicts are identical either way.  Only applied
          when the test-level parallel path is not running (the two
          levels share one domain pool, which is not reentrant); the
          orchestrator clamps it to the host's core count. *)
  threshold : float;    (** probability at which a variable counts as 1; 0.9 *)
  rare_coeff : float;   (** coefficient of the rare term (Equation 4); 0.1 *)
  seed : int;           (** base seed for all simulated schedules *)
  (* Hypotheses and properties — §2, ablated in Table 5. *)
  use_protected : bool;      (** Mostly Protected (Equation 2) *)
  use_rare : bool;           (** Synchronizations are Rare (Equations 3–4) *)
  use_variation : bool;      (** Acquisition-Time Mostly Varies (Equation 5) *)
  use_paired : bool;         (** Mostly Paired (Equations 6–7) *)
  use_role_property : bool;  (** Read-Acquire & Write-Release (Equation 1) *)
  use_single_role : bool;    (** Single Role for library APIs *)
  single_role_soft : bool;
      (** extension (paper §5.5 future work): penalize Single-Role
          violations instead of forbidding them *)
  (* Perturber / feedback — §3 and §4.3, ablated in Figure 4. *)
  use_delays : bool;         (** inject delays before inferred releases *)
  delay_probability : float;
      (** extension (paper footnote 1): probability of injecting each
          planned delay instance; 1.0 = always *)
  accumulate : bool;         (** keep observations across runs *)
  use_race_removal : bool;   (** drop protected terms of observed races *)
  use_refinement : bool;     (** shrink windows from delay propagation *)
  (* Resilience — fault injection and supervised orchestration. *)
  max_steps : int;
      (** scheduler-pick watchdog per simulated run; past it the run
          aborts as [Runtime.Stalled] and is handled like a deadlock.
          0 disables the watchdog; default 1_000_000 *)
  retries : int;
      (** how many reseeded re-runs the orchestrator attempts after a
          test run fails (crash / deadlock / stall); 0 disables *)
  fault_plan : Sherlock_sim.Fault.plan;
      (** deterministic fault plan applied to every simulated run;
          [Fault.empty] (the default) injects nothing *)
  (* LP engine. *)
  lp_engine : Sherlock_lp.Problem.engine;
      (** [Sparse] (default): revised simplex over the sparse matrix;
          [Dense]: the seed dense tableau, kept for reference runs and
          equivalence tests *)
  use_warm_start : bool;
      (** reuse the encoder's LP across rounds: round k+1 re-encodes
          only new observations and restarts the simplex from round k's
          basis.  Off forces a from-scratch encode + solve per round
          (verdicts are intended to be identical either way). *)
  provenance : bool;
      (** capture per-verdict evidence (windows, LP rows with duals,
          delay plans, stabilization rounds) for the provenance sidecar
          and [sherlock explain].  Off by default; when off the pipeline
          allocates nothing for it, and capture never changes verdicts
          either way. *)
  metrics_interval_ms : int;
      (** snapshot the installed metrics ring on this interval for the
          duration of {!Orchestrator.infer} (the ticker systhread runs
          only while inference does).  0 (the default) starts no ticker;
          per-round snapshots still happen whenever a ring is
          installed. *)
}

val default : t
(** The paper's defaults: lambda 0.2, near 1 s, cap 15, delay 100 ms,
    3 rounds, everything enabled, [extract_jobs] 1; [parallelism] is
    [Domain.recommended_domain_count ()]. *)

val pp : Format.formatter -> t -> unit
