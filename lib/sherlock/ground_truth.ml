open Sherlock_trace

type cause =
  | Instr_error
  | Double_role
  | Dispose
  | Static_ctor
  | Other_cause

type entry = {
  op : Opid.t;
  role : Verdict.role;
  description : string;
  category : cause;
}

type t = {
  syncs : entry list;
  racy_fields : string list;
  error_scope : string list;
  field_guard : (string * cause) list;
}

let empty = { syncs = []; racy_fields = []; error_scope = []; field_guard = [] }

let entry ?(category = Other_cause) op role description = { op; role; description; category }

let find t op role =
  List.find_opt (fun e -> Opid.equal e.op op && e.role = role) t.syncs

let is_racy_field t key = List.mem key t.racy_fields

let cause_name = function
  | Instr_error -> "Instr. Errors"
  | Double_role -> "Double Roles"
  | Dispose -> "Dispose"
  | Static_ctor -> "Static Ctr."
  | Other_cause -> "Others"

let guard_cause t key =
  match List.assoc_opt key t.field_guard with Some c -> c | None -> Other_cause
