(** Feedback-based delay injection (paper §3, §4.3).

    After each round the perturber turns the current release verdicts into
    a delay plan: a fixed virtual delay before every dynamic instance of
    every inferred release.  For a release that is a method *exit*, the
    delay is placed before the method's *entry* — delaying the whole call
    is the only way to delay the release action it contains (instrumenting
    "immediately before the call site", as the paper's observer does). *)

open Sherlock_trace

type plan

val empty : plan

val of_verdicts : delay_us:int -> Verdict.t list -> plan
(** Build the plan from the current round's release verdicts. *)

val delay_before : plan -> Opid.t -> int
(** The delay to inject before one dynamic instance of [op]; 0 if none.
    This is plugged directly into {!Sherlock_sim.Runtime.instrument}. *)

val size : plan -> int
(** Number of distinct delayed operations. *)

val bindings : plan -> (Opid.t * int) list
(** The plan as (delayed op, delay in us) pairs, sorted by op — what
    provenance records as each round's perturbation experiment. *)
