(** Inference outcomes: an operation judged to be a synchronization. *)

open Sherlock_trace

type role =
  | Acquire
  | Release

type t = {
  op : Opid.t;
  role : role;
  probability : float;  (** the LP variable's value, in [threshold, 1] *)
}

val role_name : role -> string

val compare : t -> t -> int
(** Order by operation then role; probability is not part of identity. *)

val mem : Opid.t -> role -> t list -> bool

val releases : t list -> t list

val acquires : t list -> t list

val pp : Format.formatter -> t -> unit
