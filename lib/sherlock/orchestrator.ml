open Sherlock_sim
module Tspan = Sherlock_telemetry.Span

type subject = {
  subject_name : string;
  tests : (string * (unit -> unit)) list;
}

type round_result = {
  round : int;
  verdicts : Verdict.t list;
  stats : Encoder.solve_stats;
  delayed_ops : int;
}

type result = {
  rounds : round_result list;
  final : Verdict.t list;
  observations : Observations.t;
}

let test_seed ~base ~round ~test_index = (base * 1_000_003) + (round * 7919) + test_index

let run_one (config : Config.t) ~round ~test_index plan body =
  let seed = test_seed ~base:config.seed ~round ~test_index in
  let delay_before =
    if config.delay_probability >= 1.0 then Perturber.delay_before plan
    else begin
      (* Probabilistic injection (paper footnote 1): each dynamic
         instance is delayed with probability p, deterministically per
         seed. *)
      let rng = Sherlock_util.Rng.create (seed lxor 0x5eed) in
      fun op ->
        let d = Perturber.delay_before plan op in
        if d > 0 && Sherlock_util.Rng.float rng 1.0 <= config.delay_probability
        then d
        else 0
    end
  in
  Runtime.run ~seed ~instrument:(Runtime.tracing ~delay_before ()) body

(* Order-preserving map over [arr] with up to [domains] worker domains
   pulling indices from a shared counter.  Each [f] call is independent
   (a fresh simulator world per test, no global mutable state), so the
   only cross-domain traffic is the [Atomic] work counter and the results
   array, each slot written by exactly one worker before the join. *)
let parallel_map ~domains f arr =
  let n = Array.length arr in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <- Some (f i arr.(i));
        loop ()
      end
    in
    loop ()
  in
  let spawned = Array.init (min domains n - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join spawned;
  Array.map (function Some r -> r | None -> assert false) results

(* Run one test and extract its observations — the per-domain unit of
   work.  Returns the extraction plus the run's wall-clock.  The run and
   extract spans open on whichever worker domain executes the test, so a
   parallel round renders as one telemetry track per domain. *)
let run_and_extract (config : Config.t) ~round ~plan test_index (name, body) =
  let t0 = Unix.gettimeofday () in
  let log =
    Tspan.with_span ~name:"run"
      ~attrs:[ ("test", Tspan.Str name); ("round", Tspan.Int round) ]
      (fun () ->
        let log = run_one config ~round ~test_index plan body in
        Tspan.add_attr "events" (Tspan.Int (Sherlock_trace.Log.length log));
        log)
  in
  let run_s = Unix.gettimeofday () -. t0 in
  let x =
    Tspan.with_span ~name:"extract"
      ~attrs:[ ("test", Tspan.Str name); ("round", Tspan.Int round) ]
      (fun () ->
        Observations.extract_log ~near:config.near ~cap:config.window_cap
          ~refine:config.use_refinement log)
  in
  (x, run_s)

let infer ?(config = Config.default) subject =
  Tspan.with_span ~name:"infer"
    ~attrs:
      [
        ("subject", Tspan.Str subject.subject_name);
        ("tests", Tspan.Int (List.length subject.tests));
        ("rounds", Tspan.Int config.rounds);
        ("parallelism", Tspan.Int config.parallelism);
      ]
  @@ fun () ->
  let obs = ref (Observations.create ()) in
  let plan = ref Perturber.empty in
  let rounds = ref [] in
  let tests = Array.of_list subject.tests in
  let domains = max 1 config.parallelism in
  for round = 1 to config.rounds do
    Tspan.with_span ~name:"round" ~attrs:[ ("round", Tspan.Int round) ]
    @@ fun () ->
    if not config.accumulate then obs := Observations.create ();
    let extractions =
      if domains = 1 || Array.length tests <= 1 then
        Array.mapi (run_and_extract config ~round ~plan:!plan) tests
      else parallel_map ~domains (run_and_extract config ~round ~plan:!plan) tests
    in
    (* Merge sequentially in test order: the observation state — and hence
       the LP and its verdicts — is bitwise-identical to the sequential
       path regardless of which domain ran which test. *)
    Array.iter
      (fun (x, run_s) ->
        Observations.add_extraction !obs x;
        let m = Observations.metrics !obs in
        m.run_s <- m.run_s +. run_s)
      extractions;
    let verdicts, stats = Encoder.solve config !obs in
    rounds :=
      { round; verdicts; stats; delayed_ops = Perturber.size !plan } :: !rounds;
    plan :=
      (if config.use_delays then Perturber.of_verdicts ~delay_us:config.delay_us verdicts
       else Perturber.empty);
    Tspan.add_attr "windows" (Tspan.Int stats.num_windows);
    Tspan.add_attr "vars" (Tspan.Int stats.num_vars);
    Tspan.add_attr "verdicts" (Tspan.Int (List.length verdicts));
    Tspan.add_attr "delayed_ops" (Tspan.Int (Perturber.size !plan))
  done;
  let rounds = List.rev !rounds in
  let final = match List.rev rounds with last :: _ -> last.verdicts | [] -> [] in
  { rounds; final; observations = !obs }

let run_test_logs ?(config = Config.default) subject =
  List.mapi
    (fun test_index (_name, body) ->
      run_one config ~round:1 ~test_index Perturber.empty body)
    subject.tests
