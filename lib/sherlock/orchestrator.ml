open Sherlock_sim

type subject = {
  subject_name : string;
  tests : (string * (unit -> unit)) list;
}

type round_result = {
  round : int;
  verdicts : Verdict.t list;
  stats : Encoder.solve_stats;
  delayed_ops : int;
}

type result = {
  rounds : round_result list;
  final : Verdict.t list;
  observations : Observations.t;
}

let test_seed ~base ~round ~test_index = (base * 1_000_003) + (round * 7919) + test_index

let run_one (config : Config.t) ~round ~test_index plan body =
  let seed = test_seed ~base:config.seed ~round ~test_index in
  let delay_before =
    if config.delay_probability >= 1.0 then Perturber.delay_before plan
    else begin
      (* Probabilistic injection (paper footnote 1): each dynamic
         instance is delayed with probability p, deterministically per
         seed. *)
      let rng = Sherlock_util.Rng.create (seed lxor 0x5eed) in
      fun op ->
        let d = Perturber.delay_before plan op in
        if d > 0 && Sherlock_util.Rng.float rng 1.0 <= config.delay_probability
        then d
        else 0
    end
  in
  Runtime.run ~seed ~instrument:(Runtime.tracing ~delay_before ()) body

let infer ?(config = Config.default) subject =
  let obs = ref (Observations.create ()) in
  let plan = ref Perturber.empty in
  let rounds = ref [] in
  for round = 1 to config.rounds do
    if not config.accumulate then obs := Observations.create ();
    List.iteri
      (fun test_index (_name, body) ->
        let log = run_one config ~round ~test_index !plan body in
        Observations.add_log !obs ~near:config.near ~cap:config.window_cap
          ~refine:config.use_refinement log)
      subject.tests;
    let verdicts, stats = Encoder.solve config !obs in
    rounds :=
      { round; verdicts; stats; delayed_ops = Perturber.size !plan } :: !rounds;
    plan :=
      (if config.use_delays then Perturber.of_verdicts ~delay_us:config.delay_us verdicts
       else Perturber.empty)
  done;
  let rounds = List.rev !rounds in
  let final = match List.rev rounds with last :: _ -> last.verdicts | [] -> [] in
  { rounds; final; observations = !obs }

let run_test_logs ?(config = Config.default) subject =
  List.mapi
    (fun test_index (_name, body) ->
      run_one config ~round:1 ~test_index Perturber.empty body)
    subject.tests
