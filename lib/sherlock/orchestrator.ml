open Sherlock_sim
module Tspan = Sherlock_telemetry.Span
module Tm = Sherlock_telemetry.Metrics
module Tlog = Sherlock_telemetry.Log
module Tsnap = Sherlock_telemetry.Snapshot

type subject = {
  subject_name : string;
  tests : (string * (unit -> unit)) list;
}

type run_failure =
  | Crashed of string
  | Deadlocked of string
  | Stalled of int

type run_report = {
  test_name : string;
  attempts : int;
  failures : run_failure list;
  injected : int;
  completed : bool;
}

type round_result = {
  round : int;
  verdicts : Verdict.t list;
  stats : Encoder.solve_stats;
  delayed_ops : int;
  run_reports : run_report list;
}

type result = {
  rounds : round_result list;
  final : Verdict.t list;
  observations : Observations.t;
  provenance : Sherlock_provenance.Provenance.t option;
}

let failure_to_string = function
  | Crashed msg -> "crashed: " ^ msg
  | Deadlocked stuck -> "deadlocked: " ^ stuck
  | Stalled steps -> Printf.sprintf "stalled after %d steps" steps

(* Event kind for structured logs: stable, grep-able, one word.
   [Stalled] is the scheduler watchdog firing ([Config.max_steps]). *)
let failure_kind = function
  | Crashed _ -> "crashed"
  | Deadlocked _ -> "deadlocked"
  | Stalled _ -> "watchdog_stalled"

let failed_runs reports =
  List.fold_left (fun acc r -> acc + List.length r.failures) 0 reports

let incomplete_runs reports =
  List.length (List.filter (fun r -> not r.completed) reports)

let injected_faults reports =
  List.fold_left (fun acc r -> acc + r.injected) 0 reports

(* Supervision counters: cold path (at most once per test attempt), so
   recorded unconditionally rather than gated on [Tm.enabled]. *)
let c_failed = Tm.counter "orch.run.failed"

let c_retried = Tm.counter "orch.run.retried"

let c_degraded = Tm.counter "orch.run.degraded"

let test_seed ~base ~round ~test_index = (base * 1_000_003) + (round * 7919) + test_index

let run_one ?(hooks = Runtime.no_hooks) (config : Config.t) ~round ~test_index
    ~attempt plan body =
  let seed = test_seed ~base:config.seed ~round ~test_index in
  (* Retries perturb only the schedule seed; the fault plan stays, so an
     injected fault reproduces while an unlucky organic interleaving gets
     a fresh chance. *)
  let seed = if attempt = 0 then seed else seed lxor (attempt * 0x9e3779b9) in
  let delay_before =
    if config.delay_probability >= 1.0 then Perturber.delay_before plan
    else begin
      (* Probabilistic injection (paper footnote 1): each dynamic
         instance is delayed with probability p, deterministically per
         seed. *)
      let rng = Sherlock_util.Rng.create (seed lxor 0x5eed) in
      fun op ->
        let d = Perturber.delay_before plan op in
        if d > 0 && Sherlock_util.Rng.float rng 1.0 <= config.delay_probability
        then d
        else 0
    end
  in
  Runtime.run ~seed ~hooks
    ~instrument:(Runtime.tracing ~delay_before ())
    ~fault:config.fault_plan ~max_steps:config.max_steps body

(* The worker-domain pool (spawn once per inference, park between
   rounds) lives in [Sherlock_util.Pool] so window extraction can shard
   over the same domains; see its interface for the non-reentrancy rule
   the orchestrator must respect when handing the pool down. *)
module Pool = Sherlock_util.Pool

let parallel_map = Pool.parallel_map

(* Run one test and extract its observations — the per-domain unit of
   work.  Returns the extraction (with the run's wall-clock) when some
   attempt completed, plus a report of every failed attempt.  A failing
   run — injected crash, deadlock, watchdog stall, or a workload
   exception — never escapes: it is recorded and retried up to
   [config.retries] times with a reseeded schedule, and a test whose
   every attempt fails simply contributes no observations.  The run and
   extract spans open on whichever worker domain executes the test, so a
   parallel round renders as one telemetry track per domain. *)
let run_and_extract (config : Config.t) ~round ~plan ?(extract_jobs = 1) ?pool
    test_index (name, body) =
  (* Total plan sites fired across all attempts of this test: an app whose
     count stays 0 everywhere was provably untouched by the plan (the
     lookup consumes no scheduler randomness), which is what the bench
     robustness gate's baseline-identity check keys on. *)
  let injected = ref 0 in
  let hooks =
    {
      Runtime.no_hooks with
      on_fault = (fun ~tid:_ ~op:_ ~action:_ ~time:_ -> incr injected);
    }
  in
  let rec attempt_run attempt failures =
    let t0 = Unix.gettimeofday () in
    let outcome =
      Tspan.with_span ~name:"run"
        ~attrs:
          [
            ("test", Tspan.Str name);
            ("round", Tspan.Int round);
            ("attempt", Tspan.Int attempt);
          ]
        (fun () ->
          match run_one ~hooks config ~round ~test_index ~attempt plan body with
          | log ->
            Tspan.add_attr "events" (Tspan.Int (Sherlock_trace.Log.length log));
            Ok log
          | exception Fault.Injected_crash { tid; op } ->
            Error (Crashed (Printf.sprintf "injected fault in tid %d at op %d" tid op))
          | exception Runtime.Deadlock stuck -> Error (Deadlocked stuck)
          | exception Runtime.Stalled { steps; _ } -> Error (Stalled steps)
          | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
          | exception e -> Error (Crashed (Printexc.to_string e)))
    in
    match outcome with
    | Ok log ->
      let run_s = Unix.gettimeofday () -. t0 in
      let x =
        Tspan.with_span ~name:"extract"
          ~attrs:[ ("test", Tspan.Str name); ("round", Tspan.Int round) ]
          (fun () ->
            Observations.extract_log ~jobs:extract_jobs ?pool ~near:config.near
              ~cap:config.window_cap ~refine:config.use_refinement log)
      in
      ( Some (x, run_s),
        {
          test_name = name;
          attempts = attempt + 1;
          failures = List.rev failures;
          injected = !injected;
          completed = true;
        } )
    | Error f ->
      Tm.Counter.incr c_failed;
      Tlog.warn "orch.run.failed"
        [
          ("test", Tlog.Str name);
          ("round", Tlog.Int round);
          ("attempt", Tlog.Int attempt);
          ("kind", Tlog.Str (failure_kind f));
          ("detail", Tlog.Str (failure_to_string f));
        ];
      if attempt < config.retries then begin
        Tm.Counter.incr c_retried;
        Tlog.info "orch.run.retry"
          [
            ("test", Tlog.Str name);
            ("round", Tlog.Int round);
            ("next_attempt", Tlog.Int (attempt + 1));
            ("retries_left", Tlog.Int (config.retries - attempt - 1));
          ];
        attempt_run (attempt + 1) (f :: failures)
      end
      else begin
        Tlog.error "orch.run.dropped"
          [
            ("test", Tlog.Str name);
            ("round", Tlog.Int round);
            ("attempts", Tlog.Int (attempt + 1));
            ("kind", Tlog.Str (failure_kind f));
          ];
        ( None,
          {
            test_name = name;
            attempts = attempt + 1;
            failures = List.rev (f :: failures);
            injected = !injected;
            completed = false;
          } )
      end
  in
  attempt_run 0 []

let infer ?(config = Config.default) subject =
  Tspan.with_span ~name:"infer"
    ~attrs:
      [
        ("subject", Tspan.Str subject.subject_name);
        ("tests", Tspan.Int (List.length subject.tests));
        ("rounds", Tspan.Int config.rounds);
        ("parallelism", Tspan.Int config.parallelism);
      ]
  @@ fun () ->
  let obs = ref (Observations.create ()) in
  let plan = ref Perturber.empty in
  let rounds = ref [] in
  (* Per-round provenance traces, newest first; empty (and never consed
     onto) unless [config.provenance] — the disabled path allocates
     nothing beyond this one ref. *)
  let prov_rounds = ref [] in
  (* One encoder state for the whole inference: round k+1's LP solve
     warm-starts from round k's basis and re-encodes only new windows. *)
  let enc_state =
    if config.use_warm_start then Some (Encoder.create_state ()) else None
  in
  let tests = Array.of_list subject.tests in
  (* Never oversubscribe the host: on OCaml 5 every live domain takes
     part in each stop-the-world minor collection, so running more
     domains than cores makes the whole round strictly slower (measured
     ~2x on a single-core container) without any concurrency in
     return. *)
  let domains =
    max 1 (min config.parallelism (Domain.recommended_domain_count ()))
  in
  let extract_jobs =
    max 1 (min config.extract_jobs (Domain.recommended_domain_count ()))
  in
  (* Workers live for the whole inference (spawned lazily by the first
     parallel round, reused by the rest) and are joined in the [finally]
     below: a finished inference must leave no parked domain behind to
     slow the caller's subsequent sequential work. *)
  let pool = Pool.create () in
  (* The snapshot ticker runs only while inference does: started here
     (no-op when the interval is 0 or no ring is installed) and stopped
     in the same [finally] that retires the pool, so a finished
     inference leaves neither parked domains nor a live systhread. *)
  if config.metrics_interval_ms > 0 then
    Tsnap.start_ticker ~interval_ms:config.metrics_interval_ms ();
  Fun.protect
    ~finally:(fun () ->
      if config.metrics_interval_ms > 0 then Tsnap.stop_ticker ();
      Pool.retire pool)
  @@ fun () ->
  for round = 1 to config.rounds do
    Tspan.with_span ~name:"round" ~attrs:[ ("round", Tspan.Int round) ]
    @@ fun () ->
    if not config.accumulate then obs := Observations.create ();
    let results =
      if domains = 1 || Array.length tests <= 1 then
        (* Tests run sequentially on this domain, so the pool is idle and
           window extraction may shard over it.  The test-level parallel
           branch below must NOT do this: extraction would call
           [Pool.run] from inside the pool's own batch thunk and
           deadlock, and domain-starved nesting wouldn't pay anyway. *)
        Array.mapi
          (run_and_extract config ~round ~plan:!plan ~extract_jobs ~pool)
          tests
      else
        parallel_map ~pool ~domains
          (run_and_extract config ~round ~plan:!plan)
          tests
    in
    (* Merge sequentially in test order: the observation state — and hence
       the LP and its verdicts — is bitwise-identical to the sequential
       path regardless of which domain ran which test.  Tests whose every
       attempt failed contribute nothing but their report. *)
    Array.iter
      (fun (extraction, _report) ->
        match extraction with
        | None -> ()
        | Some (x, run_s) ->
          Observations.add_extraction !obs x;
          let m = Observations.metrics !obs in
          m.run_s <- m.run_s +. run_s)
      results;
    let run_reports = Array.to_list (Array.map snd results) in
    let previous =
      match !rounds with r :: _ -> r.verdicts | [] -> []
    in
    let verdicts, stats = Encoder.solve ?state:enc_state ~previous config !obs in
    if stats.degraded then begin
      Tm.Counter.incr c_degraded;
      Tlog.warn "orch.lp.degraded"
        [
          ("round", Tlog.Int round);
          ("windows", Tlog.Int stats.num_windows);
          ("vars", Tlog.Int stats.num_vars);
        ]
    end;
    rounds :=
      { round; verdicts; stats; delayed_ops = Perturber.size !plan; run_reports }
      :: !rounds;
    (if config.provenance then
       let module P = Sherlock_provenance.Provenance in
       (* [!plan] is still the plan this round ran under: the reassignment
          below installs the *next* round's plan. *)
       prov_rounds :=
         {
           P.r_round = round;
           r_windows_after = Observations.window_count !obs;
           r_objective = stats.objective;
           r_degraded = stats.degraded;
           r_verdicts =
             List.map
               (fun (v : Verdict.t) ->
                 (Sherlock_trace.Opid.to_string v.op, Verdict.role_name v.role))
               verdicts;
           r_delays =
             List.map
               (fun (op, us) -> (Sherlock_trace.Opid.to_string op, us))
               (Perturber.bindings !plan);
         }
         :: !prov_rounds);
    Tlog.info "orch.round"
      [
        ("round", Tlog.Int round);
        ("windows", Tlog.Int stats.num_windows);
        ("vars", Tlog.Int stats.num_vars);
        ("verdicts", Tlog.Int (List.length verdicts));
        ("failed_runs", Tlog.Int (failed_runs run_reports));
        ("degraded", Tlog.Bool stats.degraded);
      ];
    ignore (Tsnap.take_installed_if_due ~label:(Printf.sprintf "round %d" round) ());
    if Tm.enabled () then
      Tm.sample ~label:(Printf.sprintf "round %d" round) ();
    plan :=
      (if config.use_delays then Perturber.of_verdicts ~delay_us:config.delay_us verdicts
       else Perturber.empty);
    Tspan.add_attr "windows" (Tspan.Int stats.num_windows);
    Tspan.add_attr "vars" (Tspan.Int stats.num_vars);
    Tspan.add_attr "verdicts" (Tspan.Int (List.length verdicts));
    Tspan.add_attr "delayed_ops" (Tspan.Int (Perturber.size !plan));
    Tspan.add_attr "failed_runs" (Tspan.Int (failed_runs run_reports));
    if stats.degraded then Tspan.add_attr "degraded" (Tspan.Bool true)
  done;
  let rounds = List.rev !rounds in
  let final = match List.rev rounds with last :: _ -> last.verdicts | [] -> [] in
  let provenance =
    if not config.provenance then None
    else begin
      let module P = Sherlock_provenance.Provenance in
      let ptraces = List.rev !prov_rounds (* chronological *) in
      let last_round =
        match !prov_rounds with rt :: _ -> rt.P.r_round | [] -> 0
      in
      (* Evidence from the newest round that actually solved: a degraded
         final round carries the previous round's verdicts, whose
         evidence is the previous round's. *)
      let evidence =
        let rec newest_good = function
          | [] -> []
          | (r : round_result) :: rest ->
            if r.stats.Encoder.degraded then newest_good rest
            else r.stats.Encoder.evidence
        in
        newest_good (List.rev rounds)
      in
      (* A window with id [w] entered the observations during the first
         round whose post-merge watermark covers it. *)
      let round_of_window id =
        let rec go = function
          | [] -> last_round
          | (rt : P.round_trace) :: rest ->
            if id < rt.P.r_windows_after then rt.P.r_round else go rest
        in
        go ptraces
      in
      let has rt key = List.mem key rt.P.r_verdicts in
      let first_round key =
        match List.find_opt (fun rt -> has rt key) ptraces with
        | Some rt -> rt.P.r_round
        | None -> last_round
      in
      (* Smallest r such that the verdict held in every round r..last:
         walk newest-to-oldest while it stays present. *)
      let stable_round key =
        let rec go stable = function
          | [] -> stable
          | rt :: rest -> if has rt key then go rt.P.r_round rest else stable
        in
        go last_round !prov_rounds
      in
      let p_verdicts =
        List.map
          (fun (v : Verdict.t) ->
            let op = Sherlock_trace.Opid.to_string v.op in
            let role = Verdict.role_name v.role in
            let key = (op, role) in
            let base =
              match
                List.find_opt
                  (fun (e : P.verdict_evidence) -> e.P.v_op = op && e.P.v_role = role)
                  evidence
              with
              | Some e -> e
              | None ->
                (* Verdict carried across degraded rounds with no solved
                   evidence in any round: keep the verdict itself visible
                   in the sidecar rather than dropping it. *)
                {
                  P.v_op = op;
                  v_role = role;
                  v_probability = v.probability;
                  v_margin = nan;
                  v_reduced_cost = nan;
                  v_first_round = 0;
                  v_stable_round = 0;
                  v_windows = [];
                  v_constraints = [];
                }
            in
            {
              base with
              P.v_first_round = first_round key;
              v_stable_round = stable_round key;
              v_windows =
                List.map
                  (fun (w : P.window_evidence) ->
                    { w with P.w_round = round_of_window w.P.w_id })
                  base.P.v_windows;
            })
          final
      in
      Some
        {
          P.p_app = subject.subject_name;
          p_seed = config.seed;
          p_rounds = ptraces;
          p_verdicts;
        }
    end
  in
  { rounds; final; observations = !obs; provenance }

let run_test_logs ?(config = Config.default) subject =
  List.mapi
    (fun test_index (_name, body) ->
      run_one config ~round:1 ~test_index ~attempt:0 Perturber.empty body)
    subject.tests
