open Sherlock_trace

type plan = int Opid.Map.t

let empty = Opid.Map.empty

let of_verdicts ~delay_us verdicts =
  List.fold_left
    (fun plan (v : Verdict.t) ->
      match v.role with
      | Verdict.Acquire -> plan
      | Verdict.Release ->
        let target =
          match v.op.kind with
          | Opid.Write | Opid.Read | Opid.Begin -> v.op
          | Opid.End -> { v.op with kind = Opid.Begin }
        in
        Opid.Map.add target delay_us plan)
    empty verdicts

let delay_before plan op =
  match Opid.Map.find_opt op plan with Some d -> d | None -> 0

let size = Opid.Map.cardinal
