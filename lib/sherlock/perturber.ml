open Sherlock_trace

type plan = int Opid.Map.t

let empty = Opid.Map.empty

let of_verdicts ~delay_us verdicts =
  Sherlock_telemetry.Span.with_span ~name:"plan-delays" @@ fun () ->
  let plan =
    List.fold_left
      (fun plan (v : Verdict.t) ->
        match v.role with
        | Verdict.Acquire -> plan
        | Verdict.Release ->
          let target =
            match v.op.kind with
            | Opid.Write | Opid.Read | Opid.Begin -> v.op
            | Opid.End -> { v.op with kind = Opid.Begin }
          in
          Opid.Map.add target delay_us plan)
      empty verdicts
  in
  Sherlock_telemetry.Span.add_attr "delayed_ops"
    (Sherlock_telemetry.Span.Int (Opid.Map.cardinal plan));
  Sherlock_telemetry.Span.add_attr "delay_us"
    (Sherlock_telemetry.Span.Int delay_us);
  plan

let delay_before plan op =
  match Opid.Map.find_opt op plan with Some d -> d | None -> 0

let bindings plan = Opid.Map.bindings plan

let size = Opid.Map.cardinal
