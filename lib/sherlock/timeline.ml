open Sherlock_trace
module P = Sherlock_telemetry.Perfetto
module Schedule = Sherlock_sim.Schedule

type test_timeline = {
  test_name : string;
  log : Log.t;
  schedule : Schedule.t;
}

(* Two Perfetto tracks per simulated thread: method frames on the even
   track, the scheduler's running/blocked/delay intervals on the odd one
   right below it. *)
let frames_track tid = tid * 2

let sched_track tid = (tid * 2) + 1

let thread_meta ~pid (t : test_timeline) =
  let names =
    match t.schedule.threads with
    | [] ->
      (* No schedule recording (e.g. a log loaded from disk): fall back to
         the log's thread count. *)
      List.init t.log.threads (fun tid ->
          (tid, if tid = 0 then "main" else Printf.sprintf "thread-%d" tid))
    | threads -> threads
  in
  List.concat_map
    (fun (tid, name) ->
      [
        P.thread_name ~pid ~tid:(frames_track tid) (Printf.sprintf "t%d %s" tid name);
        P.thread_sort_index ~pid ~tid:(frames_track tid) (frames_track tid);
        P.thread_name ~pid ~tid:(sched_track tid)
          (Printf.sprintf "t%d %s (sched)" tid name);
        P.thread_sort_index ~pid ~tid:(sched_track tid) (sched_track tid);
      ])
    names

(* Method frames, replayed from the Begin/End events with the same
   per-thread stack discipline as [Windows.frame_spans]; frames still open
   at the end of the log are closed at its duration. *)
let frame_events ~pid (t : test_timeline) =
  let stacks : (int, (Opid.t * int) list ref) Hashtbl.t = Hashtbl.create 8 in
  let slot tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.add stacks tid s;
      s
  in
  let events = ref [] in
  let emit ~tid ~op ~t0 ~t1 =
    events :=
      P.complete ~cat:"frame" ~name:(Opid.method_key op) ~ts:t0 ~dur:(t1 - t0)
        ~pid ~tid:(frames_track tid) ()
      :: !events
  in
  Log.iter
    (fun (e : Event.t) ->
      match e.op.kind with
      | Opid.Begin -> (slot e.tid) := (e.op, e.time) :: !(slot e.tid)
      | Opid.End ->
        let key = Opid.method_key e.op in
        let s = slot e.tid in
        let rec pop acc = function
          | [] -> None
          | ((op : Opid.t), t0) :: rest when Opid.method_key op = key ->
            Some ((op, t0), List.rev_append acc rest)
          | frame :: rest -> pop (frame :: acc) rest
        in
        (match pop [] !s with
        | Some ((op, t0), rest) ->
          s := rest;
          emit ~tid:e.tid ~op ~t0 ~t1:e.time
        | None -> ())
      | Opid.Read | Opid.Write -> ())
    t.log;
  Hashtbl.iter
    (fun tid s ->
      List.iter (fun (op, t0) -> emit ~tid ~op ~t0 ~t1:t.log.duration) !s)
    stacks;
  !events

(* Delay injections realized in the trace ([delayed_by > 0]): an instant
   marker on the frame track and a slice covering the injected interval on
   the scheduler track, annotated with what the plan asked for. *)
let delay_events ~pid ~plan (t : test_timeline) =
  let events = ref [] in
  Log.iter
    (fun (e : Event.t) ->
      if e.delayed_by > 0 then begin
        let args =
          [
            ("op", P.Str (Opid.to_string e.op));
            ("delayed_us", P.Int e.delayed_by);
            ("planned_us", P.Int (Perturber.delay_before plan e.op));
          ]
        in
        events :=
          P.instant ~cat:"delay" ~args
            ~name:("delay " ^ Opid.to_string e.op)
            ~ts:e.time ~pid ~tid:(frames_track e.tid) ()
          :: P.complete ~cat:"delay" ~args ~name:"delay-injection"
               ~ts:(e.time - e.delayed_by) ~dur:e.delayed_by ~pid
               ~tid:(sched_track e.tid) ()
          :: !events
      end)
    t.log;
  !events

(* Running/blocked alternation per thread from the scheduler recording. *)
let sched_events ~pid (t : test_timeline) =
  List.concat_map
    (fun (tid, spawn, fin) ->
      let slice name ts stop =
        P.complete ~cat:"sched" ~name ~ts ~dur:(stop - ts) ~pid
          ~tid:(sched_track tid) ()
      in
      let cur = ref spawn in
      let events = ref [] in
      List.iter
        (fun (b : Schedule.interval) ->
          if b.start > !cur then events := slice "running" !cur b.start :: !events;
          events := slice "blocked" b.start b.stop :: !events;
          if b.stop > !cur then cur := b.stop)
        (Schedule.blocked_of_thread t.schedule tid);
      if fin > !cur then events := slice "running" !cur fin :: !events;
      !events)
    t.schedule.lifetimes

(* Flow arrows between conflicting accesses: same address, different
   threads, at least one write, at most [near] apart — enumerated off the
   per-address index exactly like window extraction.  Each end also gets a
   small access slice for the arrow to bind to. *)
let flow_events ~pid ~near ~max_flows ~next_flow_id (t : test_timeline) =
  let events = ref [] in
  let emitted = ref 0 in
  Log.iter_addr_accesses t.log (fun _addr accesses ->
      let n = Array.length accesses in
      if n > 1 && !emitted < max_flows then begin
        try
          for i = 0 to n - 1 do
            let a = accesses.(i) in
            let j = ref (i + 1) in
            while !j < n && (accesses.(!j) : Event.t).time - a.time <= near do
              let b = accesses.(!j) in
              if
                a.tid <> b.tid
                && (a.op.kind = Opid.Write || b.op.kind = Opid.Write)
              then begin
                let id = !next_flow_id in
                incr next_flow_id;
                incr emitted;
                let access (e : Event.t) =
                  P.complete ~cat:"access"
                    ~args:[ ("field", P.Str (Opid.field_key e.op)) ]
                    ~name:(Opid.to_string e.op) ~ts:e.time ~dur:1 ~pid
                    ~tid:(frames_track e.tid) ()
                in
                events :=
                  access a
                  :: P.flow_start ~cat:"conflict" ~name:"conflict" ~id ~ts:a.time
                       ~pid ~tid:(frames_track a.tid) ()
                  :: access b
                  :: P.flow_end ~cat:"conflict" ~name:"conflict" ~id ~ts:b.time
                       ~pid ~tid:(frames_track b.tid) ()
                  :: !events;
                if !emitted >= max_flows then raise Exit
              end;
              incr j
            done
          done
        with Exit -> ()
      end);
  !events

(* The provenance overlay: one process of per-verdict tracks, each
   holding a slice per evidence window spanning its first..second access
   (virtual time, so it lines up under the per-test processes), plus flow
   arrows from each window slice down to the access coordinates on the
   test's frame tracks.  Flow ids live in their own range so they can
   never collide with the conflict arrows of [export]. *)
let evidence_pid = 1000

let evidence_flow_id_base = 1_000_000

let evidence_flows ?(max_flows = 256) ?(test_pid = 1)
    (prov : Sherlock_provenance.Provenance.t) =
  let module Pr = Sherlock_provenance.Provenance in
  let next_id = ref evidence_flow_id_base in
  let emitted = ref 0 in
  let events = ref [] in
  let meta = ref [ P.process_name ~pid:evidence_pid "sherlock evidence" ] in
  List.iteri
    (fun vi (v : Pr.verdict_evidence) ->
      let track = vi in
      meta :=
        P.thread_name ~pid:evidence_pid ~tid:track
          (Printf.sprintf "%s %s" v.Pr.v_op v.Pr.v_role)
        :: P.thread_sort_index ~pid:evidence_pid ~tid:track track
        :: !meta;
      List.iter
        (fun (w : Pr.window_evidence) ->
          List.iter
            (fun (c : Pr.coord) ->
              if !emitted < max_flows then begin
                let t0 = min c.Pr.c_time1 c.Pr.c_time2 in
                let t1 = max c.Pr.c_time1 c.Pr.c_time2 in
                let args =
                  [
                    ("window", P.Int w.Pr.w_id);
                    ("field", P.Str w.Pr.w_field);
                    ("side", P.Str w.Pr.w_side);
                    ("round", P.Int w.Pr.w_round);
                    ("count", P.Int w.Pr.w_count);
                    ("weight", P.Int w.Pr.w_weight);
                  ]
                in
                events :=
                  P.complete ~cat:"evidence" ~args
                    ~name:(Printf.sprintf "w%d %s" w.Pr.w_id w.Pr.w_field)
                    ~ts:t0
                    ~dur:(max 1 (t1 - t0))
                    ~pid:evidence_pid ~tid:track ()
                  :: !events;
                (* One arrow per access endpoint, from the evidence slice
                   into the test timeline's frame track. *)
                List.iter
                  (fun (ts, tid) ->
                    if !emitted < max_flows then begin
                      let id = !next_id in
                      incr next_id;
                      incr emitted;
                      events :=
                        P.flow_start ~cat:"evidence" ~name:"evidence" ~id ~ts
                          ~pid:evidence_pid ~tid:track ()
                        :: P.flow_end ~cat:"evidence" ~name:"evidence" ~id ~ts
                             ~pid:test_pid ~tid:(frames_track tid) ()
                        :: !events
                    end)
                  [ (c.Pr.c_time1, c.Pr.c_tid1); (c.Pr.c_time2, c.Pr.c_tid2) ]
              end)
            w.Pr.w_coords)
        v.Pr.v_windows)
    prov.Pr.p_verdicts;
  !meta @ !events

let export ?(near = Windows.default_near) ?(max_flows = 64) ~app ~plan
    timelines =
  let next_flow_id = ref 1 in
  List.concat
    (List.mapi
       (fun i (t : test_timeline) ->
         (* pid 0 is the wall-clock span export; virtual-time processes
            start at 1. *)
         let pid = i + 1 in
         (P.process_name ~pid (Printf.sprintf "%s / %s (virtual time)" app t.test_name)
         :: thread_meta ~pid t)
         @ frame_events ~pid t @ delay_events ~pid ~plan t @ sched_events ~pid t
         @ flow_events ~pid ~near ~max_flows ~next_flow_id t)
       timelines)
