type t = {
  lambda : float;
  near : int;
  window_cap : int;
  delay_us : int;
  rounds : int;
  parallelism : int;
  extract_jobs : int;
  threshold : float;
  rare_coeff : float;
  seed : int;
  use_protected : bool;
  use_rare : bool;
  use_variation : bool;
  use_paired : bool;
  use_role_property : bool;
  use_single_role : bool;
  single_role_soft : bool;
  use_delays : bool;
  delay_probability : float;
  accumulate : bool;
  use_race_removal : bool;
  use_refinement : bool;
  max_steps : int;
  retries : int;
  fault_plan : Sherlock_sim.Fault.plan;
  lp_engine : Sherlock_lp.Problem.engine;
  use_warm_start : bool;
  provenance : bool;
  metrics_interval_ms : int;
}

let default =
  {
    lambda = 0.2;
    near = 1_000_000;
    window_cap = 15;
    delay_us = 100_000;
    rounds = 3;
    parallelism = Domain.recommended_domain_count ();
    extract_jobs = 1;
    threshold = 0.9;
    rare_coeff = 0.1;
    seed = 42;
    use_protected = true;
    use_rare = true;
    use_variation = true;
    use_paired = true;
    use_role_property = true;
    use_single_role = true;
    single_role_soft = false;
    use_delays = true;
    delay_probability = 1.0;
    accumulate = true;
    use_race_removal = true;
    use_refinement = true;
    max_steps = 1_000_000;
    retries = 1;
    fault_plan = Sherlock_sim.Fault.empty;
    lp_engine = Sherlock_lp.Problem.Sparse;
    use_warm_start = true;
    provenance = false;
    metrics_interval_ms = 0;
  }

let pp ppf t =
  Format.fprintf ppf
    "lambda=%g near=%dus cap=%d delay=%dus rounds=%d threshold=%g seed=%d \
     par=%d max-steps=%d retries=%d"
    t.lambda t.near t.window_cap t.delay_us t.rounds t.threshold t.seed
    t.parallelism t.max_steps t.retries;
  if t.extract_jobs > 1 then Format.fprintf ppf " extract-jobs=%d" t.extract_jobs;
  (match t.lp_engine with
  | Sherlock_lp.Problem.Sparse -> ()
  | Sherlock_lp.Problem.Dense -> Format.fprintf ppf " lp=dense");
  if not t.use_warm_start then Format.fprintf ppf " warm-start=off";
  if t.provenance then Format.fprintf ppf " provenance=on";
  if t.metrics_interval_ms > 0 then
    Format.fprintf ppf " metrics-interval=%dms" t.metrics_interval_ms;
  if not (Sherlock_sim.Fault.is_empty t.fault_plan) then
    Format.fprintf ppf " fault=[%a]" Sherlock_sim.Fault.pp t.fault_plan
