(** Accumulated observations across runs (paper §4.3).

    Nothing from earlier runs is discarded: new windows and races are
    appended, method-duration samples grow, and the per-operation
    occurrence statistics are recomputed from the full window set.
    Identical windows (same conflicting pair, same candidate multisets)
    are merged with a multiplicity, which keeps the LP small without
    changing the objective. *)

open Sherlock_trace

type merged_window = {
  pair : Opid.t * Opid.t;
  field : string;
  rel : Windows.side;
  acq : Windows.side;
  weight : int;  (** how many identical dynamic windows merged into this *)
  coords : Windows.coord list;
      (** trace coordinates of the dynamic windows merged here, in
          arrival order, capped at a small sample ({!max_coords}) —
          provenance evidence only, never part of the merge identity *)
}

val max_coords : int
(** Cap on [coords] per merged window (8). *)

type t

type extraction
(** Everything derived from one run's trace: its windows, races,
    method-duration samples, and extraction metrics.  Extraction is pure
    in the log, so it can run in a worker domain; folding the results in
    with {!add_extraction} in test order is equivalent to calling
    {!add_log} sequentially. *)

val create : unit -> t

val extract_log :
  ?jobs:int -> ?pool:Sherlock_util.Pool.t ->
  near:int -> cap:int -> refine:bool -> Log.t -> extraction
(** Pure per-log analysis — the domain-parallel half of {!add_log}.
    [jobs]/[pool] shard the window extraction itself across domains
    (see {!Windows.extract}); the result is identical for any [jobs]. *)

val add_extraction : t -> extraction -> unit
(** Sequential merge — the stateful half of {!add_log}. *)

val add_log :
  t -> ?jobs:int -> ?pool:Sherlock_util.Pool.t ->
  near:int -> cap:int -> refine:bool -> Log.t -> unit
(** Extract windows and races from one run's trace and fold them in.
    Equivalent to [add_extraction t (extract_log ~near ~cap ~refine log)]. *)

val windows : t -> merged_window list
(** All merged windows, in arrival order (the same order {!window_at}
    indexes). *)

val window_count : t -> int
(** Number of merged windows so far.  Merged windows have stable ids
    [0 .. window_count - 1] in arrival order; an id's identity (pair and
    candidate multisets) never changes, only its weight can grow.  An
    incremental encoder can therefore cache per-window terms and encode
    only ids past its previous watermark. *)

val window_at : t -> int -> merged_window
(** Current snapshot (including weight) of the merged window with the
    given id. *)

val race_count : t -> int
(** Racy pairs recorded so far; grows monotonically, so a watermark
    detects rounds that added races. *)

val racy_pairs : t -> (Opid.t * Opid.t) list
(** Static conflicting pairs observed to race in at least one window. *)

val is_racy_pair : t -> Opid.t * Opid.t -> bool

val durations : t -> Durations.t

val runs : t -> int

val metrics : t -> Metrics.t
(** Accumulated trace/extraction counters over every log folded in.
    Mutable: callers wanting a snapshot should {!Metrics.copy} it. *)

val avg_occurrence : t -> Opid.t -> float
(** Average number of dynamic instances of the op per window in which it
    appears (on either side) — the input to the rare term (Equation 4). *)

val candidate_count : t -> int
(** Distinct candidate operations across all windows. *)
