open Sherlock_trace

type role =
  | Acquire
  | Release

type t = {
  op : Opid.t;
  role : role;
  probability : float;
}

let role_name = function Acquire -> "acquire" | Release -> "release"

let role_rank = function Acquire -> 0 | Release -> 1

let compare a b =
  match Opid.compare a.op b.op with
  | 0 -> Int.compare (role_rank a.role) (role_rank b.role)
  | c -> c

let mem op role verdicts = List.exists (fun v -> Opid.equal v.op op && v.role = role) verdicts

let releases = List.filter (fun v -> v.role = Release)

let acquires = List.filter (fun v -> v.role = Acquire)

let pp ppf v =
  Format.fprintf ppf "%s %a (p=%.2f)" (role_name v.role) Opid.pp v.op v.probability
