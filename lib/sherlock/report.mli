(** Scoring inferred verdicts against an application's ground truth —
    the bookkeeping behind Tables 2, 4, 5, 6, 7 and Figure 4. *)


type verdict_class =
  | Correct of Ground_truth.entry
  | Data_racy   (** an access participating in a true data race (§5.2) *)
  | Instr_error (** fallout of a simulated instrumentation error *)
  | Not_sync    (** plain false positive *)

type t = {
  classified : (Verdict.t * verdict_class) list;
  missed : Ground_truth.entry list;  (** true syncs not inferred *)
}

val classify : Ground_truth.t -> Verdict.t list -> t

val count : t -> verdict_class -> int
(** Matching on the constructor only (payloads ignored). *)

val num_correct : t -> int

val num_inferred : t -> int

val precision : t -> float
(** correct / inferred; nan when nothing was inferred. *)

val precision_string : t -> string
(** Rendering for CLI/report output: ["75%"], or ["n/a"] when nothing was
    inferred (never ["nan%"]). *)

val correct_ops : t -> (Verdict.t * Ground_truth.entry) list

val false_positive_cause : Ground_truth.t -> Verdict.t -> Ground_truth.cause
(** Table 4 bucket for a non-correct verdict: instrumentation scope,
    then structural cues (ReaderWriterLock upgrade/downgrade ->
    Double_role; Finalize/Dispose -> Dispose; .cctor -> Static_ctor),
    else Others. *)

val print_round_metrics : Format.formatter -> Orchestrator.round_result list -> unit
(** Render one row per round from the cumulative trace-metrics snapshot
    taken at that round's solve (events, pairs, windows, races, wall
    clocks), each cell annotated with its delta against the previous
    round.  Also shows the round's injected fault-plan sites ("Inj"),
    failed run attempts ("Failed"), tests dropped after exhausting
    retries ("Lost"), and whether the LP solved or degraded. *)

val print_extraction_summary : Format.formatter -> unit -> unit
(** Window-extraction cache effectiveness from the default metrics
    registry: span-cache hit rate (hits of total lookups) and, when the
    parallel path ran, the shard count.  Prints nothing when no
    extraction has happened in this process. *)

val print_run_failures : Format.formatter -> Orchestrator.round_result list -> unit
(** One line per failed run attempt (round, test, attempt, cause), with
    [\[dropped\]] marking tests that exhausted their retries; prints
    nothing when every run completed. *)

val print_sites : Format.formatter -> app:string -> Verdict.t list -> Ground_truth.t -> unit
(** Render the artifact's result format: "Releasing sites: ... Acquire
    sites: ...", with Tables 8/9-style descriptions where known. *)
