(** The LP encoding of the synchronization properties and hypotheses
    (paper §4.2, Equations 1–8).

    Each candidate operation gets up to two probability variables in
    [\[0,1\]] — acquire and release — restricted by the Read-Acquire &
    Write-Release property to the feasible role (reads and method entries
    acquire; writes and method exits release).  The hypotheses become:

    - Mostly Protected: a hinge term [max(0, 1 - sum of side variables)]
      per window side (Equation 2), weighted by the window's multiplicity;
    - Synchronizations are Rare: the regularizer [sum v] (Equation 3) and
      the occurrence penalty [0.1 * avg_occurrence * v] (Equation 4);
    - Acquisition-Time Mostly Varies: [(1 - percentile(CV)) * begin^acq]
      per method (Equation 5);
    - Mostly Paired: [|sum acq - sum rel|] per class and
      [|read^acq - write^rel|] per field (Equations 6–7);
    - Single Role: [begin(l)^acq + end(l)^rel <= 1] for library APIs.
      (The paper prints this constraint with the two structurally-zero
      variables; we encode the evidently intended pair — see DESIGN.md.)

    All non-protected terms are scaled by [lambda] (Equation 8).

    Two equivalent solve paths.  Without [?state], each call builds the
    LP from scratch and solves it one-shot.  With [?state], the LP lives
    across calls: round k+1 appends only the windows added since round k
    (hinge rows for already-seen sides are shared, with weights summed),
    rebuilds the objective with recomputed weights, and warm-starts the
    simplex from round k's optimal basis. *)

(** LP-engine counters aggregated over one round's simplex calls (the
    base solve plus each rounding-pin re-solve). *)
type lp_stats = {
  lp_engine : Sherlock_lp.Problem.engine;
  lp_solves : int;
  lp_pivots : int;
  lp_warm_solves : int;
      (** solves that started from a previous round's basis *)
  lp_pivots_saved : int;
      (** structural basis columns inherited at warm starts *)
  lp_presolve_rows : int;  (** rows removed by presolve (one-shot path) *)
  lp_presolve_vars : int;  (** variables fixed by presolve *)
  lp_merged_sides : int;
      (** window sides the incremental encoder mapped onto an existing
          hinge row (cumulative over the state's lifetime) *)
  lp_cold_restarts : int;
      (** warm attempts that fell back to a from-scratch basis *)
  lp_refactors : int;  (** basis refactorizations across the solves *)
  lp_eta_len : int;
      (** longest product-form eta file any solve reached before a
          refactorization *)
  lp_bound_rows_saved : int;
      (** cap rows the bounded-variable encoding kept out of the sparse
          matrix (each [~ub] variable would otherwise be a row) *)
}

type solve_stats = {
  num_vars : int;
  num_windows : int;
  objective : float;  (** [nan] when degraded *)
  solve_s : float;  (** wall-clock of this LP build + solve *)
  degraded : bool;
      (** the LP came back infeasible / unbounded / aborted and the
          returned verdicts are the carried-over [previous] ones *)
  lp : lp_stats;
  trace : Sherlock_trace.Metrics.t;
      (** snapshot of the cumulative trace metrics (runs, extraction,
          solving) at the time of this solve *)
  evidence : Sherlock_provenance.Provenance.verdict_evidence list;
      (** per-verdict evidence (windows, LP rows with duals and
          activities, confidence margins), one entry per returned
          verdict in verdict order.  Captured only when
          [config.provenance] is set and the solve did not degrade;
          [[]] otherwise.  Round attribution fields ([w_round],
          [v_first_round], [v_stable_round]) are 0 placeholders here —
          the orchestrator, which owns round structure, fills them. *)
}

type state
(** Reusable cross-round encoder state: the live LP (with its simplex
    basis), the operation-variable table, and per-window hinge cells.
    A state follows one [Observations.t]: passing a physically different
    observations value resets it transparently (so [accumulate = false],
    which rebuilds observations per round, degrades to cold solves). *)

val create_state : unit -> state

val solve :
  ?state:state ->
  ?previous:Verdict.t list ->
  Config.t ->
  Observations.t ->
  Verdict.t list * solve_stats
(** Build and solve the LP for the accumulated observations; operations
    whose variable reaches [config.threshold] become verdicts.  Windows
    whose static pair was ever observed racing are excluded from the
    protected terms when [use_race_removal] is set.

    With [?state], the encode is incremental and the solve warm-starts
    from the previous call's basis (same optimal objective; the verdict
    set is intended to be identical and is checked by the equivalence
    suite).

    If the LP comes back infeasible or unbounded the solve does not
    raise: it returns [previous] (default [\[\]] — typically the prior
    round's verdicts) and flags the round [degraded] in the stats. *)
