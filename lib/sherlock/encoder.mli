(** The LP encoding of the synchronization properties and hypotheses
    (paper §4.2, Equations 1–8).

    Each candidate operation gets up to two probability variables in
    [\[0,1\]] — acquire and release — restricted by the Read-Acquire &
    Write-Release property to the feasible role (reads and method entries
    acquire; writes and method exits release).  The hypotheses become:

    - Mostly Protected: a hinge term [max(0, 1 - sum of side variables)]
      per window side (Equation 2), weighted by the window's multiplicity;
    - Synchronizations are Rare: the regularizer [sum v] (Equation 3) and
      the occurrence penalty [0.1 * avg_occurrence * v] (Equation 4);
    - Acquisition-Time Mostly Varies: [(1 - percentile(CV)) * begin^acq]
      per method (Equation 5);
    - Mostly Paired: [|sum acq - sum rel|] per class and
      [|read^acq - write^rel|] per field (Equations 6–7);
    - Single Role: [begin(l)^acq + end(l)^rel <= 1] for library APIs.
      (The paper prints this constraint with the two structurally-zero
      variables; we encode the evidently intended pair — see DESIGN.md.)

    All non-protected terms are scaled by [lambda] (Equation 8). *)


type solve_stats = {
  num_vars : int;
  num_windows : int;
  objective : float;  (** [nan] when degraded *)
  solve_s : float;  (** wall-clock of this LP build + solve *)
  degraded : bool;
      (** the LP came back infeasible / unbounded and the returned
          verdicts are the carried-over [previous] ones *)
  trace : Sherlock_trace.Metrics.t;
      (** snapshot of the cumulative trace metrics (runs, extraction,
          solving) at the time of this solve *)
}

val solve :
  ?previous:Verdict.t list ->
  Config.t ->
  Observations.t ->
  Verdict.t list * solve_stats
(** Build and solve the LP for the accumulated observations; operations
    whose variable reaches [config.threshold] become verdicts.  Windows
    whose static pair was ever observed racing are excluded from the
    protected terms when [use_race_removal] is set.

    If the LP comes back infeasible or unbounded the solve does not
    raise: it returns [previous] (default [\[\]] — typically the prior
    round's verdicts) and flags the round [degraded] in the stats. *)
