(** Ground-truth synchronization inventories for evaluation.

    Each benchmark application declares which operations truly are
    synchronizations, which fields genuinely race, and how its exotic
    cases should be categorized — the information the paper's authors
    recovered by manual inspection (§5.2, §5.5). *)

open Sherlock_trace

(** Failure categories of Table 4. *)
type cause =
  | Instr_error  (** the true sync was hidden from instrumentation *)
  | Double_role  (** an API that both releases and acquires *)
  | Dispose      (** finalizer / dispose pairs beyond the GC's delay reach *)
  | Static_ctor  (** static-constructor release pairs *)
  | Other_cause

type entry = {
  op : Opid.t;
  role : Verdict.role;
  description : string;  (** Tables 8/9-style one-liner *)
  category : cause;      (** the bucket a miss of this sync falls into *)
}

type t = {
  syncs : entry list;
  racy_fields : string list;
      (** field keys ([Cls::field]) of true data races in the app *)
  error_scope : string list;
      (** class names whose spurious inferences stem from simulated
          instrumentation errors (a hidden true sync nearby) *)
  field_guard : (string * cause) list;
      (** for fields protected by exotic syncs: field key -> the category
          a missed-sync false race on that field belongs to *)
}

val empty : t

val entry : ?category:cause -> Opid.t -> Verdict.role -> string -> entry

val find : t -> Opid.t -> Verdict.role -> entry option

val is_racy_field : t -> string -> bool

val cause_name : cause -> string

val guard_cause : t -> string -> cause
(** Category of a false race on the given field key; [Other_cause] when
    unlisted. *)
