open Sherlock_trace
open Sherlock_lp

type solve_stats = {
  num_vars : int;
  num_windows : int;
  objective : float;
  solve_s : float;
  degraded : bool;
  trace : Metrics.t;
}

type role = Verdict.role =
  | Acquire
  | Release

(* Which roles an operation kind can play.  With the Read-Acquire &
   Write-Release property this is Equation (1): the infeasible variables
   are simply never created (equivalent to pinning them to 0). *)
let feasible_roles (config : Config.t) (op : Opid.t) =
  if config.use_role_property then
    match op.kind with
    | Opid.Read | Opid.Begin -> [ Acquire ]
    | Opid.Write | Opid.End -> [ Release ]
  else [ Acquire; Release ]

let role_ok config op role = List.mem role (feasible_roles config op)

type vars = {
  problem : Problem.t;
  table : (Opid.t * role, Problem.var) Hashtbl.t;
}

let var_of vars op role =
  match Hashtbl.find_opt vars.table (op, role) with
  | Some v -> v
  | None ->
    let suffix = match role with Acquire -> "^acq" | Release -> "^rel" in
    let v = Problem.add_var vars.problem ~ub:1.0 (Opid.to_string op ^ suffix) in
    Hashtbl.add vars.table (op, role) v;
    v

(* Sum of role variables over the distinct ops of a window side (each op
   subtracted once regardless of its dynamic occurrence count — paper
   §4.2, "we always only subtract its corresponding probability variable
   once"). *)
let side_sum config vars side role =
  Opid.Map.fold
    (fun op _count acc ->
      if role_ok config op role then Linexpr.add acc (Linexpr.var (var_of vars op role))
      else acc)
    side Linexpr.zero

let encode_protected config vars (w : Observations.merged_window) idx =
  let weight = float_of_int w.weight in
  let term role side tag =
    let sum = side_sum config vars side role in
    ignore
      (Problem.hinge vars.problem ~weight
         (Printf.sprintf "%s(w%d)" tag idx)
         (Linexpr.sub (Linexpr.const 1.0) sum))
  in
  term Release w.rel "rel";
  term Acquire w.acq "acq"

let solve ?(previous = []) (config : Config.t) obs =
  let module Tspan = Sherlock_telemetry.Span in
  Tspan.with_span ~name:"solve" @@ fun () ->
  let t_start = Unix.gettimeofday () in
  let problem = Problem.create () in
  let vars = { problem; table = Hashtbl.create 64 } in
  let windows =
    List.filter
      (fun (w : Observations.merged_window) ->
        not (config.use_race_removal && Observations.is_racy_pair obs w.pair))
      (Observations.windows obs)
  in
  (* Instantiate variables for every candidate op so that the rare /
     paired / variation terms see them even when the protected hypothesis
     is ablated. *)
  let candidates = ref Opid.Set.empty in
  List.iter
    (fun (w : Observations.merged_window) ->
      Opid.Map.iter (fun op _ -> candidates := Opid.Set.add op !candidates) w.rel;
      Opid.Map.iter (fun op _ -> candidates := Opid.Set.add op !candidates) w.acq)
    windows;
  Opid.Set.iter
    (fun op -> List.iter (fun role -> ignore (var_of vars op role)) (feasible_roles config op))
    !candidates;
  (* Mostly Protected (Equation 2). *)
  if config.use_protected then List.iteri (fun i w -> encode_protected config vars w i) windows;
  let lambda = config.lambda in
  (* Synchronizations are Rare (Equations 3 and 4). *)
  if config.use_rare then
    Hashtbl.iter
      (fun (op, _role) v ->
        let rare = config.rare_coeff *. Observations.avg_occurrence obs op in
        Problem.add_objective problem (Linexpr.var ~coeff:(lambda *. (1.0 +. rare)) v))
      vars.table;
  (* Acquisition-Time Mostly Varies (Equation 5): penalize begin^acq of
     methods whose duration varies little compared to the others. *)
  if config.use_variation then begin
    let durs = Observations.durations obs in
    Hashtbl.iter
      (fun ((op : Opid.t), role) v ->
        if role = Acquire && op.kind = Opid.Begin then begin
          let pct = Durations.cv_percentile durs (Opid.method_key op) in
          let coeff = lambda *. (1.0 -. pct) in
          if coeff > 0.0 then Problem.add_objective problem (Linexpr.var ~coeff v)
        end)
      vars.table
  end;
  (* Mostly Paired (Equations 6 and 7). *)
  if config.use_paired then begin
    (* Per-class method balance. *)
    let by_class : (string, Linexpr.t ref) Hashtbl.t = Hashtbl.create 16 in
    Hashtbl.iter
      (fun ((op : Opid.t), role) v ->
        if Opid.is_frame op then begin
          let signed =
            match role with
            | Acquire -> Linexpr.var v
            | Release -> Linexpr.var ~coeff:(-1.0) v
          in
          match Hashtbl.find_opt by_class op.cls with
          | Some r -> r := Linexpr.add !r signed
          | None -> Hashtbl.add by_class op.cls (ref signed)
        end)
      vars.table;
    Hashtbl.iter
      (fun cls expr ->
        ignore (Problem.abs problem ~weight:lambda ("pair_c(" ^ cls ^ ")") !expr))
      by_class;
    (* Per-field read-acquire / write-release balance. *)
    let fields = ref Opid.Set.empty in
    Hashtbl.iter
      (fun ((op : Opid.t), _) _ ->
        if Opid.is_access op then
          fields := Opid.Set.add { op with kind = Opid.Read } !fields)
      vars.table;
    Opid.Set.iter
      (fun read_op ->
        let write_op = { read_op with kind = Opid.Write } in
        let term op role sign =
          match Hashtbl.find_opt vars.table (op, role) with
          | Some v -> Linexpr.var ~coeff:sign v
          | None -> Linexpr.zero
        in
        let expr =
          Linexpr.add (term read_op Acquire 1.0) (term write_op Release (-1.0))
        in
        ignore
          (Problem.abs problem ~weight:lambda
             ("pair_f(" ^ Opid.field_key read_op ^ ")")
             expr))
      !fields
  end;
  (* Single Role for library APIs. *)
  if config.use_single_role then begin
    let methods = ref Opid.Set.empty in
    Hashtbl.iter
      (fun ((op : Opid.t), _) _ ->
        if Opid.is_frame op && Opid.is_system op then
          methods := Opid.Set.add { op with kind = Opid.Begin } !methods)
      vars.table;
    Opid.Set.iter
      (fun begin_op ->
        let end_op = { begin_op with kind = Opid.End } in
        match
          ( Hashtbl.find_opt vars.table (begin_op, Acquire),
            Hashtbl.find_opt vars.table (end_op, Release) )
        with
        | Some b, Some e ->
          let sum = Linexpr.add (Linexpr.var b) (Linexpr.var e) in
          if config.single_role_soft then
            (* Extension (paper §5.5): penalize the violation rather than
               forbid it, so APIs like UpgradeToWriterLock can keep both
               roles when the windows demand it. *)
            ignore
              (Problem.hinge problem ~weight:lambda
                 ("single_role(" ^ Opid.method_key begin_op ^ ")")
                 (Linexpr.sub sum (Linexpr.const 1.0)))
          else Problem.add_le problem sum 1.0
        | _ -> ())
      !methods
  end;
  (* The LP relaxation occasionally leaves a tie split fractionally (for
     example 0.5/0.5 across a Single-Role pair), which the paper's
     "variables assigned 1" reading would silently drop.  Round by
     repeatedly pinning the largest fractional variable to 1 and
     re-solving — a cheap branch-free integrality repair. *)
  let rec solve_rounded budget =
    let status, assignment = Problem.solve problem in
    let solved = match status with Problem.Solved _ -> true | _ -> false in
    if budget = 0 || not solved then (status, assignment)
    else begin
      let best = ref None in
      Hashtbl.iter
        (fun _ v ->
          let p = assignment v in
          if p > 0.15 && p < config.threshold then
            match !best with
            | Some (_, q) when q >= p -> ()
            | _ -> best := Some (v, p))
        vars.table;
      match !best with
      | None -> (status, assignment)
      | Some (v, _) ->
        Problem.add_ge problem (Linexpr.var v) 1.0;
        solve_rounded (budget - 1)
    end
  in
  let status, assignment = solve_rounded 25 in
  let objective = match status with Problem.Solved obj -> obj | _ -> nan in
  let degraded = match status with Problem.Solved _ -> false | _ -> true in
  let verdicts =
    if degraded then
      (* Infeasible / unbounded program: rather than aborting the whole
         inference, fall back on the previous round's verdicts so the
         perturber keeps a sensible delay plan and later rounds can
         recover. *)
      previous
    else
      Hashtbl.fold
        (fun (op, role) v acc ->
          let p = assignment v in
          if p >= config.threshold then
            { Verdict.op; role; probability = p } :: acc
          else acc)
        vars.table []
      |> List.sort Verdict.compare
  in
  let solve_s = Unix.gettimeofday () -. t_start in
  let acc = Observations.metrics obs in
  acc.solve_s <- acc.solve_s +. solve_s;
  Tspan.add_attr "vars" (Tspan.Int (Problem.num_vars problem));
  Tspan.add_attr "windows" (Tspan.Int (List.length windows));
  Tspan.add_attr "verdicts" (Tspan.Int (List.length verdicts));
  Tspan.add_attr "objective" (Tspan.Float objective);
  if degraded then Tspan.add_attr "degraded" (Tspan.Bool true);
  ( verdicts,
    {
      num_vars = Problem.num_vars problem;
      num_windows = List.length windows;
      objective;
      solve_s;
      degraded;
      trace = Metrics.copy acc;
    } )
