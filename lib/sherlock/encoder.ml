open Sherlock_trace
open Sherlock_lp

(* LP-engine counters aggregated over every simplex call of one round
   (the base solve plus each rounding-pin re-solve). *)
type lp_stats = {
  lp_engine : Problem.engine;
  lp_solves : int;
  lp_pivots : int;
  lp_warm_solves : int;  (* solves that started from a previous basis *)
  lp_pivots_saved : int;
  lp_presolve_rows : int;
  lp_presolve_vars : int;
  lp_merged_sides : int;
      (* window sides mapped onto an existing hinge by the incremental
         encoder (cumulative over the state's lifetime) *)
  lp_cold_restarts : int;
  lp_refactors : int;
  lp_eta_len : int; (* longest basis eta file any solve reached *)
  lp_bound_rows_saved : int;
      (* cap rows the bounded-variable encoding kept out of the matrix *)
}

let zero_lp engine =
  {
    lp_engine = engine;
    lp_solves = 0;
    lp_pivots = 0;
    lp_warm_solves = 0;
    lp_pivots_saved = 0;
    lp_presolve_rows = 0;
    lp_presolve_vars = 0;
    lp_merged_sides = 0;
    lp_cold_restarts = 0;
    lp_refactors = 0;
    lp_eta_len = 0;
    lp_bound_rows_saved = 0;
  }

let fold_lp acc (i : Problem.solve_info) =
  {
    acc with
    lp_solves = acc.lp_solves + 1;
    lp_pivots = acc.lp_pivots + i.pivots;
    lp_warm_solves = (acc.lp_warm_solves + if i.warm then 1 else 0);
    lp_pivots_saved = acc.lp_pivots_saved + i.pivots_saved;
    lp_presolve_rows = acc.lp_presolve_rows + i.presolve_removed_rows;
    lp_presolve_vars = acc.lp_presolve_vars + i.presolve_fixed_vars;
    lp_cold_restarts = acc.lp_cold_restarts + i.cold_restarts;
    lp_refactors = acc.lp_refactors + i.refactors;
    lp_eta_len = max acc.lp_eta_len i.eta_len;
    lp_bound_rows_saved = max acc.lp_bound_rows_saved i.bound_rows_saved;
  }

type solve_stats = {
  num_vars : int;
  num_windows : int;
  objective : float;
  solve_s : float;
  degraded : bool;
  lp : lp_stats;
  trace : Metrics.t;
  evidence : Sherlock_provenance.Provenance.verdict_evidence list;
}

type role = Verdict.role =
  | Acquire
  | Release

(* Which roles an operation kind can play.  With the Read-Acquire &
   Write-Release property this is Equation (1): the infeasible variables
   are simply never created (equivalent to pinning them to 0). *)
let feasible_roles (config : Config.t) (op : Opid.t) =
  if config.use_role_property then
    match op.kind with
    | Opid.Read | Opid.Begin -> [ Acquire ]
    | Opid.Write | Opid.End -> [ Release ]
  else [ Acquire; Release ]

let role_ok config op role = List.mem role (feasible_roles config op)

let role_suffix = function Acquire -> "^acq" | Release -> "^rel"

(* Deterministic symmetry breaking.  The encoding regularly has multiple
   optimal vertices (two candidates covering the same windows at the same
   cost); which one a simplex run lands on depends on pivot order, which
   differs between engines and between the one-shot and incremental
   paths.  A tiny per-variable cost keyed on the operation's identity
   (not its variable id, which is path-dependent) makes the optimum
   generically unique, so every path reports the same verdicts.  The
   magnitude — at most 2e-6 per variable — is far above the solver's
   1e-9 tolerance and far below any data-driven cost difference. *)
let tie_cost op role =
  let h = Hashtbl.hash (Opid.to_string op ^ role_suffix role) in
  1e-6 *. (1.0 +. (float_of_int h /. 1073741824.0))

type vars = {
  problem : Problem.t;
  table : (Opid.t * role, Problem.var) Hashtbl.t;
}

let var_of vars op role =
  match Hashtbl.find_opt vars.table (op, role) with
  | Some v -> v
  | None ->
    let v =
      Problem.add_var vars.problem ~ub:1.0 (Opid.to_string op ^ role_suffix role)
    in
    Hashtbl.add vars.table (op, role) v;
    v

(* Sum of role variables over the distinct ops of a window side (each op
   subtracted once regardless of its dynamic occurrence count — paper
   §4.2, "we always only subtract its corresponding probability variable
   once"). *)
let side_sum config vars side role =
  Opid.Map.fold
    (fun op _count acc ->
      if role_ok config op role then Linexpr.add acc (Linexpr.var (var_of vars op role))
      else acc)
    side Linexpr.zero

(* The variable set of a side's sum (all coefficients are 1), used to
   recognize two window sides that produce the identical hinge row. *)
let side_key config vars side role =
  Opid.Map.fold
    (fun op _count acc ->
      if role_ok config op role then var_of vars op role :: acc else acc)
    side []
  |> List.sort_uniq compare

(* Largest fractional variable to pin to 1 during rounding.  Values
   within 1e-6 of the maximum count as tied (different pivot sequences
   leave different last-bit noise on the same vertex), and ties break on
   the operation's name — stable across solve paths and engines, unlike
   variable ids or hash-table iteration order. *)
let pick_pin (config : Config.t) table assignment =
  let cands = ref [] in
  Hashtbl.iter
    (fun (op, role) v ->
      let p = assignment v in
      if p > 0.15 && p < config.threshold then
        cands := (Opid.to_string op ^ role_suffix role, p, v) :: !cands)
    table;
  match !cands with
  | [] -> None
  | l ->
    let pmax = List.fold_left (fun acc (_, p, _) -> Float.max acc p) 0.0 l in
    let _, p, v =
      List.fold_left
        (fun (bn, bp, bv) (n, p, v) ->
          if p >= pmax -. 1e-6 && (bn = "" || n < bn) then (n, p, v)
          else (bn, bp, bv))
        ("", 0.0, -1) l
    in
    Some (v, p)

let extract_verdicts (config : Config.t) table assignment =
  Hashtbl.fold
    (fun (op, role) v acc ->
      let p = assignment v in
      if p >= config.threshold then { Verdict.op; role; probability = p } :: acc
      else acc)
    table []
  |> List.sort Verdict.compare

(* Per-verdict evidence for the provenance sidecar: the windows whose
   relevant side mentions the op, every LP row touching its variable
   (with activity, coefficient, and dual), and the confidence margin —
   the negated dual of the variable's [p <= 1] cap.  Round attribution
   ([w_round], [v_first_round], [v_stable_round]) belongs to the
   orchestrator, which patches the 0 placeholders written here. *)
let capture_evidence (config : Config.t) obs problem table verdicts assignment
    =
  let module P = Sherlock_provenance.Provenance in
  let duals = Problem.last_duals problem in
  let dual_of_row i =
    match duals with
    | Some d when i < Array.length d.Problem.d_rows -> d.Problem.d_rows.(i)
    | _ -> 0.0
  in
  let rc_of_var v =
    match duals with
    | Some d when v < Array.length d.Problem.d_vars -> d.Problem.d_vars.(v)
    | _ -> 0.0
  in
  (* One pass over the rows builds var -> rows-mentioning-it for exactly
     the verdict variables. *)
  let verdict_vars : (Problem.var, (int * float) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (v : Verdict.t) ->
      match Hashtbl.find_opt table (v.op, v.role) with
      | Some var ->
        if not (Hashtbl.mem verdict_vars var) then
          Hashtbl.add verdict_vars var (ref [])
      | None -> ())
    verdicts;
  for i = 0 to Problem.num_rows problem - 1 do
    let ri = Problem.row_info problem i in
    List.iter
      (fun (v, k) ->
        match Hashtbl.find_opt verdict_vars v with
        | Some rows -> rows := (i, k) :: !rows
        | None -> ())
      ri.Problem.ri_terms
  done;
  let coord_of (c : Windows.coord) =
    {
      P.c_time1 = c.first_time;
      c_tid1 = c.first_tid;
      c_time2 = c.second_time;
      c_tid2 = c.second_tid;
    }
  in
  let windows_for op role =
    let side_name = match role with Release -> "rel" | Acquire -> "acq" in
    let acc = ref [] in
    for i = Observations.window_count obs - 1 downto 0 do
      let w = Observations.window_at obs i in
      if
        not (config.use_race_removal && Observations.is_racy_pair obs w.pair)
      then begin
        let side = match role with Release -> w.rel | Acquire -> w.acq in
        match Opid.Map.find_opt op side with
        | Some count ->
          acc :=
            {
              P.w_id = i;
              w_first = Opid.to_string (fst w.pair);
              w_second = Opid.to_string (snd w.pair);
              w_field = w.field;
              w_side = side_name;
              w_count = count;
              w_weight = w.weight;
              w_round = 0;
              w_coords = List.map coord_of w.coords;
            }
            :: !acc
        | None -> ()
      end
    done;
    !acc
  in
  let rel_name = function
    | Simplex.Le -> "<="
    | Simplex.Ge -> ">="
    | Simplex.Eq -> "="
  in
  let constraints_for var =
    match Hashtbl.find_opt verdict_vars var with
    | None -> []
    | Some rows ->
      List.rev_map
        (fun (i, coeff) ->
          let ri = Problem.row_info problem i in
          let activity = Problem.row_activity problem i assignment in
          {
            P.c_tag = ri.Problem.ri_tag;
            c_rel = rel_name ri.Problem.ri_rel;
            c_rhs = ri.Problem.ri_rhs;
            c_activity = activity;
            c_coeff = coeff;
            c_dual = dual_of_row i;
            c_binding =
              abs_float (activity -. ri.Problem.ri_rhs)
              <= 1e-6 *. (1.0 +. abs_float ri.Problem.ri_rhs);
          })
        !rows
  in
  List.filter_map
    (fun (v : Verdict.t) ->
      match Hashtbl.find_opt table (v.op, v.role) with
      | None -> None
      | Some var ->
        let margin =
          match Problem.ub_row problem var with
          | Some row -> -.dual_of_row row
          | None -> 0.0
        in
        Some
          {
            P.v_op = Opid.to_string v.op;
            v_role = Verdict.role_name v.role;
            v_probability = v.probability;
            v_margin = margin;
            v_reduced_cost = rc_of_var var;
            v_first_round = 0;
            v_stable_round = 0;
            v_windows = windows_for v.op v.role;
            v_constraints = constraints_for var;
          })
    verdicts

(* Shared tail of both solve paths: verdicts, stats, telemetry. *)
let finish (config : Config.t) obs problem table ~num_windows ~lp ~previous
    ~t_start status assignment =
  let module Tspan = Sherlock_telemetry.Span in
  let objective = match status with Problem.Solved obj -> obj | _ -> nan in
  let degraded = match status with Problem.Solved _ -> false | _ -> true in
  let verdicts =
    if degraded then
      (* Infeasible / unbounded program: rather than aborting the whole
         inference, fall back on the previous round's verdicts so the
         perturber keeps a sensible delay plan and later rounds can
         recover. *)
      previous
    else extract_verdicts config table assignment
  in
  let evidence =
    if config.provenance && not degraded then
      capture_evidence config obs problem table verdicts assignment
    else []
  in
  let solve_s = Unix.gettimeofday () -. t_start in
  let acc = Observations.metrics obs in
  acc.solve_s <- acc.solve_s +. solve_s;
  Tspan.add_attr "vars" (Tspan.Int (Problem.num_vars problem));
  Tspan.add_attr "windows" (Tspan.Int num_windows);
  Tspan.add_attr "verdicts" (Tspan.Int (List.length verdicts));
  Tspan.add_attr "objective" (Tspan.Float objective);
  Tspan.add_attr "pivots" (Tspan.Int lp.lp_pivots);
  if degraded then Tspan.add_attr "degraded" (Tspan.Bool true);
  ( verdicts,
    {
      num_vars = Problem.num_vars problem;
      num_windows;
      objective;
      solve_s;
      degraded;
      lp;
      trace = Metrics.copy acc;
      evidence;
    } )

(* ------------------------------------------------------------------ *)
(* One-shot path: rebuild the whole LP from the observations.  Used
   when warm starts are off and as the reference for equivalence tests. *)

let solve_oneshot (config : Config.t) obs previous t_start =
  let problem = Problem.create () in
  Problem.set_engine problem config.lp_engine;
  Problem.set_capture_duals problem config.provenance;
  let vars = { problem; table = Hashtbl.create 64 } in
  let windows =
    List.filter
      (fun (w : Observations.merged_window) ->
        not (config.use_race_removal && Observations.is_racy_pair obs w.pair))
      (Observations.windows obs)
  in
  (* Instantiate variables for every candidate op so that the rare /
     paired / variation terms see them even when the protected hypothesis
     is ablated. *)
  let candidates = ref Opid.Set.empty in
  List.iter
    (fun (w : Observations.merged_window) ->
      Opid.Map.iter (fun op _ -> candidates := Opid.Set.add op !candidates) w.rel;
      Opid.Map.iter (fun op _ -> candidates := Opid.Set.add op !candidates) w.acq)
    windows;
  Opid.Set.iter
    (fun op -> List.iter (fun role -> ignore (var_of vars op role)) (feasible_roles config op))
    !candidates;
  (* Mostly Protected (Equation 2). *)
  if config.use_protected then
    List.iteri
      (fun i (w : Observations.merged_window) ->
        let weight = float_of_int w.weight in
        let term role side tag =
          let sum = side_sum config vars side role in
          ignore
            (Problem.hinge vars.problem ~weight
               (Printf.sprintf "%s(w%d)" tag i)
               (Linexpr.sub (Linexpr.const 1.0) sum))
        in
        term Release w.rel "rel";
        term Acquire w.acq "acq")
      windows;
  let lambda = config.lambda in
  Hashtbl.iter
    (fun (op, role) v ->
      Problem.add_objective problem (Linexpr.var ~coeff:(tie_cost op role) v))
    vars.table;
  (* Synchronizations are Rare (Equations 3 and 4). *)
  if config.use_rare then
    Hashtbl.iter
      (fun (op, _role) v ->
        let rare = config.rare_coeff *. Observations.avg_occurrence obs op in
        Problem.add_objective problem (Linexpr.var ~coeff:(lambda *. (1.0 +. rare)) v))
      vars.table;
  (* Acquisition-Time Mostly Varies (Equation 5): penalize begin^acq of
     methods whose duration varies little compared to the others. *)
  if config.use_variation then begin
    let durs = Observations.durations obs in
    Hashtbl.iter
      (fun ((op : Opid.t), role) v ->
        if role = Acquire && op.kind = Opid.Begin then begin
          let pct = Durations.cv_percentile durs (Opid.method_key op) in
          let coeff = lambda *. (1.0 -. pct) in
          if coeff > 0.0 then Problem.add_objective problem (Linexpr.var ~coeff v)
        end)
      vars.table
  end;
  (* Mostly Paired (Equations 6 and 7). *)
  if config.use_paired then begin
    (* Per-class method balance. *)
    let by_class : (string, Linexpr.t ref) Hashtbl.t = Hashtbl.create 16 in
    Hashtbl.iter
      (fun ((op : Opid.t), role) v ->
        if Opid.is_frame op then begin
          let signed =
            match role with
            | Acquire -> Linexpr.var v
            | Release -> Linexpr.var ~coeff:(-1.0) v
          in
          match Hashtbl.find_opt by_class op.cls with
          | Some r -> r := Linexpr.add !r signed
          | None -> Hashtbl.add by_class op.cls (ref signed)
        end)
      vars.table;
    Hashtbl.iter
      (fun cls expr ->
        ignore (Problem.abs problem ~weight:lambda ("pair_c(" ^ cls ^ ")") !expr))
      by_class;
    (* Per-field read-acquire / write-release balance. *)
    let fields = ref Opid.Set.empty in
    Hashtbl.iter
      (fun ((op : Opid.t), _) _ ->
        if Opid.is_access op then
          fields := Opid.Set.add { op with kind = Opid.Read } !fields)
      vars.table;
    Opid.Set.iter
      (fun read_op ->
        let write_op = { read_op with kind = Opid.Write } in
        let term op role sign =
          match Hashtbl.find_opt vars.table (op, role) with
          | Some v -> Linexpr.var ~coeff:sign v
          | None -> Linexpr.zero
        in
        let expr =
          Linexpr.add (term read_op Acquire 1.0) (term write_op Release (-1.0))
        in
        ignore
          (Problem.abs problem ~weight:lambda
             ("pair_f(" ^ Opid.field_key read_op ^ ")")
             expr))
      !fields
  end;
  (* Single Role for library APIs. *)
  if config.use_single_role then begin
    let methods = ref Opid.Set.empty in
    Hashtbl.iter
      (fun ((op : Opid.t), _) _ ->
        if Opid.is_frame op && Opid.is_system op then
          methods := Opid.Set.add { op with kind = Opid.Begin } !methods)
      vars.table;
    Opid.Set.iter
      (fun begin_op ->
        let end_op = { begin_op with kind = Opid.End } in
        match
          ( Hashtbl.find_opt vars.table (begin_op, Acquire),
            Hashtbl.find_opt vars.table (end_op, Release) )
        with
        | Some b, Some e ->
          let sum = Linexpr.add (Linexpr.var b) (Linexpr.var e) in
          if config.single_role_soft then
            (* Extension (paper §5.5): penalize the violation rather than
               forbid it, so APIs like UpgradeToWriterLock can keep both
               roles when the windows demand it. *)
            ignore
              (Problem.hinge problem ~weight:lambda
                 ("single_role(" ^ Opid.method_key begin_op ^ ")")
                 (Linexpr.sub sum (Linexpr.const 1.0)))
          else Problem.add_le problem sum 1.0
        | _ -> ())
      !methods
  end;
  (* The LP relaxation occasionally leaves a tie split fractionally (for
     example 0.5/0.5 across a Single-Role pair), which the paper's
     "variables assigned 1" reading would silently drop.  Round by
     repeatedly pinning the largest fractional variable to 1 and
     re-solving — a cheap branch-free integrality repair. *)
  let lp = ref (zero_lp (Problem.engine problem)) in
  let rec solve_rounded budget =
    let status, assignment = Problem.solve problem in
    lp := fold_lp !lp (Problem.last_info problem);
    let solved = match status with Problem.Solved _ -> true | _ -> false in
    if budget = 0 || not solved then (status, assignment)
    else
      match pick_pin config vars.table assignment with
      | None -> (status, assignment)
      | Some (v, _) ->
        Problem.add_ge ~tag:"pin" problem (Linexpr.var v) 1.0;
        solve_rounded (budget - 1)
  in
  let status, assignment = solve_rounded 25 in
  finish config obs problem vars.table ~num_windows:(List.length windows)
    ~lp:!lp ~previous ~t_start status assignment

(* ------------------------------------------------------------------ *)
(* Incremental path: a [state] keeps the LP, the variable table, and
   per-window hinge cells alive across rounds.  Each round encodes only
   the window suffix added since the previous round (Observations ids
   are stable), recomputes the data-dependent weights, and reoptimizes
   the live simplex from the previous basis.

   Invariants making this sound (see DESIGN.md):
   - window identity never changes, only its weight grows, and weights
     appear only in the objective — so a re-observed window is an
     objective edit, not a constraint edit;
   - race removal zeroes a hinge's weight, leaving its rows vacuous;
   - candidate variables appearing only in racy windows carry a strictly
     positive rare cost and no compensating weight, so they stay 0 at
     every optimum;
   - rounding pins are relaxed to [x >= 0] after each round, so they
     never constrain later rounds. *)

type state = {
  mutable s_obs : Observations.t option;  (* physical identity guard *)
  mutable s_vars : vars;
  mutable s_hinges : (Problem.var list, Problem.var) Hashtbl.t;
      (* side variable-set -> its hinge; distinct window sides with the
         same candidate variables share one hinge row (their weights
         add), mirroring what Presolve's duplicate-row merge does for
         the one-shot path *)
  mutable s_whinges : (Problem.var option * Problem.var option) array;
      (* window id -> (release hinge, acquire hinge) *)
  mutable s_nwin : int;  (* windows encoded so far (watermark) *)
  mutable s_merged : int;
  mutable s_class_abs : (string, string * Problem.var) Hashtbl.t;
      (* class -> (term signature, abs var); a new method variable
         changes the signature and allocates a fresh abs var — the old
         one keeps its rows but drops out of the objective *)
  mutable s_field_abs : (string, string * Problem.var) Hashtbl.t;
  mutable s_single : (string, Problem.var option) Hashtbl.t;
      (* method key -> soft-mode hinge ([None] = hard constraint added) *)
}

let create_state () =
  {
    s_obs = None;
    s_vars = { problem = Problem.create (); table = Hashtbl.create 64 };
    s_hinges = Hashtbl.create 64;
    s_whinges = [||];
    s_nwin = 0;
    s_merged = 0;
    s_class_abs = Hashtbl.create 16;
    s_field_abs = Hashtbl.create 16;
    s_single = Hashtbl.create 16;
  }

let reset_state st (config : Config.t) =
  let problem = Problem.create () in
  Problem.set_engine problem config.lp_engine;
  st.s_vars <- { problem; table = Hashtbl.create 64 };
  st.s_hinges <- Hashtbl.create 64;
  st.s_whinges <- [||];
  st.s_nwin <- 0;
  st.s_merged <- 0;
  st.s_class_abs <- Hashtbl.create 16;
  st.s_field_abs <- Hashtbl.create 16;
  st.s_single <- Hashtbl.create 16

let register_candidates config vars (w : Observations.merged_window) =
  let reg side =
    Opid.Map.iter
      (fun op _ ->
        List.iter (fun role -> ignore (var_of vars op role)) (feasible_roles config op))
      side
  in
  reg w.rel;
  reg w.acq

(* Encode the window suffix [s_nwin, window_count): candidate variables
   plus (when Mostly Protected is on) one hinge per distinct side. *)
let sync_windows st (config : Config.t) obs =
  let count = Observations.window_count obs in
  if count > Array.length st.s_whinges then begin
    let a = Array.make (max 64 (2 * count)) (None, None) in
    Array.blit st.s_whinges 0 a 0 st.s_nwin;
    st.s_whinges <- a
  end;
  for i = st.s_nwin to count - 1 do
    let w = Observations.window_at obs i in
    register_candidates config st.s_vars w;
    if config.use_protected then begin
      let hinge_for role side tag =
        let key = side_key config st.s_vars side role in
        match Hashtbl.find_opt st.s_hinges key with
        | Some h ->
          st.s_merged <- st.s_merged + 1;
          h
        | None ->
          let sum = side_sum config st.s_vars side role in
          let h =
            Problem.hinge_var st.s_vars.problem
              (Printf.sprintf "%s(w%d)" tag i)
              (Linexpr.sub (Linexpr.const 1.0) sum)
          in
          Hashtbl.add st.s_hinges key h;
          h
      in
      let rh = hinge_for Release w.rel "rel" in
      let ah = hinge_for Acquire w.acq "acq" in
      st.s_whinges.(i) <- (Some rh, Some ah)
    end
  done;
  st.s_nwin <- count

(* Recompute every hinge's weight from the full window set, skipping
   windows whose pair has raced.  Also counts the active (non-racy)
   windows — the [num_windows] the one-shot path reports. *)
let hinge_weights st (config : Config.t) obs =
  let wt : (Problem.var, float) Hashtbl.t = Hashtbl.create 256 in
  let active = ref 0 in
  for i = 0 to st.s_nwin - 1 do
    let w = Observations.window_at obs i in
    if not (config.use_race_removal && Observations.is_racy_pair obs w.pair)
    then begin
      incr active;
      let bump = function
        | None -> ()
        | Some h ->
          let prev = Option.value ~default:0.0 (Hashtbl.find_opt wt h) in
          Hashtbl.replace wt h (prev +. float_of_int w.weight)
      in
      let rh, ah = st.s_whinges.(i) in
      bump rh;
      bump ah
    end
  done;
  (wt, !active)

(* Refresh the Mostly-Paired balance terms.  The balance expressions are
   derived from the variable table, so they only change when a round
   introduces a new method or access variable; the signature check reuses
   the existing abs variable otherwise. *)
let sync_paired st =
  let { problem; table } = st.s_vars in
  let refresh cache name terms =
    let terms = List.sort compare terms in
    let sigstr =
      String.concat ";"
        (List.map (fun (v, s) -> Printf.sprintf "%d:%g" v s) terms)
    in
    match Hashtbl.find_opt cache name with
    | Some (old_sig, _) when String.equal old_sig sigstr -> ()
    | _ ->
      let expr =
        List.fold_left
          (fun acc (v, s) -> Linexpr.add acc (Linexpr.var ~coeff:s v))
          Linexpr.zero terms
      in
      let a = Problem.abs_var problem name expr in
      Hashtbl.replace cache name (sigstr, a)
  in
  (* Per-class method balance. *)
  let by_class : (string, (Problem.var * float) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  Hashtbl.iter
    (fun ((op : Opid.t), role) v ->
      if Opid.is_frame op then begin
        let signed = (v, match role with Acquire -> 1.0 | Release -> -1.0) in
        match Hashtbl.find_opt by_class op.cls with
        | Some r -> r := signed :: !r
        | None -> Hashtbl.add by_class op.cls (ref [ signed ])
      end)
    table;
  Hashtbl.iter
    (fun cls r -> refresh st.s_class_abs ("pair_c(" ^ cls ^ ")") !r)
    by_class;
  (* Per-field read-acquire / write-release balance. *)
  let fields = ref Opid.Set.empty in
  Hashtbl.iter
    (fun ((op : Opid.t), _) _ ->
      if Opid.is_access op then
        fields := Opid.Set.add { op with kind = Opid.Read } !fields)
    table;
  Opid.Set.iter
    (fun read_op ->
      let write_op = { read_op with kind = Opid.Write } in
      let term op role sign acc =
        match Hashtbl.find_opt table (op, role) with
        | Some v -> (v, sign) :: acc
        | None -> acc
      in
      let terms = term read_op Acquire 1.0 (term write_op Release (-1.0) []) in
      refresh st.s_field_abs ("pair_f(" ^ Opid.field_key read_op ^ ")") terms)
    !fields

(* Single-Role constraints are added at most once per library method,
   the first round both role variables exist. *)
let sync_single st (config : Config.t) =
  let { problem; table } = st.s_vars in
  let methods = ref Opid.Set.empty in
  Hashtbl.iter
    (fun ((op : Opid.t), _) _ ->
      if Opid.is_frame op && Opid.is_system op then
        methods := Opid.Set.add { op with kind = Opid.Begin } !methods)
    table;
  Opid.Set.iter
    (fun begin_op ->
      let key = Opid.method_key begin_op in
      if not (Hashtbl.mem st.s_single key) then begin
        let end_op = { begin_op with kind = Opid.End } in
        match
          ( Hashtbl.find_opt table (begin_op, Acquire),
            Hashtbl.find_opt table (end_op, Release) )
        with
        | Some b, Some e ->
          let sum = Linexpr.add (Linexpr.var b) (Linexpr.var e) in
          if config.single_role_soft then begin
            let h =
              Problem.hinge_var problem
                ("single_role(" ^ key ^ ")")
                (Linexpr.sub sum (Linexpr.const 1.0))
            in
            Hashtbl.add st.s_single key (Some h)
          end
          else begin
            Problem.add_le problem sum 1.0;
            Hashtbl.add st.s_single key None
          end
        | _ -> ()
      end)
    !methods

(* Rebuild the whole objective from current data.  Weights, occurrence
   averages, and duration percentiles all drift as observations
   accumulate, so the objective is recomputed every round; only the
   constraint matrix is incremental. *)
let build_objective st (config : Config.t) obs wt =
  let { problem; table } = st.s_vars in
  let lambda = config.lambda in
  let acc = ref Linexpr.zero in
  let addv ?coeff v = acc := Linexpr.add !acc (Linexpr.var ?coeff v) in
  Hashtbl.iter (fun h w -> if w > 0.0 then addv ~coeff:w h) wt;
  Hashtbl.iter (fun (op, role) v -> addv ~coeff:(tie_cost op role) v) table;
  if config.use_rare then
    Hashtbl.iter
      (fun (op, _role) v ->
        let rare = config.rare_coeff *. Observations.avg_occurrence obs op in
        addv ~coeff:(lambda *. (1.0 +. rare)) v)
      table;
  if config.use_variation then begin
    let durs = Observations.durations obs in
    Hashtbl.iter
      (fun ((op : Opid.t), role) v ->
        if role = Acquire && op.kind = Opid.Begin then begin
          let pct = Durations.cv_percentile durs (Opid.method_key op) in
          let coeff = lambda *. (1.0 -. pct) in
          if coeff > 0.0 then addv ~coeff v
        end)
      table
  end;
  if config.use_paired then begin
    Hashtbl.iter (fun _ (_, a) -> addv ~coeff:lambda a) st.s_class_abs;
    Hashtbl.iter (fun _ (_, a) -> addv ~coeff:lambda a) st.s_field_abs
  end;
  if config.use_single_role && config.single_role_soft then
    Hashtbl.iter
      (fun _ h -> match h with Some h -> addv ~coeff:lambda h | None -> ())
      st.s_single;
  Problem.set_objective problem !acc

let solve_warm st (config : Config.t) obs previous t_start =
  (match st.s_obs with
  | Some o when o == obs -> ()
  | _ ->
    (* Fresh observations (new inference, or accumulate off): the cached
       encoding describes different data — start over. *)
    reset_state st config;
    st.s_obs <- Some obs);
  let problem = st.s_vars.problem in
  let table = st.s_vars.table in
  Problem.set_capture_duals problem config.provenance;
  sync_windows st config obs;
  if config.use_paired then sync_paired st;
  if config.use_single_role then sync_single st config;
  let wt, num_windows = hinge_weights st config obs in
  build_objective st config obs wt;
  let lp = ref { (zero_lp (Problem.engine problem)) with lp_merged_sides = st.s_merged } in
  let pins = ref [] in
  let rec solve_rounded budget =
    let status, assignment = Problem.solve_incremental problem in
    lp := fold_lp !lp (Problem.last_info problem);
    let solved = match status with Problem.Solved _ -> true | _ -> false in
    if budget = 0 || not solved then (status, assignment)
    else
      match pick_pin config table assignment with
      | None -> (status, assignment)
      | Some (v, _) ->
        let row = Problem.add_ge_row ~tag:"pin" problem (Linexpr.var v) 1.0 in
        pins := row :: !pins;
        solve_rounded (budget - 1)
  in
  let status, assignment = solve_rounded 25 in
  (* Pins are one round's integrality repair, not evidence: relax them to
     the vacuous [x >= 0] so they never constrain later rounds. *)
  List.iter (fun row -> Problem.set_row_rhs problem row 0.0) !pins;
  finish config obs problem table ~num_windows ~lp:!lp ~previous ~t_start
    status assignment

let solve ?state ?(previous = []) (config : Config.t) obs =
  let module Tspan = Sherlock_telemetry.Span in
  Tspan.with_span ~name:"solve" @@ fun () ->
  let t_start = Unix.gettimeofday () in
  match state with
  | Some st ->
    Tspan.add_attr "warm" (Tspan.Bool true);
    solve_warm st config obs previous t_start
  | None -> solve_oneshot config obs previous t_start
