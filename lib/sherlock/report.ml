open Sherlock_trace

type verdict_class =
  | Correct of Ground_truth.entry
  | Data_racy
  | Instr_error
  | Not_sync

type t = {
  classified : (Verdict.t * verdict_class) list;
  missed : Ground_truth.entry list;
}

let classify_one (gt : Ground_truth.t) (v : Verdict.t) =
  match Ground_truth.find gt v.op v.role with
  | Some entry -> Correct entry
  | None ->
    if Opid.is_access v.op && Ground_truth.is_racy_field gt (Opid.field_key v.op) then
      Data_racy
    else if List.mem v.op.cls gt.error_scope then Instr_error
    else Not_sync

let classify gt verdicts =
  let classified = List.map (fun v -> (v, classify_one gt v)) verdicts in
  let inferred_ok (entry : Ground_truth.entry) =
    List.exists
      (function
        | _, Correct (e : Ground_truth.entry) ->
          Opid.equal e.op entry.op && e.role = entry.role
        | _ -> false)
      classified
  in
  let missed = List.filter (fun e -> not (inferred_ok e)) gt.syncs in
  { classified; missed }

let count t cls =
  let matches = function
    | Correct _, Correct _ | Data_racy, Data_racy | Instr_error, Instr_error
    | Not_sync, Not_sync ->
      true
    | (Correct _ | Data_racy | Instr_error | Not_sync), _ -> false
  in
  List.length (List.filter (fun (_, c) -> matches (c, cls)) t.classified)

let num_correct t =
  List.length
    (List.filter (function _, Correct _ -> true | _ -> false) t.classified)

let num_inferred t = List.length t.classified

let precision t =
  if num_inferred t = 0 then nan
  else float_of_int (num_correct t) /. float_of_int (num_inferred t)

(* The [nan] from [precision] must not leak into user-facing output as
   "nan%": zero inferred verdicts prints as "n/a". *)
let precision_string t =
  if num_inferred t = 0 then "n/a"
  else Printf.sprintf "%.0f%%" (100.0 *. precision t)

let correct_ops t =
  List.filter_map (function v, Correct e -> Some (v, e) | _ -> None) t.classified

let false_positive_cause (gt : Ground_truth.t) (v : Verdict.t) =
  if List.mem v.op.cls gt.error_scope then Ground_truth.Instr_error
  else if
    v.op.member = "UpgradeToWriterLock" || v.op.member = "DowngradeFromWriterLock"
  then Ground_truth.Double_role
  else if v.op.member = "Finalize" || v.op.member = "Dispose" then Ground_truth.Dispose
  else if v.op.member = ".cctor" then Ground_truth.Static_ctor
  else Ground_truth.Other_cause

(* Each round's [stats.trace] is the cumulative metrics snapshot at that
   round's solve (which stays meaningful when [accumulate] is off and the
   observation state resets per round); every cell also shows the delta
   against the previous round, so round-over-round cost reads directly
   off the table. *)
let print_round_metrics ppf (rounds : Orchestrator.round_result list) =
  let table =
    Sherlock_util.Table.create
      ~title:"Per-round trace metrics (cumulative, +delta vs previous round)"
      ~header:
        [
          "Round"; "Events"; "Pairs"; "Capped"; "Windows"; "Races"; "Inj";
          "Failed"; "Lost"; "LP"; "Pivots"; "Presolve"; "Run s"; "Extract s";
          "Solve s";
        ]
  in
  let int_cell cum prev = Printf.sprintf "%d (+%d)" cum (cum - prev) in
  let sec_cell cum prev = Printf.sprintf "%.3f (+%.3f)" cum (cum -. prev) in
  (* The LP cells are per-round, not cumulative: each round's
     [stats.lp] already covers just that round's solve sequence. *)
  let lp_cell (l : Encoder.lp_stats) =
    let engine =
      match l.lp_engine with
      | Sherlock_lp.Problem.Dense -> "dense"
      | Sherlock_lp.Problem.Sparse -> "sparse"
    in
    if l.lp_warm_solves > 0 then engine ^ "+warm" else engine
  in
  let pivots_cell (l : Encoder.lp_stats) =
    let base =
      if l.lp_pivots_saved > 0 then
        Printf.sprintf "%d (-%d)" l.lp_pivots l.lp_pivots_saved
      else string_of_int l.lp_pivots
    in
    if l.lp_refactors > 0 then
      Printf.sprintf "%s f%d e%d" base l.lp_refactors l.lp_eta_len
    else base
  in
  let presolve_cell (l : Encoder.lp_stats) =
    Printf.sprintf "r%d v%d b%d" l.lp_presolve_rows l.lp_presolve_vars
      l.lp_bound_rows_saved
  in
  let prev = ref (Metrics.create ()) in
  List.iter
    (fun (r : Orchestrator.round_result) ->
      let m = r.stats.trace and p = !prev in
      Sherlock_util.Table.add_row table
        [
          string_of_int r.round;
          int_cell m.events p.events;
          int_cell m.pairs_considered p.pairs_considered;
          int_cell m.pairs_capped p.pairs_capped;
          int_cell m.windows p.windows;
          int_cell m.races p.races;
          string_of_int (Orchestrator.injected_faults r.run_reports);
          string_of_int (Orchestrator.failed_runs r.run_reports);
          string_of_int (Orchestrator.incomplete_runs r.run_reports);
          (if r.stats.degraded then "degraded" else lp_cell r.stats.lp);
          pivots_cell r.stats.lp;
          presolve_cell r.stats.lp;
          sec_cell m.run_s p.run_s;
          sec_cell m.extract_s p.extract_s;
          sec_cell m.solve_s p.solve_s;
        ];
      prev := m)
    rounds;
  Format.fprintf ppf "%s@." (Sherlock_util.Table.render table)

(* Extraction-cache telemetry for the -v report.  The span-cache and
   shard counters are recorded unconditionally (cold aggregation, once
   per extraction), so this reads real numbers on plain runs — no
   --telemetry-out needed. *)
let print_extraction_summary ppf () =
  let module Tm = Sherlock_telemetry.Metrics in
  let v name = Tm.Counter.value (Tm.counter name) in
  let hits = v "windows.span_cache.hit" in
  let misses = v "windows.span_cache.miss" in
  let shards = v "windows.shards" in
  if hits + misses > 0 then
    Format.fprintf ppf "extraction: span cache %.1f%% hit (%d of %d lookups)%s@."
      (100.0 *. float_of_int hits /. float_of_int (hits + misses))
      hits (hits + misses)
      (if shards > 0 then Printf.sprintf ", %d parallel shards" shards else "")

(* One line per failed attempt, in (round, test) order; silent when the
   whole inference was clean. *)
let print_run_failures ppf (rounds : Orchestrator.round_result list) =
  let any =
    List.exists
      (fun (r : Orchestrator.round_result) ->
        Orchestrator.failed_runs r.run_reports > 0)
      rounds
  in
  if any then begin
    Format.fprintf ppf "Failed runs:@.";
    List.iter
      (fun (r : Orchestrator.round_result) ->
        List.iter
          (fun (rep : Orchestrator.run_report) ->
            List.iteri
              (fun attempt f ->
                Format.fprintf ppf "  round %d  %-24s attempt %d/%d: %s%s@."
                  r.round rep.test_name (attempt + 1) rep.attempts
                  (Orchestrator.failure_to_string f)
                  (if (not rep.completed) && attempt + 1 = rep.attempts then
                     "  [dropped]"
                   else ""))
              rep.failures)
          r.run_reports)
      rounds
  end

let print_sites ppf ~app verdicts gt =
  let describe (v : Verdict.t) =
    match Ground_truth.find gt v.op v.role with
    | Some e -> Printf.sprintf "%-70s %s" (Opid.to_string v.op) e.description
    | None -> Opid.to_string v.op
  in
  Format.fprintf ppf "App:%s@." app;
  Format.fprintf ppf "Releasing sites:@.";
  List.iter
    (fun v -> Format.fprintf ppf "  %s@." (describe v))
    (Verdict.releases verdicts);
  Format.fprintf ppf "Acquire sites:@.";
  List.iter
    (fun v -> Format.fprintf ppf "  %s@." (describe v))
    (Verdict.acquires verdicts)
