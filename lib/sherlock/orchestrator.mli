(** The multi-round inference loop (Figure 1): run the subject's tests
    under instrumentation, accumulate observations, solve, derive a delay
    plan, repeat.

    Round 1 runs with no delays (there is no inference yet); each later
    round injects delays before the previous round's inferred releases.
    With [accumulate] off (a Figure 4 ablation) each round solves over
    that round's observations only. *)

open Sherlock_trace

type subject = {
  subject_name : string;
  tests : (string * (unit -> unit)) list;
      (** named unit tests; each runs inside a fresh simulator world *)
}

type round_result = {
  round : int;  (** 1-based *)
  verdicts : Verdict.t list;
  stats : Encoder.solve_stats;
  delayed_ops : int;  (** size of the delay plan this round ran under *)
}

type result = {
  rounds : round_result list;  (** in round order *)
  final : Verdict.t list;
  observations : Observations.t;  (** state after the last round *)
}

val infer : ?config:Config.t -> subject -> result
(** Run [config.rounds] rounds over all tests.  When
    [config.parallelism > 1] each round's tests execute concurrently on
    that many domains (each test is a self-contained simulator world);
    their observations are merged sequentially in test order, so the
    verdicts are identical to [parallelism = 1]. *)

val run_test_logs : ?config:Config.t -> subject -> Log.t list
(** One uninstrumented-delay (round-1 style) traced run per test, with the
    same seeds the first inference round uses — the input shared with the
    race detectors and the TSVD baseline. *)

val test_seed : base:int -> round:int -> test_index:int -> int
(** The deterministic seed used for a given (round, test) execution. *)
