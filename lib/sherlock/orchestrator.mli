(** The multi-round inference loop (Figure 1): run the subject's tests
    under instrumentation, accumulate observations, solve, derive a delay
    plan, repeat.

    Round 1 runs with no delays (there is no inference yet); each later
    round injects delays before the previous round's inferred releases.
    With [accumulate] off (a Figure 4 ablation) each round solves over
    that round's observations only.

    Orchestration is supervised: a test run that crashes (including an
    injected {!Sherlock_sim.Fault} crash), deadlocks, or trips the step
    watchdog never aborts the inference.  The failure is recorded in the
    round's {!run_report}s, the run is retried up to [config.retries]
    times with a reseeded schedule, and if every attempt fails the test
    simply contributes no observations that round.  Likewise an
    infeasible/unbounded LP degrades to the previous round's verdicts
    (see {!Encoder.solve}) instead of raising. *)

open Sherlock_trace

type subject = {
  subject_name : string;
  tests : (string * (unit -> unit)) list;
      (** named unit tests; each runs inside a fresh simulator world *)
}

(** Why one attempt of one test run failed. *)
type run_failure =
  | Crashed of string  (** exception (injected or organic), rendered *)
  | Deadlocked of string  (** [Runtime.Deadlock]: the stuck thread names *)
  | Stalled of int  (** [Runtime.Stalled]: scheduler steps consumed *)

type run_report = {
  test_name : string;
  attempts : int;  (** runs executed: 1 on clean success *)
  failures : run_failure list;  (** one per failed attempt, in order *)
  injected : int;
      (** fault-plan sites that fired across all attempts; 0 proves the
          plan never touched this test (and hence that its runs are
          bitwise identical to the no-fault baseline) *)
  completed : bool;  (** some attempt produced a usable log *)
}

type round_result = {
  round : int;  (** 1-based *)
  verdicts : Verdict.t list;
  stats : Encoder.solve_stats;
  delayed_ops : int;  (** size of the delay plan this round ran under *)
  run_reports : run_report list;  (** one per test, in test order *)
}

type result = {
  rounds : round_result list;  (** in round order *)
  final : Verdict.t list;
  observations : Observations.t;  (** state after the last round *)
  provenance : Sherlock_provenance.Provenance.t option;
      (** [Some _] iff [config.provenance]: per-round traces (windows
          watermark, objective, verdicts, the delay plan the round ran
          under) plus one evidence record per final verdict — its
          contributing windows stamped with the round they first
          appeared, the LP rows referencing its variable with duals and
          activities, the dual-derived confidence margin, and the rounds
          at which the verdict first appeared and stabilized. *)
}

val failure_to_string : run_failure -> string

val failed_runs : run_report list -> int
(** Total failed attempts across the reports. *)

val incomplete_runs : run_report list -> int
(** Tests whose every attempt failed. *)

val injected_faults : run_report list -> int
(** Total fault-plan sites fired across the reports. *)

val infer : ?config:Config.t -> subject -> result
(** Run [config.rounds] rounds over all tests.  When
    [config.parallelism > 1] each round's tests execute concurrently on
    that many domains (each test is a self-contained simulator world);
    their observations are merged sequentially in test order, so the
    verdicts are identical to [parallelism = 1].

    Per-test failures are supervised as described above; [infer] itself
    only lets resource-exhaustion exceptions ([Out_of_memory],
    [Stack_overflow]) escape. *)

val run_test_logs : ?config:Config.t -> subject -> Log.t list
(** One uninstrumented-delay (round-1 style) traced run per test, with the
    same seeds the first inference round uses — the input shared with the
    race detectors and the TSVD baseline.  Unsupervised: a failing run
    raises. *)

val test_seed : base:int -> round:int -> test_index:int -> int
(** The deterministic seed used for a given (round, test) execution. *)
