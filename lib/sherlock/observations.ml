open Sherlock_trace

type merged_window = {
  pair : Opid.t * Opid.t;
  field : string;
  rel : Windows.side;
  acq : Windows.side;
  weight : int;
  coords : Windows.coord list;
      (* sample of trace coordinates merged into this window, arrival
         order, capped — provenance evidence, never part of the merge key *)
}

let max_coords = 8

module Key = struct
  type t = (Opid.t * Opid.t) * (Opid.t * int) list * (Opid.t * int) list

  let of_window (w : Windows.t) =
    (w.pair, Opid.Map.bindings w.rel, Opid.Map.bindings w.acq)
end

type t = {
  merged : (Key.t, merged_window ref) Hashtbl.t;
  mutable order : merged_window ref array;
      (* merged windows in arrival order; [0, nmerged) live.  Gives the
         encoder a stable id per merged window, so an incremental round
         encodes only the suffix added since its watermark (weight bumps
         mutate existing cells in place and need no re-encoding). *)
  mutable nmerged : int;
  mutable races : (Opid.t * Opid.t) list;
  races_seen : (Opid.t * Opid.t, unit) Hashtbl.t;
      (* membership index over [races]: dedup used to be a [List.exists]
         per incoming race — quadratic across a large corpus *)
  durs : Durations.t;
  mutable nruns : int;
  metrics : Metrics.t;
}

type extraction = {
  x_windows : Windows.t list;
  x_races : Windows.race list;
  x_samples : (string * float) list;
  x_metrics : Metrics.t;
}

let create () =
  {
    merged = Hashtbl.create 64;
    order =
      (let z = Opid.read ~cls:"" "" in
       Array.make 64
         (ref
            {
              pair = (z, z);
              field = "";
              rel = Opid.Map.empty;
              acq = Opid.Map.empty;
              weight = 0;
              coords = [];
            }));
    nmerged = 0;
    races = [];
    races_seen = Hashtbl.create 64;
    durs = Durations.create ();
    nruns = 0;
    metrics = Metrics.create ();
  }

let add_window t (w : Windows.t) =
  let key = Key.of_window w in
  match Hashtbl.find_opt t.merged key with
  | Some r ->
    let coords =
      if List.length !r.coords < max_coords then !r.coords @ [ w.coord ]
      else !r.coords
    in
    r := { !r with weight = !r.weight + 1; coords }
  | None ->
    let cell =
      ref
        {
          pair = w.pair;
          field = w.field;
          rel = w.rel;
          acq = w.acq;
          weight = 1;
          coords = [ w.coord ];
        }
    in
    Hashtbl.add t.merged key cell;
    if t.nmerged >= Array.length t.order then begin
      let order = Array.make (2 * Array.length t.order) cell in
      Array.blit t.order 0 order 0 t.nmerged;
      t.order <- order
    end;
    t.order.(t.nmerged) <- cell;
    t.nmerged <- t.nmerged + 1

(* Pure log -> observation delta, safe to evaluate in a worker domain.
   NOTE: window caps are per static pair *within one extraction*; the
   cross-run cap state lives in [Windows.extract]'s own counters seeded
   fresh per call, so extraction commutes with other logs and folding the
   deltas in test order reproduces the sequential path exactly. *)
let extract_log ?(jobs = 1) ?pool ~near ~cap ~refine log =
  let x_metrics = Metrics.create () in
  let x_windows, x_races =
    Windows.extract ~near ~cap ~refine ~metrics:x_metrics ~jobs ?pool log
  in
  let x_samples = Durations.samples_of_log log in
  { x_windows; x_races; x_samples; x_metrics }

let add_extraction t x =
  t.nruns <- t.nruns + 1;
  Durations.add_samples t.durs x.x_samples;
  List.iter (add_window t) x.x_windows;
  List.iter
    (fun (r : Windows.race) ->
      if not (Hashtbl.mem t.races_seen r.race_pair) then begin
        Hashtbl.add t.races_seen r.race_pair ();
        t.races <- r.race_pair :: t.races
      end)
    x.x_races;
  Metrics.merge ~into:t.metrics x.x_metrics

let add_log t ?jobs ?pool ~near ~cap ~refine log =
  add_extraction t (extract_log ?jobs ?pool ~near ~cap ~refine log)

(* Arrival order: stable across library versions (no dependence on
   hash-bucket layout) and aligned with the incremental ids below. *)
let windows t =
  let acc = ref [] in
  for i = t.nmerged - 1 downto 0 do
    acc := !(t.order.(i)) :: !acc
  done;
  !acc

let window_count t = t.nmerged

let window_at t i =
  if i < 0 || i >= t.nmerged then invalid_arg "Observations.window_at";
  !(t.order.(i))

let race_count t = Hashtbl.length t.races_seen

let racy_pairs t = t.races

let is_racy_pair t pair = Hashtbl.mem t.races_seen pair

let durations t = t.durs

let runs t = t.nruns

let metrics t = t.metrics

let avg_occurrence t op =
  let total, count =
    Hashtbl.fold
      (fun _ r (total, count) ->
        let w = !r in
        let tally side (total, count) =
          match Opid.Map.find_opt op side with
          | Some n -> (total + (n * w.weight), count + w.weight)
          | None -> (total, count)
        in
        tally w.rel (tally w.acq (total, count)))
      t.merged (0, 0)
  in
  if count = 0 then 0.0 else float_of_int total /. float_of_int count

let candidate_count t =
  let ops = ref Opid.Set.empty in
  Hashtbl.iter
    (fun _ r ->
      let w = !r in
      Opid.Map.iter (fun op _ -> ops := Opid.Set.add op !ops) w.rel;
      Opid.Map.iter (fun op _ -> ops := Opid.Set.add op !ops) w.acq)
    t.merged;
  Opid.Set.cardinal !ops
