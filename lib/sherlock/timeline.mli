(** Virtual-time Perfetto export of a simulated schedule.

    Replays one or more test traces (via the log's per-address index) plus
    the scheduler recording into Chrome trace-event data that Perfetto /
    [chrome://tracing] render directly:

    - one process per test, two tracks per simulated thread — the method
      frames replayed from the Begin/End events, and a scheduler track of
      running / blocked intervals from the {!Sherlock_sim.Schedule}
      recording;
    - delay-injection markers wherever the Perturber's plan fired (an
      instant on the frame track plus a slice covering the injected
      interval on the scheduler track);
    - flow arrows linking conflicting-access pairs (same address,
      different threads, at least one write, at most [near] apart) — the
      exact pairs window extraction reasons about.

    Timestamps are the simulator's virtual microseconds, so slice widths
    are deterministic for a given seed. *)

open Sherlock_trace

type test_timeline = {
  test_name : string;
  log : Log.t;
  schedule : Sherlock_sim.Schedule.t;
}

val export :
  ?near:int ->
  ?max_flows:int ->
  app:string ->
  plan:Perturber.plan ->
  test_timeline list ->
  Sherlock_telemetry.Perfetto.event list
(** [near] bounds the conflicting-access pair distance (default
    {!Windows.default_near}); [max_flows] caps the flow arrows per test
    (default 64, keeping the JSON loadable for event-dense traces). *)

val evidence_flows :
  ?max_flows:int ->
  ?test_pid:int ->
  Sherlock_provenance.Provenance.t ->
  Sherlock_telemetry.Perfetto.event list
(** The provenance overlay for a trace exported by {!export}: one
    process ("sherlock evidence", pid 1000) with a track per verdict,
    a slice per evidence window spanning its sampled access coordinates
    (virtual time, annotated with window id / round / weight), and flow
    arrows from each slice to the access coordinates on the frame
    tracks of test process [test_pid] (default 1, the first test).
    Flow ids start at 1,000,000 — disjoint from [export]'s conflict
    arrows.  [max_flows] (default 256) caps the arrows. *)
