(** App-1: ApplicationInsights analogue.

    The largest corpus member.  Idioms: the unit-testing framework's
    TestInitialize happens-before edge, a Monitor-protected telemetry
    buffer, a volatile flush flag, TaskFactory fan-out, a hidden custom
    gate (simulated instrumentation error), and deliberately racy metrics
    counters. *)

val app : App.t
