open Sherlock_sim

let poll cell times =
  let v = ref (Heap.read cell) in
  for _ = 2 to times do
    Runtime.cpu 3 15;
    v := Heap.read cell
  done;
  !v

let await_untraced cell pred =
  while not (pred (Heap.peek cell)) do
    Runtime.sleep (300 + Runtime.rand_int 500)
  done

let chores ~cls n =
  for i = 1 to n do
    let meth = if i mod 2 = 0 then "FormatValue" else "Validate" in
    Runtime.frame ~cls ~meth (fun () -> Runtime.sleep 9)
  done
