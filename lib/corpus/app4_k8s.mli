(** App-4: KubernetesClient analogue.

    The paper's richest app for async idioms (Table 9): the ByteBuffer
    [endOfFile] flag with a while-loop consumer, Monitor-protected buffer
    state, task-based kubeconfig loading awaited by [MergeKubeConfig], an
    exception-status flag, and a stream demuxer disposed by the GC. *)

val app : App.t
