open Sherlock_sim
open Sherlock_trace
open Sherlock_core
open Workload

let http_cls = "RestSharp.Http"

let client_cls = "RestSharp.RestClient"

let server_cls = "RestSharp.Tests.Shared.Fixtures.WebServer"

let handlers_cls = "RestSharp.Tests.Shared.Fixtures.Handlers"

(* The test web server: requests are queued to the thread pool; each
   work item runs the server's handler lambda, which reads the request
   fields published by the test and signals completion. *)
let test_webserver_roundtrip () =
  let request_url = Heap.cell ~cls:server_cls ~field:"requestUrl" 0 in
  let request_body = Heap.cell ~cls:server_cls ~field:"requestBody" 0 in
  let response_code = Heap.cell ~cls:server_cls ~field:"responseCode" 0 in
  let done_handle = Waithandle.create_auto () in
  Heap.write request_url 8080;
  (* C#-style property accessors, traced as set_/get_ members. *)
  Heap.setter request_body 314;
  assert (Heap.getter request_body = 314);
  Heap.write request_body 314;
  let served = Heap.cell ~cls:server_cls ~field:"servedCount" 0 in
  Heap.write served 0;
  Threadpool.queue_user_work_item ~delegate:(server_cls, "<Run>b__40") (fun () ->
      Heap.write served 1;
      Runtime.cpu 30 350;
      let u = poll request_url 5 in
      assert (u = 8080);
      chores ~cls:server_cls 2;
      Heap.write response_code 200;
      Waithandle.set done_handle);
  Waithandle.wait_one done_handle;
  Heap.write served 0;
  assert (poll response_code 3 = 200);
  (* Occasional 302 redirect: a second hop through the pool. *)
  if Runtime.rand_int 3 = 0 then begin
    let redirect_url = Heap.cell ~cls:server_cls ~field:"redirectUrl" 0 in
    let hop_done = Waithandle.create_auto () in
    Heap.write redirect_url 8081;
    Threadpool.queue_user_work_item ~delegate:(server_cls, "<Redirect>b__42") (fun () ->
        Heap.write served 1;
        let u = poll redirect_url 5 in
        assert (u = 8081);
        Runtime.cpu 30 240;
        Waithandle.set hop_done);
    Waithandle.wait_one hop_done;
    Heap.write served 0
  end

(* Two queued handlers racing for the same fixture, each polling a
   different request field — diversifies the QueueUserWorkItem windows. *)
let test_webserver_parallel_handlers () =
  let header_count = Heap.cell ~cls:server_cls ~field:"headerCount" 0 in
  let cookie_count = Heap.cell ~cls:server_cls ~field:"cookieCount" 0 in
  let served = Heap.cell ~cls:server_cls ~field:"served" 0 in
  let h1 = Waithandle.create_auto () in
  let h2 = Waithandle.create_auto () in
  Heap.write header_count 6;
  Heap.write cookie_count 2;
  let handled_a = Heap.cell ~cls:server_cls ~field:"handledA" 0 in
  let handled_b = Heap.cell ~cls:handlers_cls ~field:"handledB" 0 in
  Heap.write handled_a 0;
  Heap.write handled_b 0;
  Threadpool.queue_user_work_item ~delegate:(server_cls, "<Run>b__41") (fun () ->
      Heap.write handled_a 1;
      let h = poll header_count 5 in
      assert (h = 6);
      chores ~cls:server_cls 2;
      Runtime.cpu 40 220;
      Waithandle.set h1);
  Threadpool.queue_user_work_item ~delegate:(handlers_cls, "<Generic>b__30") (fun () ->
      Heap.write handled_b 1;
      let c = poll cookie_count 5 in
      assert (c = 2);
      chores ~cls:handlers_cls 2;
      Runtime.cpu 60 260;
      Waithandle.set h2);
  Waithandle.wait_one h1;
  Waithandle.wait_one h2;
  Heap.write served 2;
  assert (poll handled_a 3 = 1);
  assert (poll handled_b 3 = 1)

(* Async request body writing chained with ContinueWith: the first
   callback writes the body, the continuation sends it (Figure 3.D). *)
let test_write_request_body_async () =
  let body_bytes = Heap.cell ~cls:http_cls ~field:"bodyBytes" 0 in
  let content_length = Heap.cell ~cls:http_cls ~field:"contentLength" 0 in
  let sent = Heap.cell ~cls:http_cls ~field:"sent" 0 in
  let writer =
    Tasklib.create ~delegate:(http_cls, "<WriteRequestBodyAsync>b__2") (fun () ->
        Runtime.cpu 50 420;
        Heap.write body_bytes 2048;
        Heap.write content_length 2048)
  in
  let sender =
    Tasklib.continue_with writer ~delegate:(http_cls, "<WriteRequestBodyAsync>b__0")
      (fun () ->
        Heap.write sent 1;
        let b = poll body_bytes 5 in
        let l = poll content_length 5 in
        assert (b = l))
  in
  Tasklib.start writer;
  Tasklib.wait sender;
  Heap.write sent 0

(* ExecuteAsync completion: the client's lambda publishes the response
   and signals; the test thread waits on the handle and asserts.  The
   handler list is a thread-unsafe collection (List.Add / Contains),
   properly guarded here by the handle — TSVD's scope. *)
let test_execute_async () =
  let status = Heap.cell ~cls:client_cls ~field:"status" 0 in
  let cookies = Heap.cell ~cls:client_cls ~field:"cookies" 0 in
  let handlers = Unsafe_list.create () in
  let completed = Waithandle.create_manual () in
  Unsafe_list.add handlers 1;
  Heap.write cookies 1;
  let t =
    Tasklib.start_new ~delegate:(client_cls, "<ExecuteAsync>b__0") (fun () ->
        Heap.write cookies 2;
        chores ~cls:client_cls 2;
        Runtime.cpu 80 500;
        Heap.write status 200;
        Heap.write cookies 3;
        Unsafe_list.add handlers 2;
        Waithandle.set completed)
  in
  Waithandle.wait_one completed;
  assert (Unsafe_list.contains handlers 2);
  assert (poll status 4 = 200);
  Tasklib.wait t;
  Heap.write cookies 0

(* Racy cookie container: two queued requests update the shared jar's
   counters with no lock (the GitHub "race condition" reports this app
   was picked from).  Pool work items hide the fork from Manual_dr. *)
let test_racy_cookie_jar () =
  let base_url = Heap.cell ~cls:client_cls ~field:"baseUrl" 0 in
  let jar_size = Heap.cell ~cls:client_cls ~field:"jarSize" 0 in
  let last_cookie = Heap.cell ~cls:client_cls ~field:"lastCookie" 0 in
  let h1 = Waithandle.create_auto () in
  let h2 = Waithandle.create_auto () in
  Heap.write base_url 443;
  let request name cookie handle =
    Threadpool.queue_user_work_item ~delegate:(client_cls, name) (fun () ->
        let u = poll base_url 5 in
        assert (u = 443);
        chores ~cls:client_cls 2;
        Runtime.cpu 140 480;
        let n = Heap.read jar_size in
        Runtime.cpu 4 22;
        Heap.write jar_size (n + 1);
        Heap.write last_cookie cookie;
        Waithandle.set handle)
  in
  request "<SendRequest>b__0" 1 h1;
  request "<SendRequest>b__1" 2 h2;
  Waithandle.wait_one h1;
  Waithandle.wait_one h2;
  Heap.write base_url 0

(* Connection-pool throttling: a semaphore caps concurrent requests; each
   request records its own latency slot. *)
let test_connection_pool () =
  let pool_size = Heap.cell ~cls:client_cls ~field:"poolSize" 0 in
  let latency_a = Heap.cell ~cls:client_cls ~field:"latencyA" 0 in
  let latency_b = Heap.cell ~cls:client_cls ~field:"latencyB" 0 in
  let sem = Semaphore.create 1 in
  Heap.write pool_size 1;
  let request name latency value =
    Tasklib.start_new ~delegate:(client_cls, name) (fun () ->
        let p = poll pool_size 4 in
        assert (p = 1);
        Semaphore.wait sem;
        Runtime.cpu 50 300;
        Heap.write latency value;
        Semaphore.release sem)
  in
  let r1 = request "<PooledRequest>b__0" latency_a 11 in
  let r2 = request "<PooledRequest>b__1" latency_b 22 in
  Tasklib.wait r1;
  Tasklib.wait r2;
  assert (poll latency_a 3 = 11);
  assert (poll latency_b 3 = 22)

let truth =
  let open Ground_truth in
  {
    syncs =
      [
        entry (Opid.exit ~cls:Threadpool.cls "QueueUserWorkItem") Verdict.Release
          "create new task";
        entry (Opid.enter ~cls:server_cls "<Run>b__40") Verdict.Acquire
          "start of task";
        entry (Opid.exit ~cls:server_cls "<Run>b__40") Verdict.Release "end of task";
        entry (Opid.enter ~cls:server_cls "<Run>b__41") Verdict.Acquire
          "start of thread";
        entry (Opid.enter ~cls:server_cls "<Redirect>b__42") Verdict.Acquire
          "start of redirect hop";
        entry (Opid.exit ~cls:server_cls "<Redirect>b__42") Verdict.Release
          "end of redirect hop";
        entry (Opid.enter ~cls:handlers_cls "<Generic>b__30") Verdict.Acquire
          "start of task";
        entry (Opid.exit ~cls:handlers_cls "<Generic>b__30") Verdict.Release
          "end of task";
        entry (Opid.exit ~cls:Waithandle.event_cls "Set") Verdict.Release
          "release semaphore";
        entry (Opid.enter ~cls:Waithandle.wait_cls "WaitOne") Verdict.Acquire
          "wait for semaphore";
        entry (Opid.exit ~cls:http_cls "<WriteRequestBodyAsync>b__2") Verdict.Release
          "end of task";
        entry (Opid.enter ~cls:http_cls "<WriteRequestBodyAsync>b__0") Verdict.Acquire
          "start of message handler";
        entry (Opid.exit ~cls:client_cls "<ExecuteAsync>b__0") Verdict.Release
          "end of task";
        entry (Opid.enter ~cls:client_cls "<ExecuteAsync>b__0") Verdict.Acquire
          "start of task";
        entry (Opid.exit ~cls:Tasklib.factory_cls "StartNew") Verdict.Release
          "create new task";
        entry (Opid.enter ~cls:Tasklib.cls "Wait") Verdict.Acquire "wait for task";
        entry (Opid.enter ~cls:client_cls "<SendRequest>b__0") Verdict.Acquire
          "start of task";
        entry (Opid.enter ~cls:client_cls "<SendRequest>b__1") Verdict.Acquire
          "start of task";
        entry (Opid.exit ~cls:"System.Threading.SemaphoreSlim" "Release")
          Verdict.Release "release pooled connection";
        entry (Opid.enter ~cls:"System.Threading.SemaphoreSlim" "Wait")
          Verdict.Acquire "wait for pooled connection";
        entry (Opid.enter ~cls:client_cls "<PooledRequest>b__0") Verdict.Acquire
          "start of task";
        entry (Opid.exit ~cls:client_cls "<PooledRequest>b__0") Verdict.Release
          "end of task";
        entry (Opid.enter ~cls:client_cls "<PooledRequest>b__1") Verdict.Acquire
          "start of task";
        entry (Opid.exit ~cls:client_cls "<PooledRequest>b__1") Verdict.Release
          "end of task";
      ];
    racy_fields = [ client_cls ^ "::jarSize"; client_cls ^ "::lastCookie" ];
    error_scope = [];
    field_guard =
      [
        (server_cls ^ "::requestUrl", Other_cause);
        (server_cls ^ "::redirectUrl", Other_cause);
        (client_cls ^ "::baseUrl", Other_cause);
        (client_cls ^ "::poolSize", Other_cause);
        (client_cls ^ "::latencyA", Other_cause);
        (client_cls ^ "::latencyB", Other_cause);
        (server_cls ^ "::servedCount", Other_cause);
        (server_cls ^ "::handledA", Other_cause);
        (handlers_cls ^ "::handledB", Other_cause);
        (server_cls ^ "::requestBody", Other_cause);
        (server_cls ^ "::responseCode", Other_cause);
        (server_cls ^ "::headerCount", Other_cause);
        (server_cls ^ "::cookieCount", Other_cause);
        (client_cls ^ "::status", Other_cause);
        (client_cls ^ "::cookies", Other_cause);
        (http_cls ^ "::bodyBytes", Other_cause);
        (http_cls ^ "::contentLength", Other_cause);
      ];
  }

let app =
  {
    App.id = "App-6";
    name = "RestSharp";
    loc = 19_800;
    stars = 7_363;
    tests =
      [
        ("WebserverRoundtrip", test_webserver_roundtrip);
        ("WebserverParallelHandlers", test_webserver_parallel_handlers);
        ("WriteRequestBodyAsync", test_write_request_body_async);
        ("ExecuteAsync", test_execute_async);
        ("RacyCookieJar", test_racy_cookie_jar);
        ("ConnectionPool", test_connection_pool);
      ];
    truth;
    uses_unsafe_apis = true;
  }
