(** App-5: Radical analogue.

    Idioms from the paper's Table 8: the MessageBroker's subscribe/
    broadcast custom synchronization, entity finalizers paired with the
    last-access release, a dispose pair deliberately out of the delay
    injector's reach (a Table 4 "Dispose" miss), Thread.Start fan-out
    collected by WaitHandle::WaitAll, and a racy change-counter. *)

val app : App.t
