open Sherlock_sim
open Sherlock_trace
open Sherlock_core
open Workload

let factory_cls = "System.Linq.Dynamic.ClassFactory"

let tests_cls = "System.Linq.Dynamic.Test.DynamicExpressionTests"

(* ClassFactory static constructor publishing the module builder, raced
   by two first users of GetDynamicClass. *)
let test_class_factory_static () =
  let module_builder = Heap.cell ~cls:factory_cls ~field:"moduleBuilder" 0 in
  let class_count = Heap.cell ~cls:factory_cls ~field:"classCount" 0 in
  let statics =
    Statics.declare ~cls:factory_cls (fun () ->
        Runtime.cpu 150 500;
        Heap.write module_builder 77;
        Heap.write class_count 0)
  in
  let created_a = Heap.cell ~cls:tests_cls ~field:"createdA" 0 in
  let created_b = Heap.cell ~cls:tests_cls ~field:"createdB" 0 in
  let get_dynamic_class name created =
    Threadlib.create ~delegate:(tests_cls, name) (fun () ->
        chores ~cls:tests_cls 2;
        Runtime.cpu 5 80;
        Runtime.frame ~cls:factory_cls ~meth:"GetDynamicClass" (fun () ->
            Statics.ensure statics;
            let b = poll module_builder 5 in
            assert (b = 77));
        Heap.write created 1)
  in
  let u1 = get_dynamic_class "<CreateClass_TheadSafe>" created_a in
  let u2 = get_dynamic_class "<CreateClass_TheadSafe>_2" created_b in
  Threadlib.start u1;
  Threadlib.start u2;
  Threadlib.join u1;
  Threadlib.join u2;
  assert (poll created_a 3 = 1);
  assert (poll created_b 3 = 1)

(* The class cache guarded by a ReaderWriterLock: readers look classes up
   concurrently; on a miss the reader upgrades to a writer lock — the API
   that both releases (the read lock) and acquires (the write lock),
   violating the Single-Role assumption. *)
let test_upgrade_lock () =
  let classes = Heap.cell ~cls:factory_cls ~field:"classes" 0 in
  let generation = Heap.cell ~cls:factory_cls ~field:"generation" 0 in
  let rw = Rwlock.create () in
  let lookup_or_create () =
    Rwlock.acquire_reader rw;
    let c = poll classes 3 in
    if c = 0 then begin
      Rwlock.upgrade_to_writer_lock rw;
      (* Double-checked under the writer lock. *)
      if Heap.read classes = 0 then begin
        Runtime.cpu 40 160;
        Heap.write classes 1;
        Heap.write generation 1
      end;
      Rwlock.downgrade_from_writer_lock rw
    end;
    Rwlock.release_reader rw
  in
  let workers =
    List.init 3 (fun i ->
        Threadlib.create ~delegate:(factory_cls, "<LookupOrCreate>b__0") (fun () ->
            Runtime.cpu (10 * (i + 1)) (120 * (i + 1));
            lookup_or_create ()))
  in
  List.iter Threadlib.start workers;
  List.iter Threadlib.join workers;
  assert (Heap.peek classes = 1)

(* TaskFactory-driven expression parsing: the parent publishes the
   expression, the task parses it and reports the node count. *)
let test_parse_expression () =
  let expression = Heap.cell ~cls:tests_cls ~field:"expression" 0 in
  let node_count = Heap.cell ~cls:tests_cls ~field:"nodeCount" 0 in
  Heap.write expression 9001;
  let t =
    Tasklib.start_new ~delegate:(tests_cls, "<ParseExpression>b__0") (fun () ->
        Runtime.cpu 30 420;
        let e = poll expression 5 in
        assert (e = 9001);
        chores ~cls:tests_cls 2;
        Heap.write node_count 12)
  in
  Tasklib.wait t;
  Heap.write node_count 0

(* A static parser cache whose first cross-thread use happens well beyond
   Near after its constructor: no window ever forms, so the pair is a
   designed miss (the paper's Table 4 static-constructor bucket). *)
let parser_cls = "System.Linq.Dynamic.ParserCache"

let test_late_static_use () =
  let keywords = Heap.cell ~cls:parser_cls ~field:"keywords" 0 in
  let statics =
    Statics.declare ~cls:parser_cls (fun () ->
        Runtime.cpu 50 150;
        Heap.write keywords 42)
  in
  Runtime.frame ~cls:parser_cls ~meth:"WarmUp" (fun () -> Statics.ensure statics);
  (* Age the process well past Near before the cross-thread first use. *)
  Runtime.sleep 1_500_000;
  let reader =
    Threadlib.create ~delegate:(tests_cls, "<LateParse>b__0") (fun () ->
        Runtime.frame ~cls:parser_cls ~meth:"TokenizeLate" (fun () ->
            Statics.ensure statics;
            let k = poll keywords 4 in
            assert (k = 42)))
  in
  Threadlib.start reader;
  Threadlib.join reader

(* Monitor-protected compiled-expression cache: lookups read-modify-write
   under the lock, the evictor blind-resets. *)
let test_expression_cache () =
  let cache_entries = Heap.cell ~cls:tests_cls ~field:"cacheEntries" 0 in
  let cache_hits = Heap.cell ~cls:tests_cls ~field:"cacheHits" 0 in
  let lock = Monitor.create () in
  let looker () =
    for _ = 1 to 3 do
      Monitor.with_lock lock (fun () ->
          let n = poll cache_entries 3 in
          Heap.write cache_entries (n + 1);
          Heap.write cache_hits (n * 2));
      Runtime.cpu 25 110
    done
  in
  let evictor () =
    for _ = 1 to 3 do
      Monitor.with_lock lock (fun () ->
          Heap.write cache_entries 0;
          Heap.write cache_hits 0);
      Runtime.cpu 45 170
    done
  in
  let a = Threadlib.create ~delegate:(tests_cls, "<CacheLookup>b__0") looker in
  let b = Threadlib.create ~delegate:(tests_cls, "<CacheEvict>b__0") evictor in
  Threadlib.start a;
  Threadlib.start b;
  Threadlib.join a;
  Threadlib.join b

let truth =
  let open Ground_truth in
  {
    syncs =
      [
        entry ~category:Static_ctor (Opid.exit ~cls:factory_cls ".cctor")
          Verdict.Release "end of static constructor";
        entry ~category:Static_ctor (Opid.exit ~cls:parser_cls ".cctor")
          Verdict.Release "end of static constructor (beyond Near)";
        entry ~category:Static_ctor (Opid.enter ~cls:parser_cls "TokenizeLate")
          Verdict.Acquire "first access after static constructor (beyond Near)";
        entry ~category:Static_ctor (Opid.enter ~cls:factory_cls "GetDynamicClass")
          Verdict.Acquire "first access after static constructor";
        entry (Opid.enter ~cls:tests_cls "<CreateClass_TheadSafe>") Verdict.Acquire
          "start of thread";
        entry (Opid.exit ~cls:tests_cls "<CreateClass_TheadSafe>") Verdict.Release
          "end of thread";
        entry (Opid.enter ~cls:tests_cls "<CreateClass_TheadSafe>_2") Verdict.Acquire
          "start of thread";
        entry (Opid.exit ~cls:tests_cls "<CreateClass_TheadSafe>_2") Verdict.Release
          "end of thread";
        entry (Opid.exit ~cls:tests_cls "<ParseExpression>b__0") Verdict.Release
          "end of task";
        entry (Opid.enter ~cls:Tasklib.cls "Wait") Verdict.Acquire "wait for task";
        entry ~category:Double_role
          (Opid.enter ~cls:Rwlock.cls "UpgradeToWriterLock")
          Verdict.Acquire "require lock";
        entry ~category:Double_role
          (Opid.exit ~cls:Rwlock.cls "UpgradeToWriterLock")
          Verdict.Release "release (reader) lock inside upgrade";
        entry (Opid.exit ~cls:Rwlock.cls "DowngradeFromWriterLock") Verdict.Release
          "release lock";
        entry (Opid.enter ~cls:Rwlock.cls "AcquireReaderLock") Verdict.Acquire
          "require lock";
        entry (Opid.exit ~cls:Rwlock.cls "ReleaseReaderLock") Verdict.Release
          "release lock";
        entry (Opid.exit ~cls:Tasklib.factory_cls "StartNew") Verdict.Release
          "create new Task";
        entry (Opid.enter ~cls:tests_cls "<ParseExpression>b__0") Verdict.Acquire
          "start of task";
        entry (Opid.exit ~cls:Threadlib.cls "Start") Verdict.Release
          "launch new thread";
        entry (Opid.enter ~cls:Monitor.cls "Enter") Verdict.Acquire "acquire lock";
        entry (Opid.exit ~cls:Monitor.cls "Exit") Verdict.Release "release lock";
        entry (Opid.enter ~cls:Threadlib.cls "Join") Verdict.Acquire "wait for thread";
      ];
    racy_fields = [];
    error_scope = [];
    field_guard =
      [
        (factory_cls ^ "::moduleBuilder", Static_ctor);
        (parser_cls ^ "::keywords", Static_ctor);
        (factory_cls ^ "::classes", Double_role);
        (factory_cls ^ "::generation", Double_role);
        (tests_cls ^ "::expression", Other_cause);
        (tests_cls ^ "::createdA", Other_cause);
        (tests_cls ^ "::createdB", Other_cause);
        (tests_cls ^ "::nodeCount", Other_cause);
      ];
  }

let app =
  {
    App.id = "App-8";
    name = "System.Linq.Dynamic";
    loc = 1_100;
    stars = 399;
    tests =
      [
        ("ClassFactoryStatic", test_class_factory_static);
        ("UpgradeLock", test_upgrade_lock);
        ("ParseExpression", test_parse_expression);
        ("ExpressionCache", test_expression_cache);
        ("LateStaticUse", test_late_static_use);
      ];
    truth;
    uses_unsafe_apis = false;
  }
