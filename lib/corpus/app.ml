open Sherlock_core

type t = {
  id : string;
  name : string;
  loc : int;
  stars : int;
  tests : (string * (unit -> unit)) list;
  truth : Ground_truth.t;
  uses_unsafe_apis : bool;
}

let subject t = { Orchestrator.subject_name = t.name; tests = t.tests }
