open Sherlock_sim
open Sherlock_trace
open Sherlock_core
open Workload

let buffer_cls = "k8s.ByteBuffer"

let config_cls = "k8s.KubernetesClientConfiguration"

let exn_cls = "k8s.KubernetesException"

let demuxer_cls = "k8s.StreamDemuxer"

let watch_cls = "k8s.Watcher"

(* ByteBuffer: a writer streams chunks under a Monitor and sets the
   volatile endOfFile flag when done; the reader drains under the same
   lock and while-loops on the flag (the paper's Figure 3.B example,
   lifted verbatim from this app). *)
let test_byte_buffer () =
  let end_of_file = Heap.cell ~cls:buffer_cls ~field:"endOfFile" ~volatile:true false in
  let bytes_buffered = Heap.cell ~cls:buffer_cls ~field:"bytesBuffered" 0 in
  let write_offset = Heap.cell ~cls:buffer_cls ~field:"writeOffset" 0 in
  let total_read = Heap.cell ~cls:buffer_cls ~field:"totalRead" 0 in
  let lock = Monitor.create () in
  let writer =
    Threadlib.create ~delegate:(buffer_cls, "<WriteLoop>b__0") (fun () ->
        for chunk = 1 to 3 do
          Monitor.with_lock lock (fun () ->
              let o = poll write_offset 3 in
              Heap.write write_offset (o + 128);
              Heap.write bytes_buffered 128);
          Runtime.cpu (30 * chunk) 150
        done;
        Heap.write end_of_file true)
  in
  Threadlib.start writer;
  let drained = ref 0 in
  while not (Heap.read end_of_file) || !drained < 3 do
    Monitor.with_lock lock (fun () ->
        (* Blind drain: resets without reading. *)
        Heap.write bytes_buffered 0);
    incr drained;
    Runtime.sleep (150 + Runtime.rand_int 300)
  done;
  Heap.write total_read (!drained * 128);
  Threadlib.join writer

(* Task-based kubeconfig loading: LoadKubeConfigAsync runs as a task
   delegate writing the parsed config; the awaiting thread merges it
   inside MergeKubeConfig after the wait (Table 9's await pairs). *)
let test_load_kubeconfig () =
  let host = Heap.cell ~cls:config_cls ~field:"host" 0 in
  let namespace' = Heap.cell ~cls:config_cls ~field:"currentNamespace" 0 in
  let token = Heap.cell ~cls:config_cls ~field:"accessToken" 0 in
  Runtime.frame ~cls:config_cls ~meth:"GetKubernetesClientConfiguration" (fun () ->
      let loader =
        Tasklib.start_new ~delegate:(config_cls, "LoadKubeConfigAsync") (fun () ->
            Runtime.cpu 100 700;
            Heap.write host 6443;
            Heap.write namespace' 3;
            Heap.write token 998877)
      in
      Tasklib.wait loader;
      Runtime.frame ~cls:config_cls ~meth:"MergeKubeConfig" (fun () ->
          let h = poll host 4 in
          let n = poll namespace' 4 in
          let t = poll token 4 in
          assert (h = 6443 && n = 3 && t = 998877)))

(* Error-status flag: a watcher thread records a failure; the supervisor
   polls the exception status (Table 9's Write/Read-KubernetesException::
   Status "meet error" flag). *)
let test_watch_error () =
  let status = Heap.cell ~cls:exn_cls ~field:"Status" ~volatile:true 0 in
  let reason = Heap.cell ~cls:exn_cls ~field:"reason" 0 in
  let watcher =
    Threadlib.create ~delegate:(watch_cls, "<WatchLoop>b__1") (fun () ->
        chores ~cls:watch_cls 2;
        Runtime.cpu 200 800;
        Heap.write reason 404;
        Heap.write status 1)
  in
  Threadlib.start watcher;
  Heap.spin_until status (fun s -> s = 1);
  assert (Heap.read reason = 404);
  Threadlib.join watcher;
  (* Occasional reconnect path after an error, with its own flag pair. *)
  if Runtime.rand_int 3 = 0 then begin
    let reconnected = Heap.cell ~cls:watch_cls ~field:"reconnected" ~volatile:true 0 in
    let retry_count = Heap.cell ~cls:watch_cls ~field:"retryCount" 0 in
    let reconnecter =
      Threadlib.create ~delegate:(watch_cls, "<Reconnect>b__2") (fun () ->
          chores ~cls:watch_cls 2;
          Runtime.cpu 80 420;
          Heap.write retry_count 1;
          Heap.write reconnected 1)
    in
    Threadlib.start reconnecter;
    Heap.spin_until reconnected (fun r -> r = 1);
    assert (Heap.read retry_count = 1);
    Threadlib.join reconnecter
  end

(* Stream demuxer disposed via the GC: the last use of the muxed stream
   releases; the finalizer (Dispose) acquires when the collector runs. *)
let test_demuxer_dispose () =
  let buffered = Heap.cell ~cls:demuxer_cls ~field:"buffered" 0 in
  let closed = Heap.cell ~cls:demuxer_cls ~field:"closed" 0 in
  let refcount = Heap.cell ~cls:demuxer_cls ~field:"refcount" 0 in
  let obj = Runtime.fresh_id () in
  Finalizer.register ~cls:demuxer_cls ~obj (fun () ->
      Heap.write refcount 0;
      Runtime.cpu 20 200;
      let b = poll buffered 6 in
      assert (b = 512);
      Heap.write closed 1);
  chores ~cls:demuxer_cls 2;
  Runtime.frame ~cls:demuxer_cls ~meth:"ReadMuxedStream" ~obj (fun () ->
      Runtime.cpu 40 160;
      Heap.write buffered 512;
      Heap.write refcount 1);
  Finalizer.collect obj;
  (* Keep the world alive until the collector has swept; the wait itself
     is untraced test scaffolding. *)
  await_untraced closed (fun c -> c = 1)

(* Two concurrent configuration loads through the same GetOrAdd-style
   merge path, exercising the config class's windows a second way. *)
let test_concurrent_merge () =
  let server_version = Heap.cell ~cls:config_cls ~field:"serverVersion" 0 in
  let api_version = Heap.cell ~cls:config_cls ~field:"apiVersion" 0 in
  let merged = Heap.cell ~cls:config_cls ~field:"mergedCount" 0 in
  Heap.write server_version 127;
  Heap.write api_version 21;
  let context_a = Heap.cell ~cls:config_cls ~field:"contextA" 0 in
  let context_b = Heap.cell ~cls:config_cls ~field:"contextB" 0 in
  let merge name version expect result =
    Tasklib.start_new ~delegate:(config_cls, name) (fun () ->
        (* Blind merge tally: only the delegate's entry explains it. *)
        Heap.write merged 1;
        Runtime.cpu 20 380;
        let v = poll version 5 in
        assert (v = expect);
        chores ~cls:config_cls 2;
        Runtime.frame ~cls:config_cls ~meth:"MergeKubeConfig" (fun () ->
            Runtime.cpu 30 120);
        Heap.write result expect)
  in
  let m1 = merge "<LoadA>b__0" server_version 127 context_a in
  let m2 = merge "<LoadB>b__0" api_version 21 context_b in
  Tasklib.wait m1;
  Tasklib.wait m2;
  Heap.write merged 0;
  assert (poll context_a 3 = 127);
  assert (poll context_b 3 = 21)

(* The system ConcurrentDictionary (Figure 3.C with the real primitive):
   two loaders race to populate the version cache; the delegate runs
   atomically, so one computes and the other observes. *)
let test_version_cache () =
  let cached_minor = Heap.cell ~cls:config_cls ~field:"cachedMinor" 0 in
  let cached_major = Heap.cell ~cls:config_cls ~field:"cachedMajor" 0 in
  let cache = Conc_dict.create () in
  let lookup name delay =
    Threadlib.create ~delegate:(config_cls, name) (fun () ->
        chores ~cls:config_cls 2;
        Runtime.cpu 10 delay;
        let v =
          Conc_dict.get_or_add cache "server" ~delegate:(config_cls, "<FetchVersion>b__0")
            (fun () ->
              Runtime.cpu 120 420;
              Heap.write cached_major 1;
              Heap.write cached_minor 27;
              127)
        in
        assert (v = 127);
        let m = poll cached_minor 4 in
        assert (m = 27))
  in
  let l1 = lookup "<VersionA>b__0" 60 in
  let l2 = lookup "<VersionB>b__0" 150 in
  Threadlib.start l1;
  Threadlib.start l2;
  Threadlib.join l1;
  Threadlib.join l2;
  assert (Heap.peek cached_major = 1)

let truth =
  let open Ground_truth in
  {
    syncs =
      [
        entry (Opid.write ~cls:buffer_cls "endOfFile") Verdict.Release
          "write flag: file is ready";
        entry (Opid.read ~cls:buffer_cls "endOfFile") Verdict.Acquire
          "read flag: file is ready";
        entry (Opid.enter ~cls:Monitor.cls "Enter") Verdict.Acquire "acquire a lock";
        entry (Opid.exit ~cls:Monitor.cls "Exit") Verdict.Release "release a lock";
        entry (Opid.exit ~cls:config_cls "LoadKubeConfigAsync") Verdict.Release
          "end of await task";
        entry (Opid.enter ~cls:config_cls "MergeKubeConfig") Verdict.Acquire
          "await task beginning";
        entry (Opid.exit ~cls:Tasklib.factory_cls "StartNew") Verdict.Release
          "create new task";
        entry (Opid.enter ~cls:Tasklib.cls "Wait") Verdict.Acquire
          "wait for an await task";
        entry (Opid.write ~cls:exn_cls "Status") Verdict.Release
          "write flag: meet error";
        entry (Opid.read ~cls:exn_cls "Status") Verdict.Acquire "read flag: meet error";
        entry (Opid.enter ~cls:watch_cls "<WatchLoop>b__1") Verdict.Acquire
          "start of thread";
        entry (Opid.exit ~cls:watch_cls "<WatchLoop>b__1") Verdict.Release
          "end of await task";
        entry ~category:Dispose (Opid.exit ~cls:demuxer_cls "ReadMuxedStream")
          Verdict.Release "end of last access";
        entry ~category:Dispose (Opid.enter ~cls:demuxer_cls "Finalize") Verdict.Acquire
          "start of disposal";
        entry (Opid.exit ~cls:Threadlib.cls "Start") Verdict.Release "launch new thread";
        entry (Opid.enter ~cls:Threadlib.cls "Join") Verdict.Acquire "wait for thread";
        entry (Opid.enter ~cls:buffer_cls "<WriteLoop>b__0") Verdict.Acquire
          "start of thread";
        entry (Opid.exit ~cls:buffer_cls "<WriteLoop>b__0") Verdict.Release
          "end of thread";
        entry (Opid.enter ~cls:config_cls "<LoadA>b__0") Verdict.Acquire
          "start of task";
        entry (Opid.enter ~cls:config_cls "<LoadB>b__0") Verdict.Acquire
          "start of task";
        entry (Opid.write ~cls:watch_cls "reconnected") Verdict.Release
          "write flag: reconnected";
        entry (Opid.read ~cls:watch_cls "reconnected") Verdict.Acquire
          "read flag: reconnected";
        entry (Opid.enter ~cls:watch_cls "<Reconnect>b__2") Verdict.Acquire
          "start of retry thread";
        entry (Opid.exit ~cls:watch_cls "<Reconnect>b__2") Verdict.Release
          "end of retry thread";
        entry (Opid.exit ~cls:config_cls "<LoadA>b__0") Verdict.Release "end of task";
        entry (Opid.exit ~cls:config_cls "<LoadB>b__0") Verdict.Release "end of task";
        entry (Opid.enter ~cls:Conc_dict.cls "GetOrAdd") Verdict.Acquire
          "start of atomic region";
        entry (Opid.exit ~cls:Conc_dict.cls "GetOrAdd") Verdict.Release
          "end of atomic region";
        entry (Opid.enter ~cls:config_cls "<FetchVersion>b__0") Verdict.Acquire
          "start of value factory";
        entry (Opid.exit ~cls:config_cls "<FetchVersion>b__0") Verdict.Release
          "end of value factory";
        entry (Opid.enter ~cls:config_cls "<VersionA>b__0") Verdict.Acquire
          "start of thread";
        entry (Opid.enter ~cls:config_cls "<VersionB>b__0") Verdict.Acquire
          "start of thread";
      ];
    racy_fields = [];
    error_scope = [];
    field_guard =
      [
        (config_cls ^ "::host", Other_cause);
        (config_cls ^ "::currentNamespace", Other_cause);
        (config_cls ^ "::accessToken", Other_cause);
        (config_cls ^ "::serverVersion", Other_cause);
        (watch_cls ^ "::retryCount", Other_cause);
        (demuxer_cls ^ "::buffered", Dispose);
        (demuxer_cls ^ "::refcount", Dispose);
        (config_cls ^ "::apiVersion", Other_cause);
        (config_cls ^ "::contextA", Other_cause);
        (config_cls ^ "::cachedMinor", Other_cause);
        (config_cls ^ "::cachedMajor", Other_cause);
        (config_cls ^ "::contextB", Other_cause);
        (config_cls ^ "::mergedCount", Other_cause);
        (demuxer_cls ^ "::closed", Dispose);
      ];
  }

let app =
  {
    App.id = "App-4";
    name = "K8s-client";
    loc = 332_400;
    stars = 395;
    tests =
      [
        ("ByteBuffer", test_byte_buffer);
        ("LoadKubeConfig", test_load_kubeconfig);
        ("WatchError", test_watch_error);
        ("DemuxerDispose", test_demuxer_dispose);
        ("ConcurrentMerge", test_concurrent_merge);
        ("VersionCache", test_version_cache);
      ];
    truth;
    uses_unsafe_apis = false;
  }
