(** App-8: System.Linq.Dynamic analogue.

    The smallest corpus member (Table 9): the ClassFactory static
    constructor, a ReaderWriterLock whose UpgradeToWriterLock violates
    SherLock's Single-Role assumption (the paper's Double-Role failure,
    §5.5), and TaskFactory-driven thread-safe class creation. *)

val app : App.t
