(** Shared workload idioms for the benchmark applications. *)

open Sherlock_sim

val poll : 'a Heap.t -> int -> 'a
(** [poll cell n] reads the cell [n] times with small gaps and returns the
    last value — the repeated-configuration-read shape that separates
    plain data reads from acquire operations under the
    Synchronizations-are-Rare hypothesis. *)

val await_untraced : 'a Heap.t -> ('a -> bool) -> unit
(** Wait for a condition with *untraced* reads — used by test harness code
    (e.g. waiting for the simulated GC) that must not itself look like a
    synchronization to the observer. *)

val chores : cls:string -> int -> unit
(** Run [n] short, constant-duration utility method frames
    ([cls::FormatValue] / [cls::Validate]).  Real applications are full of
    such helpers; they anchor the bottom of the duration-CV distribution
    that the Acquisition-Time-Mostly-Varies percentile ranks against. *)
