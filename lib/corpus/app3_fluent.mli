(** App-3: FluentAssertions analogue.

    Idioms from the paper's Table 8: a Monitor-protected assertion scope,
    [Task::Run] with a test lambda, the [ExecutionTime::<IsRunning>]
    volatile flag, the [AssertionScope] static constructor — plus a
    hidden (uninstrumented) latch that produces the app's two
    instrumentation-error misclassifications. *)

val app : App.t
