open Sherlock_sim
open Sherlock_trace
open Sherlock_core
open Workload

let scope_cls = "FluentAssertions.Execution.AssertionScope"

let exec_cls = "FluentAssertions.Specialized.ExecutionTime"

let specs_cls = "FluentAssertions.Equivalency.AssertionOptionsSpecs"

let latch_cls = "FluentAssertions.Execution.TestLatch"

(* Monitor-protected assertion scope: one thread pushes failures, another
   harvests them with a blind reset. *)
let test_assertion_scope () =
  let failures = Heap.cell ~cls:scope_cls ~field:"failures" 0 in
  let context_depth = Heap.cell ~cls:scope_cls ~field:"contextDepth" 0 in
  let lock = Monitor.create () in
  let asserter () =
    for _ = 1 to 4 do
      Monitor.with_lock lock (fun () ->
          let f = poll failures 3 in
          Heap.write failures (f + 1);
          Heap.write context_depth 1);
      Runtime.cpu 20 110
    done
  in
  let harvester () =
    for _ = 1 to 4 do
      Monitor.with_lock lock (fun () ->
          Heap.write failures 0;
          Heap.write context_depth 0);
      Runtime.cpu 35 140
    done
  in
  let a = Threadlib.create ~delegate:(scope_cls, "AssertLoop") asserter in
  let h = Threadlib.create ~delegate:(scope_cls, "HarvestLoop") harvester in
  Threadlib.start a;
  Threadlib.start h;
  Threadlib.join a;
  Threadlib.join h

(* AssertionScope static constructor publishing the default strategy,
   raced by two concurrent scope users. *)
let test_scope_static () =
  let strategy = Heap.cell ~cls:scope_cls ~field:"defaultStrategy" 0 in
  let formatters = Heap.cell ~cls:scope_cls ~field:"formatters" 0 in
  let statics =
    Statics.declare ~cls:scope_cls (fun () ->
        Runtime.cpu 120 420;
        Heap.write strategy 2;
        Heap.write formatters 11)
  in
  let use_scope name =
    Threadlib.create ~delegate:(scope_cls, name) (fun () ->
        Runtime.cpu 5 70;
        Runtime.frame ~cls:scope_cls ~meth:"GetDefaultStrategy" (fun () ->
            Statics.ensure statics;
            let s = poll strategy 4 in
            let f = poll formatters 4 in
            assert (s = 2 && f = 11)))
  in
  let u1 = use_scope "<ScopeUser>b__0" in
  let u2 = use_scope "<ScopeUser>b__1" in
  Threadlib.start u1;
  Threadlib.start u2;
  Threadlib.join u1;
  Threadlib.join u2

(* Task.Run with the equality-strategy lambda of Table 8: the parent
   publishes the options, the lambda polls them and reports. *)
let test_concurrent_equality_strategy () =
  let comparers = Heap.cell ~cls:specs_cls ~field:"comparers" 0 in
  let conversions = Heap.cell ~cls:specs_cls ~field:"conversions" 0 in
  let outcome = Heap.cell ~cls:specs_cls ~field:"outcome" 0 in
  Heap.write comparers 4;
  Heap.write conversions 2;
  let t =
    Tasklib.run
      ~delegate:(specs_cls, "When_concurrently_getting_equality_strategy.b2")
      (fun () ->
        Runtime.cpu 15 350;
        let c = poll comparers 5 in
        let v = poll conversions 5 in
        Heap.write outcome (c + v))
  in
  Tasklib.wait t;
  assert (Heap.read outcome = 6)

(* The <IsRunning> volatile flag of Table 8: the measured action flips it
   off when done; the measuring thread spins on it. *)
let test_execution_time () =
  let is_running = Heap.cell ~cls:exec_cls ~field:"<IsRunning>" ~volatile:true true in
  let elapsed = Heap.cell ~cls:exec_cls ~field:"elapsed" 0 in
  let action =
    Tasklib.run ~delegate:(exec_cls, "<.ctor>b__0") (fun () ->
        Runtime.cpu 150 600;
        Heap.write elapsed 42;
        Heap.write is_running false)
  in
  Heap.spin_until is_running (fun b -> not b);
  assert (Heap.read elapsed = 42);
  Tasklib.wait action

(* A countdown latch whose BOTH methods are invisible to instrumentation
   (simulated binary-rewriter blind spot): SherLock can only see the
   neighbouring field accesses of class TestLatch, yielding this app's
   two instrumentation-error misclassifications. *)
type latch = {
  mutable remaining : int;
  waiters : Runtime.Waitq.t;
  armed : int Heap.t;
  fired : int Heap.t;
}

let latch_signal l =
  (* Hidden release: no frame. *)
  Heap.write l.fired 1;
  l.remaining <- l.remaining - 1;
  if l.remaining = 0 then ignore (Runtime.wake_all l.waiters)

let latch_await l =
  (* Hidden acquire: no frame either. *)
  while l.remaining > 0 do
    Runtime.block l.waiters
  done;
  let f = poll l.fired 3 in
  assert (f = 1)

let test_latch () =
  let l =
    {
      remaining = 2;
      waiters = Runtime.Waitq.create ();
      armed = Heap.cell ~cls:latch_cls ~field:"armed" 0;
      fired = Heap.cell ~cls:latch_cls ~field:"fired" 0;
    }
  in
  Heap.write l.armed 2;
  let signaller name budget =
    Threadlib.create ~delegate:(latch_cls, name) (fun () ->
        let a = poll l.armed 3 in
        assert (a = 2);
        Runtime.cpu 60 budget;
        latch_signal l)
  in
  let s1 = signaller "<Signal>b__0" 250 in
  let s2 = signaller "<Signal>b__1" 400 in
  Threadlib.start s1;
  Threadlib.start s2;
  latch_await l;
  Threadlib.join s1;
  Threadlib.join s2

(* Racy caching of equivalency steps: two Task.Run lambdas mutate the
   shared step list's bookkeeping with no synchronization (the real
   project fixed several such races).  The configuration warm-up is
   task-published, so the manual annotation list trips over it first. *)
let test_racy_equivalency_steps () =
  let options = Heap.cell ~cls:specs_cls ~field:"options" 0 in
  let step_count = Heap.cell ~cls:specs_cls ~field:"stepCount" 0 in
  let last_step = Heap.cell ~cls:specs_cls ~field:"lastStep" 0 in
  Heap.write options 5;
  let mutate name step =
    Tasklib.run ~delegate:(specs_cls, name) (fun () ->
        let o = poll options 5 in
        assert (o = 5);
        chores ~cls:specs_cls 2;
        Runtime.cpu 150 500;
        let n = Heap.read step_count in
        Runtime.cpu 4 25;
        Heap.write step_count (n + 1);
        Heap.write last_step step)
  in
  let t1 = mutate "<AddEquivalencyStep>b__0" 1 in
  let t2 = mutate "<AddEquivalencyStep>b__1" 2 in
  Tasklib.wait t1;
  Tasklib.wait t2

(* Racy formatter registry: concurrent registration loses entries. *)
let test_racy_formatters () =
  let culture = Heap.cell ~cls:scope_cls ~field:"culture" 0 in
  let formatter_count = Heap.cell ~cls:scope_cls ~field:"formatterCount" 0 in
  Heap.write culture 9;
  let register name =
    Tasklib.run ~delegate:(scope_cls, name) (fun () ->
        let c = poll culture 5 in
        assert (c = 9);
        chores ~cls:scope_cls 2;
        Runtime.cpu 120 450;
        let n = Heap.read formatter_count in
        Runtime.cpu 4 20;
        Heap.write formatter_count (n + 1))
  in
  let t1 = register "<RegisterFormatter>b__0" in
  let t2 = register "<RegisterFormatter>b__1" in
  Tasklib.wait t1;
  Tasklib.wait t2

let truth =
  let open Ground_truth in
  {
    syncs =
      [
        entry (Opid.enter ~cls:Monitor.cls "Enter") Verdict.Acquire "acquire lock";
        entry (Opid.exit ~cls:Monitor.cls "Exit") Verdict.Release "release lock";
        entry ~category:Static_ctor (Opid.exit ~cls:scope_cls ".cctor") Verdict.Release
          "end of static constructor";
        entry ~category:Static_ctor
          (Opid.enter ~cls:scope_cls "GetDefaultStrategy")
          Verdict.Acquire "first access after static constructor";
        entry (Opid.exit ~cls:Tasklib.cls "Run") Verdict.Release "create new task";
        entry
          (Opid.enter ~cls:specs_cls "When_concurrently_getting_equality_strategy.b2")
          Verdict.Acquire "start of task";
        entry
          (Opid.exit ~cls:specs_cls "When_concurrently_getting_equality_strategy.b2")
          Verdict.Release "end of task";
        entry (Opid.write ~cls:exec_cls "<IsRunning>") Verdict.Release "write flag";
        entry (Opid.read ~cls:exec_cls "<IsRunning>") Verdict.Acquire "read flag";
        entry (Opid.enter ~cls:exec_cls "<.ctor>b__0") Verdict.Acquire "start of task";
        entry (Opid.exit ~cls:exec_cls "<.ctor>b__0") Verdict.Release "end of task";
        entry (Opid.enter ~cls:Tasklib.cls "Wait") Verdict.Acquire "wait for task";
        entry (Opid.exit ~cls:Threadlib.cls "Start") Verdict.Release "launch new thread";
        entry (Opid.enter ~cls:Threadlib.cls "Join") Verdict.Acquire "wait for thread";
        entry (Opid.enter ~cls:specs_cls "<AddEquivalencyStep>b__0") Verdict.Acquire
          "start of task";
        entry (Opid.enter ~cls:specs_cls "<AddEquivalencyStep>b__1") Verdict.Acquire
          "start of task";
        entry (Opid.enter ~cls:scope_cls "<RegisterFormatter>b__0") Verdict.Acquire
          "start of task";
        entry (Opid.enter ~cls:scope_cls "<RegisterFormatter>b__1") Verdict.Acquire
          "start of task";
        entry ~category:Instr_error (Opid.exit ~cls:latch_cls "Signal") Verdict.Release
          "hidden latch release (uninstrumented)";
        entry ~category:Instr_error (Opid.enter ~cls:latch_cls "Await") Verdict.Acquire
          "hidden latch acquire (uninstrumented)";
      ];
    racy_fields = [ specs_cls ^ "::stepCount"; specs_cls ^ "::lastStep";
                    scope_cls ^ "::formatterCount" ];
    error_scope = [ latch_cls ];
    field_guard =
      [
        (specs_cls ^ "::comparers", Other_cause);
        (specs_cls ^ "::options", Other_cause);
        (scope_cls ^ "::culture", Other_cause);
        (specs_cls ^ "::conversions", Other_cause);
        (latch_cls ^ "::armed", Instr_error);
        (latch_cls ^ "::fired", Instr_error);
      ];
  }

let app =
  {
    App.id = "App-3";
    name = "FluentAssertion";
    loc = 78_100;
    stars = 1_886;
    tests =
      [
        ("AssertionScope", test_assertion_scope);
        ("ScopeStatic", test_scope_static);
        ("ConcurrentEqualityStrategy", test_concurrent_equality_strategy);
        ("ExecutionTime", test_execution_time);
        ("Latch", test_latch);
        ("RacyEquivalencySteps", test_racy_equivalency_steps);
        ("RacyFormatters", test_racy_formatters);
      ];
    truth;
    uses_unsafe_apis = false;
  }
