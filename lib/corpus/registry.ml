let all () =
  [
    App1_insights.app;
    App2_datetime.app;
    App3_fluent.app;
    App4_k8s.app;
    App5_radical.app;
    App6_restsharp.app;
    App7_statsd.app;
    App8_linq.app;
  ]

let find key =
  let key = String.lowercase_ascii key in
  let matches (a : App.t) =
    String.lowercase_ascii a.id = key || String.lowercase_ascii a.name = key
  in
  match List.find_opt matches (all ()) with
  | Some a -> a
  | None -> raise Not_found
