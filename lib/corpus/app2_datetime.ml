open Sherlock_sim
open Sherlock_trace
open Sherlock_core
open Workload

let dict_cls = "App.Common.ConcurrentLazyDictionary"

let easter_cls = "App.WorkingDays.EasterCalculator"

let holidays_cls = "App.WorkingDays.ChristianHolidays"

let tests_cls = "App.Tests.DayCacheTests"

(* An application-level lazy dictionary: GetOrAdd runs the value factory
   inside an internal (untraced) critical region, so the end of one call
   happens before the start of the next — the Figure 3.C pattern.  The
   factory result is cached in plain fields that concurrent callers read. *)
type lazy_dict = {
  lock : Runtime.Waitq.t;
  mutable busy : bool;
  mutable cached : bool;
  day : int Heap.t;
  month : int Heap.t;
  hits : int Heap.t;
}

let make_dict () =
  {
    lock = Runtime.Waitq.create ();
    busy = false;
    cached = false;
    day = Heap.cell ~cls:dict_cls ~field:"cachedDay" 0;
    month = Heap.cell ~cls:dict_cls ~field:"cachedMonth" 0;
    hits = Heap.cell ~cls:dict_cls ~field:"hits" 0;
  }

let get_or_add dict compute =
  Runtime.frame ~cls:dict_cls ~meth:"GetOrAdd" (fun () ->
      while dict.busy do
        Runtime.block dict.lock
      done;
      dict.busy <- true;
      (* Blind hit accounting: only the GetOrAdd entry can explain the
         resulting write/write windows. *)
      Heap.write dict.hits 1;
      if not dict.cached then begin
        let d, m = compute () in
        Heap.write dict.day d;
        Heap.write dict.month m;
        dict.cached <- true
      end
      else begin
        let d = poll dict.day 3 in
        let m = poll dict.month 3 in
        assert (d > 0 && m > 0)
      end;
      dict.busy <- false;
      ignore (Runtime.wake_one dict.lock))

let test_day_cache () =
  let dict = make_dict () in
  let year_a = Heap.cell ~cls:tests_cls ~field:"queryYearA" 0 in
  let year_b = Heap.cell ~cls:tests_cls ~field:"queryYearB" 0 in
  let found_a = Heap.cell ~cls:tests_cls ~field:"foundA" 0 in
  let found_b = Heap.cell ~cls:tests_cls ~field:"foundB" 0 in
  Heap.write year_a 2020;
  Heap.write year_b 2021;
  let querier name year found delay =
    Threadlib.create ~delegate:(tests_cls, name) (fun () ->
        let y = poll year 5 in
        assert (y >= 2020);
        chores ~cls:tests_cls 2;
        Runtime.cpu 10 delay;
        get_or_add dict (fun () ->
            Runtime.cpu 100 400;
            (21, 4));
        Heap.write found 1)
  in
  let q1 = querier "<GetHoliday>b__0" year_a found_a 50 in
  let q2 = querier "<GetHoliday>b__1" year_b found_b 120 in
  Threadlib.start q1;
  Threadlib.start q2;
  Threadlib.join q1;
  Threadlib.join q2;
  (* Blind tally after the join: only Join's entry can explain it. *)
  Heap.write dict.hits 0;
  assert (poll found_a 3 = 1);
  assert (poll found_b 3 = 1);
  assert (poll dict.day 3 = 21)

(* Static constructor semantics: the Easter calculator's Gauss tables are
   initialized by the .cctor; any concurrent first use blocks until it
   completes (language-enforced happens-before, §5.3.3). *)
let test_easter_static () =
  let golden = Heap.cell ~cls:easter_cls ~field:"goldenNumber" 0 in
  let epact = Heap.cell ~cls:easter_cls ~field:"epactTable" 0 in
  let statics =
    Statics.declare ~cls:easter_cls (fun () ->
        Runtime.cpu 150 500;
        Heap.write golden 19;
        Heap.write epact 29)
  in
  let calculate year =
    Runtime.frame ~cls:easter_cls ~meth:"CalculateEasterDate" (fun () ->
        Statics.ensure statics;
        let g = poll golden 4 in
        let e = poll epact 4 in
        assert (g = 19 && e = 29);
        (year mod 19) + g + e)
  in
  let worker year name =
    Threadlib.create ~delegate:(easter_cls, name) (fun () ->
        chores ~cls:easter_cls 2;
        Runtime.cpu 5 60;
        ignore (calculate year))
  in
  let w1 = worker 2020 "<Easter2020>b__0" in
  let w2 = worker 2021 "<Easter2021>b__0" in
  Threadlib.start w1;
  Threadlib.start w2;
  Threadlib.join w1;
  Threadlib.join w2

(* Volatile flag caching a computed holiday (Table 9's
   Write/Read-ChristianHolidays::ascension). *)
let test_ascension_flag () =
  let ascension = Heap.cell ~cls:holidays_cls ~field:"ascension" ~volatile:true false in
  let ascension_day = Heap.cell ~cls:holidays_cls ~field:"ascensionDay" 0 in
  let computer =
    Threadlib.create ~delegate:(holidays_cls, "ComputeWorker") (fun () ->
        Runtime.cpu 120 450;
        Heap.write ascension_day 39;
        Heap.write ascension true)
  in
  Threadlib.start computer;
  Heap.spin_until ascension (fun b -> b);
  assert (Heap.read ascension_day = 39);
  Threadlib.join computer

(* The dictionary under contention from three queriers: exercises the
   GetOrAdd atomic region repeatedly so its windows accumulate. *)
let test_parallel_lookup () =
  let dict = make_dict () in
  let workers =
    List.init 3 (fun i ->
        Threadlib.create ~delegate:(dict_cls, "<Lookup>b__2") (fun () ->
            chores ~cls:dict_cls 2;
            Runtime.cpu (5 * (i + 1)) (90 * (i + 1));
            get_or_add dict (fun () ->
                Runtime.cpu 80 300;
                (24, 12))))
  in
  List.iter Threadlib.start workers;
  List.iter Threadlib.join workers;
  Heap.write dict.hits 0;
  assert (poll dict.day 3 = 24)

let truth =
  let open Ground_truth in
  {
    syncs =
      [
        entry (Opid.exit ~cls:dict_cls "GetOrAdd") Verdict.Release
          "end of atomic region";
        entry (Opid.enter ~cls:dict_cls "GetOrAdd") Verdict.Acquire
          "start of atomic region";
        entry ~category:Static_ctor (Opid.exit ~cls:easter_cls ".cctor") Verdict.Release
          "end of static constructor";
        entry ~category:Static_ctor
          (Opid.enter ~cls:easter_cls "CalculateEasterDate")
          Verdict.Acquire "first access after static constructor";
        entry (Opid.write ~cls:holidays_cls "ascension") Verdict.Release "write flag";
        entry (Opid.read ~cls:holidays_cls "ascension") Verdict.Acquire "check flag";
        entry (Opid.exit ~cls:Threadlib.cls "Start") Verdict.Release "launch new thread";
        entry (Opid.enter ~cls:Threadlib.cls "Join") Verdict.Acquire "wait for thread";
        entry (Opid.enter ~cls:tests_cls "<GetHoliday>b__0") Verdict.Acquire
          "start of thread";
        entry (Opid.exit ~cls:tests_cls "<GetHoliday>b__0") Verdict.Release
          "end of thread";
        entry (Opid.enter ~cls:tests_cls "<GetHoliday>b__1") Verdict.Acquire
          "start of thread";
        entry (Opid.exit ~cls:tests_cls "<GetHoliday>b__1") Verdict.Release
          "end of thread";
      ];
    racy_fields = [];
    error_scope = [];
    field_guard =
      [
        (dict_cls ^ "::cachedDay", Other_cause);
        (dict_cls ^ "::hits", Other_cause);
        (tests_cls ^ "::queryYearA", Other_cause);
        (tests_cls ^ "::queryYearB", Other_cause);
        (tests_cls ^ "::foundA", Other_cause);
        (tests_cls ^ "::foundB", Other_cause);
        (dict_cls ^ "::cachedMonth", Other_cause);
        (easter_cls ^ "::goldenNumber", Static_ctor);
        (easter_cls ^ "::epactTable", Static_ctor);
      ];
  }

let app =
  {
    App.id = "App-2";
    name = "DataTimeExtention";
    loc = 3_100;
    stars = 335;
    tests =
      [
        ("DayCache", test_day_cache);
        ("EasterStatic", test_easter_static);
        ("AscensionFlag", test_ascension_flag);
        ("ParallelLookup", test_parallel_lookup);
      ];
    truth;
    uses_unsafe_apis = false;
  }
