open Sherlock_sim
open Sherlock_trace
open Sherlock_core
open Workload

let broker_cls = "Radical.Messaging.MessageBroker"

let entity_cls = "Radical.Model.Entity"

let tracking_cls = "Radical.ChangeTracking.ChangeTrackingService"

let metadata_cls = "Radical.Tests.Model.TestMetadata"

let tests_cls = "Radical.Messaging.MessageBrokerTests"

(* The broker's custom synchronization: SubscribeCore publishes the
   handler under an internal (untraced) lock; Broadcast dispatches only
   after subscription completed.  SherLock sees only the method frames
   and the subscription fields. *)
type broker = {
  mutable locked : bool;
  lock_queue : Runtime.Waitq.t;
  mutable subscribed : bool;
  ready_queue : Runtime.Waitq.t;
  handler : int Heap.t;
  topic : int Heap.t;
  delivered : int Heap.t;
}

let make_broker () =
  {
    locked = false;
    lock_queue = Runtime.Waitq.create ();
    subscribed = false;
    ready_queue = Runtime.Waitq.create ();
    handler = Heap.cell ~cls:broker_cls ~field:"handler" 0;
    topic = Heap.cell ~cls:broker_cls ~field:"topic" 0;
    delivered = Heap.cell ~cls:broker_cls ~field:"delivered" 0;
  }

let broker_lock b =
  while b.locked do
    Runtime.block b.lock_queue
  done;
  b.locked <- true

let broker_unlock b =
  b.locked <- false;
  ignore (Runtime.wake_one b.lock_queue)

let subscribe_core b ~handler ~topic =
  Runtime.frame ~cls:broker_cls ~meth:"<SubscribeCore>" (fun () ->
      broker_lock b;
      Runtime.cpu 30 120;
      Heap.write b.handler handler;
      Heap.write b.topic topic;
      b.subscribed <- true;
      broker_unlock b;
      ignore (Runtime.wake_all b.ready_queue))

let broadcast b =
  Runtime.frame ~cls:broker_cls ~meth:"<Broadcast>" (fun () ->
      while not b.subscribed do
        Runtime.block b.ready_queue
      done;
      broker_lock b;
      let h = poll b.handler 3 in
      let t = poll b.topic 3 in
      assert (h > 0 && t > 0);
      Heap.write b.delivered 1;
      broker_unlock b)

let test_broker_different_thread () =
  let b = make_broker () in
  let subscriber =
    Threadlib.create ~delegate:(tests_cls, "<MessageBroker_on_different_thread>")
      (fun () ->
        chores ~cls:broker_cls 2;
        Runtime.cpu 40 200;
        subscribe_core b ~handler:7 ~topic:3)
  in
  let broadcaster =
    Threadlib.create ~delegate:(tests_cls, "<Broadcast_runner>") (fun () ->
        Runtime.cpu 10 60;
        broadcast b)
  in
  Threadlib.start subscriber;
  Threadlib.start broadcaster;
  Threadlib.join subscriber;
  Threadlib.join broadcaster;
  assert (Heap.read b.delivered = 1);
  (* Occasional dead-letter path: undeliverable messages flow to a
     dedicated handler signalled through an event handle. *)
  if Runtime.rand_int 3 = 0 then begin
    let dead_letter = Heap.cell ~cls:broker_cls ~field:"deadLetter" 0 in
    let handled = Waithandle.create_auto () in
    Heap.write dead_letter 0;
    let handler =
      Threadlib.create ~delegate:(tests_cls, "<DeadLetterHandler>") (fun () ->
          Heap.write dead_letter 1;
          chores ~cls:broker_cls 2;
          Runtime.cpu 60 300;
          Waithandle.set handled)
    in
    Threadlib.start handler;
    Waithandle.wait_one handled;
    Heap.write dead_letter 2;
    Threadlib.join handler
  end

(* Entity finalization: EnsureNotDisposed performs the entity's last
   traced accesses; the collector's Finalize reads them later (within the
   GC latency, so windows do form).  The harness waits for the collector
   with untraced reads — test scaffolding must not look like a sync. *)
let test_entity_finalize () =
  (* Each entity's disposal journal is written by both sides: the mutator
     notes the request, the finalizer blindly logs completion *before*
     reading the entity state — so the journal window can only be closed
     by the finalizer's entry itself. *)
  let make_entity () =
    let state = Heap.cell ~cls:entity_cls ~field:"state" 0 in
    let disposed = Heap.cell ~cls:entity_cls ~field:"disposed" 0 in
    let journal = Heap.cell ~cls:entity_cls ~field:"disposeRequests" 0 in
    let obj = Runtime.fresh_id () in
    Finalizer.register ~cls:entity_cls ~obj (fun () ->
        Heap.write journal obj;
        (* Variable-length cleanup, as entity finalizers do. *)
        Runtime.cpu 20 220;
        let s = poll state 6 in
        assert (s = 9);
        Heap.write disposed 1);
    (state, disposed, journal, obj)
  in
  let entities = List.init 3 (fun _ -> make_entity ()) in
  chores ~cls:entity_cls 2;
  List.iter
    (fun (state, _, journal, obj) ->
      Runtime.frame ~cls:entity_cls ~meth:"EnsureNotDisposed" ~obj (fun () ->
          Runtime.cpu 30 140;
          Heap.write state 3;
          Runtime.cpu 10 50;
          Heap.write state 9;
          Heap.write journal obj);
      Finalizer.collect obj)
    entities;
  List.iter (fun (_, disposed, _, _) -> await_untraced disposed (fun d -> d = 1)) entities

(* Second finalizer context, so disposal windows appear in two classes. *)
let test_tracking_finalize () =
  let changes = Heap.cell ~cls:tracking_cls ~field:"changes" 0 in
  let flushed = Heap.cell ~cls:tracking_cls ~field:"flushed" 0 in
  let obj = Runtime.fresh_id () in
  let journal = Heap.cell ~cls:tracking_cls ~field:"flushCount" 0 in
  Finalizer.register ~cls:tracking_cls ~obj (fun () ->
      Heap.write journal 1;
      Runtime.cpu 15 180;
      let c = poll changes 6 in
      assert (c = 5);
      Heap.write flushed 1);
  chores ~cls:tracking_cls 2;
  Runtime.frame ~cls:tracking_cls ~meth:"StopTracking" ~obj (fun () ->
      Runtime.cpu 20 100;
      Heap.write changes 2;
      Runtime.cpu 10 40;
      Heap.write changes 5;
      Heap.write journal 0);
  Finalizer.collect obj;
  await_untraced flushed (fun f -> f = 1)

(* A dispose pair beyond the reach of delay injection: the last access
   happens more than Near before the finalizer runs, so no window ever
   forms — the paper's Table 4 "Dispose" miss. *)
let test_metadata_dispose_gap () =
  let snapshot = Heap.cell ~cls:metadata_cls ~field:"snapshot" 0 in
  let released = Heap.cell ~cls:metadata_cls ~field:"released" 0 in
  let obj = Runtime.fresh_id () in
  Finalizer.register ~cls:metadata_cls ~obj (fun () ->
      let s = poll snapshot 3 in
      assert (s = 4);
      Heap.write released 1);
  Runtime.frame ~cls:metadata_cls ~meth:"CaptureSnapshot" ~obj (fun () ->
      Heap.write snapshot 4);
  (* Age the object well past Near before making it collectable. *)
  Runtime.sleep 1_400_000;
  Finalizer.collect obj;
  await_untraced released (fun r -> r = 1)

(* Thread fan-out collected through event handles: each broadcaster sets
   its handle; the runner WaitAll's and reads the results (Table 8's
   n-to-1 WaitHandle::WaitAll acquire). *)
let test_broadcast_from_multiple_threads () =
  let received_a = Heap.cell ~cls:tests_cls ~field:"receivedA" 0 in
  let received_b = Heap.cell ~cls:tests_cls ~field:"receivedB" 0 in
  let h1 = Waithandle.create_manual () in
  let h2 = Waithandle.create_manual () in
  let collected = Heap.cell ~cls:tests_cls ~field:"collected" 0 in
  let worker name result value handle =
    Threadlib.create ~delegate:(tests_cls, name) (fun () ->
        chores ~cls:tests_cls 3;
        Runtime.cpu 50 400;
        Heap.write result value;
        Heap.write collected value;
        Waithandle.set handle)
  in
  let w1 = worker "<broadcast_from_multiple_thread>_1" received_a 11 h1 in
  let w2 = worker "<broadcast_from_multiple_thread>_2" received_b 22 h2 in
  Threadlib.start w1;
  Threadlib.start w2;
  Waithandle.wait_all [ h1; h2 ];
  Heap.write collected 0;
  assert (poll received_a 4 = 11);
  assert (poll received_b 4 = 22);
  Threadlib.join w1;
  Threadlib.join w2

(* A racy observer counter updated by both workers with no protection. *)
let test_racy_monitor () =
  let observers = Heap.cell ~cls:tests_cls ~field:"observers" 0 in
  let probe = Heap.cell ~cls:tests_cls ~field:"probe" 0 in
  let seen_a = Heap.cell ~cls:tests_cls ~field:"seenA" 0 in
  let seen_b = Heap.cell ~cls:tests_cls ~field:"seenB" 0 in
  Heap.write probe 60;
  let last_error = Heap.cell ~cls:tests_cls ~field:"lastError" 0 in
  let observer_started = Heap.cell ~cls:tests_cls ~field:"observerStarted" 0 in
  Heap.write observer_started 0;
  let bump name seen =
    let name_hash = String.length name in
    (* Tasks, not threads: the manual annotation list knows thread forks
       but not task creation, so its first report here is a false race. *)
    Tasklib.start_new ~delegate:(tests_cls, name) (fun () ->
        Heap.write observer_started name_hash;
        chores ~cls:tests_cls 2;
        let p = poll probe 5 in
        assert (p = 60);
        Runtime.cpu 100 300;
        let o = Heap.read observers in
        Runtime.cpu 5 25;
        Heap.write observers (o + 1);
        Heap.write last_error name_hash;
        Heap.write seen 1)
  in
  let b1 = bump "<RacyObserver>b__0" seen_a in
  let b2 = bump "<RacyObserver>b__1" seen_b in
  Tasklib.wait b1;
  Tasklib.wait b2;
  assert (Heap.read observers >= 1);
  assert (poll seen_a 3 = 1);
  assert (poll seen_b 3 = 1)

(* Barrier-phased exchange: each worker publishes its half, everyone
   meets at the barrier, then each reads the other's half — the barrier
   both releases (arrival) and acquires (departure). *)
let test_phased_exchange () =
  let left = Heap.cell ~cls:tests_cls ~field:"phaseLeft" 0 in
  let right = Heap.cell ~cls:tests_cls ~field:"phaseRight" 0 in
  let barrier = Barrier.create 2 in
  let worker name mine theirs value =
    Threadlib.create ~delegate:(tests_cls, name) (fun () ->
        chores ~cls:tests_cls 2;
        Runtime.cpu 30 250;
        Heap.write mine value;
        Barrier.signal_and_wait barrier;
        let v = poll theirs 4 in
        assert (v > 0))
  in
  let w1 = worker "<PhasedExchange>b__0" left right 1 in
  let w2 = worker "<PhasedExchange>b__1" right left 2 in
  Threadlib.start w1;
  Threadlib.start w2;
  Threadlib.join w1;
  Threadlib.join w2;
  assert (Barrier.phase barrier = 1)

let truth =
  let open Ground_truth in
  {
    syncs =
      [
        entry (Opid.exit ~cls:broker_cls "<SubscribeCore>") Verdict.Release
          "end of subscription";
        entry (Opid.enter ~cls:broker_cls "<Broadcast>") Verdict.Acquire
          "start of broadcast";
        entry (Opid.exit ~cls:broker_cls "<Broadcast>") Verdict.Release
          "end of broadcast";
        entry ~category:Dispose (Opid.exit ~cls:entity_cls "EnsureNotDisposed")
          Verdict.Release "end of last access";
        entry ~category:Dispose (Opid.enter ~cls:entity_cls "Finalize") Verdict.Acquire
          "start of disposal";
        entry ~category:Dispose (Opid.exit ~cls:tracking_cls "StopTracking")
          Verdict.Release "end of last access";
        entry ~category:Dispose (Opid.enter ~cls:tracking_cls "Finalize")
          Verdict.Acquire "start of disposal";
        entry ~category:Dispose (Opid.exit ~cls:metadata_cls "CaptureSnapshot")
          Verdict.Release "end of last access (beyond Near)";
        entry ~category:Dispose (Opid.enter ~cls:metadata_cls "Finalize")
          Verdict.Acquire "start of disposal (beyond Near)";
        entry (Opid.exit ~cls:Threadlib.cls "Start") Verdict.Release
          "launch new thread";
        entry (Opid.exit ~cls:"System.Threading.Tasks.TaskFactory" "StartNew")
          Verdict.Release "create new task";
        entry (Opid.enter ~cls:"System.Threading.Tasks.Task" "Wait") Verdict.Acquire
          "wait for task";
        entry (Opid.enter ~cls:Threadlib.cls "Join") Verdict.Acquire "wait for thread";
        entry (Opid.exit ~cls:Waithandle.event_cls "Set") Verdict.Release
          "release semaphore";
        entry (Opid.enter ~cls:Waithandle.wait_cls "WaitAll") Verdict.Acquire
          "wait for semaphore";
        entry (Opid.enter ~cls:Waithandle.wait_cls "WaitOne") Verdict.Acquire
          "wait for semaphore";
        entry ~category:Double_role (Opid.enter ~cls:Barrier.cls "SignalAndWait")
          Verdict.Acquire "arrive at barrier / wait for phase";
        entry ~category:Double_role (Opid.exit ~cls:Barrier.cls "SignalAndWait")
          Verdict.Release "leave barrier phase";
        entry (Opid.enter ~cls:tests_cls "<PhasedExchange>b__0") Verdict.Acquire
          "start of thread";
        entry (Opid.enter ~cls:tests_cls "<PhasedExchange>b__1") Verdict.Acquire
          "start of thread";
        entry (Opid.enter ~cls:tests_cls "<DeadLetterHandler>") Verdict.Acquire
          "start of dead-letter handler";
        entry (Opid.exit ~cls:tests_cls "<DeadLetterHandler>") Verdict.Release
          "end of dead-letter handler";
        entry
          (Opid.enter ~cls:tests_cls "<broadcast_from_multiple_thread>_1")
          Verdict.Acquire "start of thread";
        entry
          (Opid.exit ~cls:tests_cls "<broadcast_from_multiple_thread>_1")
          Verdict.Release "end of thread";
        entry
          (Opid.enter ~cls:tests_cls "<broadcast_from_multiple_thread>_2")
          Verdict.Acquire "start of thread";
        entry
          (Opid.exit ~cls:tests_cls "<broadcast_from_multiple_thread>_2")
          Verdict.Release "end of thread";
        entry
          (Opid.enter ~cls:tests_cls "<MessageBroker_on_different_thread>")
          Verdict.Acquire "start of thread";
        entry
          (Opid.exit ~cls:tests_cls "<MessageBroker_on_different_thread>")
          Verdict.Release "end of thread";
        entry (Opid.enter ~cls:tests_cls "<Broadcast_runner>") Verdict.Acquire
          "start of thread";
        entry (Opid.exit ~cls:tests_cls "<Broadcast_runner>") Verdict.Release
          "end of thread";
        entry (Opid.enter ~cls:tests_cls "<RacyObserver>b__0") Verdict.Acquire
          "start of thread";
        entry (Opid.exit ~cls:tests_cls "<RacyObserver>b__0") Verdict.Release
          "end of thread";
        entry (Opid.exit ~cls:tests_cls "<RacyObserver>b__1") Verdict.Release
          "end of thread";
        entry (Opid.enter ~cls:tests_cls "<RacyObserver>b__1") Verdict.Acquire
          "start of thread";
      ];
    racy_fields =
      [
        tests_cls ^ "::observers";
        tests_cls ^ "::lastError";
        tests_cls ^ "::observerStarted";
      ];
    error_scope = [];
    field_guard =
      [
        (broker_cls ^ "::handler", Other_cause);
        (broker_cls ^ "::topic", Other_cause);
        (broker_cls ^ "::delivered", Other_cause);
        (broker_cls ^ "::deadLetter", Other_cause);
        (entity_cls ^ "::state", Dispose);
        (entity_cls ^ "::disposed", Dispose);
        (tracking_cls ^ "::changes", Dispose);
        (tracking_cls ^ "::flushed", Dispose);
        (metadata_cls ^ "::snapshot", Dispose);
        (metadata_cls ^ "::released", Dispose);
        (tests_cls ^ "::receivedA", Other_cause);
        (tests_cls ^ "::receivedB", Other_cause);
        (tests_cls ^ "::probe", Other_cause);
        (tests_cls ^ "::collected", Other_cause);
        (tests_cls ^ "::seenA", Other_cause);
        (tests_cls ^ "::phaseLeft", Double_role);
        (tests_cls ^ "::phaseRight", Double_role);
        (tests_cls ^ "::seenB", Other_cause);
        (entity_cls ^ "::disposeRequests", Dispose);
        (tracking_cls ^ "::flushCount", Dispose);
      ];
  }

let app =
  {
    App.id = "App-5";
    name = "Radical";
    loc = 95_900;
    stars = 33;
    tests =
      [
        ("BrokerDifferentThread", test_broker_different_thread);
        ("EntityFinalize", test_entity_finalize);
        ("TrackingFinalize", test_tracking_finalize);
        ("MetadataDisposeGap", test_metadata_dispose_gap);
        ("BroadcastFromMultipleThreads", test_broadcast_from_multiple_threads);
        ("RacyMonitor", test_racy_monitor);
        ("PhasedExchange", test_phased_exchange);
      ];
    truth;
    uses_unsafe_apis = false;
  }
