(** The benchmark-application record (paper Table 1).

    Each application is a synthetic analogue of one of the paper's eight
    C# projects: it reproduces the project's synchronization idioms (the
    ones SherLock inferred in Tables 8/9), its deliberate data races, and
    its instrumentation blind spots, together with a ground-truth
    inventory to score against.  The registry of all eight lives in
    {!Registry}. *)

open Sherlock_core

type t = {
  id : string;           (** "App-1" .. "App-8" *)
  name : string;         (** paper project name *)
  loc : int;             (** paper LoC, metadata for Table 1 *)
  stars : int;           (** paper GitHub stars, metadata for Table 1 *)
  tests : (string * (unit -> unit)) list;  (** unit tests, run in the simulator *)
  truth : Ground_truth.t;
  uses_unsafe_apis : bool;  (** calls thread-unsafe collections (TSVD scope) *)
}

val subject : t -> Orchestrator.subject
