(** App-7: Statsd analogue.

    Idioms from the paper's Figure 3.A/D and Table 2: a DataflowBlock
    Post/Receive pipeline feeding a message handler, task continuations,
    a thread-unsafe metrics list, and the app's characteristic racy
    statistics counters (4 data-racy operations in Table 2). *)

val app : App.t
