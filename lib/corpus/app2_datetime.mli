(** App-2: DateTimeExtensions analogue.

    Small library with three idioms from the paper's Table 9: an
    application-level ConcurrentLazyDictionary whose [GetOrAdd] is an
    atomic region, a static constructor for the Easter calculator, and a
    volatile computed-holiday flag. *)

val app : App.t
