open Sherlock_sim
open Sherlock_trace
open Sherlock_core
open Workload

let parser_cls = "Statsd.MessageParser"

let pipeline_cls = "Statsd.Pipeline"

let stats_cls = "Statsd.Statistics"

let udp_cls = "Statsd.UdpListener"

(* Figure 3.A verbatim: the listener posts events into the parser block;
   a consumer thread receives each event and runs Messagehandler, which
   reads the event payload fields. *)
let test_parser_block () =
  let payload_kind = Heap.cell ~cls:udp_cls ~field:"payloadKind" 0 in
  let payload_value = Heap.cell ~cls:udp_cls ~field:"payloadValue" 0 in
  let handled = Heap.cell ~cls:parser_cls ~field:"handled" 0 in
  let block = Dataflow.create () in
  let consumer =
    Threadlib.create ~delegate:(parser_cls, "<ConsumeLoop>b__0") (fun () ->
        for _ = 1 to 3 do
          let n = Dataflow.receive block in
          Runtime.frame ~cls:parser_cls ~meth:"Messagehandler" (fun () ->
              let k = poll payload_kind 3 in
              let v = poll payload_value 3 in
              assert (k > 0 && v >= n);
              Heap.write handled n)
        done)
  in
  Threadlib.start consumer;
  for i = 1 to 3 do
    Heap.write payload_kind i;
    Heap.write payload_value (i * 10);
    Dataflow.post block i;
    Runtime.cpu 80 300
  done;
  Threadlib.join consumer;
  assert (Heap.peek handled = 3)

(* Figure 3.D: a parse task continued by a publish task. *)
let test_continue_with () =
  let parsed = Heap.cell ~cls:pipeline_cls ~field:"parsed" 0 in
  let bucket = Heap.cell ~cls:pipeline_cls ~field:"bucket" 0 in
  let published = Heap.cell ~cls:pipeline_cls ~field:"published" 0 in
  let parse =
    Tasklib.create ~delegate:(pipeline_cls, "<Parse>a1") (fun () ->
        Runtime.cpu 60 480;
        Heap.write parsed 17;
        Heap.write bucket 5)
  in
  let publish =
    Tasklib.continue_with parse ~delegate:(pipeline_cls, "<Publish>a2") (fun () ->
        Heap.write published 1;
        let p = poll parsed 5 in
        let b = poll bucket 5 in
        assert (p = 17 && b = 5);
        chores ~cls:pipeline_cls 2)
  in
  Tasklib.start parse;
  Tasklib.wait publish;
  Heap.write published 0;
  assert (Heap.peek parsed = 17);
  (* Occasional retry continuation chained after the publish. *)
  if Runtime.rand_int 3 = 0 then begin
    let retried = Heap.cell ~cls:pipeline_cls ~field:"retried" 0 in
    Heap.write retried 0;
    let retry =
      Tasklib.continue_with publish ~delegate:(pipeline_cls, "<Retry>a3") (fun () ->
          Heap.write retried 1;
          let b = poll bucket 5 in
          assert (b = 5);
          chores ~cls:pipeline_cls 2)
    in
    Tasklib.wait retry;
    Heap.write retried 2
  end

(* The racy statistics: four counter operations with no synchronization,
   updated by two dataflow consumers after a properly-guarded warm-up. *)
let test_racy_counters () =
  let prefix = Heap.cell ~cls:stats_cls ~field:"prefix" 0 in
  let count = Heap.cell ~cls:stats_cls ~field:"count" 0 in
  let gauge = Heap.cell ~cls:stats_cls ~field:"gauge" 0 in
  let block = Dataflow.create () in
  Heap.write prefix 1000;
  let last_flush = Heap.cell ~cls:stats_cls ~field:"lastFlush" 0 in
  let seen_a = Heap.cell ~cls:stats_cls ~field:"seenA" 0 in
  let seen_b = Heap.cell ~cls:stats_cls ~field:"seenB" 0 in
  let bump_started = Heap.cell ~cls:stats_cls ~field:"bumpStarted" 0 in
  Heap.write bump_started 0;
  let bump name seen =
    Tasklib.start_new ~delegate:(stats_cls, name) (fun () ->
        Heap.write bump_started 1;
        let item = Dataflow.receive block in
        let p = poll prefix 4 in
        assert (p = 1000);
        chores ~cls:stats_cls 2;
        Runtime.cpu 100 400;
        let c = Heap.read count in
        Runtime.cpu 4 20;
        Heap.write count (c + item);
        let g = Heap.read gauge in
        Runtime.cpu 4 20;
        Heap.write gauge (g + 1);
        Heap.write last_flush item;
        Heap.write seen item)
  in
  let b1 = bump "<Increment>b__0" seen_a in
  let b2 = bump "<Increment>b__1" seen_b in
  Dataflow.post block 1;
  Dataflow.post block 2;
  Tasklib.wait b1;
  Tasklib.wait b2;
  assert (poll seen_a 3 > 0);
  assert (poll seen_b 3 > 0)

(* Thread-unsafe metrics list written by the pipeline and read by the
   flusher, guarded by the dataflow handoff (TSVD's scope). *)
let test_metrics_list () =
  let flushed = Heap.cell ~cls:stats_cls ~field:"flushedBatches" 0 in
  let metrics = Unsafe_list.create () in
  let buckets = Unsafe_dict.create () in
  let block = Dataflow.create () in
  let flusher =
    Threadlib.create ~delegate:(stats_cls, "<FlushLoop>b__0") (fun () ->
        let n = Dataflow.receive block in
        assert (Unsafe_list.contains metrics n);
        assert (Unsafe_dict.try_get_value buckets "gauges" = Some n);
        (* A deferred audit pass, well beyond TSVD's attribution horizon
           yet still ordered by the dataflow handoff. *)
        Runtime.sleep 400_000;
        assert (Unsafe_list.count metrics >= 1);
        Heap.write flushed 1)
  in
  Threadlib.start flusher;
  Unsafe_list.add metrics 42;
  Unsafe_dict.add buckets "gauges" 42;
  Dataflow.post block 42;
  Threadlib.join flusher;
  assert (Heap.peek flushed = 1)

(* A two-stage dataflow pipeline: raw packets flow into the parser block,
   parsed metrics into the aggregator block; each stage's consumer runs on
   its own thread. *)
let test_two_stage_pipeline () =
  let packet_size = Heap.cell ~cls:udp_cls ~field:"packetSize" 0 in
  let parsed_kind = Heap.cell ~cls:parser_cls ~field:"parsedKind" 0 in
  let aggregated_total = Heap.cell ~cls:stats_cls ~field:"aggregatedTotal" 0 in
  let raw = Dataflow.create () in
  let parsed = Dataflow.create () in
  let parser =
    Threadlib.create ~delegate:(parser_cls, "<ParseStage>b__0") (fun () ->
        for _ = 1 to 2 do
          let n = Dataflow.receive raw in
          let s = poll packet_size 3 in
          assert (s > 0);
          Heap.write parsed_kind n;
          Dataflow.post parsed (n * 10)
        done)
  in
  let aggregator =
    Threadlib.create ~delegate:(stats_cls, "<AggregateStage>b__0") (fun () ->
        for _ = 1 to 2 do
          let v = Dataflow.receive parsed in
          let k = poll parsed_kind 3 in
          assert (k > 0);
          Heap.write aggregated_total v
        done)
  in
  Threadlib.start parser;
  Threadlib.start aggregator;
  for i = 1 to 2 do
    Heap.write packet_size (64 * i);
    Dataflow.post raw i;
    Runtime.cpu 100 350
  done;
  Threadlib.join parser;
  Threadlib.join aggregator;
  assert (Heap.read aggregated_total = 20)

let truth =
  let open Ground_truth in
  {
    syncs =
      [
        entry (Opid.exit ~cls:Dataflow.cls "Post") Verdict.Release
          "post event to block";
        entry (Opid.enter ~cls:Dataflow.cls "Receive") Verdict.Acquire
          "wait for event";
        entry (Opid.enter ~cls:parser_cls "Messagehandler") Verdict.Acquire
          "start of message handler";
        entry (Opid.exit ~cls:parser_cls "Messagehandler") Verdict.Release
          "end of message handler";
        entry (Opid.enter ~cls:parser_cls "<ConsumeLoop>b__0") Verdict.Acquire
          "start of thread";
        entry (Opid.exit ~cls:pipeline_cls "<Parse>a1") Verdict.Release
          "end of task a1";
        entry (Opid.enter ~cls:pipeline_cls "<Publish>a2") Verdict.Acquire
          "start of task a2";
        entry (Opid.exit ~cls:pipeline_cls "<Publish>a2") Verdict.Release
          "end of task a2";
        entry (Opid.enter ~cls:pipeline_cls "<Retry>a3") Verdict.Acquire
          "start of retry task a3";
        entry (Opid.exit ~cls:pipeline_cls "<Retry>a3") Verdict.Release
          "end of retry task a3";
        entry (Opid.exit ~cls:Tasklib.cls "ContinueWith") Verdict.Release
          "register continuation";
        entry (Opid.enter ~cls:Tasklib.cls "Wait") Verdict.Acquire "wait for task";
        entry (Opid.exit ~cls:Threadlib.cls "Start") Verdict.Release
          "launch new thread";
        entry (Opid.exit ~cls:Tasklib.factory_cls "StartNew") Verdict.Release
          "create new task";
        entry (Opid.enter ~cls:Threadlib.cls "Join") Verdict.Acquire "wait for thread";
        entry (Opid.enter ~cls:stats_cls "<FlushLoop>b__0") Verdict.Acquire
          "start of thread";
        entry (Opid.enter ~cls:stats_cls "<Increment>b__0") Verdict.Acquire
          "start of thread";
        entry (Opid.enter ~cls:stats_cls "<Increment>b__1") Verdict.Acquire
          "start of thread";
        entry (Opid.enter ~cls:parser_cls "<ParseStage>b__0") Verdict.Acquire
          "start of pipeline stage";
        entry (Opid.exit ~cls:parser_cls "<ParseStage>b__0") Verdict.Release
          "end of pipeline stage";
        entry (Opid.enter ~cls:stats_cls "<AggregateStage>b__0") Verdict.Acquire
          "start of pipeline stage";
      ];
    racy_fields =
      [
        stats_cls ^ "::count";
        stats_cls ^ "::gauge";
        stats_cls ^ "::lastFlush";
        stats_cls ^ "::bumpStarted";
      ];
    error_scope = [];
    field_guard =
      [
        (udp_cls ^ "::payloadKind", Other_cause);
        (udp_cls ^ "::packetSize", Other_cause);
        (parser_cls ^ "::parsedKind", Other_cause);
        (stats_cls ^ "::aggregatedTotal", Other_cause);
        (udp_cls ^ "::payloadValue", Other_cause);
        (pipeline_cls ^ "::parsed", Other_cause);
        (pipeline_cls ^ "::bucket", Other_cause);
        (stats_cls ^ "::prefix", Other_cause);
        (stats_cls ^ "::seenA", Other_cause);
        (stats_cls ^ "::seenB", Other_cause);
        (pipeline_cls ^ "::published", Other_cause);
        (pipeline_cls ^ "::retried", Other_cause);
      ];
  }

let app =
  {
    App.id = "App-7";
    name = "Stastd";
    loc = 2_300;
    stars = 125;
    tests =
      [
        ("ParserBlock", test_parser_block);
        ("ContinueWith", test_continue_with);
        ("RacyCounters", test_racy_counters);
        ("MetricsList", test_metrics_list);
        ("TwoStagePipeline", test_two_stage_pipeline);
      ];
    truth;
    uses_unsafe_apis = true;
  }
