(** The eight-application benchmark registry (paper Table 1). *)

val all : unit -> App.t list
(** In Table 1 order, App-1 through App-8. *)

val find : string -> App.t
(** Look up by [id] or [name], case-insensitively.
    Raises [Not_found]. *)
