open Sherlock_sim
open Sherlock_trace
open Sherlock_core

(* Class names, C#-style, used both by the workload and the ground truth. *)
let tests_cls = "Insights.Tests"

let env_cls = "Insights.TestEnv"

let buffer_cls = "Insights.TelemetryBuffer"

let quota_cls = "Insights.QuotaTracker"

let channel_cls = "Insights.InMemoryChannel"

let worker_cls = "Insights.Worker"

let metrics_cls = "Insights.Metrics"

let gate_cls = "Insights.Gate"

(* Read a cell several times, as telemetry code polling its configuration
   does; the repetition is what the Synchronizations-are-Rare occurrence
   penalty keys on to tell plain data reads from acquire operations. *)
let poll cell times =
  let v = ref (Heap.read cell) in
  for _ = 2 to times do
    Runtime.cpu 3 15;
    v := Heap.read cell
  done;
  !v

(* The testing-framework pattern of Figure 3.E: TestInitialize writes the
   environment, the test method (run by the framework on a worker thread)
   reads it and publishes its result, which the runner collects. *)
let test_initialize_basic () =
  let endpoint = Heap.cell ~cls:env_cls ~field:"endpoint" 0 in
  let config = Heap.cell ~cls:env_cls ~field:"config" 0 in
  let instrumentation_key = Heap.cell ~cls:env_cls ~field:"instrumentationKey" 0 in
  let run_case meth ~result setup check =
    Runtime.frame ~cls:tests_cls ~meth:"TestInitialize" (fun () ->
        setup ();
        Runtime.cpu 20 200);
    let t =
      Tasklib.start_new ~delegate:(tests_cls, meth) (fun () ->
          Runtime.cpu 10 400;
          Heap.write result (check ()))
    in
    Tasklib.wait t;
    assert (Heap.read result = 1)
  in
  let outcome_basic = Heap.cell ~cls:tests_cls ~field:"outcomeBasic" 0 in
  let outcome_context = Heap.cell ~cls:tests_cls ~field:"outcomeContext" 0 in
  let outcome_correlation = Heap.cell ~cls:tests_cls ~field:"outcomeCorrelation" 0 in
  run_case "BasicStartOperationWithActivity" ~result:outcome_basic
    (fun () ->
      Heap.write endpoint 443;
      Heap.write endpoint 8443)
    (fun () -> if poll endpoint 5 = 8443 then 1 else 0);
  run_case "TelemetryContextIsInitialized" ~result:outcome_context
    (fun () ->
      Heap.write config 1;
      Heap.write config 7)
    (fun () -> if poll config 5 = 7 then 1 else 0);
  run_case "OperationCorrelationUsesActivity" ~result:outcome_correlation
    (fun () ->
      Heap.write instrumentation_key 5;
      Heap.write instrumentation_key 12345)
    (fun () -> if poll instrumentation_key 5 = 12345 then 1 else 0)

(* Monitor-protected telemetry buffer: the parent publishes the channel
   settings, a producer appends (read-modify-write), a sender drains with
   blind resets, and both report totals the parent reads after joining. *)
let test_channel_send () =
  let send_interval = Heap.cell ~cls:channel_cls ~field:"sendInterval" 0 in
  let endpoint_addr = Heap.cell ~cls:channel_cls ~field:"endpointAddr" 0 in
  let items = Heap.cell ~cls:buffer_cls ~field:"items" 0 in
  let capacity_used = Heap.cell ~cls:buffer_cls ~field:"capacityUsed" 0 in
  let items_sent = Heap.cell ~cls:channel_cls ~field:"itemsSent" 0 in
  let batches_sent = Heap.cell ~cls:channel_cls ~field:"batchesSent" 0 in
  let lock = Monitor.create () in
  Heap.write send_interval 30;
  Heap.write endpoint_addr 808;
  let producer () =
    let interval = poll send_interval 4 in
    for _ = 1 to 4 do
      Monitor.with_lock lock (fun () ->
          let n = poll items 3 in
          Heap.write items (n + 1);
          Heap.write capacity_used ((n + 1) * 64));
      Runtime.cpu interval (interval * 4)
    done;
    Heap.write items_sent 4
  in
  let sender () =
    let addr = poll endpoint_addr 4 in
    assert (addr = 808);
    for _ = 1 to 4 do
      Monitor.with_lock lock (fun () ->
          (* Blind reset: no read, so the window's acquire side can only
             be satisfied by the lock acquisition itself. *)
          Heap.write items 0;
          Heap.write capacity_used 0);
      Runtime.cpu 40 150
    done;
    Heap.write batches_sent 4
  in
  let p = Threadlib.create ~delegate:(channel_cls, "ProducerLoop") producer in
  let s = Threadlib.create ~delegate:(channel_cls, "SenderLoop") sender in
  Threadlib.start p;
  Threadlib.start s;
  Threadlib.join p;
  Threadlib.join s;
  assert (Heap.read items_sent = 4);
  assert (Heap.read batches_sent = 4)

(* Second Monitor context (different fields, same lock API): quota
   accounting.  Using the lock in two unrelated classes is what lets the
   solver amortize Enter/Exit over many windows. *)
let test_quota_update () =
  let limit = Heap.cell ~cls:quota_cls ~field:"limit" 0 in
  let quota = Heap.cell ~cls:quota_cls ~field:"quota" 1000 in
  let spent = Heap.cell ~cls:quota_cls ~field:"spent" 0 in
  let audits = Heap.cell ~cls:quota_cls ~field:"audits" 0 in
  let lock = Monitor.create () in
  Heap.write limit 1000;
  let spender () =
    let l = poll limit 3 in
    for _ = 1 to 3 do
      Monitor.with_lock lock (fun () ->
          let s = poll spent 3 in
          if s < l then Heap.write spent (s + 10));
      Runtime.cpu 25 90
    done
  in
  let refresher () =
    for _ = 1 to 3 do
      Monitor.with_lock lock (fun () ->
          Heap.write quota 1000;
          Heap.write spent 0);
      Runtime.cpu 50 160
    done;
    Heap.write audits 3
  in
  let a = Threadlib.create ~delegate:(quota_cls, "SpenderLoop") spender in
  let b = Threadlib.create ~delegate:(quota_cls, "RefresherLoop") refresher in
  Threadlib.start a;
  Threadlib.start b;
  Threadlib.join a;
  Threadlib.join b;
  assert (Heap.read audits = 3)

(* Volatile flush flag with a spin-waiting observer (Figure 3.B shape). *)
let test_flush_flag () =
  let flushed = Heap.cell ~cls:channel_cls ~field:"flushed" ~volatile:true false in
  let pending = Heap.cell ~cls:channel_cls ~field:"pendingItems" 3 in
  let flusher =
    Threadlib.create ~delegate:(channel_cls, "FlushWorker") (fun () ->
        Runtime.cpu 100 400;
        Heap.write pending 0;
        Heap.write flushed true)
  in
  Threadlib.start flusher;
  Heap.spin_until flushed (fun b -> b);
  assert (Heap.read pending = 0);
  Threadlib.join flusher

(* TaskFactory fan-out: the parent publishes a batch, each delegate
   instance polls a different part of it and reports progress — the
   task-creation variant the paper's manual race annotation misses. *)
let test_send_batch () =
  let batch_size = Heap.cell ~cls:worker_cls ~field:"batchSize" 0 in
  let batch_head = Heap.cell ~cls:worker_cls ~field:"batchHead" 0 in
  let retry_policy = Heap.cell ~cls:worker_cls ~field:"retryPolicy" 0 in
  let progress =
    Array.init 3 (fun i ->
        Heap.cell ~cls:worker_cls ~field:(Printf.sprintf "progress%d" i) 0)
  in
  Heap.write batch_size 16;
  Heap.write batch_head 100;
  Heap.write retry_policy 2;
  let parts = [| batch_size; batch_head; retry_policy |] in
  let send i =
    Tasklib.start_new ~delegate:(worker_cls, "<SendBatch>b__0") (fun () ->
        Runtime.cpu 10 500;
        let v = poll parts.(i mod 3) 5 in
        Heap.write progress.(i) (v + 1))
  in
  let tasks = List.init 3 send in
  List.iter Tasklib.wait tasks;
  Array.iter (fun c -> assert (Heap.read c > 0)) progress;
  (* Occasional retry path (a transient send failure): coordinates through
     a semaphore.  Like real test suites, this branch only runs in some
     executions, so its synchronizations surface over multiple rounds. *)
  if Runtime.rand_int 3 = 0 then begin
    let retry_result = Heap.cell ~cls:worker_cls ~field:"retryResult" 0 in
    let sem = Semaphore.create 0 in
    Heap.write retry_result 0;
    let t =
      Tasklib.start_new ~delegate:(worker_cls, "<RetrySend>b__1") (fun () ->
          Heap.write retry_result 1;
          Runtime.cpu 40 280;
          let n = Workload.poll batch_size 4 in
          Heap.write retry_result n;
          Semaphore.release sem)
    in
    Semaphore.wait sem;
    Heap.write retry_result 99;
    Tasklib.wait t
  end

(* A custom gate whose release method is invisible to the instrumentation
   (the simulated Mono.Cecil heuristic failure of §5.5): [open_gate] has
   no method frame, so SherLock can only see the field writes next to it. *)
type gate = {
  opened : bool ref;
  waiters : Runtime.Waitq.t;
}

let open_gate gate pending request_id =
  (* Deliberately NOT wrapped in Runtime.frame: hidden from the trace. *)
  Heap.write pending 0;
  Heap.write request_id 77;
  gate.opened := true;
  ignore (Runtime.wake_all gate.waiters)

let pass_gate gate =
  Runtime.frame ~cls:gate_cls ~meth:"Pass" (fun () ->
      while not !(gate.opened) do
        Runtime.block gate.waiters
      done)

let test_gate_handoff () =
  let pending = Heap.cell ~cls:gate_cls ~field:"pending" 5 in
  let request_id = Heap.cell ~cls:gate_cls ~field:"requestId" 0 in
  let gate = { opened = ref false; waiters = Runtime.Waitq.create () } in
  let opener =
    Threadlib.create ~delegate:(gate_cls, "OpenerLoop") (fun () ->
        Runtime.cpu 80 300;
        open_gate gate pending request_id)
  in
  Threadlib.start opener;
  pass_gate gate;
  assert (poll pending 3 = 0);
  assert (poll request_id 3 = 77);
  Threadlib.join opener

(* Racy statistics counters (the paper's §5.2 misclassification source):
   updated with no synchronization at all.  The racy accesses come after a
   StartNew-published configuration phase, so a detector that misses the
   fork edge reports the earlier (false) race first and never gets to
   these. *)
let test_metrics_race () =
  let sampling_rate = Heap.cell ~cls:metrics_cls ~field:"samplingRate" 0 in
  let sink_name = Heap.cell ~cls:metrics_cls ~field:"sinkName" 0 in
  let sample_count = Heap.cell ~cls:metrics_cls ~field:"sampleCount" 0 in
  let last_latency = Heap.cell ~cls:metrics_cls ~field:"lastLatency" 0 in
  let flush_error = Heap.cell ~cls:metrics_cls ~field:"flushError" 0 in
  let record_started = Heap.cell ~cls:metrics_cls ~field:"recordStarted" 0 in
  (* A flag that *should* be volatile but is not: it does order the two
     threads here, but it participates in a data race — the paper's
     "Data Racy" misclassification bucket (§5.2). *)
  let aggregated = Heap.cell ~cls:metrics_cls ~field:"aggregated" false in
  Heap.write sampling_rate 10;
  Heap.write sink_name 3;
  Heap.write record_started 0;
  let t1 =
    Tasklib.start_new ~delegate:(metrics_cls, "<Record>b__0") (fun () ->
        Heap.write record_started 1;
        let r = poll sampling_rate 5 in
        assert (r = 10);
        Runtime.cpu 200 600;
        (* Unsynchronized increments: a real data race. *)
        let n = Heap.read sample_count in
        Runtime.cpu 5 30;
        Heap.write sample_count (n + 1);
        Heap.write last_latency 100;
        Heap.write flush_error 1;
        (* Aggregate late, so the reader is already spinning by now. *)
        Runtime.cpu 600 1200;
        Heap.write aggregated true)
  in
  let t2 =
    Tasklib.start_new ~delegate:(metrics_cls, "<Record>b__1") (fun () ->
        Heap.write record_started 2;
        let s = poll sink_name 5 in
        assert (s = 3);
        Runtime.cpu 180 550;
        let n = Heap.read sample_count in
        Runtime.cpu 5 30;
        Heap.write sample_count (n + 1);
        Heap.write last_latency 42;
        Heap.write flush_error 2;
        Heap.spin_until aggregated (fun b -> b);
        assert (Heap.read last_latency > 0))
  in
  Tasklib.wait t1;
  Tasklib.wait t2

(* Semaphore-throttled senders: at most two transmissions in flight; each
   sender writes its own slot, the parent reads them after the joins. *)
let test_throttled_send () =
  let quota_sem = "System.Threading.SemaphoreSlim" in
  ignore quota_sem;
  let endpoint_count = Heap.cell ~cls:worker_cls ~field:"endpointCount" 0 in
  let slots =
    Array.init 3 (fun i ->
        Heap.cell ~cls:worker_cls ~field:(Printf.sprintf "slot%d" i) 0)
  in
  let sem = Semaphore.create 2 in
  Heap.write endpoint_count 3;
  let sender i =
    Tasklib.start_new ~delegate:(worker_cls, "<ThrottledSend>b__0") (fun () ->
        let n = poll endpoint_count 4 in
        assert (n = 3);
        Semaphore.wait sem;
        Runtime.cpu 60 280;
        Heap.write slots.(i) (i + 1);
        Semaphore.release sem)
  in
  let tasks = List.init 3 sender in
  List.iter Tasklib.wait tasks;
  Array.iteri (fun i c -> assert (poll c 3 = i + 1)) slots

let truth =
  let open Ground_truth in
  {
    syncs =
      [
        entry (Opid.exit ~cls:tests_cls "TestInitialize") Verdict.Release
          "end of test setup (framework happens-before)";
        entry
          (Opid.enter ~cls:tests_cls "BasicStartOperationWithActivity")
          Verdict.Acquire "start of unit test";
        entry
          (Opid.exit ~cls:tests_cls "BasicStartOperationWithActivity")
          Verdict.Release "end of unit test";
        entry
          (Opid.enter ~cls:tests_cls "TelemetryContextIsInitialized")
          Verdict.Acquire "start of unit test";
        entry
          (Opid.exit ~cls:tests_cls "TelemetryContextIsInitialized")
          Verdict.Release "end of unit test";
        entry
          (Opid.enter ~cls:tests_cls "OperationCorrelationUsesActivity")
          Verdict.Acquire "start of unit test";
        entry
          (Opid.exit ~cls:tests_cls "OperationCorrelationUsesActivity")
          Verdict.Release "end of unit test";
        entry (Opid.enter ~cls:Monitor.cls "Enter") Verdict.Acquire "acquire lock";
        entry (Opid.exit ~cls:Monitor.cls "Exit") Verdict.Release "release lock";
        entry (Opid.write ~cls:channel_cls "flushed") Verdict.Release "write flag";
        entry (Opid.read ~cls:channel_cls "flushed") Verdict.Acquire "read flag";
        entry (Opid.exit ~cls:Tasklib.factory_cls "StartNew") Verdict.Release
          "create new task";
        entry (Opid.enter ~cls:worker_cls "<SendBatch>b__0") Verdict.Acquire
          "start of task";
        entry (Opid.exit ~cls:worker_cls "<SendBatch>b__0") Verdict.Release
          "end of task";
        entry (Opid.enter ~cls:Tasklib.cls "Wait") Verdict.Acquire "wait for task";
        entry (Opid.exit ~cls:Threadlib.cls "Start") Verdict.Release "launch new thread";
        entry (Opid.enter ~cls:Threadlib.cls "Join") Verdict.Acquire "wait for thread";
        entry (Opid.enter ~cls:channel_cls "ProducerLoop") Verdict.Acquire
          "start of thread";
        entry (Opid.exit ~cls:channel_cls "ProducerLoop") Verdict.Release
          "end of thread";
        entry (Opid.enter ~cls:channel_cls "SenderLoop") Verdict.Acquire
          "start of thread";
        entry (Opid.exit ~cls:channel_cls "SenderLoop") Verdict.Release "end of thread";
        entry (Opid.enter ~cls:channel_cls "FlushWorker") Verdict.Acquire
          "start of thread";
        entry (Opid.exit ~cls:channel_cls "FlushWorker") Verdict.Release
          "end of thread";
        entry (Opid.enter ~cls:quota_cls "SpenderLoop") Verdict.Acquire
          "start of thread";
        entry (Opid.enter ~cls:quota_cls "RefresherLoop") Verdict.Acquire
          "start of thread";
        entry (Opid.exit ~cls:quota_cls "RefresherLoop") Verdict.Release
          "end of thread";
        entry (Opid.enter ~cls:gate_cls "OpenerLoop") Verdict.Acquire "start of thread";
        entry ~category:Instr_error (Opid.exit ~cls:gate_cls "OpenGate") Verdict.Release
          "hidden gate release (uninstrumented method)";
        entry (Opid.enter ~cls:gate_cls "Pass") Verdict.Acquire "wait at gate";
        entry (Opid.enter ~cls:metrics_cls "<Record>b__0") Verdict.Acquire
          "start of task";
        entry (Opid.enter ~cls:metrics_cls "<Record>b__1") Verdict.Acquire
          "start of task";
        entry (Opid.exit ~cls:"System.Threading.SemaphoreSlim" "Release")
          Verdict.Release "release semaphore";
        entry (Opid.enter ~cls:worker_cls "<ThrottledSend>b__0") Verdict.Acquire
          "start of task";
        entry (Opid.exit ~cls:worker_cls "<ThrottledSend>b__0") Verdict.Release
          "end of task";
        entry (Opid.enter ~cls:"System.Threading.SemaphoreSlim" "Wait")
          Verdict.Acquire "wait for semaphore";
        entry (Opid.enter ~cls:worker_cls "<RetrySend>b__1") Verdict.Acquire
          "start of retry task";
        entry (Opid.exit ~cls:worker_cls "<RetrySend>b__1") Verdict.Release
          "end of retry task";
      ];
    racy_fields =
      [
        metrics_cls ^ "::sampleCount";
        metrics_cls ^ "::lastLatency";
        metrics_cls ^ "::aggregated";
        metrics_cls ^ "::flushError";
        metrics_cls ^ "::recordStarted";
      ];
    error_scope = [ gate_cls ];
    field_guard =
      [
        (env_cls ^ "::endpoint", Other_cause);
        (env_cls ^ "::config", Other_cause);
        (env_cls ^ "::instrumentationKey", Other_cause);
        (worker_cls ^ "::batchSize", Other_cause);
        (worker_cls ^ "::batchHead", Other_cause);
        (worker_cls ^ "::retryPolicy", Other_cause);
        (worker_cls ^ "::retryResult", Other_cause);
        (worker_cls ^ "::endpointCount", Other_cause);
        (worker_cls ^ "::slot0", Other_cause);
        (worker_cls ^ "::slot1", Other_cause);
        (worker_cls ^ "::slot2", Other_cause);
        (metrics_cls ^ "::samplingRate", Other_cause);
        (metrics_cls ^ "::sinkName", Other_cause);
        (gate_cls ^ "::pending", Instr_error);
        (gate_cls ^ "::requestId", Instr_error);
      ];
  }

let app =
  {
    App.id = "App-1";
    name = "ApplicationInsights";
    loc = 67_500;
    stars = 306;
    tests =
      [
        ("TestInitializeBasic", test_initialize_basic);
        ("ChannelSend", test_channel_send);
        ("QuotaUpdate", test_quota_update);
        ("FlushFlag", test_flush_flag);
        ("SendBatch", test_send_batch);
        ("GateHandoff", test_gate_handoff);
        ("MetricsRace", test_metrics_race);
        ("ThrottledSend", test_throttled_send);
      ];
    truth;
    uses_unsafe_apis = false;
  }
