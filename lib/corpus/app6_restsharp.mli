(** App-6: RestSharp analogue.

    Idioms from the paper's Table 8: ThreadPool work items running the
    test web server's handlers, EventWaitHandle request-completion
    signalling, async continuation callbacks chained with ContinueWith,
    and a thread-unsafe handler list (TSVD's target API). *)

val app : App.t
