(** Synchronization models: which trace events induce happens-before.

    A model maps each event to acquire/release actions on *channels*.
    A release publishes the thread's clock to the channel; an acquire
    joins from it.  Channel identity follows the event's dynamic target
    (field address or parent object id) with the class name as fallback,
    plus a per-class channel so that cross-class pairs (e.g.
    [EventWaitHandle::Set] / [WaitHandle::WaitAll]) still meet.

    Two models reproduce the paper's §5.4 comparison:
    - {!manual} — the hand-annotated list (Monitor, Thread fork/join,
      ReaderWriterLock, volatile fields, wait handles, static
      constructors).  Deliberately ignorant of tasks, thread pools,
      dataflow blocks, finalizers, and custom application synchronization,
      like the Manual_dr baseline;
    - {!inferred} — exactly the operations SherLock inferred. *)

open Sherlock_trace

type channel =
  | Target of int      (** dynamic object / address channel *)
  | Class of string    (** static per-class channel *)

type action =
  | Acquire of channel list
  | Release of channel list
  | No_sync

type t = {
  name : string;
  classify : Event.t -> action;
}

val channels_of_event : Event.t -> channel list
(** The target channel (when the event has a target) plus the class
    channel. *)

val manual : Log.t -> t
(** Needs the log for its volatile-address registry. *)

val inferred : Sherlock_core.Verdict.t list -> t
