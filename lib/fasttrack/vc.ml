type t = int array

let create n = Array.make (max n 1) 0

let size = Array.length

let get t i = if i < Array.length t then t.(i) else 0

let inc t i = t.(i) <- t.(i) + 1

let join dst src =
  for i = 0 to min (Array.length dst) (Array.length src) - 1 do
    if src.(i) > dst.(i) then dst.(i) <- src.(i)
  done

let copy = Array.copy

let leq a b =
  let n = max (Array.length a) (Array.length b) in
  let rec check i = i >= n || (get a i <= get b i && check (i + 1)) in
  check 0

let epoch_leq ~tid ~clock t = clock <= get t tid

let pp ppf t =
  Format.fprintf ppf "<%s>"
    (String.concat "," (Array.to_list (Array.map string_of_int t)))
