(** A FastTrack-style dynamic race detector over simulator traces.

    Implements the epoch/vector-clock algorithm of Flanagan & Freund,
    parameterized by a {!Sync_model} — the paper's §5.4 setup, where the
    same detector runs once with manual annotations (Manual_dr) and once
    with SherLock's inferred synchronizations (SherLock_dr).

    Interpretation details for method-shaped synchronizations:
    - a release recognized at a method's *End* also publishes at the
      method's *Begin* (sound: it publishes a smaller clock), so the
      publish always precedes the woken thread's next event;
    - an acquire recognized at a method's *Begin* joins at the Begin and
      again at the matching End, so blocking calls pick up the release
      that happened while they waited.

    Accesses that the model classifies as synchronization are exempt from
    race checking, as annotated volatiles are in FastTrack. *)

open Sherlock_trace

type race = {
  field : string;        (** static field key of the racy variable *)
  addr : int;
  first_op : Opid.t;
  second_op : Opid.t;
  time : int;            (** when the second access executed *)
}

type report = {
  races : race list;       (** in detection order, deduplicated by field *)
  checked_accesses : int;
}

val run : Sync_model.t -> Log.t -> report

val first_race : report -> race option
(** The first reported race — the only one FastTrack's guarantee covers
    (the paper counts only this one per run, §5.4). *)
