open Sherlock_trace

type race = {
  field : string;
  addr : int;
  first_op : Opid.t;
  second_op : Opid.t;
  time : int;
}

type report = {
  races : race list;
  checked_accesses : int;
}

(* Per-address access metadata: last-writer epoch plus a full read clock
   (FastTrack's read-share representation, simplified to always-VC for
   reads — adequate at simulator scale). *)
type var_state = {
  mutable write_tid : int;
  mutable write_clock : int;
  mutable write_op : Opid.t option;
  reads : Vc.t;
  mutable read_ops : (int * Opid.t) list; (* tid, op of reads since last write *)
}

type channel_key =
  | K_target of int
  | K_class of string

let key_of_channel = function
  | Sync_model.Target t -> K_target t
  | Sync_model.Class c -> K_class c

let run (model : Sync_model.t) (log : Log.t) =
  let nthreads = log.threads + 1 in
  let clocks : (int, Vc.t) Hashtbl.t = Hashtbl.create 16 in
  let clock_of tid =
    match Hashtbl.find_opt clocks tid with
    | Some c -> c
    | None ->
      let c = Vc.create nthreads in
      Vc.inc c tid;
      Hashtbl.add clocks tid c;
      c
  in
  let channels : (channel_key, Vc.t) Hashtbl.t = Hashtbl.create 32 in
  let channel key =
    match Hashtbl.find_opt channels key with
    | Some c -> c
    | None ->
      let c = Vc.create nthreads in
      Hashtbl.add channels key c;
      c
  in
  (* Exact size from the access index: one slot per traced address. *)
  let vars : (int, var_state) Hashtbl.t =
    Hashtbl.create (max 16 (Log.distinct_addrs log))
  in
  let var addr =
    match Hashtbl.find_opt vars addr with
    | Some v -> v
    | None ->
      let v =
        {
          write_tid = -1;
          write_clock = 0;
          write_op = None;
          reads = Vc.create nthreads;
          read_ops = [];
        }
      in
      Hashtbl.add vars addr v;
      v
  in
  (* Open frames whose Begin was an acquire, per thread: the matching End
     re-joins the channels. *)
  let pending_joins : (int, (string * Sync_model.channel list) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let pending tid =
    match Hashtbl.find_opt pending_joins tid with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add pending_joins tid r;
      r
  in
  let races = ref [] in
  let seen_fields = Hashtbl.create 8 in
  let checked = ref 0 in
  let report_race ~field ~addr ~first_op ~second_op ~time =
    if not (Hashtbl.mem seen_fields field) then begin
      Hashtbl.add seen_fields field ();
      races := { field; addr; first_op; second_op; time } :: !races
    end
  in
  let acquire tid chs =
    let c = clock_of tid in
    List.iter (fun ch -> Vc.join c (channel (key_of_channel ch))) chs
  in
  let release tid chs =
    let c = clock_of tid in
    List.iter (fun ch -> Vc.join (channel (key_of_channel ch)) c) chs;
    Vc.inc c tid
  in
  let check_access (e : Event.t) =
    incr checked;
    (* A blocking acquire takes effect somewhere inside its frame (the
       trace cannot say exactly where), so while any acquire-Begin frame
       is open we re-join its channels before every race check. *)
    List.iter (fun (_, chs) -> acquire e.tid chs) !(pending e.tid);
    let v = var e.target in
    let c = clock_of e.tid in
    let field = Opid.field_key e.op in
    let write_ordered () =
      v.write_tid < 0
      || v.write_tid = e.tid
      || Vc.epoch_leq ~tid:v.write_tid ~clock:v.write_clock c
    in
    match e.op.kind with
    | Opid.Read ->
      if not (write_ordered ()) then
        report_race ~field ~addr:e.target
          ~first_op:(Option.value ~default:e.op v.write_op)
          ~second_op:e.op ~time:e.time;
      if Vc.get v.reads e.tid < Vc.get c e.tid then begin
        Vc.join v.reads c;
        (* Track only this thread's contribution for reporting. *)
        v.read_ops <- (e.tid, e.op) :: v.read_ops
      end
    | Opid.Write ->
      if not (write_ordered ()) then
        report_race ~field ~addr:e.target
          ~first_op:(Option.value ~default:e.op v.write_op)
          ~second_op:e.op ~time:e.time
      else if not (Vc.leq v.reads c) then begin
        let prior =
          match List.find_opt (fun (t, _) -> t <> e.tid) v.read_ops with
          | Some (_, op) -> op
          | None -> e.op
        in
        report_race ~field ~addr:e.target ~first_op:prior ~second_op:e.op ~time:e.time
      end;
      v.write_tid <- e.tid;
      v.write_clock <- Vc.get c e.tid;
      v.write_op <- Some e.op;
      v.read_ops <- []
    | Opid.Begin | Opid.End -> ()
  in
  Log.iter
    (fun (e : Event.t) ->
      let action = model.classify e in
      (match (action, e.op.kind) with
      | Sync_model.Acquire chs, Opid.Begin ->
        acquire e.tid chs;
        (pending e.tid) := (Opid.method_key e.op, chs) :: !(pending e.tid)
      | Sync_model.Acquire chs, (Opid.Read | Opid.End | Opid.Write) -> acquire e.tid chs
      | Sync_model.Release chs, Opid.End -> release e.tid chs
      | Sync_model.Release chs, (Opid.Write | Opid.Begin | Opid.Read) ->
        release e.tid chs
      | Sync_model.No_sync, _ -> ());
      (* End-releases also publish at the method's Begin; symmetrically,
         Begin-acquires re-join at the End.  The first is handled by
         asking the model about the End op when we see the Begin; the
         second via the pending-joins stack. *)
      (match e.op.kind with
      | Opid.Begin ->
        let end_event = { e with op = { e.op with kind = Opid.End } } in
        (match model.classify end_event with
        | Sync_model.Release chs -> release e.tid chs
        | Sync_model.Acquire _ | Sync_model.No_sync -> ())
      | Opid.End ->
        let key = Opid.method_key e.op in
        let p = pending e.tid in
        let rec pop acc = function
          | [] -> None
          | (k, chs) :: rest when k = key -> Some (chs, List.rev_append acc rest)
          | frame :: rest -> pop (frame :: acc) rest
        in
        (match pop [] !p with
        | Some (chs, rest) ->
          p := rest;
          acquire e.tid chs
        | None -> ())
      | Opid.Read | Opid.Write -> ());
      if Opid.is_access e.op && action = Sync_model.No_sync then check_access e)
    log;
  { races = List.rev !races; checked_accesses = !checked }

let first_race report =
  match report.races with [] -> None | r :: _ -> Some r
