(** Vector clocks over thread ids (dense arrays). *)

type t

val create : int -> t
(** [create n] is the zero clock over [n] threads. *)

val size : t -> int

val get : t -> int -> int

val inc : t -> int -> unit
(** Increment one component in place. *)

val join : t -> t -> unit
(** [join dst src]: componentwise max into [dst]. *)

val copy : t -> t

val leq : t -> t -> bool
(** Pointwise comparison: [leq a b] iff a happens-before-or-equals b. *)

val epoch_leq : tid:int -> clock:int -> t -> bool
(** FastTrack's epoch test: does the single epoch [(tid, clock)] precede
    clock [t]? *)

val pp : Format.formatter -> t -> unit
