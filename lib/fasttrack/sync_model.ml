open Sherlock_trace
module Verdict = Sherlock_core.Verdict

type channel =
  | Target of int
  | Class of string

type action =
  | Acquire of channel list
  | Release of channel list
  | No_sync

type t = {
  name : string;
  classify : Event.t -> action;
}

(* Class-hierarchy aliases: a release on a derived class is visible to
   acquirers keyed on the base (EventWaitHandle::Set pairs with
   WaitHandle::WaitOne/WaitAll). *)
let base_class = function
  | "System.Threading.EventWaitHandle" -> Some "System.Threading.WaitHandle"
  | _ -> None

let channels_of_event (e : Event.t) =
  if Opid.is_access e.op then [ Target e.target ]
  else begin
    let cls_channels =
      Class e.op.cls
      :: (match base_class e.op.cls with Some b -> [ Class b ] | None -> [])
    in
    if e.target <> 0 then Target e.target :: cls_channels else cls_channels
  end

(* The annotation list of Manual_dr.  Releases are recognized at the
   releasing call's entry (the publish must precede the internal wake-up)
   and acquires at the blocking call's exit — the standard way race
   detectors hook synchronization APIs. *)
let manual (log : Log.t) =
  let volatile addr = Hashtbl.mem log.volatile_addrs addr in
  (* Thread::Start targets, for the fork edge the annotations do know. *)
  let thread_targets = Hashtbl.create 8 in
  (* Classes with a static constructor: the annotations support the
     language-guaranteed static-initialization happens-before (§5.4), so
     any method entry of such a class acquires from the .cctor's exit. *)
  let cctor_classes = Hashtbl.create 8 in
  Log.iter
    (fun (e : Event.t) ->
      if e.op.cls = "System.Threading.Thread" && e.op.member = "Start" && e.target <> 0
      then Hashtbl.replace thread_targets e.target ();
      if e.op.member = ".cctor" then Hashtbl.replace cctor_classes e.op.cls ())
    log;
  let classify (e : Event.t) =
    let ch = channels_of_event e in
    let is cls member = e.op.cls = cls && e.op.member = member in
    match e.op.kind with
    | Opid.Read -> if volatile e.target then Acquire ch else No_sync
    | Opid.Write -> if volatile e.target then Release ch else No_sync
    | Opid.Begin ->
      if
        is "System.Threading.Barrier" "SignalAndWait" (* arrival releases *)
        || is "System.Threading.Monitor" "Exit"
        || is "System.Threading.Thread" "Start"
        || is "System.Threading.EventWaitHandle" "Set"
        || is "System.Threading.ReaderWriterLock" "ReleaseReaderLock"
        || is "System.Threading.ReaderWriterLock" "ReleaseWriterLock"
      then Release ch
      else if
        e.target <> 0 && Hashtbl.mem thread_targets e.target
        && not (Opid.is_system e.op)
      then Acquire ch (* thread delegate entry: the fork's child side *)
      else if Hashtbl.mem cctor_classes e.op.cls && e.op.member <> ".cctor" then
        Acquire [ Class e.op.cls ] (* static-initialization happens-before *)
      else No_sync
    | Opid.End ->
      if
        is "System.Threading.Barrier" "SignalAndWait" (* departure acquires *)
        || is "System.Threading.Monitor" "Enter"
        || is "System.Threading.Thread" "Join"
        || is "System.Threading.WaitHandle" "WaitOne"
        || is "System.Threading.WaitHandle" "WaitAll"
        || is "System.Threading.ReaderWriterLock" "AcquireReaderLock"
        || is "System.Threading.ReaderWriterLock" "AcquireWriterLock"
      then Acquire ch
      else if e.op.member = ".cctor" then Release ch
      else No_sync
  in
  { name = "Manual"; classify }

(* SherLock_dr: exactly the inferred operations induce happens-before.
   Begin-acquires and End-releases are interpreted by the detector with
   the double-join/double-publish scheme (see {!Detector}). *)
let inferred verdicts =
  let table = Hashtbl.create 64 in
  List.iter (fun (v : Verdict.t) -> Hashtbl.replace table (v.op, v.role) ()) verdicts;
  let classify (e : Event.t) =
    let ch = channels_of_event e in
    if Hashtbl.mem table (e.op, Verdict.Acquire) then Acquire ch
    else if Hashtbl.mem table (e.op, Verdict.Release) then Release ch
    else No_sync
  in
  { name = "SherLock"; classify }
