(* Tests for the trace layer: operation ids, logs, duration pairing, and
   acquire/release window extraction. *)

open Sherlock_trace

let check = Alcotest.check

let ev ?(target = 1) ?(delayed_by = 0) time tid op =
  Event.make ~time ~tid ~op ~target ~delayed_by ()

let mklog ?(threads = 4) events =
  Log.create ~events ~duration:1_000_000 ~threads ~volatile_addrs:(Hashtbl.create 1)

(* --- Opid --- *)

let test_opid_identity () =
  let a = Opid.read ~cls:"C" "f" and b = Opid.read ~cls:"C" "f" in
  check Alcotest.bool "equal" true (Opid.equal a b);
  check Alcotest.int "compare" 0 (Opid.compare a b);
  check Alcotest.bool "hash equal" true (Opid.hash a = Opid.hash b);
  check Alcotest.bool "kind distinguishes" false
    (Opid.equal a (Opid.write ~cls:"C" "f"))

let test_opid_kinds () =
  check Alcotest.bool "read is access" true (Opid.is_access (Opid.read ~cls:"C" "f"));
  check Alcotest.bool "begin is frame" true (Opid.is_frame (Opid.enter ~cls:"C" "m"));
  check Alcotest.bool "frame not access" false
    (Opid.is_access (Opid.exit ~cls:"C" "m"))

let test_opid_system () =
  check Alcotest.bool "monitor is system" true
    (Opid.is_system (Opid.enter ~cls:"System.Threading.Monitor" "Enter"));
  check Alcotest.bool "microsoft is system" true
    (Opid.is_system (Opid.enter ~cls:"Microsoft.VisualStudio.TestTools" "X"));
  check Alcotest.bool "app is not" false (Opid.is_system (Opid.enter ~cls:"App.C" "m"));
  check Alcotest.bool "System.Linq.Dynamic is app code" false
    (Opid.is_system (Opid.enter ~cls:"System.Linq.Dynamic.ClassFactory" "m"))

let test_opid_strings () =
  check Alcotest.string "read" "Read-C::f" (Opid.to_string (Opid.read ~cls:"C" "f"));
  check Alcotest.string "write" "Write-C::f" (Opid.to_string (Opid.write ~cls:"C" "f"));
  check Alcotest.string "begin" "C::m-Begin" (Opid.to_string (Opid.enter ~cls:"C" "m"));
  check Alcotest.string "end" "C::m-End" (Opid.to_string (Opid.exit ~cls:"C" "m"));
  check Alcotest.string "method key" "C::m" (Opid.method_key (Opid.enter ~cls:"C" "m"))

let test_opid_name_validation () =
  (* Whitespace and control characters would corrupt the space-delimited
     text format; every constructor must reject them, naming the
     offending character, for either component. *)
  let expect_reject name =
    List.iter
      (fun ctor ->
        match ctor () with
        | (_ : Opid.t) -> Alcotest.failf "accepted %S" name
        | exception Invalid_argument msg ->
          check Alcotest.bool
            (Printf.sprintf "%S names the module" msg)
            true
            (String.length msg >= 5 && String.sub msg 0 5 = "Opid:"))
      [
        (fun () -> Opid.read ~cls:name "f");
        (fun () -> Opid.write ~cls:"C" name);
        (fun () -> Opid.enter ~cls:name "m");
        (fun () -> Opid.exit ~cls:"C" name);
      ]
  in
  List.iter expect_reject
    [ "Bad Name"; "tab\there"; "new\nline"; "nul\x00"; "del\x7f" ];
  Alcotest.check_raises "message pinpoints the character"
    (Invalid_argument
       "Opid: invalid character ' ' in operation name \"Bad Name\"")
    (fun () -> ignore (Opid.read ~cls:"Bad Name" "f"));
  (* Punctuation-heavy but printable names are legitimate (C# generics,
     compiler-generated members) and must pass. *)
  List.iter
    (fun n -> ignore (Opid.read ~cls:"N.C`1" n))
    [ "<Main>b__0"; "op_Equality"; "f" ]

let test_opid_counterpart () =
  check Alcotest.bool "read<->write" true
    (Opid.equal (Opid.counterpart (Opid.read ~cls:"C" "f")) (Opid.write ~cls:"C" "f"));
  check Alcotest.bool "begin<->end" true
    (Opid.equal (Opid.counterpart (Opid.enter ~cls:"C" "m")) (Opid.exit ~cls:"C" "m"))

(* --- Log --- *)

let test_log_sorting () =
  let o = Opid.read ~cls:"C" "f" in
  let log = mklog [ ev 30 0 o; ev 10 1 o; ev 20 0 o ] in
  let times = Array.to_list (Array.map (fun (e : Event.t) -> e.time) log.events) in
  check Alcotest.(list int) "sorted" [ 10; 20; 30 ] times

let test_log_queries () =
  let o = Opid.read ~cls:"C" "f" in
  let log = mklog [ ev 10 0 o; ev 20 1 o; ev 30 0 o ] in
  check Alcotest.int "thread events" 2 (List.length (Log.events_of_thread log 0));
  check Alcotest.int "between" 2 (List.length (Log.between log ~lo:10 ~hi:20));
  check Alcotest.bool "active" true (Log.thread_active_in log ~tid:1 ~lo:15 ~hi:25);
  check Alcotest.bool "inactive" false (Log.thread_active_in log ~tid:1 ~lo:21 ~hi:29)

let test_log_empty_fresh () =
  (* [empty] must hand out a fresh value: the volatile-address table is
     mutable, and a shared one would leak state between callers. *)
  let a = Log.empty () in
  Hashtbl.replace a.volatile_addrs 42 ();
  let b = Log.empty () in
  check Alcotest.int "fresh volatile table" 0 (Hashtbl.length b.volatile_addrs);
  check Alcotest.int "no events" 0 (Log.length b)

let test_first_delay_earliest () =
  (* Two delayed events in range: the first one in time must win (the
     seed's fold kept scanning and could report a later one). *)
  let o = Opid.write ~cls:"C" "g" in
  let log =
    mklog
      [
        ev ~target:2 ~delayed_by:5 90 0 o;
        ev ~target:2 ~delayed_by:7 40 0 o;
        ev 10 1 (Opid.read ~cls:"C" "f");
      ]
  in
  match Log.first_delayed_in log ~tid:0 ~lo:0 ~hi:1_000 with
  | Some e ->
    check Alcotest.int "first in time" 40 e.time;
    check Alcotest.int "its delay" 7 e.delayed_by
  | None -> Alcotest.fail "expected a delayed event"

let test_first_delay_bounds () =
  let o = Opid.write ~cls:"C" "g" in
  let log = mklog [ ev ~target:2 ~delayed_by:7 40 0 o ] in
  check Alcotest.bool "outside range" true
    (Log.first_delayed_in log ~tid:0 ~lo:41 ~hi:1_000 = None);
  check Alcotest.bool "wrong thread" true
    (Log.first_delayed_in log ~tid:1 ~lo:0 ~hi:1_000 = None);
  check Alcotest.bool "has_delayed agrees" false
    (Log.has_delayed_in log ~tid:0 ~lo:41 ~hi:1_000);
  check Alcotest.bool "has_delayed hit" true
    (Log.has_delayed_in log ~tid:0 ~lo:40 ~hi:40)

(* --- Durations --- *)

let test_durations_pairing () =
  let b = Opid.enter ~cls:"C" "m" and e = Opid.exit ~cls:"C" "m" in
  let log = mklog [ ev 10 0 b; ev 25 0 e; ev 30 0 b; ev 70 0 e ] in
  let d = Durations.create () in
  Durations.record_log d log;
  check Alcotest.(list (float 1e-9)) "durations" [ 40.0; 15.0 ] (Durations.samples d "C::m")

let test_durations_nested () =
  let b = Opid.enter ~cls:"C" "m" and e = Opid.exit ~cls:"C" "m" in
  let bi = Opid.enter ~cls:"C" "inner" and ei = Opid.exit ~cls:"C" "inner" in
  let log = mklog [ ev 10 0 b; ev 20 0 bi; ev 30 0 ei; ev 50 0 e ] in
  let d = Durations.create () in
  Durations.record_log d log;
  check Alcotest.(list (float 1e-9)) "outer" [ 40.0 ] (Durations.samples d "C::m");
  check Alcotest.(list (float 1e-9)) "inner" [ 10.0 ] (Durations.samples d "C::inner")

let test_durations_skip_delayed_frames () =
  let b = Opid.enter ~cls:"C" "m" and e = Opid.exit ~cls:"C" "m" in
  let w = Opid.write ~cls:"C" "f" in
  let log =
    mklog [ ev 10 0 b; ev ~delayed_by:100_000 100_020 0 w; ev 100_040 0 e;
            ev 200_000 0 b; ev 200_015 0 e ]
  in
  let d = Durations.create () in
  Durations.record_log d log;
  check Alcotest.(list (float 1e-9)) "only undelayed frame" [ 15.0 ]
    (Durations.samples d "C::m")

let test_durations_cv_percentile () =
  let d = Durations.create () in
  let mk cls meth times =
    let b = Opid.enter ~cls meth and e = Opid.exit ~cls meth in
    mklog (List.concat_map (fun (t0, t1) -> [ ev t0 0 b; ev t1 0 e ]) times)
  in
  Durations.record_log d (mk "C" "flat" [ (0, 10); (100, 110); (200, 210) ]);
  Durations.record_log d (mk "C" "vary" [ (0, 10); (300, 500); (1000, 1002) ]);
  check Alcotest.bool "vary has higher cv" true (Durations.cv d "C::vary" > Durations.cv d "C::flat");
  check Alcotest.bool "vary top percentile" true
    (Durations.cv_percentile d "C::vary" > Durations.cv_percentile d "C::flat")

(* --- Windows --- *)

let wf = Opid.write ~cls:"C" "f"

let rf = Opid.read ~cls:"C" "f"

let test_window_basic () =
  (* T0 writes, T1 reads soon after: one window with both endpoints. *)
  let log = mklog [ ev 10 0 wf; ev 50 1 rf ] in
  let windows, races = Windows.extract log in
  check Alcotest.int "one window" 1 (List.length windows);
  check Alcotest.int "no race" 0 (List.length races);
  let w = List.hd windows in
  check Alcotest.bool "rel contains write" true (Opid.Map.mem wf w.rel);
  check Alcotest.bool "acq contains read" true (Opid.Map.mem rf w.acq)

let test_window_near_filter () =
  let log = mklog [ ev 10 0 wf; ev 5_000_000 1 rf ] in
  let windows, races = Windows.extract ~near:1_000_000 log in
  check Alcotest.int "too far apart" 0 (List.length windows);
  check Alcotest.int "no race either" 0 (List.length races)

let test_window_same_thread_excluded () =
  let log = mklog [ ev 10 0 wf; ev 20 0 rf ] in
  let windows, races = Windows.extract log in
  check Alcotest.int "same thread no window" 0 (List.length windows + List.length races)

let test_window_read_read_excluded () =
  let log = mklog [ ev 10 0 rf; ev 20 1 rf ] in
  let windows, races = Windows.extract log in
  check Alcotest.int "no conflict" 0 (List.length windows + List.length races)

let test_window_cap () =
  let events =
    List.concat_map (fun i -> [ ev ((i * 100) + 10) 0 wf; ev ((i * 100) + 50) 1 rf ]) (List.init 40 Fun.id)
  in
  let log = mklog events in
  let windows, _ = Windows.extract ~cap:15 log in
  let for_pair =
    List.filter (fun (w : Windows.t) -> fst w.pair = wf && snd w.pair = rf) windows
  in
  check Alcotest.bool "capped at 15" true (List.length for_pair <= 15)

let test_window_race_all_writes () =
  (* Acquire side of a write/write pair with nothing else: a race. *)
  let log = mklog [ ev 10 0 wf; ev 50 1 wf ] in
  let windows, races = Windows.extract log in
  check Alcotest.int "no window" 0 (List.length windows);
  check Alcotest.int "race" 1 (List.length races)

let test_window_race_all_reads () =
  (* Release side of a read-then-write pair with only reads: a race. *)
  let log = mklog [ ev 10 0 rf; ev 50 1 wf ] in
  let _, races = Windows.extract log in
  check Alcotest.int "race" 1 (List.length races)

let test_window_method_prevents_race () =
  let e = Opid.exit ~cls:"C" "m" in
  let log = mklog [ ev 10 0 wf; ev 20 0 e; ev 50 1 wf; ev 5 1 (Opid.enter ~cls:"C" "n") ] in
  let windows, races = Windows.extract log in
  (* The acquire side picks up the open C::n frame of thread 1, so the
     write/write pair is explicable. *)
  check Alcotest.int "no race" 0 (List.length races);
  check Alcotest.int "window" 1 (List.length windows)

let test_window_open_frame_acquire () =
  (* Thread 1 invoked a method before the release and is still inside it:
     its Begin must be an acquire candidate. *)
  let bm = Opid.enter ~cls:"C" "Wait" and em = Opid.exit ~cls:"C" "Wait" in
  let log = mklog [ ev 5 1 bm; ev 10 0 wf; ev 60 1 em; ev 80 1 rf ] in
  let windows, _ = Windows.extract log in
  let w = List.hd windows in
  check Alcotest.bool "spanning begin included" true (Opid.Map.mem bm w.acq)

let test_window_progressed_frame_excluded () =
  (* Thread 1's frame made progress (a write) before the window: its
     Begin is not plausibly blocked and must not be a candidate. *)
  let bm = Opid.enter ~cls:"C" "Busy" in
  let wg = Opid.write ~cls:"C" "g" in
  let log = mklog [ ev 5 1 bm; ev ~target:2 8 1 wg; ev 10 0 wf; ev 80 1 rf ] in
  let windows, _ = Windows.extract log in
  let w = List.hd windows in
  check Alcotest.bool "progressed begin excluded" false (Opid.Map.mem bm w.acq)

let test_window_occurrence_counts () =
  let log = mklog [ ev 10 0 wf; ev 20 1 rf; ev 30 1 rf; ev 40 1 rf ] in
  let windows, _ = Windows.extract log in
  (* Last read closes the biggest window: reads occur 3 times there. *)
  let max_count =
    List.fold_left
      (fun acc (w : Windows.t) ->
        max acc (Option.value ~default:0 (Opid.Map.find_opt rf w.acq)))
      0 windows
  in
  check Alcotest.int "occurrences counted" 3 max_count

let test_refinement_propagated () =
  (* Delayed release candidate, other thread silent during the delay:
     acquire window shrinks to [r, b]. *)
  let wg = Opid.write ~cls:"C" "g" in
  let log =
    mklog
      [
        ev 10 0 wf;
        ev ~target:2 20 1 (Opid.read ~cls:"C" "g");
        ev ~target:2 ~delayed_by:100_000 100_120 0 wg;
        ev 100_200 1 rf;
      ]
  in
  let windows, _ = Windows.extract ~refine:true log in
  let w =
    List.find (fun (w : Windows.t) -> Opid.equal (fst w.pair) wf) windows
  in
  (* The early read of g (before the delay) is refined away. *)
  check Alcotest.bool "early acq candidate dropped" false
    (Opid.Map.mem (Opid.read ~cls:"C" "g") w.acq);
  check Alcotest.bool "endpoint kept" true (Opid.Map.mem rf w.acq)

let test_refinement_not_propagated () =
  (* The other thread kept making progress during the delay: that instance
     of the delayed op is discounted from the release side. *)
  let wg = Opid.write ~cls:"C" "g" in
  let wh = Opid.write ~cls:"C" "h" in
  let log =
    mklog
      [
        ev 10 0 wf;
        ev ~target:3 50_000 1 wh;
        (* progress during the delay *)
        ev ~target:2 ~delayed_by:100_000 100_120 0 wg;
        ev 100_200 1 rf;
      ]
  in
  let windows, _ = Windows.extract ~refine:true log in
  let w =
    List.find (fun (w : Windows.t) -> Opid.equal (fst w.pair) wf) windows
  in
  check Alcotest.bool "refuted release instance removed" false (Opid.Map.mem wg w.rel);
  check Alcotest.bool "original write kept" true (Opid.Map.mem wf w.rel)

let test_refinement_off () =
  let wg = Opid.write ~cls:"C" "g" in
  let log =
    mklog
      [
        ev 10 0 wf;
        ev ~target:3 50_000 1 (Opid.write ~cls:"C" "h");
        ev ~target:2 ~delayed_by:100_000 100_120 0 wg;
        ev 100_200 1 rf;
      ]
  in
  let windows, _ = Windows.extract ~refine:false log in
  let w =
    List.find (fun (w : Windows.t) -> Opid.equal (fst w.pair) wf) windows
  in
  check Alcotest.bool "kept without refinement" true (Opid.Map.mem wg w.rel)

let gen_ops_for_io =
  QCheck.Gen.(
    list_size (int_range 0 30)
      (let* time = int_range 1 10_000 in
       let* tid = int_range 0 2 in
       let* kind = int_range 0 3 in
       let* field = int_range 0 2 in
       let cls = "P.C" in
       let name = Printf.sprintf "f%d" field in
       let op =
         match kind with
         | 0 -> Opid.read ~cls name
         | 1 -> Opid.write ~cls name
         | 2 -> Opid.enter ~cls name
         | _ -> Opid.exit ~cls name
       in
       return (Event.make ~time ~tid ~op ~target:(field + 1) ())))

(* --- Trace_io --- *)

let test_trace_io_roundtrip () =
  let o1 = Opid.read ~cls:"C" "f" and o2 = Opid.enter ~cls:"N.S" "m" in
  let volatile_addrs = Hashtbl.create 2 in
  Hashtbl.replace volatile_addrs 7 ();
  let log =
    Log.create
      ~events:[ ev ~target:7 10 0 o1; ev ~target:3 ~delayed_by:100 20 1 o2 ]
      ~duration:999 ~threads:3 ~volatile_addrs
  in
  let log' = Trace_io.of_string (Trace_io.to_string log) in
  check Alcotest.int "duration" log.duration log'.duration;
  check Alcotest.int "threads" log.threads log'.threads;
  check Alcotest.int "volatiles" 1 (Hashtbl.length log'.volatile_addrs);
  check Alcotest.int "events" (Log.length log) (Log.length log');
  Array.iter2
    (fun (a : Event.t) (b : Event.t) ->
      check Alcotest.bool "op" true (Opid.equal a.op b.op);
      check Alcotest.int "time" a.time b.time;
      check Alcotest.int "tid" a.tid b.tid;
      check Alcotest.int "target" a.target b.target;
      check Alcotest.int "delay" a.delayed_by b.delayed_by)
    log.events log'.events

let test_trace_io_file () =
  let log = mklog [ ev 10 0 wf; ev 50 1 rf ] in
  let path = Filename.temp_file "sherlock" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_io.save log path;
      let log' = Trace_io.load path in
      check Alcotest.int "events" 2 (Log.length log'))

let test_trace_io_bad_magic () =
  Alcotest.check_raises "bad magic" (Failure "<string>:1: Trace_io: bad magic")
    (fun () -> ignore (Trace_io.of_string "nonsense\n"));
  Alcotest.check_raises "bad magic names the file"
    (Failure "trace.bin:1: Trace_io: bad magic") (fun () ->
      ignore (Trace_io.of_string ~path:"trace.bin" "nonsense\n"))

(* Regression: parse errors used to say only "malformed line"; they must
   now pinpoint the offending file:line (the magic header is line 1, so
   the first record is line 2). *)
let test_trace_io_malformed_line_position () =
  let log = mklog [ ev 10 0 wf; ev 50 1 rf; ev 90 0 wf ] in
  let lines = String.split_on_char '\n' (Trace_io.to_string log) in
  let garble n =
    String.concat "\n"
      (List.mapi (fun i l -> if i = n - 1 then "garbage here" else l) lines)
  in
  let expect_failure_at ~path pos text =
    match Trace_io.of_string ~path text with
    | _ -> Alcotest.failf "garbled line %d parsed" pos
    | exception Failure msg ->
      let prefix = Printf.sprintf "%s:%d: Trace_io: malformed line" path pos in
      check Alcotest.bool
        (Printf.sprintf "message %S starts with %S" msg prefix)
        true
        (String.length msg >= String.length prefix
        && String.sub msg 0 (String.length prefix) = prefix)
  in
  (* Layout: line 1 magic, 2 duration, 3 threads, 4.. event records.
     Garbling the duration header or an event record must name exactly
     that line, in whichever path the caller supplied. *)
  expect_failure_at ~path:"<string>" 2 (garble 2);
  expect_failure_at ~path:"t.trace" 4 (garble 4);
  expect_failure_at ~path:"t.trace" 6 (garble 6);
  (* A truncated record (fields missing) is positioned too. *)
  expect_failure_at ~path:"<string>" 2 (List.hd lines ^ "\ne 10 0\n")

let test_trace_io_rejects_spaces () =
  (* The constructors reject bad names up front ([test_opid_name_validation]);
     [Opid.t] is a concrete record, though, so a value built by hand can
     slip past them — both writers must re-check before emitting. *)
  let bad = { Opid.cls = "Bad Name"; member = "f"; kind = Opid.Read } in
  let log = mklog [ ev 10 0 bad ] in
  List.iter
    (fun format ->
      Alcotest.check_raises
        (Printf.sprintf "whitespace name (%s)" (Trace_io.format_name format))
        (Invalid_argument
           "Opid: invalid character ' ' in operation name \"Bad Name\"")
        (fun () -> ignore (Trace_io.to_string ~format log)))
    [ Trace_io.Text; Trace_io.Binary ]

(* --- Trace_bin --- *)

let test_trace_bin_roundtrip () =
  let o1 = Opid.read ~cls:"C" "f" and o2 = Opid.enter ~cls:"N.S" "m" in
  let volatile_addrs = Hashtbl.create 2 in
  Hashtbl.replace volatile_addrs 7 ();
  Hashtbl.replace volatile_addrs 3 ();
  let log =
    Log.create
      ~events:[ ev ~target:7 10 0 o1; ev ~target:3 ~delayed_by:100 20 1 o2 ]
      ~duration:999 ~threads:3 ~volatile_addrs
  in
  let s = Trace_bin.to_string log in
  check Alcotest.string "frame starts with the magic" Trace_bin.magic
    (String.sub s 0 (String.length Trace_bin.magic));
  (* [Trace_io.of_string] must sniff the magic and route to the binary
     decoder on its own. *)
  let log' = Trace_io.of_string s in
  check Alcotest.int "duration" log.duration log'.duration;
  check Alcotest.int "threads" log.threads log'.threads;
  check Alcotest.int "volatiles" 2 (Hashtbl.length log'.volatile_addrs);
  check Alcotest.bool "volatile membership" true
    (Hashtbl.mem log'.volatile_addrs 7 && Hashtbl.mem log'.volatile_addrs 3);
  check Alcotest.int "events" (Log.length log) (Log.length log');
  Array.iter2
    (fun (a : Event.t) (b : Event.t) ->
      check Alcotest.bool "op" true (Opid.equal a.op b.op);
      check Alcotest.int "time" a.time b.time;
      check Alcotest.int "tid" a.tid b.tid;
      check Alcotest.int "target" a.target b.target;
      check Alcotest.int "delay" a.delayed_by b.delayed_by)
    log.events log'.events

let test_trace_bin_file_autodetect () =
  let log = mklog [ ev 10 0 wf; ev 50 1 rf ] in
  let path = Filename.temp_file "sherlock" ".btrace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_io.save ~format:Trace_io.Binary log path;
      check Alcotest.bool "sniffed as binary" true
        (Trace_io.format_of_file path = Trace_io.Binary);
      let log' = Trace_io.load path in
      check Alcotest.int "events" 2 (Log.length log');
      (* Converting back to text through the same front door. *)
      Trace_io.save ~format:Trace_io.Text log' path;
      check Alcotest.bool "sniffed as text" true
        (Trace_io.format_of_file path = Trace_io.Text);
      check Alcotest.int "events after convert" 2 (Log.length (Trace_io.load path)))

let expect_positioned_binary_failure ~path ~what s =
  match Trace_bin.of_string ~path s with
  | (_ : Log.t) -> Alcotest.failf "%s parsed" what
  | exception Failure msg ->
    (* Binary errors are positioned as "<path>: byte <off>: Trace_bin: ...". *)
    let prefix = path ^ ": byte " in
    check Alcotest.bool
      (Printf.sprintf "%s: %S carries a byte offset" what msg)
      true
      (String.length msg >= String.length prefix
      && String.sub msg 0 (String.length prefix) = prefix)

let test_trace_bin_truncation_positioned () =
  let log = mklog [ ev 10 0 wf; ev 50 1 rf; ev 90 0 wf ] in
  let s = Trace_bin.to_string log in
  (* Every proper prefix — mid-magic, mid-header, mid-op-table, mid-column,
     mid-footer — must be rejected with a byte-positioned error. *)
  for len = 0 to String.length s - 1 do
    expect_positioned_binary_failure ~path:"t.btrace"
      ~what:(Printf.sprintf "%d-byte prefix" len)
      (String.sub s 0 len)
  done

let test_trace_bin_corruption_positioned () =
  let volatile_addrs = Hashtbl.create 1 in
  Hashtbl.replace volatile_addrs 1 ();
  let log =
    Log.create
      ~events:[ ev 10 0 wf; ev ~delayed_by:3 50 1 rf; ev 90 0 wf ]
      ~duration:1_000 ~threads:2 ~volatile_addrs
  in
  let s = Trace_bin.to_string log in
  (* Flip every byte in turn: each corrupted frame must either still
     decode to some log (flips in event payloads are data, not
     structure) or fail with a byte-positioned error — never escape as
     another exception or a crash. *)
  for pos = 0 to String.length s - 1 do
    let b = Bytes.of_string s in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xff));
    let corrupted = Bytes.to_string b in
    match Trace_bin.of_string ~path:"c.btrace" corrupted with
    | (_ : Log.t) -> ()
    | exception Failure msg ->
      let prefix = "c.btrace: byte " in
      check Alcotest.bool
        (Printf.sprintf "flip at %d: %S carries a byte offset" pos msg)
        true
        (String.length msg >= String.length prefix
        && String.sub msg 0 (String.length prefix) = prefix)
  done

let prop_trace_io_roundtrip =
  QCheck.Test.make ~name:"trace_io roundtrip on random logs" ~count:100
    (QCheck.make gen_ops_for_io)
    (fun events ->
      let log = mklog events in
      let log' = Trace_io.of_string (Trace_io.to_string log) in
      Log.length log = Log.length log'
      && Array.for_all2
           (fun (a : Event.t) (b : Event.t) ->
             Opid.equal a.op b.op && a.time = b.time && a.tid = b.tid
             && a.target = b.target)
           log.events log'.events
      (* The loaded log rebuilds its indices; spot-check that they answer
         queries identically to the original's. *)
      && List.for_all
           (fun tid ->
             Log.progress_count log ~tid ~lo:0 ~hi:10_000
             = Log.progress_count log' ~tid ~lo:0 ~hi:10_000
             && List.length (Log.events_of_thread log tid)
                = List.length (Log.events_of_thread log' tid))
           [ 0; 1; 2 ])

(* Random logs with volatile-address annotations, for the cross-format
   property: both serializers must carry the whole log header, not just
   the event array. *)
let gen_log_inputs =
  QCheck.Gen.(
    let* events = gen_ops_for_io in
    let* volatiles = list_size (int_range 0 4) (int_range 1 6) in
    let* duration = int_range 0 1_000_000 in
    let* threads = int_range 0 8 in
    return (events, volatiles, duration, threads))

let prop_trace_formats_roundtrip =
  QCheck.Test.make ~name:"binary<->text<->binary preserves logs" ~count:100
    (QCheck.make gen_log_inputs)
    (fun (events, volatiles, duration, threads) ->
      let volatile_addrs = Hashtbl.create 4 in
      List.iter (fun a -> Hashtbl.replace volatile_addrs a ()) volatiles;
      let log = Log.create ~events ~duration ~threads ~volatile_addrs in
      let via format (l : Log.t) =
        Trace_io.of_string (Trace_io.to_string ~format l)
      in
      let via_bin = via Trace_io.Binary log in
      let via_text = via Trace_io.Text via_bin in
      let back = via Trace_io.Binary via_text in
      let vols (l : Log.t) =
        List.sort compare
          (Hashtbl.fold (fun k () acc -> k :: acc) l.volatile_addrs [])
      in
      let same (a : Log.t) (b : Log.t) =
        a.duration = b.duration && a.threads = b.threads
        && Log.length a = Log.length b
        && Array.for_all2
             (fun (x : Event.t) (y : Event.t) ->
               Opid.equal x.op y.op && x.time = y.time && x.tid = y.tid
               && x.target = y.target && x.delayed_by = y.delayed_by)
             a.events b.events
        && vols a = vols b
      in
      same log via_bin && same log via_text && same log back
      (* The binary encoding is canonical (interning in first-appearance
         order, volatile addresses sorted): re-encoding a log that made
         it through both formats is byte-identical. *)
      && Trace_io.to_string ~format:Trace_io.Binary log
         = Trace_io.to_string ~format:Trace_io.Binary back)

(* --- Reference window extraction --- *)

(* The pre-index full-scan algorithm, kept as an executable specification:
   every query the indexed [Windows.extract] answers with binary searches
   is answered here by scanning the whole event array.  Addresses are
   visited in first-seen order and same-address pairs in time order with
   one global per-static-pair cap — the same deterministic order the
   indexed implementation uses, so results are compared exactly. *)
module Naive = struct
  let add side op =
    Opid.Map.update op (function None -> Some 1 | Some n -> Some (n + 1)) side

  let side_of_span (log : Log.t) ~tid ~lo ~hi =
    Array.fold_left
      (fun acc (e : Event.t) ->
        if e.tid = tid && e.time >= lo && e.time <= hi then add acc e.op else acc)
      Opid.Map.empty log.events

  let all_kinds_are side kind =
    Opid.Map.for_all (fun (op : Opid.t) _ -> op.kind = kind) side

  let frame_spans (log : Log.t) =
    let stacks : (int, (Opid.t * int) list ref) Hashtbl.t = Hashtbl.create 8 in
    let spans : (int, (Opid.t * int * int) list ref) Hashtbl.t =
      Hashtbl.create 8
    in
    let slot tbl tid =
      match Hashtbl.find_opt tbl tid with
      | Some s -> s
      | None ->
        let s = ref [] in
        Hashtbl.add tbl tid s;
        s
    in
    Array.iter
      (fun (e : Event.t) ->
        match e.op.kind with
        | Opid.Begin ->
          (slot stacks e.tid) := (e.op, e.time) :: !(slot stacks e.tid)
        | Opid.End ->
          let key = Opid.method_key e.op in
          let s = slot stacks e.tid in
          let rec pop acc = function
            | [] -> None
            | ((op : Opid.t), t0) :: rest when Opid.method_key op = key ->
              Some ((op, t0), List.rev_append acc rest)
            | frame :: rest -> pop (frame :: acc) rest
          in
          (match pop [] !s with
          | Some ((op, t0), rest) ->
            s := rest;
            (slot spans e.tid) := (op, t0, e.time) :: !(slot spans e.tid)
          | None -> ())
        | Opid.Read | Opid.Write -> ())
      log.events;
    Hashtbl.iter
      (fun tid s ->
        List.iter
          (fun (op, t0) ->
            (slot spans tid) := (op, t0, max_int) :: !(slot spans tid))
          !s)
      stacks;
    spans

  let progressed (log : Log.t) ~tid ~lo ~hi =
    Array.exists
      (fun (e : Event.t) ->
        e.tid = tid && e.time > lo && e.time < hi && e.op.kind <> Opid.Read)
      log.events

  let add_open_frames log spans side ~tid ~lo =
    match Hashtbl.find_opt spans tid with
    | None -> side
    | Some frames ->
      List.fold_left
        (fun acc (op, t0, t1) ->
          if t1 >= lo && t0 < lo && not (progressed log ~tid ~lo:t0 ~hi:lo)
          then add acc op
          else acc)
        side !frames

  let first_delay (log : Log.t) ~tid ~lo ~hi =
    Array.fold_left
      (fun acc (e : Event.t) ->
        match acc with
        | Some _ -> acc
        | None ->
          if e.tid = tid && e.delayed_by > 0 && e.time >= lo && e.time <= hi
          then Some e
          else None)
      None log.events

  let extract ~near ~cap ~refine (log : Log.t) =
    let spans = frame_spans log in
    let windows = ref [] in
    let races = ref [] in
    let pair_counts : (Opid.t * Opid.t, int) Hashtbl.t = Hashtbl.create 64 in
    let consider (a : Event.t) (b : Event.t) =
      let acq_side ~lo ~hi =
        add_open_frames log spans
          (side_of_span log ~tid:b.tid ~lo ~hi)
          ~tid:b.tid ~lo
      in
      let rel = ref (side_of_span log ~tid:a.tid ~lo:a.time ~hi:b.time) in
      let acq = ref (acq_side ~lo:a.time ~hi:b.time) in
      (if refine then
         match first_delay log ~tid:a.tid ~lo:a.time ~hi:b.time with
         | Some r ->
           let delay_start = r.time - r.delayed_by in
           let made_progress =
             Array.exists
               (fun (e : Event.t) ->
                 e.tid = b.tid
                 && e.time >= delay_start
                 && e.time < r.time
                 && e.op.kind <> Opid.Read)
               log.events
           in
           if not made_progress then acq := acq_side ~lo:r.time ~hi:b.time
           else
             rel :=
               Opid.Map.update r.op
                 (function None | Some 1 -> None | Some n -> Some (n - 1))
                 !rel
         | None -> ());
      let rel = !rel and acq = !acq in
      let field = Opid.field_key a.op in
      let rel_impossible = Opid.Map.is_empty rel || all_kinds_are rel Opid.Read in
      let acq_impossible =
        Opid.Map.is_empty acq || all_kinds_are acq Opid.Write
      in
      if rel_impossible || acq_impossible then
        races := { Windows.race_pair = (a.op, b.op); race_field = field } :: !races
      else begin
        let coord =
          {
            Windows.first_time = a.time;
            first_tid = a.tid;
            second_time = b.time;
            second_tid = b.tid;
          }
        in
        windows :=
          { Windows.pair = (a.op, b.op); field; rel; acq; coord } :: !windows
      end
    in
    let addrs = ref [] in
    let seen = Hashtbl.create 8 in
    Array.iter
      (fun (e : Event.t) ->
        if Opid.is_access e.op && not (Hashtbl.mem seen e.target) then begin
          Hashtbl.add seen e.target ();
          addrs := e.target :: !addrs
        end)
      log.events;
    List.iter
      (fun addr ->
        let accesses =
          Array.of_list
            (List.filter
               (fun (e : Event.t) -> Opid.is_access e.op && e.target = addr)
               (Array.to_list log.events))
        in
        let n = Array.length accesses in
        for i = 0 to n - 1 do
          for j = i + 1 to n - 1 do
            let a = accesses.(i) and b = accesses.(j) in
            if
              b.time - a.time <= near
              && a.tid <> b.tid
              && (a.op.kind = Opid.Write || b.op.kind = Opid.Write)
            then begin
              let key = (a.op, b.op) in
              let c = Option.value ~default:0 (Hashtbl.find_opt pair_counts key) in
              if c < cap then begin
                Hashtbl.replace pair_counts key (c + 1);
                consider a b
              end
            end
          done
        done)
      (List.rev !addrs);
    (List.rev !windows, List.rev !races)
end

let side_bindings side =
  List.map (fun ((o : Opid.t), n) -> (Opid.to_string o, n)) (Opid.Map.bindings side)

let window_eq (a : Windows.t) (b : Windows.t) =
  Opid.equal (fst a.pair) (fst b.pair)
  && Opid.equal (snd a.pair) (snd b.pair)
  && a.field = b.field
  && side_bindings a.rel = side_bindings b.rel
  && side_bindings a.acq = side_bindings b.acq
  && a.coord = b.coord

let race_eq (a : Windows.race) (b : Windows.race) =
  Opid.equal (fst a.race_pair) (fst b.race_pair)
  && Opid.equal (snd a.race_pair) (snd b.race_pair)
  && a.race_field = b.race_field

(* --- Properties --- *)

let gen_ops =
  QCheck.Gen.(
    list_size (int_range 0 40)
      (let* time = int_range 1 10_000 in
       let* tid = int_range 0 2 in
       let* kind = int_range 0 3 in
       let* field = int_range 0 2 in
       let cls = "P.C" in
       let name = Printf.sprintf "f%d" field in
       let op =
         match kind with
         | 0 -> Opid.read ~cls name
         | 1 -> Opid.write ~cls name
         | 2 -> Opid.enter ~cls name
         | _ -> Opid.exit ~cls name
       in
       return (Event.make ~time ~tid ~op ~target:(field + 1) ())))

(* Like [gen_ops] but with occasional injected-delay annotations, so the
   refinement paths of both implementations are exercised. *)
let gen_ops_delayed =
  QCheck.Gen.(
    list_size (int_range 0 40)
      (let* time = int_range 1 10_000 in
       let* tid = int_range 0 2 in
       let* kind = int_range 0 3 in
       let* field = int_range 0 2 in
       let* delayed = int_range 0 9 in
       let* delay = int_range 1 400 in
       let cls = "P.C" in
       let name = Printf.sprintf "f%d" field in
       let op =
         match kind with
         | 0 -> Opid.read ~cls name
         | 1 -> Opid.write ~cls name
         | 2 -> Opid.enter ~cls name
         | _ -> Opid.exit ~cls name
       in
       let delayed_by = if delayed = 0 then delay else 0 in
       return (Event.make ~time ~tid ~op ~target:(field + 1) ~delayed_by ())))

let prop_extract_matches_reference =
  QCheck.Test.make ~name:"indexed extraction matches the naive reference"
    ~count:300
    (QCheck.make gen_ops_delayed)
    (fun events ->
      let log = mklog events in
      List.for_all
        (fun (near, cap, refine) ->
          let w1, r1 = Windows.extract ~near ~cap ~refine log in
          let w2, r2 = Naive.extract ~near ~cap ~refine log in
          List.length w1 = List.length w2
          && List.length r1 = List.length r2
          && List.for_all2 window_eq w1 w2
          && List.for_all2 race_eq r1 r2)
        (* near exercising both in- and out-of-horizon pairs; a tight cap
           exercising the bail-out; refinement on and off. *)
        [ (10_000, 15, true); (3_000, 2, true); (10_000, 15, false) ])

(* Like [gen_ops_delayed] but wide: more threads and many more addresses,
   so the parallel extractor actually gets multiple address chunks to
   shard — and each static op aliases three addresses (array-element
   style), so the global per-pair caps span chunk boundaries and the
   merge's cap replay is genuinely exercised. *)
let gen_ops_wide =
  QCheck.Gen.(
    list_size (int_range 0 150)
      (let* time = int_range 1 10_000 in
       let* tid = int_range 0 3 in
       let* kind = int_range 0 3 in
       let* addr = int_range 0 11 in
       let* delayed = int_range 0 9 in
       let* delay = int_range 1 400 in
       let field = addr mod 4 in
       let cls = "P.C" in
       let name = Printf.sprintf "f%d" field in
       let op =
         match kind with
         | 0 -> Opid.read ~cls name
         | 1 -> Opid.write ~cls name
         | 2 -> Opid.enter ~cls name
         | _ -> Opid.exit ~cls name
       in
       let delayed_by = if delayed = 0 then delay else 0 in
       return (Event.make ~time ~tid ~op ~target:(addr + 1) ~delayed_by ())))

(* One worker pool shared by every invocation of the parallel-identity
   property (retired when the test binary exits): spawning and joining up
   to 7 domains per generated case would dominate the suite's runtime. *)
let shared_pool =
  lazy
    (let p = Sherlock_util.Pool.create () in
     at_exit (fun () -> Sherlock_util.Pool.retire p);
     p)

let metrics_counters (m : Sherlock_trace.Metrics.t) =
  (m.events, m.pairs_considered, m.pairs_capped, m.windows, m.races)

let prop_parallel_extract_identical =
  QCheck.Test.make
    ~name:"parallel extraction matches sequential for any job count" ~count:120
    (QCheck.make gen_ops_wide)
    (fun events ->
      let log = mklog events in
      let pool = Lazy.force shared_pool in
      List.for_all
        (fun (near, cap, refine) ->
          let m_seq = Sherlock_trace.Metrics.create () in
          let ws, rs = Windows.extract ~near ~cap ~refine ~metrics:m_seq log in
          List.for_all
            (fun jobs ->
              let m_par = Sherlock_trace.Metrics.create () in
              let wp, rp =
                Windows.extract ~near ~cap ~refine ~metrics:m_par ~jobs ~pool
                  log
              in
              List.length ws = List.length wp
              && List.length rs = List.length rp
              && List.for_all2 window_eq ws wp
              && List.for_all2 race_eq rs rp
              && metrics_counters m_seq = metrics_counters m_par)
            [ 1; 2; 3; 4; 8 ])
        [ (10_000, 15, true); (3_000, 2, true); (10_000, 15, false) ])

(* The same identity on a generated stress log big enough that every
   chunking/cap/cache interaction actually occurs. *)
let test_parallel_extract_synth () =
  let log = Sherlock_trace.Synth.log ~seed:7 ~addrs:96 ~threads:8 ~events:20_000 () in
  (* [near] well under the log's span, so windows stay bounded and the
     near-horizon filter is part of what must match. *)
  let near = 10_000 in
  let m_seq = Sherlock_trace.Metrics.create () in
  let ws, rs = Windows.extract ~near ~metrics:m_seq log in
  let pool = Lazy.force shared_pool in
  List.iter
    (fun jobs ->
      let m_par = Sherlock_trace.Metrics.create () in
      let wp, rp = Windows.extract ~near ~metrics:m_par ~jobs ~pool log in
      Alcotest.(check int)
        (Printf.sprintf "windows at jobs=%d" jobs)
        (List.length ws) (List.length wp);
      Alcotest.(check int)
        (Printf.sprintf "races at jobs=%d" jobs)
        (List.length rs) (List.length rp);
      Alcotest.(check bool)
        (Printf.sprintf "window lists identical at jobs=%d" jobs)
        true
        (List.for_all2 window_eq ws wp);
      Alcotest.(check bool)
        (Printf.sprintf "race lists identical at jobs=%d" jobs)
        true
        (List.for_all2 race_eq rs rp);
      Alcotest.(check bool)
        (Printf.sprintf "metrics identical at jobs=%d" jobs)
        true
        (metrics_counters m_seq = metrics_counters m_par))
    [ 2; 4; 8 ]

let test_synth_deterministic () =
  let a = Sherlock_trace.Synth.log ~seed:3 ~addrs:32 ~threads:4 ~events:5_000 () in
  let b = Sherlock_trace.Synth.log ~seed:3 ~addrs:32 ~threads:4 ~events:5_000 () in
  Alcotest.(check int) "same length" (Log.length a) (Log.length b);
  Alcotest.(check bool) "same events" true (a.events = b.events);
  let c = Sherlock_trace.Synth.log ~seed:4 ~addrs:32 ~threads:4 ~events:5_000 () in
  Alcotest.(check bool) "seed matters" true (a.events <> c.events)

let prop_windows_no_crash =
  QCheck.Test.make ~name:"window extraction total on random logs" ~count:200
    (QCheck.make gen_ops)
    (fun events ->
      let log = mklog events in
      let windows, races = Windows.extract log in
      List.length windows >= 0 && List.length races >= 0)

let prop_window_sides_nonempty =
  QCheck.Test.make ~name:"windows have a possible release and acquire" ~count:200
    (QCheck.make gen_ops)
    (fun events ->
      let log = mklog events in
      let windows, _ = Windows.extract log in
      List.for_all
        (fun (w : Windows.t) ->
          (not (Opid.Map.is_empty w.rel))
          && (not (Opid.Map.is_empty w.acq))
          && Opid.Map.exists (fun (o : Opid.t) _ -> o.kind <> Opid.Read) w.rel
          && Opid.Map.exists (fun (o : Opid.t) _ -> o.kind <> Opid.Write) w.acq)
        windows)

let prop_log_sorted =
  QCheck.Test.make ~name:"logs are time sorted" ~count:200 (QCheck.make gen_ops)
    (fun events ->
      let log = mklog events in
      let ok = ref true in
      Array.iteri
        (fun i (e : Event.t) ->
          if i > 0 && log.events.(i - 1).time > e.time then ok := false)
        log.events;
      !ok)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "trace"
    [
      ( "opid",
        [
          Alcotest.test_case "identity" `Quick test_opid_identity;
          Alcotest.test_case "kinds" `Quick test_opid_kinds;
          Alcotest.test_case "system classification" `Quick test_opid_system;
          Alcotest.test_case "name validation" `Quick test_opid_name_validation;
          Alcotest.test_case "rendering" `Quick test_opid_strings;
          Alcotest.test_case "counterpart" `Quick test_opid_counterpart;
        ] );
      ( "log",
        [
          Alcotest.test_case "sorting" `Quick test_log_sorting;
          Alcotest.test_case "queries" `Quick test_log_queries;
          Alcotest.test_case "empty is fresh" `Quick test_log_empty_fresh;
          Alcotest.test_case "first delay earliest" `Quick test_first_delay_earliest;
          Alcotest.test_case "first delay bounds" `Quick test_first_delay_bounds;
        ] );
      ( "durations",
        [
          Alcotest.test_case "pairing" `Quick test_durations_pairing;
          Alcotest.test_case "nested" `Quick test_durations_nested;
          Alcotest.test_case "delayed frames skipped" `Quick
            test_durations_skip_delayed_frames;
          Alcotest.test_case "cv percentile" `Quick test_durations_cv_percentile;
        ] );
      ( "windows",
        [
          Alcotest.test_case "basic" `Quick test_window_basic;
          Alcotest.test_case "near filter" `Quick test_window_near_filter;
          Alcotest.test_case "same thread" `Quick test_window_same_thread_excluded;
          Alcotest.test_case "read/read" `Quick test_window_read_read_excluded;
          Alcotest.test_case "cap" `Quick test_window_cap;
          Alcotest.test_case "race: all writes" `Quick test_window_race_all_writes;
          Alcotest.test_case "race: all reads" `Quick test_window_race_all_reads;
          Alcotest.test_case "method prevents race" `Quick test_window_method_prevents_race;
          Alcotest.test_case "open frame acquires" `Quick test_window_open_frame_acquire;
          Alcotest.test_case "progressed frame excluded" `Quick
            test_window_progressed_frame_excluded;
          Alcotest.test_case "occurrence counts" `Quick test_window_occurrence_counts;
          Alcotest.test_case "refinement: propagated" `Quick test_refinement_propagated;
          Alcotest.test_case "refinement: not propagated" `Quick
            test_refinement_not_propagated;
          Alcotest.test_case "refinement off" `Quick test_refinement_off;
        ] );
      ( "trace_io",
        [
          Alcotest.test_case "roundtrip" `Quick test_trace_io_roundtrip;
          Alcotest.test_case "file save/load" `Quick test_trace_io_file;
          Alcotest.test_case "bad magic" `Quick test_trace_io_bad_magic;
          Alcotest.test_case "malformed line position" `Quick
            test_trace_io_malformed_line_position;
          Alcotest.test_case "rejects spaces" `Quick test_trace_io_rejects_spaces;
        ] );
      ( "trace_bin",
        [
          Alcotest.test_case "roundtrip" `Quick test_trace_bin_roundtrip;
          Alcotest.test_case "file autodetect" `Quick test_trace_bin_file_autodetect;
          Alcotest.test_case "truncation positioned" `Quick
            test_trace_bin_truncation_positioned;
          Alcotest.test_case "corruption positioned" `Quick
            test_trace_bin_corruption_positioned;
        ] );
      ( "parallel_extract",
        [
          Alcotest.test_case "synth log identity" `Quick
            test_parallel_extract_synth;
          Alcotest.test_case "synth deterministic" `Quick
            test_synth_deterministic;
        ] );
      ( "properties",
        qcheck
          [ prop_windows_no_crash; prop_window_sides_nonempty; prop_log_sorted;
            prop_trace_io_roundtrip; prop_trace_formats_roundtrip;
            prop_extract_matches_reference; prop_parallel_extract_identical ] );
    ]
