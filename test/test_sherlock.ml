(* Tests for the inference core: the LP encoder on synthetic observations,
   the perturber, the multi-round orchestrator, and report scoring. *)

open Sherlock_trace
open Sherlock_core
open Sherlock_sim

let check = Alcotest.check

let ev ?(target = 1) ?(delayed_by = 0) time tid op =
  Event.make ~time ~tid ~op ~target ~delayed_by ()

let mklog events =
  Log.create ~events ~duration:1_000_000 ~threads:4
    ~volatile_addrs:(Hashtbl.create 1)

let obs_of_logs ?(config = Config.default) logs =
  let obs = Observations.create () in
  List.iter
    (fun log ->
      Observations.add_log obs ~near:config.near ~cap:config.window_cap
        ~refine:config.use_refinement log)
    logs;
  obs

let wf = Opid.write ~cls:"C" "f"

let rf = Opid.read ~cls:"C" "f"

(* --- Observations --- *)

let test_observations_merge () =
  let log () = mklog [ ev 10 0 wf; ev 50 1 rf ] in
  let obs = obs_of_logs [ log (); log (); log () ] in
  check Alcotest.int "runs" 3 (Observations.runs obs);
  match Observations.windows obs with
  | [ w ] -> check Alcotest.int "merged weight" 3 w.weight
  | ws -> Alcotest.failf "expected one merged window, got %d" (List.length ws)

let test_observations_race_accumulates () =
  let racy = mklog [ ev 10 0 wf; ev 50 1 wf ] in
  let obs = obs_of_logs [ racy ] in
  check Alcotest.bool "racy pair recorded" true
    (Observations.is_racy_pair obs (wf, wf));
  check Alcotest.int "one race" 1 (List.length (Observations.racy_pairs obs))

let test_observations_avg_occurrence () =
  let log = mklog [ ev 10 0 wf; ev 20 1 rf; ev 30 1 rf ] in
  let obs = obs_of_logs [ log ] in
  (* Window 1 (ends @20): rf x1; window 2 (ends @30): rf x2. *)
  check (Alcotest.float 1e-9) "avg" 1.5 (Observations.avg_occurrence obs rf)

let test_observations_candidate_count () =
  let log = mklog [ ev 10 0 wf; ev 50 1 rf ] in
  let obs = obs_of_logs [ log ] in
  check Alcotest.int "candidates" 2 (Observations.candidate_count obs)

(* --- Encoder --- *)

let solve_logs ?(config = Config.default) logs =
  fst (Encoder.solve config (obs_of_logs ~config logs))

let test_encoder_flag_pair () =
  let log = mklog [ ev 10 0 wf; ev 50 1 rf ] in
  let verdicts = solve_logs [ log ] in
  check Alcotest.bool "write release" true (Verdict.mem wf Verdict.Release verdicts);
  check Alcotest.bool "read acquire" true (Verdict.mem rf Verdict.Acquire verdicts)

let test_encoder_no_protected_infers_nothing () =
  let log = mklog [ ev 10 0 wf; ev 50 1 rf ] in
  let verdicts =
    solve_logs ~config:{ Config.default with use_protected = false } [ log ]
  in
  check Alcotest.int "nothing inferred" 0 (List.length verdicts)

let test_encoder_role_property () =
  (* With the property on, a read can never be a release. *)
  let log = mklog [ ev 10 0 wf; ev 50 1 rf ] in
  let verdicts = solve_logs [ log ] in
  check Alcotest.bool "no read release" false (Verdict.mem rf Verdict.Release verdicts);
  check Alcotest.bool "no write acquire" false (Verdict.mem wf Verdict.Acquire verdicts)

let test_encoder_race_removal () =
  (* A pair observed racing contributes no protected windows. *)
  let racy1 = mklog [ ev 10 0 wf; ev 50 1 wf ] in
  let with_reads = mklog [ ev 10 0 wf; ev 30 1 (Opid.write ~cls:"C" "g") ; ev 50 1 wf ] in
  ignore with_reads;
  let verdicts = solve_logs [ racy1 ] in
  check Alcotest.int "nothing inferred from races" 0 (List.length verdicts)

let test_encoder_blind_write_forces_begin () =
  (* A journal written blindly by both sides right after the blocking
     call: the resulting write/write window's acquire side contains only
     the open frame's Begin, which is therefore forced to 1 — the forcing
     pattern the corpus applications rely on. *)
  let b = Opid.enter ~cls:"C" "Wait" and e = Opid.exit ~cls:"C" "Wait" in
  let wj = Opid.write ~cls:"C" "journal" in
  let mk t0 =
    mklog
      [
        ev ~target:3 (t0 + 5) 0 wj;
        ev t0 1 b;
        ev ~target:3 (t0 + 40) 1 wj;
        ev (t0 + 60) 1 e;
      ]
  in
  let verdicts = solve_logs [ mk 100; mk 1000; mk 5000 ] in
  check Alcotest.bool "blocking begin inferred" true
    (Verdict.mem b Verdict.Acquire verdicts)

let test_encoder_single_role_blocks_double () =
  (* A library API cannot be both Begin-acquire and End-release.  Both
     roles are forced by windows with no alternative candidate: a
     read-then-write pair leaves only the End on the release side, and a
     write/write pair leaves only the Begin on the acquire side. *)
  let cls = "System.Threading.Fancy" in
  let b = Opid.enter ~cls "Upgrade" and e = Opid.exit ~cls "Upgrade" in
  let rj = Opid.read ~cls:"C" "j" and wj = Opid.write ~cls:"C" "j" in
  let rk = Opid.read ~cls:"C" "k" and wk = Opid.write ~cls:"C" "k" in
  let log1 =
    mklog [ ev ~target:3 10 0 rj; ev 20 0 e; ev ~target:3 55 1 rj; ev ~target:3 60 1 wj ]
  in
  let log2 =
    mklog [ ev ~target:4 10 0 wk; ev 50 1 b; ev ~target:4 90 1 wk; ev ~target:4 95 1 rk ]
  in
  ignore rk;
  let config = Config.default in
  let verdicts = solve_logs ~config [ log1; log2 ] in
  let both =
    Verdict.mem b Verdict.Acquire verdicts && Verdict.mem e Verdict.Release verdicts
  in
  check Alcotest.bool "not both roles" false both;
  let verdicts_off =
    solve_logs ~config:{ config with use_single_role = false } [ log1; log2 ]
  in
  let both_off =
    Verdict.mem b Verdict.Acquire verdicts_off
    && Verdict.mem e Verdict.Release verdicts_off
  in
  check Alcotest.bool "both roles without constraint" true both_off

let test_encoder_single_role_soft () =
  (* Same forced double-role scenario as above: the soft variant lets
     both roles survive, paying the penalty instead. *)
  let cls = "System.Threading.Fancy" in
  let b = Opid.enter ~cls "Upgrade" and e = Opid.exit ~cls "Upgrade" in
  let rj = Opid.read ~cls:"C" "j" and wj = Opid.write ~cls:"C" "j" in
  let wk = Opid.write ~cls:"C" "k" and rk = Opid.read ~cls:"C" "k" in
  let log1 =
    mklog [ ev ~target:3 10 0 rj; ev 20 0 e; ev ~target:3 55 1 rj; ev ~target:3 60 1 wj ]
  in
  let log2 =
    mklog [ ev ~target:4 10 0 wk; ev 50 1 b; ev ~target:4 90 1 wk; ev ~target:4 95 1 rk ]
  in
  let verdicts =
    solve_logs ~config:{ Config.default with single_role_soft = true } [ log1; log2 ]
  in
  check Alcotest.bool "both roles under soft constraint" true
    (Verdict.mem b Verdict.Acquire verdicts && Verdict.mem e Verdict.Release verdicts)

let test_encoder_stats () =
  let log = mklog [ ev 10 0 wf; ev 50 1 rf ] in
  let _, stats = Encoder.solve Config.default (obs_of_logs [ log ]) in
  check Alcotest.bool "windows counted" true (stats.num_windows >= 1);
  check Alcotest.bool "vars counted" true (stats.num_vars >= 2);
  check Alcotest.bool "objective finite" true (Float.is_finite stats.objective)

(* --- Perturber --- *)

let test_perturber_plan () =
  let verdicts =
    [
      { Verdict.op = wf; role = Verdict.Release; probability = 1.0 };
      { Verdict.op = rf; role = Verdict.Acquire; probability = 1.0 };
      { Verdict.op = Opid.exit ~cls:"C" "m"; role = Verdict.Release; probability = 1.0 };
    ]
  in
  let plan = Perturber.of_verdicts ~delay_us:100_000 verdicts in
  check Alcotest.int "two delayed ops" 2 (Perturber.size plan);
  check Alcotest.int "write delayed directly" 100_000 (Perturber.delay_before plan wf);
  check Alcotest.int "acquire not delayed" 0 (Perturber.delay_before plan rf);
  (* An End-release delays the method's entry (the whole call). *)
  check Alcotest.int "end delays begin" 100_000
    (Perturber.delay_before plan (Opid.enter ~cls:"C" "m"));
  check Alcotest.int "end itself not delayed" 0
    (Perturber.delay_before plan (Opid.exit ~cls:"C" "m"))

let test_perturber_empty () =
  check Alcotest.int "empty" 0 (Perturber.size Perturber.empty);
  check Alcotest.int "no delay" 0 (Perturber.delay_before Perturber.empty wf)

(* --- Orchestrator on live programs --- *)

let flag_subject () =
  let test () =
    let flag = Heap.cell ~cls:"O.Flag" ~field:"ready" false in
    let data = Heap.cell ~cls:"O.Flag" ~field:"data" 0 in
    let t =
      Threadlib.create ~delegate:("O.Flag", "Setter") (fun () ->
          Runtime.cpu 100 300;
          Heap.write data 5;
          Heap.write flag true)
    in
    Threadlib.start t;
    Heap.spin_until flag (fun b -> b);
    assert (Heap.read data = 5);
    Threadlib.join t
  in
  { Orchestrator.subject_name = "flag"; tests = [ ("flag", test) ] }

let test_orchestrator_rounds () =
  let config = { Config.default with rounds = 3 } in
  let result = Orchestrator.infer ~config (flag_subject ()) in
  check Alcotest.int "three rounds" 3 (List.length result.rounds);
  check Alcotest.int "first round no delays" 0
    (List.hd result.rounds).delayed_ops;
  check Alcotest.bool "flag write inferred" true
    (Verdict.mem (Opid.write ~cls:"O.Flag" "ready") Verdict.Release result.final);
  check Alcotest.bool "flag read inferred" true
    (Verdict.mem (Opid.read ~cls:"O.Flag" "ready") Verdict.Acquire result.final)

let test_orchestrator_deterministic () =
  let r1 = Orchestrator.infer (flag_subject ()) in
  let r2 = Orchestrator.infer (flag_subject ()) in
  check Alcotest.int "same verdict count" (List.length r1.final)
    (List.length r2.final);
  List.iter2
    (fun (a : Verdict.t) (b : Verdict.t) ->
      check Alcotest.bool "same verdicts" true (Verdict.compare a b = 0))
    r1.final r2.final

let test_orchestrator_accumulate_off () =
  let config = { Config.default with accumulate = false } in
  let result = Orchestrator.infer ~config (flag_subject ()) in
  check Alcotest.int "observations from last round only" 1
    (Observations.runs result.observations)

let test_orchestrator_run_test_logs () =
  let logs = Orchestrator.run_test_logs (flag_subject ()) in
  check Alcotest.int "one log per test" 1 (List.length logs);
  check Alcotest.bool "traced" true (Log.length (List.hd logs) > 0)

let test_probabilistic_delays () =
  (* p = 0 means the plan never fires; the runs behave like round 1. *)
  let config = { Config.default with delay_probability = 0.0; rounds = 3 } in
  let result = Orchestrator.infer ~config (flag_subject ()) in
  check Alcotest.bool "still infers the flag" true
    (Verdict.mem (Opid.write ~cls:"O.Flag" "ready") Verdict.Release result.final)

let test_orchestrator_test_seed () =
  check Alcotest.bool "distinct seeds" true
    (Orchestrator.test_seed ~base:1 ~round:1 ~test_index:0
    <> Orchestrator.test_seed ~base:1 ~round:2 ~test_index:0)

let test_orchestrator_parallel_matches_sequential () =
  (* Worker domains run the tests, but the merge is sequential in test
     order, so every verdict — per round and final — must be identical to
     the single-domain path, probabilities included. *)
  List.iter
    (fun app_id ->
      let app = Sherlock_corpus.Registry.find app_id in
      let subject = Sherlock_corpus.App.subject app in
      let base = { Config.default with rounds = 2 } in
      let seq = Orchestrator.infer ~config:{ base with parallelism = 1 } subject in
      let par = Orchestrator.infer ~config:{ base with parallelism = 4 } subject in
      let same_verdicts label a b =
        check Alcotest.int (label ^ ": count") (List.length a) (List.length b);
        List.iter2
          (fun (x : Verdict.t) (y : Verdict.t) ->
            check Alcotest.bool (label ^ ": verdict") true (Verdict.compare x y = 0);
            check (Alcotest.float 0.0) (label ^ ": probability") x.probability
              y.probability)
          a b
      in
      same_verdicts (app_id ^ " final") seq.final par.final;
      List.iter2
        (fun (r1 : Orchestrator.round_result) (r2 : Orchestrator.round_result) ->
          same_verdicts
            (Printf.sprintf "%s round %d" app_id r1.round)
            r1.verdicts r2.verdicts)
        seq.rounds par.rounds)
    [ "App-1"; "App-2" ]

let test_extract_jobs_matches_sequential () =
  (* Sharded window extraction is deterministic, so with extraction
     parallelism on the whole corpus must produce identical verdicts —
     per round and final, probabilities included.  parallelism = 1 keeps
     the test-level parallel path off, which is the (only) configuration
     where the orchestrator enables extraction sharding. *)
  List.iter
    (fun app ->
      let app_id = app.Sherlock_corpus.App.id in
      let subject = Sherlock_corpus.App.subject app in
      let base = { Config.default with rounds = 2; parallelism = 1 } in
      let seq = Orchestrator.infer ~config:{ base with extract_jobs = 1 } subject in
      let par = Orchestrator.infer ~config:{ base with extract_jobs = 4 } subject in
      let same_verdicts label a b =
        check Alcotest.int (label ^ ": count") (List.length a) (List.length b);
        List.iter2
          (fun (x : Verdict.t) (y : Verdict.t) ->
            check Alcotest.bool (label ^ ": verdict") true (Verdict.compare x y = 0);
            check (Alcotest.float 0.0) (label ^ ": probability") x.probability
              y.probability)
          a b
      in
      same_verdicts (app_id ^ " final") seq.final par.final;
      List.iter2
        (fun (r1 : Orchestrator.round_result) (r2 : Orchestrator.round_result) ->
          same_verdicts
            (Printf.sprintf "%s round %d" app_id r1.round)
            r1.verdicts r2.verdicts)
        seq.rounds par.rounds)
    (Sherlock_corpus.Registry.all ())

(* --- Supervised orchestration (fault plans, degraded LP) --- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* The flag test plus two victims that both own a thread with tid 2 — the
   only tid the fault plans below target, so the flag test is provably
   untouched (its world has tids 0 and 1 only). *)
let resilient_subject () =
  let flag_test = List.assoc "flag" (flag_subject ()).tests in
  let pair_test () =
    (* Joins a hung thread: surfaces as Deadlock. *)
    let c = Heap.cell ~cls:"O.Pair" ~field:"n" 0 in
    let mk i =
      Threadlib.create ~delegate:("O.Pair", Printf.sprintf "W%d" i) (fun () ->
          for _ = 1 to 3 do
            Heap.write c (Heap.read c + 1)
          done)
    in
    let t1 = mk 1 and t2 = mk 2 in
    Threadlib.start t1;
    Threadlib.start t2;
    Threadlib.join t1;
    Threadlib.join t2
  in
  let spin_test () =
    (* Spins on a flag set by the hung thread: livelock, surfaces as
       Stalled via the step watchdog. *)
    let done_ = Heap.cell ~cls:"O.Spin" ~field:"done" false in
    let t1 =
      Threadlib.create ~delegate:("O.Spin", "Busy") (fun () -> Runtime.cpu 10 20)
    in
    let t2 =
      Threadlib.create ~delegate:("O.Spin", "Setter") (fun () ->
          Heap.write done_ true)
    in
    Threadlib.start t1;
    Threadlib.start t2;
    Heap.spin_until done_ (fun b -> b);
    Threadlib.join t1;
    Threadlib.join t2
  in
  {
    Orchestrator.subject_name = "resilient";
    tests = [ ("flag", flag_test); ("pair", pair_test); ("spin", spin_test) ];
  }

let hang_tid2_config =
  {
    Config.default with
    fault_plan = Fault.make [ { Fault.tid = 2; op = 1; action = Fault.Hang } ];
    max_steps = 5_000;
    retries = 1;
  }

let find_report name (r : Orchestrator.round_result) =
  List.find
    (fun (rep : Orchestrator.run_report) -> rep.test_name = name)
    r.run_reports

let test_orchestrator_survives_hangs () =
  (* A hang in two of three tests kills neither the round nor the
     inference; the failure classes match the workload shape. *)
  let result = Orchestrator.infer ~config:hang_tid2_config (resilient_subject ()) in
  check Alcotest.int "all rounds ran" Config.default.rounds
    (List.length result.rounds);
  List.iter
    (fun (r : Orchestrator.round_result) ->
      let flag = find_report "flag" r in
      check Alcotest.bool "flag completed" true flag.completed;
      check Alcotest.int "flag untouched" 0 flag.injected;
      check Alcotest.int "flag one attempt" 1 flag.attempts;
      let pair = find_report "pair" r in
      check Alcotest.bool "pair dropped" false pair.completed;
      check Alcotest.int "pair attempts" 2 pair.attempts;
      check Alcotest.bool "pair deadlocked" true
        (List.for_all
           (function Orchestrator.Deadlocked _ -> true | _ -> false)
           pair.failures);
      let spin = find_report "spin" r in
      check Alcotest.bool "spin dropped" false spin.completed;
      check Alcotest.bool "spin stalled" true
        (List.for_all
           (function Orchestrator.Stalled _ -> true | _ -> false)
           spin.failures);
      check Alcotest.int "failed attempts counted" 4
        (Orchestrator.failed_runs r.run_reports);
      check Alcotest.int "two tests lost" 2
        (Orchestrator.incomplete_runs r.run_reports))
    result.rounds;
  check Alcotest.bool "still infers the flag" true
    (Verdict.mem (Opid.write ~cls:"O.Flag" "ready") Verdict.Release result.final)

let test_orchestrator_failures_do_not_leak () =
  (* The dropped tests contribute no observations, and the flag test's
     runs are bitwise identical to the no-fault baseline (its tid-2-keyed
     plan never fires), so the verdicts must equal inferring over the
     flag test alone. *)
  let faulted =
    Orchestrator.infer ~config:hang_tid2_config (resilient_subject ())
  in
  let baseline =
    Orchestrator.infer
      ~config:{ hang_tid2_config with fault_plan = Fault.empty }
      (flag_subject ())
  in
  check Alcotest.int "same verdict count" (List.length baseline.final)
    (List.length faulted.final);
  List.iter2
    (fun (a : Verdict.t) (b : Verdict.t) ->
      check Alcotest.bool "same verdict" true (Verdict.compare a b = 0);
      check (Alcotest.float 0.0) "same probability" a.probability b.probability)
    baseline.final faulted.final

let test_orchestrator_injected_crash_reported () =
  let config =
    {
      Config.default with
      rounds = 1;
      retries = 1;
      fault_plan = Fault.make [ { Fault.tid = 1; op = 1; action = Fault.Crash } ];
    }
  in
  let result = Orchestrator.infer ~config (flag_subject ()) in
  match result.rounds with
  | [ r ] ->
    let rep = find_report "flag" r in
    check Alcotest.bool "dropped" false rep.completed;
    check Alcotest.bool "fault fired every attempt" true (rep.injected >= 2);
    check Alcotest.bool "reported as injected crash" true
      (List.for_all
         (function
           | Orchestrator.Crashed msg ->
             (* The message pinpoints the injected site. *)
             contains msg "tid 1" && contains msg "injected"
           | _ -> false)
         rep.failures);
    check Alcotest.int "no verdicts from nothing" 0 (List.length r.verdicts)
  | rs -> Alcotest.failf "expected one round, got %d" (List.length rs)

let with_lp_fault status f =
  Sherlock_lp.Problem.set_fault (Some status);
  Fun.protect ~finally:(fun () -> Sherlock_lp.Problem.set_fault None) f

let test_encoder_degrades_on_infeasible_lp () =
  let log = mklog [ ev 10 0 wf; ev 50 1 rf ] in
  let obs = obs_of_logs [ log ] in
  let healthy, healthy_stats = Encoder.solve Config.default obs in
  check Alcotest.bool "healthy solve not degraded" false healthy_stats.degraded;
  check Alcotest.bool "healthy solve infers" true (healthy <> []);
  List.iter
    (fun status ->
      with_lp_fault status (fun () ->
          (* With previous verdicts: returns them, flagged degraded. *)
          let vs, stats = Encoder.solve ~previous:healthy Config.default obs in
          check Alcotest.bool "degraded" true stats.degraded;
          check Alcotest.bool "objective is nan" true (Float.is_nan stats.objective);
          check Alcotest.int "previous verdicts kept" (List.length healthy)
            (List.length vs);
          List.iter2
            (fun (a : Verdict.t) (b : Verdict.t) ->
              check Alcotest.bool "same verdict" true (Verdict.compare a b = 0))
            healthy vs;
          (* Without previous verdicts: empty, still no exception. *)
          let vs0, stats0 = Encoder.solve Config.default obs in
          check Alcotest.bool "degraded too" true stats0.degraded;
          check Alcotest.int "nothing to fall back on" 0 (List.length vs0)))
    [
      Sherlock_lp.Problem.Infeasible; Sherlock_lp.Problem.Unbounded;
      Sherlock_lp.Problem.Aborted;
    ]

(* Satellite of the pivot-cap fix: a *real* iteration-limit abort (not
   an injected fault) must come back as a degraded round carrying the
   previous verdicts, and the encoder must recover as soon as the cap
   lifts. *)
let test_encoder_degrades_on_pivot_cap () =
  let log = mklog [ ev 10 0 wf; ev 50 1 rf ] in
  let obs = obs_of_logs [ log ] in
  let healthy, healthy_stats = Encoder.solve Config.default obs in
  check Alcotest.bool "healthy solve infers" true (healthy <> []);
  check Alcotest.bool "healthy not degraded" false healthy_stats.degraded;
  Fun.protect
    ~finally:(fun () ->
      Sherlock_lp.Simplex.set_pivot_limit Sherlock_lp.Simplex.default_pivot_limit)
    (fun () ->
      Sherlock_lp.Simplex.set_pivot_limit 1;
      let vs, stats = Encoder.solve ~previous:healthy Config.default obs in
      check Alcotest.bool "degraded under the pivot cap" true stats.degraded;
      check Alcotest.bool "objective is nan" true (Float.is_nan stats.objective);
      check Alcotest.int "previous verdicts kept" (List.length healthy)
        (List.length vs);
      List.iter2
        (fun (a : Verdict.t) (b : Verdict.t) ->
          check Alcotest.bool "same verdict" true (Verdict.compare a b = 0))
        healthy vs);
  let again, astats = Encoder.solve ~previous:healthy Config.default obs in
  check Alcotest.bool "recovers once the cap lifts" false astats.degraded;
  check Alcotest.int "verdicts restored" (List.length healthy) (List.length again)

(* A degraded round must not poison the reusable warm-start state: the
   next healthy solve on the same state reproduces the healthy verdicts. *)
let test_warm_state_survives_degraded_solve () =
  let log = mklog [ ev 10 0 wf; ev 50 1 rf ] in
  let obs = obs_of_logs [ log ] in
  let state = Encoder.create_state () in
  let healthy, hstats = Encoder.solve ~state Config.default obs in
  check Alcotest.bool "healthy warm solve" false hstats.degraded;
  with_lp_fault Sherlock_lp.Problem.Infeasible (fun () ->
      let vs, stats = Encoder.solve ~state ~previous:healthy Config.default obs in
      check Alcotest.bool "degraded under fault" true stats.degraded;
      check Alcotest.int "previous carried" (List.length healthy) (List.length vs));
  let again, astats = Encoder.solve ~state ~previous:healthy Config.default obs in
  check Alcotest.bool "recovered" false astats.degraded;
  check Alcotest.int "same verdict count" (List.length healthy) (List.length again);
  List.iter2
    (fun (a : Verdict.t) (b : Verdict.t) ->
      check Alcotest.bool "same verdict" true (Verdict.compare a b = 0))
    healthy again

let test_orchestrator_survives_infeasible_lp () =
  (* Every round's LP degrades; the inference still completes all rounds
     and simply carries the (empty) previous verdicts forward. *)
  with_lp_fault Sherlock_lp.Problem.Infeasible (fun () ->
      let result = Orchestrator.infer (flag_subject ()) in
      check Alcotest.int "all rounds ran" Config.default.rounds
        (List.length result.rounds);
      List.iter
        (fun (r : Orchestrator.round_result) ->
          check Alcotest.bool "round degraded" true r.stats.degraded)
        result.rounds;
      check Alcotest.int "no verdicts" 0 (List.length result.final))

(* --- Report / ground truth --- *)

let truth =
  let open Ground_truth in
  {
    syncs = [ entry wf Verdict.Release "w"; entry rf Verdict.Acquire "r" ];
    racy_fields = [ "C::racy" ];
    error_scope = [ "C.Hidden" ];
    field_guard = [ ("C::guarded", Dispose) ];
  }

let v op role = { Verdict.op; role; probability = 1.0 }

let test_report_classify () =
  let verdicts =
    [
      v wf Verdict.Release;
      v (Opid.read ~cls:"C" "racy") Verdict.Acquire;
      v (Opid.write ~cls:"C.Hidden" "x") Verdict.Release;
      v (Opid.read ~cls:"C" "other") Verdict.Acquire;
    ]
  in
  let r = Report.classify truth verdicts in
  check Alcotest.int "correct" 1 (Report.num_correct r);
  check Alcotest.int "racy" 1 (Report.count r Report.Data_racy);
  check Alcotest.int "instr" 1 (Report.count r Report.Instr_error);
  check Alcotest.int "notsync" 1 (Report.count r Report.Not_sync);
  check Alcotest.int "missed" 1 (List.length r.missed);
  check (Alcotest.float 1e-9) "precision" 0.25 (Report.precision r)

(* Regression: zero inferred verdicts used to render [precision]'s nan as
   "nan%"; the string form must say "n/a" instead. *)
let test_precision_string () =
  let empty = Report.classify truth [] in
  check Alcotest.bool "precision is nan" true (Float.is_nan (Report.precision empty));
  check Alcotest.string "empty renders n/a" "n/a" (Report.precision_string empty);
  let quarter =
    Report.classify truth
      [
        v wf Verdict.Release;
        v (Opid.read ~cls:"C" "racy") Verdict.Acquire;
        v (Opid.write ~cls:"C.Hidden" "x") Verdict.Release;
        v (Opid.read ~cls:"C" "other") Verdict.Acquire;
      ]
  in
  check Alcotest.string "1/4 renders 25%" "25%" (Report.precision_string quarter)

let test_report_role_mismatch_not_correct () =
  let r = Report.classify truth [ v wf Verdict.Acquire ] in
  check Alcotest.int "wrong role not correct" 0 (Report.num_correct r)

let test_fp_causes () =
  let cause op =
    Ground_truth.cause_name (Report.false_positive_cause truth (v op Verdict.Release))
  in
  check Alcotest.string "instr" "Instr. Errors" (cause (Opid.write ~cls:"C.Hidden" "x"));
  check Alcotest.string "double role" "Double Roles"
    (cause (Opid.exit ~cls:"X" "UpgradeToWriterLock"));
  check Alcotest.string "dispose" "Dispose" (cause (Opid.enter ~cls:"X" "Finalize"));
  check Alcotest.string "static" "Static Ctr." (cause (Opid.exit ~cls:"X" ".cctor"));
  check Alcotest.string "other" "Others" (cause (Opid.write ~cls:"X" "y"))

let test_guard_cause () =
  check Alcotest.string "guarded field" "Dispose"
    (Ground_truth.cause_name (Ground_truth.guard_cause truth "C::guarded"));
  check Alcotest.string "unknown field" "Others"
    (Ground_truth.cause_name (Ground_truth.guard_cause truth "C::zzz"))

(* --- Config / verdict --- *)

let test_config_defaults () =
  let c = Config.default in
  check (Alcotest.float 1e-9) "lambda" 0.2 c.lambda;
  check Alcotest.int "near 1s" 1_000_000 c.near;
  check Alcotest.int "cap" 15 c.window_cap;
  check Alcotest.int "delay 100ms" 100_000 c.delay_us;
  check Alcotest.int "rounds" 3 c.rounds

let test_verdict_helpers () =
  let vs = [ v wf Verdict.Release; v rf Verdict.Acquire ] in
  check Alcotest.int "releases" 1 (List.length (Verdict.releases vs));
  check Alcotest.int "acquires" 1 (List.length (Verdict.acquires vs));
  check Alcotest.bool "mem" true (Verdict.mem wf Verdict.Release vs);
  check Alcotest.bool "not mem" false (Verdict.mem wf Verdict.Acquire vs)

(* --- Properties --- *)

let prop_verdicts_respect_threshold =
  QCheck.Test.make ~name:"verdict probabilities reach the threshold" ~count:50
    QCheck.(int_range 0 1000)
    (fun seed ->
      let log =
        mklog [ ev 10 0 wf; ev (50 + (seed mod 40)) 1 rf ]
      in
      let verdicts = solve_logs [ log ] in
      List.for_all (fun (v : Verdict.t) -> v.probability >= Config.default.threshold)
        verdicts)

let prop_roles_respect_property =
  QCheck.Test.make ~name:"role property always respected" ~count:50
    QCheck.(int_range 0 1000)
    (fun salt ->
      let wg = Opid.write ~cls:"C" (Printf.sprintf "g%d" (salt mod 3)) in
      let rg = Opid.read ~cls:"C" (Printf.sprintf "g%d" (salt mod 3)) in
      let log = mklog [ ev ~target:2 10 0 wg; ev ~target:2 60 1 rg ] in
      let verdicts = solve_logs [ log ] in
      List.for_all
        (fun (v : Verdict.t) ->
          match (v.op.kind, v.role) with
          | (Opid.Read | Opid.Begin), Verdict.Acquire -> true
          | (Opid.Write | Opid.End), Verdict.Release -> true
          | _ -> false)
        verdicts)

(* --- hygiene: fault paths log structurally --- *)

(* The orchestrator's failure handling (retries, drops, degradation,
   LP aborts) must report through Sherlock_telemetry.Log, not ad-hoc
   stderr prints.  Scan the library sources for [eprintf]; skipped when
   the sources aren't visible from the test's working directory. *)
let test_no_eprintf_in_sherlock () =
  let candidates = [ "../lib/sherlock"; "lib/sherlock"; "../../lib/sherlock" ] in
  match List.find_opt Sys.file_exists candidates with
  | None -> ()
  | Some dir ->
    let contains_eprintf path =
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      let needle = "eprintf" in
      let nl = String.length needle and sl = String.length s in
      let rec go i =
        i + nl <= sl && (String.sub s i nl = needle || go (i + 1))
      in
      go 0
    in
    Array.iter
      (fun f ->
        if Filename.check_suffix f ".ml" && contains_eprintf (Filename.concat dir f)
        then
          Alcotest.failf
            "%s/%s uses eprintf; fault paths must emit structured events via \
             Sherlock_telemetry.Log"
            dir f)
      (Sys.readdir dir)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "sherlock"
    [
      ( "observations",
        [
          Alcotest.test_case "merge identical windows" `Quick test_observations_merge;
          Alcotest.test_case "races accumulate" `Quick test_observations_race_accumulates;
          Alcotest.test_case "avg occurrence" `Quick test_observations_avg_occurrence;
          Alcotest.test_case "candidate count" `Quick test_observations_candidate_count;
        ] );
      ( "encoder",
        [
          Alcotest.test_case "flag pair" `Quick test_encoder_flag_pair;
          Alcotest.test_case "no protected => nothing" `Quick
            test_encoder_no_protected_infers_nothing;
          Alcotest.test_case "role property" `Quick test_encoder_role_property;
          Alcotest.test_case "race removal" `Quick test_encoder_race_removal;
          Alcotest.test_case "blind write forces begin" `Quick
            test_encoder_blind_write_forces_begin;
          Alcotest.test_case "single role" `Quick test_encoder_single_role_blocks_double;
          Alcotest.test_case "single role soft" `Quick test_encoder_single_role_soft;
          Alcotest.test_case "stats" `Quick test_encoder_stats;
        ] );
      ( "perturber",
        [
          Alcotest.test_case "plan" `Quick test_perturber_plan;
          Alcotest.test_case "empty" `Quick test_perturber_empty;
        ] );
      ( "orchestrator",
        [
          Alcotest.test_case "rounds" `Quick test_orchestrator_rounds;
          Alcotest.test_case "deterministic" `Quick test_orchestrator_deterministic;
          Alcotest.test_case "accumulate off" `Quick test_orchestrator_accumulate_off;
          Alcotest.test_case "run_test_logs" `Quick test_orchestrator_run_test_logs;
          Alcotest.test_case "test seeds" `Quick test_orchestrator_test_seed;
          Alcotest.test_case "extract jobs match sequential" `Slow
            test_extract_jobs_matches_sequential;
          Alcotest.test_case "parallel matches sequential" `Quick
            test_orchestrator_parallel_matches_sequential;
          Alcotest.test_case "probabilistic delays" `Quick test_probabilistic_delays;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "survives hangs" `Quick test_orchestrator_survives_hangs;
          Alcotest.test_case "failures don't leak into verdicts" `Quick
            test_orchestrator_failures_do_not_leak;
          Alcotest.test_case "injected crash reported" `Quick
            test_orchestrator_injected_crash_reported;
          Alcotest.test_case "encoder degrades on infeasible LP" `Quick
            test_encoder_degrades_on_infeasible_lp;
          Alcotest.test_case "encoder degrades on pivot cap" `Quick
            test_encoder_degrades_on_pivot_cap;
          Alcotest.test_case "inference survives infeasible LP" `Quick
            test_orchestrator_survives_infeasible_lp;
          Alcotest.test_case "warm state survives degraded solve" `Quick
            test_warm_state_survives_degraded_solve;
        ] );
      ( "report",
        [
          Alcotest.test_case "classify" `Quick test_report_classify;
          Alcotest.test_case "precision string" `Quick test_precision_string;
          Alcotest.test_case "role mismatch" `Quick test_report_role_mismatch_not_correct;
          Alcotest.test_case "fp causes" `Quick test_fp_causes;
          Alcotest.test_case "guard causes" `Quick test_guard_cause;
        ] );
      ( "config",
        [
          Alcotest.test_case "defaults" `Quick test_config_defaults;
          Alcotest.test_case "verdict helpers" `Quick test_verdict_helpers;
        ] );
      ( "hygiene",
        [
          Alcotest.test_case "no eprintf in lib/sherlock" `Quick
            test_no_eprintf_in_sherlock;
        ] );
      ("properties", qcheck [ prop_verdicts_respect_threshold; prop_roles_respect_property ]);
    ]
