(* Tests for the FastTrack race detector: vector clocks, the two sync
   models, and the detector on hand-built traces. *)

open Sherlock_trace
open Sherlock_fasttrack
module Verdict = Sherlock_core.Verdict

let check = Alcotest.check

let ev ?(target = 1) time tid op = Event.make ~time ~tid ~op ~target ()

let mklog ?(volatiles = []) events =
  let tbl = Hashtbl.create 4 in
  List.iter (fun a -> Hashtbl.replace tbl a ()) volatiles;
  Log.create ~events ~duration:1_000_000 ~threads:4 ~volatile_addrs:tbl

let wf = Opid.write ~cls:"C" "f"

let rf = Opid.read ~cls:"C" "f"

let no_model = { Sync_model.name = "none"; classify = (fun _ -> Sync_model.No_sync) }

(* --- Vc --- *)

let test_vc_basics () =
  let a = Vc.create 3 in
  Vc.inc a 1;
  check Alcotest.int "get" 1 (Vc.get a 1);
  check Alcotest.int "other" 0 (Vc.get a 0);
  let b = Vc.copy a in
  Vc.inc b 1;
  check Alcotest.bool "a <= b" true (Vc.leq a b);
  check Alcotest.bool "b <= a fails" false (Vc.leq b a)

let test_vc_join () =
  let a = Vc.create 3 and b = Vc.create 3 in
  Vc.inc a 0;
  Vc.inc b 1;
  Vc.join a b;
  check Alcotest.int "kept own" 1 (Vc.get a 0);
  check Alcotest.int "took other" 1 (Vc.get a 1)

let test_vc_epoch () =
  let c = Vc.create 3 in
  Vc.inc c 2;
  Vc.inc c 2;
  check Alcotest.bool "epoch below" true (Vc.epoch_leq ~tid:2 ~clock:2 c);
  check Alcotest.bool "epoch above" false (Vc.epoch_leq ~tid:2 ~clock:3 c)

let prop_vc_join_upper_bound =
  QCheck.Test.make ~name:"join is an upper bound" ~count:200
    QCheck.(pair (list_of_size (QCheck.Gen.return 4) (int_range 0 10))
              (list_of_size (QCheck.Gen.return 4) (int_range 0 10)))
    (fun (xs, ys) ->
      let a = Vc.create 4 and b = Vc.create 4 in
      List.iteri (fun i v -> for _ = 1 to v do Vc.inc a i done) xs;
      List.iteri (fun i v -> for _ = 1 to v do Vc.inc b i done) ys;
      let j = Vc.copy a in
      Vc.join j b;
      Vc.leq a j && Vc.leq b j)

let prop_vc_leq_reflexive =
  QCheck.Test.make ~name:"leq reflexive" ~count:100
    QCheck.(list_of_size (QCheck.Gen.return 4) (int_range 0 10))
    (fun xs ->
      let a = Vc.create 4 in
      List.iteri (fun i v -> for _ = 1 to v do Vc.inc a i done) xs;
      Vc.leq a a)

(* --- Detector without synchronization --- *)

let test_detector_write_read_race () =
  let log = mklog [ ev 10 0 wf; ev 50 1 rf ] in
  let report = Detector.run no_model log in
  check Alcotest.int "one race" 1 (List.length report.races);
  check Alcotest.string "field" "C::f" (List.hd report.races).field

let test_detector_write_write_race () =
  let log = mklog [ ev 10 0 wf; ev 50 1 wf ] in
  let report = Detector.run no_model log in
  check Alcotest.int "one race" 1 (List.length report.races)

let test_detector_read_write_race () =
  let log = mklog [ ev 10 0 rf; ev 50 1 wf ] in
  let report = Detector.run no_model log in
  check Alcotest.int "read-write race" 1 (List.length report.races)

let test_detector_same_thread_no_race () =
  let log = mklog [ ev 10 0 wf; ev 50 0 rf; ev 60 0 wf ] in
  let report = Detector.run no_model log in
  check Alcotest.int "no race" 0 (List.length report.races)

let test_detector_read_read_no_race () =
  let log = mklog [ ev 10 0 rf; ev 50 1 rf ] in
  let report = Detector.run no_model log in
  check Alcotest.int "no race" 0 (List.length report.races)

let test_detector_dedup_by_field () =
  let log = mklog [ ev 10 0 wf; ev 50 1 rf; ev 60 1 rf; ev 70 1 wf ] in
  let report = Detector.run no_model log in
  check Alcotest.int "deduplicated" 1 (List.length report.races)

let test_detector_first_race () =
  let wg = Opid.write ~cls:"C" "g" in
  let log = mklog [ ev 10 0 wf; ev 50 1 wf; ev ~target:2 60 0 wg; ev ~target:2 80 1 wg ] in
  let report = Detector.run no_model log in
  check Alcotest.int "two races" 2 (List.length report.races);
  match Detector.first_race report with
  | Some r -> check Alcotest.string "first is f" "C::f" r.field
  | None -> Alcotest.fail "expected a race"

(* --- Detector with inferred syncs --- *)

let flag_verdicts =
  [
    { Verdict.op = wf; role = Verdict.Release; probability = 1.0 };
    { Verdict.op = rf; role = Verdict.Acquire; probability = 1.0 };
  ]

let test_detector_flag_sync_orders () =
  let wg = Opid.write ~cls:"C" "g" and rg = Opid.read ~cls:"C" "g" in
  (* g is published before the flag write and read after the flag read. *)
  let log =
    mklog [ ev ~target:2 10 0 wg; ev 20 0 wf; ev 50 1 rf; ev ~target:2 60 1 rg ]
  in
  let report = Detector.run (Sync_model.inferred flag_verdicts) log in
  check Alcotest.int "no race (flag orders g)" 0 (List.length report.races)

let test_detector_sync_accesses_exempt () =
  (* The flag accesses themselves are not race-checked. *)
  let log = mklog [ ev 10 0 wf; ev 50 1 rf ] in
  let report = Detector.run (Sync_model.inferred flag_verdicts) log in
  check Alcotest.int "no race on the flag" 0 (List.length report.races);
  check Alcotest.int "nothing checked" 0 report.checked_accesses

let test_detector_method_sync () =
  (* End-of-method release with object channel, Begin-of-method acquire. *)
  let rel = Opid.exit ~cls:"C" "Send" and acq = Opid.enter ~cls:"C" "Recv" in
  let verdicts =
    [
      { Verdict.op = rel; role = Verdict.Release; probability = 1.0 };
      { Verdict.op = acq; role = Verdict.Acquire; probability = 1.0 };
    ]
  in
  let wg = Opid.write ~cls:"C" "g" and rg = Opid.read ~cls:"C" "g" in
  let log =
    mklog
      [
        ev ~target:2 10 0 wg;
        ev ~target:7 20 0 (Opid.enter ~cls:"C" "Send");
        ev ~target:7 30 0 rel;
        ev ~target:7 50 1 acq;
        ev ~target:2 60 1 rg;
        ev ~target:7 70 1 (Opid.exit ~cls:"C" "Recv");
      ]
  in
  let report = Detector.run (Sync_model.inferred verdicts) log in
  check Alcotest.int "method sync orders g" 0 (List.length report.races)

let test_detector_blocking_acquire_lazy_join () =
  (* The acquire Begin precedes the release in the trace; the join must
     still take effect for accesses inside the open frame. *)
  let rel = Opid.exit ~cls:"C" "Init" and acq = Opid.enter ~cls:"C" "Use" in
  let verdicts =
    [
      { Verdict.op = rel; role = Verdict.Release; probability = 1.0 };
      { Verdict.op = acq; role = Verdict.Acquire; probability = 1.0 };
    ]
  in
  let wg = Opid.write ~cls:"C" "g" and rg = Opid.read ~cls:"C" "g" in
  let log =
    mklog
      [
        ev ~target:0 5 1 acq; (* invoked before the release, class channel *)
        ev ~target:2 10 0 wg;
        ev ~target:0 20 0 (Opid.enter ~cls:"C" "Init");
        ev ~target:0 30 0 rel;
        ev ~target:2 60 1 rg; (* inside the still-open Use frame *)
        ev ~target:0 70 1 (Opid.exit ~cls:"C" "Use");
      ]
  in
  let report = Detector.run (Sync_model.inferred verdicts) log in
  check Alcotest.int "lazy join orders g" 0 (List.length report.races)

(* --- Manual model --- *)

let test_manual_volatile () =
  (* The data write precedes the volatile flag write, release-style. *)
  let log =
    mklog ~volatiles:[ 1 ]
      [ ev ~target:2 5 0 (Opid.write ~cls:"C" "g"); ev 10 0 wf; ev 50 1 rf;
        ev ~target:2 60 1 (Opid.read ~cls:"C" "g") ]
  in
  let report = Detector.run (Sync_model.manual log) log in
  check Alcotest.int "volatile flag orders g" 0 (List.length report.races)

let test_manual_misses_task () =
  (* A non-volatile flag published before a task-style handoff: the manual
     list has no idea, so it reports a race. *)
  let log =
    mklog
      [
        ev ~target:2 10 0 (Opid.write ~cls:"C" "g");
        ev ~target:9 20 0 (Opid.exit ~cls:"System.Threading.Tasks.TaskFactory" "StartNew");
        ev ~target:2 60 1 (Opid.read ~cls:"C" "g");
      ]
  in
  let report = Detector.run (Sync_model.manual log) log in
  check Alcotest.int "false race" 1 (List.length report.races)

let test_manual_monitor () =
  let enter t tid = [
    ev ~target:9 t tid (Opid.enter ~cls:"System.Threading.Monitor" "Enter");
    ev ~target:9 (t + 2) tid (Opid.exit ~cls:"System.Threading.Monitor" "Enter") ]
  and exit t tid = [
    ev ~target:9 t tid (Opid.enter ~cls:"System.Threading.Monitor" "Exit");
    ev ~target:9 (t + 2) tid (Opid.exit ~cls:"System.Threading.Monitor" "Exit") ]
  in
  let log =
    mklog
      (enter 10 0
      @ [ ev ~target:2 15 0 (Opid.write ~cls:"C" "g") ]
      @ exit 20 0 @ enter 50 1
      @ [ ev ~target:2 55 1 (Opid.read ~cls:"C" "g") ]
      @ exit 60 1)
  in
  let report = Detector.run (Sync_model.manual log) log in
  check Alcotest.int "monitor orders g" 0 (List.length report.races)

let test_channels_of_event () =
  let access = ev ~target:5 1 0 rf in
  check Alcotest.int "access: target only" 1
    (List.length (Sync_model.channels_of_event access));
  let meth = ev ~target:5 1 0 (Opid.enter ~cls:"C" "m") in
  check Alcotest.int "method: target + class" 2
    (List.length (Sync_model.channels_of_event meth));
  let set = ev ~target:5 1 0 (Opid.exit ~cls:"System.Threading.EventWaitHandle" "Set") in
  check Alcotest.int "event handle: + base class" 3
    (List.length (Sync_model.channels_of_event set))

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "fasttrack"
    [
      ( "vc",
        [
          Alcotest.test_case "basics" `Quick test_vc_basics;
          Alcotest.test_case "join" `Quick test_vc_join;
          Alcotest.test_case "epoch" `Quick test_vc_epoch;
        ] );
      ( "detector",
        [
          Alcotest.test_case "write/read race" `Quick test_detector_write_read_race;
          Alcotest.test_case "write/write race" `Quick test_detector_write_write_race;
          Alcotest.test_case "read/write race" `Quick test_detector_read_write_race;
          Alcotest.test_case "same thread ok" `Quick test_detector_same_thread_no_race;
          Alcotest.test_case "read/read ok" `Quick test_detector_read_read_no_race;
          Alcotest.test_case "dedup by field" `Quick test_detector_dedup_by_field;
          Alcotest.test_case "first race" `Quick test_detector_first_race;
        ] );
      ( "inferred model",
        [
          Alcotest.test_case "flag orders" `Quick test_detector_flag_sync_orders;
          Alcotest.test_case "sync accesses exempt" `Quick
            test_detector_sync_accesses_exempt;
          Alcotest.test_case "method sync" `Quick test_detector_method_sync;
          Alcotest.test_case "blocking acquire lazy join" `Quick
            test_detector_blocking_acquire_lazy_join;
        ] );
      ( "manual model",
        [
          Alcotest.test_case "volatile" `Quick test_manual_volatile;
          Alcotest.test_case "misses tasks" `Quick test_manual_misses_task;
          Alcotest.test_case "monitor" `Quick test_manual_monitor;
          Alcotest.test_case "channels" `Quick test_channels_of_event;
        ] );
      ("properties", qcheck [ prop_vc_join_upper_bound; prop_vc_leq_reflexive ]);
    ]
