(* Tests for the benchmark corpus: every application's unit tests must run
   to completion in the simulator (assertions inside them check their own
   functional behaviour), traces must be non-trivial, and inference on
   each app must reach paper-shaped quality levels. *)

open Sherlock_core
open Sherlock_corpus
open Sherlock_sim

let check = Alcotest.check

let apps = Registry.all ()

let test_registry_complete () =
  check Alcotest.int "eight applications" 8 (List.length apps);
  List.iteri
    (fun i (a : App.t) ->
      check Alcotest.string "ids in order" (Printf.sprintf "App-%d" (i + 1)) a.id)
    apps

let test_registry_find () =
  check Alcotest.string "by id" "RestSharp" (Registry.find "App-6").name;
  check Alcotest.string "by name" "App-6" (Registry.find "restsharp").id;
  Alcotest.check_raises "unknown" Not_found (fun () -> ignore (Registry.find "nope"))

let test_metadata_sane () =
  List.iter
    (fun (a : App.t) ->
      check Alcotest.bool (a.id ^ " has tests") true (List.length a.tests > 0);
      check Alcotest.bool (a.id ^ " has truth") true
        (List.length a.truth.syncs > 0);
      check Alcotest.bool (a.id ^ " loc positive") true (a.loc > 0))
    apps

(* Every unit test must complete under several seeds without deadlock or
   assertion failure — the corpus is also a stress test of the simulator. *)
let test_all_tests_run () =
  List.iter
    (fun (a : App.t) ->
      List.iter
        (fun (name, body) ->
          List.iter
            (fun seed ->
              try ignore (Runtime.run ~seed ~instrument:(Runtime.tracing ()) body)
              with e ->
                Alcotest.failf "%s/%s seed %d raised %s" a.id name seed
                  (Printexc.to_string e))
            [ 1; 7; 1234 ])
        a.tests)
    apps

let test_traces_nontrivial () =
  List.iter
    (fun (a : App.t) ->
      let logs = Orchestrator.run_test_logs (App.subject a) in
      List.iter
        (fun (log : Sherlock_trace.Log.t) ->
          check Alcotest.bool (a.id ^ " events") true (Sherlock_trace.Log.length log > 5);
          check Alcotest.bool (a.id ^ " multithreaded") true (log.threads >= 2))
        logs)
    apps

let test_workload_helpers () =
  ignore
    (Runtime.run (fun () ->
         let c = Heap.cell ~cls:"W.C" ~field:"x" 3 in
         check Alcotest.int "poll returns value" 3 (Workload.poll c 4);
         Workload.chores ~cls:"W.C" 3;
         Heap.poke c 9;
         Workload.await_untraced c (fun v -> v = 9)))

let test_chores_are_low_variance () =
  let log =
    Runtime.run ~instrument:(Runtime.tracing ()) (fun () ->
        Workload.chores ~cls:"W.C" 8)
  in
  let d = Sherlock_trace.Durations.create () in
  Sherlock_trace.Durations.record_log d log;
  let cv = Sherlock_trace.Durations.cv d "W.C::FormatValue" in
  check Alcotest.bool "near constant" true (cv < 0.5)

(* Inference quality gates, intentionally loose: the exact counts are
   recorded in EXPERIMENTS.md; these guard against wholesale regressions. *)
let infer_app (a : App.t) =
  let result = Orchestrator.infer (App.subject a) in
  Report.classify a.truth result.final

let test_inference_quality () =
  let total_inferred = ref 0 and total_correct = ref 0 in
  List.iter
    (fun (a : App.t) ->
      let r = infer_app a in
      total_inferred := !total_inferred + Report.num_inferred r;
      total_correct := !total_correct + Report.num_correct r;
      check Alcotest.bool (a.id ^ " infers something") true (Report.num_inferred r > 3);
      (* Data-racy and instrumentation-error misclassifications are part of
         the corpus design (paper Table 2); plain false positives must not
         dominate the true synchronizations. *)
      check Alcotest.bool (a.id ^ " correct dominates plain FPs") true
        (Report.num_correct r >= Report.count r Report.Not_sync))
    apps;
  let precision = float !total_correct /. float !total_inferred in
  check Alcotest.bool "overall precision ~paper" true (precision >= 0.6);
  check Alcotest.bool "overall scale" true (!total_correct >= 60)

let test_designed_misclassifications () =
  (* App-1 carries the corpus's instrumentation-error design; App-1/7 carry
     data races; App-5 the Dispose misses. *)
  let r1 = infer_app (Registry.find "App-1") in
  check Alcotest.bool "App-1 data-racy" true (Report.count r1 Report.Data_racy >= 1);
  let r5 = infer_app (Registry.find "App-5") in
  let dispose_misses =
    List.filter
      (fun (e : Ground_truth.entry) -> e.category = Ground_truth.Dispose)
      r5.missed
  in
  check Alcotest.bool "App-5 dispose misses" true (List.length dispose_misses >= 2)

let test_racy_apps_declare_races () =
  List.iter
    (fun id ->
      let a = Registry.find id in
      check Alcotest.bool (id ^ " declares races") true
        (List.length a.truth.racy_fields > 0))
    [ "App-1"; "App-3"; "App-5"; "App-6"; "App-7" ]

let test_unsafe_api_flags () =
  check Alcotest.bool "App-6 unsafe" true (Registry.find "App-6").uses_unsafe_apis;
  check Alcotest.bool "App-7 unsafe" true (Registry.find "App-7").uses_unsafe_apis;
  check Alcotest.bool "App-2 safe" false (Registry.find "App-2").uses_unsafe_apis

(* Warm starts and the sparse engine are pure optimizations: every app
   must produce the identical verdict list (down to probabilities) with
   warm starts on vs off and with the sparse vs the seed dense engine.
   Compared in printed form — structural equality would be fooled by
   last-bit float differences that the renderer rounds away. *)
let show_verdicts vs =
  String.concat ";" (List.map (fun v -> Format.asprintf "%a" Verdict.pp v) vs)

let test_lp_paths_equivalent () =
  List.iter
    (fun (a : App.t) ->
      let final config = (Orchestrator.infer ~config (App.subject a)).final in
      let warm = final Config.default in
      let cold = final { Config.default with use_warm_start = false } in
      let dense =
        final
          {
            Config.default with
            use_warm_start = false;
            lp_engine = Sherlock_lp.Problem.Dense;
          }
      in
      check Alcotest.string (a.id ^ " warm = cold") (show_verdicts cold)
        (show_verdicts warm);
      check Alcotest.string (a.id ^ " sparse = dense") (show_verdicts dense)
        (show_verdicts cold))
    apps

(* The ≥2x corpus-wide pivot reduction is gated in the bench ("lp"
   section); here just assert the warm path actually reuses bases and
   pivots strictly less on a single app. *)
let test_warm_start_saves_pivots () =
  let stats config =
    let r = Orchestrator.infer ~config (Registry.find "App-1" |> App.subject) in
    List.fold_left
      (fun (p, s) (round : Orchestrator.round_result) ->
        (p + round.stats.lp.lp_pivots, s + round.stats.lp.lp_pivots_saved))
      (0, 0) r.rounds
  in
  let warm, saved = stats Config.default in
  let cold, _ = stats { Config.default with use_warm_start = false } in
  check Alcotest.bool
    (Printf.sprintf "warm pivots %d fewer than cold %d" warm cold)
    true (warm < cold);
  check Alcotest.bool "bases reused" true (saved > 0)

let () =
  Alcotest.run "corpus"
    [
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick test_registry_complete;
          Alcotest.test_case "find" `Quick test_registry_find;
          Alcotest.test_case "metadata" `Quick test_metadata_sane;
        ] );
      ( "execution",
        [
          Alcotest.test_case "all tests run (3 seeds)" `Slow test_all_tests_run;
          Alcotest.test_case "traces nontrivial" `Quick test_traces_nontrivial;
          Alcotest.test_case "workload helpers" `Quick test_workload_helpers;
          Alcotest.test_case "chores low variance" `Quick test_chores_are_low_variance;
        ] );
      ( "inference",
        [
          Alcotest.test_case "quality gates" `Slow test_inference_quality;
          Alcotest.test_case "designed misclassifications" `Slow
            test_designed_misclassifications;
          Alcotest.test_case "racy declarations" `Quick test_racy_apps_declare_races;
          Alcotest.test_case "unsafe flags" `Quick test_unsafe_api_flags;
        ] );
      ( "lp-equivalence",
        [
          Alcotest.test_case "warm/cold/dense verdicts identical" `Slow
            test_lp_paths_equivalent;
          Alcotest.test_case "warm starts save pivots" `Slow
            test_warm_start_saves_pivots;
        ] );
    ]
