(* Tests for the provenance subsystem: the hand-rolled JSON codec, the
   sidecar round trip (unit and property-based), the corpus-level
   guarantee that every verdict carries evidence, and the invariant that
   capture never changes the verdicts. *)

open Sherlock_core
module Json = Sherlock_provenance.Json
module Prov = Sherlock_provenance.Provenance

let check = Alcotest.check

(* --- JSON codec --- *)

let test_json_roundtrip_values () =
  let cases =
    [
      Json.Null;
      Json.Bool true;
      Json.Bool false;
      Json.Num 0.0;
      Json.Num (-1.5);
      Json.Num 1e300;
      Json.Num 3.141592653589793;
      Json.Str "";
      Json.Str "plain";
      Json.Str "quotes \" and \\ and \n tab \t";
      Json.Arr [];
      Json.Arr [ Json.Num 1.0; Json.Str "x"; Json.Null ];
      Json.Obj [];
      Json.Obj [ ("a", Json.Num 1.0); ("b", Json.Arr [ Json.Bool false ]) ];
    ]
  in
  List.iter
    (fun v ->
      let s = Json.to_string v in
      match Json.of_string s with
      | Ok v' ->
        check Alcotest.bool (Printf.sprintf "roundtrip %s" s) true
          (compare v v' = 0)
      | Error e -> Alcotest.failf "parse of %s failed: %s" s e)
    cases

let test_json_integers_exact () =
  (* Integers must survive textually as integers (no ".0" / exponent): the
     sidecar's ids, rounds, and times all ride in Num. *)
  List.iter
    (fun i ->
      let s = Json.to_string (Json.Num (float_of_int i)) in
      check Alcotest.string "integer spelling" (string_of_int i) s)
    [ 0; 1; -1; 42; 1_000_000; -987654321 ]

let test_json_nonfinite_rejected () =
  List.iter
    (fun f ->
      match Json.to_string (Json.Num f) with
      | exception Invalid_argument _ -> ()
      | s -> Alcotest.failf "non-finite printed as %s" s)
    [ nan; infinity; neg_infinity ]

let test_json_parse_errors_positioned () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "parsed malformed %S" s
      | Error e ->
        check Alcotest.bool
          (Printf.sprintf "error %S mentions a byte offset" e)
          true
          (String.length e >= 5 && String.sub e 0 5 = "byte "))
    [ "{"; "[1,"; "\"unterminated"; "tru"; "{\"a\" 1}"; "1 2" ]

let test_json_member_and_list () =
  let v = Json.Obj [ ("xs", Json.Arr [ Json.Num 1.0; Json.Num 2.0 ]) ] in
  check Alcotest.int "member/to_list" 2 (List.length (Json.to_list (Json.member "xs" v)));
  check Alcotest.bool "absent member is Null" true (Json.member "nope" v = Json.Null)

(* --- Provenance codec: unit round trip incl. nan --- *)

let sample_coord = { Prov.c_time1 = 10; c_tid1 = 0; c_time2 = 55; c_tid2 = 1 }

let sample_window =
  {
    Prov.w_id = 3;
    w_first = "Write-C::f";
    w_second = "Read-C::f";
    w_field = "C::f";
    w_side = "acq";
    w_count = 2;
    w_weight = 5;
    w_round = 1;
    w_coords = [ sample_coord; { sample_coord with Prov.c_time2 = 77 } ];
  }

let sample_constraint =
  {
    Prov.c_tag = "ub:v_acq";
    c_rel = "<=";
    c_rhs = 1.0;
    c_activity = 1.0;
    c_coeff = 1.0;
    c_dual = -0.25;
    c_binding = true;
  }

let sample_verdict =
  {
    Prov.v_op = "Read-C::f";
    v_role = "acquire";
    v_probability = 1.0;
    v_margin = 0.25;
    v_reduced_cost = 0.0;
    v_first_round = 1;
    v_stable_round = 2;
    v_windows = [ sample_window ];
    v_constraints = [ sample_constraint ];
  }

let sample_prov =
  {
    Prov.p_app = "TestApp";
    p_seed = 42;
    p_rounds =
      [
        {
          Prov.r_round = 1;
          r_windows_after = 12;
          r_objective = 3.25;
          r_degraded = false;
          r_verdicts = [ ("Read-C::f", "acquire") ];
          r_delays = [];
        };
        {
          Prov.r_round = 2;
          r_windows_after = 20;
          r_objective = nan;
          r_degraded = true;
          r_verdicts = [ ("Read-C::f", "acquire") ];
          r_delays = [ ("Write-C::f", 100_000) ];
        };
      ];
    p_verdicts = [ sample_verdict ];
  }

let test_provenance_roundtrip () =
  let s = Prov.to_string sample_prov in
  match Prov.of_string s with
  | Ok p ->
    check Alcotest.bool "equal after roundtrip (nan objective included)" true
      (Prov.equal sample_prov p)
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_provenance_rejects_foreign () =
  (match Prov.of_string "{\"format\":\"other\",\"version\":1}" with
  | Ok _ -> Alcotest.fail "accepted foreign format"
  | Error _ -> ());
  match Prov.of_string "[1,2,3]" with
  | Ok _ -> Alcotest.fail "accepted non-object"
  | Error _ -> ()

let test_provenance_sidecar_file () =
  let path = Filename.temp_file "sherlock_prov" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Prov.save path sample_prov;
      match Prov.load path with
      | Ok p -> check Alcotest.bool "file roundtrip" true (Prov.equal sample_prov p)
      | Error e -> Alcotest.failf "load failed: %s" e)

let test_provenance_find () =
  let vs = Prov.find sample_prov "Read-C::f" in
  check Alcotest.int "exact match" 1 (List.length vs);
  let vs = Prov.find sample_prov "C::f" in
  check Alcotest.int "substring match" 1 (List.length vs);
  check Alcotest.int "no match" 0 (List.length (Prov.find sample_prov "zzz"))

(* --- qcheck round-trip property --- *)

let gen_name =
  QCheck.Gen.(
    let* n = int_range 0 12 in
    string_size ~gen:(map Char.chr (int_range 32 126)) (return n))

let gen_float =
  QCheck.Gen.oneofl
    [ 0.0; 1.0; -1.5; 0.1; 3.141592653589793; 1e-9; 1e300; -7.25; nan ]

let gen_coord =
  QCheck.Gen.(
    let* t1 = int_range 0 1_000_000 and* t2 = int_range 0 1_000_000 in
    let* tid1 = int_range 0 7 and* tid2 = int_range 0 7 in
    return { Prov.c_time1 = t1; c_tid1 = tid1; c_time2 = t2; c_tid2 = tid2 })

let gen_window =
  QCheck.Gen.(
    let* w_id = int_range 0 500 and* w_first = gen_name and* w_second = gen_name in
    let* w_field = gen_name and* side = bool in
    let* w_count = int_range 1 9 and* w_weight = int_range 1 9 in
    let* w_round = int_range 1 5 and* w_coords = list_size (int_range 0 4) gen_coord in
    return
      {
        Prov.w_id;
        w_first;
        w_second;
        w_field;
        w_side = (if side then "acq" else "rel");
        w_count;
        w_weight;
        w_round;
        w_coords;
      })

let gen_constraint =
  QCheck.Gen.(
    let* c_tag = gen_name and* r = int_range 0 2 in
    let* c_rhs = gen_float and* c_activity = gen_float in
    let* c_coeff = gen_float and* c_dual = gen_float and* c_binding = bool in
    return
      {
        Prov.c_tag;
        c_rel = List.nth [ "<="; ">="; "=" ] r;
        c_rhs;
        c_activity;
        c_coeff;
        c_dual;
        c_binding;
      })

let gen_verdict =
  QCheck.Gen.(
    let* v_op = gen_name and* acq = bool in
    let* v_probability = gen_float and* v_margin = gen_float in
    let* v_reduced_cost = gen_float in
    let* v_first_round = int_range 0 5 and* v_stable_round = int_range 0 5 in
    let* v_windows = list_size (int_range 0 3) gen_window in
    let* v_constraints = list_size (int_range 0 3) gen_constraint in
    return
      {
        Prov.v_op;
        v_role = (if acq then "acquire" else "release");
        v_probability;
        v_margin;
        v_reduced_cost;
        v_first_round;
        v_stable_round;
        v_windows;
        v_constraints;
      })

let gen_round =
  QCheck.Gen.(
    let* r_round = int_range 1 5 and* r_windows_after = int_range 0 500 in
    let* r_objective = gen_float and* r_degraded = bool in
    let* r_verdicts =
      list_size (int_range 0 3)
        (let* op = gen_name and* acq = bool in
         return (op, if acq then "acquire" else "release"))
    in
    let* r_delays =
      list_size (int_range 0 3)
        (let* op = gen_name and* us = int_range 0 1_000_000 in
         return (op, us))
    in
    return
      { Prov.r_round; r_windows_after; r_objective; r_degraded; r_verdicts; r_delays })

let gen_prov =
  QCheck.Gen.(
    let* p_app = gen_name and* p_seed = int_range 0 10_000 in
    let* p_rounds = list_size (int_range 0 4) gen_round in
    let* p_verdicts = list_size (int_range 0 5) gen_verdict in
    return { Prov.p_app; p_seed; p_rounds; p_verdicts })

let prop_provenance_roundtrip =
  QCheck.Test.make ~name:"provenance JSON roundtrip (semantic equality)"
    ~count:200 (QCheck.make gen_prov) (fun p ->
      match Prov.of_string (Prov.to_string p) with
      | Ok p' -> Prov.equal p p'
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e)

(* --- pipeline integration over the corpus --- *)

let infer_with_provenance ?(app = "App-2") ?(rounds = 2) () =
  let app = Sherlock_corpus.Registry.find app in
  let config = { Config.default with rounds; provenance = true } in
  Orchestrator.infer ~config (Sherlock_corpus.App.subject app)

let test_corpus_every_verdict_has_evidence () =
  let result = infer_with_provenance () in
  let prov =
    match result.Orchestrator.provenance with
    | Some p -> p
    | None -> Alcotest.fail "provenance flag set but no provenance returned"
  in
  check Alcotest.int "one evidence record per final verdict"
    (List.length result.Orchestrator.final)
    (List.length prov.Prov.p_verdicts);
  check Alcotest.bool "has verdicts" true (prov.Prov.p_verdicts <> []);
  List.iter
    (fun (v : Prov.verdict_evidence) ->
      check Alcotest.bool (v.Prov.v_op ^ " has >=1 evidence window") true
        (List.length v.Prov.v_windows >= 1);
      check Alcotest.bool (v.Prov.v_op ^ " has >=1 constraint") true
        (List.length v.Prov.v_constraints >= 1);
      check Alcotest.bool (v.Prov.v_op ^ " margin is finite") true
        (Float.is_finite v.Prov.v_margin);
      check Alcotest.bool (v.Prov.v_op ^ " first_round in range") true
        (v.Prov.v_first_round >= 1 && v.Prov.v_first_round <= 2);
      check Alcotest.bool (v.Prov.v_op ^ " stable_round ordered") true
        (v.Prov.v_stable_round >= v.Prov.v_first_round);
      List.iter
        (fun (w : Prov.window_evidence) ->
          check Alcotest.bool "window round in range" true
            (w.Prov.w_round >= 1 && w.Prov.w_round <= 2);
          check Alcotest.bool "window has coords" true (w.Prov.w_coords <> []))
        v.Prov.v_windows)
    prov.Prov.p_verdicts;
  check Alcotest.int "one round trace per round" 2
    (List.length prov.Prov.p_rounds);
  (* The real sidecar must round-trip too, not just synthetic ones. *)
  match Prov.of_string (Prov.to_string prov) with
  | Ok p -> check Alcotest.bool "corpus sidecar roundtrip" true (Prov.equal prov p)
  | Error e -> Alcotest.failf "corpus sidecar decode failed: %s" e

let test_capture_does_not_change_verdicts () =
  let app = Sherlock_corpus.Registry.find "App-2" in
  let subject = Sherlock_corpus.App.subject app in
  let run provenance =
    let config = { Config.default with rounds = 2; provenance } in
    (Orchestrator.infer ~config subject).Orchestrator.final
  in
  let off = run false and on = run true in
  check Alcotest.int "same verdict count" (List.length off) (List.length on);
  List.iter2
    (fun (a : Verdict.t) (b : Verdict.t) ->
      check Alcotest.bool "same op/role" true (Verdict.compare a b = 0);
      check Alcotest.bool "bitwise identical probability" true
        (Int64.equal
           (Int64.bits_of_float a.probability)
           (Int64.bits_of_float b.probability)))
    off on

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "provenance"
    [
      ( "json",
        [
          Alcotest.test_case "value roundtrips" `Quick test_json_roundtrip_values;
          Alcotest.test_case "integers exact" `Quick test_json_integers_exact;
          Alcotest.test_case "non-finite rejected" `Quick test_json_nonfinite_rejected;
          Alcotest.test_case "errors positioned" `Quick test_json_parse_errors_positioned;
          Alcotest.test_case "member/to_list" `Quick test_json_member_and_list;
        ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip incl. nan" `Quick test_provenance_roundtrip;
          Alcotest.test_case "rejects foreign JSON" `Quick test_provenance_rejects_foreign;
          Alcotest.test_case "sidecar file" `Quick test_provenance_sidecar_file;
          Alcotest.test_case "find" `Quick test_provenance_find;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "corpus verdicts carry evidence" `Slow
            test_corpus_every_verdict_has_evidence;
          Alcotest.test_case "capture keeps verdicts identical" `Slow
            test_capture_does_not_change_verdicts;
        ] );
      ("properties", qcheck [ prop_provenance_roundtrip ]);
    ]
