(* Tests for the utility library: deterministic RNG, statistics, and the
   ASCII table renderer. *)

module Rng = Sherlock_util.Rng
module Stats = Sherlock_util.Stats
module Table = Sherlock_util.Table

let check = Alcotest.check

(* --- Rng --- *)

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  check Alcotest.bool "different seeds differ" true !differs

let test_copy_independent () =
  let a = Rng.create 7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  check Alcotest.int64 "copy continues stream" (Rng.bits64 a) (Rng.bits64 b)

let test_split_diverges () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  check Alcotest.bool "split independent" true (Rng.bits64 a <> Rng.bits64 b)

let test_int_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    check Alcotest.bool "in [0,17)" true (v >= 0 && v < 17)
  done

let test_int_rejects_nonpositive () =
  let r = Rng.create 3 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_range_bounds () =
  let r = Rng.create 5 in
  for _ = 1 to 500 do
    let v = Rng.range r 10 20 in
    check Alcotest.bool "in [10,20]" true (v >= 10 && v <= 20)
  done

let test_range_singleton () =
  let r = Rng.create 5 in
  check Alcotest.int "lo=hi" 4 (Rng.range r 4 4)

let test_float_bounds () =
  let r = Rng.create 11 in
  for _ = 1 to 500 do
    let v = Rng.float r 2.5 in
    check Alcotest.bool "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_shuffle_permutation () =
  let r = Rng.create 13 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "is a permutation" (Array.init 50 Fun.id) sorted

let test_pick_member () =
  let r = Rng.create 17 in
  for _ = 1 to 100 do
    let v = Rng.pick r [ 1; 2; 3 ] in
    check Alcotest.bool "member" true (List.mem v [ 1; 2; 3 ])
  done

let test_pick_empty () =
  let r = Rng.create 17 in
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty list") (fun () ->
      ignore (Rng.pick r []))

let test_bool_mixes () =
  let r = Rng.create 23 in
  let trues = ref 0 in
  for _ = 1 to 1000 do
    if Rng.bool r then incr trues
  done;
  check Alcotest.bool "roughly fair" true (!trues > 300 && !trues < 700)

(* --- Stats --- *)

let feq = Alcotest.float 1e-9

let test_mean () =
  check feq "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check feq "mean empty" 0.0 (Stats.mean [])

let test_stddev () =
  check feq "constant" 0.0 (Stats.stddev [ 5.0; 5.0; 5.0 ]);
  check feq "short" 0.0 (Stats.stddev [ 5.0 ]);
  check (Alcotest.float 1e-6) "known" 2.0 (Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ])

let test_cv () =
  check feq "zero mean" 0.0 (Stats.coefficient_of_variation [ 0.0; 0.0 ]);
  check (Alcotest.float 1e-6) "cv"
    (sqrt (2.0 /. 3.0) /. 2.0)
    (Stats.coefficient_of_variation [ 1.0; 2.0; 3.0 ])

let test_percentile_rank () =
  let xs = [ 1.0; 2.0; 3.0; 4.0 ] in
  check feq "below all" 0.0 (Stats.percentile_rank xs 1.0);
  check feq "above all" 1.0 (Stats.percentile_rank xs 5.0);
  check feq "middle" 0.5 (Stats.percentile_rank xs 3.0);
  check feq "empty" 0.0 (Stats.percentile_rank [] 3.0)

let test_median () =
  check feq "odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  check feq "even" 2.5 (Stats.median [ 4.0; 1.0; 2.0; 3.0 ]);
  check feq "empty" 0.0 (Stats.median [])

let test_sum () = check feq "sum" 6.0 (Stats.sum [ 1.0; 2.0; 3.0 ])

(* --- Table --- *)

let test_table_alignment () =
  let t = Table.create ~title:"T" ~header:[ "a"; "bb" ] in
  Table.add_row t [ "xxx"; "y" ];
  Table.add_row t [ "z" ];
  let s = Table.render t in
  check Alcotest.bool "contains title" true (String.length s > 0);
  let lines = String.split_on_char '\n' s in
  check Alcotest.bool "has rows" true (List.length lines >= 5)

let test_table_separator () =
  let t = Table.create ~title:"T" ~header:[ "a" ] in
  Table.add_row t [ "1" ];
  Table.add_separator t;
  Table.add_row t [ "2" ];
  let s = Table.render t in
  let dashes = List.filter (fun l -> String.length l > 0 && l.[0] = '-')
      (String.split_on_char '\n' s) in
  check Alcotest.int "three rules" 3 (List.length dashes)

(* --- properties --- *)

let prop_rng_int_uniformish =
  QCheck.Test.make ~name:"rng int stays in bounds" ~count:200
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

let prop_mean_bounds =
  QCheck.Test.make ~name:"mean within min/max" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 20) (float_range (-1000.) 1000.))
    (fun xs ->
      let m = Stats.mean xs in
      m >= List.fold_left min infinity xs -. 1e-9
      && m <= List.fold_left max neg_infinity xs +. 1e-9)

let prop_stddev_nonneg =
  QCheck.Test.make ~name:"stddev non-negative" ~count:200
    QCheck.(list (float_range (-100.) 100.))
    (fun xs -> Stats.stddev xs >= 0.0)

let prop_percentile_in_unit =
  QCheck.Test.make ~name:"percentile rank in [0,1]" ~count:200
    QCheck.(pair (list (float_range 0. 10.)) (float_range 0. 10.))
    (fun (xs, x) ->
      let p = Stats.percentile_rank xs x in
      p >= 0.0 && p <= 1.0)

(* --- worker pool --- *)

module Pool = Sherlock_util.Pool

(* A poisoned item must cancel everything not yet started: the failing
   map drains the shared counter, so with [domains:1] (the caller is the
   only participant, items claimed strictly in order) exactly one item
   executes before the exception re-raises. *)
let test_pool_poisoned_item_cancels () =
  let p = Pool.create () in
  Fun.protect ~finally:(fun () -> Pool.retire p) @@ fun () ->
  let n = 1000 in
  let executed = Atomic.make 0 in
  (match
     Pool.parallel_map ~pool:p ~domains:1
       (fun _ v ->
         ignore (Atomic.fetch_and_add executed 1);
         if v = 0 then failwith "poisoned";
         v)
       (Array.init n Fun.id)
   with
  | _ -> Alcotest.fail "poisoned map returned"
  | exception Failure msg -> check Alcotest.string "exception re-raised" "poisoned" msg);
  check Alcotest.int "outstanding items cancelled" 1 (Atomic.get executed)

(* Same poison under real parallelism: each in-flight domain may finish
   the item it already claimed, but the drain must stop the sweep well
   short of the full array. *)
let test_pool_poisoned_item_parallel () =
  let p = Pool.create () in
  Fun.protect ~finally:(fun () -> Pool.retire p) @@ fun () ->
  let n = 100_000 in
  let executed = Atomic.make 0 in
  (match
     Pool.parallel_map ~pool:p ~domains:4
       (fun _ v ->
         ignore (Atomic.fetch_and_add executed 1);
         if v = 0 then failwith "poisoned";
         v)
       (Array.init n Fun.id)
   with
  | _ -> Alcotest.fail "poisoned map returned"
  | exception Failure _ -> ());
  check Alcotest.bool "most items cancelled" true (Atomic.get executed < n)

let test_pool_occupancy_gauges () =
  let before_live = Pool.live_domains () in
  let p = Pool.create () in
  let seen_live = Atomic.make 0 and seen_busy = Atomic.make 0 in
  let bump a v = if v > Atomic.get a then Atomic.set a v in
  Pool.run p ~workers:1 (fun () ->
      bump seen_live (Pool.live_domains ());
      bump seen_busy (Pool.busy_domains ()));
  Pool.retire p;
  check Alcotest.bool "worker counted live" true
    (Atomic.get seen_live >= before_live + 1);
  check Alcotest.bool "participants counted busy" true (Atomic.get seen_busy >= 1);
  check Alcotest.int "retire returns to baseline" before_live (Pool.live_domains ())

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "split" `Quick test_split_diverges;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int rejects <= 0" `Quick test_int_rejects_nonpositive;
          Alcotest.test_case "range bounds" `Quick test_range_bounds;
          Alcotest.test_case "range singleton" `Quick test_range_singleton;
          Alcotest.test_case "float bounds" `Quick test_float_bounds;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "pick member" `Quick test_pick_member;
          Alcotest.test_case "pick empty" `Quick test_pick_empty;
          Alcotest.test_case "bool mixes" `Quick test_bool_mixes;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "cv" `Quick test_cv;
          Alcotest.test_case "percentile rank" `Quick test_percentile_rank;
          Alcotest.test_case "median" `Quick test_median;
          Alcotest.test_case "sum" `Quick test_sum;
        ] );
      ( "table",
        [
          Alcotest.test_case "alignment" `Quick test_table_alignment;
          Alcotest.test_case "separator" `Quick test_table_separator;
        ] );
      ( "pool",
        [
          Alcotest.test_case "poisoned item cancels rest" `Quick
            test_pool_poisoned_item_cancels;
          Alcotest.test_case "poison cancels under parallelism" `Quick
            test_pool_poisoned_item_parallel;
          Alcotest.test_case "occupancy gauges" `Quick test_pool_occupancy_gauges;
        ] );
      ( "properties",
        qcheck
          [ prop_rng_int_uniformish; prop_mean_bounds; prop_stddev_nonneg;
            prop_percentile_in_unit ] );
    ]
