(* Tests for the concurrency simulator: scheduler determinism, virtual
   time, blocking primitives, and the instrumentation hooks. *)

open Sherlock_sim
open Sherlock_trace

let check = Alcotest.check

let run ?(seed = 1) ?delay_before ?fault ?max_steps body =
  Runtime.run ~seed
    ~instrument:(Runtime.tracing ?delay_before ())
    ?fault ?max_steps body

let events log = Array.to_list (log : Log.t).events

(* --- Runtime basics --- *)

let test_determinism () =
  let program () =
    let c = Heap.cell ~cls:"T.C" ~field:"x" 0 in
    let t =
      Threadlib.create ~delegate:("T.C", "W") (fun () ->
          Runtime.cpu 10 50;
          Heap.write c 1)
    in
    Threadlib.start t;
    ignore (Heap.read c);
    Threadlib.join t
  in
  let l1 = run ~seed:5 program and l2 = run ~seed:5 program in
  check Alcotest.int "same length" (Log.length l1) (Log.length l2);
  List.iter2
    (fun (a : Event.t) (b : Event.t) ->
      check Alcotest.int "same time" a.time b.time;
      check Alcotest.int "same tid" a.tid b.tid;
      check Alcotest.bool "same op" true (Opid.equal a.op b.op))
    (events l1) (events l2)

let test_seed_changes_schedule () =
  let program () =
    let c = Heap.cell ~cls:"T.C" ~field:"x" 0 in
    let ts =
      List.init 3 (fun i ->
          Threadlib.create ~delegate:("T.C", Printf.sprintf "W%d" i) (fun () ->
              Runtime.cpu 5 80;
              Heap.write c 1))
    in
    List.iter Threadlib.start ts;
    List.iter Threadlib.join ts
  in
  let l1 = run ~seed:1 program and l2 = run ~seed:2 program in
  let times l = List.map (fun (e : Event.t) -> e.time) (events l) in
  check Alcotest.bool "different schedules" true (times l1 <> times l2)

let test_per_thread_monotone_time () =
  let program () =
    let c = Heap.cell ~cls:"T.C" ~field:"x" 0 in
    for _ = 1 to 20 do
      Heap.write c 1
    done
  in
  let log = run program in
  let last = Hashtbl.create 4 in
  List.iter
    (fun (e : Event.t) ->
      let prev = Option.value ~default:0 (Hashtbl.find_opt last e.tid) in
      check Alcotest.bool "monotone" true (e.time > prev);
      Hashtbl.replace last e.tid e.time)
    (events log)

let test_deadlock_detection () =
  Alcotest.check_raises "deadlock" (Runtime.Deadlock "main") (fun () ->
      ignore
        (Runtime.run (fun () ->
             let q = Runtime.Waitq.create () in
             Runtime.block q)))

let test_daemons_do_not_block_exit () =
  let log =
    Runtime.run ~instrument:(Runtime.tracing ()) (fun () ->
        ignore
          (Runtime.spawn ~daemon:true ~name:"d" (fun () ->
               while true do
                 Runtime.sleep 1000
               done));
        Runtime.sleep 50)
  in
  check Alcotest.bool "terminates" true (log.duration >= 50)

let test_sleep_advances_clock () =
  let log =
    run (fun () ->
        Runtime.sleep 5000;
        Runtime.traced (Opid.read ~cls:"T.C" "x") ~target:1)
  in
  let e = List.hd (events log) in
  check Alcotest.bool "clock past sleep" true (e.time > 5000)

let test_fresh_ids_unique () =
  ignore
    (Runtime.run (fun () ->
         let ids = List.init 100 (fun _ -> Runtime.fresh_id ()) in
         assert (List.length (List.sort_uniq compare ids) = 100);
         assert (List.for_all (fun i -> i > 0) ids)))

let test_outside_run_fails () =
  Alcotest.check_raises "outside" (Failure "now: must be called from inside Runtime.run")
    (fun () -> ignore (Runtime.now ()))

let test_frame_emits_balanced_events () =
  let log =
    run (fun () ->
        Runtime.frame ~cls:"T.C" ~meth:"m" (fun () ->
            Runtime.frame ~cls:"T.C" ~meth:"inner" (fun () -> Runtime.cpu 5 10)))
  in
  let begins =
    List.length (List.filter (fun (e : Event.t) -> e.op.kind = Opid.Begin) (events log))
  in
  let ends =
    List.length (List.filter (fun (e : Event.t) -> e.op.kind = Opid.End) (events log))
  in
  check Alcotest.int "begins" 2 begins;
  check Alcotest.int "ends" 2 ends

let test_frame_end_on_exception () =
  let log =
    run (fun () ->
        try Runtime.frame ~cls:"T.C" ~meth:"boom" (fun () -> raise Exit)
        with Exit -> ())
  in
  let ends =
    List.filter (fun (e : Event.t) -> e.op.kind = Opid.End) (events log)
  in
  check Alcotest.int "end emitted" 1 (List.length ends)

let test_delay_injection () =
  let op = Opid.write ~cls:"T.C" "x" in
  let delay_before o = if Opid.equal o op then 10_000 else 0 in
  let log =
    run ~delay_before (fun () ->
        let c = Heap.cell ~cls:"T.C" ~field:"x" 0 in
        Heap.write c 1)
  in
  let e = List.find (fun (e : Event.t) -> Opid.equal e.op op) (events log) in
  check Alcotest.int "delayed_by recorded" 10_000 e.delayed_by;
  check Alcotest.bool "clock advanced" true (e.time > 10_000)

let test_untraced_run_is_silent () =
  let log =
    Runtime.run (fun () ->
        let c = Heap.cell ~cls:"T.C" ~field:"x" 0 in
        Heap.write c 1;
        ignore (Heap.read c))
  in
  check Alcotest.int "no events" 0 (Log.length log)

let test_volatile_registration () =
  let log =
    run (fun () -> ignore (Heap.cell ~cls:"T.C" ~field:"v" ~volatile:true 0))
  in
  check Alcotest.int "registered" 1 (Hashtbl.length log.volatile_addrs)

(* --- Heap --- *)

let test_heap_read_write () =
  ignore
    (Runtime.run (fun () ->
         let c = Heap.cell ~cls:"T.C" ~field:"x" 7 in
         assert (Heap.read c = 7);
         Heap.write c 9;
         assert (Heap.peek c = 9);
         Heap.poke c 11;
         assert (Heap.read c = 11);
         assert (Heap.addr c > 0);
         assert (Heap.cls c = "T.C" && Heap.field c = "x")))

let test_spin_until () =
  ignore
    (Runtime.run (fun () ->
         let flag = Heap.cell ~cls:"T.C" ~field:"f" false in
         let t =
           Threadlib.create ~delegate:("T.C", "Setter") (fun () ->
               Runtime.cpu 200 400;
               Heap.write flag true)
         in
         Threadlib.start t;
         Heap.spin_until flag (fun b -> b);
         assert (Heap.peek flag);
         Threadlib.join t))

(* --- Monitor --- *)

let test_monitor_mutual_exclusion () =
  ignore
    (Runtime.run (fun () ->
         let m = Monitor.create () in
         let inside = ref 0 in
         let max_inside = ref 0 in
         let worker () =
           for _ = 1 to 5 do
             Monitor.with_lock m (fun () ->
                 incr inside;
                 if !inside > !max_inside then max_inside := !inside;
                 Runtime.cpu 5 30;
                 decr inside);
             Runtime.cpu 1 10
           done
         in
         let ts =
           List.init 3 (fun i ->
               Threadlib.create ~delegate:("T.C", Printf.sprintf "W%d" i) worker)
         in
         List.iter Threadlib.start ts;
         List.iter Threadlib.join ts;
         assert (!max_inside = 1)))

let test_monitor_reentrant () =
  ignore
    (Runtime.run (fun () ->
         let m = Monitor.create () in
         Monitor.enter m;
         Monitor.enter m;
         Monitor.exit m;
         Monitor.exit m))

let test_monitor_exit_unowned () =
  (* The lock id is allocated inside the run, so match the payload shape
     rather than an exact exception value. *)
  match
    Runtime.run (fun () ->
        let m = Monitor.create () in
        Monitor.exit m)
  with
  | _ -> Alcotest.fail "expected Monitor.Not_owner"
  | exception Monitor.Not_owner { owner; caller; _ } ->
    Alcotest.(check (option int)) "owner" None owner;
    Alcotest.(check int) "caller" 0 caller

let test_monitor_exit_stranger () =
  (* A thread releasing a lock held by another gets both tids. *)
  match
    Runtime.run (fun () ->
        let m = Monitor.create () in
        let entered = Runtime.Waitq.create () in
        ignore
          (Runtime.spawn ~name:"holder" (fun () ->
               Monitor.enter m;
               ignore (Runtime.wake_one entered);
               Runtime.sleep 10_000));
        Runtime.block entered;
        Monitor.exit m)
  with
  | _ -> Alcotest.fail "expected Monitor.Not_owner"
  | exception Monitor.Not_owner { owner; caller; _ } ->
    Alcotest.(check (option int)) "owner" (Some 1) owner;
    Alcotest.(check int) "caller" 0 caller

(* --- Rwlock --- *)

let test_rwlock_readers_concurrent () =
  ignore
    (Runtime.run (fun () ->
         let rw = Rwlock.create () in
         let readers = ref 0 in
         let saw_two = ref false in
         let reader () =
           Rwlock.acquire_reader rw;
           incr readers;
           if !readers >= 2 then saw_two := true;
           Runtime.sleep 500;
           decr readers;
           Rwlock.release_reader rw
         in
         let ts =
           List.init 2 (fun i ->
               Threadlib.create ~delegate:("T.C", Printf.sprintf "R%d" i) reader)
         in
         List.iter Threadlib.start ts;
         List.iter Threadlib.join ts;
         assert !saw_two))

let test_rwlock_writer_exclusive () =
  ignore
    (Runtime.run (fun () ->
         let rw = Rwlock.create () in
         let writing = ref false in
         let violation = ref false in
         let writer () =
           Rwlock.acquire_writer rw;
           if !writing then violation := true;
           writing := true;
           Runtime.sleep 100;
           writing := false;
           Rwlock.release_writer rw
         in
         let reader () =
           Rwlock.acquire_reader rw;
           if !writing then violation := true;
           Rwlock.release_reader rw
         in
         let w = Threadlib.create ~delegate:("T.C", "W") writer in
         let r = Threadlib.create ~delegate:("T.C", "R") reader in
         Threadlib.start w;
         Threadlib.start r;
         Threadlib.join w;
         Threadlib.join r;
         assert (not !violation)))

let test_rwlock_upgrade () =
  ignore
    (Runtime.run (fun () ->
         let rw = Rwlock.create () in
         Rwlock.acquire_reader rw;
         Rwlock.upgrade_to_writer_lock rw;
         Rwlock.downgrade_from_writer_lock rw;
         Rwlock.release_reader rw))

(* --- Tasks, threads, pool --- *)

let test_task_wait () =
  ignore
    (Runtime.run (fun () ->
         let r = ref 0 in
         let t = Tasklib.create (fun () -> r := 42) in
         assert (not (Tasklib.is_completed t));
         Tasklib.start t;
         Tasklib.wait t;
         assert (Tasklib.is_completed t);
         assert (!r = 42)))

let test_task_continue_with () =
  ignore
    (Runtime.run (fun () ->
         let order = ref [] in
         let a = Tasklib.create (fun () -> order := 1 :: !order) in
         let b = Tasklib.continue_with a (fun () -> order := 2 :: !order) in
         Tasklib.start a;
         Tasklib.wait b;
         assert (!order = [ 2; 1 ])))

let test_task_continue_after_completion () =
  ignore
    (Runtime.run (fun () ->
         let a = Tasklib.run (fun () -> ()) in
         Tasklib.wait a;
         let hit = ref false in
         let b = Tasklib.continue_with a (fun () -> hit := true) in
         Tasklib.wait b;
         assert !hit))

let test_threadpool_runs_items () =
  ignore
    (Runtime.run (fun () ->
         let done_handle = Waithandle.create_manual () in
         let count = ref 0 in
         for _ = 1 to 5 do
           Threadpool.queue_user_work_item (fun () ->
               incr count;
               if !count = 5 then Waithandle.set done_handle)
         done;
         Waithandle.wait_one done_handle;
         assert (!count = 5)))

(* --- Wait handles, semaphore, dataflow --- *)

let test_manual_event_stays_signaled () =
  ignore
    (Runtime.run (fun () ->
         let h = Waithandle.create_manual () in
         Waithandle.set h;
         Waithandle.wait_one h;
         Waithandle.wait_one h (* still signaled *)))

let test_auto_event_consumes () =
  ignore
    (Runtime.run (fun () ->
         let h = Waithandle.create_auto () in
         let woken = ref 0 in
         let waiter i =
           Threadlib.create ~delegate:("T.C", Printf.sprintf "W%d" i) (fun () ->
               Waithandle.wait_one h;
               incr woken)
         in
         let t1 = waiter 1 and t2 = waiter 2 in
         Threadlib.start t1;
         Threadlib.start t2;
         Runtime.sleep 1000;
         Waithandle.set h;
         Runtime.sleep 1000;
         assert (!woken = 1);
         Waithandle.set h;
         Threadlib.join t1;
         Threadlib.join t2;
         assert (!woken = 2)))

let test_wait_all () =
  ignore
    (Runtime.run (fun () ->
         let hs = List.init 3 (fun _ -> Waithandle.create_manual ()) in
         let setter h delay =
           Threadlib.create ~delegate:("T.C", "S") (fun () ->
               Runtime.sleep delay;
               Waithandle.set h)
         in
         let ts = List.mapi (fun i h -> setter h ((i + 1) * 100)) hs in
         List.iter Threadlib.start ts;
         Waithandle.wait_all hs;
         List.iter Threadlib.join ts))

let test_semaphore_counting () =
  ignore
    (Runtime.run (fun () ->
         let s = Semaphore.create 2 in
         Semaphore.wait s;
         Semaphore.wait s;
         assert (Semaphore.count s = 0);
         Semaphore.release s;
         assert (Semaphore.count s = 1);
         Semaphore.wait s))

let test_semaphore_blocks_at_zero () =
  ignore
    (Runtime.run (fun () ->
         let s = Semaphore.create 0 in
         let t =
           Threadlib.create ~delegate:("T.C", "R") (fun () ->
               Runtime.sleep 500;
               Semaphore.release s)
         in
         Threadlib.start t;
         Semaphore.wait s;
         Threadlib.join t))

let test_dataflow_fifo () =
  ignore
    (Runtime.run (fun () ->
         let b = Dataflow.create () in
         Dataflow.post b 1;
         Dataflow.post b 2;
         Dataflow.post b 3;
         assert (Dataflow.length b = 3);
         assert (Dataflow.receive b = 1);
         assert (Dataflow.receive b = 2);
         assert (Dataflow.try_receive b = Some 3);
         assert (Dataflow.try_receive b = None)))

let test_dataflow_blocks () =
  ignore
    (Runtime.run (fun () ->
         let b = Dataflow.create () in
         let t =
           Threadlib.create ~delegate:("T.C", "P") (fun () ->
               Runtime.sleep 300;
               Dataflow.post b 9)
         in
         Threadlib.start t;
         assert (Dataflow.receive b = 9);
         Threadlib.join t))

(* --- Conc_dict, statics, finalizer, unsafe list --- *)

let test_conc_dict_once () =
  ignore
    (Runtime.run (fun () ->
         let d = Conc_dict.create () in
         let computed = ref 0 in
         let worker () =
           ignore
             (Conc_dict.get_or_add d "k" ~delegate:("T.C", "factory") (fun () ->
                  incr computed;
                  Runtime.cpu 50 150;
                  99))
         in
         let ts =
           List.init 3 (fun i ->
               Threadlib.create ~delegate:("T.C", Printf.sprintf "Q%d" i) worker)
         in
         List.iter Threadlib.start ts;
         List.iter Threadlib.join ts;
         assert (!computed = 1);
         assert (Conc_dict.find_opt d "k" = Some 99)))

let test_statics_once () =
  ignore
    (Runtime.run (fun () ->
         let runs = ref 0 in
         let s =
           Statics.declare ~cls:"T.S" (fun () ->
               incr runs;
               Runtime.cpu 100 200)
         in
         assert (not (Statics.initialized s));
         let ts =
           List.init 3 (fun i ->
               Threadlib.create ~delegate:("T.S", Printf.sprintf "U%d" i) (fun () ->
                   Statics.ensure s))
         in
         List.iter Threadlib.start ts;
         List.iter Threadlib.join ts;
         assert (!runs = 1);
         assert (Statics.initialized s)))

let test_finalizer_runs_after_collect () =
  ignore
    (Runtime.run (fun () ->
         let finalized = ref false in
         let obj = Runtime.fresh_id () in
         Finalizer.register ~cls:"T.F" ~obj (fun () -> finalized := true);
         Finalizer.collect obj;
         let deadline = snd Finalizer.gc_latency * 3 in
         let rec wait () =
           if not !finalized then
             if Runtime.now () > deadline then assert false
             else begin
               Runtime.sleep 5000;
               wait ()
             end
         in
         wait ()))

let test_finalizer_not_before_collect () =
  ignore
    (Runtime.run (fun () ->
         let finalized = ref false in
         let obj = Runtime.fresh_id () in
         Finalizer.register ~cls:"T.F" ~obj (fun () -> finalized := true);
         Runtime.sleep (snd Finalizer.gc_latency * 2);
         assert (not !finalized)))

let test_barrier_phases () =
  ignore
    (Runtime.run (fun () ->
         let b = Barrier.create 3 in
         let after = ref 0 in
         let before_ok = ref true in
         let worker i =
           Threadlib.create ~delegate:("T.B", Printf.sprintf "W%d" i) (fun () ->
               Runtime.cpu 10 (50 * (i + 1));
               if !after > 0 then before_ok := false;
               Barrier.signal_and_wait b;
               incr after)
         in
         let ts = List.init 3 worker in
         List.iter Threadlib.start ts;
         List.iter Threadlib.join ts;
         assert !before_ok;
         assert (!after = 3);
         assert (Barrier.phase b = 1)))

let test_barrier_multi_phase () =
  ignore
    (Runtime.run (fun () ->
         let b = Barrier.create 2 in
         let worker i =
           Threadlib.create ~delegate:("T.B", Printf.sprintf "W%d" i) (fun () ->
               for _ = 1 to 3 do
                 Runtime.cpu 5 40;
                 Barrier.signal_and_wait b
               done)
         in
         let ts = List.init 2 worker in
         List.iter Threadlib.start ts;
         List.iter Threadlib.join ts;
         assert (Barrier.phase b = 3)))

let test_barrier_invalid () =
  Alcotest.check_raises "zero participants"
    (Invalid_argument "Barrier.create: participants must be positive") (fun () ->
      ignore (Runtime.run (fun () -> ignore (Barrier.create 0))))

let test_unsafe_dict_ops () =
  let log =
    run (fun () ->
        let d = Unsafe_dict.create () in
        Unsafe_dict.add d "k" 1;
        assert (Unsafe_dict.try_get_value d "k" = Some 1);
        assert (Unsafe_dict.try_get_value d "x" = None);
        assert (Unsafe_dict.count d = 1))
  in
  let accesses =
    List.filter (fun (e : Event.t) -> e.op.cls = Unsafe_dict.cls) (events log)
  in
  check Alcotest.int "traced as accesses" 4 (List.length accesses)

let test_property_accessors () =
  let log =
    run (fun () ->
        let c = Heap.cell ~cls:"T.C" ~field:"Name" 0 in
        Heap.setter c 5;
        check Alcotest.int "getter value" 5 (Heap.getter c))
  in
  let ops = List.map (fun (e : Event.t) -> Opid.to_string e.op) (events log) in
  check Alcotest.bool "setter traced" true (List.mem "Write-T.C::set_Name" ops);
  check Alcotest.bool "getter traced" true (List.mem "Read-T.C::get_Name" ops)

let test_unsafe_list_ops () =
  let log =
    run (fun () ->
        let l = Unsafe_list.create () in
        Unsafe_list.add l 1;
        Unsafe_list.add l 2;
        assert (Unsafe_list.contains l 1);
        assert (Unsafe_list.count l = 2);
        assert (Unsafe_list.to_list l = [ 1; 2 ]))
  in
  let accesses =
    List.filter (fun (e : Event.t) -> e.op.cls = Unsafe_list.cls) (events log)
  in
  check Alcotest.int "traced as accesses" 4 (List.length accesses)

(* --- Fault injection & watchdog --- *)

let log_equal (a : Log.t) (b : Log.t) =
  a.duration = b.duration
  && Log.length a = Log.length b
  && List.for_all2
       (fun (x : Event.t) (y : Event.t) ->
         x.time = y.time && x.tid = y.tid && Opid.equal x.op y.op
         && x.target = y.target
         && x.delayed_by = y.delayed_by)
       (events a) (events b)

(* One worker (tid 1) doing a handful of traced heap accesses. *)
let worker_program () =
  let c = Heap.cell ~cls:"F.C" ~field:"x" 0 in
  let t =
    Threadlib.create ~delegate:("F.C", "W") (fun () ->
        for _ = 1 to 5 do
          let v = Heap.read c in
          Heap.write c (v + 1)
        done)
  in
  Threadlib.start t;
  Threadlib.join t

let test_fault_crash_raises () =
  Alcotest.check_raises "injected crash"
    (Fault.Injected_crash { tid = 1; op = 3 })
    (fun () ->
      ignore
        (run
           ~fault:(Fault.make [ { Fault.tid = 1; op = 3; action = Fault.Crash } ])
           worker_program))

let test_fault_hang_deadlocks () =
  (* Worker hangs mid-loop; the join blocks forever. *)
  match
    run ~fault:(Fault.make [ { Fault.tid = 1; op = 3; action = Fault.Hang } ])
      worker_program
  with
  | _ -> Alcotest.fail "expected Deadlock"
  | exception Runtime.Deadlock _ -> ()

let test_watchdog_stalls_livelock () =
  (* The setter hangs before the flag write; the main thread's spin loop
     makes scheduler progress forever — only the watchdog ends it. *)
  let program () =
    let flag = Heap.cell ~cls:"F.C" ~field:"flag" false in
    let t =
      Threadlib.create ~delegate:("F.C", "Setter") (fun () ->
          Runtime.cpu 100 200;
          Heap.write flag true)
    in
    Threadlib.start t;
    Heap.spin_until flag (fun b -> b)
  in
  match
    run
      ~fault:(Fault.make [ { Fault.tid = 1; op = 1; action = Fault.Hang } ])
      ~max_steps:5_000 program
  with
  | _ -> Alcotest.fail "expected Stalled"
  | exception Runtime.Stalled { steps; runnable } ->
    check Alcotest.bool "steps past limit" true (steps > 5_000);
    check Alcotest.bool "names main" true
      (String.length runnable > 0)

let test_fault_unfired_plan_is_noop () =
  (* Sites that never fire: the run must be bitwise identical to the same
     run with no plan at all (the lookup consumes no scheduler RNG). *)
  let plan =
    Fault.make
      [
        { Fault.tid = 9; op = 1; action = Fault.Crash };
        { Fault.tid = 1; op = 100_000; action = Fault.Hang };
      ]
  in
  let base = run ~seed:3 worker_program in
  let faulted = run ~seed:3 ~fault:plan worker_program in
  check Alcotest.bool "identical log" true (log_equal base faulted)

let test_fault_wakeup_deterministic () =
  (* A spurious wakeup perturbs the schedule of a blocking program, but
     the same (seed, plan) pair must replay the exact same execution. *)
  let program () =
    let m = Monitor.create () in
    let c = Heap.cell ~cls:"F.C" ~field:"x" 0 in
    let ts =
      List.init 3 (fun i ->
          Threadlib.create ~delegate:("F.C", Printf.sprintf "W%d" i) (fun () ->
              for _ = 1 to 4 do
                Monitor.with_lock m (fun () ->
                    Heap.write c (Heap.read c + 1))
              done))
    in
    List.iter Threadlib.start ts;
    List.iter Threadlib.join ts
  in
  let plan =
    Fault.make [ { Fault.tid = 2; op = 7; action = Fault.Spurious_wakeup } ]
  in
  let l1 = run ~seed:5 ~fault:plan program in
  let l2 = run ~seed:5 ~fault:plan program in
  check Alcotest.bool "identical replays" true (log_equal l1 l2)

let test_fault_delay_inflation () =
  let delay_before _ = 100 in
  let base = run ~seed:2 ~delay_before worker_program in
  let inflated =
    run ~seed:2 ~delay_before ~fault:(Fault.make ~delay_factor:4 []) worker_program
  in
  List.iter
    (fun (e : Event.t) -> check Alcotest.int "inflated delay" 400 e.delayed_by)
    (events inflated);
  check Alcotest.bool "longer run" true
    ((inflated : Log.t).duration > (base : Log.t).duration)

let test_fault_specs_roundtrip () =
  let specs = [ "crash:tid=2,op=40"; "hang:tid=1,op=10"; "wakeup:tid=0,op=5"; "delay-factor:8" ] in
  (match Fault.of_specs specs with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok plan ->
    check (Alcotest.list Alcotest.string) "roundtrip" specs (Fault.to_specs plan);
    check Alcotest.int "factor" 8 (Fault.delay_factor plan);
    check Alcotest.bool "finds site" true
      (Fault.find plan ~tid:2 ~op:40 = Some Fault.Crash));
  (match Fault.of_specs [ "explode:tid=1,op=2" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown kind accepted");
  (match Fault.of_specs [ "crash:tid=1" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing op accepted");
  match Fault.of_specs [ "delay-factor:0" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-positive factor accepted"

let test_fault_randomized_deterministic () =
  let mk seed =
    Fault.randomized ~seed ~crashes:2 ~hangs:1 ~wakeups:1 ~max_tid:4 ~max_op:50 ()
  in
  check (Alcotest.list Alcotest.string) "same seed, same plan"
    (Fault.to_specs (mk 12)) (Fault.to_specs (mk 12));
  List.iter
    (fun (s : Fault.site) ->
      check Alcotest.bool "tid in range" true (s.tid >= 1 && s.tid <= 4);
      check Alcotest.bool "op in range" true (s.op >= 1 && s.op <= 50))
    (Fault.sites (mk 12))

(* QCheck: plan determinism and the no-fire identity over random seeds. *)
let prop_fault_plan_deterministic =
  QCheck.Test.make ~name:"same (seed, plan), same log" ~count:40
    QCheck.small_nat (fun seed ->
      let plan =
        Fault.randomized ~seed:(seed + 1) ~crashes:0 ~hangs:0 ~wakeups:2
          ~max_tid:3 ~max_op:30 ()
      in
      let go () = run ~seed ~fault:plan worker_program in
      log_equal (go ()) (go ()))

let prop_unfired_plan_identity =
  QCheck.Test.make ~name:"unfired plan leaves the log untouched" ~count:40
    QCheck.small_nat (fun seed ->
      (* tid 50 never exists, op 10_000 is never reached. *)
      let plan =
        Fault.make
          [
            { Fault.tid = 50; op = 3; action = Fault.Crash };
            { Fault.tid = 1; op = 10_000; action = Fault.Hang };
          ]
      in
      log_equal (run ~seed worker_program) (run ~seed ~fault:plan worker_program))

let () =
  Alcotest.run "sim"
    [
      ( "runtime",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_schedule;
          Alcotest.test_case "monotone per-thread time" `Quick test_per_thread_monotone_time;
          Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
          Alcotest.test_case "daemons don't block exit" `Quick test_daemons_do_not_block_exit;
          Alcotest.test_case "sleep advances clock" `Quick test_sleep_advances_clock;
          Alcotest.test_case "fresh ids unique" `Quick test_fresh_ids_unique;
          Alcotest.test_case "outside run fails" `Quick test_outside_run_fails;
          Alcotest.test_case "frame events balanced" `Quick test_frame_emits_balanced_events;
          Alcotest.test_case "frame end on exception" `Quick test_frame_end_on_exception;
          Alcotest.test_case "delay injection" `Quick test_delay_injection;
          Alcotest.test_case "untraced run silent" `Quick test_untraced_run_is_silent;
          Alcotest.test_case "volatile registration" `Quick test_volatile_registration;
        ] );
      ( "heap",
        [
          Alcotest.test_case "read/write/peek/poke" `Quick test_heap_read_write;
          Alcotest.test_case "spin_until" `Quick test_spin_until;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "mutual exclusion" `Quick test_monitor_mutual_exclusion;
          Alcotest.test_case "reentrant" `Quick test_monitor_reentrant;
          Alcotest.test_case "exit unowned" `Quick test_monitor_exit_unowned;
          Alcotest.test_case "exit by stranger" `Quick test_monitor_exit_stranger;
        ] );
      ( "rwlock",
        [
          Alcotest.test_case "concurrent readers" `Quick test_rwlock_readers_concurrent;
          Alcotest.test_case "exclusive writer" `Quick test_rwlock_writer_exclusive;
          Alcotest.test_case "upgrade/downgrade" `Quick test_rwlock_upgrade;
        ] );
      ( "tasks",
        [
          Alcotest.test_case "task wait" `Quick test_task_wait;
          Alcotest.test_case "continue_with" `Quick test_task_continue_with;
          Alcotest.test_case "continue after completion" `Quick
            test_task_continue_after_completion;
          Alcotest.test_case "threadpool" `Quick test_threadpool_runs_items;
        ] );
      ( "signals",
        [
          Alcotest.test_case "manual event" `Quick test_manual_event_stays_signaled;
          Alcotest.test_case "auto event" `Quick test_auto_event_consumes;
          Alcotest.test_case "wait_all" `Quick test_wait_all;
          Alcotest.test_case "semaphore counting" `Quick test_semaphore_counting;
          Alcotest.test_case "semaphore blocks" `Quick test_semaphore_blocks_at_zero;
          Alcotest.test_case "dataflow fifo" `Quick test_dataflow_fifo;
          Alcotest.test_case "dataflow blocks" `Quick test_dataflow_blocks;
        ] );
      ( "fault",
        [
          Alcotest.test_case "crash raises Injected_crash" `Quick
            test_fault_crash_raises;
          Alcotest.test_case "hang surfaces as deadlock" `Quick
            test_fault_hang_deadlocks;
          Alcotest.test_case "watchdog converts livelock" `Quick
            test_watchdog_stalls_livelock;
          Alcotest.test_case "unfired plan is a no-op" `Quick
            test_fault_unfired_plan_is_noop;
          Alcotest.test_case "wakeup replays deterministically" `Quick
            test_fault_wakeup_deterministic;
          Alcotest.test_case "delay inflation" `Quick test_fault_delay_inflation;
          Alcotest.test_case "spec round-trip" `Quick test_fault_specs_roundtrip;
          Alcotest.test_case "randomized plans deterministic" `Quick
            test_fault_randomized_deterministic;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_fault_plan_deterministic; prop_unfired_plan_identity ] );
      ( "substrates",
        [
          Alcotest.test_case "barrier phases" `Quick test_barrier_phases;
          Alcotest.test_case "barrier multi-phase" `Quick test_barrier_multi_phase;
          Alcotest.test_case "barrier invalid" `Quick test_barrier_invalid;
          Alcotest.test_case "conc_dict computes once" `Quick test_conc_dict_once;
          Alcotest.test_case "statics run once" `Quick test_statics_once;
          Alcotest.test_case "finalizer after collect" `Quick
            test_finalizer_runs_after_collect;
          Alcotest.test_case "finalizer not before collect" `Quick
            test_finalizer_not_before_collect;
          Alcotest.test_case "unsafe list" `Quick test_unsafe_list_ops;
          Alcotest.test_case "unsafe dict" `Quick test_unsafe_dict_ops;
          Alcotest.test_case "property accessors" `Quick test_property_accessors;
        ] );
    ]
