(* End-to-end property tests over randomly generated concurrent programs.

   A small structured generator produces programs (N workers performing
   reads, writes, increments, and sleeps over F shared fields), which are
   interpreted on the simulator in two variants: fully locked (every
   access under one Monitor) and unsynchronized.  The properties tie the
   whole stack together:

   - the simulator preserves sequential consistency of the lock variant
     (final counter = number of increments, no deadlock);
   - runs are reproducible per seed;
   - FastTrack under the manual model is *silent* on the locked variant
     (no false alarms on a fully annotated program) and *reports* the
     planted conflict in the unsynchronized variant;
   - SherLock's verdicts on the locked variant respect the role property
     and include no plain heap read/write of the data fields (the lock
     explains everything). *)

open Sherlock_sim
open Sherlock_trace
open Sherlock_core
module Detector = Sherlock_fasttrack.Detector
module Sync_model = Sherlock_fasttrack.Sync_model

type action =
  | Incr of int   (* read-modify-write of field i *)
  | Put of int    (* blind write of field i *)
  | Get of int    (* read of field i *)
  | Work          (* cpu time *)

type spec = {
  nfields : int;
  workers : action list list;
}

let gen_spec =
  QCheck.Gen.(
    let* nfields = int_range 1 3 in
    let* nworkers = int_range 2 3 in
    let gen_action =
      let* k = int_range 0 3 in
      let* f = int_range 0 (nfields - 1) in
      return (match k with 0 -> Incr f | 1 -> Put f | 2 -> Get f | _ -> Work)
    in
    let* workers = list_repeat nworkers (list_size (int_range 1 6) gen_action) in
    (* Guarantee at least one real write/write conflict on field 0. *)
    let workers =
      match workers with
      | a :: b :: rest -> (Incr 0 :: a) :: (Incr 0 :: b) :: rest
      | short -> short
    in
    return { nfields; workers })

let cls = "Rand.Program"

let interpret ~locked spec () =
  let fields =
    Array.init spec.nfields (fun i ->
        Heap.cell ~cls ~field:(Printf.sprintf "f%d" i) 0)
  in
  let increments = Heap.cell ~cls ~field:"increments" 0 in
  let lock = if locked then Some (Monitor.create ()) else None in
  let guard body =
    match lock with Some m -> Monitor.with_lock m body | None -> body ()
  in
  let run_action = function
    | Incr f ->
      guard (fun () ->
          let v = Heap.read fields.(f) in
          Runtime.cpu 2 15;
          Heap.write fields.(f) (v + 1);
          Heap.poke increments (Heap.peek increments + 1))
    | Put f -> guard (fun () -> Heap.write fields.(f) 7)
    | Get f -> guard (fun () -> ignore (Heap.read fields.(f)))
    | Work -> Runtime.cpu 5 60
  in
  let threads =
    List.mapi
      (fun i actions ->
        Threadlib.create ~delegate:(cls, Printf.sprintf "Worker%d" i) (fun () ->
            List.iter run_action actions))
      spec.workers
  in
  List.iter Threadlib.start threads;
  List.iter Threadlib.join threads;
  (* With the lock, every increment is atomic: absent blind writes, the
     per-field totals add up to the increment count. *)
  let has_puts =
    List.exists
      (List.exists (function Put _ -> true | Incr _ | Get _ | Work -> false))
      spec.workers
  in
  if locked && not has_puts then begin
    let total = Array.fold_left (fun acc c -> acc + Heap.peek c) 0 fields in
    assert (total = Heap.peek increments)
  end

let run_spec ~locked ?(seed = 11) spec =
  Runtime.run ~seed ~instrument:(Runtime.tracing ()) (interpret ~locked spec)

let arb_spec = QCheck.make ~print:(fun s -> Printf.sprintf "<%d workers>" (List.length s.workers)) gen_spec

let prop_locked_runs_cleanly =
  QCheck.Test.make ~name:"locked programs run without deadlock" ~count:100 arb_spec
    (fun spec ->
      ignore (run_spec ~locked:true spec);
      true)

let prop_deterministic =
  QCheck.Test.make ~name:"same seed, same trace" ~count:60 arb_spec (fun spec ->
      let l1 = run_spec ~locked:true ~seed:3 spec in
      let l2 = run_spec ~locked:true ~seed:3 spec in
      Log.length l1 = Log.length l2
      && Array.for_all2
           (fun (a : Event.t) (b : Event.t) ->
             a.time = b.time && a.tid = b.tid && Opid.equal a.op b.op)
           l1.events l2.events)

let prop_manual_model_silent_on_locked =
  QCheck.Test.make ~name:"no manual-model races on fully locked programs" ~count:100
    arb_spec
    (fun spec ->
      let log = run_spec ~locked:true spec in
      let report = Detector.run (Sync_model.manual log) log in
      report.races = [])

let prop_detector_finds_planted_race =
  QCheck.Test.make ~name:"unsynchronized conflict is detected" ~count:100 arb_spec
    (fun spec ->
      let log = run_spec ~locked:false spec in
      let report = Detector.run (Sync_model.manual log) log in
      (* Both leading workers increment field 0 with no ordering. *)
      List.exists (fun (r : Detector.race) -> r.field = cls ^ "::f0") report.races)

let prop_inference_respects_roles =
  QCheck.Test.make ~name:"inference on random programs respects roles" ~count:25
    arb_spec
    (fun spec ->
      let subject =
        {
          Orchestrator.subject_name = "random";
          tests = [ ("t", interpret ~locked:true spec) ];
        }
      in
      let config = { Config.default with rounds = 2 } in
      let result = Orchestrator.infer ~config subject in
      List.for_all
        (fun (v : Verdict.t) ->
          match (v.op.kind, v.role) with
          | (Opid.Read | Opid.Begin), Verdict.Acquire -> true
          | (Opid.Write | Opid.End), Verdict.Release -> true
          | _ -> false)
        result.final)

let prop_windows_total_on_real_traces =
  QCheck.Test.make ~name:"window extraction sides are explicable on real traces"
    ~count:60 arb_spec
    (fun spec ->
      let log = run_spec ~locked:true spec in
      let windows, _ = Windows.extract log in
      List.for_all
        (fun (w : Windows.t) ->
          Opid.Map.exists (fun (o : Opid.t) _ -> o.kind <> Opid.Read) w.rel
          && Opid.Map.exists (fun (o : Opid.t) _ -> o.kind <> Opid.Write) w.acq)
        windows)

let () =
  Alcotest.run "random-programs"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_locked_runs_cleanly;
            prop_deterministic;
            prop_manual_model_silent_on_locked;
            prop_detector_finds_planted_race;
            prop_inference_respects_roles;
            prop_windows_total_on_real_traces;
          ] );
    ]
